// Ablation: within-run decay -- QoS throughput over time for a single
// long mobile run.
//
// The cross-run figures (4, 8) average whole runs; this view shows *why*
// they differ: all systems start perfect right after construction, then
// DaTree decays as its parent pointers go stale, D-DEAR holds longer
// (only head paths age), and REFER stays flat because maintenance keeps
// replacing drifting Kautz nodes.  Kautz-overlay starts degraded (long
// random arcs break immediately).
#include <algorithm>

#include "registry.hpp"

namespace refer::bench {
namespace {

int run_ablation_timeline(Context& ctx) {
  print_header("Ablation", "within-run throughput decay under mobility");

  harness::Scenario sc = ctx.opt.base;
  sc.mobile = true;
  sc.max_speed_mps = 4.0;
  sc.measure_s = std::max(sc.measure_s, 120.0);
  sc.timeline_bucket_s = 20.0;
  sc.seed = 5;

  std::vector<std::vector<double>> timelines;
  for (harness::SystemKind kind : harness::kAllSystems) {
    const auto m = ctx.executor.run_once(kind, sc);
    timelines.push_back(m.build_ok ? m.qos_timeline_kbps
                                   : std::vector<double>{});
  }

  std::printf("QoS throughput (kbit/s) per %.0f s bucket; mobile U[0,%g] m/s\n\n",
              sc.timeline_bucket_s, sc.max_speed_mps);
  std::printf("%-14s", "t (s)");
  for (harness::SystemKind kind : harness::kAllSystems) {
    std::printf("%-16s", harness::to_string(kind));
  }
  std::printf("\n");
  const std::size_t buckets =
      static_cast<std::size_t>(sc.measure_s / sc.timeline_bucket_s);
  for (std::size_t b = 0; b < buckets; ++b) {
    std::printf("%-14.0f", (static_cast<double>(b) + 1) * sc.timeline_bucket_s);
    for (const auto& tl : timelines) {
      std::printf("%-16.1f", b < tl.size() ? tl[b] : 0.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nFlat REFER vs. decaying DaTree is the stale-topology mechanism\n"
      "behind Figures 4 and 8.\n");
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("ablation_timeline",
                     "Ablation: within-run throughput decay under mobility",
                     run_ablation_timeline);

}  // namespace refer::bench
