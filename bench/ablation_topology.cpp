// Ablation: the SIII-A overlay-topology trade-off (Proposition 3.1).
//
// For a range of overlay sizes, the smallest configuration of each
// candidate family -- Kautz, de Bruijn, hypercube -- and the resulting
// degree (maintenance energy) and diameter (worst-case real-time path).
// Kautz dominates: at a fixed degree budget it needs the smallest
// diameter, which is the paper's justification for choosing it.
#include <cstdio>

#include "kautz/alternatives.hpp"
#include "registry.hpp"

namespace {

int run_ablation_topology(refer::bench::Context&) {
  using namespace refer::kautz;
  std::printf(
      "Overlay topology trade-off (paper SIII-A / Proposition 3.1)\n"
      "degree budget d = 3 for the shift-register families\n\n");
  std::printf("%-12s %-20s %-10s %-8s %-9s\n", "target n", "family", "nodes",
              "degree", "diameter");
  for (const std::uint64_t target : {50ull, 200ull, 1000ull, 10000ull,
                                     100000ull}) {
    for (const auto& row : compare_topologies(target, 3)) {
      std::printf("%-12llu %-20s %-10llu %-8d %-9d\n",
                  static_cast<unsigned long long>(target), row.family,
                  static_cast<unsigned long long>(row.nodes), row.degree,
                  row.diameter);
    }
    std::printf("\n");
  }
  std::printf(
      "Kautz packs the most nodes per (degree, diameter): lower degree =>\n"
      "less maintenance energy, lower diameter => shorter worst-case\n"
      "delivery path -- the trade-off REFER builds on.\n");
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH(
    "ablation_topology",
    "Ablation: Kautz vs de Bruijn vs hypercube (Proposition 3.1)",
    run_ablation_topology);
