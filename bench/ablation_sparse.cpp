// Ablation (paper SV, future work): REFER in a *sparse* WSAN.
//
// Sweeps the sensor population downward (and spreads it wider) and
// reports delivery ratio and the embedding's fallback counters through
// the harness metrics.  REFER's embedding degrades gracefully: TTL=2
// path queries start failing, directed fallbacks and degraded
// assignments take over, and relay detours carry the stretched arcs.
#include "registry.hpp"

namespace refer::bench {
namespace {

int run_ablation_sparse(Context& ctx) {
  print_header("Ablation", "sparse deployments (paper SV future work)");

  harness::Scenario base = ctx.opt.base;
  base.sensor_spread_m = 260;  // spread sensors thinner
  const std::vector<double> sizes{60, 90, 120, 160, 200};
  const auto points = run_sweep(
      ctx, base, sizes,
      [](harness::Scenario& sc, double n) {
        sc.n_sensors = static_cast<int>(n);
      },
      "# sensors");
  emit_series(ctx, "Delivery ratio vs. density", "# sensors",
              "delivery ratio", "sparse_delivery", points,
              [](const harness::AggregateMetrics& a) {
                return a.delivery_ratio;
              });
  emit_series(ctx, "Delay vs. density", "# sensors",
              "avg delay of QoS-guaranteed data (ms)", "sparse_delay",
              points,
              [](const harness::AggregateMetrics& a) {
                return a.avg_delay_ms;
              });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("ablation_sparse",
                     "Ablation: sparse deployments (paper SV future work)",
                     run_ablation_sparse);

}  // namespace refer::bench
