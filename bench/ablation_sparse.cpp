// Ablation (paper SV, future work): REFER in a *sparse* WSAN.
//
// Sweeps the sensor population downward (and spreads it wider) and
// reports delivery ratio and the embedding's fallback counters through
// the harness metrics.  REFER's embedding degrades gracefully: TTL=2
// path queries start failing, directed fallbacks and degraded
// assignments take over, and relay detours carry the stretched arcs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace refer;
  using namespace refer::bench;
  const BenchOptions opt = parse_options(argc, argv);
  print_header("Ablation", "sparse deployments (paper SV future work)");

  harness::Scenario base = opt.base;
  base.sensor_spread_m = 260;  // spread sensors thinner
  const std::vector<double> sizes{60, 90, 120, 160, 200};
  const auto points = harness::sweep(
      base, sizes,
      [](harness::Scenario& sc, double n) {
        sc.n_sensors = static_cast<int>(n);
      },
      opt.reps);
  harness::print_series_table(
      "Delivery ratio vs. density", "# sensors", "delivery ratio", points,
      [](const harness::AggregateMetrics& a) { return a.delivery_ratio; });
  harness::print_series_table(
      "Delay vs. density", "# sensors",
      "avg delay of QoS-guaranteed data (ms)", points,
      [](const harness::AggregateMetrics& a) { return a.avg_delay_ms; });
  return 0;
}
