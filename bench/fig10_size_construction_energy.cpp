// Paper Figure 10: energy consumed in topology construction vs. network
// size.
//
// Expected shape: Kautz-overlay by far the most expensive (a flood per
// overlay arc); REFER next (actuator exchange + TTL=2 path queries);
// D-DEAR below REFER (2-hop hellos + one flood per head); DaTree the
// cheapest (one beacon flood per actuator).
#include <algorithm>
#include <cmath>

#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig10(Context& ctx) {
  harness::Scenario base = ctx.opt.base;
  base.measure_s = std::min(base.measure_s, 30.0);  // construction only
  print_header("Figure 10", "construction energy vs. network size");

  const std::vector<double> sizes{100, 200, 300, 400};
  const auto points = run_sweep(
      ctx, base, sizes,
      [](harness::Scenario& sc, double n) {
        sc.n_sensors = static_cast<int>(n);
        // Constant density: a larger network occupies a wider deployment
        // (the paper's "path lengths increase as network size grows").
        sc.sensor_spread_m = 220.0 * std::sqrt(n / 200.0);
      },
      "# sensors");
  emit_series(ctx, "Topology-construction energy vs. network size",
              "# sensors", "energy consumed in topology construction (J)",
              "fig10", points,
              [](const harness::AggregateMetrics& a) {
                return a.construction_energy_j;
              });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig10",
                     "Figure 10: construction energy vs. network size",
                     run_fig10);

}  // namespace refer::bench
