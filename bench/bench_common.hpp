// Shared plumbing for the figure-reproduction binaries.
//
// Every bench prints the same series the corresponding paper figure
// plots: one row per x value, one column per system, "mean +- 95% CI"
// over repeated seeds.  Absolute values are not comparable to the paper
// (our substrate is a scaled-down simulator; see DESIGN.md) -- the
// reproduction target is the *shape*: ordering, trends, crossovers.
//
// Flags (all optional):
//   --reps N        seeds per point                  (default 3)
//   --measure S     measurement window, seconds      (default 60)
//   --pps P         packets per second per source    (default 10)
//   --csv PREFIX    also write PREFIX_<metric>.csv for plotting
//   --quick         reps=1, measure=45 (CI smoke runs)
//   --full          reps=5, measure=200, pps=16 (closer to paper scale)
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "harness/experiment.hpp"

namespace refer::bench {

struct BenchOptions {
  int reps = 3;
  std::string csv_prefix;  ///< when set, each table is also written as CSV
  harness::Scenario base;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  opt.base.warmup_s = 10;
  opt.base.measure_s = 60;
  opt.base.packets_per_second = 10;
  opt.base.seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_val = [&]() -> double {
      return (i + 1 < argc) ? std::atof(argv[++i]) : 0;
    };
    if (arg == "--reps") {
      opt.reps = static_cast<int>(next_val());
    } else if (arg == "--measure") {
      opt.base.measure_s = next_val();
    } else if (arg == "--pps") {
      opt.base.packets_per_second = next_val();
    } else if (arg == "--bytes") {
      opt.base.packet_bytes = static_cast<std::size_t>(next_val());
    } else if (arg == "--csv") {
      opt.csv_prefix = (i + 1 < argc) ? argv[++i] : "series";
    } else if (arg == "--quick") {
      opt.reps = 1;
      opt.base.measure_s = 45;
    } else if (arg == "--full") {
      opt.reps = 5;
      opt.base.measure_s = 200;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    }
  }
  return opt;
}

/// Prints the table and, with --csv, writes it as PREFIX_<slug>.csv.
inline void emit_series(const BenchOptions& opt, const std::string& title,
                        const std::string& x_label,
                        const std::string& y_label, const std::string& slug,
                        const std::vector<harness::SweepPoint>& points,
                        const std::function<Summary(
                            const harness::AggregateMetrics&)>& select) {
  harness::print_series_table(title, x_label, y_label, points, select);
  if (!opt.csv_prefix.empty()) {
    const std::string path = opt.csv_prefix + "_" + slug + ".csv";
    if (harness::write_series_csv(path, x_label, points, select)) {
      std::printf("(csv written to %s)\n", path.c_str());
    }
  }
}

inline void print_header(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s -- %s\n", figure, what);
  std::printf("==============================================================\n");
}

}  // namespace refer::bench
