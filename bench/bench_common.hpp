// Shared plumbing for the figure/ablation reproductions behind the
// unified `referbench` CLI (tools/referbench_main.cpp).
//
// Every sweep bench prints the same series the corresponding paper
// figure plots: one row per x value, one column per system,
// "mean +- 95% CI" over repeated seeds.  Absolute values are not
// comparable to the paper (our substrate is a scaled-down simulator;
// see DESIGN.md) -- the reproduction target is the *shape*: ordering,
// trends, crossovers.
//
// Flags (all optional):
//   --reps N        seeds per point                  (default 3)
//   --measure S     measurement window, seconds      (default 60)
//   --pps P         packets per second per source    (default 10)
//   --bytes B       packet size in bytes             (default 2500)
//   --seed S        base scenario seed               (default 1)
//   --jobs N        parallel (system, x, seed) jobs; 0 = all cores
//   --csv PREFIX    also write PREFIX_<metric>.csv for plotting
//   --json PATH     structured results document (runner::ResultsWriter)
//   --trace DIR     write one JSONL trace per (system, x, seed) job to
//                   DIR/<bench>/ (analyze with tools trace_report)
//   --profile       attach the kernel profiler (per-event-tag wall-time
//                   histograms in the observability section)
//   --timeline S    record the flight-recorder timeseries with bucket
//                   width S seconds (schema v4 "timeseries" section;
//                   analyze with tools timeline_report)
//   --phase-profile attach the wall-clock phase profiler (per-bucket
//                   phase_us in the timeseries; wall time is
//                   nondeterministic, so off by default)
//   --no-spatial-index  disable the world's spatial grid index (O(n)
//                   linear scans; results are bit-identical, only slower)
//   --no-neighbor-cache  disable the neighbor-row cache riding the grid
//                   (every reachable query re-walks the grid cells;
//                   results are bit-identical, only slower)
//   --legacy-event-queue  run the simulator kernel on the original binary
//                   heap instead of the calendar queue (bit-identical,
//                   only slower; the event-engine escape hatch)
//   --routing-policy greedy|regular  REFER intra-cell routing protocol
//                   (default greedy, the paper's SIII-C2 shortest
//                   paths; regular = Faber-Streib all-to-all walks
//                   with Theorem 3.8 fail-over)
//   --quick         reps=1, measure=45 (CI smoke runs)
//   --full          reps=5, measure=200 (closer to paper scale)
//
// Unknown flags and flags missing their value are rejected with exit
// code 2 -- a typo must never silently run a different experiment.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "runner/parallel_executor.hpp"
#include "runner/results_writer.hpp"

namespace refer::bench {

struct BenchOptions {
  int reps = 3;
  int jobs = 1;            ///< worker threads; 0 = one per hardware thread
  std::string csv_prefix;  ///< when set, each table is also written as CSV
  std::string json_path;   ///< when set, a results JSON is written per bench
  std::string trace_dir;   ///< when set, per-job JSONL traces land here
  harness::Scenario base;
};

[[noreturn]] inline void usage_error(const std::string& message) {
  std::fprintf(stderr, "referbench: %s (try 'referbench --help')\n",
               message.c_str());
  std::exit(2);
}

/// Strict flag parser: exits with code 2 on an unknown flag, a flag
/// missing its value, or a non-numeric value for a numeric flag.
inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  opt.base.warmup_s = 10;
  opt.base.measure_s = 60;
  opt.base.packets_per_second = 10;
  opt.base.seed = 1;
  auto string_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      usage_error(std::string(argv[i]) + " requires a value");
    }
    return argv[++i];
  };
  auto numeric_value = [&](int& i) -> double {
    const std::string flag = argv[i];
    const char* raw = string_value(i);
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0') {
      usage_error(flag + ": not a number: '" + raw + "'");
    }
    return v;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps") {
      opt.reps = static_cast<int>(numeric_value(i));
    } else if (arg == "--measure") {
      opt.base.measure_s = numeric_value(i);
    } else if (arg == "--pps") {
      opt.base.packets_per_second = numeric_value(i);
    } else if (arg == "--bytes") {
      opt.base.packet_bytes = static_cast<std::size_t>(numeric_value(i));
    } else if (arg == "--seed") {
      opt.base.seed = static_cast<std::uint64_t>(numeric_value(i));
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<int>(numeric_value(i));
    } else if (arg == "--csv") {
      opt.csv_prefix = string_value(i);
    } else if (arg == "--json") {
      opt.json_path = string_value(i);
    } else if (arg == "--trace") {
      opt.trace_dir = string_value(i);
    } else if (arg == "--profile") {
      opt.base.profile = true;
    } else if (arg == "--timeline") {
      opt.base.timeline_bucket_s = numeric_value(i);
      if (opt.base.timeline_bucket_s <= 0) {
        usage_error("--timeline: bucket seconds must be positive");
      }
    } else if (arg == "--phase-profile") {
      opt.base.phase_profile = true;
    } else if (arg == "--no-spatial-index") {
      opt.base.spatial_index = false;
    } else if (arg == "--no-neighbor-cache") {
      opt.base.neighbor_cache = false;
    } else if (arg == "--legacy-event-queue") {
      opt.base.legacy_event_queue = true;
    } else if (arg == "--routing-policy") {
      const std::string value = string_value(i);
      if (!harness::parse_routing_policy(value, opt.base.routing_policy)) {
        usage_error("--routing-policy: expected greedy or regular, got '" +
                    value + "'");
      }
    } else if (arg == "--quick") {
      opt.reps = 1;
      opt.base.measure_s = 45;
    } else if (arg == "--full") {
      opt.reps = 5;
      opt.base.measure_s = 200;
    } else {
      usage_error("unknown flag: " + arg);
    }
  }
  return opt;
}

/// Per-bench run state handed to every registered bench function: the
/// parsed options, the parallel executor the bench should route its
/// simulations through, and the results document being accumulated.
struct Context {
  Context(BenchOptions options, std::string bench_name)
      : opt(std::move(options)),
        name(std::move(bench_name)),
        executor(opt.jobs) {
    if (!opt.trace_dir.empty()) {
      // One trace directory per bench; every decomposed job writes its
      // own <system>_x<x>_rep<rep>.jsonl inside it.
      opt.base.trace_dir = opt.trace_dir + "/" + name;
      std::filesystem::create_directories(opt.base.trace_dir);
    }
    results.set_tool("referbench");
    results.set_benchmark(name);
    results.set_jobs(executor.jobs());
    results.set_repetitions(opt.reps);
    results.set_scenario(opt.base);
  }

  BenchOptions opt;
  std::string name;
  runner::ParallelExecutor executor;
  runner::ResultsWriter results;
};

/// Runs a sweep through the context's executor and records the
/// aggregated series (all metrics) into the results document.
inline std::vector<harness::SweepPoint> run_sweep(
    Context& ctx, const harness::Scenario& base, const std::vector<double>& xs,
    const std::function<void(harness::Scenario&, double)>& configure,
    const std::string& x_label) {
  auto points = ctx.executor.sweep(base, xs, configure, ctx.opt.reps);
  ctx.results.add_series(x_label, points);
  return points;
}

/// Prints the table and, with --csv, writes it as PREFIX_<slug>.csv.
inline void emit_series(const Context& ctx, const std::string& title,
                        const std::string& x_label,
                        const std::string& y_label, const std::string& slug,
                        const std::vector<harness::SweepPoint>& points,
                        const std::function<Summary(
                            const harness::AggregateMetrics&)>& select) {
  harness::print_series_table(title, x_label, y_label, points, select);
  if (!ctx.opt.csv_prefix.empty()) {
    const std::string path = ctx.opt.csv_prefix + "_" + slug + ".csv";
    if (harness::write_series_csv(path, x_label, points, select)) {
      std::printf("(csv written to %s)\n", path.c_str());
    }
  }
}

inline void print_header(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s -- %s\n", figure, what);
  std::printf("==============================================================\n");
}

}  // namespace refer::bench
