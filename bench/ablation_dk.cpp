// Ablation (paper SV, future work): Kautz graph K(d, k) with various d
// and k values -- the degree/diameter trade-off of SIII-A measured on
// the routing layer itself.
//
// For each (d, k): graph size, the exact average shortest-path length
// over sampled pairs, the average length of the *second*-shortest
// disjoint route (what a packet pays on the first fail-over), and the
// ID-only routing-table derivation cost vs. the route-generation
// baseline's explored nodes.  Larger d buys shorter fail-over detours
// and more alternatives at the price of degree (maintenance load);
// larger k buys node count at the price of path length -- exactly the
// trade-off the paper uses to justify K(d, 3) cells.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "kautz/graph.hpp"
#include "kautz/routing.hpp"
#include "kautz/verifier.hpp"
#include "refer/system.hpp"
#include "registry.hpp"

namespace {

/// Full-stack run of REFER with oracle-embedded K(d, k) cells on the
/// default deployment: delivery, delay, energy.
void simulate_dk(int d, int k, int n_sensors) {
  using namespace refer;
  sim::Simulator simulator;
  sim::World world({{0, 0}, {500, 500}}, simulator);
  sim::EnergyTracker energy;
  sim::Channel channel(simulator, world, energy, Rng(3));
  for (const Point p : {Point{125, 125}, Point{375, 125}, Point{125, 375},
                        Point{375, 375}, Point{250, 250}}) {
    world.add_actuator(p, 250);
  }
  Rng rng(42);
  std::vector<sim::NodeId> sensors;
  for (int i = 0; i < n_sensors; ++i) {
    Point anchor = world.position(static_cast<int>(rng.below(5)));
    const double ang = rng.uniform(0, 6.28318530717958648);
    const double rad = 220 * std::sqrt(rng.uniform());
    sensors.push_back(world.add_sensor(
        clamp({anchor.x + rad * std::cos(ang), anchor.y + rad * std::sin(ang)},
              {{0, 0}, {500, 500}}),
        100, 0, 3, rng.split()));
  }
  energy.resize(world.size());
  energy.set_initial_battery(1e9);

  core::ReferConfig config;
  config.use_oracle_embedding = true;
  config.oracle.d = d;
  config.oracle.k = k;
  core::ReferSystem refer_system(simulator, world, channel, energy, Rng(7),
                                 config);
  bool ok = false;
  refer_system.build([&](bool r) { ok = r; });
  simulator.run_until(10.0);
  if (!ok) {
    std::printf("%-8d%-8d%-12s\n", d, k, "(embedding failed: too few sensors)");
    return;
  }
  Summary delay_ms;
  int delivered = 0, sent = 0;
  Rng pick(9);
  const double t_end = simulator.now() + 60;
  while (simulator.now() < t_end) {
    const sim::NodeId src = refer_system.random_active_sensor(pick);
    ++sent;
    refer_system.send_to_actuator(src, 2500,
                                  [&](const core::DeliveryReport& r) {
                                    if (!r.delivered) return;
                                    ++delivered;
                                    delay_ms.add(r.delay_s * 1000);
                                  });
    simulator.run_until(simulator.now() + 0.25);
  }
  simulator.run_until(simulator.now() + 2);
  std::printf("%-8d%-8d%-10d%-12.2f%-12.2f%-14.0f\n", d, k, sent,
              static_cast<double>(delivered) / sent, delay_ms.mean(),
              energy.communication_total());
}

int run_ablation_dk(refer::bench::Context&) {
  using namespace refer;
  using namespace refer::kautz;
  std::printf("Ablation: K(d, k) degree/diameter trade-off (paper SIII-A, SV)\n");
  std::printf("%-8s%-8s%-10s%-12s%-14s%-16s%-18s\n", "d", "k", "nodes",
              "avg-short", "avg-2nd-path", "routes-examined",
              "routegen-visited");
  Rng rng(2026);
  for (const auto [d, k] : std::vector<std::pair<int, int>>{
           {2, 2}, {2, 3}, {2, 4}, {2, 5}, {3, 2}, {3, 3}, {3, 4},
           {4, 2}, {4, 3}, {4, 4}, {5, 3}}) {
    const Graph g(d, k);
    const auto nodes = g.nodes();
    Summary shortest, second, visited;
    for (int i = 0; i < 400; ++i) {
      const Label u = nodes[rng.below(nodes.size())];
      const Label v = nodes[rng.below(nodes.size())];
      if (u == v) continue;
      const auto routes = disjoint_routes(d, u, v);
      shortest.add(routes[0].nominal_length);
      if (routes.size() > 1) second.add(routes[1].nominal_length);
      visited.add(static_cast<double>(
          route_generation_cost(g, u, v).nodes_visited));
    }
    std::printf("%-8d%-8d%-10llu%-12.2f%-14.2f%-16d%-18.1f\n", d, k,
                static_cast<unsigned long long>(g.node_count()),
                shortest.mean(), second.mean(), d, visited.mean());
  }
  std::printf(
      "\nroutes-examined: nodes a REFER relay inspects per fail-over "
      "decision (Theorem 3.8, = d).\nroutegen-visited: nodes the "
      "DFTR-style route-generation baseline explores for the same "
      "decision.\n");

  std::printf(
      "\nFull-stack REFER with oracle-embedded K(d,k) cells (mobile "
      "deployment,\n60 s of events from random active sensors):\n");
  std::printf("%-8s%-8s%-10s%-12s%-12s%-14s\n", "d", "k", "events",
              "delivered", "delay(ms)", "commJ");
  simulate_dk(2, 3, 200);
  simulate_dk(2, 4, 200);
  simulate_dk(3, 3, 250);
  simulate_dk(2, 5, 400);
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("ablation_dk",
                     "Ablation: K(d,k) degree/diameter trade-off sweep",
                     run_ablation_dk);
