// Ablation: Theorem 3.8 ID-only fail-over vs. BAKE/DFTR-style route
// generation (paper SIII-C's central claim, measured at the network
// level rather than the micro-benchmark level).
//
// Both routers run the *same* REFER overlay on the same deployment; the
// only difference is what a relay does when its shortest successor is
// dead: derive the alternative from the IDs (free), or flood a route
// request and follow the reply (energy + delay per fail-over).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stats.hpp"
#include "refer/system.hpp"
#include "registry.hpp"

using namespace refer;

namespace {

struct Result {
  double delivery = 0;
  double delay_ms = 0;
  double comm_j = 0;
  std::uint64_t failovers = 0;
  std::uint64_t floods = 0;
};

Result run(core::FailoverMode mode, int faulty, std::uint64_t seed) {
  sim::Simulator simulator;
  sim::World world({{0, 0}, {500, 500}}, simulator);
  sim::EnergyTracker energy;
  sim::Channel channel(simulator, world, energy, Rng(seed));
  for (const Point p : {Point{125, 125}, Point{375, 125}, Point{125, 375},
                        Point{375, 375}, Point{250, 250}}) {
    world.add_actuator(p, 250);
  }
  Rng rng(seed * 977 + 3);
  std::vector<sim::NodeId> sensors;
  for (int i = 0; i < 200; ++i) {
    const Point anchor = world.position(static_cast<int>(rng.below(5)));
    const double ang = rng.uniform(0, 6.28318530717958648);
    const double rad = 220 * std::sqrt(rng.uniform());
    sensors.push_back(world.add_sensor(
        clamp({anchor.x + rad * std::cos(ang), anchor.y + rad * std::sin(ang)},
              {{0, 0}, {500, 500}}),
        100, 0, 3, rng.split()));
  }
  energy.resize(world.size());
  energy.set_initial_battery(1e9);

  core::ReferConfig config;
  config.router.failover = mode;
  core::ReferSystem system(simulator, world, channel, energy, Rng(7), config);
  bool ok = false;
  system.build([&](bool r) { ok = r; });
  simulator.run_until(30);
  if (!ok) return {};

  Result result;
  Rng pick(11), fault(13);
  Summary delay;
  int delivered = 0, sent = 0;
  std::vector<sim::NodeId> down;
  const double comm0 = energy.communication_total();
  for (int round = 0; round < 12; ++round) {
    for (sim::NodeId n : down) world.set_alive(n, true);
    down.clear();
    for (std::size_t idx : fault.sample_indices(
             sensors.size(), static_cast<std::size_t>(faulty))) {
      world.set_alive(sensors[idx], false);
      down.push_back(sensors[idx]);
    }
    for (int i = 0; i < 25; ++i) {
      const sim::NodeId src = sensors[pick.below(sensors.size())];
      if (!world.alive(src)) continue;
      ++sent;
      system.send_to_actuator(src, 2500,
                              [&](const core::DeliveryReport& r) {
                                if (!r.delivered) return;
                                ++delivered;
                                delay.add(r.delay_s * 1000);
                              });
      simulator.run_until(simulator.now() + 0.2);
    }
  }
  simulator.run_until(simulator.now() + 3);
  result.delivery = sent ? static_cast<double>(delivered) / sent : 0;
  result.delay_ms = delay.mean();
  result.comm_j = energy.communication_total() - comm0;
  result.failovers = system.router().stats().failovers;
  result.floods = system.router().stats().route_gen_floods;
  return result;
}

int run_ablation_failover(bench::Context& ctx) {
  std::printf(
      "Fail-over ablation: Theorem 3.8 (ID-only) vs route generation\n"
      "(BAKE/DFTR-style flood per fail-over), same REFER overlay\n\n");
  std::printf("%-8s %-12s %-10s %-10s %-11s %-10s %-8s\n", "faulty", "mode",
              "delivery", "delay ms", "comm J", "failovers", "floods");
  for (int faulty : {5, 10, 20}) {
    for (const auto mode : {core::FailoverMode::kTheorem38,
                            core::FailoverMode::kRouteGeneration}) {
      Result sum;
      const int reps = std::max(1, ctx.opt.reps);
      for (int i = 0; i < reps; ++i) {
        const Result r = run(mode, faulty, 1 + static_cast<std::uint64_t>(i));
        sum.delivery += r.delivery / reps;
        sum.delay_ms += r.delay_ms / reps;
        sum.comm_j += r.comm_j / reps;
        sum.failovers += r.failovers;
        sum.floods += r.floods;
      }
      std::printf("%-8d %-12s %-10.3f %-10.1f %-11.0f %-10llu %-8llu\n",
                  faulty,
                  mode == core::FailoverMode::kTheorem38 ? "theorem38"
                                                         : "route-gen",
                  sum.delivery, sum.delay_ms, sum.comm_j,
                  static_cast<unsigned long long>(sum.failovers),
                  static_cast<unsigned long long>(sum.floods));
    }
  }
  std::printf(
      "\nEvery route-gen fail-over floods the neighbourhood: the energy\n"
      "and delay gaps are the paper's SIII-C claim at network level.\n");
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH(
    "ablation_failover",
    "Ablation: Theorem 3.8 ID-only fail-over vs route generation",
    run_ablation_failover);
