// Paper Figure 8: average delay vs. network size (100-400 sensors, fixed
// area and actuator population, default mobility U[0,3] m/s).
//
// Expected shape: REFER nearly constant (cell size is fixed; packets
// always travel between physically close Kautz neighbours); D-DEAR grows
// moderately (only head->actuator paths lengthen); DaTree and
// Kautz-overlay grow sharply; at n = 100 DaTree is about as fast as
// REFER (many sensors sit one hop from an actuator).
#include <cmath>

#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig08(Context& ctx) {
  print_header("Figure 8", "delay vs. network size");

  // 100-400 reproduces the paper's x-axis; 800 and 1600 extend the sweep
  // into the dense-deployment regime the ROADMAP north-star targets,
  // where per-packet O(n) substrate scans would dominate wall time if the
  // world were not spatially indexed.
  const std::vector<double> sizes{100, 200, 300, 400, 800, 1600};
  const auto points = run_sweep(
      ctx, ctx.opt.base, sizes,
      [](harness::Scenario& sc, double n) {
        sc.n_sensors = static_cast<int>(n);
        // Constant density: a larger network occupies a wider deployment
        // (the paper's "path lengths increase as network size grows").
        sc.sensor_spread_m = 220.0 * std::sqrt(n / 200.0);
      },
      "# sensors");
  emit_series(ctx, "Delay vs. network size", "# sensors",
              "avg delay of QoS-guaranteed data (ms)", "fig08", points,
              [](const harness::AggregateMetrics& a) {
                return a.avg_delay_ms;
              });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig08", "Figure 8: delay vs. network size", run_fig08);

}  // namespace refer::bench
