// Saturation sweep (no paper counterpart -- seeds ROADMAP item 3, the
// congestion regime of Faber & Streib's all-to-all Kautz routing): QoS
// throughput, delay and delivery ratio vs. offered load, ramped past the
// medium's saturation point.
//
// x is packets per second per source.  The default workload (5 sources x
// 10 pps x 20 kbit) fills ~half the 2 Mbit/s medium with spatial reuse;
// by 40-80 pps every source's local medium is saturated, CSMA deferrals
// dominate, and each transmission's medium scan fires against a busy
// neighbourhood -- exactly the regime the neighbor cache targets, which
// is why this bench doubles as the cache's macro benchmark
// (run it with and without --no-neighbor-cache and compare wall_s).
//
// Expected shape: carried QoS throughput rises linearly with offered
// load, peaks near the saturation knee, then flattens or sags while
// delay and loss climb; REFER's knee sits highest (shortest physical
// paths => least airtime per delivered bit), DaTree saturates first --
// its root links are the bottleneck the tree concentrates load onto.
#include <iterator>

#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig_sat(Context& ctx) {
  print_header("Saturation", "QoS vs. offered load (pps per source)");

  const std::vector<double> pps{5, 10, 20, 40, 80};
  const auto points = run_sweep(
      ctx, ctx.opt.base, pps,
      [](harness::Scenario& sc, double load) {
        sc.packets_per_second = load;
      },
      "packets/s per source");
  emit_series(ctx, "QoS throughput vs. offered load", "pps per source",
              "QoS-guaranteed throughput (kbps)", "fig_sat_tput", points,
              [](const harness::AggregateMetrics& a) {
                return a.qos_throughput_kbps;
              });
  emit_series(ctx, "Delay vs. offered load", "pps per source",
              "avg delay of QoS-guaranteed data (ms)", "fig_sat_delay",
              points, [](const harness::AggregateMetrics& a) {
                return a.avg_delay_ms;
              });
  emit_series(ctx, "Delay p95 vs. offered load", "pps per source",
              "delay p95 (ms)", "fig_sat_p95", points,
              [](const harness::AggregateMetrics& a) {
                return a.delay_p95_ms;
              });
  emit_series(ctx, "Delivery ratio vs. offered load", "pps per source",
              "packets delivered / sent", "fig_sat_delivery", points,
              [](const harness::AggregateMetrics& a) {
                return a.delivery_ratio;
              });

  // Routing-policy comparison past the knee (ROADMAP item 3 payoff):
  // the same offered-load ramp again, REFER only, under Faber-Streib
  // regular all-to-all routing, next to the greedy numbers from the
  // sweep above.  Skipped when the whole bench was already pinned to
  // the regular policy via --routing-policy.
  if (ctx.opt.base.routing_policy == harness::RoutingPolicy::kGreedy) {
    print_header("Saturation x routing policy",
                 "REFER greedy vs. regular all-to-all (kautz/regular.hpp)");
    std::vector<harness::SweepPoint> reg_points;
    reg_points.reserve(pps.size());
    for (const double load : pps) {
      harness::Scenario sc = ctx.opt.base;
      sc.packets_per_second = load;
      sc.routing_policy = harness::RoutingPolicy::kRegular;
      harness::SweepPoint point;
      point.x = load;
      point.by_system.resize(std::size(harness::kAllSystems));
      point.by_system[0] = ctx.executor.run_repeated(
          harness::SystemKind::kRefer, sc, ctx.opt.reps, load);
      reg_points.push_back(std::move(point));
    }
    ctx.results.add_series("packets/s per source (REFER regular policy)",
                           reg_points);
    std::printf("\nREFER greedy vs. regular (cells are mean +- 95%% CI; "
                "aGini = airtime Gini, arc x = arc-load max/min)\n");
    std::printf("%-8s%-21s%-21s%-9s%-9s%-9s%-9s\n", "pps", "greedy kbps",
                "regular kbps", "g aGini", "r aGini", "g arc x", "r arc x");
    for (std::size_t i = 0; i < pps.size(); ++i) {
      const harness::AggregateMetrics& g = points[i].by_system[0];
      const harness::AggregateMetrics& r = reg_points[i].by_system[0];
      std::printf("%-8g%-21s%-21s%-9.4f%-9.4f%-9.2f%-9.2f\n", pps[i],
                  g.qos_throughput_kbps.to_string(1).c_str(),
                  r.qos_throughput_kbps.to_string(1).c_str(),
                  g.airtime_gini.mean(), r.airtime_gini.mean(),
                  g.arc_load_max_min.mean(), r.arc_load_max_min.mean());
    }
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig_sat",
                     "Saturation: QoS vs. offered load past the knee",
                     run_fig_sat);

}  // namespace refer::bench
