// Saturation sweep (no paper counterpart -- seeds ROADMAP item 3, the
// congestion regime of Faber & Streib's all-to-all Kautz routing): QoS
// throughput, delay and delivery ratio vs. offered load, ramped past the
// medium's saturation point.
//
// x is packets per second per source.  The default workload (5 sources x
// 10 pps x 20 kbit) fills ~half the 2 Mbit/s medium with spatial reuse;
// by 40-80 pps every source's local medium is saturated, CSMA deferrals
// dominate, and each transmission's medium scan fires against a busy
// neighbourhood -- exactly the regime the neighbor cache targets, which
// is why this bench doubles as the cache's macro benchmark
// (run it with and without --no-neighbor-cache and compare wall_s).
//
// Expected shape: carried QoS throughput rises linearly with offered
// load, peaks near the saturation knee, then flattens or sags while
// delay and loss climb; REFER's knee sits highest (shortest physical
// paths => least airtime per delivered bit), DaTree saturates first --
// its root links are the bottleneck the tree concentrates load onto.
#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig_sat(Context& ctx) {
  print_header("Saturation", "QoS vs. offered load (pps per source)");

  const std::vector<double> pps{5, 10, 20, 40, 80};
  const auto points = run_sweep(
      ctx, ctx.opt.base, pps,
      [](harness::Scenario& sc, double load) {
        sc.packets_per_second = load;
      },
      "packets/s per source");
  emit_series(ctx, "QoS throughput vs. offered load", "pps per source",
              "QoS-guaranteed throughput (kbps)", "fig_sat_tput", points,
              [](const harness::AggregateMetrics& a) {
                return a.qos_throughput_kbps;
              });
  emit_series(ctx, "Delay vs. offered load", "pps per source",
              "avg delay of QoS-guaranteed data (ms)", "fig_sat_delay",
              points, [](const harness::AggregateMetrics& a) {
                return a.avg_delay_ms;
              });
  emit_series(ctx, "Delay p95 vs. offered load", "pps per source",
              "delay p95 (ms)", "fig_sat_p95", points,
              [](const harness::AggregateMetrics& a) {
                return a.delay_p95_ms;
              });
  emit_series(ctx, "Delivery ratio vs. offered load", "pps per source",
              "packets delivered / sent", "fig_sat_delivery", points,
              [](const harness::AggregateMetrics& a) {
                return a.delivery_ratio;
              });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig_sat",
                     "Saturation: QoS vs. offered load past the knee",
                     run_fig_sat);

}  // namespace refer::bench
