// Micro-benchmarks (google-benchmark) for the DES kernel's event engine:
// the calendar queue vs. the legacy binary heap, and the SBO EventClosure
// vs. std::function closure storage.
//
// BM_HoldModel_* is the classic hold model for priority-queue evaluation
// (Jones, CACM 1986): N pending self-rescheduling timers at steady state,
// each step pops one event and pushes its replacement at now + Exp(mean).
// The heap pays O(log N) per transaction, the calendar queue amortised
// O(1), so the gap should widen from N = 1k to N = 100k.
//
// BM_MixedHorizon_* repeats the hold model with a bimodal delay mix (90%
// near timers, 10% far horizons) -- the access pattern that stresses the
// calendar's bucket-year scan and resize policy rather than its happy
// path.
//
// BM_BurstFanout_* schedules a K-event burst at one timestamp and drains
// it, the shape a broadcast flood or round kickoff produces.  Equal-time
// events land in one calendar bucket, so this measures the seq-tiebreak
// scan against the heap's sift.
//
// BM_Closure_* isolates closure storage: construct + invoke of a capture
// that fits std::function's inline buffer (16 bytes on libstdc++) vs. one
// the size of the largest capture the simulator actually schedules
// (Channel::unicast, ~56 bytes), which std::function heap-allocates and
// EventClosure keeps in its 64-byte inline buffer.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "sim/event_closure.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace refer;

/// Self-rescheduling timer: pops as one event, pushes its successor.
/// 8 (Simulator*) + 32 (Rng) + 16 (delay params) = 56 bytes -- inline in
/// EventClosure, matching the kernel's worst real capture.
struct HoldTimer {
  sim::Simulator* simulator;
  Rng rng;
  double short_mean;
  double long_mean;  ///< 0 = single-mode hold model

  void operator()() {
    double delay = rng.exponential(short_mean);
    if (long_mean > 0 && rng.chance(0.1)) delay += rng.exponential(long_mean);
    simulator->schedule_in(delay, HoldTimer(*this));
  }
};

void bm_hold(benchmark::State& state, sim::QueueEngine engine,
             double long_mean) {
  sim::Simulator simulator(engine);
  Rng seeder(7);
  const auto pending = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < pending; ++i) {
    HoldTimer timer{&simulator, seeder.split(), 1.0, long_mean};
    simulator.schedule_in(seeder.uniform(0, 2.0), std::move(timer));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(simulator.events_executed()));
  state.counters["rebuilds"] =
      static_cast<double>(simulator.queue_rebuilds());
}

void BM_HoldModel_Calendar(benchmark::State& state) {
  bm_hold(state, sim::QueueEngine::kCalendar, 0);
}
void BM_HoldModel_LegacyHeap(benchmark::State& state) {
  bm_hold(state, sim::QueueEngine::kLegacyHeap, 0);
}
BENCHMARK(BM_HoldModel_Calendar)->Arg(1000)->Arg(100000);
BENCHMARK(BM_HoldModel_LegacyHeap)->Arg(1000)->Arg(100000);

void BM_MixedHorizon_Calendar(benchmark::State& state) {
  bm_hold(state, sim::QueueEngine::kCalendar, 100.0);
}
void BM_MixedHorizon_LegacyHeap(benchmark::State& state) {
  bm_hold(state, sim::QueueEngine::kLegacyHeap, 100.0);
}
BENCHMARK(BM_MixedHorizon_Calendar)->Arg(1000)->Arg(100000);
BENCHMARK(BM_MixedHorizon_LegacyHeap)->Arg(1000)->Arg(100000);

void bm_burst(benchmark::State& state, sim::QueueEngine engine) {
  sim::Simulator simulator(engine);
  const auto burst = static_cast<int>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const double at = simulator.now() + 1.0;
    for (int i = 0; i < burst; ++i) {
      simulator.schedule_at(at, [&sink, i] { sink += std::uint64_t(i); });
    }
    simulator.run_all();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(simulator.events_executed()));
}

void BM_BurstFanout_Calendar(benchmark::State& state) {
  bm_burst(state, sim::QueueEngine::kCalendar);
}
void BM_BurstFanout_LegacyHeap(benchmark::State& state) {
  bm_burst(state, sim::QueueEngine::kLegacyHeap);
}
BENCHMARK(BM_BurstFanout_Calendar)->Arg(64)->Arg(1024);
BENCHMARK(BM_BurstFanout_LegacyHeap)->Arg(64)->Arg(1024);

/// 16-byte capture: fits both std::function's SBO and EventClosure's.
struct SmallCapture {
  std::uint64_t* sink;
  std::uint64_t value;
  void operator()() const { *sink += value; }
};

/// 56-byte capture: the Channel::unicast shape.  Over std::function's
/// 16-byte inline buffer (heap-allocates), under EventClosure's 64.
struct LargeCapture {
  std::uint64_t* sink;
  std::uint64_t a, b, c, d, e;
  bool flag;
  void operator()() const { *sink += a + b + c + d + e + (flag ? 1 : 0); }
};
static_assert(sizeof(LargeCapture) == 56);
static_assert(sim::EventClosure::fits_inline<LargeCapture>());

template <typename Capture>
void bm_std_function(benchmark::State& state, Capture capture) {
  for (auto _ : state) {
    std::function<void()> fn(capture);
    fn();
    benchmark::DoNotOptimize(fn);
  }
}

template <typename Capture>
void bm_event_closure(benchmark::State& state, Capture capture) {
  sim::ClosurePool pool;
  for (auto _ : state) {
    sim::EventClosure fn(pool, Capture(capture));
    fn();
    benchmark::DoNotOptimize(&fn);
  }
}

std::uint64_t g_sink = 0;

void BM_Closure_StdFunction_16B(benchmark::State& state) {
  bm_std_function(state, SmallCapture{&g_sink, 3});
}
void BM_Closure_EventClosure_16B(benchmark::State& state) {
  bm_event_closure(state, SmallCapture{&g_sink, 3});
}
void BM_Closure_StdFunction_56B(benchmark::State& state) {
  bm_std_function(state, LargeCapture{&g_sink, 1, 2, 3, 4, 5, true});
}
void BM_Closure_EventClosure_56B(benchmark::State& state) {
  bm_event_closure(state, LargeCapture{&g_sink, 1, 2, 3, 4, 5, true});
}
BENCHMARK(BM_Closure_StdFunction_16B);
BENCHMARK(BM_Closure_EventClosure_16B);
BENCHMARK(BM_Closure_StdFunction_56B);
BENCHMARK(BM_Closure_EventClosure_56B);

}  // namespace

BENCHMARK_MAIN();
