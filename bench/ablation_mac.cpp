// Ablation: simulator validity -- how much of the evaluation's shape
// comes from the shared medium (CSMA) vs. the protocols themselves.
//
// Reruns the Figure-4 mobility sweep endpoints under two MAC models:
// the evaluated CSMA channel (frames occupy the air around the sender)
// and a null MAC with infinite spatial reuse.  Observed split:
//   - the ENERGY ordering (Figs. 5/9: REFER lowest, DaTree exploding with
//     mobility, overlay high) is protocol-inherent -- it survives the
//     null MAC, because it counts messages, not airtime;
//   - the THROUGHPUT/DELAY separation (Figs. 4/6/7/8) requires the shared
//     medium: with free airtime every repair completes instantly and all
//     systems deliver everything.  This is exactly the role 802.11
//     contention plays in the paper's ns-2 evaluation, and why a
//     contention-aware MAC is part of this reproduction's substrate.
#include "registry.hpp"

namespace refer::bench {
namespace {

int run_ablation_mac(Context& ctx) {
  print_header("Ablation", "MAC model sensitivity (simulator validity)");

  for (const bool csma : {true, false}) {
    harness::Scenario base = ctx.opt.base;
    base.csma = csma;
    std::printf("\n--- %s ---\n",
                csma ? "CSMA shared medium (evaluated model)"
                     : "null MAC (infinite spatial reuse)");
    const auto points = run_sweep(
        ctx, base, {0.5, 2.5},
        [](harness::Scenario& sc, double avg_speed) {
          sc.mobile = true;
          sc.max_speed_mps = 2 * avg_speed;
        },
        csma ? "avg speed (m/s) [csma]" : "avg speed (m/s) [null-mac]");
    harness::print_series_table(
        "Throughput vs. mobility", "avg speed (m/s)",
        "QoS-guaranteed throughput (kbit/s)", points,
        [](const harness::AggregateMetrics& a) {
          return a.qos_throughput_kbps;
        });
    harness::print_series_table(
        "Communication energy vs. mobility", "avg speed (m/s)",
        "energy consumed in communication (J)", points,
        [](const harness::AggregateMetrics& a) { return a.comm_energy_j; });
  }
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("ablation_mac",
                     "Ablation: MAC model sensitivity (simulator validity)",
                     run_ablation_mac);

}  // namespace refer::bench
