// Paper Figure 9: energy consumed in communication vs. network size.
//
// Expected shape: REFER grows marginally; the others grow quickly;
// DaTree consumes the most (all sensors' paths lengthen and every repair
// retransmits from the source), above both D-DEAR and Kautz-overlay.
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace refer;
  using namespace refer::bench;
  const BenchOptions opt = parse_options(argc, argv);
  print_header("Figure 9", "communication energy vs. network size");

  const std::vector<double> sizes{100, 200, 300, 400};
  const auto points = harness::sweep(
      opt.base, sizes,
      [](harness::Scenario& sc, double n) {
        sc.n_sensors = static_cast<int>(n);
        // Constant density: a larger network occupies a wider deployment
        // (the paper's "path lengths increase as network size grows").
        sc.sensor_spread_m = 220.0 * std::sqrt(n / 200.0);
      },
      opt.reps);
  emit_series(opt, "Communication energy vs. network size", "# sensors",
              "energy consumed in communication (J)", "fig09", points,
              [](const harness::AggregateMetrics& a) {
                return a.comm_energy_j;
              });
  return 0;
}
