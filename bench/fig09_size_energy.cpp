// Paper Figure 9: energy consumed in communication vs. network size.
//
// Expected shape: REFER grows marginally; the others grow quickly;
// DaTree consumes the most (all sensors' paths lengthen and every repair
// retransmits from the source), above both D-DEAR and Kautz-overlay.
#include <cmath>

#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig09(Context& ctx) {
  print_header("Figure 9", "communication energy vs. network size");

  const std::vector<double> sizes{100, 200, 300, 400};
  const auto points = run_sweep(
      ctx, ctx.opt.base, sizes,
      [](harness::Scenario& sc, double n) {
        sc.n_sensors = static_cast<int>(n);
        // Constant density: a larger network occupies a wider deployment
        // (the paper's "path lengths increase as network size grows").
        sc.sensor_spread_m = 220.0 * std::sqrt(n / 200.0);
      },
      "# sensors");
  emit_series(ctx, "Communication energy vs. network size", "# sensors",
              "energy consumed in communication (J)", "fig09", points,
              [](const harness::AggregateMetrics& a) {
                return a.comm_energy_j;
              });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig09",
                     "Figure 9: communication energy vs. network size",
                     run_fig09);

}  // namespace refer::bench
