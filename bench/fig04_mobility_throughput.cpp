// Paper Figure 4: QoS-guaranteed throughput vs. average node mobility
// speed (speeds drawn U[0, 2x], so the x axis is the mean speed x).
//
// Expected shape: REFER nearly flat and highest; DaTree and D-DEAR
// decline moderately (DaTree below D-DEAR at high mobility);
// Kautz-overlay declines sharply and ends lowest.
#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig04(Context& ctx) {
  print_header("Figure 4", "throughput vs. node mobility");

  const std::vector<double> avg_speeds{0.5, 1.0, 1.5, 2.0, 2.5};
  const auto points = run_sweep(
      ctx, ctx.opt.base, avg_speeds,
      [](harness::Scenario& sc, double avg_speed) {
        sc.mobile = true;
        sc.min_speed_mps = 0;
        sc.max_speed_mps = 2 * avg_speed;
      },
      "avg speed (m/s)");
  emit_series(ctx, "Throughput vs. mobility", "avg speed (m/s)",
              "QoS-guaranteed throughput (kbit/s)", "fig04", points,
              [](const harness::AggregateMetrics& a) {
                return a.qos_throughput_kbps;
              });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig04", "Figure 4: QoS throughput vs. node mobility",
                     run_fig04);

}  // namespace refer::bench
