// Ablation: network lifetime under finite batteries.
//
// Every sensor starts with the same battery budget; transmissions and
// receptions drain it (2 / 0.75 J per packet) and a drained sensor dies.
// The classic WSN lifetime questions: when does the first relay die, and
// how does delivery decay as the network starves?
//
// REFER's maintenance retires Kautz nodes *before* they drain
// (battery_threshold) and rotates duty onto wait-state candidates, so the
// relay role spreads across the population; DaTree and D-DEAR burn their
// tree parents / cluster heads until they die and repairs concentrate
// load on whoever is left.
#include <cmath>
#include <cstdio>

#include "baselines/datree.hpp"
#include "baselines/ddear.hpp"
#include "refer/system.hpp"
#include "registry.hpp"

using namespace refer;

namespace {

struct LifetimeResult {
  double first_death_s = -1;
  double half_dead_s = -1;
  int dead_at_end = 0;
  int delivered = 0;
  int sent = 0;
};

/// Runs one system under steady traffic until `horizon_s`; kills sensors
/// whose batteries drain.
template <typename SendFn>
LifetimeResult run_lifetime(sim::Simulator& simulator, sim::World& world,
                            sim::EnergyTracker& energy,
                            const std::vector<sim::NodeId>& sensors,
                            double horizon_s, SendFn&& send) {
  LifetimeResult result;
  Rng pick(17);
  const double t0 = simulator.now();
  int dead = 0;
  while (simulator.now() < t0 + horizon_s) {
    // Traffic: 4 events per second from random alive sensors.
    for (int i = 0; i < 4; ++i) {
      const sim::NodeId src = sensors[pick.below(sensors.size())];
      if (!world.alive(src)) continue;
      ++result.sent;
      send(src, [&result](bool ok) { result.delivered += ok; });
    }
    simulator.run_until(simulator.now() + 1.0);
    // Battery deaths.
    for (sim::NodeId s : sensors) {
      if (!world.alive(s)) continue;
      if (energy.battery(static_cast<std::size_t>(s)) <= 0) {
        world.set_alive(s, false);
        ++dead;
        if (result.first_death_s < 0) {
          result.first_death_s = simulator.now() - t0;
        }
        if (dead * 2 >= static_cast<int>(sensors.size()) &&
            result.half_dead_s < 0) {
          result.half_dead_s = simulator.now() - t0;
        }
      }
    }
  }
  result.dead_at_end = dead;
  return result;
}

struct Deployment {
  Deployment(std::uint64_t seed, double battery_j)
      : world({{0, 0}, {500, 500}}, simulator),
        channel(simulator, world, energy, Rng(seed)) {
    for (const Point p : {Point{125, 125}, Point{375, 125}, Point{125, 375},
                          Point{375, 375}, Point{250, 250}}) {
      world.add_actuator(p, 250);
    }
    Rng rng(seed * 131 + 7);
    for (int i = 0; i < 200; ++i) {
      const Point anchor = world.position(static_cast<int>(rng.below(5)));
      const double ang = rng.uniform(0, 6.28318530717958648);
      const double rad = 220 * std::sqrt(rng.uniform());
      sensors.push_back(world.add_sensor(
          clamp({anchor.x + rad * std::cos(ang),
                 anchor.y + rad * std::sin(ang)},
                {{0, 0}, {500, 500}}),
          100, 0, 1.5, rng.split()));
    }
    energy.resize(world.size());
    energy.set_initial_battery(battery_j);
  }
  sim::Simulator simulator;
  sim::World world;
  sim::EnergyTracker energy;
  sim::Channel channel;
  std::vector<sim::NodeId> sensors;
};

void report(const char* name, const LifetimeResult& r, double horizon) {
  std::printf("%-10s first death %7.1f s   half dead %7s   dead %3d/200   "
              "delivered %4.1f%%\n",
              name, r.first_death_s < 0 ? horizon : r.first_death_s,
              r.half_dead_s < 0
                  ? "never"
                  : (std::to_string(static_cast<int>(r.half_dead_s)) + " s")
                        .c_str(),
              r.dead_at_end,
              r.sent ? 100.0 * r.delivered / r.sent : 0.0);
}

int run_ablation_lifetime(bench::Context&) {
  const double battery_j = 1500;  // ~750 transmissions per sensor
  const double horizon_s = 300;
  std::printf(
      "Network lifetime ablation: %g J batteries, 4 events/s, %g s "
      "horizon\n\n", battery_j, horizon_s);

  {
    Deployment dep(1, battery_j);
    core::ReferSystem system(dep.simulator, dep.world, dep.channel,
                             dep.energy, Rng(7));
    bool ok = false;
    system.build([&](bool r) { ok = r; });
    dep.simulator.run_until(30);
    if (!ok) {
      std::printf("REFER construction failed\n");
      return 1;
    }
    const auto r = run_lifetime(
        dep.simulator, dep.world, dep.energy, dep.sensors, horizon_s,
        [&](sim::NodeId src, auto done) {
          system.send_to_actuator(src, 1000,
                                  [done](const core::DeliveryReport& rep) {
                                    done(rep.delivered);
                                  });
        });
    report("REFER", r, horizon_s);
    std::printf("           (duty rotations by maintenance: %llu)\n",
                static_cast<unsigned long long>(
                    system.maintenance().stats().replacements));
  }
  {
    Deployment dep(1, battery_j);
    net::Flooder flooder(dep.simulator, dep.world, dep.channel);
    baselines::DaTree tree(dep.simulator, dep.world, dep.channel, flooder);
    bool ok = false;
    tree.build([&](bool r) { ok = r; });
    dep.simulator.run_until(30);
    const auto r = run_lifetime(
        dep.simulator, dep.world, dep.energy, dep.sensors, horizon_s,
        [&](sim::NodeId src, auto done) {
          tree.send_event(src, 1000, [done](const baselines::Delivery& d) {
            done(d.delivered);
          });
        });
    report("DaTree", r, horizon_s);
  }
  {
    Deployment dep(1, battery_j);
    net::Flooder flooder(dep.simulator, dep.world, dep.channel);
    baselines::DDear ddear(dep.simulator, dep.world, dep.channel, flooder,
                           dep.energy);
    bool ok = false;
    ddear.build([&](bool r) { ok = r; });
    dep.simulator.run_until(30);
    const auto r = run_lifetime(
        dep.simulator, dep.world, dep.energy, dep.sensors, horizon_s,
        [&](sim::NodeId src, auto done) {
          ddear.send_event(src, 1000, [done](const baselines::Delivery& d) {
            done(d.delivered);
          });
        });
    report("D-DEAR", r, horizon_s);
  }
  std::printf(
      "\nREFER retires relays before they drain (SIII-B4 battery "
      "threshold), so the first death comes later and delivery holds.\n");
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("ablation_lifetime",
                     "Ablation: network lifetime under finite batteries",
                     run_ablation_lifetime);
