// Paper Figure 7: QoS-guaranteed throughput vs. number of faulty nodes.
//
// Expected shape: all systems decline as faults grow; REFER declines the
// least; D-DEAR above DaTree (faults only break head paths, not every
// sensor's path); Kautz-overlay lowest in absolute terms (long paths eat
// the QoS budget).
#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig07(Context& ctx) {
  print_header("Figure 7", "throughput vs. number of faulty nodes");

  const std::vector<double> faulty{2, 4, 6, 8, 10};
  const auto points = run_sweep(
      ctx, ctx.opt.base, faulty,
      [](harness::Scenario& sc, double n) {
        sc.faulty_nodes = static_cast<int>(n);
      },
      "# faulty nodes");
  emit_series(ctx, "Throughput vs. faulty nodes", "# faulty nodes",
              "QoS-guaranteed throughput (kbit/s)", "fig07", points,
              [](const harness::AggregateMetrics& a) {
                return a.qos_throughput_kbps;
              });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig07",
                     "Figure 7: QoS throughput vs. number of faulty nodes",
                     run_fig07);

}  // namespace refer::bench
