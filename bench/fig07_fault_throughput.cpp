// Paper Figure 7: QoS-guaranteed throughput vs. number of faulty nodes.
//
// Expected shape: all systems decline as faults grow; REFER declines the
// least; D-DEAR above DaTree (faults only break head paths, not every
// sensor's path); Kautz-overlay lowest in absolute terms (long paths eat
// the QoS budget).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace refer;
  using namespace refer::bench;
  const BenchOptions opt = parse_options(argc, argv);
  print_header("Figure 7", "throughput vs. number of faulty nodes");

  const std::vector<double> faulty{2, 4, 6, 8, 10};
  const auto points = harness::sweep(
      opt.base, faulty,
      [](harness::Scenario& sc, double n) {
        sc.faulty_nodes = static_cast<int>(n);
      },
      opt.reps);
  emit_series(opt, "Throughput vs. faulty nodes", "# faulty nodes",
              "QoS-guaranteed throughput (kbit/s)", "fig07", points,
              [](const harness::AggregateMetrics& a) {
                return a.qos_throughput_kbps;
              });
  return 0;
}
