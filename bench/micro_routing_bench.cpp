// Micro-benchmarks (google-benchmark) for the paper's core algorithmic
// claim (SIII-C): a REFER node derives the d disjoint successors and
// their path lengths from the two node IDs alone, in O(d + k) --
// previous Kautz systems (BAKE/DFTR [18, 21]) run a route-generation
// (tree-building) algorithm that explores the graph.
//
// BM_Theorem38_* vs. BM_RouteGeneration_* is the apples-to-apples
// comparison; the message-count counters show the protocol-level cost
// the paper argues about (messages a real network would send).
#include <benchmark/benchmark.h>

#include "kautz/graph.hpp"
#include "kautz/routing.hpp"
#include "kautz/verifier.hpp"

namespace {

using namespace refer::kautz;

std::pair<Label, Label> pair_for(const Graph& g, std::uint64_t i) {
  const auto n = g.node_count();
  const Label u = Label::from_index(i % n, g.degree(), g.diameter());
  Label v = Label::from_index((i * 7919 + 13) % n, g.degree(), g.diameter());
  if (v == u) {
    v = Label::from_index((i * 7919 + 14) % n, g.degree(), g.diameter());
  }
  return {u, v};
}

void BM_GreedySuccessor(benchmark::State& state) {
  const Graph g(static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = pair_for(g, ++i);
    benchmark::DoNotOptimize(greedy_successor(u, v));
  }
}
BENCHMARK(BM_GreedySuccessor)->Args({2, 3})->Args({4, 4})->Args({4, 6});

void BM_Theorem38_DisjointRoutes(benchmark::State& state) {
  const Graph g(static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = pair_for(g, ++i);
    benchmark::DoNotOptimize(disjoint_routes(g.degree(), u, v));
  }
  state.counters["graph_nodes"] =
      static_cast<double>(g.node_count());
  state.counters["nodes_examined"] = static_cast<double>(g.degree());
}
BENCHMARK(BM_Theorem38_DisjointRoutes)
    ->Args({2, 3})
    ->Args({3, 3})
    ->Args({4, 4})
    ->Args({4, 6})
    ->Args({5, 5});

void BM_RouteGeneration_DisjointPaths(benchmark::State& state) {
  // The DFTR-style baseline: repeated BFS with node removal.  Its
  // nodes_visited counter models the messages a distributed
  // implementation floods.
  const Graph g(static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
  std::uint64_t i = 0;
  double visited = 0, queries = 0;
  for (auto _ : state) {
    const auto [u, v] = pair_for(g, ++i);
    const auto cost = route_generation_cost(g, u, v);
    visited += static_cast<double>(cost.nodes_visited);
    ++queries;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["graph_nodes"] = static_cast<double>(g.node_count());
  state.counters["nodes_examined"] = queries ? visited / queries : 0;
}
BENCHMARK(BM_RouteGeneration_DisjointPaths)
    ->Args({2, 3})
    ->Args({3, 3})
    ->Args({4, 4})
    ->Args({4, 6})
    ->Args({5, 5});

void BM_CanonicalPathMaterialisation(benchmark::State& state) {
  const Graph g(static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = pair_for(g, ++i);
    for (const auto& r : disjoint_routes(g.degree(), u, v)) {
      benchmark::DoNotOptimize(canonical_path(u, v, r));
    }
  }
}
BENCHMARK(BM_CanonicalPathMaterialisation)->Args({2, 3})->Args({4, 4});

void BM_HamiltonianCycle(benchmark::State& state) {
  const Graph g(static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.hamiltonian_cycle());
  }
  state.counters["graph_nodes"] = static_cast<double>(g.node_count());
}
BENCHMARK(BM_HamiltonianCycle)->Args({2, 3})->Args({3, 4})->Args({2, 10});

}  // namespace

BENCHMARK_MAIN();
