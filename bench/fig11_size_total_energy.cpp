// Paper Figure 11: total energy (communication + topology construction)
// vs. network size, confirming that construction is a small fraction of
// the total and REFER has the lowest total.
#include <cmath>

#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig11(Context& ctx) {
  print_header("Figure 11", "total energy vs. network size");

  const std::vector<double> sizes{100, 200, 300, 400};
  const auto points = run_sweep(
      ctx, ctx.opt.base, sizes,
      [](harness::Scenario& sc, double n) {
        sc.n_sensors = static_cast<int>(n);
        // Constant density: a larger network occupies a wider deployment
        // (the paper's "path lengths increase as network size grows").
        sc.sensor_spread_m = 220.0 * std::sqrt(n / 200.0);
      },
      "# sensors");
  emit_series(ctx, "Total energy vs. network size", "# sensors",
              "total energy: communication + construction (J)", "fig11",
              points,
              [](const harness::AggregateMetrics& a) {
                return a.total_energy_j;
              });
  harness::print_series_table(
      "Construction share of total", "# sensors",
      "construction / total (ratio)", points,
      [](const harness::AggregateMetrics& a) {
        Summary ratio;
        // Ratio of means; CI widths are not propagated for this derived
        // quantity, so report the point estimate only.
        if (a.total_energy_j.mean() > 0) {
          ratio.add(a.construction_energy_j.mean() / a.total_energy_j.mean());
        }
        return ratio;
      });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig11", "Figure 11: total energy vs. network size",
                     run_fig11);

}  // namespace refer::bench
