// Closed-loop scenario family (no paper counterpart -- the paper stops
// at one-way QoS delivery): control-loop QoS vs. actuator failure rate.
//
// x is app-tier breaks per actuator per 1000 s (Poisson, 15 s repair);
// the app layer (src/app) senses events, reports them through the
// routing stack under test, and requires the actuation command back at
// the sensor within the loop deadline.  Four series per sweep: loop
// completion ratio, loop latency p95, actuator availability, and mean
// recovery time (keepalive-lapse detection -> recovery handshake).
//
// Expected shape: completion ratio and availability fall with the break
// rate for every system (availability identically -- the fault schedule
// is routing-independent); the routing stacks separate on completion
// ratio and latency p95, REFER ahead of the baselines, mirroring the
// one-way QoS figures.
#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig_app(Context& ctx) {
  print_header("App closed-loop",
               "control-loop QoS vs. actuator failure rate");

  harness::Scenario base = ctx.opt.base;
  base.app_enabled = true;
  // The context snapshotted the CLI base scenario before this bench
  // turned the app tier on; re-record so the JSON matches what ran.
  ctx.results.set_scenario(base);

  const std::vector<double> breaks_per_1000s{0, 5, 10, 20, 40};
  const auto points = run_sweep(
      ctx, base, breaks_per_1000s,
      [](harness::Scenario& sc, double rate) {
        sc.app_break_rate_hz = rate / 1000.0;
      },
      "breaks per actuator per 1000 s");
  emit_series(ctx, "Loop completion vs. actuator failure rate",
              "breaks / 1000 s", "loops completed within deadline / started",
              "fig_app_completion", points,
              [](const harness::AggregateMetrics& a) {
                return a.app_loop_completion_ratio;
              });
  emit_series(ctx, "Loop latency p95 vs. actuator failure rate",
              "breaks / 1000 s", "loop latency p95 (ms)", "fig_app_p95",
              points, [](const harness::AggregateMetrics& a) {
                return a.app_loop_p95_ms;
              });
  emit_series(ctx, "Actuator availability vs. failure rate",
              "breaks / 1000 s", "actuator availability", "fig_app_avail",
              points, [](const harness::AggregateMetrics& a) {
                return a.app_actuator_availability;
              });
  emit_series(ctx, "Mean recovery time vs. failure rate", "breaks / 1000 s",
              "mean recovery time (s)", "fig_app_recovery", points,
              [](const harness::AggregateMetrics& a) {
                return a.app_mean_recovery_s;
              });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig_app",
                     "Closed loop: control-loop QoS vs. actuator failures",
                     run_fig_app);

}  // namespace refer::bench
