// Micro-benchmarks (google-benchmark) for the spatial grid index and the
// Theorem 3.8 route cache -- the two hot-path optimisations that keep
// per-packet cost proportional to *degree* instead of deployment size.
//
// BM_ReachableFrom_{Linear,Grid} scale the deployment at constant density
// (area side grows with sqrt(n)), so the per-query neighbour count stays
// flat while n grows: the linear scan degrades with n, the grid should
// not.  The acceptance bar is >= 5x at n = 1000.
//
// BM_DisjointRoutes_{Uncached,Cached} replay a repeating working set of
// (u, v) pairs, the traffic pattern real flows produce.
//
// BM_CsmaReserveTxSlot_* and BM_BroadcastReceivers_* drive the two
// Channel paths that issue a geometric query per transmission (the CSMA
// medium scan and broadcast receiver materialisation) through the real
// event kernel, with the neighbor cache on and off.  Simulated time
// advances with every send, so mobility re-bins and row rebuilds happen
// at their natural rate -- the measured delta is the steady-state win.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "kautz/graph.hpp"
#include "kautz/route_cache.hpp"
#include "kautz/routing.hpp"
#include "sim/channel.hpp"
#include "sim/world.hpp"

namespace {

using namespace refer;
using sim::NodeId;

/// The fig04/fig08 deployment shape at constant density: ~200 sensors per
/// 500 m x 500 m, sensors i.i.d. around a quincunx of actuators.
struct Fixture {
  explicit Fixture(int n_sensors, bool spatial_index)
      : side(500.0 * std::sqrt(n_sensors / 200.0)),
        world({{0, 0}, {side, side}}, simulator) {
    world.set_spatial_index_enabled(spatial_index);
    Rng rng(42);
    std::vector<NodeId> actuators;
    for (const Point p :
         {Point{0.25 * side, 0.25 * side}, Point{0.75 * side, 0.25 * side},
          Point{0.25 * side, 0.75 * side}, Point{0.75 * side, 0.75 * side},
          Point{0.50 * side, 0.50 * side}}) {
      actuators.push_back(world.add_actuator(p, 250));
    }
    for (int i = 0; i < n_sensors; ++i) {
      const Point anchor =
          world.position(actuators[rng.below(actuators.size())]);
      const double ang = rng.uniform(0, 2 * 3.14159265358979323846);
      const double rad = 0.44 * side * std::sqrt(rng.uniform());
      world.add_sensor(clamp({anchor.x + rad * std::cos(ang),
                              anchor.y + rad * std::sin(ang)},
                             world.area()),
                       100, 0, 3, rng.split());
    }
  }

  double side;
  sim::Simulator simulator;
  sim::World world;
};

void bm_reachable_from(benchmark::State& state, bool spatial_index) {
  Fixture fx(static_cast<int>(state.range(0)), spatial_index);
  const auto n = static_cast<NodeId>(fx.world.size());
  NodeId from = 0;
  std::uint64_t visited = 0;
  // Advance simulated time every few queries so the mobile nodes drift
  // and the index has to revalidate -- the realistic steady state, where
  // one simulator event issues several geometric queries.
  double t = 0;
  int countdown = 0;
  for (auto _ : state) {
    if (--countdown <= 0) {
      countdown = 8;
      t += 1e-3;
      fx.simulator.run_until(t);
    }
    from = (from + 1) % n;
    fx.world.visit_reachable(from, [&](NodeId) { ++visited; });
  }
  benchmark::DoNotOptimize(visited);
  state.counters["visited_per_query"] =
      benchmark::Counter(static_cast<double>(visited),
                         benchmark::Counter::kAvgIterations);
}

void BM_ReachableFrom_Linear(benchmark::State& state) {
  bm_reachable_from(state, /*spatial_index=*/false);
}
void BM_ReachableFrom_Grid(benchmark::State& state) {
  bm_reachable_from(state, /*spatial_index=*/true);
}
BENCHMARK(BM_ReachableFrom_Linear)->Arg(250)->Arg(1000)->Arg(4000);
BENCHMARK(BM_ReachableFrom_Grid)->Arg(250)->Arg(1000)->Arg(4000);

void bm_closest_actuator(benchmark::State& state, bool spatial_index) {
  Fixture fx(static_cast<int>(state.range(0)), spatial_index);
  const auto n = static_cast<NodeId>(fx.world.size());
  NodeId from = 0;
  for (auto _ : state) {
    from = (from + 1) % n;
    benchmark::DoNotOptimize(fx.world.closest_actuator(from));
  }
}

void BM_ClosestActuator_Linear(benchmark::State& state) {
  bm_closest_actuator(state, /*spatial_index=*/false);
}
void BM_ClosestActuator_Grid(benchmark::State& state) {
  bm_closest_actuator(state, /*spatial_index=*/true);
}
BENCHMARK(BM_ClosestActuator_Linear)->Arg(1000)->Arg(4000);
BENCHMARK(BM_ClosestActuator_Grid)->Arg(1000)->Arg(4000);

/// Fixture + shared medium: the channel's CSMA scan and receiver
/// materialisation both funnel through World::visit_reachable, so the
/// cache toggle is the only variable between the paired benchmarks.
struct ChannelFixture : Fixture {
  ChannelFixture(int n_sensors, bool neighbor_cache)
      : Fixture(n_sensors, /*spatial_index=*/true),
        channel(simulator, world, energy, Rng(5)) {
    world.set_neighbor_cache_enabled(neighbor_cache);
    energy.resize(world.size());
  }

  sim::EnergyTracker energy;
  sim::Channel channel;
};

void bm_csma_unicast(benchmark::State& state, bool neighbor_cache) {
  ChannelFixture fx(static_cast<int>(state.range(0)), neighbor_cache);
  const auto n = static_cast<NodeId>(fx.world.size());
  NodeId from = 0;
  // A relay draining a 16-deep MAC queue -- the congested steady state
  // past fig_sat's saturation knee, where transmissions leave the same
  // node back to back and each one's CSMA medium scan repeats against an
  // unchanged neighbourhood.  Each iteration enqueues one such drain and
  // runs the kernel (deliveries, acks, timeouts) to completion; per-send
  // cost is the reported time / 16.
  for (auto _ : state) {
    from = (from + 1) % n;
    for (int k = 0; k < 16; ++k) {
      fx.channel.unicast(from, (from + 7 + k) % n, 2500,
                         sim::EnergyBucket::kData, nullptr);
    }
    fx.simulator.run_all();
  }
  benchmark::DoNotOptimize(fx.channel.stats().unicasts_sent);
}

void BM_CsmaReserveTxSlot_NoCache(benchmark::State& state) {
  bm_csma_unicast(state, /*neighbor_cache=*/false);
}
void BM_CsmaReserveTxSlot_Cache(benchmark::State& state) {
  bm_csma_unicast(state, /*neighbor_cache=*/true);
}
BENCHMARK(BM_CsmaReserveTxSlot_NoCache)->Arg(250)->Arg(1000)->Arg(4000);
BENCHMARK(BM_CsmaReserveTxSlot_Cache)->Arg(250)->Arg(1000)->Arg(4000);

void bm_broadcast_receivers(benchmark::State& state, bool neighbor_cache) {
  ChannelFixture fx(static_cast<int>(state.range(0)), neighbor_cache);
  const auto n = static_cast<NodeId>(fx.world.size());
  NodeId from = 0;
  std::uint64_t received = 0;
  // One broadcast = one medium scan (tx slot) + one receiver
  // materialisation -- the per-hop cost of flooding.
  for (auto _ : state) {
    from = (from + 1) % n;
    fx.channel.broadcast(from, 100, sim::EnergyBucket::kMaintenance,
                         [&](NodeId) { ++received; });
    fx.simulator.run_all();
  }
  benchmark::DoNotOptimize(received);
  state.counters["receivers_per_bcast"] =
      benchmark::Counter(static_cast<double>(received),
                         benchmark::Counter::kAvgIterations);
}

void BM_BroadcastReceivers_NoCache(benchmark::State& state) {
  bm_broadcast_receivers(state, /*neighbor_cache=*/false);
}
void BM_BroadcastReceivers_Cache(benchmark::State& state) {
  bm_broadcast_receivers(state, /*neighbor_cache=*/true);
}
BENCHMARK(BM_BroadcastReceivers_NoCache)->Arg(250)->Arg(1000)->Arg(4000);
BENCHMARK(BM_BroadcastReceivers_Cache)->Arg(250)->Arg(1000)->Arg(4000);

/// A working set of 64 (u, v) pairs replayed round-robin: what a handful
/// of concurrent flows look like to a relay's route derivation.
std::vector<std::pair<kautz::Label, kautz::Label>> working_set(
    const kautz::Graph& g) {
  std::vector<std::pair<kautz::Label, kautz::Label>> pairs;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto n = g.node_count();
    const kautz::Label u =
        kautz::Label::from_index((i * 131) % n, g.degree(), g.diameter());
    kautz::Label v =
        kautz::Label::from_index((i * 7919 + 13) % n, g.degree(),
                                 g.diameter());
    if (v == u) {
      v = kautz::Label::from_index((i * 7919 + 14) % n, g.degree(),
                                   g.diameter());
    }
    pairs.emplace_back(u, v);
  }
  return pairs;
}

void BM_DisjointRoutes_Uncached(benchmark::State& state) {
  const kautz::Graph g(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  const auto pairs = working_set(g);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(kautz::disjoint_routes(g.degree(), u, v));
  }
}

void BM_DisjointRoutes_Cached(benchmark::State& state) {
  const kautz::Graph g(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  const auto pairs = working_set(g);
  kautz::RouteCache cache;
  std::vector<kautz::Route> out;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ % pairs.size()];
    cache.lookup(g.degree(), u, v, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
}

BENCHMARK(BM_DisjointRoutes_Uncached)->Args({2, 3})->Args({4, 4});
BENCHMARK(BM_DisjointRoutes_Cached)->Args({2, 3})->Args({4, 4});

}  // namespace

BENCHMARK_MAIN();
