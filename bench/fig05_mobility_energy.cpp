// Paper Figure 5: energy consumed in communication (data forwarding +
// topology maintenance) vs. average node mobility speed.
//
// Expected shape: REFER lowest with a slight rise; D-DEAR rises fast;
// DaTree and Kautz-overlay rise fastest, with the crossover the paper
// highlights: Kautz-overlay < DaTree at 0.5 m/s but > DaTree when
// mobility is high.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace refer;
  using namespace refer::bench;
  const BenchOptions opt = parse_options(argc, argv);
  print_header("Figure 5", "communication energy vs. node mobility");

  const std::vector<double> avg_speeds{0.5, 1.0, 1.5, 2.0, 2.5};
  const auto points = harness::sweep(
      opt.base, avg_speeds,
      [](harness::Scenario& sc, double avg_speed) {
        sc.mobile = true;
        sc.min_speed_mps = 0;
        sc.max_speed_mps = 2 * avg_speed;
      },
      opt.reps);
  emit_series(opt, "Communication energy vs. mobility", "avg speed (m/s)",
              "energy consumed in communication (J)", "fig05", points,
              [](const harness::AggregateMetrics& a) {
                return a.comm_energy_j;
              });
  return 0;
}
