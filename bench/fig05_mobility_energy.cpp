// Paper Figure 5: energy consumed in communication (data forwarding +
// topology maintenance) vs. average node mobility speed.
//
// Expected shape: REFER lowest with a slight rise; D-DEAR rises fast;
// DaTree and Kautz-overlay rise fastest, with the crossover the paper
// highlights: Kautz-overlay < DaTree at 0.5 m/s but > DaTree when
// mobility is high.
#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig05(Context& ctx) {
  print_header("Figure 5", "communication energy vs. node mobility");

  const std::vector<double> avg_speeds{0.5, 1.0, 1.5, 2.0, 2.5};
  const auto points = run_sweep(
      ctx, ctx.opt.base, avg_speeds,
      [](harness::Scenario& sc, double avg_speed) {
        sc.mobile = true;
        sc.min_speed_mps = 0;
        sc.max_speed_mps = 2 * avg_speed;
      },
      "avg speed (m/s)");
  emit_series(ctx, "Communication energy vs. mobility", "avg speed (m/s)",
              "energy consumed in communication (J)", "fig05", points,
              [](const harness::AggregateMetrics& a) {
                return a.comm_energy_j;
              });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig05",
                     "Figure 5: communication energy vs. node mobility",
                     run_fig05);

}  // namespace refer::bench
