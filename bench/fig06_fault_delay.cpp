// Paper Figure 6: average transmission delay of QoS-guaranteed data vs.
// number of faulty nodes (a fresh random faulty set every 10 s).
//
// Expected shape: REFER least delay with slight growth (local ID-only
// fail-over); Kautz-overlay high but flat-ish (fault-tolerant routing
// over long multi-hop arcs); DaTree below Kautz-overlay for few faulty
// nodes, above it beyond ~6; D-DEAR between REFER and DaTree.
#include "registry.hpp"

namespace refer::bench {
namespace {

int run_fig06(Context& ctx) {
  print_header("Figure 6", "delay vs. number of faulty nodes");

  const std::vector<double> faulty{2, 4, 6, 8, 10};
  const auto points = run_sweep(
      ctx, ctx.opt.base, faulty,
      [](harness::Scenario& sc, double n) {
        sc.faulty_nodes = static_cast<int>(n);
      },
      "# faulty nodes");
  emit_series(ctx, "Delay vs. faulty nodes", "# faulty nodes",
              "avg delay of QoS-guaranteed data (ms)", "fig06", points,
              [](const harness::AggregateMetrics& a) {
                return a.avg_delay_ms;
              });
  return 0;
}

}  // namespace

REFER_REGISTER_BENCH("fig06", "Figure 6: delay vs. number of faulty nodes",
                     run_fig06);

}  // namespace refer::bench
