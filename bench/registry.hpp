// The figure/ablation registry behind the `referbench` CLI.
//
// Each bench translation unit registers itself with
// REFER_REGISTER_BENCH("fig04", "...", run_fig04); the CLI looks
// benches up by name, so adding a reproduction is one registration --
// no new binary, no duplicated flag parsing.
#pragma once

#include <algorithm>
#include <string_view>
#include <vector>

#include "bench_common.hpp"

namespace refer::bench {

using BenchFn = int (*)(Context&);

struct BenchInfo {
  const char* name;
  const char* description;
  BenchFn fn;
};

inline std::vector<BenchInfo>& registry() {
  static std::vector<BenchInfo> benches;
  return benches;
}

inline bool register_bench(const char* name, const char* description,
                           BenchFn fn) {
  registry().push_back({name, description, fn});
  return true;
}

/// Registered benches sorted by name (registration order is link order,
/// which is not meaningful to users).
inline std::vector<BenchInfo> sorted_registry() {
  std::vector<BenchInfo> benches = registry();
  std::sort(benches.begin(), benches.end(),
            [](const BenchInfo& a, const BenchInfo& b) {
              return std::string_view(a.name) < std::string_view(b.name);
            });
  return benches;
}

inline const BenchInfo* find_bench(std::string_view name) {
  for (const BenchInfo& info : registry()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

}  // namespace refer::bench

#define REFER_REGISTER_BENCH(name, description, fn)            \
  [[maybe_unused]] static const bool refer_bench_reg_##fn =    \
      ::refer::bench::register_bench(name, description, fn)
