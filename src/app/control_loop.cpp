#include "app/control_loop.hpp"

#include <algorithm>

#include "common/geometry.hpp"
#include "common/stats.hpp"
#include "sim/telemetry.hpp"

namespace refer::app {

using baselines::Delivery;
using sim::NodeId;

ControlLoopEngine::ControlLoopEngine(
    const harness::Scenario& scenario, sim::Simulator& sim, sim::World& world,
    sim::Channel& channel, sim::Tracer& tracer,
    baselines::WsanSystem& system, const std::vector<NodeId>& actuators,
    const std::vector<NodeId>& sensors, StatsRegistry& stats)
    : scenario_(scenario),
      sim_(sim),
      world_(world),
      channel_(channel),
      tracer_(tracer),
      system_(system),
      actuators_(actuators),
      sensors_(sensors),
      latency_ms_(&stats.histogram("app.loop_latency_ms")),
      // A stream independent of the deployment / workload / fault rngs:
      // the app tier must not perturb what the routing layers draw.
      rng_(scenario.seed ^ 0xA117D00DCAFE5EEDULL) {}

void ControlLoopEngine::emit(sim::TraceEvent event, NodeId from, NodeId to,
                             std::int64_t packet, std::size_t bytes,
                             int hop_index) {
  if (!tracer_.enabled()) return;
  sim::TraceRecord rec;
  rec.t = sim_.now();
  rec.event = event;
  rec.from = from;
  rec.to = to;
  rec.bytes = bytes;
  rec.packet = packet;
  rec.hop_index = hop_index;
  tracer_.emit(rec);
}

void ControlLoopEngine::start(double t0, double measure_from,
                              double measure_to) {
  t0_ = t0;
  measure_from_ = measure_from;
  measure_to_ = measure_to;

  // Fault windows: scripted entries (relative to t0) plus Poisson
  // break/repair draws, merged per actuator.  Entries naming an
  // actuator the deployment does not have are dropped.
  std::vector<FaultWindow> windows;
  (void)parse_fault_schedule(scenario_.app_fault_schedule, windows);
  {
    std::vector<FaultWindow> poisson = poisson_fault_windows(
        static_cast<int>(actuators_.size()), scenario_.app_break_rate_hz,
        scenario_.app_repair_s, measure_to_ - t0_, rng_);
    windows.insert(windows.end(), poisson.begin(), poisson.end());
  }
  windows.erase(std::remove_if(windows.begin(), windows.end(),
                               [this](const FaultWindow& w) {
                                 return w.actuator_index >=
                                        static_cast<int>(actuators_.size());
                               }),
                windows.end());
  windows_ = merge_windows(std::move(windows));

  supervisors_.reserve(actuators_.size());
  for (std::size_t a = 0; a < actuators_.size(); ++a) {
    std::vector<FaultWindow> own;
    for (const FaultWindow& w : windows_) {
      if (w.actuator_index == static_cast<int>(a)) own.push_back(w);
    }
    supervisors_.emplace_back(static_cast<int>(a), actuators_[a],
                              std::move(own));
  }

  // SmartOrchard-style registration handshake: every sensor binds to
  // its nearest (believed-up) actuator before traffic starts.
  registered_.assign(sensors_.size(), -1);
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    register_sensor(static_cast<int>(s));
  }

  schedule_keepalive(1);
  schedule_sensing_events();
}

int ControlLoopEngine::nearest_up_actuator(int sensor_index) {
  const Point p = world_.position(sensors_[static_cast<std::size_t>(
      sensor_index)]);
  int best = -1;
  double best_d = 0;
  for (std::size_t a = 0; a < supervisors_.size(); ++a) {
    if (supervisors_[a].believed_down()) continue;
    const double d = distance(p, world_.position(actuators_[a]));
    if (best < 0 || d < best_d) {
      best = static_cast<int>(a);
      best_d = d;
    }
  }
  return best;
}

void ControlLoopEngine::register_sensor(int sensor_index) {
  const int a = nearest_up_actuator(sensor_index);
  if (a < 0) return;  // every actuator believed down: keep the old binding
  registered_[static_cast<std::size_t>(sensor_index)] = a;
  ++registrations_;
  emit(sim::TraceEvent::kAppRegister,
       sensors_[static_cast<std::size_t>(sensor_index)],
       actuators_[static_cast<std::size_t>(a)]);
}

void ControlLoopEngine::schedule_keepalive(int tick) {
  const double at = t0_ + tick * scenario_.app_keepalive_period_s;
  if (at >= measure_to_) return;
  sim_.schedule_at(at, [this, tick] { on_keepalive_tick(tick); });
}

void ControlLoopEngine::on_keepalive_tick(int tick) {
  const double rel = tick * scenario_.app_keepalive_period_s;
  if (scenario_.planted_bug == 2 && tick == 1 && !supervisors_.empty()) {
    // TESTING ONLY (Scenario::planted_bug): a spurious recovery
    // handshake with no preceding believed-down span, so the invariant
    // engine can prove it audits the registration state machine.
    emit(sim::TraceEvent::kAppActuatorUp, supervisors_[0].node(), -1);
  }
  for (ActuatorSupervisor& sup : supervisors_) {
    const ActuatorSupervisor::Tick outcome = sup.on_keepalive(
        tick, rel, scenario_.app_keepalive_miss_limit);
    switch (outcome) {
      case ActuatorSupervisor::Tick::kAlive:
        break;
      case ActuatorSupervisor::Tick::kMiss:
      case ActuatorSupervisor::Tick::kStillDown:
        ++keepalive_misses_;
        emit(sim::TraceEvent::kAppKeepaliveMiss, sup.node(), -1, -1, 0,
             sup.misses());
        break;
      case ActuatorSupervisor::Tick::kWentDown: {
        ++keepalive_misses_;
        emit(sim::TraceEvent::kAppKeepaliveMiss, sup.node(), -1, -1, 0,
             sup.misses());
        emit(sim::TraceEvent::kAppActuatorDown, sup.node(), -1);
        // Fail-over: every sensor bound here re-registers with the
        // nearest actuator still believed up.
        for (std::size_t s = 0; s < registered_.size(); ++s) {
          if (registered_[s] == sup.index()) {
            register_sensor(static_cast<int>(s));
          }
        }
        break;
      }
      case ActuatorSupervisor::Tick::kRecovered: {
        // First clean keepalive after repair = the actuator's own
        // re-registration handshake; the believed-down span is the
        // recovery time (exact tick arithmetic).
        ++recoveries_;
        recovery_sum_s_ += sup.last_recovery_ticks() *
                           scenario_.app_keepalive_period_s;
        emit(sim::TraceEvent::kAppActuatorUp, sup.node(), -1);
        break;
      }
    }
  }
  schedule_keepalive(tick + 1);
}

void ControlLoopEngine::schedule_sensing_events() {
  const Rect area{{0, 0}, {scenario_.area_side_m, scenario_.area_side_m}};
  field_.generate_poisson(area, scenario_.app_event_period_s,
                          measure_to_ - t0_, kEventDurationS, rng_);
  for (const sensing::Event& event : field_.events()) {
    const double at = t0_ + event.start_s;
    if (at >= measure_to_) continue;
    sim_.schedule_at(at, [this, &event] { on_event_start(event); });
  }
}

void ControlLoopEngine::on_event_start(const sensing::Event& event) {
  // Threshold-triggered sensing: sensors sample the detection model in
  // index order (deterministic draw sequence); the first few detectors
  // each close a loop for this event.
  int started = 0;
  for (std::size_t s = 0; s < sensors_.size() && started < kMaxLoopsPerEvent;
       ++s) {
    if (!world_.alive(sensors_[s])) continue;
    if (!detector_.detects(rng_, world_.position(sensors_[s]), event)) {
      continue;
    }
    start_loop(static_cast<int>(s));
    ++started;
  }
}

void ControlLoopEngine::start_loop(int sensor_index) {
  const double now = sim_.now();
  Loop loop;
  loop.id = next_loop_id_++;
  loop.sensor_index = sensor_index;
  loop.sense_t = now;
  loop.counted = now >= measure_from_ && now < measure_to_;
  if (loop.counted) {
    ++loops_started_;
    if (telemetry_) telemetry_->on_app_loop_start(now);
  }
  const std::size_t slot = loops_.size();
  loops_.push_back(loop);

  // Uplink: the report is a normal workload packet through whichever
  // routing stack is under test.
  system_.send_event(sensors_[static_cast<std::size_t>(sensor_index)],
                     scenario_.packet_bytes,
                     [this, slot](const Delivery& d) { on_uplink(slot, d); });
  sim_.schedule_at(now + scenario_.app_loop_deadline_s,
                   [this, slot] { on_deadline(slot); });
}

void ControlLoopEngine::on_uplink(std::size_t loop_slot, const Delivery& d) {
  if (!d.delivered) return;  // the deadline timer will record the miss
  const Loop& loop = loops_[loop_slot];
  const int a = registered_[static_cast<std::size_t>(loop.sensor_index)];
  if (a < 0) return;
  ActuatorSupervisor& sup = supervisors_[static_cast<std::size_t>(a)];
  // The registered actuator decides and actuates.  Believed-down
  // bindings only persist when every actuator is down, and a fault
  // window not yet noticed by the keepalives still blocks actuation --
  // the loop then misses its deadline, which is the point.
  if (sup.believed_down() || sup.broken_at(sim_.now() - t0_)) return;
  const NodeId sensor =
      sensors_[static_cast<std::size_t>(loop.sensor_index)];
  emit(sim::TraceEvent::kAppActuate, sup.node(), sensor, loop.id,
       kCommandBytes);
  const NodeId actuator_node = sup.node();
  channel_.unicast(actuator_node, sensor, kCommandBytes,
                   sim::EnergyBucket::kData,
                   [this, loop_slot](bool ok) { on_command(loop_slot, ok); });
}

void ControlLoopEngine::on_command(std::size_t loop_slot, bool delivered) {
  if (!delivered) return;
  Loop& loop = loops_[loop_slot];
  if (loop.completed) return;
  loop.completed = true;
  const double latency_s = sim_.now() - loop.sense_t;
  emit(sim::TraceEvent::kAppLoopComplete,
       registered_[static_cast<std::size_t>(loop.sensor_index)] >= 0
           ? actuators_[static_cast<std::size_t>(
                 registered_[static_cast<std::size_t>(loop.sensor_index)])]
           : -1,
       sensors_[static_cast<std::size_t>(loop.sensor_index)], loop.id);
  if (!loop.counted) return;
  ++loops_completed_;
  latencies_ms_.push_back(latency_s * 1000.0);
  latency_ms_->record(latency_s * 1000.0);
  const bool within =
      !loop.missed && latency_s <= scenario_.app_loop_deadline_s;
  if (within) ++loops_within_deadline_;
  if (telemetry_) {
    telemetry_->on_app_loop_done(loop.sense_t, within, latency_s * 1000.0);
  }
}

void ControlLoopEngine::on_deadline(std::size_t loop_slot) {
  Loop& loop = loops_[loop_slot];
  if (loop.completed || loop.missed) return;
  loop.missed = true;
  emit(sim::TraceEvent::kAppLoopMiss,
       sensors_[static_cast<std::size_t>(loop.sensor_index)], -1, loop.id);
}

AppMetrics ControlLoopEngine::finalize() {
  AppMetrics m;
  m.loops_started = loops_started_;
  m.loops_completed = loops_completed_;
  m.loops_within_deadline = loops_within_deadline_;
  m.loop_completion_ratio =
      loops_started_ ? static_cast<double>(loops_within_deadline_) /
                           static_cast<double>(loops_started_)
                     : 0.0;
  m.loop_p50_ms = percentile(latencies_ms_, 50);
  m.loop_p95_ms = percentile(latencies_ms_, 95);
  m.loop_p99_ms = percentile(latencies_ms_, 99);
  const double denom = static_cast<double>(supervisors_.size()) *
                       (measure_to_ - measure_from_);
  m.actuator_availability =
      denom > 0
          ? 1.0 - broken_time_in(windows_, measure_from_ - t0_,
                                 measure_to_ - t0_) /
                      denom
          : 1.0;
  m.recoveries = recoveries_;
  m.mean_recovery_s =
      recoveries_ ? recovery_sum_s_ / static_cast<double>(recoveries_) : 0.0;
  return m;
}

void ControlLoopEngine::export_stats(StatsRegistry& stats) const {
  stats.counter("app.loops_started").set(loops_started_);
  stats.counter("app.loops_completed").set(loops_completed_);
  stats.counter("app.loops_within_deadline").set(loops_within_deadline_);
  stats.counter("app.registrations").set(registrations_);
  stats.counter("app.keepalive_misses").set(keepalive_misses_);
  stats.counter("app.recoveries").set(recoveries_);
}

}  // namespace refer::app
