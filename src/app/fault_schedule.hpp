// Deterministic actuator fault schedules for the application layer.
//
// A fault window is an application-tier outage of one actuator: the
// node's radio keeps routing (REFER cells and the baselines are
// untouched), but its actuation process is down, so keepalives lapse
// and commands cannot be issued until the window closes.  Windows come
// from two sources that compose:
//
//   - Scenario::app_fault_schedule, a scripted string
//     "idx@start+duration;idx@start+duration" with times in seconds
//     relative to the workload start t0 (a flat string keeps the
//     repro.json format nesting-free), and
//   - Scenario::app_break_rate_hz, Poisson-arrival breaks per actuator
//     with a fixed repair downtime (SmartOrchard's break/repair loop,
//     made deterministic by drawing from the run's seeded Rng).
//
// merge_windows() normalises the combined set (sorted, overlaps
// coalesced per actuator) so broken_time_in() can integrate actuator
// unavailability exactly -- the availability metric is a pure function
// of the schedule, not of sampling.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace refer::app {

/// One application-tier outage of one actuator (times relative to t0).
struct FaultWindow {
  int actuator_index = 0;  ///< index into the deployment's actuator list
  double start_rel_s = 0;
  double duration_s = 0;

  [[nodiscard]] double end_rel_s() const noexcept {
    return start_rel_s + duration_s;
  }
  [[nodiscard]] bool covers(double rel_s) const noexcept {
    return rel_s >= start_rel_s && rel_s < end_rel_s();
  }
};

/// Parses "idx@start+duration;..." (whitespace-free; empty string = no
/// windows).  Returns false -- leaving `out` untouched -- on malformed
/// entries, negative times, or a negative actuator index.
[[nodiscard]] bool parse_fault_schedule(const std::string& text,
                                        std::vector<FaultWindow>& out);

/// Renders windows back into the scripted-string form ("%g" times).
[[nodiscard]] std::string format_fault_schedule(
    const std::vector<FaultWindow>& windows);

/// Poisson break/repair windows: per actuator, up-time gaps are
/// Exp(1 / break_rate_hz) and every break lasts repair_s, until
/// horizon_rel_s.  Deterministic given the Rng state; actuators are
/// visited in index order so the draw sequence is reproducible.
[[nodiscard]] std::vector<FaultWindow> poisson_fault_windows(
    int n_actuators, double break_rate_hz, double repair_s,
    double horizon_rel_s, Rng& rng);

/// Sorts by (actuator, start) and coalesces overlapping / touching
/// windows of the same actuator.
[[nodiscard]] std::vector<FaultWindow> merge_windows(
    std::vector<FaultWindow> windows);

/// Total broken actuator-seconds inside [from_rel_s, to_rel_s), summed
/// over all actuators.  Expects merged windows (overlaps would double
/// count).
[[nodiscard]] double broken_time_in(const std::vector<FaultWindow>& windows,
                                    double from_rel_s, double to_rel_s);

}  // namespace refer::app
