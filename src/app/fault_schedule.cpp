#include "app/fault_schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace refer::app {

namespace {

/// Parses one "idx@start+duration" entry; false on any malformation.
bool parse_entry(const std::string& entry, FaultWindow& out) {
  const std::size_t at = entry.find('@');
  const std::size_t plus = entry.find('+', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || plus == std::string::npos || at == 0 ||
      plus <= at + 1 || plus + 1 >= entry.size()) {
    return false;
  }
  char* end = nullptr;
  const std::string idx_s = entry.substr(0, at);
  const std::string start_s = entry.substr(at + 1, plus - at - 1);
  const std::string dur_s = entry.substr(plus + 1);
  const long idx = std::strtol(idx_s.c_str(), &end, 10);
  if (end != idx_s.c_str() + idx_s.size() || idx < 0) return false;
  const double start = std::strtod(start_s.c_str(), &end);
  if (end != start_s.c_str() + start_s.size() || start < 0) return false;
  const double dur = std::strtod(dur_s.c_str(), &end);
  if (end != dur_s.c_str() + dur_s.size() || dur <= 0) return false;
  out.actuator_index = static_cast<int>(idx);
  out.start_rel_s = start;
  out.duration_s = dur;
  return true;
}

}  // namespace

bool parse_fault_schedule(const std::string& text,
                          std::vector<FaultWindow>& out) {
  std::vector<FaultWindow> parsed;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    const std::string entry = text.substr(pos, semi - pos);
    // An empty segment ("a;;b") is a malformed schedule, not a no-op --
    // only the empty *string* means "no windows".
    FaultWindow window;
    if (!parse_entry(entry, window)) return false;
    parsed.push_back(window);
    pos = semi + 1;
  }
  out.insert(out.end(), parsed.begin(), parsed.end());
  return true;
}

std::string format_fault_schedule(const std::vector<FaultWindow>& windows) {
  std::string out;
  char buf[96];
  for (const FaultWindow& w : windows) {
    if (!out.empty()) out += ';';
    std::snprintf(buf, sizeof buf, "%d@%g+%g", w.actuator_index,
                  w.start_rel_s, w.duration_s);
    out += buf;
  }
  return out;
}

std::vector<FaultWindow> poisson_fault_windows(int n_actuators,
                                               double break_rate_hz,
                                               double repair_s,
                                               double horizon_rel_s,
                                               Rng& rng) {
  std::vector<FaultWindow> windows;
  if (break_rate_hz <= 0 || repair_s <= 0) return windows;
  const double mean_up_s = 1.0 / break_rate_hz;
  for (int a = 0; a < n_actuators; ++a) {
    double t = rng.exponential(mean_up_s);
    while (t < horizon_rel_s) {
      windows.push_back({a, t, repair_s});
      t += repair_s + rng.exponential(mean_up_s);
    }
  }
  return windows;
}

std::vector<FaultWindow> merge_windows(std::vector<FaultWindow> windows) {
  std::sort(windows.begin(), windows.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              if (a.actuator_index != b.actuator_index) {
                return a.actuator_index < b.actuator_index;
              }
              return a.start_rel_s < b.start_rel_s;
            });
  std::vector<FaultWindow> merged;
  for (const FaultWindow& w : windows) {
    if (!merged.empty() &&
        merged.back().actuator_index == w.actuator_index &&
        w.start_rel_s <= merged.back().end_rel_s()) {
      const double end =
          std::max(merged.back().end_rel_s(), w.end_rel_s());
      merged.back().duration_s = end - merged.back().start_rel_s;
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

double broken_time_in(const std::vector<FaultWindow>& windows,
                      double from_rel_s, double to_rel_s) {
  double total = 0;
  for (const FaultWindow& w : windows) {
    const double lo = std::max(w.start_rel_s, from_rel_s);
    const double hi = std::min(w.end_rel_s(), to_rel_s);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

}  // namespace refer::app
