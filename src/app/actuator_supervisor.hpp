// Per-actuator application-tier supervision (SmartOrchard's sink-side
// bookkeeping): a keepalive-driven break/repair state machine.
//
// The supervisor pings its actuator's application process at every
// keepalive tick (t0 + k * period).  While a fault window covers the
// tick, the keepalive lapses; after `miss_limit` consecutive lapses the
// actuator is *believed down* (kAppActuatorDown) and its sensors fail
// over.  The first clean tick after a repair is the actuator's
// re-registration handshake (kAppActuatorUp); the recovery time is the
// believed-down span, (recovered_tick - down_tick) * period -- exact
// tick-index arithmetic, so a scripted schedule pins the recovery-time
// metric to the last bit.
//
// Ticks are evaluated by the ControlLoopEngine inside simulator events;
// the supervisor itself is pure state (no scheduling, no tracing), so
// it is trivially deterministic and unit-testable.
#pragma once

#include <vector>

#include "app/fault_schedule.hpp"
#include "sim/spatial_index.hpp"  // sim::NodeId

namespace refer::app {

class ActuatorSupervisor {
 public:
  /// What one keepalive tick observed.
  enum class Tick {
    kAlive,      ///< clean keepalive, actuator was already believed up
    kMiss,       ///< keepalive lapsed, still under the miss limit
    kWentDown,   ///< this lapse crossed the limit: now believed down
    kStillDown,  ///< lapsed again while already believed down
    kRecovered,  ///< clean keepalive after a believed-down span
  };

  /// `broken` are this actuator's merged fault windows, relative to t0.
  ActuatorSupervisor(int index, sim::NodeId node,
                     std::vector<FaultWindow> broken)
      : index_(index), node_(node), broken_(std::move(broken)) {}

  /// Physical truth: is the application process inside a fault window?
  [[nodiscard]] bool broken_at(double rel_s) const noexcept {
    for (const FaultWindow& w : broken_) {
      if (w.covers(rel_s)) return true;
    }
    return false;
  }

  /// Advances the state machine by one keepalive tick (index `tick`,
  /// time `rel_s` = tick * period relative to t0).
  Tick on_keepalive(int tick, double rel_s, int miss_limit) {
    if (broken_at(rel_s)) {
      ++misses_;
      if (down_) return Tick::kStillDown;
      if (misses_ >= miss_limit) {
        down_ = true;
        down_tick_ = tick;
        return Tick::kWentDown;
      }
      return Tick::kMiss;
    }
    if (down_) {
      down_ = false;
      misses_ = 0;
      last_recovery_ticks_ = tick - down_tick_;
      return Tick::kRecovered;
    }
    misses_ = 0;
    return Tick::kAlive;
  }

  [[nodiscard]] int index() const noexcept { return index_; }
  [[nodiscard]] sim::NodeId node() const noexcept { return node_; }
  [[nodiscard]] bool believed_down() const noexcept { return down_; }
  [[nodiscard]] int misses() const noexcept { return misses_; }
  /// Ticks spent believed-down in the most recent recovery.
  [[nodiscard]] int last_recovery_ticks() const noexcept {
    return last_recovery_ticks_;
  }

 private:
  int index_;
  sim::NodeId node_;
  std::vector<FaultWindow> broken_;
  bool down_ = false;
  int misses_ = 0;
  int down_tick_ = 0;
  int last_recovery_ticks_ = 0;
};

}  // namespace refer::app
