// The closed-loop application layer: sense -> decide -> actuate.
//
// The paper's real-time claim is about *actuation*, not one-way
// delivery: a sensed event only counts when the report reaches a live
// actuator AND the actuation command makes it back to the sensor within
// the loop deadline.  This engine adds that tier on top of whichever
// routing stack the harness runs (REFER or any baseline) without the
// stacks knowing:
//
//   1. Threshold-triggered sensing.  A sensing::EventField generates
//      Poisson events over the area; at each event start the sensors
//      that detect it (probabilistic disc model, capped per event)
//      start a control loop.
//   2. Uplink through the normal traffic path.  The report rides
//      WsanSystem::send_event -- exactly the harness workload packet,
//      so all four systems carry it unchanged.
//   3. Decide + actuate.  On delivery, the sensor's *registered*
//      actuator issues the command (one sim::Channel unicast back to
//      the sensor).  Inter-actuator relay rides the paper's actuator
//      backbone and is modelled as free.
//   4. Supervision and fail-over.  Each actuator has an
//      ActuatorSupervisor; on a keepalive lapse past the miss limit its
//      sensors re-register with the nearest believed-up actuator.
//
// Every transition emits an app_* trace event (app_register,
// app_keepalive_miss, app_actuator_down/up, app_actuate,
// app_loop_complete, app_loop_miss) so the invariant engine and
// trace_report audit the registration state machine offline.
//
// The engine is single-run-local like the Tracer: one instance per
// Driver::run, all scheduling through the run's simulator, all draws
// from one Rng seeded off the scenario -- serial and parallel job
// execution stay bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "app/actuator_supervisor.hpp"
#include "app/fault_schedule.hpp"
#include "baselines/wsan_system.hpp"
#include "common/stats_registry.hpp"
#include "harness/scenario.hpp"
#include "sensing/event_field.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace refer::sim {
class TelemetryRecorder;  // sim/telemetry.hpp
}

namespace refer::app {

/// End-of-run summary, copied into harness::RunMetrics by the driver.
struct AppMetrics {
  std::uint64_t loops_started = 0;
  std::uint64_t loops_completed = 0;        ///< command delivered at all
  std::uint64_t loops_within_deadline = 0;  ///< ... within the loop deadline
  double loop_p50_ms = 0;  ///< latency percentiles over completed loops
  double loop_p95_ms = 0;
  double loop_p99_ms = 0;
  /// loops_within_deadline / loops_started (0 when none started).
  double loop_completion_ratio = 0;
  /// 1 - broken actuator-seconds / (n_actuators * measure_s): exact
  /// integral of the fault schedule over the measurement window.
  double actuator_availability = 1;
  std::uint64_t recoveries = 0;  ///< believed-down -> re-registered spans
  double mean_recovery_s = 0;    ///< mean believed-down span (0 if none)
};

class ControlLoopEngine {
 public:
  /// Actuation command size (bytes) for the downlink unicast.
  static constexpr std::size_t kCommandBytes = 100;
  /// Sensors starting a loop per sensed event, at most.
  static constexpr int kMaxLoopsPerEvent = 3;
  /// Lifetime of a generated physical event.
  static constexpr double kEventDurationS = 5.0;

  ControlLoopEngine(const harness::Scenario& scenario, sim::Simulator& sim,
                    sim::World& world, sim::Channel& channel,
                    sim::Tracer& tracer, baselines::WsanSystem& system,
                    const std::vector<sim::NodeId>& actuators,
                    const std::vector<sim::NodeId>& sensors,
                    StatsRegistry& stats);

  /// Derives the fault windows, registers every sensor, and schedules
  /// keepalives + sensing events over [t0, measure_to).
  void start(double t0, double measure_from, double measure_to);

  /// Computes the end-of-run summary (call after the simulator drained).
  [[nodiscard]] AppMetrics finalize();

  /// Counters for the observability snapshot (latency histogram streams
  /// during the run under "app.loop_latency_ms").
  void export_stats(StatsRegistry& stats) const;

  /// Attaches the run's flight recorder: counted loop starts and
  /// completions stream into the per-bucket app-loop series (bucketed by
  /// sense time).  Pass nullptr to detach; call before start().
  void set_telemetry(sim::TelemetryRecorder* telemetry) noexcept {
    telemetry_ = telemetry;
  }

 private:
  struct Loop {
    std::int64_t id = -1;
    int sensor_index = -1;
    double sense_t = 0;
    bool counted = false;  ///< sensed inside the measurement window
    bool completed = false;
    bool missed = false;  ///< deadline fired before completion
  };

  void emit(sim::TraceEvent event, sim::NodeId from, sim::NodeId to,
            std::int64_t packet = -1, std::size_t bytes = 0,
            int hop_index = -1);
  /// Nearest believed-up actuator by current distance (ties: lowest
  /// index); -1 when every actuator is believed down.
  [[nodiscard]] int nearest_up_actuator(int sensor_index);
  void register_sensor(int sensor_index);
  void schedule_keepalive(int tick);
  void on_keepalive_tick(int tick);
  void schedule_sensing_events();
  void on_event_start(const sensing::Event& event);
  void start_loop(int sensor_index);
  void on_uplink(std::size_t loop_slot, const baselines::Delivery& d);
  void on_command(std::size_t loop_slot, bool delivered);
  void on_deadline(std::size_t loop_slot);

  const harness::Scenario& scenario_;
  sim::Simulator& sim_;
  sim::World& world_;
  sim::Channel& channel_;
  sim::Tracer& tracer_;
  baselines::WsanSystem& system_;
  const std::vector<sim::NodeId>& actuators_;
  const std::vector<sim::NodeId>& sensors_;
  Histogram* latency_ms_;  ///< "app.loop_latency_ms" (owned by registry)
  sim::TelemetryRecorder* telemetry_ = nullptr;

  Rng rng_;
  double t0_ = 0, measure_from_ = 0, measure_to_ = 0;
  std::vector<FaultWindow> windows_;  ///< merged, relative to t0
  std::vector<ActuatorSupervisor> supervisors_;
  std::vector<int> registered_;  ///< sensor index -> actuator index
  sensing::EventField field_;
  sensing::DetectionModel detector_;
  std::vector<Loop> loops_;
  std::int64_t next_loop_id_ = 0;

  std::uint64_t loops_started_ = 0;
  std::uint64_t loops_completed_ = 0;
  std::uint64_t loops_within_deadline_ = 0;
  std::vector<double> latencies_ms_;  ///< counted completed loops
  std::uint64_t recoveries_ = 0;
  double recovery_sum_s_ = 0;
  std::uint64_t registrations_ = 0;
  std::uint64_t keepalive_misses_ = 0;
};

}  // namespace refer::app
