#include "common/stats_registry.hpp"

#include <algorithm>
#include <cmath>

namespace refer {

namespace {

// Bucket i covers [2^((i-80)/4), 2^((i-79)/4)); index 0 additionally
// absorbs everything <= 2^-20 (including 0 and negatives).
constexpr int kBucketOffset = 80;
constexpr double kDivisionsPerOctave = 4.0;

int bucket_of(double x) noexcept {
  if (!(x > 0.0)) return 0;
  const int i =
      static_cast<int>(std::floor(std::log2(x) * kDivisionsPerOctave)) +
      kBucketOffset;
  return std::clamp(i, 0, Histogram::kBuckets - 1);
}

double bucket_midpoint(int i) noexcept {
  return std::exp2((static_cast<double>(i - kBucketOffset) + 0.5) /
                   kDivisionsPerOctave);
}

}  // namespace

void Histogram::record(double x) noexcept {
  ++buckets_[static_cast<std::size_t>(bucket_of(x))];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen > target) {
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

std::vector<StatsRegistry::Entry> StatsRegistry::snapshot() const {
  std::vector<Entry> out;
  out.reserve(counters_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    Entry e;
    e.name = name;
    e.count = c.value();
    out.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    Entry e;
    e.name = name;
    e.is_histogram = true;
    e.count = h.count();
    e.sum = h.sum();
    e.min = h.min();
    e.max = h.max();
    e.p50 = h.quantile(0.50);
    e.p95 = h.quantile(0.95);
    e.p99 = h.quantile(0.99);
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

}  // namespace refer
