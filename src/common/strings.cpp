#include "common/strings.hpp"

namespace refer {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool all_digits_below(std::string_view s, int alphabet) noexcept {
  for (char c : s) {
    if (c < '0' || c >= '0' + alphabet) return false;
  }
  return true;
}

}  // namespace refer
