#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace refer {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0);
  double u = uniform();
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::chance(double probability) noexcept {
  return uniform() < probability;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::split() noexcept {
  return Rng((*this)() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace refer
