// Wall-clock attribution by subsystem phase.
//
// A PhaseProfiler owns one cumulative wall-time account per Phase; hot
// paths open a PhaseProfiler::Scope around their work and the destructor
// charges the elapsed steady-clock nanoseconds to that phase.  Unlike the
// kernel event profiler (sim::Simulator::set_profiler, which histograms
// per-event wall time by scheduling tag), this answers the macro
// question "where does the wall clock go" -- e.g. "68% of wall time is
// the CSMA medium scan at saturation" -- and the telemetry recorder
// (sim/telemetry.hpp) snapshots the accounts at every bucket boundary so
// the attribution is *time-resolved* over the run.
//
// Scopes nest *inclusively*: a spatial-index query inside the medium
// scan charges both kSpatialQuery and kMediumScan, so the accounts are
// each phase's total footprint, not an exclusive partition (the report
// side documents this).  A disabled profiler (or a nullptr) costs one
// branch per scope; enabled, two steady_clock reads.
//
// Wall-clock numbers are inherently nondeterministic: everything a
// PhaseProfiler measures is kept OUT of the fields covered by the
// serial-vs-parallel and engine-equivalence bit-identity contracts
// (results land only under the timeseries "phase_us" / "phase_total_us"
// keys, which exist only when Scenario::phase_profile is on).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace refer {

/// The instrumented subsystem phases (docs/ARCHITECTURE.md, "Telemetry &
/// wall-clock attribution").
enum class Phase : int {
  kKernelDispatch = 0,  ///< sim::Simulator event execution (outermost)
  kMediumScan,          ///< Channel::reserve_tx_slot CSMA neighbourhood defer
  kRoutingDecide,       ///< ReferRouter next-hop / Theorem 3.8 decisions
  kFlooding,            ///< net::Flooder query handling + rebroadcasts
  kSpatialQuery,        ///< World::visit_reachable / closest_actuator
};
inline constexpr int kPhaseCount = 5;

/// Stable lower_snake_case name used as the JSON key ("medium_scan", ...).
[[nodiscard]] const char* to_string(Phase phase) noexcept;

class PhaseProfiler {
 public:
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Cumulative wall nanoseconds charged to `phase` so far.
  [[nodiscard]] std::uint64_t total_ns(Phase phase) const noexcept {
    return ns_[static_cast<std::size_t>(phase)];
  }
  /// Number of scopes that charged `phase`.
  [[nodiscard]] std::uint64_t count(Phase phase) const noexcept {
    return counts_[static_cast<std::size_t>(phase)];
  }

  /// RAII scope: charges elapsed wall time to `phase` on destruction.
  /// `profiler` may be nullptr (or disabled) -- then the scope is free
  /// apart from one branch.
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, Phase phase) noexcept : phase_(phase) {
      if (profiler && profiler->enabled()) {
        profiler_ = profiler;
        t0_ = std::chrono::steady_clock::now();
      }
    }
    ~Scope() {
      if (profiler_) {
        const auto dt = std::chrono::steady_clock::now() - t0_;
        profiler_->charge(
            phase_,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count()));
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfiler* profiler_ = nullptr;
    Phase phase_;
    std::chrono::steady_clock::time_point t0_;
  };

 private:
  void charge(Phase phase, std::uint64_t ns) noexcept {
    ns_[static_cast<std::size_t>(phase)] += ns;
    ++counts_[static_cast<std::size_t>(phase)];
  }

  bool enabled_ = false;
  std::array<std::uint64_t, kPhaseCount> ns_{};
  std::array<std::uint64_t, kPhaseCount> counts_{};
};

}  // namespace refer
