#include "common/phase_profiler.hpp"

namespace refer {

const char* to_string(Phase phase) noexcept {
  switch (phase) {
    case Phase::kKernelDispatch: return "kernel_dispatch";
    case Phase::kMediumScan: return "medium_scan";
    case Phase::kRoutingDecide: return "routing_decide";
    case Phase::kFlooding: return "flooding";
    case Phase::kSpatialQuery: return "spatial_query";
  }
  return "?";
}

}  // namespace refer
