// Named counters and streaming histograms for run observability.
//
// A StatsRegistry is the per-run home of cheap instrumentation: protocol
// and kernel components register a Counter or Histogram once (a map
// lookup), cache the returned reference, and then sample it with a plain
// increment / one log2 per event.  At the end of a run the harness
// snapshots the registry into RunMetrics::observability, which the
// ResultsWriter exports under the schema-v2 "observability" key.
//
// Registries are single-run-local, like sim::Tracer: under the parallel
// executor every job owns its Deployment and therefore its registry, so
// no synchronisation is needed (or provided).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace refer {

/// Monotonic named counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Streaming histogram over non-negative samples: fixed geometric buckets
/// (4 per octave, ~19% relative resolution) plus exact count / sum / min /
/// max.  record() costs one log2 and an increment; memory is constant.
class Histogram {
 public:
  /// Buckets span 2^-20 .. 2^43 (sub-microsecond to ~10^13); samples
  /// outside clamp into the edge buckets.
  static constexpr int kBuckets = 256;

  void record(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Approximate q-quantile (q in [0, 1]): geometric midpoint of the
  /// bucket holding the q-th sample, clamped to the exact [min, max].
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Forgets every sample.  Lets scratch histograms (the telemetry
  /// recorder's per-bucket percentile cursors) be reused without
  /// allocating.
  void reset() noexcept {
    buckets_.fill(0);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
  }

 private:
  std::array<std::uint32_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Owns counters and histograms by name.  References returned by
/// counter() / histogram() stay valid for the registry's lifetime
/// (node-based storage), so hot paths cache them.
class StatsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  /// One snapshot row; counters fill only `count`, histograms fill all
  /// fields (count = sample count).
  struct Entry {
    std::string name;
    bool is_histogram = false;
    std::uint64_t count = 0;
    double sum = 0, min = 0, max = 0;
    double p50 = 0, p95 = 0, p99 = 0;
  };

  /// Every counter and histogram, sorted by name (deterministic).
  [[nodiscard]] std::vector<Entry> snapshot() const;

  void clear() {
    counters_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace refer
