#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace refer {

void Summary::add(double x) noexcept {
  if (n_ == 0 || x < min_) min_ = x;
  if (n_ == 0 || x > max_) max_ = x;
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return t_critical_95(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
}

std::string Summary::to_string(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f +- %.*f", precision, mean(), precision,
                ci95_half_width());
  return buf;
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double t_critical_95(std::size_t df) noexcept {
  static constexpr double table[31] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return table[df];
  return 1.96;
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

double gini_coefficient(std::vector<double> xs) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double total = 0;
  double weighted = 0;  // sum of (i+1) * x_(i) over the ascending order
  for (std::size_t i = 0; i < xs.size(); ++i) {
    total += xs[i];
    weighted += static_cast<double>(i + 1) * xs[i];
  }
  if (total <= 0) return 0.0;
  const auto n = static_cast<double>(xs.size());
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

double max_min_ratio(const std::vector<double>& xs) noexcept {
  double lo = 0, hi = 0;
  bool any = false;
  for (double x : xs) {
    if (x <= 0) continue;
    if (!any || x < lo) lo = x;
    if (!any || x > hi) hi = x;
    any = true;
  }
  return any ? hi / lo : 0.0;
}

}  // namespace refer
