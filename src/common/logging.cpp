#include "common/logging.hpp"

#include <atomic>

namespace refer {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace refer
