#include "common/logging.hpp"

#include <atomic>
#include <mutex>

namespace refer {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  // Parallel sweep jobs log concurrently: build the whole line first and
  // emit it as a single mutex-guarded fwrite so lines never interleave.
  std::string line;
  line.reserve(msg.size() + 10);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace refer
