// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace refer {

/// Splits on a single-character delimiter; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True iff s consists only of characters in the given alphabet size
/// ('0'..'0'+alphabet-1).
[[nodiscard]] bool all_digits_below(std::string_view s, int alphabet) noexcept;

}  // namespace refer
