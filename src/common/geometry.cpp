#include "common/geometry.hpp"

#include <algorithm>
#include <cassert>

namespace refer {

Point clamp(Point p, const Rect& rect) noexcept {
  return {std::clamp(p.x, rect.lo.x, rect.hi.x),
          std::clamp(p.y, rect.lo.y, rect.hi.y)};
}

Point centroid(const std::vector<Point>& pts) noexcept {
  assert(!pts.empty());
  Point sum;
  for (const Point& p : pts) sum = sum + p;
  return sum * (1.0 / static_cast<double>(pts.size()));
}

double hamiltonian_min_range(double cell_side) noexcept {
  // Prop 3.2: (pi r^2 / 4 b^2) n >= n/2  =>  r >= b * sqrt(2/pi) ~= 0.7979 b.
  return cell_side * std::sqrt(2.0 / 3.14159265358979323846);
}

double hamiltonian_max_cell_side(double range) noexcept {
  return range / std::sqrt(2.0 / 3.14159265358979323846);
}

}  // namespace refer
