// 2-D geometry primitives for node placement, mobility and radio range
// checks.  The simulated deployment area is the axis-aligned square
// [0, side] x [0, side] (paper SIV: 500 m x 500 m).
#pragma once

#include <cmath>
#include <vector>

namespace refer {

/// A point (or displacement) in the 2-D deployment plane, in metres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point operator+(Point o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Point operator-(Point o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr bool operator==(const Point&) const noexcept = default;

  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }
};

/// Euclidean distance between two points.
[[nodiscard]] inline double distance(Point a, Point b) noexcept {
  return (a - b).norm();
}

/// Squared distance; avoids the sqrt in hot range checks.  Inline: the
/// spatial index prefilter calls this for every candidate of every query.
[[nodiscard]] inline double distance_sq(Point a, Point b) noexcept {
  const Point d = a - b;
  return d.x * d.x + d.y * d.y;
}

/// True iff |a-b| <= range (inclusive: a node exactly at the range edge can
/// still communicate; the boundary case matters for unit tests).
[[nodiscard]] inline bool within_range(Point a, Point b,
                                       double range) noexcept {
  return distance_sq(a, b) <= range * range;
}

/// Axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
struct Rect {
  Point lo;
  Point hi;

  [[nodiscard]] bool contains(Point p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  [[nodiscard]] double width() const noexcept { return hi.x - lo.x; }
  [[nodiscard]] double height() const noexcept { return hi.y - lo.y; }
  [[nodiscard]] Point center() const noexcept {
    return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  }
};

/// Clamps p to rect.
[[nodiscard]] Point clamp(Point p, const Rect& rect) noexcept;

/// Centroid of a non-empty point set.
[[nodiscard]] Point centroid(const std::vector<Point>& pts) noexcept;

/// Paper Proposition 3.2: for nodes i.i.d. in a square cell of side b, the
/// node transmission range r must satisfy r >= 0.8*b for the selected Kautz
/// nodes to be guaranteed (Dirac) to form a Hamiltonian cycle.  Returns the
/// minimum admissible range for a given cell side.
[[nodiscard]] double hamiltonian_min_range(double cell_side) noexcept;

/// The converse bound: largest admissible cell side for a given range.
[[nodiscard]] double hamiltonian_max_cell_side(double range) noexcept;

}  // namespace refer
