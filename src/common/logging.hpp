// Minimal leveled logger.
//
// The simulator is a library first; logging defaults to Warn so tests and
// benches stay quiet.  Examples raise the level to show protocol traces.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

namespace refer {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, std::string_view msg);

template <typename... Args>
std::string format(const char* fmt, Args&&... args) {
  const int n = std::snprintf(nullptr, 0, fmt, std::forward<Args>(args)...);
  if (n <= 0) return {};
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, std::forward<Args>(args)...);
  return out;
}
}  // namespace detail

/// printf-style logging helpers.  Arguments are only formatted when the
/// message passes the threshold.
template <typename... Args>
void log_at(LogLevel level, const char* fmt, Args&&... args) {
  if (level < log_level()) return;
  detail::log_line(level, detail::format(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void log_trace(const char* fmt, Args&&... args) {
  log_at(LogLevel::kTrace, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(const char* fmt, Args&&... args) {
  log_at(LogLevel::kDebug, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(const char* fmt, Args&&... args) {
  log_at(LogLevel::kInfo, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(const char* fmt, Args&&... args) {
  log_at(LogLevel::kWarn, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(const char* fmt, Args&&... args) {
  log_at(LogLevel::kError, fmt, std::forward<Args>(args)...);
}

}  // namespace refer
