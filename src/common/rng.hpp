// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component of the simulator draws from an explicitly seeded
// Rng instance; there is no global random state.  Two runs with the same
// scenario seed produce bit-identical event streams, which the determinism
// integration test relies on.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace refer {

/// SplitMix64 step; used both for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random generator.
///
/// Satisfies UniformRandomBitGenerator, so it can be plugged into <random>
/// distributions, but we provide the handful of draws the simulator needs
/// directly so behaviour is identical across standard-library
/// implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  /// The default is a fixed constant (the 64-bit golden ratio), never the
  /// wall clock: a forgotten seed yields a repeatable stream, not a flaky
  /// one.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  Requires n > 0.  Unbiased (rejection).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed draw with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double probability) noexcept;

  /// Returns k distinct indices drawn uniformly from [0, n).  k <= n.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derives an independent child generator (stream splitting); used to give
  /// each node its own stream so per-node behaviour does not depend on the
  /// global draw order.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace refer
