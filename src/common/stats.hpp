// Streaming statistics and confidence intervals for experiment metrics.
//
// The paper reports every experimental result with a 95% confidence
// interval; Summary reproduces that (Student-t for small sample counts).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace refer {

/// Welford streaming accumulator: mean / variance / min / max in one pass.
class Summary {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Half-width of the 95% confidence interval of the mean (0 for n < 2).
  [[nodiscard]] double ci95_half_width() const noexcept;

  /// "mean +- hw" rendered with the given precision.
  [[nodiscard]] std::string to_string(int precision = 3) const;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const Summary& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Two-sided 95% Student-t critical value for n-1 degrees of freedom;
/// exact table for df <= 30, 1.96 beyond.
[[nodiscard]] double t_critical_95(std::size_t df) noexcept;

/// Mean of a sample (0 for empty).
[[nodiscard]] double mean_of(const std::vector<double>& xs) noexcept;

/// p-th percentile (0 <= p <= 100) by linear interpolation; 0 for empty.
[[nodiscard]] double percentile(std::vector<double> xs, double p) noexcept;

/// Gini coefficient of a non-negative sample (0 = perfectly even,
/// -> 1 = all mass on one element).  Zeros count: an idle node *is*
/// unfairness when its peers burn airtime.  0 for empty or zero-sum
/// samples.
[[nodiscard]] double gini_coefficient(std::vector<double> xs) noexcept;

/// max / min over the *positive* entries of the sample (idle elements
/// carry no load to compare).  0 when fewer than one positive entry;
/// 1 means perfectly balanced.
[[nodiscard]] double max_min_ratio(const std::vector<double>& xs) noexcept;

}  // namespace refer
