#include "net/flooding.hpp"

#include <deque>
#include <memory>

namespace refer::net {

namespace {

/// Shared per-query flood state, kept alive by the closures.
///
/// A node forwards a query at most once, so the path any copy carries is
/// always "the forwarder's first-accepted path plus the forwarder".  That
/// makes the set of travelled paths a tree: instead of copying a path
/// vector into every relay closure (one allocation per receiver per hop),
/// each acceptance records only its parent, and the full path is
/// reconstructed -- identically -- on the rare target arrival.
struct FloodState {
  std::unordered_set<NodeId> forwarded;            // flood suppression
  std::unordered_map<NodeId, NodeId> parent_of;    // first-accept forwarder
  std::vector<std::vector<NodeId>> arrived_paths;
  bool finished = false;

  /// The path src ... at (inclusive) along first-acceptance parents.
  [[nodiscard]] std::vector<NodeId> path_to(NodeId at) const {
    std::vector<NodeId> path{at};
    for (auto it = parent_of.find(at);
         it != parent_of.end() && it->second >= 0;
         it = parent_of.find(it->second)) {
      path.push_back(it->second);
    }
    return {path.rbegin(), path.rend()};
  }
};

}  // namespace

void Flooder::discover(NodeId src, NodeId target, int ttl,
                       sim::EnergyBucket bucket, DiscoverDone done,
                       std::size_t query_bytes, double deadline_s) {
  ++next_query_;
  auto state = std::make_shared<FloodState>();
  auto done_shared = std::make_shared<DiscoverDone>(std::move(done));

  // When the first query copy reaches the target, unicast the reply back
  // along the reverse path; the requester learns the route when the reply
  // arrives.
  auto reply = [this, state, done_shared, bucket,
                query_bytes](std::vector<NodeId> path) {
    // path = src ... target; reply hops target -> ... -> src.
    auto reverse = std::make_shared<std::vector<NodeId>>(path.rbegin(),
                                                         path.rend());
    auto forward = std::make_shared<std::function<void(std::size_t)>>();
    *forward = [this, state, done_shared, reverse, forward, bucket,
                query_bytes, path](std::size_t i) {
      if (state->finished) return;
      if (i + 1 >= reverse->size()) {
        state->finished = true;
        (*done_shared)(path);
        return;
      }
      channel_->unicast((*reverse)[i], (*reverse)[i + 1], query_bytes, bucket,
                        [state, forward, i, done_shared](bool ok) {
                          if (state->finished) return;
                          if (!ok) {
                            state->finished = true;
                            (*done_shared)(std::nullopt);
                            return;
                          }
                          (*forward)(i + 1);
                        });
    };
    (*forward)(0);
  };

  auto relay = std::make_shared<std::function<void(NodeId, NodeId, int)>>();
  *relay = [this, state, target, bucket, query_bytes, reply,
            relay](NodeId at, NodeId from, int ttl_left) {
    PhaseProfiler::Scope phase(phases_, Phase::kFlooding);
    if (state->finished) return;
    if (state->forwarded.contains(at)) return;  // already forwarded
    // Only accept over symmetric links: the discovered route must carry
    // the reply (and later data) back towards the source, so a node that
    // cannot reach the forwarder ignores the query copy (AODV-style
    // blacklisting of unidirectional links).
    if (from >= 0 && !world_->can_reach(at, from)) return;
    state->forwarded.insert(at);
    state->parent_of.emplace(at, from);
    if (at == target) {
      if (state->arrived_paths.empty()) {
        std::vector<NodeId> path = state->path_to(at);
        state->arrived_paths.push_back(path);
        reply(std::move(path));
      }
      return;
    }
    if (ttl_left <= 0) return;
    channel_->broadcast(at, query_bytes, bucket,
                        [state, relay, at, ttl_left](NodeId r) {
                          (*relay)(r, at, ttl_left - 1);
                        });
  };

  // Kick off: src "receives" its own query with full TTL.
  (*relay)(src, -1, ttl);

  sim_->schedule_in(deadline_s, [state, done_shared] {
    if (state->finished) return;
    state->finished = true;
    (*done_shared)(std::nullopt);
  });
}

void Flooder::collect_paths(NodeId src, NodeId target, int ttl,
                            sim::EnergyBucket bucket, CollectDone done,
                            std::size_t query_bytes, double deadline_s,
                            double query_tx_range) {
  ++next_query_;
  auto state = std::make_shared<FloodState>();
  auto relay = std::make_shared<std::function<void(NodeId, NodeId, int)>>();
  *relay = [this, state, target, bucket, query_bytes, query_tx_range,
            relay](NodeId at, NodeId from, int ttl_left) {
    PhaseProfiler::Scope phase(phases_, Phase::kFlooding);
    if (state->finished) return;
    if (at == target) {
      // Record every arrival: forwarder's first-accept path + target.
      std::vector<NodeId> path =
          from >= 0 ? state->path_to(from) : std::vector<NodeId>{};
      path.push_back(at);
      state->arrived_paths.push_back(std::move(path));
      return;
    }
    if (!state->forwarded.insert(at).second) return;
    state->parent_of.emplace(at, from);
    if (ttl_left <= 0) return;
    channel_->broadcast(at, query_bytes, bucket,
                        [state, relay, at, ttl_left](NodeId r) {
                          (*relay)(r, at, ttl_left - 1);
                        },
                        query_tx_range);
  };
  (*relay)(src, -1, ttl + 1);  // src itself does not consume TTL

  sim_->schedule_in(deadline_s,
                    [state, done = std::move(done)] {
                      state->finished = true;
                      done(state->arrived_paths);
                    });
}

void Flooder::announce(NodeId src, int ttl, sim::EnergyBucket bucket,
                       std::function<bool(NodeId, int, NodeId)> on_node,
                       std::size_t bytes) {
  ++next_query_;
  auto state = std::make_shared<FloodState>();
  auto on_node_shared =
      std::make_shared<std::function<bool(NodeId, int, NodeId)>>(
          std::move(on_node));
  auto bounded = std::make_shared<std::function<void(NodeId, NodeId, int)>>();
  *bounded = [this, state, bucket, bytes, on_node_shared, bounded,
              ttl](NodeId at, NodeId parent, int hops_travelled) {
    PhaseProfiler::Scope phase(phases_, Phase::kFlooding);
    if (state->forwarded.contains(at)) return;
    if (*on_node_shared && parent >= 0) {
      if (!(*on_node_shared)(at, hops_travelled, parent)) return;  // rejected
    }
    state->forwarded.insert(at);
    if (hops_travelled >= ttl) return;
    channel_->broadcast(at, bytes, bucket,
                        [bounded, at, hops_travelled](NodeId r) {
                          (*bounded)(r, at, hops_travelled + 1);
                        });
  };
  (*bounded)(src, -1, 0);
}

std::optional<std::vector<NodeId>> bfs_path(
    sim::World& world, NodeId src, NodeId dst,
    const std::unordered_set<NodeId>* exclude) {
  if (src == dst) return std::vector<NodeId>{src};
  std::unordered_map<NodeId, NodeId> parent;
  std::deque<NodeId> frontier{src};
  parent[src] = src;
  // One leased neighbour buffer reused across every BFS expansion.
  sim::ScratchPool::Lease lease = world.lease_scratch();
  std::vector<NodeId>& neighbours = *lease;
  while (!frontier.empty()) {
    const NodeId at = frontier.front();
    frontier.pop_front();
    world.reachable_from(at, neighbours);
    for (NodeId next : neighbours) {
      if (parent.contains(next)) continue;
      if (exclude && next != dst && exclude->contains(next)) continue;
      parent[next] = at;
      if (next == dst) {
        std::vector<NodeId> path{dst};
        for (NodeId cur = dst; cur != src;) {
          cur = parent[cur];
          path.push_back(cur);
        }
        return std::vector<NodeId>(path.rbegin(), path.rend());
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

void send_along_path(sim::Channel& channel, std::vector<NodeId> path,
                     std::size_t bytes, sim::EnergyBucket bucket,
                     std::function<void(std::size_t, bool)> done) {
  if (path.size() < 2) {
    if (done) done(0, true);
    return;
  }
  auto shared_path = std::make_shared<std::vector<NodeId>>(std::move(path));
  auto done_shared =
      std::make_shared<std::function<void(std::size_t, bool)>>(std::move(done));
  auto hop = std::make_shared<std::function<void(std::size_t)>>();
  *hop = [&channel, shared_path, done_shared, hop, bytes,
          bucket](std::size_t i) {
    if (i + 1 >= shared_path->size()) {
      (*done_shared)(i, true);
      return;
    }
    channel.unicast((*shared_path)[i], (*shared_path)[i + 1], bytes, bucket,
                    [shared_path, done_shared, hop, i](bool ok) {
                      if (!ok) {
                        (*done_shared)(i, false);
                        return;
                      }
                      (*hop)(i + 1);
                    });
  };
  (*hop)(0);
}

}  // namespace refer::net
