// TTL-bounded flooding: the "topological routing" component [35] used by
// the baseline systems for route discovery/repair, and by REFER's
// embedding protocol for its TTL=2 path queries (paper SIII-B2).
//
// Every rebroadcast is a real Channel broadcast: it costs TX energy at the
// forwarder and RX energy at every neighbour -- this is precisely the
// energy the paper's Figs. 5/9/10 charge the flooding-based systems for.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/world.hpp"

namespace refer::net {

using sim::NodeId;

/// Flood-based discovery service.  Stateless between calls except for the
/// query-id counter; per-query state lives in shared closures.
class Flooder {
 public:
  Flooder(sim::Simulator& sim, sim::World& world, sim::Channel& channel)
      : sim_(&sim), world_(&world), channel_(&channel) {}

  /// Called with the discovered src->target path, or nullopt on timeout.
  using DiscoverDone =
      std::function<void(std::optional<std::vector<NodeId>> path)>;

  /// Floods a route request from `src`; the first copy reaching `target`
  /// over *symmetric* links defines the path (lowest-delay, as in
  /// AODV/directed diffusion; nodes ignore query copies from forwarders
  /// they cannot reach back).  The reply travels back along the reverse
  /// path as unicasts (also charged).  `done` fires when the reply
  /// reaches `src`, or at the deadline.
  void discover(NodeId src, NodeId target, int ttl,
                sim::EnergyBucket bucket, DiscoverDone done,
                std::size_t query_bytes = 64, double deadline_s = 2.0);

  /// Called with every path that reached `target` before the deadline
  /// (each path is src...target), in arrival order.
  using CollectDone = std::function<void(std::vector<std::vector<NodeId>>)>;

  /// Floods a path query and collects *all* arriving paths at the target
  /// within the deadline -- the embedding protocol's TTL=2 query, where
  /// the successor actuator picks among candidate paths (paper SIII-B2).
  /// Forwarders do not suppress duplicates of different provenance paths
  /// arriving first at them are rebroadcast once per forwarder (standard
  /// flood suppression), so distinct node-disjoint paths reach the target
  /// through distinct forwarders.
  /// `query_tx_range` > 0 sends every query broadcast at reduced power
  /// (transmit power control, used by the embedding so actuator-sourced
  /// queries traverse sensor-length hops); 0 = full power.
  void collect_paths(NodeId src, NodeId target, int ttl,
                     sim::EnergyBucket bucket, CollectDone done,
                     std::size_t query_bytes = 64, double deadline_s = 2.0,
                     double query_tx_range = 0);

  /// Pure broadcast storm with TTL, no target.  `on_node(node, hops,
  /// parent)` fires on each receipt of the announcement by a node that
  /// has not yet *accepted* it; returning true accepts (the node
  /// rebroadcasts and ignores further copies), returning false rejects
  /// this copy (e.g. the link back to the forwarder is asymmetric) and
  /// leaves the node eligible for later copies.  Used for DaTree
  /// construction (root beacon, accept = parent reachable) and global
  /// announcements.
  void announce(NodeId src, int ttl, sim::EnergyBucket bucket,
                std::function<bool(NodeId node, int hops, NodeId parent)>
                    on_node,
                std::size_t bytes = 64);

  /// Number of floods started (tests/metrics).
  [[nodiscard]] std::uint64_t floods_started() const noexcept {
    return next_query_;
  }

  /// Attaches the wall-clock phase profiler: every flood relay decision
  /// (suppression check, path bookkeeping, rebroadcast kickoff) charges
  /// Phase::kFlooding.
  void set_phase_profiler(PhaseProfiler* phases) noexcept {
    phases_ = phases;
  }

 private:
  sim::Simulator* sim_;
  sim::World* world_;
  sim::Channel* channel_;
  PhaseProfiler* phases_ = nullptr;
  std::uint64_t next_query_ = 0;
};

/// BFS over the *current* physical connectivity (directed by sender
/// range): the ground-truth multi-hop path, used by tests, by topology
/// bootstrap oracles, and to model cached routes.  Charges no energy.
[[nodiscard]] std::optional<std::vector<NodeId>> bfs_path(
    sim::World& world, NodeId src, NodeId dst,
    const std::unordered_set<NodeId>* exclude = nullptr);

/// Sends `bytes` hop-by-hop along `path` (front()=current holder) as data
/// unicasts.  `done(delivered_hops, success)` fires when the last hop
/// delivers or a hop fails.
void send_along_path(sim::Channel& channel, std::vector<NodeId> path,
                     std::size_t bytes, sim::EnergyBucket bucket,
                     std::function<void(std::size_t delivered_hops,
                                        bool success)>
                         done);

}  // namespace refer::net
