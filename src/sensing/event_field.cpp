#include "sensing/event_field.hpp"

#include <cmath>

namespace refer::sensing {

int EventField::add_event(Point position, double start_s, double duration_s,
                          double intensity) {
  const int id = static_cast<int>(events_.size());
  events_.push_back(Event{id, position, start_s, duration_s, intensity});
  return id;
}

void EventField::generate_poisson(const Rect& area,
                                  double mean_interarrival_s,
                                  double horizon_s, double duration_s,
                                  Rng& rng, double intensity) {
  double t = rng.exponential(mean_interarrival_s);
  while (t < horizon_s) {
    add_event({rng.uniform(area.lo.x, area.hi.x),
               rng.uniform(area.lo.y, area.hi.y)},
              t, duration_s, intensity);
    t += rng.exponential(mean_interarrival_s);
  }
}

std::vector<const Event*> EventField::active_at(double t) const {
  std::vector<const Event*> out;
  for (const Event& e : events_) {
    if (e.active_at(t)) out.push_back(&e);
  }
  return out;
}

double DetectionModel::probability(Point sensor, const Event& event) const {
  const double d = distance(sensor, event.position);
  const double certain = config_.certain_radius_m * event.intensity;
  const double max = config_.max_radius_m * event.intensity;
  if (d <= certain) return 1.0;
  if (d >= max) return 0.0;
  // Exponential falloff from 1 at `certain` to ~0 at `max`.
  const double frac = (d - certain) / (max - certain);
  return std::exp(-config_.decay * frac) * (1.0 - frac);
}

bool DetectionModel::detects(Rng& rng, Point sensor,
                             const Event& event) const {
  return rng.chance(probability(sensor, event));
}

double coverage_fraction(const Rect& region,
                         const std::vector<Point>& watchers,
                         double sensing_radius_m, Rng& rng, int samples) {
  if (samples <= 0) return 0;
  int covered = 0;
  for (int i = 0; i < samples; ++i) {
    const Point p{rng.uniform(region.lo.x, region.hi.x),
                  rng.uniform(region.lo.y, region.hi.y)};
    for (const Point& w : watchers) {
      if (within_range(p, w, sensing_radius_m)) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / samples;
}

}  // namespace refer::sensing
