// The sensing substrate: physical events appearing in the field, a
// probabilistic disc detection model, and coverage analysis.
//
// The paper's workload is "sensors detect events and report them to
// nearby actuators"; this module gives that sentence precise semantics:
// events are spatio-temporal points, detection follows the classic
// certain/decay disc model, and coverage_fraction() quantifies the
// paper's premise that the awake/sleep scheme must "ensure the coverage"
// (SI, SIII-B4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"

namespace refer::sensing {

/// A physical phenomenon (fire ignition, intruder sighting, chemical
/// release) localised in space and time.
struct Event {
  int id = 0;
  Point position{};
  double start_s = 0;
  double duration_s = 0;
  double intensity = 1.0;  ///< scales the detectable radius

  [[nodiscard]] bool active_at(double t) const noexcept {
    return t >= start_s && t < start_s + duration_s;
  }
};

/// A scripted or randomly generated collection of events.
class EventField {
 public:
  /// Adds one scripted event; returns its id.
  int add_event(Point position, double start_s, double duration_s,
                double intensity = 1.0);

  /// Adds Poisson-arrival events uniformly over `area` until `horizon_s`,
  /// with the given mean inter-arrival time.
  void generate_poisson(const Rect& area, double mean_interarrival_s,
                        double horizon_s, double duration_s, Rng& rng,
                        double intensity = 1.0);

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

  /// Events active at time t.
  [[nodiscard]] std::vector<const Event*> active_at(double t) const;

 private:
  std::vector<Event> events_;
};

/// Probabilistic disc sensing: detection is certain within
/// certain_radius * intensity, impossible beyond max_radius * intensity,
/// and decays exponentially in between.
class DetectionModel {
 public:
  struct Config {
    double certain_radius_m = 30;
    double max_radius_m = 80;
    double decay = 3.0;  ///< steepness of the probability falloff
  };

  DetectionModel() = default;
  explicit DetectionModel(Config config) : config_(config) {}

  /// Probability that a sensor at `sensor` detects `event` per sample.
  [[nodiscard]] double probability(Point sensor, const Event& event) const;

  /// One detection sample.
  [[nodiscard]] bool detects(Rng& rng, Point sensor,
                             const Event& event) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_{};
};

/// Monte-Carlo coverage: the fraction of `region` within certain-detection
/// range of at least one of `watchers` (awake sensor positions), using
/// `samples` uniform sample points.
[[nodiscard]] double coverage_fraction(const Rect& region,
                                       const std::vector<Point>& watchers,
                                       double sensing_radius_m, Rng& rng,
                                       int samples = 2000);

}  // namespace refer::sensing
