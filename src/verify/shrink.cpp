#include "verify/shrink.hpp"

#include <algorithm>

#include "verify/fuzzer.hpp"

namespace refer::verify {

namespace {

/// True when `got` raises at least one of the checks in `wanted` -- the
/// shrink oracle.  Matching on check names (not details) keeps the
/// shrinker from wandering onto an unrelated failure mid-reduction.
bool reproduces(const std::vector<Violation>& got,
                const std::vector<Violation>& wanted) {
  for (const Violation& w : wanted) {
    for (const Violation& g : got) {
      if (g.check == w.check) return true;
    }
  }
  return false;
}

/// One reduction attempt; returns false when it cannot apply (already
/// minimal for this knob).
using Reduction = bool (*)(harness::Scenario&);

constexpr Reduction kReductions[] = {
    [](harness::Scenario& sc) {
      if (sc.n_sensors <= 40) return false;
      sc.n_sensors = std::max(40, sc.n_sensors / 2);
      return true;
    },
    [](harness::Scenario& sc) {
      if (sc.measure_s <= 5) return false;
      sc.measure_s = std::max(5.0, sc.measure_s / 2);
      return true;
    },
    [](harness::Scenario& sc) {
      if (sc.warmup_s <= 5) return false;
      sc.warmup_s = std::max(5.0, sc.warmup_s / 2);
      return true;
    },
    [](harness::Scenario& sc) {
      if (sc.faulty_nodes == 0) return false;
      sc.faulty_nodes /= 2;
      return true;
    },
    [](harness::Scenario& sc) {
      if (sc.loss_probability == 0) return false;
      sc.loss_probability = 0;
      return true;
    },
    [](harness::Scenario& sc) {
      if (!sc.mobile) return false;
      sc.mobile = false;
      return true;
    },
    [](harness::Scenario& sc) {
      if (sc.sources_per_round <= 1) return false;
      sc.sources_per_round = std::max(1, sc.sources_per_round / 2);
      return true;
    },
    [](harness::Scenario& sc) {
      if (sc.packets_per_second <= 1) return false;
      sc.packets_per_second = std::max(1.0, sc.packets_per_second / 2);
      return true;
    },
    [](harness::Scenario& sc) {
      if (sc.timeline_bucket_s == 0 && !sc.profile) return false;
      sc.timeline_bucket_s = 0;
      sc.profile = false;
      return true;
    },
    // App layer: first strip the actuator fault sources (keepalives and
    // loops keep running), then turn the whole tier off.  The oracle
    // keeps either only while the original violation still fires.
    [](harness::Scenario& sc) {
      if (!sc.app_enabled ||
          (sc.app_break_rate_hz == 0 && sc.app_fault_schedule.empty())) {
        return false;
      }
      sc.app_break_rate_hz = 0;
      sc.app_fault_schedule.clear();
      return true;
    },
    [](harness::Scenario& sc) {
      if (!sc.app_enabled) return false;
      sc.app_enabled = false;
      return true;
    },
};

}  // namespace

ScenarioShrinker::Result ScenarioShrinker::shrink(
    const harness::Scenario& failing, const std::vector<Violation>& original,
    const Options& options) {
  Result result;
  result.scenario = failing;
  result.scenario.observer = nullptr;
  result.violations = original;

  bool progressed = true;
  while (progressed && result.runs < options.max_runs) {
    progressed = false;
    for (const Reduction reduce : kReductions) {
      if (result.runs >= options.max_runs) break;
      harness::Scenario candidate = result.scenario;
      if (!reduce(candidate)) continue;
      ++result.runs;
      std::vector<Violation> got =
          run_case(options.kind, candidate, options.trace_path);
      if (!reproduces(got, original)) continue;
      result.scenario = candidate;
      result.violations = std::move(got);
      ++result.accepted;
      progressed = true;
    }
  }
  return result;
}

}  // namespace refer::verify
