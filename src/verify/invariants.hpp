// The invariant engine: a harness::RunObserver that validates a live
// run at two granularities.
//
// At event granularity (a sim::Tracer tap) every trace record is
// checked as it is emitted: the simulator clock never runs backwards,
// node ids stay inside the world, routing fields are internally sane.
//
// At run end the whole deployment is audited:
//   - energy conservation: every joule in the bucket totals is explained
//     by tx_packets * 2 J + rx_packets * 0.75 J -- exactly (all charges
//     are multiples of 0.25 J, so the comparison needs no tolerance);
//   - channel ledger: receptions were charged 1:1, completions never
//     exceed sends, the per-node spend ledger sums to the bucket total;
//   - metrics sanity: delivered <= sent, ratios inside [0, 1], energy
//     split sums to the total;
//   - REFER topology structure (core::validate_topology): K(d,k) label
//     validity, global binding bijection, corners are actuators.  Cell
//     completeness / liveness are NOT required -- fault injection
//     legitimately leaves the last faulty set down at the horizon;
//   - the written JSONL trace replayed through analysis::analyze_trace
//     (PR 2's offline auditor): hop-chain continuity, Kautz arc
//     validity, and every Theorem 3.8 fail-over re-derived against
//     kautz::disjoint_routes.
//
// Violations accumulate as {check, detail} records; a clean run has
// none.  The checker is single-run-local like the Tracer: one instance
// per concurrent job.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace refer::sim {
struct TraceRecord;  // sim/trace.hpp
}  // namespace refer::sim

namespace refer::verify {

/// One failed invariant.
struct Violation {
  std::string check;   ///< stable machine name, e.g. "energy.conservation"
  std::string detail;  ///< human-readable specifics
};

/// Formats violations one per line ("check: detail").
void print_violations(const std::vector<Violation>& violations,
                      std::FILE* out);

class InvariantChecker final : public harness::RunObserver {
 public:
  /// Caps event-granularity violations recorded per check so a broken
  /// run cannot accumulate millions of identical entries.
  static constexpr std::size_t kMaxPerCheck = 8;

  void on_run_start(const harness::RunContext& ctx) override;
  void on_run_end(const harness::RunContext& ctx,
                  const harness::RunMetrics& metrics) override;

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] bool clean() const noexcept { return violations_.empty(); }

  /// Trace records seen through the tap (0 when tracing was off).
  [[nodiscard]] std::uint64_t records_seen() const noexcept {
    return records_seen_;
  }

 private:
  void add(const std::string& check, std::string detail);
  void check_record(const harness::RunContext& ctx,
                    const sim::TraceRecord& record);
  void check_app_record(const harness::RunContext& ctx,
                        const sim::TraceRecord& record);
  void check_energy(const harness::RunContext& ctx);
  void check_metrics(const harness::RunContext& ctx,
                     const harness::RunMetrics& metrics);
  void check_topology(const harness::RunContext& ctx);
  void check_trace_audit(const harness::RunContext& ctx);

  std::vector<Violation> violations_;
  std::uint64_t records_seen_ = 0;
  std::uint64_t suppressed_ = 0;
  double last_record_t_ = 0;
  /// App-layer registration state machine, replayed from the app_*
  /// events (node -> keepalive misses since the last clean tick, and
  /// the believed-down flag).  A down must follow >= miss_limit misses,
  /// an up must follow a down, a down actuator must not actuate.
  struct AppActuatorState {
    int misses = 0;
    bool down = false;
  };
  std::map<sim::NodeId, AppActuatorState> app_state_;
  std::uint64_t app_ups_seen_ = 0;
};

}  // namespace refer::verify
