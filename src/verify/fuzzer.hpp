// Scenario fuzzer: derives a complete randomized-but-bounded Scenario
// from a single 64-bit seed and runs it under the invariant engine.
//
// generate() is a pure function of the seed -- same seed, same Scenario,
// field for field -- so any failing case is reproducible from its seed
// alone, and the shrinker / repro.json replay path (repro.hpp) can
// re-execute it bit-identically.  The ranges are chosen to stay inside
// a couple of simulated minutes per case while still covering world
// size, K(2,3) cell counts, node counts, RWP mobility, traffic mix, and
// fault-injection schedules (node kills via Scenario::faulty_nodes,
// link flaps via Scenario::loss_probability).
//
//   referbench fuzz --seeds 100 --jobs 0
//
// drives run_fuzz(): seeds [base, base+N) execute in waves on a
// runner::ParallelExecutor, each with its own InvariantChecker and
// JSONL trace; clean traces are deleted, failing ones kept for triage.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "verify/invariants.hpp"

namespace refer::verify {

class ScenarioFuzzer {
 public:
  /// The Scenario for one fuzz seed (deterministic; see file comment).
  /// `scenario.seed` is the fuzz seed itself; trace_path / observer are
  /// left unset for the caller.
  [[nodiscard]] static harness::Scenario generate(std::uint64_t seed);
};

/// Runs one scenario under a fresh InvariantChecker and returns every
/// violation.  `trace_path` (may be empty) overrides scenario.trace_path
/// and enables the end-of-run trace audit; the file is left on disk.
[[nodiscard]] std::vector<Violation> run_case(harness::SystemKind kind,
                                              harness::Scenario scenario,
                                              const std::string& trace_path);

struct FuzzOptions {
  int seeds = 25;               ///< number of cases: [base_seed, +seeds)
  std::uint64_t base_seed = 1;  ///< first fuzz seed
  int jobs = 1;                 ///< ParallelExecutor width (<= 0: all cores)
  double budget_s = 0;          ///< stop launching new waves after this (0: off)
  int planted_bug = 0;          ///< forwarded to Scenario::planted_bug
  /// Force the closed-loop app layer on for every case (and give cases
  /// with no fault source a default Poisson break rate), so a fuzz run
  /// exercises actuator failure / recovery in all cases, not ~half.
  bool force_app = false;
  /// Directory for the per-case JSONL traces (created if missing; empty
  /// uses the system temp directory).  Failing cases leave their trace
  /// behind as fuzz_<seed>.jsonl.
  std::string trace_dir;
};

/// One failing fuzz case.
struct FuzzFailure {
  std::uint64_t seed = 0;
  harness::Scenario scenario;
  std::vector<Violation> violations;
  std::string trace_path;  ///< kept on disk for triage
};

struct FuzzSummary {
  int cases_run = 0;
  int cases_requested = 0;  ///< > cases_run when budget_s cut the run short
  int builds_failed = 0;    ///< cases whose topology construction failed
  std::vector<FuzzFailure> failures;
  [[nodiscard]] bool clean() const noexcept { return failures.empty(); }
};

/// The fuzz driver behind `referbench fuzz`.  Deterministic up to which
/// cases run: the budget may cut waves, but every case that runs is a
/// pure function of its seed.  `progress` (optional) is called after
/// every wave with (cases done, cases requested).
[[nodiscard]] FuzzSummary run_fuzz(
    const FuzzOptions& options,
    const std::function<void(int, int)>& progress = {});

}  // namespace refer::verify
