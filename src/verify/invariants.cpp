#include "verify/invariants.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "analysis/trace_report.hpp"
#include "refer/system.hpp"
#include "refer/validate.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace refer::verify {

namespace {

std::string format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

void add_count(std::vector<Violation>& out, const char* check,
               std::uint64_t count) {
  if (count == 0) return;
  out.push_back({check, format("%" PRIu64 " occurrence(s)", count)});
}

}  // namespace

void print_violations(const std::vector<Violation>& violations,
                      std::FILE* out) {
  for (const Violation& v : violations) {
    std::fprintf(out, "  %s: %s\n", v.check.c_str(), v.detail.c_str());
  }
}

void InvariantChecker::add(const std::string& check, std::string detail) {
  std::size_t same = 0;
  for (const Violation& v : violations_) {
    if (v.check == check) ++same;
  }
  if (same >= kMaxPerCheck) {
    ++suppressed_;
    return;
  }
  violations_.push_back({check, std::move(detail)});
}

void InvariantChecker::on_run_start(const harness::RunContext& ctx) {
  last_record_t_ = 0;
  ctx.tracer->set_tap(
      [this, &ctx](const sim::TraceRecord& rec) { check_record(ctx, rec); });
}

void InvariantChecker::check_record(const harness::RunContext& ctx,
                                    const sim::TraceRecord& rec) {
  ++records_seen_;
  // Monotone simulator clock: every emission site stamps sim.now(), so a
  // record older than its predecessor (or ahead of the kernel clock)
  // means the event queue executed out of order.
  if (rec.t < last_record_t_) {
    add("clock.monotone",
        format("record at t=%.9f after t=%.9f", rec.t, last_record_t_));
  }
  if (rec.t > ctx.sim->now()) {
    add("clock.ahead",
        format("record stamped t=%.9f but kernel clock is %.9f", rec.t,
               ctx.sim->now()));
  }
  last_record_t_ = rec.t < last_record_t_ ? last_record_t_ : rec.t;

  const auto n = static_cast<long long>(ctx.world->size());
  if (rec.from < -1 || rec.from >= n || rec.to < -1 || rec.to >= n) {
    add("record.node_range",
        format("%s: from=%d to=%d outside world of %lld nodes",
               sim::to_string(rec.event), rec.from, rec.to, n));
  }
  if (rec.bytes > (std::size_t{1} << 24)) {
    add("record.bytes", format("%s: %zu-byte frame",
                               sim::to_string(rec.event), rec.bytes));
  }
  if (rec.hop_index < -1 || rec.alt_index < -1 || rec.nominal_len < -1) {
    add("record.fields",
        format("%s: hop=%d alt=%d nominal=%d", sim::to_string(rec.event),
               rec.hop_index, rec.alt_index, rec.nominal_len));
  }
  if (rec.event == sim::TraceEvent::kFailover && rec.nominal_len >= 0 &&
      (rec.at_label.empty() || rec.dst_label.empty() ||
       rec.next_label.empty())) {
    add("record.failover_labels",
        format("Theorem 3.8 failover at t=%.6f missing labels", rec.t));
  }
  check_app_record(ctx, rec);
}

void InvariantChecker::check_app_record(const harness::RunContext& ctx,
                                        const sim::TraceRecord& rec) {
  // Replays the app tier's registration state machine from its events:
  // keepalive misses accumulate per actuator, a believed-down
  // transition needs at least miss_limit of them (successful keepalives
  // emit nothing, so this is a lower bound, not an exact count), a
  // recovery handshake needs a preceding down, and a believed-down
  // actuator must never actuate.
  switch (rec.event) {
    case sim::TraceEvent::kAppKeepaliveMiss:
      ++app_state_[rec.from].misses;
      break;
    case sim::TraceEvent::kAppActuatorDown: {
      AppActuatorState& st = app_state_[rec.from];
      const int limit =
          ctx.scenario ? ctx.scenario->app_keepalive_miss_limit : 1;
      if (st.down) {
        add("app.double_down",
            format("actuator %d believed down twice at t=%.6f without a "
                   "recovery in between",
                   rec.from, rec.t));
      }
      if (st.misses < limit) {
        add("app.down_without_misses",
            format("actuator %d believed down at t=%.6f after %d misses "
                   "(limit %d)",
                   rec.from, rec.t, st.misses, limit));
      }
      st.down = true;
      break;
    }
    case sim::TraceEvent::kAppActuatorUp: {
      AppActuatorState& st = app_state_[rec.from];
      ++app_ups_seen_;
      if (!st.down) {
        add("app.up_without_down",
            format("actuator %d re-registered at t=%.6f without a "
                   "preceding believed-down",
                   rec.from, rec.t));
      }
      st.down = false;
      st.misses = 0;
      break;
    }
    case sim::TraceEvent::kAppActuate: {
      const auto it = app_state_.find(rec.from);
      if (it != app_state_.end() && it->second.down) {
        add("app.actuate_while_down",
            format("believed-down actuator %d issued a command at t=%.6f",
                   rec.from, rec.t));
      }
      break;
    }
    default:
      break;
  }
}

void InvariantChecker::check_energy(const harness::RunContext& ctx) {
  const sim::EnergyTracker& energy = *ctx.energy;
  const sim::EnergyTracker::Config& cfg = energy.config();
  // Every charge is a multiple of 0.25 J, so all the sums below are
  // exactly representable doubles (up to ~2^52): the identities hold
  // with == and any difference is a real accounting bug, not rounding.
  const double expected =
      static_cast<double>(energy.tx_packets()) * cfg.tx_joules_per_packet +
      static_cast<double>(energy.rx_packets()) * cfg.rx_joules_per_packet;
  if (energy.grand_total() != expected) {
    add("energy.conservation",
        format("buckets hold %.6f J but %" PRIu64 " tx + %" PRIu64
               " rx packets account for %.6f J",
               energy.grand_total(), energy.tx_packets(), energy.rx_packets(),
               expected));
  }
  double per_node = 0;
  for (std::size_t i = 0; i < ctx.world->size(); ++i) {
    const double spent = energy.node_total(i);
    if (spent < 0) {
      add("energy.negative", format("node %zu spent %.6f J", i, spent));
    }
    per_node += spent;
  }
  if (per_node != energy.grand_total()) {
    add("energy.node_ledger",
        format("per-node ledger sums to %.6f J, buckets to %.6f J", per_node,
               energy.grand_total()));
  }

  const sim::ChannelStats& cs = ctx.channel->stats();
  // Receptions are charged atomically with the delivery counters.
  const std::uint64_t receptions =
      cs.unicasts_delivered + cs.broadcast_receptions;
  if (energy.rx_packets() != receptions) {
    add("channel.rx_ledger",
        format("%" PRIu64 " rx charges vs %" PRIu64 " receptions",
               energy.rx_packets(), receptions));
  }
  // Senders are charged when the frame clears the air, so in-flight
  // frames at the horizon and dead-sender rejections leave tx charges
  // at or below the send count -- never above.
  if (energy.tx_packets() > cs.unicasts_sent + cs.broadcasts_sent) {
    add("channel.tx_ledger",
        format("%" PRIu64 " tx charges vs %" PRIu64 " sends",
               energy.tx_packets(), cs.unicasts_sent + cs.broadcasts_sent));
  }
  if (cs.unicasts_delivered + cs.unicasts_failed > cs.unicasts_sent) {
    add("channel.completions",
        format("%" PRIu64 " delivered + %" PRIu64 " failed > %" PRIu64
               " sent",
               cs.unicasts_delivered, cs.unicasts_failed, cs.unicasts_sent));
  }
  if (cs.total_airtime_s < 0) {
    add("channel.airtime", format("%.6f s total airtime", cs.total_airtime_s));
  }
}

void InvariantChecker::check_metrics(const harness::RunContext& ctx,
                                     const harness::RunMetrics& m) {
  (void)ctx;
  if (m.packets_delivered > m.packets_sent) {
    add("metrics.delivery_count",
        format("%" PRIu64 " delivered > %" PRIu64 " sent",
               m.packets_delivered, m.packets_sent));
  }
  if (m.qos_delivered > m.packets_delivered) {
    add("metrics.qos_count",
        format("%" PRIu64 " within QoS > %" PRIu64 " delivered",
               m.qos_delivered, m.packets_delivered));
  }
  if (m.delivery_ratio < 0 || m.delivery_ratio > 1) {
    add("metrics.delivery_ratio", format("%.9f", m.delivery_ratio));
  }
  if (m.qos_throughput_kbps < 0 || m.avg_delay_ms < 0 ||
      m.delay_p95_ms < 0) {
    add("metrics.negative",
        format("throughput=%.3f delay=%.3f p95=%.3f", m.qos_throughput_kbps,
               m.avg_delay_ms, m.delay_p95_ms));
  }
  if (m.total_energy_j != m.comm_energy_j + m.construction_energy_j) {
    add("metrics.energy_split",
        format("total %.6f != comm %.6f + construction %.6f",
               m.total_energy_j, m.comm_energy_j, m.construction_energy_j));
  }
  if (ctx.scenario && ctx.scenario->app_enabled) {
    if (m.app_loops_completed > m.app_loops_started) {
      add("app.loop_count",
          format("%" PRIu64 " completed > %" PRIu64 " started",
                 m.app_loops_completed, m.app_loops_started));
    }
    if (m.app_loops_within_deadline > m.app_loops_completed) {
      add("app.loop_count",
          format("%" PRIu64 " within deadline > %" PRIu64 " completed",
                 m.app_loops_within_deadline, m.app_loops_completed));
    }
    if (m.app_loop_completion_ratio < 0 || m.app_loop_completion_ratio > 1) {
      add("app.completion_ratio", format("%.9f", m.app_loop_completion_ratio));
    }
    if (m.app_actuator_availability < 0 || m.app_actuator_availability > 1) {
      add("app.availability", format("%.9f", m.app_actuator_availability));
    }
    if (m.app_mean_recovery_s < 0 ||
        (m.app_recoveries == 0 && m.app_mean_recovery_s != 0)) {
      add("app.recovery_mean",
          format("%.6f s over %" PRIu64 " recoveries", m.app_mean_recovery_s,
                 m.app_recoveries));
    }
    // Tap-replay cross-check: every recovery the metric counted must
    // have emitted its handshake through the tracer, 1:1.
    if (m.build_ok && m.app_recoveries != app_ups_seen_) {
      add("app.recovery_count",
          format("metrics report %" PRIu64 " recoveries, trace carried %" PRIu64
                 " app_actuator_up handshake(s)",
                 m.app_recoveries, app_ups_seen_));
    }
  }
}

void InvariantChecker::check_topology(const harness::RunContext& ctx) {
  if (!ctx.refer_system) return;
  // Structural invariants only: label validity, the global label<->node
  // bijection, corners bound to actuators.  Completeness / liveness are
  // legitimately violated at the horizon (the last fault-injection set
  // is still down and repairs may be mid-flight), so they stay off.
  core::ValidationOptions options;
  options.require_complete_cells = false;
  options.require_alive_sensors = false;
  for (const std::string& problem : core::validate_topology(
           ctx.refer_system->topology(), *ctx.world, options)) {
    add("topology.structure", problem);
  }
}

void InvariantChecker::check_trace_audit(const harness::RunContext& ctx) {
  if (!ctx.scenario || ctx.scenario->trace_path.empty()) return;
  if (ctx.trace_writer) ctx.trace_writer->flush();
  const analysis::TraceReport report =
      analysis::analyze_trace_file(ctx.scenario->trace_path);
  if (report.lines != records_seen_) {
    add("trace.completeness",
        format("tap saw %" PRIu64 " records, file holds %" PRIu64 " lines",
               records_seen_, report.lines));
  }
  std::vector<Violation> audit;
  add_count(audit, "trace.parse_errors", report.parse_errors);
  add_count(audit, "trace.schema_errors", report.schema_errors);
  add_count(audit, "trace.failover_mismatches", report.failover_mismatches);
  add_count(audit, "trace.path_length_violations",
            report.path_length_violations);
  add_count(audit, "trace.chain_breaks", report.chain_breaks);
  add_count(audit, "trace.arc_violations", report.arc_violations);
  add_count(audit, "trace.regular_mismatches", report.regular_mismatches);
  for (Violation& v : audit) add(v.check, std::move(v.detail));
}

void InvariantChecker::on_run_end(const harness::RunContext& ctx,
                                  const harness::RunMetrics& metrics) {
  ctx.tracer->clear_tap();
  check_energy(ctx);
  check_metrics(ctx, metrics);
  if (metrics.build_ok) check_topology(ctx);
  check_trace_audit(ctx);
  if (suppressed_ > 0) {
    violations_.push_back(
        {"checker.suppressed",
         format("%" PRIu64 " further event-level violations capped",
                suppressed_)});
  }
}

}  // namespace refer::verify
