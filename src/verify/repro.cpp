#include "verify/repro.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/jsonl.hpp"
#include "runner/json.hpp"

namespace refer::verify {

std::string summarize(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    if (!out.empty()) out += "; ";
    out += v.check + ": " + v.detail;
  }
  return out;
}

std::string to_repro_json(const ReproCase& repro) {
  const harness::Scenario& sc = repro.scenario;
  runner::JsonWriter w;
  w.begin_object();
  w.kv("repro_version", kReproVersion);
  w.kv("system", harness::to_string(repro.kind));
  w.kv("violation", repro.violation);
  w.kv("area_side_m", sc.area_side_m);
  w.kv("n_actuators", sc.n_actuators);
  w.kv("n_sensors", sc.n_sensors);
  w.kv("sensor_spread_m", sc.sensor_spread_m);
  w.kv("sensor_range_m", sc.sensor_range_m);
  w.kv("actuator_range_m", sc.actuator_range_m);
  w.kv("initial_battery_j", sc.initial_battery_j);
  w.kv("mobile", sc.mobile);
  w.kv("min_speed_mps", sc.min_speed_mps);
  w.kv("max_speed_mps", sc.max_speed_mps);
  w.kv("sources_per_round", sc.sources_per_round);
  w.kv("round_period_s", sc.round_period_s);
  w.kv("packets_per_second", sc.packets_per_second);
  w.kv("packet_bytes", static_cast<std::uint64_t>(sc.packet_bytes));
  w.kv("warmup_s", sc.warmup_s);
  w.kv("measure_s", sc.measure_s);
  w.kv("qos_deadline_s", sc.qos_deadline_s);
  w.kv("faulty_nodes", sc.faulty_nodes);
  w.kv("fault_period_s", sc.fault_period_s);
  w.kv("loss_probability", sc.loss_probability);
  w.kv("planted_bug", sc.planted_bug);
  w.kv("app_enabled", sc.app_enabled);
  w.kv("app_event_period_s", sc.app_event_period_s);
  w.kv("app_loop_deadline_s", sc.app_loop_deadline_s);
  w.kv("app_keepalive_period_s", sc.app_keepalive_period_s);
  w.kv("app_keepalive_miss_limit", sc.app_keepalive_miss_limit);
  w.kv("app_break_rate_hz", sc.app_break_rate_hz);
  w.kv("app_repair_s", sc.app_repair_s);
  w.kv("app_fault_schedule", sc.app_fault_schedule);
  // As a string: JSON numbers are doubles and drop seed bits past 2^53.
  w.kv("seed", std::to_string(sc.seed));
  w.kv("csma", sc.csma);
  w.kv("spatial_index", sc.spatial_index);
  w.kv("neighbor_cache", sc.neighbor_cache);
  w.kv("routing_policy", harness::to_string(sc.routing_policy));
  w.kv("legacy_event_queue", sc.legacy_event_queue);
  w.kv("timeline_bucket_s", sc.timeline_bucket_s);
  w.kv("phase_profile", sc.phase_profile);
  w.kv("profile", sc.profile);
  w.end_object();
  return w.str() + "\n";
}

bool write_repro(const std::string& path, const ReproCase& repro) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string doc = to_repro_json(repro);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

/// Pulls one typed field out of the parsed object; records an error and
/// leaves `out` untouched when absent or ill-typed.
struct FieldReader {
  const analysis::JsonObject& obj;
  std::string error;  // first problem seen; empty = all good

  void fail(const std::string& key, const char* what) {
    if (error.empty()) error = key + ": " + what;
  }

  const analysis::JsonValue* find(const std::string& key) {
    const auto it = obj.find(key);
    if (it == obj.end()) {
      fail(key, "missing");
      return nullptr;
    }
    return &it->second;
  }

  void number(const std::string& key, double& out) {
    if (const auto* v = find(key)) {
      if (v->kind != analysis::JsonValue::Kind::kNumber) {
        fail(key, "expected a number");
      } else {
        out = v->number;
      }
    }
  }
  void integer(const std::string& key, int& out) {
    double d = 0;
    const std::string before = error;
    number(key, d);
    if (error == before) out = static_cast<int>(d);
  }
  void size(const std::string& key, std::size_t& out) {
    double d = 0;
    const std::string before = error;
    number(key, d);
    if (error == before) out = static_cast<std::size_t>(d);
  }
  /// Like boolean(), but a missing key keeps `out`'s default instead of
  /// erroring -- for fields added after files of this version shipped.
  void optional_boolean(const std::string& key, bool& out) {
    if (!obj.contains(key)) return;
    boolean(key, out);
  }

  void boolean(const std::string& key, bool& out) {
    if (const auto* v = find(key)) {
      if (v->kind != analysis::JsonValue::Kind::kBool) {
        fail(key, "expected a bool");
      } else {
        out = v->boolean;
      }
    }
  }
  void string(const std::string& key, std::string& out) {
    if (const auto* v = find(key)) {
      if (v->kind != analysis::JsonValue::Kind::kString) {
        fail(key, "expected a string");
      } else {
        out = v->str;
      }
    }
  }
};

}  // namespace

std::optional<ReproCase> load_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "repro: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto obj = analysis::parse_flat_object(buf.str());
  if (!obj) {
    std::fprintf(stderr, "repro: %s is not a flat JSON object\n",
                 path.c_str());
    return std::nullopt;
  }

  FieldReader r{*obj, {}};
  int version = 0;
  r.integer("repro_version", version);
  // v2 files stay loadable: they simply predate the app-layer knobs, so
  // those keep their Scenario defaults (app off).
  if (r.error.empty() && (version < 2 || version > kReproVersion)) {
    std::fprintf(stderr, "repro: %s has version %d, expected %d (or the "
                 "still-readable 2..%d)\n",
                 path.c_str(), version, kReproVersion, kReproVersion - 1);
    return std::nullopt;
  }

  ReproCase repro;
  std::string system, seed;
  r.string("system", system);
  r.string("violation", repro.violation);
  harness::Scenario& sc = repro.scenario;
  r.number("area_side_m", sc.area_side_m);
  r.integer("n_actuators", sc.n_actuators);
  r.integer("n_sensors", sc.n_sensors);
  r.number("sensor_spread_m", sc.sensor_spread_m);
  r.number("sensor_range_m", sc.sensor_range_m);
  r.number("actuator_range_m", sc.actuator_range_m);
  r.number("initial_battery_j", sc.initial_battery_j);
  r.boolean("mobile", sc.mobile);
  r.number("min_speed_mps", sc.min_speed_mps);
  r.number("max_speed_mps", sc.max_speed_mps);
  r.integer("sources_per_round", sc.sources_per_round);
  r.number("round_period_s", sc.round_period_s);
  r.number("packets_per_second", sc.packets_per_second);
  r.size("packet_bytes", sc.packet_bytes);
  r.number("warmup_s", sc.warmup_s);
  r.number("measure_s", sc.measure_s);
  r.number("qos_deadline_s", sc.qos_deadline_s);
  r.integer("faulty_nodes", sc.faulty_nodes);
  r.number("fault_period_s", sc.fault_period_s);
  r.number("loss_probability", sc.loss_probability);
  r.integer("planted_bug", sc.planted_bug);
  if (version >= 3) {
    r.boolean("app_enabled", sc.app_enabled);
    r.number("app_event_period_s", sc.app_event_period_s);
    r.number("app_loop_deadline_s", sc.app_loop_deadline_s);
    r.number("app_keepalive_period_s", sc.app_keepalive_period_s);
    r.integer("app_keepalive_miss_limit", sc.app_keepalive_miss_limit);
    r.number("app_break_rate_hz", sc.app_break_rate_hz);
    r.number("app_repair_s", sc.app_repair_s);
    r.string("app_fault_schedule", sc.app_fault_schedule);
  }
  r.string("seed", seed);
  r.boolean("csma", sc.csma);
  r.boolean("spatial_index", sc.spatial_index);
  // Added mid-version-3: older repro files simply predate the flag.
  r.optional_boolean("neighbor_cache", sc.neighbor_cache);
  if (version >= 4) {
    std::string policy;
    r.string("routing_policy", policy);
    if (r.error.empty() &&
        !harness::parse_routing_policy(policy, sc.routing_policy)) {
      r.fail("routing_policy", "expected \"greedy\" or \"regular\"");
    }
  }
  r.boolean("legacy_event_queue", sc.legacy_event_queue);
  r.number("timeline_bucket_s", sc.timeline_bucket_s);
  // Added mid-version-3: older repro files simply predate the flag.
  r.optional_boolean("phase_profile", sc.phase_profile);
  r.boolean("profile", sc.profile);
  if (!r.error.empty()) {
    std::fprintf(stderr, "repro: %s: %s\n", path.c_str(), r.error.c_str());
    return std::nullopt;
  }

  bool found = false;
  for (const harness::SystemKind kind : harness::kAllSystems) {
    if (system == harness::to_string(kind)) {
      repro.kind = kind;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "repro: unknown system \"%s\"\n", system.c_str());
    return std::nullopt;
  }
  try {
    sc.seed = std::stoull(seed);
  } catch (...) {
    std::fprintf(stderr, "repro: bad seed \"%s\"\n", seed.c_str());
    return std::nullopt;
  }
  return repro;
}

}  // namespace refer::verify
