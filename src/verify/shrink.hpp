// Scenario shrinker: reduces a failing fuzz case to a minimal
// reproducer.
//
// Greedy delta debugging over the scenario knobs: each pass tries one
// reduction (halve the sensor count, halve the horizon, drop the fault
// schedule, zero the link-flap loss, freeze mobility, thin the
// traffic); a candidate is kept only when the run still raises at least
// one of the original violation checks.  Passes repeat until a full
// sweep accepts nothing or the re-run budget is exhausted.  Every
// candidate run is a full run_case -- deterministic, so the shrink is
// reproducible end to end.
#pragma once

#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "verify/invariants.hpp"

namespace refer::verify {

class ScenarioShrinker {
 public:
  struct Options {
    harness::SystemKind kind = harness::SystemKind::kRefer;
    int max_runs = 48;  ///< total candidate re-executions allowed
    /// Scratch trace file for candidate runs (needed by the trace
    /// audits; overwritten per candidate).  Empty disables the trace
    /// audits during shrinking -- only do that when the violation being
    /// reproduced is not a trace.* check.
    std::string trace_path;
  };

  struct Result {
    harness::Scenario scenario;         ///< the minimal reproducer
    std::vector<Violation> violations;  ///< what the reproducer raises
    int runs = 0;                       ///< candidate executions spent
    int accepted = 0;                   ///< reductions that stuck
  };

  /// Shrinks `failing` (already known to raise `original`).  The result
  /// scenario still fails with at least one of the original checks; when
  /// nothing can be reduced it equals the input.
  [[nodiscard]] static Result shrink(const harness::Scenario& failing,
                                     const std::vector<Violation>& original,
                                     const Options& options);
};

}  // namespace refer::verify
