// Minimal-reproducer files (repro.json): a shrunk failing scenario
// serialized flat so `referbench replay repro.json` re-executes it
// bit-identically.
//
// The format is one flat JSON object (analysis::parse_flat_object's
// subset: no nesting) holding every Scenario field plus the system kind
// and the violation summary that produced it.  The 64-bit seed is
// written as a *string* -- JSON numbers are doubles and would silently
// lose seed bits past 2^53.
#pragma once

#include <optional>
#include <string>

#include "harness/experiment.hpp"
#include "verify/invariants.hpp"

namespace refer::verify {

// v2: adds the scenario's legacy_event_queue kernel toggle.
// v3: adds the closed-loop app layer's eight app_* scenario knobs
//     (src/app).  load_repro still reads v2 files -- the app fields
//     then keep their defaults (app_enabled = false).
// v4: adds the routing_policy toggle ("greedy" / "regular",
//     Scenario::routing_policy).  v2 / v3 files stay loadable -- the
//     policy then keeps its default (greedy), which is what every
//     pre-v4 run used.
inline constexpr int kReproVersion = 4;

struct ReproCase {
  harness::SystemKind kind = harness::SystemKind::kRefer;
  harness::Scenario scenario;
  /// "check: detail; ..." summary of the violations being reproduced.
  std::string violation;
};

/// Renders the case as a flat JSON object (one line, trailing newline).
[[nodiscard]] std::string to_repro_json(const ReproCase& repro);

/// Writes to_repro_json(repro) to `path`; false when the file cannot be
/// opened.
bool write_repro(const std::string& path, const ReproCase& repro);

/// Parses a repro.json back into a runnable case.  Returns nullopt (and
/// prints the reason to stderr) on unreadable files, version mismatch,
/// or missing / ill-typed fields.
[[nodiscard]] std::optional<ReproCase> load_repro(const std::string& path);

/// Summarizes violations for ReproCase::violation.
[[nodiscard]] std::string summarize(const std::vector<Violation>& violations);

}  // namespace refer::verify
