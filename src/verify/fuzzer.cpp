#include "verify/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "app/fault_schedule.hpp"
#include "common/rng.hpp"
#include "runner/parallel_executor.hpp"

namespace refer::verify {

harness::Scenario ScenarioFuzzer::generate(std::uint64_t seed) {
  // A stream independent of every in-run stream: the scenario knobs must
  // not correlate with the simulation draws made from scenario.seed.
  Rng rng(seed ^ 0xF022A51DC3B7E991ULL);
  harness::Scenario sc;
  sc.seed = seed;

  // Deployment geometry.  5 actuators is the paper's quincunx; larger
  // counts exercise the zig-zag strip and more K(2,3) cells.  Ranges
  // scale with the world side so the actuator triangulation fits (the
  // quincunx needs actuator_range >= side/2) and sensor density stays
  // in a regime where cells can usually be built -- build failures are
  // legal outcomes but check almost nothing.
  sc.area_side_m = rng.uniform(350, 650);
  sc.n_actuators = rng.chance(0.25) ? static_cast<int>(rng.range(6, 9)) : 5;
  sc.n_sensors = static_cast<int>(rng.range(60, 200));
  sc.sensor_spread_m = sc.area_side_m * rng.uniform(0.32, 0.5);
  sc.sensor_range_m = sc.area_side_m * rng.uniform(0.18, 0.28);
  sc.actuator_range_m = sc.area_side_m * rng.uniform(0.51, 0.62);

  // Mobility.
  sc.mobile = rng.chance(0.8);
  sc.min_speed_mps = 0;
  sc.max_speed_mps = rng.uniform(0.5, 4.0);

  // Traffic mix.
  sc.sources_per_round = static_cast<int>(rng.range(2, 8));
  sc.round_period_s = rng.uniform(5, 12);
  sc.packets_per_second = rng.uniform(2, 12);
  sc.packet_bytes = static_cast<std::size_t>(rng.range(500, 4000));
  sc.warmup_s = rng.uniform(5, 10);
  sc.measure_s = rng.uniform(8, 20);
  sc.qos_deadline_s = rng.uniform(0.3, 1.0);

  // Fault injection: node kills every fault_period_s, link flaps as
  // per-frame loss.  Half the cases keep perfect links so the loss-free
  // invariants also stay covered.
  sc.faulty_nodes = rng.chance(0.7)
                        ? static_cast<int>(rng.range(0, sc.n_sensors / 5))
                        : 0;
  sc.fault_period_s = rng.uniform(4, 12);
  sc.loss_probability = rng.chance(0.5) ? rng.uniform(0, 0.1) : 0.0;

  // Kernel / harness toggles.
  sc.csma = rng.chance(0.9);
  sc.spatial_index = rng.chance(0.9);
  sc.legacy_event_queue = rng.chance(0.1);
  sc.timeline_bucket_s = rng.chance(0.3) ? 5.0 : 0.0;
  sc.profile = rng.chance(0.25);

  // Closed-loop app layer (src/app): half the cases run control loops
  // so the registration / keepalive / fail-over invariants stay fuzzed
  // alongside the routing ones.  Draws are appended after every
  // pre-existing knob, so seeds produce the same base scenario they
  // always did.
  sc.app_enabled = rng.chance(0.5);
  if (sc.app_enabled) {
    sc.app_event_period_s = rng.uniform(4, 12);
    sc.app_loop_deadline_s = rng.uniform(0.5, 2.0);
    sc.app_keepalive_period_s = rng.uniform(2, 6);
    sc.app_keepalive_miss_limit = static_cast<int>(rng.range(1, 3));
    sc.app_repair_s = rng.uniform(5, 20);
    sc.app_break_rate_hz =
        rng.chance(0.6) ? rng.uniform(0.005, 0.05) : 0.0;
    if (rng.chance(0.3)) {
      // A scripted break/repair window or two on top of (or instead of)
      // the Poisson breaks -- the deterministic AppFaultSchedule path.
      std::vector<app::FaultWindow> windows;
      const int count = static_cast<int>(rng.range(1, 2));
      for (int i = 0; i < count; ++i) {
        app::FaultWindow w;
        w.actuator_index = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(sc.n_actuators)));
        w.start_rel_s = rng.uniform(0, sc.warmup_s + sc.measure_s);
        w.duration_s = rng.uniform(2, 10);
        windows.push_back(w);
      }
      sc.app_fault_schedule = app::format_fault_schedule(windows);
    }
  }

  // Neighbor cache escape hatch, fuzzed like legacy_event_queue: mostly
  // on (the default), off often enough that the bit-identity contract
  // between the cached and uncached scan stays exercised.  Appended
  // after every pre-existing draw so old seeds reproduce unchanged.
  sc.neighbor_cache = rng.chance(0.9);

  // Routing policy: a third of the cases ride the regular all-to-all
  // walks (kautz/regular.hpp) so the policy's invariants -- valid arc
  // walks, Theorem 3.8 fail-over behind them, the trace_report regular
  // audit -- get fuzzed alongside greedy.  Appended after every
  // pre-existing draw so old seeds reproduce unchanged.
  sc.routing_policy = rng.chance(1.0 / 3.0) ? harness::RoutingPolicy::kRegular
                                            : harness::RoutingPolicy::kGreedy;
  return sc;
}

std::vector<Violation> run_case(harness::SystemKind kind,
                                harness::Scenario scenario,
                                const std::string& trace_path) {
  scenario.trace_path = trace_path;
  InvariantChecker checker;
  scenario.observer = &checker;
  (void)harness::run_once(kind, scenario);
  return checker.violations();
}

namespace {

std::string resolve_trace_dir(const std::string& requested) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path dir = requested.empty()
                     ? fs::temp_directory_path(ec) / "refer_fuzz"
                     : fs::path(requested);
  fs::create_directories(dir, ec);
  return dir.string();
}

}  // namespace

FuzzSummary run_fuzz(const FuzzOptions& options,
                     const std::function<void(int, int)>& progress) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::string dir = resolve_trace_dir(options.trace_dir);
  runner::ParallelExecutor executor(options.jobs);
  FuzzSummary summary;
  summary.cases_requested = std::max(0, options.seeds);

  const int wave = std::max(executor.jobs() * 2, 4);
  int next = 0;
  while (next < summary.cases_requested) {
    if (options.budget_s > 0 && summary.cases_run > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (elapsed >= options.budget_s) break;
    }
    const int count = std::min(wave, summary.cases_requested - next);
    std::vector<runner::ParallelExecutor::BatchJob> batch(
        static_cast<std::size_t>(count));
    // One checker per job: observers are single-run-local (they attach a
    // tracer tap), so concurrent jobs must not share one.
    std::vector<std::unique_ptr<InvariantChecker>> checkers;
    checkers.reserve(batch.size());
    for (int i = 0; i < count; ++i) {
      const std::uint64_t seed =
          options.base_seed + static_cast<std::uint64_t>(next + i);
      runner::ParallelExecutor::BatchJob& job =
          batch[static_cast<std::size_t>(i)];
      job.system = harness::SystemKind::kRefer;
      job.scenario = ScenarioFuzzer::generate(seed);
      job.scenario.planted_bug = options.planted_bug;
      if (options.force_app) {
        job.scenario.app_enabled = true;
        if (job.scenario.app_break_rate_hz == 0 &&
            job.scenario.app_fault_schedule.empty()) {
          job.scenario.app_break_rate_hz = 0.01;
        }
      }
      job.scenario.trace_path =
          dir + "/fuzz_" + std::to_string(seed) + ".jsonl";
      checkers.push_back(std::make_unique<InvariantChecker>());
      job.scenario.observer = checkers.back().get();
    }
    const std::vector<harness::RunMetrics> metrics =
        executor.run_batch(batch);
    for (int i = 0; i < count; ++i) {
      if (!metrics[static_cast<std::size_t>(i)].build_ok) {
        ++summary.builds_failed;
      }
      const runner::ParallelExecutor::BatchJob& job =
          batch[static_cast<std::size_t>(i)];
      const InvariantChecker& checker =
          *checkers[static_cast<std::size_t>(i)];
      ++summary.cases_run;
      if (checker.clean()) {
        std::remove(job.scenario.trace_path.c_str());
        continue;
      }
      FuzzFailure failure;
      failure.seed = job.scenario.seed;
      failure.scenario = job.scenario;
      failure.scenario.observer = nullptr;
      failure.violations = checker.violations();
      failure.trace_path = job.scenario.trace_path;
      summary.failures.push_back(std::move(failure));
    }
    next += count;
    if (progress) progress(summary.cases_run, summary.cases_requested);
  }
  return summary;
}

}  // namespace refer::verify
