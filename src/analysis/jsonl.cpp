#include "analysis/jsonl.hpp"

#include <cstdlib>

namespace refer::analysis {

namespace {

/// Cursor over the line being parsed.
struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const noexcept { return pos >= s.size(); }
  [[nodiscard]] char peek() const noexcept { return s[pos]; }
  char take() noexcept { return s[pos++]; }

  void skip_ws() noexcept {
    while (!done() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\r' ||
            s[pos] == '\n')) {
      ++pos;
    }
  }

  bool consume(char c) noexcept {
    if (done() || s[pos] != c) return false;
    ++pos;
    return true;
  }

  bool consume_literal(std::string_view lit) noexcept {
    if (s.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.consume('"')) return false;
  out.clear();
  while (!c.done()) {
    const char ch = c.take();
    if (ch == '"') return true;
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    if (c.done()) return false;
    const char esc = c.take();
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (c.pos + 4 > c.s.size()) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = c.take();
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        // The traces only escape ASCII control characters; anything
        // beyond one byte is replaced rather than UTF-8-encoded.
        out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

bool parse_number(Cursor& c, double& out) {
  const char* begin = c.s.data() + c.pos;
  char* end = nullptr;
  out = std::strtod(begin, &end);
  if (end == begin) return false;
  c.pos += static_cast<std::size_t>(end - begin);
  return true;
}

bool parse_value(Cursor& c, JsonValue& out) {
  c.skip_ws();
  if (c.done()) return false;
  const char ch = c.peek();
  if (ch == '"') {
    out.kind = JsonValue::Kind::kString;
    return parse_string(c, out.str);
  }
  if (ch == 't') {
    out.kind = JsonValue::Kind::kBool;
    out.boolean = true;
    return c.consume_literal("true");
  }
  if (ch == 'f') {
    out.kind = JsonValue::Kind::kBool;
    out.boolean = false;
    return c.consume_literal("false");
  }
  if (ch == 'n') {
    out.kind = JsonValue::Kind::kNull;
    return c.consume_literal("null");
  }
  if (ch == '{' || ch == '[') return false;  // flat objects only
  out.kind = JsonValue::Kind::kNumber;
  return parse_number(c, out.number);
}

}  // namespace

std::optional<JsonObject> parse_flat_object(std::string_view line) {
  Cursor c{line};
  c.skip_ws();
  if (!c.consume('{')) return std::nullopt;
  JsonObject obj;
  c.skip_ws();
  if (c.consume('}')) {
    c.skip_ws();
    return c.done() ? std::optional<JsonObject>(std::move(obj)) : std::nullopt;
  }
  for (;;) {
    c.skip_ws();
    std::string key;
    if (!parse_string(c, key)) return std::nullopt;
    c.skip_ws();
    if (!c.consume(':')) return std::nullopt;
    JsonValue value;
    if (!parse_value(c, value)) return std::nullopt;
    obj[std::move(key)] = std::move(value);
    c.skip_ws();
    if (c.consume(',')) continue;
    if (c.consume('}')) break;
    return std::nullopt;
  }
  c.skip_ws();
  if (!c.done()) return std::nullopt;
  return obj;
}

}  // namespace refer::analysis
