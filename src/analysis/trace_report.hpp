// Offline trace analyzer: reconstructs per-packet hop chains from JSONL
// traces and audits the routing layer against the Kautz theory.
//
// Four independent audits run over every trace (tools/trace_report):
//   1. Schema: every record carries the keys its event type promises
//      (routing events have a packet id, drops have a reason, ...; a
//      qos_deadline_miss may omit the id -- baseline systems don't
//      track one -- and is then only counted globally).
//   2. Chain continuity: the hop records of a delivered packet form a
//      connected node chain, and every labelled overlay hop is a real
//      Kautz arc (next = shift_append of the current label).
//   3. Theorem 3.8: every fail-over that switched to an alternate
//      successor is re-derived offline via kautz::disjoint_routes --
//      the chosen successor must be one of the d disjoint routes with
//      exactly the nominal length the router recorded, and (greedy runs
//      only) the observed continuation must not exceed that nominal
//      length.
//   4. Regular walks (only when the trace_header says the run used the
//      regular routing policy): every hop not explained by a fail-over
//      must continue the packet's Faber-Streib concatenation walk,
//      re-derived offline via kautz::regular_route with the same reset
//      points the router uses (fail-over detour, target change,
//      exhausted program); a conflict-class fail-over's Proposition 3.7
//      forced second hop is cross-checked too.
#pragma once

#include <cstdint>
#include <cstdio>
#include <istream>
#include <map>
#include <string>
#include <vector>

namespace refer::analysis {

struct TraceReportOptions {
  /// Kautz degree d for the Theorem 3.8 audit; 0 takes the degree from
  /// the trace's header record, falling back (for header-less traces)
  /// to the largest digit seen in any overlay label.
  int degree = 0;
  /// How many per-packet fail-over chains print_report shows.
  std::size_t max_chains = 3;
};

/// One forwarding hop of a packet.
struct HopRecord {
  double t = 0;
  long long from = -1;
  long long to = -1;
  int hop_index = -1;
  std::string at, dst, next;  ///< overlay labels; empty off the overlay
};

/// One alternate-successor switch.
struct FailoverRecord {
  double t = 0;
  long long node = -1;
  int alt_index = -1;
  int nominal_len = -1;       ///< -1: not a Theorem 3.8 switch
  std::string at, dst, next;  ///< labels; empty for CAN-level fail-overs
};

/// Everything the trace recorded about one packet.
struct PacketTrace {
  long long id = -1;
  bool delivered = false;
  bool dropped = false;
  bool qos_miss = false;
  std::string drop_reason;
  double sent_t = 0;
  double end_t = 0;
  std::vector<HopRecord> hops;
  std::vector<FailoverRecord> failovers;
};

struct TraceReport {
  // Ingestion.
  std::uint64_t lines = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t schema_errors = 0;
  std::map<std::string, std::uint64_t> events_by_type;

  // Packet accounting.
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t qos_misses = 0;
  std::map<std::string, std::uint64_t> drops_by_reason;

  // Audits.
  std::uint64_t failovers = 0;
  std::uint64_t failovers_checked = 0;    ///< had labels + nominal length
  std::uint64_t failover_mismatches = 0;  ///< successor not a disjoint route
  std::uint64_t path_length_violations = 0;  ///< observed > nominal
  std::uint64_t chain_breaks = 0;            ///< hop chain discontinuity
  std::uint64_t arc_violations = 0;          ///< labelled hop not a Kautz arc
  std::uint64_t regular_checked = 0;     ///< hops audited against the walk
  std::uint64_t regular_mismatches = 0;  ///< hop left the regular program
  int header_degree = 0;  ///< d from a trace_header record (0: absent)
  int degree = 0;  ///< d used for the audit (given, header, or inferred)
  /// Routing policy from the trace_header ("" when absent -- the writer
  /// only emits the key for non-default policies, so "" means greedy).
  std::string header_policy;

  std::map<long long, PacketTrace> packets;

  /// Everything that should fail a strict CI run.
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return parse_errors + schema_errors + failover_mismatches +
           path_length_violations + chain_breaks + arc_violations +
           regular_mismatches;
  }
};

/// Ingests one JSONL trace stream and runs all audits.
[[nodiscard]] TraceReport analyze_trace(std::istream& in,
                                        const TraceReportOptions& opts = {});

/// Convenience: analyze_trace over a file.  Returns a report with
/// parse_errors = 1 and no lines when the file cannot be opened.
[[nodiscard]] TraceReport analyze_trace_file(const std::string& path,
                                             const TraceReportOptions& opts =
                                                 {});

/// Human-readable summary: event counts, drop-reason breakdown, audit
/// results, and up to opts.max_chains per-packet fail-over hop chains.
void print_report(const TraceReport& report, const TraceReportOptions& opts,
                  std::FILE* out);

}  // namespace refer::analysis
