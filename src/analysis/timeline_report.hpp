// Offline timeline analyzer: reads the flight-recorder series out of a
// results JSON document (runner/results_writer, schema v3 or v4) and
// looks for the time-resolved signatures the aggregate metrics average
// away (tools/timeline_report):
//
//   1. Warmup: the leading buckets where throughput is still climbing
//      to steady state -- excluded from the other detectors.
//   2. Saturation knee: a two-segment least-squares fit over the QoS
//      throughput curve; a knee is reported where throughput stops
//      growing (slope collapses) while the MAC queue wait keeps
//      growing -- the classic saturation signature (ROADMAP open item:
//      the paper's load sweep hides *when* a run saturates).
//   3. Recovery dips: contiguous bucket runs where a series drops below
//      a fraction of its steady-state median -- QoS throughput dips
//      (topology damage) and app-loop completion dips (actuator
//      faults; bucketed by sense time, so a dip localizes the fault
//      window itself, e.g. the scripted "0@30+12" schedule).
//
// v3 documents (qos_timeline_kbps only) still load: the analyzer runs
// whatever detectors its series allow.  --strict exits non-zero when
// any anomaly (knee or dip) survives, so CI can gate on "this run
// saturated / dipped".  Late samples (drain-period deliveries) are
// routine and only reported informationally.
#pragma once

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace refer::analysis {

/// One job's flight-recorder series, plus the job row identity.
struct TimelineSeries {
  std::string system;
  std::string seed;
  double x = 0;
  int rep = 0;

  bool v4 = false;      ///< full timeseries section (v3: qos_kbps only)
  double bucket_s = 0;  ///< 0 when the job carried no timeline at all
  double start_s = 0;
  double window_s = 0;
  double late_samples = 0;

  std::vector<double> qos_kbps;
  std::vector<double> delivery_ratio;
  std::vector<double> queue_wait_mean_us;
  std::vector<double> queue_wait_p95_us;
  std::vector<double> channel_busy_fraction;
  std::vector<double> energy_rate_w;
  std::vector<double> app_loops_started;
  std::vector<double> app_loops_ok;
  std::map<std::string, std::vector<double>> phase_us;  ///< when profiled

  /// Per-bucket app_loops_ok / app_loops_started; -1 marks buckets with
  /// no loops (neither baseline nor dip material).
  [[nodiscard]] std::vector<double> app_ok_ratio() const;
};

struct TimelineDoc {
  int schema_version = 0;
  std::string benchmark;
  std::vector<TimelineSeries> jobs;  ///< only jobs that carried a timeline
};

/// Parses a results document; nullopt on malformed JSON or a missing /
/// unsupported schema_version.  Jobs without a timeline are skipped.
[[nodiscard]] std::optional<TimelineDoc> load_timeline_doc(
    std::string_view json_text);

/// Number of leading buckets below `frac` of the series median -- the
/// ramp to steady state.  Negative entries (missing data) end the scan.
[[nodiscard]] std::size_t detect_warmup(const std::vector<double>& y,
                                        double frac = 0.5);

/// A two-segment piecewise-linear fit of `y` against bucket index.
struct Knee {
  bool found = false;
  std::size_t bucket = 0;     ///< index where the second segment starts
  double slope_before = 0;    ///< per-bucket units
  double slope_after = 0;
  double fit_gain = 0;        ///< 1 - sse(two segments)/sse(one line)
  bool queue_wait_grows = false;  ///< corroboration (v4 series only)
};

/// Fits every split point and keeps the best; a knee is `found` when the
/// curve was genuinely rising (slope_before > 0), flattens to under a
/// quarter of that slope, and the split explains >= 25% of the single-
/// line residual.  `queue_wait` may be empty (v3); when present, the
/// knee is additionally marked corroborated when the mean queue wait
/// after the knee exceeds 1.5x the mean before it.
[[nodiscard]] Knee detect_knee(const std::vector<double>& y,
                               const std::vector<double>& queue_wait,
                               std::size_t skip = 0);

/// A contiguous run of buckets below `frac` of the steady median.
struct Dip {
  std::size_t from = 0;     ///< first dipped bucket
  std::size_t to = 0;       ///< last dipped bucket (inclusive)
  std::size_t deepest = 0;  ///< argmin bucket
  double depth_frac = 0;    ///< y[deepest] / baseline (0 = total outage)
  double baseline = 0;      ///< steady-state median the run is judged by
};

/// Scans y[skip..] for maximal sub-baseline runs.  Negative entries
/// (missing data) are skipped: they neither join a dip nor the
/// baseline.  Returns dips in time order.
[[nodiscard]] std::vector<Dip> detect_dips(const std::vector<double>& y,
                                           double frac = 0.7,
                                           std::size_t skip = 0);

struct ReportOptions {
  double dip_frac = 0.7;  ///< dip threshold as a fraction of the median
  bool strict = false;    ///< non-zero exit on any anomaly
};

/// Everything found in one job's series.
struct SeriesFindings {
  std::size_t job = 0;  ///< index into TimelineDoc::jobs
  std::size_t warmup_buckets = 0;
  Knee knee;
  std::vector<Dip> qos_dips;
  std::vector<Dip> app_dips;
  bool late_samples = false;  ///< informational only, never an anomaly
  /// Human-readable anomaly lines; empty = this job is clean.
  std::vector<std::string> anomalies;
};

struct TimelineReport {
  std::vector<SeriesFindings> findings;  ///< one per TimelineDoc job
  std::size_t anomaly_count = 0;
};

[[nodiscard]] TimelineReport analyze_timelines(const TimelineDoc& doc,
                                               const ReportOptions& options);

/// Prints the per-job findings and a summary; returns the process exit
/// code (0 clean; 1 under options.strict with anomalies).
int print_timeline_report(std::FILE* out, const TimelineDoc& doc,
                          const TimelineReport& report,
                          const ReportOptions& options);

}  // namespace refer::analysis
