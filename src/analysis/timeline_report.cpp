#include "analysis/timeline_report.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/json_doc.hpp"

namespace refer::analysis {

namespace {

/// Median of the non-negative entries (negative = missing data); 0 when
/// nothing remains.
double clean_median(const std::vector<double>& y, std::size_t skip) {
  std::vector<double> vals;
  for (std::size_t i = skip; i < y.size(); ++i) {
    if (y[i] >= 0) vals.push_back(y[i]);
  }
  if (vals.empty()) return 0;
  std::sort(vals.begin(), vals.end());
  const std::size_t n = vals.size();
  return n % 2 ? vals[n / 2] : 0.5 * (vals[n / 2 - 1] + vals[n / 2]);
}

/// Least-squares line fit of y[from..to) against its index; returns
/// {slope, sse}.
struct LineFit {
  double slope = 0;
  double sse = 0;
};

LineFit fit_line(const std::vector<double>& y, std::size_t from,
                 std::size_t to) {
  const double n = static_cast<double>(to - from);
  if (to - from < 2) return {};
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = from; i < to; ++i) {
    const double x = static_cast<double>(i);
    sx += x;
    sy += y[i];
    sxx += x * x;
    sxy += x * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LineFit fit;
  fit.slope = denom != 0 ? (n * sxy - sx * sy) / denom : 0;
  const double intercept = (sy - fit.slope * sx) / n;
  for (std::size_t i = from; i < to; ++i) {
    const double r = y[i] - (fit.slope * static_cast<double>(i) + intercept);
    fit.sse += r * r;
  }
  return fit;
}

double mean(const std::vector<double>& y, std::size_t from, std::size_t to) {
  if (to <= from) return 0;
  double s = 0;
  for (std::size_t i = from; i < to; ++i) s += y[i];
  return s / static_cast<double>(to - from);
}

void load_series_arrays(const JsonNode& ts, TimelineSeries& out) {
  out.v4 = true;
  out.bucket_s = ts.member_number("bucket_s", 0);
  out.start_s = ts.member_number("start_s", 0);
  out.window_s = ts.member_number("window_s", 0);
  out.late_samples = ts.member_number("late_samples", 0);
  out.qos_kbps = ts.member_numbers("qos_kbps");
  out.delivery_ratio = ts.member_numbers("delivery_ratio");
  out.queue_wait_mean_us = ts.member_numbers("queue_wait_mean_us");
  out.queue_wait_p95_us = ts.member_numbers("queue_wait_p95_us");
  out.channel_busy_fraction = ts.member_numbers("channel_busy_fraction");
  out.energy_rate_w = ts.member_numbers("energy_rate_w");
  out.app_loops_started = ts.member_numbers("app_loops_started");
  out.app_loops_ok = ts.member_numbers("app_loops_ok");
  if (const JsonNode* phases = ts.find("phase_us");
      phases && phases->is_object()) {
    for (const auto& [name, arr] : phases->members) {
      if (!arr.is_array()) continue;
      std::vector<double> values;
      values.reserve(arr.items.size());
      for (const JsonNode& v : arr.items) values.push_back(v.number_or(0));
      out.phase_us.emplace(name, std::move(values));
    }
  }
}

}  // namespace

std::vector<double> TimelineSeries::app_ok_ratio() const {
  std::vector<double> out(app_loops_started.size(), -1.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (app_loops_started[i] > 0 && i < app_loops_ok.size()) {
      out[i] = app_loops_ok[i] / app_loops_started[i];
    }
  }
  return out;
}

std::optional<TimelineDoc> load_timeline_doc(std::string_view json_text) {
  const std::optional<JsonNode> root = parse_json_doc(json_text);
  if (!root || !root->is_object()) return std::nullopt;
  TimelineDoc doc;
  doc.schema_version =
      static_cast<int>(root->member_number("schema_version", 0));
  // v3 carries qos_timeline_kbps, v4 adds the timeseries section; both
  // load.  Anything older has no timeline data at all.
  if (doc.schema_version < 3) return std::nullopt;
  if (const JsonNode* bench = root->find("benchmark")) {
    if (const std::string* s = bench->string_or_null()) doc.benchmark = *s;
  }
  const JsonNode* jobs = root->find("jobs_run");
  if (!jobs || !jobs->is_array()) return doc;  // valid, just empty
  // The scenario bucket width backfills v3 jobs (their timeline array
  // has no local metadata).
  double scenario_bucket_s = 0;
  if (const JsonNode* sc = root->find("scenario")) {
    scenario_bucket_s = sc->member_number("timeline_bucket_s", 0);
  }
  for (const JsonNode& job : jobs->items) {
    const JsonNode* metrics = job.find("metrics");
    if (!metrics) continue;
    TimelineSeries series;
    if (const JsonNode* sys = job.find("system")) {
      if (const std::string* s = sys->string_or_null()) series.system = *s;
    }
    if (const JsonNode* seed = job.find("seed")) {
      if (const std::string* s = seed->string_or_null()) {
        series.seed = *s;
      } else if (seed->kind == JsonNode::Kind::kNumber) {
        series.seed = std::to_string(
            static_cast<long long>(seed->number));
      }
    }
    series.x = job.member_number("x", 0);
    series.rep = static_cast<int>(job.member_number("rep", 0));
    if (const JsonNode* ts = metrics->find("timeseries");
        ts && ts->is_object()) {
      load_series_arrays(*ts, series);
    } else {
      series.qos_kbps = metrics->member_numbers("qos_timeline_kbps");
      series.bucket_s = scenario_bucket_s;
    }
    if (series.qos_kbps.empty()) continue;  // no timeline on this job
    doc.jobs.push_back(std::move(series));
  }
  return doc;
}

std::size_t detect_warmup(const std::vector<double>& y, double frac) {
  const double median = clean_median(y, 0);
  if (median <= 0) return 0;
  std::size_t warmup = 0;
  // At most half the series can be called warmup; beyond that the
  // "steady state" the median represents does not exist.
  const std::size_t cap = y.size() / 2;
  while (warmup < cap && y[warmup] >= 0 && y[warmup] < frac * median) {
    ++warmup;
  }
  return warmup;
}

Knee detect_knee(const std::vector<double>& y,
                 const std::vector<double>& queue_wait, std::size_t skip) {
  Knee knee;
  const std::size_t n = y.size();
  if (n < skip || n - skip < 6) return knee;  // too short to split
  const LineFit single = fit_line(y, skip, n);
  double best_sse = -1;
  std::size_t best_k = 0;
  LineFit best_a, best_b;
  // Each segment keeps >= 3 points so its slope means something.
  for (std::size_t k = skip + 2; k + 3 <= n; ++k) {
    const LineFit a = fit_line(y, skip, k + 1);  // shares the knee point
    const LineFit b = fit_line(y, k, n);
    const double sse = a.sse + b.sse;
    if (best_sse < 0 || sse < best_sse) {
      best_sse = sse;
      best_k = k;
      best_a = a;
      best_b = b;
    }
  }
  if (best_sse < 0) return knee;
  knee.bucket = best_k;
  knee.slope_before = best_a.slope;
  knee.slope_after = best_b.slope;
  knee.fit_gain = single.sse > 0 ? 1.0 - best_sse / single.sse : 0.0;
  // A saturation knee: the curve was genuinely rising, then flattened
  // (or fell), and the split actually explains the data.
  const double scale = clean_median(y, skip);
  const bool rising = knee.slope_before > 0.02 * std::max(scale, 1e-12);
  const bool flattened = knee.slope_after < 0.25 * knee.slope_before;
  knee.found = rising && flattened && knee.fit_gain >= 0.25;
  if (knee.found && queue_wait.size() == n) {
    const double before = mean(queue_wait, skip, best_k);
    const double after = mean(queue_wait, best_k, n);
    knee.queue_wait_grows = before >= 0 && after > 1.5 * before;
  }
  return knee;
}

std::vector<Dip> detect_dips(const std::vector<double>& y, double frac,
                             std::size_t skip) {
  std::vector<Dip> dips;
  const double baseline = clean_median(y, skip);
  if (baseline <= 0) return dips;
  const double threshold = frac * baseline;
  std::size_t i = skip;
  while (i < y.size()) {
    if (y[i] < 0 || y[i] >= threshold) {
      ++i;
      continue;
    }
    Dip dip;
    dip.from = i;
    dip.deepest = i;
    dip.baseline = baseline;
    double deepest_value = y[i];
    while (i < y.size() && y[i] >= 0 && y[i] < threshold) {
      if (y[i] < deepest_value) {
        deepest_value = y[i];
        dip.deepest = i;
      }
      dip.to = i;
      ++i;
    }
    dip.depth_frac = deepest_value / baseline;
    dips.push_back(dip);
  }
  return dips;
}

TimelineReport analyze_timelines(const TimelineDoc& doc,
                                 const ReportOptions& options) {
  TimelineReport report;
  char buf[256];
  for (std::size_t j = 0; j < doc.jobs.size(); ++j) {
    const TimelineSeries& s = doc.jobs[j];
    SeriesFindings f;
    f.job = j;
    f.warmup_buckets = detect_warmup(s.qos_kbps);
    f.knee = detect_knee(s.qos_kbps, s.queue_wait_mean_us, f.warmup_buckets);
    f.qos_dips = detect_dips(s.qos_kbps, options.dip_frac, f.warmup_buckets);
    if (!s.app_loops_started.empty()) {
      f.app_dips = detect_dips(s.app_ok_ratio(), options.dip_frac);
    }
    // Drain-period deliveries always produce a few late samples; they
    // are informational (printed), not anomalies (strict-gated).
    f.late_samples = s.late_samples > 0;

    const auto at = [&s](std::size_t b) {
      return s.start_s + static_cast<double>(b) * s.bucket_s;
    };
    if (f.knee.found) {
      std::snprintf(buf, sizeof buf,
                    "saturation knee at bucket %zu (t=%.0f s): slope "
                    "%.3g -> %.3g kbps/bucket%s",
                    f.knee.bucket, at(f.knee.bucket), f.knee.slope_before,
                    f.knee.slope_after,
                    f.knee.queue_wait_grows ? ", queue wait growing" : "");
      f.anomalies.emplace_back(buf);
    }
    for (const Dip& d : f.qos_dips) {
      std::snprintf(buf, sizeof buf,
                    "throughput dip buckets %zu-%zu (t=%.0f-%.0f s), "
                    "deepest %zu at %.0f%% of baseline %.3g kbps",
                    d.from, d.to, at(d.from), at(d.to + 1), d.deepest,
                    100.0 * d.depth_frac, d.baseline);
      f.anomalies.emplace_back(buf);
    }
    for (const Dip& d : f.app_dips) {
      std::snprintf(buf, sizeof buf,
                    "app-loop dip buckets %zu-%zu (t=%.0f-%.0f s), "
                    "deepest %zu: completion %.0f%% of baseline %.2f",
                    d.from, d.to, at(d.from), at(d.to + 1), d.deepest,
                    100.0 * d.depth_frac, d.baseline);
      f.anomalies.emplace_back(buf);
    }
    report.anomaly_count += f.anomalies.size();
    report.findings.push_back(std::move(f));
  }
  return report;
}

int print_timeline_report(std::FILE* out, const TimelineDoc& doc,
                          const TimelineReport& report,
                          const ReportOptions& options) {
  std::fprintf(out, "timeline_report: schema v%d%s%s, %zu job(s) with "
               "timelines\n",
               doc.schema_version,
               doc.benchmark.empty() ? "" : ", benchmark ",
               doc.benchmark.c_str(), doc.jobs.size());
  for (const SeriesFindings& f : report.findings) {
    const TimelineSeries& s = doc.jobs[f.job];
    std::fprintf(out, "\n%s seed=%s x=%g rep=%d (%zu buckets of %g s%s)\n",
                 s.system.c_str(), s.seed.c_str(), s.x, s.rep,
                 s.qos_kbps.size(), s.bucket_s,
                 s.v4 ? "" : ", v3 throughput-only");
    if (f.warmup_buckets > 0) {
      std::fprintf(out, "  warmup: %zu bucket(s)\n", f.warmup_buckets);
    }
    if (!s.phase_us.empty()) {
      std::fprintf(out, "  wall-clock phases (total us):");
      for (const auto& [name, values] : s.phase_us) {
        double total = 0;
        for (const double v : values) total += v;
        std::fprintf(out, " %s=%.0f", name.c_str(), total);
      }
      std::fprintf(out, "\n");
    }
    if (f.late_samples) {
      std::fprintf(out, "  note: %.0f sample(s) landed in the drain "
                   "period past the window\n",
                   s.late_samples);
    }
    if (f.anomalies.empty()) {
      std::fprintf(out, "  clean\n");
    } else {
      for (const std::string& a : f.anomalies) {
        std::fprintf(out, "  ANOMALY: %s\n", a.c_str());
      }
    }
  }
  std::fprintf(out, "\n%zu anomal%s found%s\n", report.anomaly_count,
               report.anomaly_count == 1 ? "y" : "ies",
               options.strict && report.anomaly_count ? " (strict: FAIL)"
                                                      : "");
  return options.strict && report.anomaly_count ? 1 : 0;
}

}  // namespace refer::analysis
