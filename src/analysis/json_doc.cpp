#include "analysis/json_doc.hpp"

#include <cctype>
#include <cstdlib>

namespace refer::analysis {

const JsonNode* JsonNode::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::vector<double> JsonNode::member_numbers(std::string_view key) const {
  std::vector<double> out;
  const JsonNode* v = find(key);
  if (!v || v->kind != Kind::kArray) return out;
  out.reserve(v->items.size());
  for (const JsonNode& item : v->items) out.push_back(item.number_or(0));
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  bool failed = false;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  JsonNode fail() {
    failed = true;
    return {};
  }

  JsonNode parse_value() {
    skip_ws();
    if (failed || pos >= text.size()) return fail();
    const char c = text[pos];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string_node();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  JsonNode parse_object() {
    JsonNode node;
    node.kind = JsonNode::Kind::kObject;
    if (!eat('{')) return fail();
    if (eat('}')) return node;
    do {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return fail();
      if (!eat(':')) return fail();
      JsonNode value = parse_value();
      if (failed) return {};
      node.members.emplace_back(std::move(key), std::move(value));
    } while (eat(','));
    if (!eat('}')) return fail();
    return node;
  }

  JsonNode parse_array() {
    JsonNode node;
    node.kind = JsonNode::Kind::kArray;
    if (!eat('[')) return fail();
    if (eat(']')) return node;
    do {
      JsonNode value = parse_value();
      if (failed) return {};
      node.items.push_back(std::move(value));
    } while (eat(','));
    if (!eat(']')) return fail();
    return node;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    out.clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) return false;
        const char esc = text[pos++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            // The writers never emit \u escapes; skip the 4 hex digits
            // and substitute '?' rather than decoding UTF-16.
            if (pos + 4 > text.size()) return false;
            pos += 4;
            c = '?';
            break;
          default: c = esc; break;  // \" \\ \/
        }
      }
      out.push_back(c);
    }
    if (pos >= text.size()) return false;
    ++pos;  // closing quote
    return true;
  }

  JsonNode parse_string_node() {
    JsonNode node;
    node.kind = JsonNode::Kind::kString;
    if (!parse_string(node.str)) return fail();
    return node;
  }

  JsonNode parse_bool() {
    JsonNode node;
    node.kind = JsonNode::Kind::kBool;
    if (text.substr(pos, 4) == "true") {
      node.boolean = true;
      pos += 4;
      return node;
    }
    if (text.substr(pos, 5) == "false") {
      node.boolean = false;
      pos += 5;
      return node;
    }
    return fail();
  }

  JsonNode parse_null() {
    if (text.substr(pos, 4) != "null") return fail();
    pos += 4;
    return {};  // kNull
  }

  JsonNode parse_number() {
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) return fail();
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail();
    JsonNode node;
    node.kind = JsonNode::Kind::kNumber;
    node.number = value;
    return node;
  }
};

}  // namespace

std::optional<JsonNode> parse_json_doc(std::string_view text) {
  Parser p{text};
  JsonNode root = p.parse_value();
  if (p.failed) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return root;
}

}  // namespace refer::analysis
