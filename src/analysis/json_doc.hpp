// Nested JSON document parser for the offline analyzers.
//
// src/analysis/jsonl.hpp deliberately parses only *flat* objects (one
// trace record per line); the results documents (runner/results_writer)
// are nested -- objects inside arrays inside objects -- so the timeline
// analyzer needs a real value tree.  This is a small recursive-descent
// parser over the subset JsonWriter emits: finite numbers, plain
// strings with backslash escapes, true/false/null, arrays and objects.
// It keeps object members in document order and tolerates unknown keys,
// so older (v3) and newer documents both load.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace refer::analysis {

struct JsonNode {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonNode> items;  ///< kArray elements
  std::vector<std::pair<std::string, JsonNode>> members;  ///< kObject

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }

  /// Member lookup (linear; results documents have tens of keys), or
  /// nullptr when absent / not an object.
  [[nodiscard]] const JsonNode* find(std::string_view key) const noexcept;

  /// Typed accessors with defaults -- absent or ill-typed reads the
  /// fallback, which is what schema-tolerant loading wants.
  [[nodiscard]] double number_or(double fallback) const noexcept {
    return kind == Kind::kNumber ? number : fallback;
  }
  [[nodiscard]] bool bool_or(bool fallback) const noexcept {
    return kind == Kind::kBool ? boolean : fallback;
  }
  [[nodiscard]] const std::string* string_or_null() const noexcept {
    return kind == Kind::kString ? &str : nullptr;
  }

  /// find(key) + number_or: the missing-key default in one step.
  [[nodiscard]] double member_number(std::string_view key,
                                     double fallback) const noexcept {
    const JsonNode* v = find(key);
    return v ? v->number_or(fallback) : fallback;
  }

  /// The member's array of numbers ([] when absent / not an array);
  /// non-number elements read as 0.
  [[nodiscard]] std::vector<double> member_numbers(
      std::string_view key) const;
};

/// Parses a complete JSON document (trailing whitespace allowed).
/// Returns nullopt on any syntax error -- the analyzers treat malformed
/// input as a hard error, never a partial read.
[[nodiscard]] std::optional<JsonNode> parse_json_doc(std::string_view text);

}  // namespace refer::analysis
