#include "analysis/trace_report.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <optional>

#include "analysis/jsonl.hpp"
#include "kautz/label.hpp"
#include "kautz/regular.hpp"
#include "kautz/routing.hpp"

namespace refer::analysis {

namespace {

/// Numeric member or `fallback` when absent / not a number.
double num_or(const JsonObject& obj, const std::string& key, double fallback) {
  const auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonValue::Kind::kNumber) {
    return fallback;
  }
  return it->second.number;
}

/// String member or "" when absent / not a string.
std::string str_or(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonValue::Kind::kString) {
    return {};
  }
  return it->second.str;
}

bool has_number(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  return it != obj.end() && it->second.kind == JsonValue::Kind::kNumber;
}

bool is_routing_event(const std::string& event) {
  return event == "packet_sent" || event == "hop_forward" ||
         event == "failover" || event == "packet_dropped" ||
         event == "packet_delivered" || event == "qos_deadline_miss";
}

/// Application-layer events (src/app): carried in the same stream but
/// loop-scoped, not packet-scoped -- no mandatory routing keys.
bool is_app_event(const std::string& event) {
  return event == "app_register" || event == "app_keepalive_miss" ||
         event == "app_actuate" || event == "app_loop_complete" ||
         event == "app_loop_miss" || event == "app_actuator_down" ||
         event == "app_actuator_up";
}

bool is_known_event(const std::string& event) {
  return is_routing_event(event) || is_app_event(event) ||
         event == "trace_header" || event == "unicast_queued" ||
         event == "unicast_delivered" || event == "unicast_failed" ||
         event == "broadcast" || event == "node_down" || event == "node_up";
}

/// Folds one parsed record into the report; returns false on a schema
/// violation (missing / mistyped keys for the event type).
bool ingest(TraceReport& report, const JsonObject& obj) {
  const std::string event = str_or(obj, "event");
  if (event.empty() || !has_number(obj, "t")) return false;
  ++report.events_by_type[event];
  if (!is_known_event(event)) return false;
  if (event == "trace_header") {
    // Run metadata written once at build time: the overlay's Kautz
    // degree d, authoritative for the Theorem 3.8 audit.
    const int d = static_cast<int>(num_or(obj, "degree", -1));
    if (d < 2) return false;
    report.header_degree = d;
    // Routing policy: the writer only emits the key when the run used a
    // non-default policy, so absence means greedy.
    report.header_policy = str_or(obj, "policy");
    return true;
  }
  if (event == "app_loop_miss") {
    // A missed control loop is the app tier's drop: it joins the drop
    // breakdown so one row answers "where did deliveries go?" across
    // both tiers.
    ++report.drops_by_reason["app_loop_miss"];
    return true;
  }
  if (!is_routing_event(event)) return true;

  // Routing events are packet-scoped: the id is mandatory -- except for
  // QoS misses from baseline systems, which do not track packet ids and
  // can only be counted globally.
  if (!has_number(obj, "packet")) {
    if (event == "qos_deadline_miss") {
      ++report.qos_misses;
      return true;
    }
    return false;
  }
  const auto id = static_cast<long long>(num_or(obj, "packet", -1));
  const double t = num_or(obj, "t", 0);
  PacketTrace& pkt = report.packets[id];
  pkt.id = id;
  pkt.end_t = t;

  if (event == "packet_sent") {
    ++report.packets_sent;
    pkt.sent_t = t;
  } else if (event == "hop_forward") {
    HopRecord hop;
    hop.t = t;
    hop.from = static_cast<long long>(num_or(obj, "from", -1));
    hop.to = static_cast<long long>(num_or(obj, "to", -1));
    hop.hop_index = static_cast<int>(num_or(obj, "hop", -1));
    hop.at = str_or(obj, "at");
    hop.dst = str_or(obj, "dst");
    hop.next = str_or(obj, "next");
    pkt.hops.push_back(std::move(hop));
  } else if (event == "failover") {
    if (!has_number(obj, "alt")) return false;
    ++report.failovers;
    FailoverRecord f;
    f.t = t;
    f.node = static_cast<long long>(num_or(obj, "from", -1));
    f.alt_index = static_cast<int>(num_or(obj, "alt", -1));
    f.nominal_len = static_cast<int>(num_or(obj, "nominal_len", -1));
    f.at = str_or(obj, "at");
    f.dst = str_or(obj, "dst");
    f.next = str_or(obj, "next");
    pkt.failovers.push_back(std::move(f));
  } else if (event == "packet_dropped") {
    const std::string reason = str_or(obj, "reason");
    if (reason.empty()) return false;
    ++report.packets_dropped;
    ++report.drops_by_reason[reason];
    pkt.dropped = true;
    pkt.drop_reason = reason;
  } else if (event == "packet_delivered") {
    ++report.packets_delivered;
    pkt.delivered = true;
  } else {  // qos_deadline_miss
    ++report.qos_misses;
    pkt.qos_miss = true;
  }
  return true;
}

int max_label_digit(const std::string& label) {
  int d = -1;
  for (const char c : label) {
    if (c >= '0' && c <= '9') d = std::max(d, c - '0');
  }
  return d;
}

/// Fallback for traces without a trace_header record: the labels use
/// the alphabet {0..d}, so the largest digit seen anywhere *is* d --
/// but only if the run's traffic exercised it, which a short or
/// low-traffic trace may not.  Prefer the header degree or --degree.
int infer_degree(const TraceReport& report) {
  int d = -1;
  for (const auto& [id, pkt] : report.packets) {
    for (const HopRecord& hop : pkt.hops) {
      d = std::max({d, max_label_digit(hop.at), max_label_digit(hop.dst),
                    max_label_digit(hop.next)});
    }
    for (const FailoverRecord& f : pkt.failovers) {
      d = std::max({d, max_label_digit(f.at), max_label_digit(f.dst),
                    max_label_digit(f.next)});
    }
  }
  return d;
}

/// Audit 2: hop chains of delivered packets must be connected, and every
/// labelled hop must be a genuine Kautz arc.
void audit_chains(TraceReport& report) {
  for (auto& [id, pkt] : report.packets) {
    for (std::size_t i = 0; i < pkt.hops.size(); ++i) {
      const HopRecord& hop = pkt.hops[i];
      if (pkt.delivered && i + 1 < pkt.hops.size() &&
          pkt.hops[i + 1].from != hop.to) {
        ++report.chain_breaks;
      }
      if (hop.at.empty() || hop.next.empty()) continue;
      const auto at = kautz::Label::parse(hop.at);
      const auto next = kautz::Label::parse(hop.next);
      if (!at || !next || next->empty() ||
          at->length() != next->length() ||
          *next != at->shift_append(next->last()) ||
          next->last() == at->last()) {
        ++report.arc_violations;
      }
    }
  }
}

/// Audit 3: every Theorem 3.8 fail-over re-derived offline.  The chosen
/// successor must appear in kautz::disjoint_routes(d, at, dst) with the
/// recorded nominal length, and the packet's observed continuation to
/// dst (when it completed without further fail-overs) must take at most
/// nominal_len arcs -- greedy can shortcut, never overshoot.
void audit_failovers(TraceReport& report) {
  if (report.degree < 2) return;  // no labelled fail-overs to audit
  for (auto& [id, pkt] : report.packets) {
    for (std::size_t fi = 0; fi < pkt.failovers.size(); ++fi) {
      const FailoverRecord& f = pkt.failovers[fi];
      if (f.nominal_len < 0 || f.at.empty() || f.dst.empty() ||
          f.next.empty()) {
        continue;  // CAN-level or route-generation fail-over
      }
      ++report.failovers_checked;
      const auto at = kautz::Label::parse(f.at);
      const auto dst = kautz::Label::parse(f.dst);
      const auto next = kautz::Label::parse(f.next);
      if (!at || !dst || !next || *at == *dst) {
        ++report.failover_mismatches;
        continue;
      }
      bool found = false;
      for (const kautz::Route& route :
           kautz::disjoint_routes(report.degree, *at, *dst)) {
        if (route.successor == *next) {
          found = route.nominal_length == f.nominal_len;
          break;
        }
      }
      if (!found) {
        ++report.failover_mismatches;
        continue;
      }
      // The length bound below holds for greedy continuations only:
      // greedy can shortcut a nominal route, never overshoot.  Under the
      // regular policy the packet restarts its concatenation walk from
      // wherever the detour lands -- up to k + 1 hops regardless of the
      // alternate's nominal length -- so the bound does not apply;
      // audit_regular checks that continuation hop by hop instead.
      if (report.header_policy == "regular") continue;
      // Observed continuation: hops after this fail-over routing towards
      // the same dst, until the target is reached or the segment is cut
      // short (another fail-over, a re-target, a drop).
      const double next_failover_t = fi + 1 < pkt.failovers.size()
                                         ? pkt.failovers[fi + 1].t
                                         : std::numeric_limits<double>::max();
      int observed = 0;
      bool completed = false;
      for (const HopRecord& hop : pkt.hops) {
        if (hop.t < f.t || hop.at.empty()) continue;
        if (hop.t >= next_failover_t || hop.dst != f.dst) break;
        ++observed;
        if (hop.next == f.dst) {
          completed = true;
          break;
        }
      }
      if (completed && observed > f.nominal_len) {
        ++report.path_length_violations;
      }
    }
  }
}

/// Audit 4: regular-policy traces only (the trace_header carries
/// policy="regular").  Re-derives every packet's Faber-Streib
/// concatenation walk offline (kautz::regular_route is a pure function
/// of the labels) and replays it hop by hop.  Every hop not explained
/// by a fail-over must either *continue* the walk in progress (same
/// node the walk expected, same target, program not exhausted) or be
/// the *first* hop of a fresh walk derived at this node -- the router
/// restarts the walk at a fail-over detour, a corner re-target, the
/// descent into the next cell, or an exhausted program, and a re-target
/// can happen silently at the detour node itself (all alternates
/// exhausted), so the restart point is not recoverable from the trace
/// alone.  Fail-over-selected hops are exempt (they are the Theorem 3.8
/// alternates audit_failovers already covers) but still sync the walk
/// state; a conflict-class fail-over additionally dictates the next hop
/// (Proposition 3.7), cross-checked against the re-derived forced
/// second hop.
void audit_regular(TraceReport& report) {
  if (report.degree < 2 || report.header_policy != "regular") return;
  for (auto& [id, pkt] : report.packets) {
    kautz::RegularRoute walk;
    int pos = 0;
    std::optional<kautz::Label> expected_at;  // where the walk stands
    std::optional<kautz::Label> walk_dst;     // target the walk serves
    // Armed after a conflict-class fail-over: the Proposition 3.7 hop
    // expected at node `forced_at` while still routing to `forced_dst`.
    std::optional<kautz::Label> forced_next, forced_at, forced_dst;
    std::size_t fi = 0;
    for (const HopRecord& hop : pkt.hops) {
      // Fail-over records since the previous hop mean this hop's
      // successor came from the Theorem 3.8 alternates (or a
      // route-generation flood), not the walk.
      const FailoverRecord* detour = nullptr;
      while (fi < pkt.failovers.size() && pkt.failovers[fi].t <= hop.t) {
        detour = &pkt.failovers[fi];
        ++fi;
      }
      const auto at = kautz::Label::parse(hop.at);
      const auto dst = kautz::Label::parse(hop.dst);
      const auto next = kautz::Label::parse(hop.next);
      if (!at || !dst || !next || *at == *dst) {
        expected_at.reset();
        forced_next.reset();
        continue;  // audit_chains flags malformed labels
      }
      if (detour) {
        expected_at.reset();
        forced_next.reset();
        // Conflict-class detour? Re-derive the Theorem 3.8 routes at the
        // switch point and arm the forced-second-hop expectation.
        if (detour->nominal_len >= 0 && !detour->at.empty() &&
            !detour->dst.empty() && !detour->next.empty()) {
          const auto f_at = kautz::Label::parse(detour->at);
          const auto f_dst = kautz::Label::parse(detour->dst);
          const auto f_next = kautz::Label::parse(detour->next);
          if (f_at && f_dst && f_next && *f_at != *f_dst) {
            for (const kautz::Route& route :
                 kautz::disjoint_routes(report.degree, *f_at, *f_dst)) {
              if (route.successor != *f_next) continue;
              if (route.forced_second_hop) {
                forced_next = *route.forced_second_hop;
                forced_at = *f_next;
                forced_dst = *f_dst;
              }
              break;
            }
          }
        }
      } else if (forced_next) {
        // The forced hop fires only when the packet is still standing
        // where the conflict detour left it, routing to the same target;
        // a delivery or re-target in between voids the directive.
        const bool applies = *forced_at == *at && *forced_dst == *dst;
        if (applies) {
          ++report.regular_checked;
          if (*next != *forced_next) ++report.regular_mismatches;
          forced_next.reset();
          // The router re-derives after a forced hop (expected-label
          // mismatch), so the walk restarts at the landing node.
          expected_at.reset();
          continue;
        }
        forced_next.reset();
      }

      // Continuation: the walk in progress expected to stand exactly
      // here with this target and has program left.
      bool synced = false;
      if (expected_at && *expected_at == *at && walk_dst &&
          *walk_dst == *dst && pos < walk.length) {
        const kautz::Label cont =
            at->shift_append(walk.digits[static_cast<std::size_t>(pos)]);
        if (*next == cont) {
          ++pos;
          expected_at = cont;
          synced = true;
        }
      }
      // Restart: first hop of a fresh walk derived at this node.
      if (!synced) {
        const kautz::RegularRoute fresh =
            kautz::regular_route(report.degree, *at, *dst);
        if (fresh.length > 0 && *next == at->shift_append(fresh.digits[0])) {
          walk = fresh;
          pos = 1;
          expected_at = *next;
          walk_dst = *dst;
          synced = true;
        }
      }
      if (detour) continue;  // exempt: sync only, no verdict
      ++report.regular_checked;
      if (!synced) {
        ++report.regular_mismatches;
        expected_at.reset();  // resync from wherever the packet really is
      }
    }
  }
}

}  // namespace

TraceReport analyze_trace(std::istream& in, const TraceReportOptions& opts) {
  TraceReport report;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++report.lines;
    const auto obj = parse_flat_object(line);
    if (!obj) {
      ++report.parse_errors;
      continue;
    }
    if (!ingest(report, *obj)) ++report.schema_errors;
  }
  report.degree = opts.degree > 0
                      ? opts.degree
                      : (report.header_degree > 0 ? report.header_degree
                                                  : infer_degree(report));
  audit_chains(report);
  audit_failovers(report);
  audit_regular(report);
  return report;
}

TraceReport analyze_trace_file(const std::string& path,
                               const TraceReportOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    TraceReport report;
    report.parse_errors = 1;
    return report;
  }
  return analyze_trace(in, opts);
}

void print_report(const TraceReport& report, const TraceReportOptions& opts,
                  std::FILE* out) {
  std::fprintf(out,
               "%llu lines (%llu parse errors, %llu schema errors)\n",
               static_cast<unsigned long long>(report.lines),
               static_cast<unsigned long long>(report.parse_errors),
               static_cast<unsigned long long>(report.schema_errors));
  std::fprintf(out, "events:");
  for (const auto& [event, count] : report.events_by_type) {
    std::fprintf(out, " %s=%llu", event.c_str(),
                 static_cast<unsigned long long>(count));
  }
  std::fprintf(out, "\n");
  std::fprintf(out,
               "packets: sent=%llu delivered=%llu dropped=%llu "
               "qos_misses=%llu\n",
               static_cast<unsigned long long>(report.packets_sent),
               static_cast<unsigned long long>(report.packets_delivered),
               static_cast<unsigned long long>(report.packets_dropped),
               static_cast<unsigned long long>(report.qos_misses));
  if (!report.drops_by_reason.empty()) {
    std::fprintf(out, "drop reasons:");
    for (const auto& [reason, count] : report.drops_by_reason) {
      std::fprintf(out, " %s=%llu", reason.c_str(),
                   static_cast<unsigned long long>(count));
    }
    std::fprintf(out, "\n");
  }
  std::fprintf(out,
               "theorem 3.8 audit (d=%d): %llu fail-overs, %llu checked, "
               "%llu route mismatches, %llu path-length violations\n",
               report.degree,
               static_cast<unsigned long long>(report.failovers),
               static_cast<unsigned long long>(report.failovers_checked),
               static_cast<unsigned long long>(report.failover_mismatches),
               static_cast<unsigned long long>(report.path_length_violations));
  std::fprintf(out, "hop chains: %llu breaks, %llu invalid Kautz arcs\n",
               static_cast<unsigned long long>(report.chain_breaks),
               static_cast<unsigned long long>(report.arc_violations));
  if (report.header_policy == "regular") {
    std::fprintf(out,
                 "regular-route audit: %llu hops checked, "
                 "%llu walk mismatches\n",
                 static_cast<unsigned long long>(report.regular_checked),
                 static_cast<unsigned long long>(report.regular_mismatches));
  }

  // Show the first few packets that actually needed fail-overs: the
  // per-hop chain with the switch points inline.
  std::size_t shown = 0;
  for (const auto& [id, pkt] : report.packets) {
    if (shown >= opts.max_chains) break;
    if (pkt.failovers.empty() || pkt.hops.empty()) continue;
    ++shown;
    std::fprintf(out, "packet %lld (%s, %zu fail-overs):", pkt.id,
                 pkt.delivered
                     ? "delivered"
                     : (pkt.dropped ? pkt.drop_reason.c_str() : "in flight"),
                 pkt.failovers.size());
    std::size_t next_fail = 0;
    for (const HopRecord& hop : pkt.hops) {
      while (next_fail < pkt.failovers.size() &&
             pkt.failovers[next_fail].t <= hop.t) {
        const FailoverRecord& f = pkt.failovers[next_fail++];
        if (f.nominal_len >= 0) {
          std::fprintf(out, " !alt%d(len<=%d)", f.alt_index, f.nominal_len);
        } else {
          std::fprintf(out, " !alt%d", f.alt_index);
        }
      }
      if (!hop.at.empty() && !hop.next.empty()) {
        std::fprintf(out, " %s>%s", hop.at.c_str(), hop.next.c_str());
      } else {
        std::fprintf(out, " n%lld>n%lld", hop.from, hop.to);
      }
    }
    std::fprintf(out, "\n");
  }
}

}  // namespace refer::analysis
