// Flat-JSON-object parser for the trace analysis tools.
//
// The JSONL trace files written by sim::JsonlTraceWriter are streams of
// *flat* objects (string / number / bool / null values, no nesting), so
// the analyzer does not need a general JSON library: this parser accepts
// exactly that subset and rejects everything else.  Write-side JSON
// stays in runner/json.hpp; this is the matching read side.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace refer::analysis {

/// One scalar value of a flat JSON object.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
};

/// Parsed object, keyed by member name (later duplicates win).
using JsonObject = std::map<std::string, JsonValue>;

/// Parses one line of the form {"k": v, ...} where every v is a string,
/// number, true/false or null.  Returns nullopt on malformed input or on
/// nested objects/arrays.  Leading/trailing whitespace is allowed.
[[nodiscard]] std::optional<JsonObject> parse_flat_object(
    std::string_view line);

}  // namespace refer::analysis
