#include "refer/coordination.hpp"

#include <limits>

#include "dht/consistent_hash.hpp"

namespace refer::core {

using sim::EnergyBucket;

Point CoordinationService::key_point(const std::string& key) const {
  return dht::to_unit_point(dht::consistent_hash(key));
}

std::optional<Cid> CoordinationService::owner_cell(Point p) const {
  const auto owner = topology_->can().owner_of(p);
  if (!owner) return std::nullopt;
  return static_cast<Cid>(*owner);
}

NodeId CoordinationService::owner_of(const std::string& key) const {
  const auto cid = owner_cell(key_point(key));
  if (!cid) return -1;
  const auto corners = topology_->cell(*cid).corner_actuators();
  if (corners.empty()) return -1;
  // Spread keys over the owning cell's corners (actuators are shared
  // between neighbouring cells, so always using corner 0 would funnel
  // everything to one hub).
  const auto pick = dht::consistent_hash(key + "#corner") % corners.size();
  return corners[pick] ? *corners[pick] : -1;
}

void CoordinationService::route_to_owner(
    NodeId from_actuator, const KeyTarget& target,
    std::function<void(NodeId)> at_owner, std::function<void()> fail,
    int budget) {
  if (budget <= 0) {
    ++stats_.failures;
    fail();
    return;
  }
  const auto owner_cid = owner_cell(target.point);
  if (!owner_cid) {
    ++stats_.failures;
    fail();
    return;
  }
  const NodeId owner = owner_of(target.key);
  if (owner < 0) {
    ++stats_.failures;
    fail();
    return;
  }
  if (owner == from_actuator) {
    at_owner(owner);
    return;
  }
  // Inside the owner cell already: one direct corner-to-corner hop.
  for (Cid cid : topology_->actuator_cells(from_actuator)) {
    if (cid != *owner_cid) continue;
    channel_->unicast(from_actuator, owner, request_bytes_,
                      EnergyBucket::kData,
                      [this, owner, at_owner = std::move(at_owner),
                       fail = std::move(fail)](bool ok) mutable {
                        if (!ok) {
                          ++stats_.failures;
                          fail();
                          return;
                        }
                        ++stats_.hops;
                        at_owner(owner);
                      });
    return;
  }
  // Greedy CAN step from the best cell this actuator belongs to.
  const auto& cells = topology_->actuator_cells(from_actuator);
  if (cells.empty()) {
    ++stats_.failures;
    fail();
    return;
  }
  Cid cur = cells.front();
  double best = std::numeric_limits<double>::infinity();
  for (Cid cid : cells) {
    const double d = topology_->can().distance_to(cid, target.point);
    if (d < best) {
      best = d;
      cur = cid;
    }
  }
  const auto next = topology_->can().next_hop(cur, target.point);
  const Cid next_cid = next ? static_cast<Cid>(*next) : *owner_cid;
  // Physical hop to a corner actuator of the next cell.
  NodeId next_actuator = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& c : topology_->cell(next_cid).corner_actuators()) {
    if (!c || *c == from_actuator) continue;
    const double d = distance_sq(world_->position(from_actuator),
                                 world_->position(*c));
    if (d < best_d) {
      best_d = d;
      next_actuator = *c;
    }
  }
  if (next_actuator < 0) {
    // This actuator is itself a corner of the next cell; re-evaluate.
    for (const auto& c : topology_->cell(next_cid).corner_actuators()) {
      if (c && *c == from_actuator) {
        route_to_owner(from_actuator, target, std::move(at_owner),
                       std::move(fail), budget - 1);
        return;
      }
    }
    ++stats_.failures;
    fail();
    return;
  }
  channel_->unicast(
      from_actuator, next_actuator, request_bytes_, EnergyBucket::kData,
      [this, next_actuator, target, at_owner = std::move(at_owner),
       fail = std::move(fail), budget](bool ok) mutable {
        if (!ok) {
          ++stats_.failures;
          fail();
          return;
        }
        ++stats_.hops;
        route_to_owner(next_actuator, target, std::move(at_owner),
                       std::move(fail), budget - 1);
      });
}

void CoordinationService::put(NodeId from_actuator, const std::string& key,
                              std::string value, PutDone done) {
  ++stats_.puts;
  route_to_owner(
      from_actuator, KeyTarget{key, key_point(key)},
      [this, key, value = std::move(value),
       done](NodeId owner) mutable {
        store_[owner][key] = std::move(value);
        if (done) done(true);
      },
      [done] {
        if (done) done(false);
      },
      /*budget=*/static_cast<int>(topology_->cell_count()) + 2);
}

void CoordinationService::get(NodeId from_actuator, const std::string& key,
                              GetDone done) {
  ++stats_.gets;
  route_to_owner(
      from_actuator, KeyTarget{key, key_point(key)},
      [this, key, done](NodeId owner) {
        const auto& kv = store_[owner];
        const auto it = kv.find(key);
        if (done) {
          done(it == kv.end() ? std::nullopt
                              : std::optional<std::string>(it->second));
        }
      },
      [done] {
        if (done) done(std::nullopt);
      },
      static_cast<int>(topology_->cell_count()) + 2);
}

void CoordinationService::claim(NodeId from_actuator, const std::string& key,
                                std::string value, ClaimDone done) {
  ++stats_.claims;
  route_to_owner(
      from_actuator, KeyTarget{key, key_point(key)},
      [this, key, value = std::move(value), done](NodeId owner) mutable {
        auto& kv = store_[owner];
        const auto it = kv.find(key);
        if (it == kv.end()) {
          kv[key] = value;
          if (done) done(true, std::move(value));
          return;
        }
        if (done) done(false, it->second);
      },
      [done] {
        if (done) done(false, {});
      },
      static_cast<int>(topology_->cell_count()) + 2);
}

}  // namespace refer::core
