// Topology maintenance (paper SIII-B4): node replacement with
// awake/sleep scheduling.
//
// Sensors in the wait state periodically wake and probe their nearby
// Kautz nodes (charged as maintenance broadcasts).  When a Kautz node's
// battery falls below threshold, it dies, or one of its Kautz-arc links
// is about to break (distance beyond the link margin), the node is
// replaced by the best candidate that can hold connections to all of the
// label's current Kautz neighbours; the handover costs notification
// messages, also charged as maintenance.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "refer/topology.hpp"
#include "sim/channel.hpp"
#include "sim/energy.hpp"

namespace refer::core {

struct MaintenanceConfig {
  double sweep_period_s = 2.0;     ///< replacement check cadence
  double probe_period_s = 20.0;    ///< wait-node wake/probe cadence
  double link_margin = 0.9;        ///< replace when arc length > margin*range
  double battery_threshold_j = 8;  ///< self-retire threshold
  std::size_t control_bytes = 32;
};

class MaintenanceProtocol {
 public:
  MaintenanceProtocol(sim::Simulator& sim, sim::World& world,
                      sim::Channel& channel, sim::EnergyTracker& energy,
                      Topology& topology, Rng rng,
                      MaintenanceConfig config = {});

  /// Starts the periodic sweeps (runs until stop() or end of simulation).
  void start();
  void stop();

  /// One synchronous maintenance pass over all cells (also used by tests).
  void sweep();

  struct Stats {
    std::uint64_t replacements = 0;
    std::uint64_t failed_replacements = 0;
    std::uint64_t probe_broadcasts = 0;
    std::uint64_t sweeps = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void schedule_next();
  void probe_wait_nodes();
  /// True when the label's holder must be replaced.
  [[nodiscard]] bool needs_replacement(const Cell& cell, const Label& label,
                                       NodeId node);
  /// Number of the label's Kautz arcs that a holder at `at` cannot keep
  /// within link-margin range.
  [[nodiscard]] int broken_arcs(const Cell& cell, const Label& label,
                                NodeId node, Point at) const;
  /// The physical holders of the label's in/out Kautz neighbours.
  [[nodiscard]] std::vector<NodeId> arc_neighbors(const Cell& cell,
                                                  const Label& label) const;
  void replace(Cell& cell, const Label& label, NodeId old_node);

  sim::Simulator* sim_;
  sim::World* world_;
  sim::Channel* channel_;
  sim::EnergyTracker* energy_;
  Topology* topology_;
  Rng rng_;
  MaintenanceConfig config_;
  Stats stats_;
  bool running_ = false;
  double last_probe_ = 0;
};

}  // namespace refer::core
