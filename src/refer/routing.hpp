// The REFER routing protocol (paper SIII-C2).
//
// Intra-cell: at every hop the current node derives the d disjoint routes
// to the destination label from nothing but the two KIDs (Theorem 3.8,
// kautz::disjoint_routes) and tries their successors in nominal-length
// order; a failed MAC ACK moves on to the next successor locally -- no
// notification to the source, no route re-discovery.  Conflict routes
// carry the Proposition 3.7 forced-second-hop directive in the packet
// header.
//
// Inter-cell: the packet climbs to a corner actuator, hops across the
// actuator CAN greedily by cell coordinates (SIII-B3), and descends into
// the destination cell.
//
// Physical transmission of one Kautz arc prefers the direct link; when
// mobility has stretched the arc beyond range, a one-relay detour through
// a common physical neighbour is used when available (the paper's
// "multi-hop path with the lowest delay").
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "kautz/regular.hpp"
#include "kautz/route_cache.hpp"
#include "kautz/routing.hpp"
#include "net/flooding.hpp"
#include "refer/topology.hpp"
#include "sim/channel.hpp"

namespace refer::core {

/// How a relay finds an alternative when the shortest successor fails.
enum class FailoverMode {
  /// Theorem 3.8: derive the next disjoint successor from the IDs alone
  /// (REFER; no messages).
  kTheorem38,
  /// BAKE/DFTR-style route generation [18, 21]: flood a route request to
  /// the destination and follow the discovered path (energy + delay for
  /// every fail-over).  Provided for the ablation bench.
  kRouteGeneration,
};

/// Which route family an intra-cell relay tries *first*
/// (harness::Scenario::routing_policy maps onto this).
enum class RoutingPolicy {
  /// Paper SIII-C2 greedy: the Theorem 3.8 routes in nominal-length
  /// order, shortest first.
  kGreedy,
  /// Faber-Streib regular all-to-all routing (kautz/regular.hpp): the
  /// fixed concatenation-walk successor first, the Theorem 3.8 routes
  /// demoted to fail-over for broken hops.
  kRegular,
};

struct RouterConfig {
  std::size_t data_bytes = 1000;  ///< default payload per packet
  int hop_budget_factor = 6;      ///< packet TTL = factor * k Kautz hops
  bool allow_relay = true;        ///< permit 1-relay detours for long arcs
  RoutingPolicy policy = RoutingPolicy::kGreedy;
  FailoverMode failover = FailoverMode::kTheorem38;
  int route_gen_ttl = 8;          ///< flood TTL for kRouteGeneration
  double route_gen_deadline_s = 0.5;
  /// TESTING ONLY (harness::Scenario::planted_bug).  1 = report a wrong
  /// Theorem 3.8 nominal length in fail-over trace records, so the
  /// verification engine (src/verify) can prove its trace audit catches
  /// real divergences.  0 in production.
  int planted_bug = 0;
};

/// Outcome of one end-to-end send.
struct DeliveryReport {
  bool delivered = false;
  double delay_s = 0;      ///< send -> delivery (simulated)
  int kautz_hops = 0;      ///< overlay hops taken
  int physical_hops = 0;   ///< frames on the air (>= kautz_hops)
  int failovers = 0;       ///< alternate-successor switches en route
  NodeId final_node = -1;  ///< the node that terminated the packet
  std::int64_t packet_id = -1;  ///< router-assigned id (matches traces)
  /// Why the packet died (kNone when delivered).
  sim::DropReason drop_reason = sim::DropReason::kNone;
};

class ReferRouter {
 public:
  using DeliveryFn = std::function<void(const DeliveryReport&)>;

  ReferRouter(sim::Simulator& sim, sim::World& world, sim::Channel& channel,
              Topology& topology, RouterConfig config = {}, Rng rng = Rng(1));

  /// Required for FailoverMode::kRouteGeneration (unused otherwise).
  void set_flooder(net::Flooder* flooder) noexcept { flooder_ = flooder; }

  /// Attaches a tracer: the router emits routing-level events
  /// (kPacketSent / kHopForward / kFailover / kPacketDropped /
  /// kPacketDelivered) carrying packet ids, overlay labels and
  /// Theorem-3.8 nominal lengths at every forwarding decision.  One
  /// branch per decision when no sink is attached.
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attaches the wall-clock phase profiler: every per-hop forwarding
  /// decision (route-cache lookup, alternative ordering, Theorem 3.8
  /// fail-over selection) charges Phase::kRoutingDecide.
  void set_phase_profiler(PhaseProfiler* phases) noexcept {
    phases_ = phases;
  }

  /// Emits one kTraceHeader record carrying the overlay's Kautz degree
  /// d (no-op without a tracer).  ReferSystem calls this once after a
  /// successful build so trace_report can audit Theorem 3.8 with the
  /// exact degree instead of inferring it from observed label digits.
  void emit_trace_header();

  /// Sends sensed data from an active Kautz sensor to the nearest corner
  /// actuator of its cell (the evaluation workload: sensors report events
  /// to nearby actuators).  Delivery completes at the first actuator
  /// reached.
  void send_to_actuator(NodeId src, std::size_t bytes, DeliveryFn done);

  /// Full (CID, KID) addressing: intra-cell ascent, CAN transit, descent.
  void send_to(NodeId src, FullId dst, std::size_t bytes, DeliveryFn done);

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t failovers = 0;      ///< alternate-successor switches
    std::uint64_t route_gen_floods = 0;  ///< kRouteGeneration discoveries
    std::uint64_t relays_used = 0;    ///< 1-relay physical detours
    std::uint64_t can_hops = 0;       ///< inter-cell overlay hops
    /// RoutingPolicy::kRegular only: fresh concatenation-walk
    /// derivations (one per source hop plus one per fail-over detour
    /// re-entry; stays 0 under greedy).
    std::uint64_t regular_walks = 0;
    /// Drop counts indexed by sim::DropReason (observability snapshot).
    std::array<std::uint64_t,
               static_cast<std::size_t>(sim::DropReason::kDropReasonCount)>
        drops_by_reason{};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Theorem 3.8 memo cache (hit/miss counters feed observability).
  [[nodiscard]] const kautz::RouteCache& route_cache() const noexcept {
    return route_cache_;
  }

  /// Successful intra-cell forwards per Kautz arc, indexed
  /// u.to_index(d) * d + rank of the appended digit in {0..d} \ {u_k}
  /// (ascending).  Sized lazily on the first forward; empty when no
  /// intra-cell hop happened.  This is the measured arc-load histogram
  /// the routing-policy fairness series (RunMetrics::arc_forwards) and
  /// the conformance tests compare against kautz/regular.hpp's theory.
  [[nodiscard]] const std::vector<std::uint64_t>& arc_forwards()
      const noexcept {
    return arc_forwards_;
  }

 private:
  /// In-flight packet state (shared by the hop closures).
  struct Packet {
    FullId dst;                    ///< final destination
    Label current_target;          ///< intra-cell label being routed to
    bool stop_at_any_actuator;     ///< evaluation workload mode
    std::size_t bytes;
    double sent_at;
    int hops_left;
    std::int64_t id = -1;          ///< router-assigned trace id
    int kautz_hops = 0;
    int physical_hops = 0;
    int failovers = 0;
    std::optional<Label> forced_next;  ///< Prop. 3.7 directive
    /// Corner actuators already found unreachable during overlay ascent;
    /// the packet re-targets the next-nearest corner instead of dying.
    std::vector<Label> excluded_corners;
    /// Set while the packet is climbing towards a corner actuator.
    std::optional<Label> ascent_target;
    // RoutingPolicy::kRegular walk state: the out-digit program being
    // followed, the next position in it, and the (label, target) the
    // program expects.  Any deviation -- fail-over detour, Prop. 3.7
    // forced hop, corner re-target -- breaks the expectation and the
    // next relay derives a fresh walk from its own label (regular
    // routes are pure functions of the endpoint labels, so this costs
    // no signalling).
    kautz::RegularRoute regular_walk;
    int regular_pos = 0;
    Label regular_expected;
    Label regular_target;
    bool regular_active = false;
    DeliveryFn done;
  };
  using PacketPtr = std::shared_ptr<Packet>;

  void start(NodeId src, FullId dst, bool stop_at_any_actuator,
             std::size_t bytes, DeliveryFn done);
  /// Greedy walk of a non-overlay sensor's packet towards the nearest
  /// actuator until an overlay member picks it up.
  void enter_overlay(NodeId at, int budget, PacketPtr pkt);
  /// One intra-cell routing step at `node` (which holds `label` in `cid`).
  void intra_step(Cid cid, Label label, NodeId node, PacketPtr pkt);
  /// Try the route alternatives starting at index `next_choice`.
  void try_routes(Cid cid, Label label, NodeId node,
                  std::vector<kautz::Route> routes, std::size_t next_choice,
                  PacketPtr pkt);
  /// At an actuator: either done, or CAN transit toward dst cell.
  void inter_step(NodeId actuator, PacketPtr pkt);
  /// Physical transfer of one Kautz arc with optional 1-relay detour.
  void transmit_arc(NodeId from, NodeId to, PacketPtr pkt,
                    std::function<void(bool)> done);
  /// kRouteGeneration fail-over: flood-discover a path from `node` to the
  /// target label's holder and walk it.
  void route_generation_failover(Cid cid, NodeId node, Label target,
                                 PacketPtr pkt);
  void deliver(NodeId at, PacketPtr pkt);
  void drop(PacketPtr pkt, sim::DropReason reason);
  /// Bumps the per-arc forward histogram for the arc u -> u·digit
  /// (lazily sizes the table from the cell's (d, k) on first use).
  void record_arc(const Label& u, const Label& next);

  /// True when routing-level trace emission is on (one branch).
  [[nodiscard]] bool tracing() const noexcept {
    return tracer_ && tracer_->enabled();
  }
  /// A routing-level record pre-filled with time / packet id / hop count.
  [[nodiscard]] sim::TraceRecord trace_base(sim::TraceEvent event,
                                            const Packet& pkt,
                                            NodeId from) const;

  sim::Simulator* sim_;
  sim::World* world_;
  sim::Channel* channel_;
  Topology* topology_;
  RouterConfig config_;
  Rng rng_;
  net::Flooder* flooder_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  PhaseProfiler* phases_ = nullptr;
  std::int64_t next_packet_id_ = 0;
  Stats stats_;
  /// Repeated (label, target) pairs -- every hop of every flow -- serve
  /// their Theorem 3.8 table from here instead of re-deriving it.
  kautz::RouteCache route_cache_;
  std::vector<kautz::Route> cache_scratch_;  ///< reused lookup buffer
  /// Per-arc successful forward counts (see arc_forwards()).
  std::vector<std::uint64_t> arc_forwards_;
};

}  // namespace refer::core
