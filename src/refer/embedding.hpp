// The Kautz graph embedding protocol (paper SIII-B).
//
// Phases, all executed as real (energy-charged) protocol traffic on the
// simulated channel:
//
//  1. Actuator discovery: every actuator broadcasts a hello and then its
//     neighbour list; the actuator with the minimum consistent-hash value
//     H(A) becomes the starting server.
//  2. Cell partition: the starting server triangulates the actuator layer
//     (Delaunay, filtered by actuator range), assigns CIDs so that closer
//     cells have closer CIDs, 3-colours the actuators so each triangle's
//     corners get the distinct KIDs 012 / 120 / 201 (sequential vertex
//     colouring with backtracking), and notifies every actuator by
//     depth-first unicasts.
//  3. Sensor ID assignment per cell (K(2,3) schedule, SIII-B2): TTL=2
//     path-query floods between actuator pairs; the target picks the
//     arrived path with the highest accumulated battery and assigns the
//     two intermediate labels by unicast.  Then the S_i -> S_j sensor
//     query (121 -> 020) assigns 210 and 102, and the common physical
//     neighbour of those two holders with the highest battery receives
//     021.
//  4. Roles: chosen sensors become Active, sensors hearing an active
//     Kautz sensor become Wait (candidates), the rest Sleep.
//  5. The cells join the inter-cell CAN at their normalised centroids.
//
// Robustness fallback: in sparse spots a TTL=2 flood can fail to return a
// 2-intermediate path; the protocol then falls back to a directed
// assignment (geometrically closest connectable unassigned sensors),
// charged as two extra unicasts.  The fallback count is reported in
// Stats; it is zero for the paper's dense default scenario.
#pragma once

#include <functional>

#include "net/flooding.hpp"
#include "refer/topology.hpp"
#include "sim/channel.hpp"
#include "sim/energy.hpp"

namespace refer::core {

struct EmbeddingConfig {
  int d = 2;                      ///< K(d, 3) degree; the protocol schedule
                                  ///< is the paper's K(2,3) one.
  double query_deadline_s = 0.4;  ///< per path-query collect deadline
  std::size_t control_bytes = 48; ///< size of control frames
  /// Path queries transmit at this power-controlled range so that
  /// actuator-sourced TTL=2 floods discover sensor-length 3-hop chains
  /// (the paper's K(2,3) geometry); 0 = senders' full power.
  double query_tx_range = 100.0;
};

/// Runs the embedding and fills a Topology.
class EmbeddingProtocol {
 public:
  EmbeddingProtocol(sim::Simulator& sim, sim::World& world,
                    sim::Channel& channel, net::Flooder& flooder,
                    sim::EnergyTracker& energy, EmbeddingConfig config = {});

  /// Fired when the embedding finished; ok=false when no valid cell
  /// partition or colouring exists.
  using DoneFn = std::function<void(bool ok)>;

  /// Executes all phases; the result lands in topology().
  void run(DoneFn done);

  [[nodiscard]] Topology& topology() noexcept { return topology_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

  struct Stats {
    int actuator_broadcasts = 0;
    int notification_unicasts = 0;
    int path_queries = 0;
    int fallback_assignments = 0;
    /// Fallbacks that could not even satisfy connectivity and placed the
    /// geometrically best sensor regardless (sparse deployments).
    int degraded_assignments = 0;
    int cells_embedded = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Exact 3-colouring of a small graph by backtracking; public for tests.
  /// adjacency[i] lists neighbours of i; returns colour per vertex or
  /// empty when no 3-colouring exists.
  [[nodiscard]] static std::vector<int> three_color(
      const std::vector<std::vector<int>>& adjacency);

 private:
  struct QueryTask {
    Cid cid;
    PathQueryTemplate tmpl;
  };

  void start_actuator_phase(DoneFn done);
  bool partition_and_color();
  void notify_actuators(DoneFn done);
  void run_next_query(std::size_t index, DoneFn done);
  void finish_cell_fill_ins(std::size_t cell_index, DoneFn done);
  void assign_roles_and_join_can();

  /// Picks the best arrived path (exactly two unassigned sensor
  /// intermediates, max battery) or falls back to directed assignment.
  bool apply_query_result(const QueryTask& task,
                          const std::vector<std::vector<NodeId>>& paths);
  bool fallback_assign(const QueryTask& task);
  [[nodiscard]] bool sensor_unassigned(NodeId node) const;

  sim::Simulator* sim_;
  sim::World* world_;
  sim::Channel* channel_;
  net::Flooder* flooder_;
  sim::EnergyTracker* energy_;
  EmbeddingConfig config_;
  Topology topology_;
  Stats stats_;
  std::vector<QueryTask> tasks_;
};

}  // namespace refer::core
