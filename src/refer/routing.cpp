#include "refer/routing.hpp"

#include <algorithm>
#include <limits>
#include <memory>

namespace refer::core {

using sim::EnergyBucket;

ReferRouter::ReferRouter(sim::Simulator& sim, sim::World& world,
                         sim::Channel& channel, Topology& topology,
                         RouterConfig config, Rng rng)
    : sim_(&sim),
      world_(&world),
      channel_(&channel),
      topology_(&topology),
      config_(config),
      rng_(rng) {}

void ReferRouter::send_to_actuator(NodeId src, std::size_t bytes,
                                   DeliveryFn done) {
  start(src, FullId{}, /*stop_at_any_actuator=*/true, bytes, std::move(done));
}

void ReferRouter::send_to(NodeId src, FullId dst, std::size_t bytes,
                          DeliveryFn done) {
  start(src, dst, /*stop_at_any_actuator=*/false, bytes, std::move(done));
}

void ReferRouter::emit_trace_header() {
  if (!tracing()) return;
  sim::TraceRecord rec;
  rec.t = sim_->now();
  rec.event = sim::TraceEvent::kTraceHeader;
  rec.degree = topology_->degree();
  // Only the non-default policy is announced, keeping greedy traces
  // byte-identical to pre-policy runs; trace_report treats an absent
  // key as greedy.
  if (config_.policy == RoutingPolicy::kRegular) rec.policy = "regular";
  tracer_->emit(rec);
}

sim::TraceRecord ReferRouter::trace_base(sim::TraceEvent event,
                                         const Packet& pkt,
                                         NodeId from) const {
  sim::TraceRecord rec;
  rec.t = sim_->now();
  rec.event = event;
  rec.from = from;
  rec.bytes = pkt.bytes;
  rec.packet = pkt.id;
  rec.hop_index = pkt.kautz_hops;
  return rec;
}

void ReferRouter::start(NodeId src, FullId dst, bool stop_at_any_actuator,
                        std::size_t bytes, DeliveryFn done) {
  ++stats_.packets_sent;
  auto pkt = std::make_shared<Packet>();
  pkt->dst = dst;
  pkt->stop_at_any_actuator = stop_at_any_actuator;
  pkt->bytes = bytes;
  pkt->sent_at = sim_->now();
  pkt->hops_left = config_.hop_budget_factor * topology_->diameter() + 6;
  pkt->id = next_packet_id_++;
  pkt->done = std::move(done);
  if (tracing()) {
    tracer_->emit(trace_base(sim::TraceEvent::kPacketSent, *pkt, src));
  }

  if (world_->is_actuator(src)) {
    if (stop_at_any_actuator) {
      deliver(src, pkt);
    } else {
      inter_step(src, pkt);
    }
    return;
  }
  const auto binding = topology_->sensor_binding(src);
  if (binding) {
    intra_step(binding->cid, binding->kid, src, pkt);
    return;
  }
  // A non-Kautz (wait/sleep) sensor walks its reading greedily towards
  // the nearest actuator until it meets an overlay member (SIII-B4:
  // sleeping sensors report through nearby awake nodes).
  enter_overlay(src, 4, pkt);
}

void ReferRouter::enter_overlay(NodeId at, int budget, PacketPtr pkt) {
  if (budget <= 0) {
    drop(pkt, sim::DropReason::kOverlayEntryFailed);
    return;
  }
  // Prefer an overlay member in range; otherwise the neighbour that makes
  // the most progress towards the closest actuator.
  NodeId member = -1, closer = -1;
  double best_member = std::numeric_limits<double>::infinity();
  const NodeId actuator = world_->closest_actuator(at);
  if (actuator < 0) {
    drop(pkt, sim::DropReason::kNoActuator);
    return;
  }
  const Point goal = world_->position(actuator);
  double best_progress = distance_sq(world_->position(at), goal);
  world_->visit_reachable(at, [&](NodeId n) {
    const Role r = topology_->role(n);
    const double d_member =
        distance_sq(world_->position(at), world_->position(n));
    if (r == Role::kActive || r == Role::kActuator) {
      if (d_member < best_member) {
        best_member = d_member;
        member = n;
      }
    }
    const double d_goal = distance_sq(world_->position(n), goal);
    if (d_goal < best_progress) {
      best_progress = d_goal;
      closer = n;
    }
  });
  const NodeId next = member >= 0 ? member : closer;
  if (next < 0) {
    drop(pkt, sim::DropReason::kOverlayEntryFailed);
    return;
  }
  channel_->unicast(at, next, pkt->bytes, EnergyBucket::kData,
                    [this, at, next, budget, pkt](bool ok) {
                      if (!ok) {
                        drop(pkt, sim::DropReason::kLinkFailed);
                        return;
                      }
                      ++pkt->physical_hops;
                      if (tracing()) {
                        sim::TraceRecord rec = trace_base(
                            sim::TraceEvent::kHopForward, *pkt, at);
                        rec.to = next;
                        tracer_->emit(rec);
                      }
                      if (world_->is_actuator(next)) {
                        if (pkt->stop_at_any_actuator) {
                          deliver(next, pkt);
                        } else {
                          inter_step(next, pkt);
                        }
                        return;
                      }
                      if (const auto b = topology_->sensor_binding(next)) {
                        intra_step(b->cid, b->kid, next, pkt);
                        return;
                      }
                      enter_overlay(next, budget - 1, pkt);
                    });
}

void ReferRouter::intra_step(Cid cid, Label label, NodeId node,
                             PacketPtr pkt) {
  PhaseProfiler::Scope phase(phases_, Phase::kRoutingDecide);
  if (pkt->stop_at_any_actuator && world_->is_actuator(node)) {
    deliver(node, pkt);
    return;
  }
  // Destination label inside this cell: the final KID when this is the
  // destination cell, otherwise the nearest corner actuator (overlay
  // ascent).
  Label target;
  bool target_is_corner = false;
  if (!pkt->stop_at_any_actuator && cid == pkt->dst.cid) {
    target = pkt->dst.kid;
  } else {
    const auto& cell = topology_->cell(cid);
    auto corners = cell.corner_labels();
    if (corners.empty()) {
      const auto k23 = actuator_labels();
      corners.assign(k23.begin(), k23.end());
    }
    int best_dist = std::numeric_limits<int>::max();
    bool found = false;
    for (const Label& c : corners) {
      if (std::find(pkt->excluded_corners.begin(),
                    pkt->excluded_corners.end(),
                    c) != pkt->excluded_corners.end()) {
        continue;
      }
      const int d = kautz::kautz_distance(label, c);
      if (d < best_dist) {
        best_dist = d;
        target = c;
        found = true;
      }
    }
    if (!found) {
      drop(pkt, sim::DropReason::kNoRoute);
      return;
    }
    target_is_corner = true;
  }
  if (label == target) {
    if (world_->is_actuator(node) &&
        (pkt->stop_at_any_actuator || cid != pkt->dst.cid)) {
      if (pkt->stop_at_any_actuator) {
        deliver(node, pkt);
      } else {
        inter_step(node, pkt);
      }
      return;
    }
    deliver(node, pkt);
    return;
  }
  if (pkt->hops_left-- <= 0) {
    drop(pkt, sim::DropReason::kTtlExpired);
    return;
  }

  std::vector<kautz::Route> routes;
  if (pkt->forced_next) {
    // Proposition 3.7 directive from the previous (conflict-class) hop:
    // this node must forward to the dictated neighbour first; the normal
    // alternatives remain as fail-over.
    const Label forced = *pkt->forced_next;
    pkt->forced_next.reset();
    kautz::Route r;
    r.successor = forced;
    r.path_class = kautz::PathClass::kOther;
    r.nominal_length = 0;  // already accounted by the conflict route
    routes.push_back(r);
    route_cache_.lookup(topology_->degree(), label, target, cache_scratch_);
    for (const auto& alt : cache_scratch_) {
      if (alt.successor != forced) routes.push_back(alt);
    }
  } else if (config_.policy == RoutingPolicy::kRegular) {
    // Regular all-to-all routing (kautz/regular.hpp): continue the
    // packet's concatenation-walk program when this node is exactly
    // where the walk expected to stand; otherwise -- first hop,
    // fail-over detour landed elsewhere, corner re-target -- derive a
    // fresh walk from this label (a pure function of the endpoints, no
    // signalling).  The Theorem 3.8 routes stay behind it as fail-over.
    if (!pkt->regular_active || pkt->regular_target != target ||
        pkt->regular_expected != label ||
        pkt->regular_pos >= pkt->regular_walk.length) {
      pkt->regular_walk =
          kautz::regular_route(topology_->degree(), label, target);
      pkt->regular_pos = 0;
      pkt->regular_target = target;
      pkt->regular_active = true;
      ++stats_.regular_walks;
    }
    const Label reg_succ = label.shift_append(
        pkt->regular_walk.digits[static_cast<std::size_t>(pkt->regular_pos)]);
    ++pkt->regular_pos;
    pkt->regular_expected = reg_succ;
    kautz::Route r;
    r.successor = reg_succ;
    r.path_class = kautz::PathClass::kOther;
    r.nominal_length = 0;  // programmed walk hop; the Theorem 3.8
                           // alternates below keep their real nominals
    routes.push_back(r);
    route_cache_.lookup(topology_->degree(), label, target, cache_scratch_);
    for (const auto& alt : cache_scratch_) {
      if (alt.successor != reg_succ) routes.push_back(alt);
    }
  } else {
    route_cache_.lookup(topology_->degree(), label, target, routes);
  }
  // Equal-length alternatives are tried in random order (SIII-C2: "if a
  // number of paths with the same path length exist, U randomly chooses a
  // successor among these paths").
  for (std::size_t lo = 0; lo < routes.size();) {
    std::size_t hi = lo + 1;
    while (hi < routes.size() &&
           routes[hi].nominal_length == routes[lo].nominal_length) {
      ++hi;
    }
    for (std::size_t i = hi - 1; i > lo; --i) {
      std::swap(routes[i],
                routes[lo + rng_.below(i - lo + 1)]);
    }
    lo = hi;
  }
  if (target_is_corner) {
    pkt->ascent_target = target;
  } else {
    pkt->ascent_target.reset();
  }
  pkt->current_target = target;
  try_routes(cid, label, node, std::move(routes), 0, std::move(pkt));
}

void ReferRouter::try_routes(Cid cid, Label label, NodeId node,
                             std::vector<kautz::Route> routes,
                             std::size_t next_choice, PacketPtr pkt) {
  PhaseProfiler::Scope phase(phases_, Phase::kRoutingDecide);
  if (next_choice >= routes.size()) {
    // All d successors towards the current target failed.  When the
    // target was a corner actuator of the overlay ascent, exclude it and
    // re-target the next-nearest corner (another exit from the cell).
    if (pkt->ascent_target) {
      pkt->excluded_corners.push_back(*pkt->ascent_target);
      pkt->ascent_target.reset();
      intra_step(cid, label, node, std::move(pkt));
      return;
    }
    drop(pkt, sim::DropReason::kAllSuccessorsFailed);
    return;
  }
  if (next_choice > 0) {
    // Theorem 3.8 fail-over: the previous successor's MAC ACK was
    // missing, so this relay switches *locally* to the next disjoint
    // alternative -- the per-event observable behind Figs. 6-7.
    ++stats_.failovers;
    ++pkt->failovers;
    if (tracing()) {
      sim::TraceRecord rec =
          trace_base(sim::TraceEvent::kFailover, *pkt, node);
      rec.at_label = label.to_string();
      rec.dst_label = pkt->current_target.to_string();
      rec.alt_index = static_cast<int>(next_choice);
      if (config_.failover == FailoverMode::kTheorem38) {
        rec.next_label = routes[next_choice].successor.to_string();
        rec.nominal_len = routes[next_choice].nominal_length;
        // Planted bug 1: off-by-one nominal length in the trace.  The
        // failover audit re-derives the Theorem 3.8 routes and must flag
        // every record (see src/verify and RouterConfig::planted_bug).
        if (config_.planted_bug == 1) ++rec.nominal_len;
      }
      tracer_->emit(rec);
    }
    if (config_.failover == FailoverMode::kRouteGeneration) {
      // BAKE/DFTR-style: instead of deriving the alternative from IDs,
      // the relay floods a route request towards the destination holder
      // and retransmits along whatever comes back.
      const Label target = pkt->current_target;
      route_generation_failover(cid, node, target, std::move(pkt));
      return;
    }
  }
  const kautz::Route& route = routes[next_choice];
  const auto& cell = topology_->cell(cid);
  const auto succ_node = cell.node_of(route.successor);
  if (!succ_node || *succ_node == node) {
    // Label currently unbound (mid-replacement) -- treat as failed hop.
    try_routes(cid, label, node, std::move(routes), next_choice + 1,
               std::move(pkt));
    return;
  }
  const Label succ_label = route.successor;
  const auto forced = route.forced_second_hop;
  transmit_arc(node, *succ_node, pkt,
               [this, cid, label, node, routes = std::move(routes),
                next_choice, pkt, succ_label, succ_node = *succ_node,
                forced](bool ok) mutable {
                 if (!ok) {
                   try_routes(cid, label, node, std::move(routes),
                              next_choice + 1, std::move(pkt));
                   return;
                 }
                 ++pkt->kautz_hops;
                 record_arc(label, succ_label);
                 if (tracing()) {
                   sim::TraceRecord rec = trace_base(
                       sim::TraceEvent::kHopForward, *pkt, node);
                   rec.to = succ_node;
                   rec.at_label = label.to_string();
                   rec.dst_label = pkt->current_target.to_string();
                   rec.next_label = succ_label.to_string();
                   tracer_->emit(rec);
                 }
                 if (forced) pkt->forced_next = forced;
                 intra_step(cid, succ_label, succ_node, std::move(pkt));
               });
}

void ReferRouter::inter_step(NodeId actuator, PacketPtr pkt) {
  PhaseProfiler::Scope phase(phases_, Phase::kRoutingDecide);
  const auto& cells = topology_->actuator_cells(actuator);
  if (cells.empty()) {
    drop(pkt, sim::DropReason::kNoRoute);
    return;
  }
  // Already a corner of the destination cell? descend.
  for (Cid cid : cells) {
    if (cid == pkt->dst.cid) {
      const auto label = topology_->cell(cid).label_of(actuator);
      if (!label) {
        drop(pkt, sim::DropReason::kNoRoute);
        return;
      }
      intra_step(cid, *label, actuator, pkt);
      return;
    }
  }
  if (pkt->hops_left-- <= 0) {
    drop(pkt, sim::DropReason::kTtlExpired);
    return;
  }
  if (pkt->dst.cid < 0 ||
      static_cast<std::size_t>(pkt->dst.cid) >= topology_->cell_count()) {
    drop(pkt, sim::DropReason::kNoRoute);
    return;
  }
  const Point target = Topology::can_point(
      topology_->cell(pkt->dst.cid).center(), world_->area());
  // Route from the actuator's best cell.
  Cid cur = cells.front();
  double best = std::numeric_limits<double>::infinity();
  for (Cid cid : cells) {
    const double d = topology_->can().distance_to(cid, target);
    if (d < best) {
      best = d;
      cur = cid;
    }
  }
  const auto next = topology_->can().next_hop(cur, target);
  if (!next) {
    drop(pkt, sim::DropReason::kNoRoute);
    return;
  }
  ++stats_.can_hops;
  // Physical transfer to a corner actuator of the next cell (skip if this
  // actuator is itself a corner of it -- handled above only for dst cell).
  const auto corners = topology_->cell(*next).corner_actuators();
  std::vector<NodeId> candidates;
  for (const auto& c : corners) {
    if (c && *c != actuator) candidates.push_back(*c);
  }
  for (const auto& c : corners) {
    if (c && *c == actuator) {
      // Shared actuator: the packet is already in the next cell.
      inter_step(actuator, pkt);
      return;
    }
  }
  std::sort(candidates.begin(), candidates.end(), [&](NodeId x, NodeId y) {
    return distance_sq(world_->position(actuator), world_->position(x)) <
           distance_sq(world_->position(actuator), world_->position(y));
  });
  auto attempt = std::make_shared<std::function<void(std::size_t)>>();
  *attempt = [this, actuator, candidates, pkt, attempt](std::size_t i) {
    if (i >= candidates.size()) {
      drop(pkt, sim::DropReason::kAllSuccessorsFailed);
      return;
    }
    channel_->unicast(actuator, candidates[i], pkt->bytes, EnergyBucket::kData,
                      [this, actuator, candidates, i, pkt,
                       attempt](bool ok) {
                        if (!ok) {
                          ++stats_.failovers;
                          ++pkt->failovers;
                          if (tracing()) {
                            sim::TraceRecord rec = trace_base(
                                sim::TraceEvent::kFailover, *pkt, actuator);
                            rec.alt_index = static_cast<int>(i) + 1;
                            tracer_->emit(rec);
                          }
                          (*attempt)(i + 1);
                          return;
                        }
                        ++pkt->physical_hops;
                        if (tracing()) {
                          sim::TraceRecord rec = trace_base(
                              sim::TraceEvent::kHopForward, *pkt, actuator);
                          rec.to = candidates[i];
                          tracer_->emit(rec);
                        }
                        inter_step(candidates[i], pkt);
                      });
  };
  (*attempt)(0);
}

void ReferRouter::transmit_arc(NodeId from, NodeId to, PacketPtr pkt,
                               std::function<void(bool)> done) {
  channel_->unicast(
      from, to, pkt->bytes, EnergyBucket::kData,
      [this, from, to, pkt, done = std::move(done)](bool ok) mutable {
        if (ok) {
          ++pkt->physical_hops;
          done(true);
          return;
        }
        if (!config_.allow_relay) {
          done(false);
          return;
        }
        // The arc outgrew the direct range: look for a 1-relay detour via
        // a common physical neighbour (neighbour tables from maintenance
        // beacons).
        NodeId relay = -1;
        double best = std::numeric_limits<double>::infinity();
        if (world_->alive(from) && world_->alive(to)) {
          world_->visit_reachable(from, [&](NodeId r) {
            if (r == to || !world_->can_reach(r, to)) return;
            const double d =
                distance(world_->position(from), world_->position(r)) +
                distance(world_->position(r), world_->position(to));
            if (d < best) {
              best = d;
              relay = r;
            }
          });
        }
        if (relay < 0) {
          done(false);
          return;
        }
        channel_->unicast(
            from, relay, pkt->bytes, EnergyBucket::kData,
            [this, relay, to, pkt, done = std::move(done)](bool ok1) mutable {
              if (!ok1) {
                done(false);
                return;
              }
              ++pkt->physical_hops;
              channel_->unicast(relay, to, pkt->bytes, EnergyBucket::kData,
                                [this, pkt, done = std::move(done)](bool ok2) {
                                  if (ok2) {
                                    ++pkt->physical_hops;
                                    ++stats_.relays_used;
                                  }
                                  done(ok2);
                                });
            });
      });
}

void ReferRouter::route_generation_failover(Cid cid, NodeId node,
                                            Label target, PacketPtr pkt) {
  const auto& cell = topology_->cell(cid);
  const auto dst_node = cell.node_of(target);
  if (!flooder_ || !dst_node || pkt->hops_left <= 0) {
    drop(pkt, pkt->hops_left <= 0 ? sim::DropReason::kTtlExpired
                                  : sim::DropReason::kFloodFailed);
    return;
  }
  ++stats_.route_gen_floods;
  flooder_->discover(
      node, *dst_node, config_.route_gen_ttl, sim::EnergyBucket::kMaintenance,
      [this, cid, node, target, dst_node = *dst_node,
       pkt](std::optional<std::vector<NodeId>> path) {
        if (!path || path->size() < 2) {
          drop(pkt, sim::DropReason::kFloodFailed);
          return;
        }
        net::send_along_path(
            *channel_, *path, pkt->bytes, EnergyBucket::kData,
            [this, cid, node, target, dst_node, pkt](std::size_t hops,
                                                     bool ok) {
              pkt->physical_hops += static_cast<int>(hops);
              if (!ok) {
                drop(pkt, sim::DropReason::kLinkFailed);
                return;
              }
              pkt->kautz_hops += 1;
              if (tracing()) {
                // The flooded path is one logical hop from node to
                // dst_node; record it (without overlay labels -- it is
                // not a Kautz arc) so delivered packets keep a
                // connected hop chain for trace_report's audit.
                sim::TraceRecord rec =
                    trace_base(sim::TraceEvent::kHopForward, *pkt, node);
                rec.to = dst_node;
                tracer_->emit(rec);
              }
              intra_step(cid, target, dst_node, pkt);
            });
      },
      config_.data_bytes / 16 + 32, config_.route_gen_deadline_s);
}

void ReferRouter::record_arc(const Label& u, const Label& next) {
  const int d = topology_->degree();
  if (arc_forwards_.empty()) {
    // (d+1) * d^{k-1} labels times d out-arcs each.  The cap only
    // guards against absurd (d, k) combinations; a K(2,3) cell has 36
    // arcs and even K(4,8) stays under a megabyte of counters.
    constexpr std::uint64_t kMaxArcs = std::uint64_t{1} << 22;
    std::uint64_t labels = static_cast<std::uint64_t>(d) + 1;
    for (int i = 1; i < u.length(); ++i) {
      labels *= static_cast<std::uint64_t>(d);
    }
    const std::uint64_t arcs = labels * static_cast<std::uint64_t>(d);
    if (arcs == 0 || arcs > kMaxArcs) return;
    arc_forwards_.assign(arcs, 0);
  }
  const int appended = static_cast<int>(next.last());
  const int forbidden = static_cast<int>(u.last());
  const int rank = appended < forbidden ? appended : appended - 1;
  const std::uint64_t idx =
      u.to_index(d) * static_cast<std::uint64_t>(d) +
      static_cast<std::uint64_t>(rank);
  if (idx < arc_forwards_.size()) ++arc_forwards_[idx];
}

void ReferRouter::deliver(NodeId at, PacketPtr pkt) {
  ++stats_.packets_delivered;
  if (tracing()) {
    tracer_->emit(trace_base(sim::TraceEvent::kPacketDelivered, *pkt, at));
  }
  DeliveryReport report;
  report.delivered = true;
  report.delay_s = sim_->now() - pkt->sent_at;
  report.kautz_hops = pkt->kautz_hops;
  report.physical_hops = pkt->physical_hops;
  report.failovers = pkt->failovers;
  report.final_node = at;
  report.packet_id = pkt->id;
  if (pkt->done) pkt->done(report);
}

void ReferRouter::drop(PacketPtr pkt, sim::DropReason reason) {
  ++stats_.packets_dropped;
  ++stats_.drops_by_reason[static_cast<std::size_t>(reason)];
  if (tracing()) {
    sim::TraceRecord rec =
        trace_base(sim::TraceEvent::kPacketDropped, *pkt, -1);
    rec.reason = reason;
    tracer_->emit(rec);
  }
  DeliveryReport report;
  report.delivered = false;
  report.delay_s = sim_->now() - pkt->sent_at;
  report.kautz_hops = pkt->kautz_hops;
  report.physical_hops = pkt->physical_hops;
  report.failovers = pkt->failovers;
  report.packet_id = pkt->id;
  report.drop_reason = reason;
  if (pkt->done) pkt->done(report);
}

}  // namespace refer::core
