// The REFER overlay state shared by the embedding protocol (which builds
// it), the maintenance protocol (which repairs it) and the router (which
// reads it).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "dht/can.hpp"
#include "refer/cell.hpp"
#include "refer/ids.hpp"

namespace refer::core {

/// Sensor functional states (paper SIII-B4).  Actuators are always
/// kActuator; sensors cycle between active (Kautz node), wait (candidate)
/// and sleep.
enum class Role { kActuator, kActive, kWait, kSleep };

[[nodiscard]] const char* to_string(Role role) noexcept;

/// The complete embedded overlay.
class Topology {
 public:
  /// Kautz degree of the per-cell graphs K(d, k).
  [[nodiscard]] int degree() const noexcept { return d_; }
  void set_degree(int d) noexcept { d_ = d; }
  /// Kautz diameter k of the per-cell graphs (3 for the paper's protocol).
  [[nodiscard]] int diameter() const noexcept { return k_; }
  void set_diameter(int k) noexcept { k_ = k; }

  /// Cells by CID.  CIDs are dense [0, cell_count).
  [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }
  [[nodiscard]] Cell& cell(Cid cid) { return cells_.at(static_cast<std::size_t>(cid)); }
  [[nodiscard]] const Cell& cell(Cid cid) const {
    return cells_.at(static_cast<std::size_t>(cid));
  }
  Cid add_cell(Point center);

  /// Role bookkeeping (resized on demand).
  [[nodiscard]] Role role(NodeId node) const;
  void set_role(NodeId node, Role role);

  /// The active binding of a sensor: which cell and label it serves.
  /// Actuators belong to several cells; actuator_cells lists them.
  [[nodiscard]] std::optional<FullId> sensor_binding(NodeId node) const;
  void set_sensor_binding(NodeId node, FullId id);
  void clear_sensor_binding(NodeId node);

  [[nodiscard]] const std::vector<Cid>& actuator_cells(NodeId actuator) const;
  void add_actuator_cell(NodeId actuator, Cid cid);
  /// The (single) KID an actuator uses in every cell it belongs to.
  [[nodiscard]] std::optional<Label> actuator_label(NodeId actuator) const;
  void set_actuator_label(NodeId actuator, Label label);

  /// The inter-cell CAN; members are CIDs.
  [[nodiscard]] dht::Can& can() noexcept { return can_; }
  [[nodiscard]] const dht::Can& can() const noexcept { return can_; }

  /// Normalised CAN coordinate of a cell centre within the deployment
  /// area `area`.
  [[nodiscard]] static Point can_point(Point cell_center, const Rect& area);

  /// All active Kautz sensors (role == kActive).
  [[nodiscard]] std::vector<NodeId> active_sensors() const;

 private:
  int d_ = 2;
  int k_ = 3;
  std::vector<Cell> cells_;
  std::unordered_map<NodeId, Role> roles_;
  std::unordered_map<NodeId, FullId> sensor_bindings_;
  std::unordered_map<NodeId, std::vector<Cid>> actuator_cells_;
  std::unordered_map<NodeId, Label> actuator_labels_;
  dht::Can can_;
};

}  // namespace refer::core
