#include "refer/embedding.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>

#include "common/logging.hpp"
#include "dht/consistent_hash.hpp"
#include "refer/delaunay.hpp"

namespace refer::core {

using sim::EnergyBucket;

EmbeddingProtocol::EmbeddingProtocol(sim::Simulator& sim, sim::World& world,
                                     sim::Channel& channel,
                                     net::Flooder& flooder,
                                     sim::EnergyTracker& energy,
                                     EmbeddingConfig config)
    : sim_(&sim),
      world_(&world),
      channel_(&channel),
      flooder_(&flooder),
      energy_(&energy),
      config_(config) {}

void EmbeddingProtocol::run(DoneFn done) {
  if (config_.d != 2) {
    // The message-level schedule implements the paper's K(2,3) protocol;
    // other degrees use the oracle embedding (refer/oracle_embedding.hpp).
    log_error("EmbeddingProtocol supports d == 2 only (got %d)", config_.d);
    done(false);
    return;
  }
  start_actuator_phase(std::move(done));
}

void EmbeddingProtocol::start_actuator_phase(DoneFn done) {
  // Phase 1: every actuator announces itself and (one frame later) its
  // neighbour list, so all actuators learn the global actuator topology.
  for (NodeId a : world_->all_of(sim::NodeKind::kActuator)) {
    channel_->broadcast(a, config_.control_bytes, EnergyBucket::kConstruction,
                        nullptr);
    channel_->broadcast(a, config_.control_bytes, EnergyBucket::kConstruction,
                        nullptr);
    stats_.actuator_broadcasts += 2;
  }
  // Give the hello exchange a moment of simulated time, then run the
  // starting server's local computation.
  sim_->schedule_in(0.1, [this, done = std::move(done)]() mutable {
    if (!partition_and_color()) {
      done(false);
      return;
    }
    notify_actuators(std::move(done));
  });
}

bool EmbeddingProtocol::partition_and_color() {
  const auto actuators = world_->all_of(sim::NodeKind::kActuator);
  if (actuators.size() < 3) {
    log_error("embedding needs >= 3 actuators, got %zu", actuators.size());
    return false;
  }
  std::vector<Point> positions;
  positions.reserve(actuators.size());
  double min_range = world_->range(actuators.front());
  for (NodeId a : actuators) {
    positions.push_back(world_->position(a));
    min_range = std::min(min_range, world_->range(a));
  }
  auto triangles =
      filter_by_edge_length(delaunay(positions), positions, min_range);
  if (triangles.empty()) {
    log_error("no actuator triangle fits within actuator range");
    return false;
  }
  // CID order: row-major by centroid so physically close cells get close
  // CIDs (paper SIII-B1).
  std::sort(triangles.begin(), triangles.end(),
            [&](const Triangle& x, const Triangle& y) {
              const Point cx = centroid({positions[static_cast<size_t>(x[0])],
                                         positions[static_cast<size_t>(x[1])],
                                         positions[static_cast<size_t>(x[2])]});
              const Point cy = centroid({positions[static_cast<size_t>(y[0])],
                                         positions[static_cast<size_t>(y[1])],
                                         positions[static_cast<size_t>(y[2])]});
              if (cx.y != cy.y) return cx.y < cy.y;
              return cx.x < cy.x;
            });

  // 3-colouring of the triangulation graph: corners of every triangle must
  // receive distinct KIDs.
  std::vector<std::vector<int>> adjacency(actuators.size());
  auto add_edge = [&adjacency](int u, int v) {
    auto& au = adjacency[static_cast<std::size_t>(u)];
    if (std::find(au.begin(), au.end(), v) == au.end()) {
      au.push_back(v);
      adjacency[static_cast<std::size_t>(v)].push_back(u);
    }
  };
  for (const Triangle& t : triangles) {
    add_edge(t[0], t[1]);
    add_edge(t[1], t[2]);
    add_edge(t[0], t[2]);
  }
  const auto colors = three_color(adjacency);
  if (colors.empty()) {
    log_error("actuator triangulation is not 3-colourable");
    return false;
  }

  topology_.set_degree(config_.d);
  topology_.set_diameter(3);
  const auto corner_labels = actuator_labels();
  for (std::size_t i = 0; i < actuators.size(); ++i) {
    topology_.set_role(actuators[i], Role::kActuator);
    topology_.set_actuator_label(actuators[i],
                                 corner_labels[static_cast<std::size_t>(
                                     colors[i])]);
  }
  for (const Triangle& t : triangles) {
    const Point center = centroid({positions[static_cast<size_t>(t[0])],
                                   positions[static_cast<size_t>(t[1])],
                                   positions[static_cast<size_t>(t[2])]});
    const Cid cid = topology_.add_cell(center);
    Cell& cell = topology_.cell(cid);
    cell.set_corner_labels({corner_labels.begin(), corner_labels.end()});
    for (int corner : t) {
      const NodeId node = actuators[static_cast<std::size_t>(corner)];
      cell.bind(*topology_.actuator_label(node), node);
      topology_.add_actuator_cell(node, cid);
    }
  }
  return true;
}

std::vector<int> EmbeddingProtocol::three_color(
    const std::vector<std::vector<int>>& adjacency) {
  const std::size_t n = adjacency.size();
  // Order vertices by degree, highest first (sequential vertex colouring
  // heuristic [30]), with backtracking for exactness.
  std::vector<int> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return adjacency[static_cast<std::size_t>(a)].size() >
           adjacency[static_cast<std::size_t>(b)].size();
  });
  std::vector<int> colors(n, -1);
  std::function<bool(std::size_t)> assign = [&](std::size_t idx) -> bool {
    if (idx == n) return true;
    const int v = order[idx];
    for (int c = 0; c < 3; ++c) {
      bool clash = false;
      for (int w : adjacency[static_cast<std::size_t>(v)]) {
        if (colors[static_cast<std::size_t>(w)] == c) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      colors[static_cast<std::size_t>(v)] = c;
      if (assign(idx + 1)) return true;
      colors[static_cast<std::size_t>(v)] = -1;
    }
    return false;
  };
  if (!assign(0)) return {};
  return colors;
}

void EmbeddingProtocol::notify_actuators(DoneFn done) {
  // The starting server (minimum H(A)) tells every other actuator its
  // ID = (CIDs, KID) by depth-first unicasts over the actuator topology.
  const auto actuators = world_->all_of(sim::NodeKind::kActuator);
  NodeId server = actuators.front();
  std::uint64_t min_h = ~0ULL;
  for (NodeId a : actuators) {
    const auto h = dht::consistent_hash(static_cast<std::uint64_t>(a));
    if (h < min_h) {
      min_h = h;
      server = a;
    }
  }
  // DFS tree over "actuators within range" adjacency.
  std::vector<NodeId> stack{server};
  std::unordered_map<NodeId, bool> seen{{server, true}};
  while (!stack.empty()) {
    const NodeId at = stack.back();
    stack.pop_back();
    for (NodeId b : actuators) {
      if (seen[b] || !world_->can_reach(at, b)) continue;
      seen[b] = true;
      channel_->unicast(at, b, config_.control_bytes,
                        EnergyBucket::kConstruction, nullptr);
      ++stats_.notification_unicasts;
      stack.push_back(b);
    }
  }

  // Phase 3: schedule every cell's sensor path queries, in CID order.
  tasks_.clear();
  for (Cid cid = 0; cid < static_cast<Cid>(topology_.cell_count()); ++cid) {
    for (const auto& tmpl : k23_query_schedule()) {
      tasks_.push_back(QueryTask{cid, tmpl});
    }
  }
  sim_->schedule_in(0.05, [this, done = std::move(done)]() mutable {
    run_next_query(0, std::move(done));
  });
}

void EmbeddingProtocol::run_next_query(std::size_t index, DoneFn done) {
  if (index == tasks_.size()) {
    finish_cell_fill_ins(0, std::move(done));
    return;
  }
  const QueryTask& task = tasks_[index];
  const Cell& cell = topology_.cell(task.cid);
  const auto from = cell.node_of(task.tmpl.from);
  const auto to = cell.node_of(task.tmpl.to);
  ++stats_.path_queries;
  if (!from || !to) {
    // A prerequisite assignment failed; try the geometric fallback.
    if (!fallback_assign(task)) {
      done(false);
      return;
    }
    run_next_query(index + 1, std::move(done));
    return;
  }
  flooder_->collect_paths(
      *from, *to, /*ttl=*/2, EnergyBucket::kConstruction,
      [this, index, task, done = std::move(done)](
          std::vector<std::vector<NodeId>> paths) mutable {
        if (!apply_query_result(task, paths) && !fallback_assign(task)) {
          log_warn("embedding: cell %d query %s->%s found no path "
                   "(%zu arrivals) and no fallback",
                   task.cid, task.tmpl.from.to_string().c_str(),
                   task.tmpl.to.to_string().c_str(), paths.size());
          done(false);
          return;
        }
        run_next_query(index + 1, std::move(done));
      },
      config_.control_bytes, config_.query_deadline_s,
      config_.query_tx_range);
}

bool EmbeddingProtocol::sensor_unassigned(NodeId node) const {
  if (world_->kind(node) != sim::NodeKind::kSensor) return false;
  const Role r = topology_.role(node);
  return r == Role::kSleep || r == Role::kWait;
}

bool EmbeddingProtocol::apply_query_result(
    const QueryTask& task, const std::vector<std::vector<NodeId>>& paths) {
  // Keep paths with exactly two intermediate, unassigned, alive sensors
  // (the two labels to place), pick the one with the highest accumulated
  // battery (paper SIII-B2); battery ties (common right after deployment)
  // break towards the geometrically shortest path, which keeps the
  // embedded arcs physically tight -- the same lowest-delay preference the
  // paper's forwarding uses.
  const std::vector<NodeId>* best = nullptr;
  double best_battery = -1;
  double best_length = 0;
  for (const auto& path : paths) {
    if (path.size() != 4) continue;
    const NodeId s1 = path[1], s2 = path[2];
    if (s1 == s2 || !sensor_unassigned(s1) || !sensor_unassigned(s2)) continue;
    if (!world_->alive(s1) || !world_->alive(s2)) continue;
    const double battery = energy_->battery(static_cast<std::size_t>(s1)) +
                           energy_->battery(static_cast<std::size_t>(s2));
    double length = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      length += distance(world_->position(path[i]),
                         world_->position(path[i + 1]));
    }
    const bool better = battery > best_battery + 1e-9 ||
                        (battery > best_battery - 1e-9 &&
                         (!best || length < best_length));
    if (better) {
      best_battery = std::max(battery, best_battery);
      best_length = length;
      best = &path;
    }
  }
  if (!best) return false;
  Cell& cell = topology_.cell(task.cid);
  const NodeId selector = best->back();
  std::array<NodeId, 2> chosen{(*best)[1], (*best)[2]};
  for (std::size_t i = 0; i < 2; ++i) {
    cell.bind(task.tmpl.assigns[i], chosen[i]);
    topology_.set_sensor_binding(chosen[i],
                                 FullId{task.cid, task.tmpl.assigns[i]});
    topology_.set_role(chosen[i], Role::kActive);
  }
  // Assignment notifications travel back along the path (selector -> s2 ->
  // s1), which stays within range.
  channel_->unicast(selector, chosen[1], config_.control_bytes,
                    EnergyBucket::kConstruction, nullptr);
  channel_->unicast(chosen[1], chosen[0], config_.control_bytes,
                    EnergyBucket::kConstruction, nullptr);
  stats_.notification_unicasts += 2;
  return true;
}

bool EmbeddingProtocol::fallback_assign(const QueryTask& task) {
  // Sparse-deployment fallback: pick the unassigned sensors closest to the
  // ideal positions (thirds of the from->to segment) that are physically
  // connectable from -> s1 -> s2 -> to.
  Cell& cell = topology_.cell(task.cid);
  const auto from = cell.node_of(task.tmpl.from);
  const auto to = cell.node_of(task.tmpl.to);
  if (!from || !to) return false;
  const Point a = world_->position(*from);
  const Point b = world_->position(*to);
  const Point ideal1 = a + (b - a) * (1.0 / 3.0);
  const Point ideal2 = a + (b - a) * (2.0 / 3.0);

  std::vector<NodeId> candidates;
  for (NodeId s : world_->all_of(sim::NodeKind::kSensor)) {
    if (world_->alive(s) && sensor_unassigned(s)) candidates.push_back(s);
  }
  auto nearest_sorted = [&](Point ideal) {
    auto sorted = candidates;
    std::sort(sorted.begin(), sorted.end(), [&](NodeId x, NodeId y) {
      return distance_sq(world_->position(x), ideal) <
             distance_sq(world_->position(y), ideal);
    });
    if (sorted.size() > 12) sorted.resize(12);
    return sorted;
  };
  auto commit = [&](NodeId s1, NodeId s2) {
    cell.bind(task.tmpl.assigns[0], s1);
    cell.bind(task.tmpl.assigns[1], s2);
    topology_.set_sensor_binding(s1, FullId{task.cid, task.tmpl.assigns[0]});
    topology_.set_sensor_binding(s2, FullId{task.cid, task.tmpl.assigns[1]});
    topology_.set_role(s1, Role::kActive);
    topology_.set_role(s2, Role::kActive);
    channel_->unicast(*from, s1, config_.control_bytes,
                      EnergyBucket::kConstruction, nullptr);
    channel_->unicast(s1, s2, config_.control_bytes,
                      EnergyBucket::kConstruction, nullptr);
    stats_.notification_unicasts += 2;
    ++stats_.fallback_assignments;
  };
  // Tier 1: a fully connected from -> s1 -> s2 -> to chain.
  for (NodeId s1 : nearest_sorted(ideal1)) {
    if (!world_->can_reach(*from, s1)) continue;
    for (NodeId s2 : nearest_sorted(ideal2)) {
      if (s2 == s1) continue;
      if (!world_->can_reach(s1, s2) || !world_->can_reach(s2, *to)) continue;
      commit(s1, s2);
      return true;
    }
  }
  // Tier 2 (degraded): no connected chain exists -- take the sensors
  // closest to the ideal positions anyway.  Stretched arcs are served by
  // the router's 1-relay detour and healed by maintenance as nodes move.
  const auto near1 = nearest_sorted(ideal1);
  const auto near2 = nearest_sorted(ideal2);
  for (NodeId s1 : near1) {
    for (NodeId s2 : near2) {
      if (s1 == s2) continue;
      commit(s1, s2);
      ++stats_.degraded_assignments;
      return true;
    }
  }
  return false;
}

void EmbeddingProtocol::finish_cell_fill_ins(std::size_t cell_index,
                                             DoneFn done) {
  if (cell_index == topology_.cell_count()) {
    assign_roles_and_join_can();
    done(true);
    return;
  }
  Cell& cell = topology_.cell(static_cast<Cid>(cell_index));
  const auto fill = k23_fill_in();
  const auto holder_a = cell.node_of(fill.neighbor_a);
  const auto holder_b = cell.node_of(fill.neighbor_b);
  if (!holder_a || !holder_b) {
    log_warn("embedding: cell %zu fill-in anchors missing", cell_index);
    done(false);
    return;
  }
  // The two holders probe for common neighbours (one broadcast each,
  // maintenance-style but still part of construction).
  channel_->broadcast(*holder_a, config_.control_bytes,
                      EnergyBucket::kConstruction, nullptr);
  channel_->broadcast(*holder_b, config_.control_bytes,
                      EnergyBucket::kConstruction, nullptr);
  stats_.actuator_broadcasts += 2;

  NodeId best = -1;
  double best_battery = -1;
  world_->visit_reachable(*holder_a, [&](NodeId c) {
    if (!sensor_unassigned(c) || !world_->can_reach(*holder_b, c) ||
        !world_->can_reach(c, *holder_a) || !world_->can_reach(c, *holder_b)) {
      return;
    }
    const double battery = energy_->battery(static_cast<std::size_t>(c));
    if (battery > best_battery) {
      best_battery = battery;
      best = c;
    }
  });
  if (best < 0) {
    // Geometric fallback: closest unassigned sensor to the midpoint that
    // can reach both holders is required; without one the cell cannot be
    // completed.
    const Point mid =
        centroid({world_->position(*holder_a), world_->position(*holder_b)});
    double best_d = std::numeric_limits<double>::infinity();
    for (NodeId c : world_->all_of(sim::NodeKind::kSensor)) {
      if (!world_->alive(c) || !sensor_unassigned(c)) continue;
      if (!world_->can_reach(c, *holder_a) || !world_->can_reach(c, *holder_b))
        continue;
      const double d = distance_sq(world_->position(c), mid);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    if (best < 0) {
      // Degraded: nearest unassigned sensor to the midpoint, regardless
      // of connectivity (relay detours + maintenance take over).
      for (NodeId c : world_->all_of(sim::NodeKind::kSensor)) {
        if (!world_->alive(c) || !sensor_unassigned(c)) continue;
        const double d = distance_sq(world_->position(c), mid);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (best < 0) {
        log_warn("embedding: cell %zu has no unassigned sensor left for "
                 "fill-in label %s",
                 cell_index, fill.label.to_string().c_str());
        done(false);
        return;
      }
      ++stats_.degraded_assignments;
    }
    ++stats_.fallback_assignments;
  }
  cell.bind(fill.label, best);
  topology_.set_sensor_binding(best,
                               FullId{cell.cid(), fill.label});
  topology_.set_role(best, Role::kActive);
  channel_->unicast(*holder_a, best, config_.control_bytes,
                    EnergyBucket::kConstruction, nullptr);
  ++stats_.notification_unicasts;
  ++stats_.cells_embedded;
  sim_->schedule_in(0.02, [this, cell_index, done = std::move(done)]() mutable {
    finish_cell_fill_ins(cell_index + 1, std::move(done));
  });
}

void EmbeddingProtocol::assign_roles_and_join_can() {
  // Wait/sleep states (SIII-B4): a sensor that can hear an active Kautz
  // sensor parks as a replacement candidate (wait); everyone else sleeps.
  const auto active = topology_.active_sensors();
  for (NodeId s : world_->all_of(sim::NodeKind::kSensor)) {
    if (!sensor_unassigned(s)) continue;
    bool near_active = false;
    for (NodeId a : active) {
      if (world_->can_reach(s, a)) {
        near_active = true;
        break;
      }
    }
    topology_.set_role(s, near_active ? Role::kWait : Role::kSleep);
  }
  // Upper tier: cells join the CAN at their normalised centroids; one
  // announcement broadcast per cell by a corner actuator.
  for (Cid cid = 0; cid < static_cast<Cid>(topology_.cell_count()); ++cid) {
    const Cell& cell = topology_.cell(cid);
    topology_.can().join(cid, Topology::can_point(cell.center(),
                                                  world_->area()));
    if (const auto corner = cell.corner_actuators()[0]) {
      channel_->broadcast(*corner, config_.control_bytes,
                          EnergyBucket::kConstruction, nullptr);
      ++stats_.actuator_broadcasts;
    }
  }
}

}  // namespace refer::core
