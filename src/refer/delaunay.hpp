// Delaunay triangulation (Bowyer-Watson) of the actuator layer.
//
// The embedding protocol's starting server "locally partitions the global
// topology to a series of triangles and assigns a distinct CID to each
// triangle (cell)" (paper SIII-B1).  Actuators are resource-rich and know
// their coordinates, so the canonical triangle partition is the Delaunay
// triangulation, filtered to triangles whose sides actuators can actually
// bridge (edge length <= actuator range).
#pragma once

#include <array>
#include <vector>

#include "common/geometry.hpp"

namespace refer::core {

/// A triangle as indices into the input point set, sorted ascending.
using Triangle = std::array<int, 3>;

/// Bowyer-Watson Delaunay triangulation.  Intended for the small actuator
/// populations of a WSAN (tens of nodes).  Degenerate inputs (fewer than 3
/// points, all collinear) yield an empty result.
[[nodiscard]] std::vector<Triangle> delaunay(const std::vector<Point>& points);

/// Drops triangles with any side longer than `max_edge` (actuators that
/// cannot talk directly cannot share a cell).
[[nodiscard]] std::vector<Triangle> filter_by_edge_length(
    std::vector<Triangle> triangles, const std::vector<Point>& points,
    double max_edge);

}  // namespace refer::core
