// ReferSystem: the public facade of the REFER WSAN.
//
// Wires the embedding protocol, the fault-tolerant router, the topology
// maintenance and the inter-cell CAN over a simulated deployment.  This
// is the API the examples and the benchmark harness drive:
//
//   sim::Simulator sim;
//   sim::World world{area, sim};            // place actuators + sensors
//   sim::EnergyTracker energy; ...
//   refer::ReferSystem refer(sim, world, channel, energy, rng);
//   refer.build([&](bool ok) { ... });       // embed K(2,3) cells + CAN
//   sim.run_until(t);
//   refer.send_to_actuator(src, bytes, [](const DeliveryReport& r) {...});
#pragma once

#include <memory>

#include "net/flooding.hpp"
#include "refer/embedding.hpp"
#include "refer/maintenance.hpp"
#include "refer/oracle_embedding.hpp"
#include "refer/routing.hpp"

namespace refer::core {

struct ReferConfig {
  EmbeddingConfig embedding{};
  RouterConfig router{};
  MaintenanceConfig maintenance{};
  bool run_maintenance = true;
  /// When true, build() uses the offline oracle embedding (general
  /// K(d, k), see oracle_embedding.hpp) instead of the paper's K(2,3)
  /// message-level protocol.
  bool use_oracle_embedding = false;
  OracleEmbeddingConfig oracle{};
};

class ReferSystem {
 public:
  ReferSystem(sim::Simulator& sim, sim::World& world, sim::Channel& channel,
              sim::EnergyTracker& energy, Rng rng, ReferConfig config = {});

  /// Runs the embedding protocol; when it completes (ok), topology
  /// maintenance starts.  Must be called once before sending.
  void build(std::function<void(bool ok)> done);

  /// True once build() completed successfully.
  [[nodiscard]] bool ready() const noexcept { return ready_; }

  /// Evaluation workload: an active sensor reports to its nearest
  /// actuator.
  void send_to_actuator(NodeId src, std::size_t bytes,
                        ReferRouter::DeliveryFn done);

  /// Full (CID, KID) addressing across cells.
  void send_to(NodeId src, FullId dst, std::size_t bytes,
               ReferRouter::DeliveryFn done);

  /// Attaches a tracer to the router: routing-level events (packet ids,
  /// per-hop forwards, Theorem-3.8 fail-overs, drop reasons) stream
  /// through it.  Pass nullptr to detach.
  void set_tracer(sim::Tracer* tracer) noexcept {
    router_->set_tracer(tracer);
  }

  /// A uniformly random active Kautz sensor (the evaluation picks event
  /// sources among the awake overlay sensors); -1 when none exist.
  [[nodiscard]] NodeId random_active_sensor(Rng& rng) const;

  [[nodiscard]] Topology& topology() noexcept { return embedding_.topology(); }
  [[nodiscard]] const Topology& topology() const noexcept {
    return embedding_.topology();
  }
  [[nodiscard]] ReferRouter& router() noexcept { return *router_; }
  [[nodiscard]] const ReferRouter& router() const noexcept {
    return *router_;
  }
  [[nodiscard]] MaintenanceProtocol& maintenance() noexcept {
    return *maintenance_;
  }
  [[nodiscard]] const EmbeddingProtocol::Stats& embedding_stats() const {
    return embedding_.stats();
  }

 private:
  sim::Simulator* sim_;
  sim::World* world_;
  sim::Channel* channel_;
  net::Flooder flooder_;
  EmbeddingProtocol embedding_;
  std::unique_ptr<ReferRouter> router_;
  std::unique_ptr<MaintenanceProtocol> maintenance_;
  ReferConfig config_;
  bool ready_ = false;
};

}  // namespace refer::core
