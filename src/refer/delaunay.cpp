#include "refer/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace refer::core {

namespace {

struct Tri {
  int a, b, c;  // indices; negative = super-triangle vertices
};

/// True iff p lies strictly inside the circumcircle of (a, b, c).
/// Robustness: the standard incircle determinant; fine for the
/// non-adversarial actuator layouts of a WSAN.
bool in_circumcircle(Point p, Point a, Point b, Point c) {
  const double ax = a.x - p.x, ay = a.y - p.y;
  const double bx = b.x - p.x, by = b.y - p.y;
  const double cx = c.x - p.x, cy = c.y - p.y;
  const double det =
      (ax * ax + ay * ay) * (bx * cy - cx * by) -
      (bx * bx + by * by) * (ax * cy - cx * ay) +
      (cx * cx + cy * cy) * (ax * by - bx * ay);
  // Orientation of (a, b, c) flips the sign.
  const double orient =
      (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  return orient > 0 ? det > 0 : det < 0;
}

double edge_len(const std::vector<Point>& pts, int i, int j) {
  return distance(pts[static_cast<std::size_t>(i)],
                  pts[static_cast<std::size_t>(j)]);
}

}  // namespace

std::vector<Triangle> delaunay(const std::vector<Point>& points) {
  const int n = static_cast<int>(points.size());
  if (n < 3) return {};

  // Super-triangle enclosing all points.
  double min_x = points[0].x, max_x = points[0].x;
  double min_y = points[0].y, max_y = points[0].y;
  for (const Point& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double d = std::max(max_x - min_x, max_y - min_y) * 10 + 1;
  const Point mid{(min_x + max_x) / 2, (min_y + max_y) / 2};
  const Point s1{mid.x - 2 * d, mid.y - d};
  const Point s2{mid.x + 2 * d, mid.y - d};
  const Point s3{mid.x, mid.y + 2 * d};
  auto vertex = [&](int i) -> Point {
    if (i == -1) return s1;
    if (i == -2) return s2;
    if (i == -3) return s3;
    return points[static_cast<std::size_t>(i)];
  };

  std::vector<Tri> tris{{-1, -2, -3}};
  for (int i = 0; i < n; ++i) {
    const Point p = points[static_cast<std::size_t>(i)];
    // Find all triangles whose circumcircle contains p.
    std::vector<Tri> bad;
    std::vector<Tri> keep;
    for (const Tri& t : tris) {
      if (in_circumcircle(p, vertex(t.a), vertex(t.b), vertex(t.c))) {
        bad.push_back(t);
      } else {
        keep.push_back(t);
      }
    }
    // Boundary of the cavity: edges belonging to exactly one bad triangle.
    std::map<std::pair<int, int>, int> edge_count;
    auto add_edge = [&edge_count](int u, int v) {
      if (u > v) std::swap(u, v);
      ++edge_count[{u, v}];
    };
    for (const Tri& t : bad) {
      add_edge(t.a, t.b);
      add_edge(t.b, t.c);
      add_edge(t.a, t.c);
    }
    tris = std::move(keep);
    for (const auto& [edge, count] : edge_count) {
      if (count != 1) continue;
      tris.push_back(Tri{edge.first, edge.second, i});
    }
  }

  std::vector<Triangle> out;
  for (const Tri& t : tris) {
    if (t.a < 0 || t.b < 0 || t.c < 0) continue;  // touches super-triangle
    Triangle tri{t.a, t.b, t.c};
    std::sort(tri.begin(), tri.end());
    out.push_back(tri);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Triangle> filter_by_edge_length(std::vector<Triangle> triangles,
                                            const std::vector<Point>& points,
                                            double max_edge) {
  std::erase_if(triangles, [&](const Triangle& t) {
    return edge_len(points, t[0], t[1]) > max_edge ||
           edge_len(points, t[1], t[2]) > max_edge ||
           edge_len(points, t[0], t[2]) > max_edge;
  });
  return triangles;
}

}  // namespace refer::core
