// Actuator action coordination over the CAN DHT (paper SIII-B3: "all
// actuators further constitute a DHT structure for the action
// coordinations between actuators").
//
// A key (e.g. "zone-12/claimed-by") hashes to a point of the CAN unit
// square; the cell owning that point stores the value at its first
// corner actuator.  put/get requests travel the same actuator-level CAN
// path the inter-cell router uses, one physical actuator hop per CAN
// hop, charged as data traffic.  This is what lets, say, sprinkler
// actuators deduplicate responses to the same fire without flooding.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "refer/topology.hpp"
#include "sim/channel.hpp"

namespace refer::core {

class CoordinationService {
 public:
  CoordinationService(sim::Simulator& sim, sim::World& world,
                      sim::Channel& channel, Topology& topology,
                      std::size_t request_bytes = 96)
      : sim_(&sim),
        world_(&world),
        channel_(&channel),
        topology_(&topology),
        request_bytes_(request_bytes) {}

  using PutDone = std::function<void(bool ok)>;
  using GetDone = std::function<void(std::optional<std::string> value)>;

  /// Stores key -> value at the owner actuator, routed from
  /// `from_actuator` over the CAN.  Overwrites existing values.
  void put(NodeId from_actuator, const std::string& key, std::string value,
           PutDone done);

  /// Fetches the value for a key; the reply travels back over the CAN.
  void get(NodeId from_actuator, const std::string& key, GetDone done);

  /// Test-and-set: stores `value` only when the key is absent, and
  /// reports the winning value either way -- the primitive actuators use
  /// to claim responsibility for an event ("first sprinkler wins").
  using ClaimDone =
      std::function<void(bool won, std::string winning_value)>;
  void claim(NodeId from_actuator, const std::string& key, std::string value,
             ClaimDone done);

  /// The actuator a key lives on right now (oracle view, for tests).
  [[nodiscard]] NodeId owner_of(const std::string& key) const;

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t claims = 0;
    std::uint64_t hops = 0;
    std::uint64_t failures = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct KeyTarget {
    std::string key;
    Point point;
  };
  /// Routes a request from an actuator to the key's owner actuator;
  /// `at_owner` runs there.  `fail` runs on routing failure.
  void route_to_owner(NodeId from_actuator, const KeyTarget& target,
                      std::function<void(NodeId owner)> at_owner,
                      std::function<void()> fail, int budget);

  [[nodiscard]] Point key_point(const std::string& key) const;
  [[nodiscard]] std::optional<Cid> owner_cell(Point p) const;

  sim::Simulator* sim_;
  sim::World* world_;
  sim::Channel* channel_;
  Topology* topology_;
  std::size_t request_bytes_;
  Stats stats_;
  std::unordered_map<NodeId, std::unordered_map<std::string, std::string>>
      store_;
};

}  // namespace refer::core
