#include "refer/cell.hpp"

#include <cassert>

#include "kautz/graph.hpp"

namespace refer::core {

std::vector<PathQueryTemplate> k23_query_schedule() {
  return {
      // actuator -> successor actuator queries (SIII-B2 step 1)
      {Label{2, 0, 1}, Label{0, 1, 2}, {Label{0, 1, 0}, Label{1, 0, 1}}},
      {Label{1, 2, 0}, Label{2, 0, 1}, {Label{2, 0, 2}, Label{0, 2, 0}}},
      {Label{0, 1, 2}, Label{1, 2, 0}, {Label{1, 2, 1}, Label{2, 1, 2}}},
      // sensor-to-sensor query (step 2): S_i = 121, S_j = 020
      {Label{1, 2, 1}, Label{0, 2, 0}, {Label{2, 1, 0}, Label{1, 0, 2}}},
  };
}

FillInTemplate k23_fill_in() {
  return {Label{0, 2, 1}, Label{2, 1, 0}, Label{1, 0, 2}};
}

void Cell::bind(const Label& label, NodeId node) {
  if (const auto it = node_by_label_.find(label);
      it != node_by_label_.end()) {
    label_by_node_.erase(it->second);
  }
  node_by_label_[label] = node;
  label_by_node_[node] = label;
}

void Cell::unbind(const Label& label) {
  const auto it = node_by_label_.find(label);
  if (it == node_by_label_.end()) return;
  label_by_node_.erase(it->second);
  node_by_label_.erase(it);
}

std::optional<NodeId> Cell::node_of(const Label& label) const {
  const auto it = node_by_label_.find(label);
  if (it == node_by_label_.end()) return std::nullopt;
  return it->second;
}

std::optional<Label> Cell::label_of(NodeId node) const {
  const auto it = label_by_node_.find(node);
  if (it == label_by_node_.end()) return std::nullopt;
  return it->second;
}

std::vector<Label> Cell::labels() const {
  std::vector<Label> out;
  out.reserve(node_by_label_.size());
  for (const auto& [l, _] : node_by_label_) out.push_back(l);
  return out;
}

std::vector<NodeId> Cell::nodes() const {
  std::vector<NodeId> out;
  out.reserve(node_by_label_.size());
  for (const auto& [_, n] : node_by_label_) out.push_back(n);
  return out;
}

bool Cell::complete(int d, int k) const {
  const kautz::Graph graph(d, k);
  if (node_by_label_.size() != graph.node_count()) return false;
  for (const auto& [l, _] : node_by_label_) {
    if (!graph.contains(l)) return false;
  }
  return true;
}

std::vector<std::optional<NodeId>> Cell::corner_actuators() const {
  std::vector<std::optional<NodeId>> out;
  if (!corner_labels_.empty()) {
    for (const Label& l : corner_labels_) out.push_back(node_of(l));
    return out;
  }
  for (const Label& l : actuator_labels()) out.push_back(node_of(l));
  return out;
}

}  // namespace refer::core
