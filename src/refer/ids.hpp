// REFER node identifiers (paper SIII-B): ID = (CID, KID) where CID is the
// cell id and KID the Kautz label inside the cell's K(d, k) graph.
#pragma once

#include <string>

#include "kautz/label.hpp"

namespace refer::core {

/// Cell identifier; assigned so that physically close cells get close ids.
using Cid = int;

/// Full REFER identifier of a node: which cell, and which Kautz vertex in
/// that cell's embedded graph.
struct FullId {
  Cid cid = -1;
  kautz::Label kid;

  friend bool operator==(const FullId&, const FullId&) = default;

  [[nodiscard]] std::string to_string() const {
    return "(" + std::to_string(cid) + "," + kid.to_string() + ")";
  }
};

}  // namespace refer::core
