#include "refer/validate.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "kautz/graph.hpp"

namespace refer::core {

namespace {
std::string describe(Cid cid, const Label& label) {
  return "cell " + std::to_string(cid) + " label " + label.to_string();
}
}  // namespace

std::vector<std::string> validate_topology(const Topology& topology,
                                           sim::World& world,
                                           const ValidationOptions& options) {
  std::vector<std::string> violations;
  const kautz::Graph graph(topology.degree(), topology.diameter());
  std::unordered_map<NodeId, std::string> sensor_seen;

  for (Cid cid = 0; cid < static_cast<Cid>(topology.cell_count()); ++cid) {
    const Cell& cell = topology.cell(cid);
    if (options.require_complete_cells &&
        !cell.complete(topology.degree(), topology.diameter())) {
      violations.push_back("cell " + std::to_string(cid) + " incomplete: " +
                           std::to_string(cell.size()) + "/" +
                           std::to_string(graph.node_count()) + " labels");
    }
    const auto& corners = cell.corner_labels();
    for (const Label& label : cell.labels()) {
      if (!graph.contains(label)) {
        violations.push_back(describe(cid, label) + " not a K(d,k) node");
        continue;
      }
      const auto node = cell.node_of(label);
      if (!node) continue;
      if (static_cast<std::size_t>(*node) >= world.size()) {
        violations.push_back(describe(cid, label) + " bound to bogus node");
        continue;
      }
      const bool is_corner =
          std::find(corners.begin(), corners.end(), label) != corners.end();
      if (is_corner != world.is_actuator(*node)) {
        violations.push_back(describe(cid, label) +
                             (is_corner ? " corner bound to a sensor"
                                        : " sensor label bound to an actuator"));
        continue;
      }
      if (world.is_actuator(*node)) {
        const auto& cells = topology.actuator_cells(*node);
        if (std::find(cells.begin(), cells.end(), cid) == cells.end()) {
          violations.push_back(describe(cid, label) +
                               ": actuator does not list the cell");
        }
        continue;
      }
      // Sensor-side invariants.
      if (options.require_alive_sensors && !world.alive(*node)) {
        violations.push_back(describe(cid, label) + " bound to dead sensor " +
                             std::to_string(*node));
      }
      const auto [it, fresh] =
          sensor_seen.emplace(*node, describe(cid, label));
      if (!fresh) {
        violations.push_back("sensor " + std::to_string(*node) +
                             " bound twice: " + it->second + " and " +
                             describe(cid, label));
      }
      const auto binding = topology.sensor_binding(*node);
      if (!binding || binding->cid != cid || binding->kid != label) {
        violations.push_back(describe(cid, label) +
                             ": reverse binding mismatch");
      }
      if (topology.role(*node) != Role::kActive) {
        violations.push_back(describe(cid, label) + ": holder role is " +
                             std::string(to_string(topology.role(*node))));
      }
    }
    if (!topology.can().contains(static_cast<int>(cid))) {
      violations.push_back("cell " + std::to_string(cid) +
                           " missing from the CAN");
    }
  }

  // Every active sensor must hold exactly one binding.
  for (NodeId s : topology.active_sensors()) {
    if (!sensor_seen.contains(s)) {
      violations.push_back("active sensor " + std::to_string(s) +
                           " holds no label");
    }
  }
  return violations;
}

}  // namespace refer::core
