// Overlay invariant checking.
//
// validate_topology() audits a Topology against the world and returns
// every violated invariant as a human-readable string (empty = healthy).
// Used by the soak tests to prove the overlay stays coherent through
// hours of simulated mobility, faults and repairs, and handy for
// debugging embeddings interactively (examples/overlay_inspector).
#pragma once

#include <string>
#include <vector>

#include "refer/topology.hpp"
#include "sim/world.hpp"

namespace refer::core {

struct ValidationOptions {
  /// Check that every K(d,k) label of every cell is bound.
  bool require_complete_cells = true;
  /// Check that every bound sensor is alive.
  bool require_alive_sensors = true;
};

/// Returns all invariant violations found (empty when healthy):
///  - every cell's labels are valid K(d,k) labels, bound to existing nodes;
///  - corner labels are bound to actuators, the rest to sensors;
///  - the sensor <-> (cell,label) binding is a global bijection;
///  - role bookkeeping matches the bindings (bound sensors are kActive,
///    active sensors are bound);
///  - every cell is a CAN member.
[[nodiscard]] std::vector<std::string> validate_topology(
    const Topology& topology, sim::World& world,
    const ValidationOptions& options = {});

}  // namespace refer::core
