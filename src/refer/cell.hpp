// A REFER cell: one embedded Kautz graph K(d, 3) anchored at three corner
// actuators (paper SIII-B, Figure 1).
#pragma once

#include <array>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"
#include "kautz/label.hpp"
#include "refer/ids.hpp"
#include "sim/world.hpp"

namespace refer::core {

using kautz::Label;
using sim::NodeId;

/// The three actuator corner labels of a K(d, 3) cell, in the paper's
/// order (SIII-B1: vertex colors 0, 1, 2 map to 012, 120, 201).
[[nodiscard]] inline std::array<Label, 3> actuator_labels() {
  return {Label{0, 1, 2}, Label{1, 2, 0}, Label{2, 0, 1}};
}

/// One actuator-to-successor path query of the K(2,3) embedding
/// (SIII-B2): flood TTL=2 from `from` towards `to`, then assign the two
/// labels to the two intermediate sensors, in path order.
struct PathQueryTemplate {
  Label from;
  Label to;
  std::array<Label, 2> assigns;
};

/// The K(2,3) sensor-assignment schedule, verbatim from the paper:
///   (5,201) -> (5,010) -> (5,101) -> (5,012)
///   (5,120) -> (5,202) -> (5,020) -> (5,201)
///   (5,012) -> (5,121) -> (5,212) -> (5,120)
/// then S_i = 121 (successor of smallest actuator KID) queries
/// S_j = 020 (predecessor of largest actuator KID):
///   121 -> 210 -> 102 -> 020
/// and finally 021 goes to the common neighbour of 210 and 102.
[[nodiscard]] std::vector<PathQueryTemplate> k23_query_schedule();

/// The final fill-in label (021) and the two labels whose holders' common
/// physical neighbour receives it.
struct FillInTemplate {
  Label label;
  Label neighbor_a;
  Label neighbor_b;
};
[[nodiscard]] FillInTemplate k23_fill_in();

/// One embedded cell: the label <-> physical node bijection plus geometry.
class Cell {
 public:
  Cell() = default;
  Cell(Cid cid, Point center) : cid_(cid), center_(center) {}

  [[nodiscard]] Cid cid() const noexcept { return cid_; }
  [[nodiscard]] Point center() const noexcept { return center_; }

  /// The labels held by this cell's corner actuators.  The K(2,3)
  /// protocol uses actuator_labels(); the oracle embedding for general
  /// K(d,k) picks spread-out labels per cell.
  [[nodiscard]] const std::vector<Label>& corner_labels() const noexcept {
    return corner_labels_;
  }
  void set_corner_labels(std::vector<Label> labels) {
    corner_labels_ = std::move(labels);
  }

  /// Binds a label to a physical node (replacing any previous binding of
  /// that label).  A node may hold the same KID in several cells
  /// (actuators do, SIII-B).
  void bind(const Label& label, NodeId node);

  /// Removes a node's binding (node replacement, SIII-B4).
  void unbind(const Label& label);

  [[nodiscard]] std::optional<NodeId> node_of(const Label& label) const;
  [[nodiscard]] std::optional<Label> label_of(NodeId node) const;

  /// All bound labels.
  [[nodiscard]] std::vector<Label> labels() const;
  /// All bound nodes.
  [[nodiscard]] std::vector<NodeId> nodes() const;

  /// Number of bound labels.
  [[nodiscard]] std::size_t size() const noexcept { return node_by_label_.size(); }

  /// True when every node of K(d, k) is bound.
  [[nodiscard]] bool complete(int d, int k = 3) const;

  /// The corner actuator physical nodes (in corner_labels order; falls
  /// back to the K(2,3) actuator_labels() when none were set); empty
  /// optionals when not yet assigned.
  [[nodiscard]] std::vector<std::optional<NodeId>> corner_actuators() const;

 private:
  Cid cid_ = -1;
  Point center_{};
  std::vector<Label> corner_labels_;
  std::unordered_map<Label, NodeId, kautz::LabelHash> node_by_label_;
  std::unordered_map<NodeId, Label> label_by_node_;
};

}  // namespace refer::core
