#include "refer/topology.hpp"

#include <algorithm>

namespace refer::core {

const char* to_string(Role role) noexcept {
  switch (role) {
    case Role::kActuator: return "actuator";
    case Role::kActive: return "active";
    case Role::kWait: return "wait";
    case Role::kSleep: return "sleep";
  }
  return "?";
}

Cid Topology::add_cell(Point center) {
  const Cid cid = static_cast<Cid>(cells_.size());
  cells_.emplace_back(cid, center);
  return cid;
}

Role Topology::role(NodeId node) const {
  const auto it = roles_.find(node);
  return it == roles_.end() ? Role::kSleep : it->second;
}

void Topology::set_role(NodeId node, Role role) { roles_[node] = role; }

std::optional<FullId> Topology::sensor_binding(NodeId node) const {
  const auto it = sensor_bindings_.find(node);
  if (it == sensor_bindings_.end()) return std::nullopt;
  return it->second;
}

void Topology::set_sensor_binding(NodeId node, FullId id) {
  sensor_bindings_[node] = id;
}

void Topology::clear_sensor_binding(NodeId node) {
  sensor_bindings_.erase(node);
}

const std::vector<Cid>& Topology::actuator_cells(NodeId actuator) const {
  static const std::vector<Cid> kEmpty;
  const auto it = actuator_cells_.find(actuator);
  return it == actuator_cells_.end() ? kEmpty : it->second;
}

void Topology::add_actuator_cell(NodeId actuator, Cid cid) {
  actuator_cells_[actuator].push_back(cid);
}

std::optional<Label> Topology::actuator_label(NodeId actuator) const {
  const auto it = actuator_labels_.find(actuator);
  if (it == actuator_labels_.end()) return std::nullopt;
  return it->second;
}

void Topology::set_actuator_label(NodeId actuator, Label label) {
  actuator_labels_[actuator] = label;
}

Point Topology::can_point(Point cell_center, const Rect& area) {
  const double w = area.width() > 0 ? area.width() : 1;
  const double h = area.height() > 0 ? area.height() : 1;
  Point p{(cell_center.x - area.lo.x) / w, (cell_center.y - area.lo.y) / h};
  // Clamp strictly inside the unit square for CAN.
  p.x = std::min(std::max(p.x, 0.0), 0.999999);
  p.y = std::min(std::max(p.y, 0.0), 0.999999);
  return p;
}

std::vector<NodeId> Topology::active_sensors() const {
  std::vector<NodeId> out;
  for (const auto& [node, role] : roles_) {
    if (role == Role::kActive) out.push_back(node);
  }
  return out;
}

}  // namespace refer::core
