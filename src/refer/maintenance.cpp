#include "refer/maintenance.hpp"

#include <algorithm>
#include <limits>

#include "kautz/graph.hpp"

namespace refer::core {

using sim::EnergyBucket;

MaintenanceProtocol::MaintenanceProtocol(sim::Simulator& sim,
                                         sim::World& world,
                                         sim::Channel& channel,
                                         sim::EnergyTracker& energy,
                                         Topology& topology, Rng rng,
                                         MaintenanceConfig config)
    : sim_(&sim),
      world_(&world),
      channel_(&channel),
      energy_(&energy),
      topology_(&topology),
      rng_(rng),
      config_(config) {}

void MaintenanceProtocol::start() {
  if (running_) return;
  running_ = true;
  last_probe_ = sim_->now();
  schedule_next();
}

void MaintenanceProtocol::stop() { running_ = false; }

void MaintenanceProtocol::schedule_next() {
  sim_->schedule_in(config_.sweep_period_s, [this] {
    if (!running_) return;
    sweep();
    if (sim_->now() - last_probe_ >= config_.probe_period_s) {
      last_probe_ = sim_->now();
      probe_wait_nodes();
    }
    schedule_next();
  });
}

void MaintenanceProtocol::probe_wait_nodes() {
  // Wait-state sensors wake up and probe their Kautz-node neighbours
  // (SIII-B4); the probe keeps their candidate status fresh.  Sleeping
  // nodes stay silent (that is where the energy saving comes from).
  for (NodeId s : world_->all_of(sim::NodeKind::kSensor)) {
    if (topology_->role(s) != Role::kWait || !world_->alive(s)) continue;
    channel_->broadcast(s, config_.control_bytes, EnergyBucket::kMaintenance,
                        nullptr);
    ++stats_.probe_broadcasts;
  }
}

std::vector<NodeId> MaintenanceProtocol::arc_neighbors(
    const Cell& cell, const Label& label) const {
  const kautz::Graph graph(topology_->degree(), topology_->diameter());
  std::vector<NodeId> out;
  auto add = [&](const Label& l) {
    if (const auto n = cell.node_of(l)) {
      if (std::find(out.begin(), out.end(), *n) == out.end()) {
        out.push_back(*n);
      }
    }
  };
  for (const Label& l : graph.out_neighbors(label)) add(l);
  for (const Label& l : graph.in_neighbors(label)) add(l);
  return out;
}

int MaintenanceProtocol::broken_arcs(const Cell& cell, const Label& label,
                                     NodeId node, Point at) const {
  // An arc is "broken" when its endpoints cannot talk directly at sensor
  // power (the router then needs the 1-relay detour).  The link margin
  // shrinks the threshold so links about to break (signal strength
  // fading, SIII-B4) already count.
  int broken = 0;
  const double reach = world_->range(node) * config_.link_margin;
  for (NodeId n : arc_neighbors(cell, label)) {
    if (n == node || !world_->alive(n)) continue;
    if (distance(at, world_->position(n)) > reach) ++broken;
  }
  return broken;
}

bool MaintenanceProtocol::needs_replacement(const Cell& cell,
                                            const Label& label, NodeId node) {
  if (!world_->alive(node)) return true;
  if (energy_->battery(static_cast<std::size_t>(node)) <
      config_.battery_threshold_j) {
    return true;
  }
  return broken_arcs(cell, label, node, world_->position(node)) > 0;
}

void MaintenanceProtocol::sweep() {
  ++stats_.sweeps;
  for (Cid cid = 0; cid < static_cast<Cid>(topology_->cell_count()); ++cid) {
    Cell& cell = topology_->cell(cid);
    for (const Label& label : cell.labels()) {
      const auto node = cell.node_of(label);
      if (!node || world_->is_actuator(*node)) continue;
      if (needs_replacement(cell, label, *node)) {
        replace(cell, label, *node);
      }
    }
  }
}

void MaintenanceProtocol::replace(Cell& cell, const Label& label,
                                  NodeId old_node) {
  // Candidate: a wait/sleep sensor that restores the label's Kautz-arc
  // connectivity (paper SIII-B4), preferring fewer broken arcs, then
  // higher battery.  A replacement only happens when it strictly improves
  // on the current holder (mandatory when the holder is dead or drained),
  // so a healthy topology is a fixed point of sweep().
  const bool mandatory =
      !world_->alive(old_node) ||
      energy_->battery(static_cast<std::size_t>(old_node)) <
          config_.battery_threshold_j;
  const int old_broken =
      world_->alive(old_node)
          ? broken_arcs(cell, label, old_node, world_->position(old_node))
          : std::numeric_limits<int>::max();
  NodeId best = -1;
  int best_broken = std::numeric_limits<int>::max();
  double best_battery = -1;
  for (NodeId s : world_->all_of(sim::NodeKind::kSensor)) {
    if (!world_->alive(s) || s == old_node) continue;
    const Role r = topology_->role(s);
    if (r != Role::kWait && r != Role::kSleep) continue;
    const int broken = broken_arcs(cell, label, s, world_->position(s));
    const double battery = energy_->battery(static_cast<std::size_t>(s));
    if (broken < best_broken ||
        (broken == best_broken && battery > best_battery)) {
      best_broken = broken;
      best_battery = battery;
      best = s;
    }
  }
  const bool improves = best >= 0 && (mandatory || best_broken < old_broken);
  if (!improves) {
    if (mandatory) ++stats_.failed_replacements;
    return;
  }
  // Handover: the retiring node notifies the replacement; the replacement
  // announces itself to the label's neighbours (one broadcast).
  if (world_->alive(old_node)) {
    channel_->unicast(old_node, best, config_.control_bytes,
                      EnergyBucket::kMaintenance, nullptr);
  }
  channel_->broadcast(best, config_.control_bytes, EnergyBucket::kMaintenance,
                      nullptr);
  cell.unbind(label);
  cell.bind(label, best);
  topology_->clear_sensor_binding(old_node);
  topology_->set_sensor_binding(best, FullId{cell.cid(), label});
  topology_->set_role(best, Role::kActive);
  topology_->set_role(old_node,
                      world_->alive(old_node) ? Role::kWait : Role::kSleep);
  ++stats_.replacements;
}

}  // namespace refer::core
