#include "refer/oracle_embedding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/logging.hpp"
#include "kautz/graph.hpp"
#include "refer/delaunay.hpp"

namespace refer::core {

using sim::EnergyBucket;
using sim::NodeId;

bool oracle_embed(sim::World& world, sim::Channel& channel,
                  Topology& topology, const OracleEmbeddingConfig& config) {
  const kautz::Graph graph(config.d, config.k);
  const auto actuators = world.all_of(sim::NodeKind::kActuator);
  if (actuators.size() < 3) return false;

  std::vector<Point> positions;
  double min_range = world.range(actuators.front());
  for (NodeId a : actuators) {
    positions.push_back(world.position(a));
    min_range = std::min(min_range, world.range(a));
  }
  const auto triangles =
      filter_by_edge_length(delaunay(positions), positions, min_range);
  if (triangles.empty()) {
    log_warn("oracle_embed: no valid actuator triangulation");
    return false;
  }
  const auto sensors_needed =
      triangles.size() * (graph.node_count() - 3);
  std::size_t sensors_alive = 0;
  for (NodeId s : world.all_of(sim::NodeKind::kSensor)) {
    sensors_alive += world.alive(s);
  }
  if (sensors_alive < sensors_needed && !config.allow_partial) {
    log_warn("oracle_embed: need %zu sensors for %zu K(%d,%d) cells, have %zu",
             sensors_needed, triangles.size(), config.d, config.k,
             sensors_alive);
    return false;
  }

  topology.set_degree(config.d);
  topology.set_diameter(config.k);
  const auto cycle = graph.hamiltonian_cycle();  // node_count + 1 entries
  const std::size_t n = graph.node_count();
  std::unordered_set<NodeId> taken;

  for (const Triangle& t : triangles) {
    const std::vector<Point> corners{
        positions[static_cast<std::size_t>(t[0])],
        positions[static_cast<std::size_t>(t[1])],
        positions[static_cast<std::size_t>(t[2])]};
    const Point center = centroid(corners);
    const Cid cid = topology.add_cell(center);
    Cell& cell = topology.cell(cid);

    // Corner labels: thirds of the Hamiltonian cycle, pinned to the
    // actuators.
    const std::array<std::size_t, 3> corner_idx{0, n / 3, 2 * n / 3};
    std::vector<Label> corner_labels;
    for (std::size_t i = 0; i < 3; ++i) {
      const Label label = cycle[corner_idx[i]];
      const NodeId actuator =
          actuators[static_cast<std::size_t>(t[i])];
      cell.bind(label, actuator);
      corner_labels.push_back(label);
      topology.set_role(actuator, Role::kActuator);
      topology.set_actuator_label(actuator, label);
      topology.add_actuator_cell(actuator, cid);
      channel.broadcast(actuator, config.control_bytes,
                        EnergyBucket::kConstruction, nullptr);
    }
    cell.set_corner_labels(corner_labels);

    // Ring layout: cycle position i at angle 2*pi*i/n around the cell
    // centre; radius proportional to the distance to the nearest corner.
    double inradius = std::numeric_limits<double>::infinity();
    for (const Point& c : corners) {
      inradius = std::min(inradius, distance(center, c));
    }
    const double radius = inradius * config.ring_radius_factor;
    const auto all_sensors = world.all_of(sim::NodeKind::kSensor);
    for (std::size_t i = 0; i < n; ++i) {
      const Label& label = cycle[i];
      if (cell.node_of(label)) continue;  // a pinned corner
      const double angle =
          2 * 3.14159265358979323846 * static_cast<double>(i) /
          static_cast<double>(n);
      const Point ideal{center.x + radius * std::cos(angle),
                        center.y + radius * std::sin(angle)};
      NodeId best = -1;
      double best_d = std::numeric_limits<double>::infinity();
      for (NodeId s : all_sensors) {
        if (!world.alive(s) || taken.contains(s)) continue;
        const double d = distance_sq(world.position(s), ideal);
        if (d < best_d) {
          best_d = d;
          best = s;
        }
      }
      if (best < 0) {
        if (config.allow_partial) continue;  // leave the label unbound
        return false;
      }
      taken.insert(best);
      cell.bind(label, best);
      topology.set_sensor_binding(best, FullId{cid, label});
      topology.set_role(best, Role::kActive);
      // ID notification from the cell's first actuator.
      channel.unicast(*cell.corner_actuators()[0], best,
                      config.control_bytes, EnergyBucket::kConstruction,
                      nullptr);
    }
  }

  // Wait/sleep roles and the CAN, as in the protocol embedding.
  const auto active = topology.active_sensors();
  for (NodeId s : world.all_of(sim::NodeKind::kSensor)) {
    if (taken.contains(s)) continue;
    bool near_active = false;
    for (NodeId a : active) {
      if (world.can_reach(s, a)) {
        near_active = true;
        break;
      }
    }
    topology.set_role(s, near_active ? Role::kWait : Role::kSleep);
  }
  for (Cid cid = 0; cid < static_cast<Cid>(topology.cell_count()); ++cid) {
    topology.can().join(
        cid, Topology::can_point(topology.cell(cid).center(), world.area()));
  }
  return true;
}

}  // namespace refer::core
