// Oracle embedding for general K(d, k) cells (paper SV, future work:
// "investigate the Kautz graph K(d,k) with various d and k values").
//
// The message-level embedding protocol (embedding.hpp) implements the
// paper's K(2,3) schedule literally.  For other (d, k) the paper gives no
// protocol, so this module computes the assignment *offline* (an oracle)
// and charges only the ID-notification messages:
//
//  1. Cells come from the same Delaunay partition of the actuator layer.
//  2. Within a cell, the Hamiltonian cycle of K(d, k) (which exists for
//     every Kautz graph; the embedding precondition of Proposition 3.2)
//     is laid out as a ring inscribed in the cell, so cycle-consecutive
//     labels land on physically adjacent sensors.  Three labels spaced a
//     third of the cycle apart become the corner labels and are pinned to
//     the actuators; every other label takes the unassigned sensor
//     closest to its ring position.
//
// Non-ring Kautz arcs (chords) may exceed radio range; the router's
// 1-relay detour and the maintenance protocol handle them, exactly as
// for stretched arcs under mobility.  Deviation from the paper's K(2,3)
// design: an actuator may hold different KIDs in different cells (the
// paper's same-KID simplification has no k-generic analogue).
#pragma once

#include "refer/topology.hpp"
#include "sim/channel.hpp"
#include "sim/energy.hpp"

namespace refer::core {

struct OracleEmbeddingConfig {
  int d = 2;
  int k = 3;
  double ring_radius_factor = 0.8;  ///< ring radius vs. cell inradius
  std::size_t control_bytes = 48;
  /// Sparse deployments: when true, cells may be *partial* -- labels stay
  /// unbound once the sensor pool runs out.  The router skips unbound
  /// successors (one fewer disjoint alternative per gap), so routing
  /// degrades gracefully instead of the embedding failing outright.
  bool allow_partial = false;
};

/// Embeds K(d, k) cells into the world and fills `topology`; returns
/// false when the partition fails or there are not enough sensors for
/// the (d+1)d^{k-1} - 3 sensor labels of every cell.  Charges the
/// assignment notifications (one unicast per assigned sensor, one
/// broadcast per actuator) to the construction bucket.
[[nodiscard]] bool oracle_embed(sim::World& world, sim::Channel& channel,
                                Topology& topology,
                                const OracleEmbeddingConfig& config);

}  // namespace refer::core
