#include "refer/system.hpp"

namespace refer::core {

ReferSystem::ReferSystem(sim::Simulator& sim, sim::World& world,
                         sim::Channel& channel, sim::EnergyTracker& energy,
                         Rng rng, ReferConfig config)
    : sim_(&sim),
      world_(&world),
      channel_(&channel),
      flooder_(sim, world, channel),
      embedding_(sim, world, channel, flooder_, energy, config.embedding),
      config_(config) {
  router_ = std::make_unique<ReferRouter>(sim, world, channel,
                                          embedding_.topology(),
                                          config.router, rng.split());
  router_->set_flooder(&flooder_);
  maintenance_ = std::make_unique<MaintenanceProtocol>(
      sim, world, channel, energy, embedding_.topology(), rng.split(),
      config.maintenance);
}

void ReferSystem::build(std::function<void(bool)> done) {
  if (config_.use_oracle_embedding) {
    const bool ok = oracle_embed(*world_, *channel_, embedding_.topology(),
                                 config_.oracle);
    // Let the notification frames drain before reporting readiness.
    sim_->schedule_in(0.5, [this, ok, done = std::move(done)] {
      ready_ = ok;
      if (ok) router_->emit_trace_header();
      if (ok && config_.run_maintenance) maintenance_->start();
      if (done) done(ok);
    });
    return;
  }
  embedding_.run([this, done = std::move(done)](bool ok) {
    ready_ = ok;
    if (ok) router_->emit_trace_header();
    if (ok && config_.run_maintenance) maintenance_->start();
    if (done) done(ok);
  });
}

void ReferSystem::send_to_actuator(NodeId src, std::size_t bytes,
                                   ReferRouter::DeliveryFn done) {
  router_->send_to_actuator(src, bytes, std::move(done));
}

void ReferSystem::send_to(NodeId src, FullId dst, std::size_t bytes,
                          ReferRouter::DeliveryFn done) {
  router_->send_to(src, dst, bytes, std::move(done));
}

NodeId ReferSystem::random_active_sensor(Rng& rng) const {
  auto active = topology().active_sensors();
  if (active.empty()) return -1;
  std::sort(active.begin(), active.end());
  return active[rng.below(active.size())];
}

}  // namespace refer::core
