// Allocation-free event closures for the DES kernel.
//
// EventClosure replaces std::function<void()> in the simulator's event
// queue.  Captures up to kInlineSize bytes (chosen to cover every lambda
// the codebase schedules -- the largest is Channel::unicast's delivery
// closure at ~56 bytes; see the capture audit in
// tests/event_engine_test.cpp) are stored inline in the Event itself, so
// steady-state scheduling performs zero heap allocations.  Oversized
// captures fall back to a free-list ClosurePool owned by the simulator:
// the first closure of each size class allocates a block, every later
// one reuses a recycled block, so even the oversized path is
// allocation-free at steady state.
//
// Contract:
//   - EventClosure is move-only.  Inline closures relocate via the
//     callable's (noexcept) move constructor; pooled closures relocate by
//     copying one pointer.
//   - A pooled closure must be destroyed while its ClosurePool is alive
//     and on the thread running that pool's simulator (the kernel is
//     single-threaded; one Simulator == one pool == one thread).
//   - fits_inline<F>() is constexpr, so tests can pin the audit:
//     every capture currently scheduled must stay inline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace refer::sim {

/// Free-list allocator for oversized event captures.  Blocks are grouped
/// in power-of-two size classes from 64 B to 8 KiB; freed blocks park on
/// a per-class list and are handed back verbatim on the next allocation
/// of the same class.  Captures beyond the largest class (none exist
/// today) degrade to plain new/delete per use.
class ClosurePool {
 public:
  struct Stats {
    std::uint64_t inline_closures = 0;  ///< captures stored in the Event
    std::uint64_t pooled_closures = 0;  ///< captures routed through the pool
    std::uint64_t blocks_allocated = 0;  ///< heap allocations performed
    std::uint64_t blocks_recycled = 0;   ///< allocations served free-list
  };

  static constexpr std::size_t kMinBlock = 64;
  static constexpr int kClasses = 8;  // 64, 128, ..., 8192 bytes

  ClosurePool() = default;
  ClosurePool(const ClosurePool&) = delete;
  ClosurePool& operator=(const ClosurePool&) = delete;
  ~ClosurePool() {
    for (Header*& list : free_) {
      while (list) {
        Header* next = list->link;
        ::operator delete(list);
        list = next;
      }
    }
  }

  /// Returns storage for `bytes` payload bytes.  The payload is aligned
  /// to max_align_t; the preceding header remembers how to free it.
  void* allocate(std::size_t bytes) {
    const int cls = size_class(bytes);
    ++stats_.pooled_closures;
    if (cls < kClasses && free_[cls]) {
      Header* h = free_[cls];
      free_[cls] = h->link;
      ++stats_.blocks_recycled;
      h->link = nullptr;
      return payload(h);
    }
    const std::size_t payload_bytes =
        cls < kClasses ? (kMinBlock << cls) : bytes;
    auto* h = static_cast<Header*>(
        ::operator new(sizeof(Header) + payload_bytes));
    h->link = nullptr;
    h->cls = cls;
    ++stats_.blocks_allocated;
    return payload(h);
  }

  /// Returns a block obtained from allocate() to its free list (or the
  /// heap, for beyond-largest-class blocks).
  void deallocate(void* p) noexcept {
    Header* h = header(p);
    if (h->cls >= kClasses) {
      ::operator delete(h);
      return;
    }
    h->link = free_[h->cls];
    free_[h->cls] = h;
  }

  void count_inline() noexcept { ++stats_.inline_closures; }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct alignas(std::max_align_t) Header {
    Header* link = nullptr;  ///< next free block while parked
    int cls = 0;             ///< size class; >= kClasses = plain delete
  };

  static int size_class(std::size_t bytes) noexcept {
    std::size_t block = kMinBlock;
    int cls = 0;
    while (block < bytes && cls < kClasses) {
      block <<= 1;
      ++cls;
    }
    return cls;
  }
  static void* payload(Header* h) noexcept { return h + 1; }
  static Header* header(void* p) noexcept {
    return static_cast<Header*>(p) - 1;
  }

  Header* free_[kClasses] = {};
  Stats stats_;
};

/// Move-only type-erased void() callable with small-buffer storage.
class EventClosure {
 public:
  /// Inline capacity.  The audit (tests/event_engine_test.cpp) pins every
  /// capture currently scheduled by channel.cpp, net/, refer/, baselines/
  /// and the harness under this bound; the largest today is 56 bytes.
  static constexpr std::size_t kInlineSize = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True when callables of type F store inline (no pool traffic).
  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() noexcept {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  EventClosure() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventClosure>>>
  EventClosure(ClosurePool& pool, F&& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>,
                  "event closures are void() callables");
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      vt_ = &kInlineVt<D>;
      pool.count_inline();
    } else {
      void* block = pool.allocate(sizeof(D));
      ::new (block) D(std::forward<F>(fn));
      Pooled p{block, &pool};
      ::new (static_cast<void*>(buf_)) Pooled(p);
      vt_ = &kPooledVt<D>;
    }
  }

  EventClosure(EventClosure&& other) noexcept : vt_(other.vt_) {
    if (vt_) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  EventClosure& operator=(EventClosure&& other) noexcept {
    if (this != &other) {
      if (vt_) vt_->destroy(buf_);
      vt_ = other.vt_;
      if (vt_) {
        vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  EventClosure(const EventClosure&) = delete;
  EventClosure& operator=(const EventClosure&) = delete;

  ~EventClosure() {
    if (vt_) vt_->destroy(buf_);
  }

  void operator()() { vt_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  /// True when this (engaged) closure lives in the inline buffer.
  [[nodiscard]] bool is_inline() const noexcept {
    return vt_ && vt_->inline_storage;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs dst from src and destroys src's object (inline) or
    /// copies the block pointer (pooled).  Never throws.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  struct Pooled {
    void* block;
    ClosurePool* pool;
  };

  template <typename D>
  static constexpr VTable kInlineVt{
      [](void* buf) { (*static_cast<D*>(buf))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* buf) noexcept { static_cast<D*>(buf)->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr VTable kPooledVt{
      [](void* buf) { (*static_cast<D*>(static_cast<Pooled*>(buf)->block))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Pooled(*static_cast<Pooled*>(src));
      },
      [](void* buf) noexcept {
        auto* p = static_cast<Pooled*>(buf);
        static_cast<D*>(p->block)->~D();
        p->pool->deallocate(p->block);
      },
      /*inline_storage=*/false,
  };

  const VTable* vt_ = nullptr;
  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
};

static_assert(sizeof(EventClosure) == EventClosure::kInlineSize +
                                          EventClosure::kInlineAlign,
              "one vtable pointer of overhead over the inline buffer");

}  // namespace refer::sim
