#include "sim/world.hpp"

#include <cassert>
#include <limits>

#include "sim/trace.hpp"

namespace refer::sim {

NodeId World::add_actuator(Point pos, double range) {
  nodes_.push_back(Node{NodeKind::kActuator, range, true, Waypoint(pos)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId World::add_sensor(Point pos, double range, double min_speed,
                         double max_speed, Rng rng) {
  nodes_.push_back(Node{NodeKind::kSensor, range, true,
                        Waypoint(pos, area_, min_speed, max_speed, rng)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId World::add_static_sensor(Point pos, double range) {
  nodes_.push_back(Node{NodeKind::kSensor, range, true, Waypoint(pos)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeKind World::kind(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].kind;
}

double World::range(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].range;
}

Point World::position(NodeId id) {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].motion.position_at(sim_->now());
}

bool World::alive(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].alive;
}

void World::set_alive(NodeId id, bool alive) {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  auto& node = nodes_[static_cast<std::size_t>(id)];
  if (node.alive != alive && tracer_ && tracer_->enabled()) {
    tracer_->emit({sim_->now(),
                   alive ? TraceEvent::kNodeUp : TraceEvent::kNodeDown, id,
                   -1, 0, EnergyBucket::kMaintenance});
  }
  node.alive = alive;
}

bool World::can_reach(NodeId from, NodeId to) {
  if (from == to) return false;
  if (!alive(from) || !alive(to)) return false;
  return within_range(position(from), position(to), range(from));
}

std::vector<NodeId> World::reachable_from(NodeId from, double range_override) {
  std::vector<NodeId> out;
  if (!alive(from)) return out;
  const Point p = position(from);
  const double r = range_override > 0 ? range_override : range(from);
  for (NodeId i = 0; static_cast<std::size_t>(i) < nodes_.size(); ++i) {
    if (i == from || !alive(i)) continue;
    if (within_range(p, position(i), r)) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> World::all_of(NodeKind k) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; static_cast<std::size_t>(i) < nodes_.size(); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].kind == k) out.push_back(i);
  }
  return out;
}

NodeId World::closest_actuator(NodeId id) {
  NodeId best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  const Point p = position(id);
  for (NodeId i = 0; static_cast<std::size_t>(i) < nodes_.size(); ++i) {
    const auto& n = nodes_[static_cast<std::size_t>(i)];
    if (n.kind != NodeKind::kActuator || !n.alive || i == id) continue;
    const double d = distance_sq(p, position(i));
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace refer::sim
