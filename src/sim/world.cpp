#include "sim/world.hpp"

#include <cassert>
#include <limits>

#include "sim/trace.hpp"

namespace refer::sim {
namespace {

/// Staleness budget as a fraction of the max transmission range.  Larger
/// slack means fewer re-bins but a wider candidate ring; the ring cost is
/// paid on every query and re-bins only per drifted leg, so a small 5%
/// keeps the prefilter tight.
constexpr double kSlackFraction = 0.05;

}  // namespace

NodeId World::add_node(Node node) {
  nodes_.push_back(std::move(node));
  index_dirty_ = true;
  for (const auto& [token, fn] : size_listeners_) fn(nodes_.size());
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId World::add_actuator(Point pos, double range) {
  return add_node(Node{NodeKind::kActuator, range, true, Waypoint(pos)});
}

NodeId World::add_sensor(Point pos, double range, double min_speed,
                         double max_speed, Rng rng) {
  return add_node(Node{NodeKind::kSensor, range, true,
                       Waypoint(pos, area_, min_speed, max_speed, rng)});
}

NodeId World::add_static_sensor(Point pos, double range) {
  return add_node(Node{NodeKind::kSensor, range, true, Waypoint(pos)});
}

NodeKind World::kind(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].kind;
}

double World::range(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].range;
}

Point World::position(NodeId id) {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].motion.position_at(sim_->now());
}

bool World::alive(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].alive;
}

void World::set_alive(NodeId id, bool alive) {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  auto& node = nodes_[static_cast<std::size_t>(id)];
  if (node.alive != alive && tracer_ && tracer_->enabled()) {
    tracer_->emit({sim_->now(),
                   alive ? TraceEvent::kNodeUp : TraceEvent::kNodeDown, id,
                   -1, 0, EnergyBucket::kMaintenance});
  }
  node.alive = alive;
}

bool World::can_reach(NodeId from, NodeId to) {
  if (from == to) return false;
  if (!alive(from) || !alive(to)) return false;
  return within_range(position(from), position(to), range(from));
}

void World::reachable_from(NodeId from, std::vector<NodeId>& out,
                           double range_override) {
  out.clear();
  visit_reachable(
      from, [&out](NodeId i) { out.push_back(i); }, range_override);
}

std::vector<NodeId> World::reachable_from(NodeId from, double range_override) {
  std::vector<NodeId> out;
  reachable_from(from, out, range_override);
  return out;
}

std::vector<NodeId> World::all_of(NodeKind k) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; static_cast<std::size_t>(i) < nodes_.size(); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].kind == k) out.push_back(i);
  }
  return out;
}

void World::set_spatial_index_enabled(bool enabled) {
  if (enabled && !index_enabled_) index_dirty_ = true;
  index_enabled_ = enabled;
}

int World::add_size_listener(std::function<void(std::size_t)> fn) {
  const int token = next_listener_token_++;
  fn(nodes_.size());
  size_listeners_.emplace_back(token, std::move(fn));
  return token;
}

void World::remove_size_listener(int token) {
  std::erase_if(size_listeners_,
                [token](const auto& entry) { return entry.first == token; });
}

bool World::ensure_index() {
  const Time now = sim_->now();
  if (index_dirty_) rebuild_index(now);
  if (!index_usable_) return false;
  // A re-bin is exactly the moment some binned position's slack bound
  // was about to break, so it also expires every cached neighbor row.
  index_.revalidate(now, [this, now](NodeId id) {
    bin_node(id, now);
    ncache_.invalidate();
  });
  return true;
}

void World::rebuild_index(Time now) {
  index_dirty_ = false;
  ncache_.reset(nodes_.size());
  double max_range = 0;
  double max_speed = 0;
  for (const Node& n : nodes_) {
    max_range = std::max(max_range, n.range);
    max_speed = std::max(max_speed, n.motion.max_speed());
  }
  index_usable_ = !nodes_.empty() && max_range > 0;
  if (!index_usable_) return;

  // The prefilter scans every cell intersecting the query rect, so its
  // cost is ~density * (2r + 2*cell)^2: max-range cells would guarantee a
  // 3x3 block but make short-range queries (the common case -- sensor
  // range is well below actuator range) scan far past their radius.  A
  // quarter of max range keeps the over-scan ring thin; the side/64 floor
  // bounds the grid at 64x64 cells for sparse wide-area deployments.
  const double side = std::max(area_.width(), area_.height());
  const double cell = std::max(max_range / 4.0, side / 64.0);
  const double slack = max_range * kSlackFraction;
  index_.start_build(area_, cell, slack, max_speed, nodes_.size());
  actuator_index_.start_build(area_, max_range, /*slack=*/0, /*max_speed=*/0,
                              nodes_.size());
  const Time kForever = std::numeric_limits<Time>::infinity();
  for (NodeId i = 0; static_cast<std::size_t>(i) < nodes_.size(); ++i) {
    bin_node(i, now);
    if (nodes_[static_cast<std::size_t>(i)].kind == NodeKind::kActuator) {
      actuator_index_.update(
          i, nodes_[static_cast<std::size_t>(i)].motion.position_at(now),
          kForever, now);
    }
  }
  index_stats_.rebuilds += 1;
}

void World::bin_node(NodeId id, Time now) {
  Node& n = nodes_[static_cast<std::size_t>(id)];
  const Point p = n.motion.position_at(now);
  Time valid_until = std::numeric_limits<Time>::infinity();
  if (n.motion.is_mobile()) {
    // The binning is trusted until the node could have drifted `slack`
    // metres on its current leg, or the leg ends (new direction/speed) --
    // whichever comes first.  A pause (speed 0) is trusted to the leg end.
    const double speed = n.motion.current_speed();
    const Time leg_end = n.motion.segment_end();
    valid_until =
        speed > 0 ? std::min(leg_end, now + index_.slack() / speed) : leg_end;
  }
  index_.update(id, p, valid_until, now);
  index_stats_.rebins += 1;
}

NodeId World::closest_actuator(NodeId id) {
  PhaseProfiler::Scope phase(phases_, Phase::kSpatialQuery);
  const Point p = position(id);
  if (index_enabled_ && ensure_index()) {
    // Ring search over the static actuator grid: every point of a
    // Chebyshev ring-k cell lies >= (k-1)*cell metres away, so once that
    // bound exceeds the best hit no farther ring can improve on it.
    NodeId best = -1;
    double best_d = std::numeric_limits<double>::infinity();
    const double cell = actuator_index_.cell_size();
    const int rings = actuator_index_.max_rings();
    for (int k = 0; k <= rings; ++k) {
      if (best >= 0) {
        const double lower = (k - 1) * cell;
        if (lower > 0 && lower * lower > best_d) break;
      }
      actuator_index_.visit_ring(p, k, [&](NodeId i) {
        if (i == id || !alive(i)) return;
        const double d = distance_sq(p, position(i));
        if (d < best_d || (d == best_d && i < best)) {
          best_d = d;
          best = i;
        }
      });
    }
    return best;
  }
  NodeId best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (NodeId i = 0; static_cast<std::size_t>(i) < nodes_.size(); ++i) {
    const auto& n = nodes_[static_cast<std::size_t>(i)];
    if (n.kind != NodeKind::kActuator || !n.alive || i == id) continue;
    const double d = distance_sq(p, position(i));
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace refer::sim
