#include "sim/trace.hpp"

#include <stdexcept>

namespace refer::sim {

const char* to_string(TraceEvent event) noexcept {
  switch (event) {
    case TraceEvent::kUnicastQueued: return "unicast_queued";
    case TraceEvent::kUnicastDelivered: return "unicast_delivered";
    case TraceEvent::kUnicastFailed: return "unicast_failed";
    case TraceEvent::kBroadcast: return "broadcast";
    case TraceEvent::kNodeDown: return "node_down";
    case TraceEvent::kNodeUp: return "node_up";
  }
  return "?";
}

JsonlTraceWriter::JsonlTraceWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (!file_) {
    throw std::runtime_error("JsonlTraceWriter: cannot open " + path);
  }
}

JsonlTraceWriter::~JsonlTraceWriter() {
  if (file_) std::fclose(file_);
}

void JsonlTraceWriter::operator()(const TraceRecord& record) {
  std::fprintf(file_,
               "{\"t\":%.6f,\"event\":\"%s\",\"from\":%d,\"to\":%d,"
               "\"bytes\":%zu,\"bucket\":%d}\n",
               record.t, to_string(record.event), record.from, record.to,
               record.bytes, static_cast<int>(record.bucket));
  ++written_;
}

}  // namespace refer::sim
