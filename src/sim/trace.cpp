#include "sim/trace.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace refer::sim {

const char* to_string(TraceEvent event) noexcept {
  switch (event) {
    case TraceEvent::kUnicastQueued: return "unicast_queued";
    case TraceEvent::kUnicastDelivered: return "unicast_delivered";
    case TraceEvent::kUnicastFailed: return "unicast_failed";
    case TraceEvent::kBroadcast: return "broadcast";
    case TraceEvent::kNodeDown: return "node_down";
    case TraceEvent::kNodeUp: return "node_up";
    case TraceEvent::kPacketSent: return "packet_sent";
    case TraceEvent::kHopForward: return "hop_forward";
    case TraceEvent::kFailover: return "failover";
    case TraceEvent::kPacketDropped: return "packet_dropped";
    case TraceEvent::kPacketDelivered: return "packet_delivered";
    case TraceEvent::kQosDeadlineMiss: return "qos_deadline_miss";
    case TraceEvent::kTraceHeader: return "trace_header";
    case TraceEvent::kAppRegister: return "app_register";
    case TraceEvent::kAppKeepaliveMiss: return "app_keepalive_miss";
    case TraceEvent::kAppActuate: return "app_actuate";
    case TraceEvent::kAppLoopComplete: return "app_loop_complete";
    case TraceEvent::kAppLoopMiss: return "app_loop_miss";
    case TraceEvent::kAppActuatorDown: return "app_actuator_down";
    case TraceEvent::kAppActuatorUp: return "app_actuator_up";
    case TraceEvent::kTraceEventCount: break;
  }
  return "?";
}

const char* to_string(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kNone: return "none";
    case DropReason::kLinkFailed: return "link_failed";
    case DropReason::kNoActuator: return "no_actuator";
    case DropReason::kOverlayEntryFailed: return "overlay_entry_failed";
    case DropReason::kTtlExpired: return "ttl_expired";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kAllSuccessorsFailed: return "all_successors_failed";
    case DropReason::kFloodFailed: return "flood_failed";
    case DropReason::kDropReasonCount: break;
  }
  return "?";
}

void json_escape_append(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  json_escape_append(out, s);
  return out;
}

namespace {

/// printf-appends to `out` (records are short; 192 bytes covers the
/// longest fixed-key burst by an order of magnitude).
[[gnu::format(printf, 2, 3)]] void append_fmt(std::string& out,
                                              const char* fmt, ...) {
  char buf[192];
  std::va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof buf - 1));
}

}  // namespace

JsonlTraceWriter::JsonlTraceWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (!file_) {
    throw std::runtime_error("JsonlTraceWriter: cannot open " + path);
  }
  buffer_.reserve(kBatchBytes + 512);
}

JsonlTraceWriter::~JsonlTraceWriter() {
  if (file_) {
    flush();
    std::fclose(file_);
  }
}

void JsonlTraceWriter::flush() noexcept {
  if (!file_) return;
  if (!buffer_.empty()) {
    std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    buffer_.clear();
  }
  std::fflush(file_);
}

void JsonlTraceWriter::operator()(const TraceRecord& record) {
  append_fmt(buffer_,
             "{\"t\":%.6f,\"event\":\"%s\",\"from\":%d,\"to\":%d,"
             "\"bytes\":%zu,\"bucket\":%d",
             record.t, to_string(record.event), record.from, record.to,
             record.bytes, static_cast<int>(record.bucket));
  if (record.packet >= 0) {
    append_fmt(buffer_, ",\"packet\":%lld",
               static_cast<long long>(record.packet));
  }
  if (record.reason != DropReason::kNone) {
    append_fmt(buffer_, ",\"reason\":\"%s\"", to_string(record.reason));
  }
  if (record.hop_index >= 0) {
    append_fmt(buffer_, ",\"hop\":%d", record.hop_index);
  }
  if (record.alt_index >= 0) {
    append_fmt(buffer_, ",\"alt\":%d", record.alt_index);
  }
  if (record.nominal_len >= 0) {
    append_fmt(buffer_, ",\"nominal_len\":%d", record.nominal_len);
  }
  if (record.degree >= 0) {
    append_fmt(buffer_, ",\"degree\":%d", record.degree);
  }
  if (!record.policy.empty()) {
    buffer_ += ",\"policy\":\"";
    json_escape_append(buffer_, record.policy);
    buffer_ += '"';
  }
  if (!record.at_label.empty()) {
    buffer_ += ",\"at\":\"";
    json_escape_append(buffer_, record.at_label);
    buffer_ += '"';
  }
  if (!record.dst_label.empty()) {
    buffer_ += ",\"dst\":\"";
    json_escape_append(buffer_, record.dst_label);
    buffer_ += '"';
  }
  if (!record.next_label.empty()) {
    buffer_ += ",\"next\":\"";
    json_escape_append(buffer_, record.next_label);
    buffer_ += '"';
  }
  buffer_ += "}\n";
  ++written_;
  if (buffer_.size() >= kBatchBytes) {
    std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    buffer_.clear();
  }
}

}  // namespace refer::sim
