#include "sim/trace.hpp"

#include <cstdio>
#include <stdexcept>

namespace refer::sim {

const char* to_string(TraceEvent event) noexcept {
  switch (event) {
    case TraceEvent::kUnicastQueued: return "unicast_queued";
    case TraceEvent::kUnicastDelivered: return "unicast_delivered";
    case TraceEvent::kUnicastFailed: return "unicast_failed";
    case TraceEvent::kBroadcast: return "broadcast";
    case TraceEvent::kNodeDown: return "node_down";
    case TraceEvent::kNodeUp: return "node_up";
    case TraceEvent::kPacketSent: return "packet_sent";
    case TraceEvent::kHopForward: return "hop_forward";
    case TraceEvent::kFailover: return "failover";
    case TraceEvent::kPacketDropped: return "packet_dropped";
    case TraceEvent::kPacketDelivered: return "packet_delivered";
    case TraceEvent::kQosDeadlineMiss: return "qos_deadline_miss";
    case TraceEvent::kTraceHeader: return "trace_header";
    case TraceEvent::kTraceEventCount: break;
  }
  return "?";
}

const char* to_string(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kNone: return "none";
    case DropReason::kLinkFailed: return "link_failed";
    case DropReason::kNoActuator: return "no_actuator";
    case DropReason::kOverlayEntryFailed: return "overlay_entry_failed";
    case DropReason::kTtlExpired: return "ttl_expired";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kAllSuccessorsFailed: return "all_successors_failed";
    case DropReason::kFloodFailed: return "flood_failed";
    case DropReason::kDropReasonCount: break;
  }
  return "?";
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonlTraceWriter::JsonlTraceWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (!file_) {
    throw std::runtime_error("JsonlTraceWriter: cannot open " + path);
  }
}

JsonlTraceWriter::~JsonlTraceWriter() {
  if (file_) std::fclose(file_);
}

void JsonlTraceWriter::operator()(const TraceRecord& record) {
  std::fprintf(file_,
               "{\"t\":%.6f,\"event\":\"%s\",\"from\":%d,\"to\":%d,"
               "\"bytes\":%zu,\"bucket\":%d",
               record.t, to_string(record.event), record.from, record.to,
               record.bytes, static_cast<int>(record.bucket));
  if (record.packet >= 0) {
    std::fprintf(file_, ",\"packet\":%lld",
                 static_cast<long long>(record.packet));
  }
  if (record.reason != DropReason::kNone) {
    std::fprintf(file_, ",\"reason\":\"%s\"", to_string(record.reason));
  }
  if (record.hop_index >= 0) {
    std::fprintf(file_, ",\"hop\":%d", record.hop_index);
  }
  if (record.alt_index >= 0) {
    std::fprintf(file_, ",\"alt\":%d", record.alt_index);
  }
  if (record.nominal_len >= 0) {
    std::fprintf(file_, ",\"nominal_len\":%d", record.nominal_len);
  }
  if (record.degree >= 0) {
    std::fprintf(file_, ",\"degree\":%d", record.degree);
  }
  if (!record.at_label.empty()) {
    std::fprintf(file_, ",\"at\":\"%s\"",
                 json_escape(record.at_label).c_str());
  }
  if (!record.dst_label.empty()) {
    std::fprintf(file_, ",\"dst\":\"%s\"",
                 json_escape(record.dst_label).c_str());
  }
  if (!record.next_label.empty()) {
    std::fprintf(file_, ",\"next\":\"%s\"",
                 json_escape(record.next_label).c_str());
  }
  std::fputs("}\n", file_);
  ++written_;
}

}  // namespace refer::sim
