#include "sim/channel.hpp"

#include <algorithm>
#include <cassert>

#include "sim/telemetry.hpp"

namespace refer::sim {

Channel::Channel(Simulator& sim, World& world, EnergyTracker& energy, Rng rng,
                 ChannelConfig config)
    : sim_(&sim),
      world_(&world),
      energy_(&energy),
      rng_(rng),
      config_(config) {
  // Size the per-node medium state now and on every node addition, so
  // reserve_tx_slot never has to check.
  size_listener_ = world_->add_size_listener([this](std::size_t n) {
    busy_until_.resize(n, 0.0);
    airtime_.resize(n, 0.0);
  });
}

Channel::~Channel() { world_->remove_size_listener(size_listener_); }

void Channel::set_stats(StatsRegistry* registry) {
  queue_wait_us_ =
      registry ? &registry->histogram("channel.queue_wait_us") : nullptr;
}

double Channel::frame_time(std::size_t bytes) const noexcept {
  return config_.mac_overhead_s +
         static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
}

Time Channel::reserve_tx_slot(NodeId node, double duration) {
  const auto idx = static_cast<std::size_t>(node);
  assert(idx < busy_until_.size());
  airtime_[idx] += duration;
  stats_.total_airtime_s += duration;
  const Time start = std::max(sim_->now(), busy_until_[idx]);
  const Time end = start + duration;
  busy_until_[idx] = end;
  if (config_.mac == MacMode::kCsma) {
    // CSMA: the medium around the sender is occupied; in-range nodes defer.
    PhaseProfiler::Scope phase(phases_, Phase::kMediumScan);
    world_->visit_reachable(node, [this, end](NodeId n) {
      auto& busy = busy_until_[static_cast<std::size_t>(n)];
      busy = std::max(busy, end);
    });
  }
  return start;
}

void Channel::unicast(NodeId from, NodeId to, std::size_t bytes,
                      EnergyBucket bucket, UnicastDone done) {
  assert(from != to);
  ++stats_.unicasts_sent;
  if (tracer_ && tracer_->enabled()) {
    tracer_->emit({sim_->now(), TraceEvent::kUnicastQueued, from, to, bytes,
                   bucket});
  }
  if (!world_->alive(from)) {
    // A dead node cannot transmit; its pending sends vanish.  The trace
    // still records the failure -- trace_report's hop chains would
    // otherwise see a queued send with no outcome.
    ++stats_.unicasts_failed;
    if (tracer_ && tracer_->enabled()) {
      tracer_->emit({sim_->now(), TraceEvent::kUnicastFailed, from, to, 0,
                     bucket});
    }
    if (done) sim_->schedule_in(config_.ack_timeout_s, [done] { done(false); });
    return;
  }
  const double airtime =
      frame_time(bytes) + rng_.uniform(0.0, config_.max_jitter_s);
  const Time start = reserve_tx_slot(from, airtime);
  if (queue_wait_us_) queue_wait_us_->record((start - sim_->now()) * 1e6);
  if (telemetry_) {
    telemetry_->on_queue_wait(sim_->now(), (start - sim_->now()) * 1e6);
  }
  const Time deliver_at = start + airtime;
  const bool lost = rng_.chance(config_.loss_probability);
  sim_->schedule_tagged(deliver_at, "channel.unicast",
                        [this, from, to, bucket, lost,
                         done = std::move(done)] {
    // TX energy is spent whether or not the frame arrives.
    energy_->charge_tx(static_cast<std::size_t>(from), bucket);
    const bool ok = !lost && world_->can_reach(from, to);
    if (tracer_ && tracer_->enabled()) {
      tracer_->emit({sim_->now(),
                     ok ? TraceEvent::kUnicastDelivered
                        : TraceEvent::kUnicastFailed,
                     from, to, 0, bucket});
    }
    if (ok) {
      energy_->charge_rx(static_cast<std::size_t>(to), bucket);
      ++stats_.unicasts_delivered;
      if (done) done(true);
    } else {
      ++stats_.unicasts_failed;
      if (done) {
        sim_->schedule_in(config_.ack_timeout_s, [done] { done(false); });
      }
    }
  });
}

void Channel::broadcast(NodeId from, std::size_t bytes, EnergyBucket bucket,
                        ReceiveFn on_receive, double range_override) {
  ++stats_.broadcasts_sent;
  if (!world_->alive(from)) return;
  if (tracer_ && tracer_->enabled()) {
    tracer_->emit({sim_->now(), TraceEvent::kBroadcast, from, -1, bytes,
                   bucket});
  }
  const double airtime =
      frame_time(bytes) + rng_.uniform(0.0, config_.max_jitter_s);
  const Time start = reserve_tx_slot(from, airtime);
  if (queue_wait_us_) queue_wait_us_->record((start - sim_->now()) * 1e6);
  if (telemetry_) {
    telemetry_->on_queue_wait(sim_->now(), (start - sim_->now()) * 1e6);
  }
  sim_->schedule_tagged(start + airtime, "channel.broadcast",
                        [this, from, bucket, range_override,
                         on_receive = std::move(on_receive)] {
    energy_->charge_tx(static_cast<std::size_t>(from), bucket);
    // Materialise the receiver set before invoking handlers: on_receive may
    // re-enter the channel (a flood hop starts the next broadcast), and the
    // lease keeps the buffer safe across that re-entry without allocating.
    ScratchPool::Lease lease = world_->lease_scratch();
    std::vector<NodeId>& receivers = *lease;
    world_->visit_reachable(
        from, [&receivers](NodeId r) { receivers.push_back(r); },
        range_override);
    for (NodeId r : receivers) {
      energy_->charge_rx(static_cast<std::size_t>(r), bucket);
      ++stats_.broadcast_receptions;
      if (on_receive) on_receive(r);
    }
  });
}

double Channel::node_airtime_s(NodeId node) const {
  const auto idx = static_cast<std::size_t>(node);
  return idx < airtime_.size() ? airtime_[idx] : 0.0;
}

std::vector<std::pair<NodeId, double>> Channel::busiest_nodes(
    std::size_t top) const {
  std::vector<std::pair<NodeId, double>> all;
  for (std::size_t i = 0; i < airtime_.size(); ++i) {
    if (airtime_[i] > 0) all.emplace_back(static_cast<NodeId>(i), airtime_[i]);
  }
  // Only the top slice is reported (this runs per telemetry tick), so a
  // full sort of every active node is wasted work.  Ties break toward
  // the lower id -- a total order, so the result never depends on the
  // selection algorithm.
  const auto hotter = [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (all.size() > top) {
    std::partial_sort(all.begin(),
                      all.begin() + static_cast<std::ptrdiff_t>(top),
                      all.end(), hotter);
    all.resize(top);
  } else {
    std::sort(all.begin(), all.end(), hotter);
  }
  return all;
}

}  // namespace refer::sim
