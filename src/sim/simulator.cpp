#include "sim/simulator.hpp"

#include <cassert>
#include <chrono>
#include <string>

#include "common/stats_registry.hpp"

namespace refer::sim {

void Simulator::set_engine(QueueEngine engine) {
  assert(pending() == 0 &&
         "switch engines before scheduling; pending events would not move");
  engine_ = engine;
}

void Simulator::schedule_event(Time at, const char* tag, EventClosure fn) {
  assert(at >= now_);
  Event ev{at, next_seq_++, tag, std::move(fn)};
  if (engine_ == QueueEngine::kCalendar) {
    calendar_.push(std::move(ev));
  } else {
    heap_.push(std::move(ev));
  }
  const std::size_t depth = pending();
  if (depth > peak_pending_) peak_pending_ = depth;
}

void Simulator::set_profiler(StatsRegistry* registry) {
  profiler_ = registry;
  profile_cache_.clear();
}

Histogram* Simulator::profile_histogram(const char* tag) {
  for (const auto& [t, h] : profile_cache_) {
    if (t == tag) return h;
  }
  Histogram* h = &profiler_->histogram(
      std::string("sim.event_us.") + (tag ? tag : "other"));
  profile_cache_.emplace_back(tag, h);
  return h;
}

void Simulator::execute(Event& ev) {
  now_ = ev.at;
  ++executed_;
  // Wall-clock attribution: every executed event charges the kernel
  // dispatch phase (inclusive of the subsystem phases it nests).
  PhaseProfiler::Scope phase(phase_profiler_, Phase::kKernelDispatch);
  if (profiler_) {
    const auto t0 = std::chrono::steady_clock::now();
    ev.fn();
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    profile_histogram(ev.tag)->record(us);
  } else {
    ev.fn();
  }
}

void Simulator::run_until(Time until) {
  while (pending() != 0 && next_event_time() <= until) {
    // Pop before executing: the event may schedule more events.
    Event ev = pop_event();
    execute(ev);
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (pending() != 0) {
    Event ev = pop_event();
    execute(ev);
  }
}

bool Simulator::step() {
  if (pending() == 0) return false;
  Event ev = pop_event();
  execute(ev);
  return true;
}

}  // namespace refer::sim
