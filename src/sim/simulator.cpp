#include "sim/simulator.hpp"

#include <cassert>
#include <chrono>
#include <string>

#include "common/stats_registry.hpp"

namespace refer::sim {

void Simulator::schedule_tagged(Time at, const char* tag, EventFn fn) {
  assert(at >= now_);
  queue_.push(Event{at, next_seq_++, tag, std::move(fn)});
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
}

void Simulator::set_profiler(StatsRegistry* registry) {
  profiler_ = registry;
  profile_cache_.clear();
}

Histogram* Simulator::profile_histogram(const char* tag) {
  for (const auto& [t, h] : profile_cache_) {
    if (t == tag) return h;
  }
  Histogram* h = &profiler_->histogram(
      std::string("sim.event_us.") + (tag ? tag : "other"));
  profile_cache_.emplace_back(tag, h);
  return h;
}

void Simulator::execute(Event& ev) {
  now_ = ev.at;
  ++executed_;
  if (profiler_) {
    const auto t0 = std::chrono::steady_clock::now();
    ev.fn();
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    profile_histogram(ev.tag)->record(us);
  } else {
    ev.fn();
  }
}

void Simulator::run_until(Time until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    // Copy out before pop: the event may schedule more events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    execute(ev);
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    execute(ev);
  }
}

}  // namespace refer::sim
