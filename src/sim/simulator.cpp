#include "sim/simulator.hpp"

#include <cassert>

namespace refer::sim {

void Simulator::schedule_at(Time at, EventFn fn) {
  assert(at >= now_);
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::run_until(Time until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    // Copy out before pop: the event may schedule more events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
}

}  // namespace refer::sim
