// Discrete-event simulation kernel: a clock and an event queue.
//
// This is the ns-2 replacement substrate (see DESIGN.md, Substitutions).
// Events are closures ordered by (time, insertion sequence); the sequence
// tiebreak makes runs bit-deterministic for a fixed seed.
//
// Observability: the kernel always tracks the peak event-queue depth
// (one compare per push).  Attaching a profiler (set_profiler) times the
// wall-clock execution of every event and records it into a per-tag
// histogram "sim.event_us.<tag>" of the given StatsRegistry -- the hook
// every hot-path optimisation PR reports through.  Tags are optional
// static strings passed at scheduling time; untagged events land in
// "sim.event_us.other".  Profiling costs two clock reads per event when
// attached and one branch when not.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace refer {
class StatsRegistry;  // common/stats_registry.hpp
class Histogram;
}  // namespace refer

namespace refer::sim {

/// Simulation time in seconds.
using Time = double;

/// Event-driven simulator.  Single-threaded; protocols schedule closures.
class Simulator {
 public:
  using EventFn = std::function<void()>;

  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now()).  Events at
  /// equal times run in scheduling order.
  void schedule_at(Time at, EventFn fn) {
    schedule_tagged(at, nullptr, std::move(fn));
  }

  /// Like schedule_at, with a profiling tag.  `tag` must outlive the
  /// simulator (pass a string literal); it only matters when a profiler
  /// is attached.
  void schedule_tagged(Time at, const char* tag, EventFn fn);

  /// Schedules `fn` to run `delay` seconds from now.
  void schedule_in(Time delay, EventFn fn) {
    schedule_tagged(now_ + delay, nullptr, std::move(fn));
  }
  void schedule_in_tagged(Time delay, const char* tag, EventFn fn) {
    schedule_tagged(now_ + delay, tag, std::move(fn));
  }

  /// Runs events until the queue is empty or the next event is later than
  /// `until`; the clock ends at max(now, until).
  void run_until(Time until);

  /// Runs everything in the queue.
  void run_all();

  /// Number of events executed so far (for tests and sanity checks).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events still pending.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// High-water mark of the event queue over the simulator's lifetime.
  [[nodiscard]] std::size_t peak_pending() const noexcept {
    return peak_pending_;
  }

  /// Attaches a kernel profiler: each executed event's wall-time (µs) is
  /// recorded into `registry`'s histogram "sim.event_us.<tag>".  Pass
  /// nullptr to detach.  The registry must outlive the attachment.
  void set_profiler(StatsRegistry* registry);

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    const char* tag;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void execute(Event& ev);
  [[nodiscard]] Histogram* profile_histogram(const char* tag);

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
  StatsRegistry* profiler_ = nullptr;
  /// Tag -> histogram cache; tags are interned by pointer (literals), so
  /// a small linear scan beats hashing.
  std::vector<std::pair<const char*, Histogram*>> profile_cache_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace refer::sim
