// Discrete-event simulation kernel: a clock and an event queue.
//
// This is the ns-2 replacement substrate (see DESIGN.md, Substitutions).
// Events are closures ordered by (time, insertion seq); the sequence
// tiebreak makes runs bit-deterministic for a fixed seed.
//
// The scheduling core is allocation-free at steady state (see
// docs/ARCHITECTURE.md, "Event engine"):
//   - Captures are stored in an EventClosure -- inline up to 64 bytes
//     (covers every lambda the codebase schedules), oversized captures
//     through a free-list ClosurePool owned by this simulator.
//   - Events are ordered by a calendar queue (amortised O(1) per
//     operation) by default; QueueEngine::kLegacyHeap restores the
//     original binary heap.  Both engines realise the identical
//     (time, seq) total order, so runs are bit-identical either way --
//     the same contract (and escape hatch style) as the spatial index.
//
// Observability: the kernel always tracks the peak event-queue depth
// (one compare per push).  Attaching a profiler (set_profiler) times the
// wall-clock execution of every event and records it into a per-tag
// histogram "sim.event_us.<tag>" of the given StatsRegistry -- the hook
// every hot-path optimisation PR reports through.  Tags are optional
// static strings passed at scheduling time; untagged events land in
// "sim.event_us.other".  Profiling costs two clock reads per event when
// attached and one branch when not.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/phase_profiler.hpp"
#include "sim/event_closure.hpp"
#include "sim/event_queue.hpp"

namespace refer {
class StatsRegistry;  // common/stats_registry.hpp
class Histogram;
}  // namespace refer

namespace refer::sim {

/// Simulation time in seconds.
using Time = double;

/// Which event-ordering structure the simulator runs on.
enum class QueueEngine {
  kCalendar,    ///< calendar queue, amortised O(1) (default)
  kLegacyHeap,  ///< binary heap, O(log n) (--legacy-event-queue)
};

/// Event-driven simulator.  Single-threaded; protocols schedule closures.
class Simulator {
 public:
  /// Compatibility alias; closures are stored as EventClosure, and a
  /// std::function passed here is just one more 32-byte inline capture.
  using EventFn = std::function<void()>;

  explicit Simulator(QueueEngine engine = QueueEngine::kCalendar) noexcept
      : engine_(engine) {}

  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Switches the ordering engine.  Only valid while the queue is empty
  /// (in practice: right after construction, before any scheduling).
  void set_engine(QueueEngine engine);
  [[nodiscard]] QueueEngine engine() const noexcept { return engine_; }

  /// Schedules `fn` to run at absolute time `at` (>= now()).  Events at
  /// equal times run in scheduling order.
  template <typename F>
  void schedule_at(Time at, F&& fn) {
    schedule_tagged(at, nullptr, std::forward<F>(fn));
  }

  /// Like schedule_at, with a profiling tag.  `tag` must outlive the
  /// simulator (pass a string literal); it only matters when a profiler
  /// is attached.
  template <typename F>
  void schedule_tagged(Time at, const char* tag, F&& fn) {
    schedule_event(at, tag, EventClosure(pool_, std::forward<F>(fn)));
  }

  /// Schedules `fn` to run `delay` seconds from now.
  template <typename F>
  void schedule_in(Time delay, F&& fn) {
    schedule_tagged(now_ + delay, nullptr, std::forward<F>(fn));
  }
  template <typename F>
  void schedule_in_tagged(Time delay, const char* tag, F&& fn) {
    schedule_tagged(now_ + delay, tag, std::forward<F>(fn));
  }

  /// Runs events until the queue is empty or the next event is later than
  /// `until` (an event scheduled exactly at `until` still runs); the
  /// clock ends at max(now, until).
  void run_until(Time until);

  /// Runs everything in the queue.
  void run_all();

  /// Executes exactly one event if any is pending; returns whether one
  /// ran.  Benchmark/test hook for driving the kernel event by event.
  bool step();

  /// Number of events executed so far (for tests and sanity checks).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events still pending.
  [[nodiscard]] std::size_t pending() const noexcept {
    return engine_ == QueueEngine::kCalendar ? calendar_.size()
                                             : heap_.size();
  }

  /// High-water mark of the event queue over the simulator's lifetime.
  [[nodiscard]] std::size_t peak_pending() const noexcept {
    return peak_pending_;
  }

  /// Closure storage counters: inline vs. pooled captures, pool block
  /// traffic.  `pooled_closures == 0` is the capture-audit invariant the
  /// event-engine tests pin for every workload in the repo.
  [[nodiscard]] const ClosurePool::Stats& closure_stats() const noexcept {
    return pool_.stats();
  }

  /// Calendar-queue health (0 rebuilds under the legacy heap).
  [[nodiscard]] std::uint64_t queue_rebuilds() const noexcept {
    return calendar_.rebuilds();
  }

  /// Attaches a kernel profiler: each executed event's wall-time (µs) is
  /// recorded into `registry`'s histogram "sim.event_us.<tag>".  Pass
  /// nullptr to detach.  The registry must outlive the attachment.
  void set_profiler(StatsRegistry* registry);

  /// Attaches the wall-clock phase profiler: every executed event
  /// charges Phase::kKernelDispatch (common/phase_profiler.hpp).  Pass
  /// nullptr to detach; a disabled profiler costs one branch per event.
  void set_phase_profiler(PhaseProfiler* phases) noexcept {
    phase_profiler_ = phases;
  }

 private:
  void schedule_event(Time at, const char* tag, EventClosure fn);
  void execute(Event& ev);
  [[nodiscard]] Histogram* profile_histogram(const char* tag);
  [[nodiscard]] Time next_event_time() {
    return engine_ == QueueEngine::kCalendar ? calendar_.next_time()
                                             : heap_.next_time();
  }
  [[nodiscard]] Event pop_event() {
    return engine_ == QueueEngine::kCalendar ? calendar_.pop() : heap_.pop();
  }

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
  QueueEngine engine_ = QueueEngine::kCalendar;
  StatsRegistry* profiler_ = nullptr;
  PhaseProfiler* phase_profiler_ = nullptr;
  /// Tag -> histogram cache; tags are interned by pointer (literals), so
  /// a small linear scan beats hashing.  Never allocates on the hit path.
  std::vector<std::pair<const char*, Histogram*>> profile_cache_;
  ClosurePool pool_;
  CalendarQueue calendar_;
  LegacyHeap heap_;
};

}  // namespace refer::sim
