// Discrete-event simulation kernel: a clock and an event queue.
//
// This is the ns-2 replacement substrate (see DESIGN.md, Substitutions).
// Events are closures ordered by (time, insertion sequence); the sequence
// tiebreak makes runs bit-deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace refer::sim {

/// Simulation time in seconds.
using Time = double;

/// Event-driven simulator.  Single-threaded; protocols schedule closures.
class Simulator {
 public:
  using EventFn = std::function<void()>;

  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now()).  Events at
  /// equal times run in scheduling order.
  void schedule_at(Time at, EventFn fn);

  /// Schedules `fn` to run `delay` seconds from now.
  void schedule_in(Time delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Runs events until the queue is empty or the next event is later than
  /// `until`; the clock ends at max(now, until).
  void run_until(Time until);

  /// Runs everything in the queue.
  void run_all();

  /// Number of events executed so far (for tests and sanity checks).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events still pending.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace refer::sim
