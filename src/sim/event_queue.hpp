// Event ordering structures for the DES kernel.
//
// Both engines implement the same total order -- (time, insertion seq),
// ascending -- so a run is bit-identical whichever one the simulator
// uses (pinned by tests/event_engine_test.cpp, the same contract the
// spatial index honours for geometry):
//
//   - LegacyHeap: the original binary heap, now a plain vector driven by
//     std::push_heap/pop_heap so dequeue is pop-then-execute instead of
//     the old const_cast-move-from-priority_queue::top() pattern.
//     O(log n) per operation; kept behind --legacy-event-queue as the
//     reference implementation.
//   - CalendarQueue: a classic calendar queue (R. Brown, CACM 1988) --
//     buckets over a rotating time window, amortised O(1) enqueue and
//     dequeue for the near-monotone timestamp streams a WSAN simulation
//     produces.  The bucket count doubles/halves as the population
//     crosses thresholds (like the SpatialIndex bucket heap) and the
//     bucket width is re-derived from the live event span, so both skewed
//     (ack timeouts) and dense (broadcast fan-out) horizons stay cheap.
//
// Neither engine allocates at steady state: bucket vectors and the heap
// vector keep their capacity, and resizes stop once the population peaks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_closure.hpp"

namespace refer::sim {

/// One scheduled closure.  Ordered by (at, seq); seq is the scheduling
/// sequence number, which makes equal-time execution FIFO and runs
/// bit-deterministic for a fixed seed.
struct Event {
  double at = 0;
  std::uint64_t seq = 0;
  const char* tag = nullptr;
  EventClosure fn;
};

/// True when a must run strictly before b.
[[nodiscard]] inline bool runs_before(const Event& a, const Event& b) noexcept {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
}

/// Binary-heap engine (the pre-calendar implementation, kept as the
/// --legacy-event-queue escape hatch and equivalence reference).
class LegacyHeap {
 public:
  void push(Event&& ev);
  /// Removes and returns the (at, seq)-minimum.  Precondition: !empty().
  Event pop();
  /// Time of the next event.  Precondition: !empty().
  [[nodiscard]] double next_time() const noexcept { return heap_[0].at; }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

 private:
  std::vector<Event> heap_;
};

/// Calendar-queue engine (the default).
class CalendarQueue {
 public:
  CalendarQueue();

  void push(Event&& ev);
  /// Removes and returns the (at, seq)-minimum.  Precondition: !empty().
  Event pop();
  /// Time of the next event.  Precondition: !empty().
  [[nodiscard]] double next_time();
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Observability: how often the bucket array was rebuilt (resize or
  /// width change).
  [[nodiscard]] std::uint64_t rebuilds() const noexcept { return rebuilds_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

 private:
  [[nodiscard]] std::size_t bucket_of(double at) const noexcept {
    return static_cast<std::size_t>(at * inv_width_) & mask_;
  }

  /// Locates the (at, seq)-minimum and caches its position.
  void find_min();
  /// Rebuilds with `n_buckets` buckets of `width` seconds.
  void rebuild(std::size_t n_buckets, double width);
  /// Re-derives the width from the live event span and resizes to
  /// `n_buckets`.
  void resize(std::size_t n_buckets);

  std::vector<std::vector<Event>> buckets_;
  std::size_t mask_ = 0;        ///< buckets_.size() - 1 (power of two)
  double width_ = 1.0;          ///< bucket span, seconds
  double inv_width_ = 1.0;      ///< 1 / width_
  double floor_ = 0.0;          ///< dequeue floor: max event time popped
  std::size_t size_ = 0;
  bool min_valid_ = false;      ///< cached minimum position is current
  std::size_t min_bucket_ = 0;
  std::size_t min_index_ = 0;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace refer::sim
