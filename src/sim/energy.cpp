#include "sim/energy.hpp"

#include <cassert>

namespace refer::sim {

void EnergyTracker::resize(std::size_t n) { spent_.resize(n, 0.0); }

void EnergyTracker::charge(std::size_t node, EnergyBucket bucket,
                           double joules) {
  assert(node < spent_.size());
  spent_[node] += joules;
  bucket_totals_[static_cast<int>(bucket)] += joules;
}

void EnergyTracker::charge_tx(std::size_t node, EnergyBucket bucket) {
  ++tx_packets_;
  charge(node, bucket, config_.tx_joules_per_packet);
}

void EnergyTracker::charge_rx(std::size_t node, EnergyBucket bucket) {
  ++rx_packets_;
  charge(node, bucket, config_.rx_joules_per_packet);
}

void EnergyTracker::set_initial_battery(double initial) {
  initial_battery_ = initial;
}

double EnergyTracker::battery(std::size_t node) const {
  assert(node < spent_.size());
  const double left = initial_battery_ - spent_[node];
  return left > 0 ? left : 0.0;
}

double EnergyTracker::total(EnergyBucket bucket) const {
  return bucket_totals_[static_cast<int>(bucket)];
}

double EnergyTracker::communication_total() const {
  return total(EnergyBucket::kData) + total(EnergyBucket::kMaintenance);
}

double EnergyTracker::construction_total() const {
  return total(EnergyBucket::kConstruction);
}

double EnergyTracker::grand_total() const {
  return communication_total() + construction_total();
}

double EnergyTracker::node_total(std::size_t node) const {
  assert(node < spent_.size());
  return spent_[node];
}

}  // namespace refer::sim
