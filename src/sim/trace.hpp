// Structured event tracing (the ns-2 trace-file equivalent).
//
// A Tracer receives one TraceRecord per radio event; sinks decide what to
// do with them (count, filter, write JSONL).  Tracing is off unless a
// sink is attached, and costs one branch per event when off.
//
//   sim::Tracer tracer;
//   sim::JsonlTraceWriter writer("run.jsonl");
//   tracer.set_sink(std::ref(writer));
//   channel.set_tracer(&tracer);
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "sim/energy.hpp"
#include "sim/world.hpp"

namespace refer::sim {

enum class TraceEvent {
  kUnicastQueued,     ///< frame accepted for transmission
  kUnicastDelivered,  ///< frame received (after airtime)
  kUnicastFailed,     ///< receiver unreachable / frame lost
  kBroadcast,         ///< broadcast frame put on the air
  kNodeDown,          ///< node became faulty
  kNodeUp,            ///< node recovered
};

[[nodiscard]] const char* to_string(TraceEvent event) noexcept;

struct TraceRecord {
  double t = 0;
  TraceEvent event = TraceEvent::kUnicastQueued;
  NodeId from = -1;
  NodeId to = -1;  ///< -1 for broadcasts / node events
  std::size_t bytes = 0;
  EnergyBucket bucket = EnergyBucket::kData;
};

/// Dispatch point; protocols and the channel emit through this.
class Tracer {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void clear_sink() { sink_ = nullptr; }
  [[nodiscard]] bool enabled() const noexcept {
    return static_cast<bool>(sink_);
  }

  void emit(const TraceRecord& record) {
    if (sink_) sink_(record);
  }

 private:
  Sink sink_;
};

/// Writes records as JSON lines: one object per event, machine-parsable.
class JsonlTraceWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlTraceWriter(const std::string& path);
  ~JsonlTraceWriter();
  JsonlTraceWriter(const JsonlTraceWriter&) = delete;
  JsonlTraceWriter& operator=(const JsonlTraceWriter&) = delete;

  void operator()(const TraceRecord& record);

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return written_;
  }

 private:
  std::FILE* file_;
  std::uint64_t written_ = 0;
};

/// Sink that only counts events per type (tests, cheap monitoring).
class CountingTraceSink {
 public:
  void operator()(const TraceRecord& record) {
    ++counts_[static_cast<std::size_t>(record.event)];
  }
  [[nodiscard]] std::uint64_t count(TraceEvent event) const {
    return counts_[static_cast<std::size_t>(event)];
  }

 private:
  std::uint64_t counts_[6] = {};
};

}  // namespace refer::sim
