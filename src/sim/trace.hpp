// Structured event tracing (the ns-2 trace-file equivalent).
//
// A Tracer receives one TraceRecord per event; sinks decide what to do
// with them (count, filter, write JSONL).  Tracing is off unless a sink
// is attached, and costs one branch per event when off.
//
// Two event families share the stream:
//   - frame-level events emitted by the Channel / World (kUnicast*,
//     kBroadcast, kNode*), and
//   - routing-level events emitted by protocol routers (kPacket*,
//     kHopForward, kFailover, kQosDeadlineMiss), which carry a
//     router-assigned packet id plus overlay-label context so an offline
//     analyzer (tools/trace_report) can reconstruct per-packet hop
//     chains and audit every Theorem-3.8 fail-over against the Kautz
//     disjoint-route table.  Routers that own an overlay also emit one
//     kTraceHeader record at build time carrying the Kautz degree d, so
//     the analyzer need not infer it from label digits.
//
//   sim::Tracer tracer;
//   sim::JsonlTraceWriter writer("run.jsonl");
//   tracer.set_sink(std::ref(writer));
//   channel.set_tracer(&tracer);
//
// A Tracer (and any sink) is SINGLE-RUN-LOCAL: it belongs to exactly one
// simulation run and is only ever used from the thread executing that
// run.  Under the parallel executor every (system, x, seed) job builds
// its own Deployment and therefore its own Tracer; sharing one tracer
// across jobs would interleave unrelated runs and race on the sink.
// Debug builds assert that all emits come from one thread.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "sim/energy.hpp"
#include "sim/world.hpp"

namespace refer::sim {

enum class TraceEvent {
  kUnicastQueued,     ///< frame accepted for transmission
  kUnicastDelivered,  ///< frame received (after airtime)
  kUnicastFailed,     ///< receiver unreachable / frame lost
  kBroadcast,         ///< broadcast frame put on the air
  kNodeDown,          ///< node became faulty
  kNodeUp,            ///< node recovered
  // Routing-level events (emitted by routers, not the channel).
  kPacketSent,       ///< a packet entered the router
  kHopForward,       ///< one packet-carrying hop succeeded
  kFailover,         ///< relay switched to an alternate successor
  kPacketDropped,    ///< packet terminated undelivered (see DropReason)
  kPacketDelivered,  ///< packet reached its destination
  kQosDeadlineMiss,  ///< delivered, but after the QoS deadline
  kTraceHeader,      ///< run metadata (Kautz degree d), once per trace
  // Application-layer events (emitted by app::ControlLoopEngine; the
  // `packet` field carries the control-loop id where one applies).
  kAppRegister,       ///< sensor (from) registered with actuator (to)
  kAppKeepaliveMiss,  ///< actuator keepalive lapsed (hop = miss count)
  kAppActuate,        ///< actuator (from) issued a command to sensor (to)
  kAppLoopComplete,   ///< command delivered back: the loop closed
  kAppLoopMiss,       ///< loop deadline passed without completion
  kAppActuatorDown,   ///< keepalive misses crossed the limit
  kAppActuatorUp,     ///< repaired actuator re-registered
  /// Sentinel: number of event kinds.  Always keep last; counting sinks
  /// size their arrays from it so adding an event cannot read out of
  /// bounds.
  kTraceEventCount,
};

/// Why a router dropped a packet (kPacketDropped records).
enum class DropReason {
  kNone,                 ///< not a drop record
  kLinkFailed,           ///< a physical transfer failed with no recourse
  kNoActuator,           ///< no alive actuator to route towards
  kOverlayEntryFailed,   ///< greedy walk never reached an overlay member
  kTtlExpired,           ///< hop budget exhausted
  kNoRoute,              ///< no routable target (corner / CAN / bad dst)
  kAllSuccessorsFailed,  ///< every Theorem-3.8 alternative failed
  kFloodFailed,          ///< route-generation flood found no path
  kDropReasonCount,      ///< sentinel; keep last
};

[[nodiscard]] const char* to_string(TraceEvent event) noexcept;
[[nodiscard]] const char* to_string(DropReason reason) noexcept;

struct TraceRecord {
  double t = 0;
  TraceEvent event = TraceEvent::kUnicastQueued;
  NodeId from = -1;
  NodeId to = -1;  ///< -1 for broadcasts / node / packet-scoped events
  std::size_t bytes = 0;
  EnergyBucket bucket = EnergyBucket::kData;
  // Routing-level context (packet-scoped events only; defaults mean
  // "absent" and are omitted from JSONL output).
  std::int64_t packet = -1;  ///< router-assigned packet id
  DropReason reason = DropReason::kNone;
  int hop_index = -1;    ///< overlay (Kautz) hops completed so far
  int alt_index = -1;    ///< failover: index into the alternative list
  int nominal_len = -1;  ///< failover: Theorem 3.8 nominal path length
  int degree = -1;       ///< trace_header: K(d, k) degree of the overlay
  std::string policy;    ///< trace_header: routing policy name (or empty)
  std::string at_label;    ///< current node's overlay label
  std::string dst_label;   ///< intra-cell routing target label
  std::string next_label;  ///< chosen successor's overlay label
};

/// Dispatch point; protocols and the channel emit through this.
class Tracer {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  void set_sink(Sink sink) {
    sink_ = std::move(sink);
#ifndef NDEBUG
    owner_ = std::thread::id{};  // rebinds to the next emitting thread
#endif
  }
  void clear_sink() { sink_ = nullptr; }

  /// Attaches a read-only tap invoked *before* the sink on every record.
  /// The invariant engine (src/verify) listens here so event-granularity
  /// checks run alongside whatever the run already writes to JSONL; a tap
  /// alone also enables emission (a checker needs no trace file).
  void set_tap(Sink tap) { tap_ = std::move(tap); }
  void clear_tap() { tap_ = nullptr; }

  [[nodiscard]] bool enabled() const noexcept {
    return static_cast<bool>(sink_) || static_cast<bool>(tap_);
  }

  void emit(const TraceRecord& record) {
    if (!sink_ && !tap_) return;
#ifndef NDEBUG
    if (owner_ == std::thread::id{}) owner_ = std::this_thread::get_id();
    assert(owner_ == std::this_thread::get_id() &&
           "Tracer is single-run-local: each parallel job must own its "
           "tracer (see Deployment in harness/experiment.cpp)");
#endif
    if (tap_) tap_(record);
    if (sink_) sink_(record);
  }

 private:
  Sink sink_;
  Sink tap_;
#ifndef NDEBUG
  std::thread::id owner_;
#endif
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);
/// Same escaping, appended to `out` without allocating a temporary.
void json_escape_append(std::string& out, std::string_view s);

/// Writes records as JSON lines: one object per event, machine-parsable.
/// Frame-level keys (t/event/from/to/bytes/bucket) are always present;
/// routing-level keys (packet/reason/hop/alt/nominal_len/at/dst/next)
/// appear only on records that set them.
///
/// Records are rendered into a reusable batch buffer and handed to the
/// OS in ~64 KiB fwrite chunks instead of one stream write per record;
/// the harness flushes once at run end (and whenever a mid-run reader --
/// the invariant engine's trace audit -- needs the stream complete).
/// The bytes on disk are identical to the per-record path.
class JsonlTraceWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlTraceWriter(const std::string& path);
  ~JsonlTraceWriter();
  JsonlTraceWriter(const JsonlTraceWriter&) = delete;
  JsonlTraceWriter& operator=(const JsonlTraceWriter&) = delete;

  void operator()(const TraceRecord& record);

  /// Pushes buffered records to disk so another reader (the invariant
  /// engine's end-of-run trace audit) sees the complete stream while
  /// this writer is still alive.
  void flush() noexcept;

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return written_;
  }

 private:
  /// Batch bytes held before an fwrite; also the initial reservation.
  static constexpr std::size_t kBatchBytes = 64 * 1024;

  std::FILE* file_;
  std::string buffer_;  ///< rendered-but-unwritten records
  std::uint64_t written_ = 0;
};

/// Sink that only counts events per type (tests, cheap monitoring).
class CountingTraceSink {
 public:
  void operator()(const TraceRecord& record) {
    ++counts_[static_cast<std::size_t>(record.event)];
  }
  [[nodiscard]] std::uint64_t count(TraceEvent event) const {
    return counts_[static_cast<std::size_t>(event)];
  }

 private:
  std::uint64_t counts_[static_cast<std::size_t>(
      TraceEvent::kTraceEventCount)] = {};
};

}  // namespace refer::sim
