#include "sim/spatial_index.hpp"

#include <cassert>
#include <cmath>

namespace refer::sim {

void SpatialIndex::clear() {
  cells_.clear();
  slots_.clear();
  due_ = {};
  nx_ = ny_ = 0;
}

void SpatialIndex::start_build(Rect bounds, double cell, double slack,
                               double max_speed, std::size_t n) {
  assert(cell > 0);
  clear();
  bounds_ = bounds;
  cell_ = cell;
  inv_cell_ = 1.0 / cell;
  slack_ = slack;
  bucket_width_ = max_speed > 0 ? slack / max_speed
                                : std::numeric_limits<double>::infinity();
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds.width() * inv_cell_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds.height() * inv_cell_)));
  cells_.resize(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_));
  slots_.resize(n);
}

int SpatialIndex::cell_x(double x) const noexcept {
  const int cx = static_cast<int>((x - bounds_.lo.x) * inv_cell_);
  return cx < 0 ? 0 : (cx >= nx_ ? nx_ - 1 : cx);
}

int SpatialIndex::cell_y(double y) const noexcept {
  const int cy = static_cast<int>((y - bounds_.lo.y) * inv_cell_);
  return cy < 0 ? 0 : (cy >= ny_ ? ny_ - 1 : cy);
}

std::int64_t SpatialIndex::bucket_of(Time t) const noexcept {
  if (bucket_width_ == std::numeric_limits<double>::infinity()) return 0;
  return static_cast<std::int64_t>(std::floor(t / bucket_width_));
}

void SpatialIndex::update(NodeId id, Point p, Time valid_until, Time now) {
  assert(id >= 0 && static_cast<std::size_t>(id) < slots_.size());
  Slot& slot = slots_[static_cast<std::size_t>(id)];

  // Unlink from the previous cell (swap-remove, fixing the moved entry's
  // back-pointer).
  if (slot.cell >= 0) {
    Cell& old_cell = cells_[static_cast<std::size_t>(slot.cell)];
    const std::size_t pos = static_cast<std::size_t>(slot.pos);
    const std::size_t last = old_cell.entries.size() - 1;
    if (pos != last) {
      old_cell.entries[pos] = old_cell.entries[last];
      slots_[static_cast<std::size_t>(old_cell.entries[pos].id)].pos =
          static_cast<int>(pos);
    }
    old_cell.entries.pop_back();
  }

  const std::size_t ci = cell_index(cell_x(p.x), cell_y(p.y));
  Cell& cell = cells_[ci];
  slot.cell = static_cast<int>(ci);
  slot.pos = static_cast<int>(cell.entries.size());
  slot.valid_until = valid_until;
  cell.entries.push_back(Entry{p, id});

  if (valid_until != std::numeric_limits<Time>::infinity()) {
    // Always land at least one bucket past `now`, or a deadline inside the
    // current bucket would re-trigger on the very next revalidate() at the
    // same time and loop forever.  The <= one-bucket delay this introduces
    // is covered by the slack budget (see the header comment).
    const std::int64_t bucket =
        std::max(bucket_of(valid_until), bucket_of(now) + 1);
    due_.push(Due{bucket, valid_until, id});
  }
}

void SpatialIndex::collect(Point center, double radius,
                           std::vector<NodeId>& out) const {
  const double r = radius + slack_;
  const double r_sq = r * r;
  const int x0 = cell_x(center.x - r);
  const int x1 = cell_x(center.x + r);
  const int y0 = cell_y(center.y - r);
  const int y1 = cell_y(center.y + r);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      const Cell& cell = cells_[cell_index(cx, cy)];
      for (const Entry& e : cell.entries) {
        if (distance_sq(center, e.p) <= r_sq) out.push_back(e.id);
      }
    }
  }
}

}  // namespace refer::sim
