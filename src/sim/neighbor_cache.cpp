#include "sim/neighbor_cache.hpp"

namespace refer::sim {

void NeighborCache::reset(std::size_t n) {
  n_ = n;
  tables_.clear();
  tables_.reserve(kMaxRangeClasses);
  invalidate();
}

NeighborCache::Table* NeighborCache::table_for(double range) {
  for (Table& t : tables_) {
    if (t.range == range) return &t;
  }
  if (tables_.size() == kMaxRangeClasses) return nullptr;
  Table& t = tables_.emplace_back();
  t.range = range;
  t.begin.resize(n_, 0);
  t.len.resize(n_, 0);
  t.stamp.resize(n_, 0);
  t.row_hits.resize(n_, 0);
  t.skip_epoch.resize(n_, 0);
  t.skips.resize(n_, 0);
  return &t;
}

}  // namespace refer::sim
