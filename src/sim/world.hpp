// The physical deployment: node kinds, positions (via mobility), liveness
// and range queries.
//
// Geometric queries go through a uniform-grid SpatialIndex kept
// incrementally consistent under random-waypoint mobility; results are
// bit-identical to the linear scan (candidates are sorted into ascending
// NodeId order and re-checked against exact live positions).
// set_spatial_index_enabled(false) restores the O(n) scan -- the
// property tests cross-check both paths.
//
// On top of the grid sits a NeighborCache (sim/neighbor_cache.hpp): the
// sorted candidate row of each (node, query radius) pair is remembered
// and reused until any grid re-bin bumps a global epoch, turning repeat
// queries -- the CSMA medium scan fires one per transmission -- into a
// flat array walk.  The exact per-candidate check still runs on live
// positions, so cached results stay bit-identical too;
// set_neighbor_cache_enabled(false) is the escape hatch.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "sim/mobility.hpp"
#include "sim/neighbor_cache.hpp"
#include "sim/simulator.hpp"
#include "sim/spatial_index.hpp"

namespace refer::sim {
class Tracer;  // sim/trace.hpp
}

namespace refer::sim {

enum class NodeKind { kSensor, kActuator };

/// A pool of NodeId buffers leased to in-flight queries.  Queries re-enter:
/// a flood receive handler fired while iterating one neighbour set starts a
/// fresh broadcast that needs its own, so a single scratch vector would be
/// clobbered mid-iteration.  Leases nest like a stack; buffers are never
/// freed, so steady-state queries allocate nothing.
class ScratchPool {
 public:
  class Lease {
   public:
    Lease(ScratchPool& pool, std::vector<NodeId>& buf) noexcept
        : pool_(&pool), buf_(&buf) {}
    Lease(Lease&& o) noexcept : pool_(o.pool_), buf_(o.buf_) {
      o.pool_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (pool_) --pool_->depth_;
    }
    [[nodiscard]] std::vector<NodeId>& operator*() const noexcept {
      return *buf_;
    }

   private:
    ScratchPool* pool_;
    std::vector<NodeId>* buf_;
  };

  [[nodiscard]] Lease acquire() {
    if (depth_ == buffers_.size())
      buffers_.push_back(std::make_unique<std::vector<NodeId>>());
    std::vector<NodeId>& buf = *buffers_[depth_++];
    buf.clear();
    return Lease(*this, buf);
  }

 private:
  // unique_ptr keeps leased buffers stable when the pool vector grows.
  std::vector<std::unique_ptr<std::vector<NodeId>>> buffers_;
  std::size_t depth_ = 0;
};

/// Deployment area + node population.  Owns per-node mobility state and
/// liveness flags; all geometric queries evaluate positions at the current
/// simulator time.
class World {
 public:
  World(Rect area, Simulator& sim) : area_(area), sim_(&sim) {}

  /// Adds a static actuator (paper: actuators are resource-rich and
  /// stationary; transmission range 250 m in the evaluation).
  NodeId add_actuator(Point pos, double range);

  /// Adds a mobile sensor (range 100 m in the evaluation) with
  /// random-waypoint speeds uniform in [min_speed, max_speed].
  NodeId add_sensor(Point pos, double range, double min_speed,
                    double max_speed, Rng rng);

  /// Adds a stationary sensor (ablation: static networks).
  NodeId add_static_sensor(Point pos, double range);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] NodeKind kind(NodeId id) const;
  [[nodiscard]] bool is_actuator(NodeId id) const {
    return kind(id) == NodeKind::kActuator;
  }
  [[nodiscard]] double range(NodeId id) const;
  [[nodiscard]] const Rect& area() const noexcept { return area_; }

  /// Position at the current simulation time.
  [[nodiscard]] Point position(NodeId id);

  /// Liveness: faulty/broken-down nodes neither transmit nor receive.
  [[nodiscard]] bool alive(NodeId id) const;
  void set_alive(NodeId id, bool alive);

  /// Attaches a tracer: liveness flips emit kNodeDown / kNodeUp events.
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attaches the wall-clock phase profiler: every geometric query
  /// (visit_reachable, closest_actuator) charges Phase::kSpatialQuery.
  void set_phase_profiler(PhaseProfiler* phases) noexcept {
    phases_ = phases;
  }

  /// True iff `from` can reach `to` right now: both alive and the distance
  /// is within the *sender's* transmission range.  Already O(1) -- a
  /// single pairwise check needs no index.
  [[nodiscard]] bool can_reach(NodeId from, NodeId to);

  /// Visits every alive node within `from`'s transmission range (excluding
  /// itself) in ascending NodeId order -- identical ids and order to the
  /// linear scan, but via the spatial index and without allocating.
  /// `range_override` > 0 models transmit power control (used by the
  /// embedding protocol's path queries); 0 uses the node's own range.
  template <typename Fn>
  void visit_reachable(NodeId from, Fn&& fn, double range_override = 0) {
    PhaseProfiler::Scope phase(phases_, Phase::kSpatialQuery);
    if (!alive(from)) return;
    const Point p = position(from);
    const double r = range_override > 0 ? range_override : range(from);
    if (index_enabled_ && ensure_index()) {
      const Time now = sim_->now();
      if (cache_enabled_) {
        NeighborCache::Row row;
        if (ncache_.lookup(from, r, row)) {
          walk_row(row, from, p, r, now, fn);
          return;
        }
        // Only pay for a row build when the previous build of this row
        // earned its keep (see NeighborCache::should_fill); a workload
        // that touches each row once per epoch -- every node broadcasting
        // between re-bins -- is faster served by the plain scan below.
        if (ncache_.should_fill(from, r)) {
          ScratchPool::Lease lease = scratch_.acquire();
          std::vector<NodeId>& buf = *lease;
          // A row serves queries until the next re-bin.  Between its
          // build and its last reuse the querying node and any true
          // neighbour have each drifted at most `slack` from their
          // binned anchors (the re-bin IS the moment that bound would
          // break), so the build widens the radius by two slack budgets
          // on top of collect()'s own binned-position expansion: the row
          // stays a superset of every in-range set it serves, and the
          // exact check in walk_row keeps results bit-identical to the
          // uncached scan.
          index_.collect(p, r + 2 * index_.slack(), buf);
          sort_ids(buf);
          index_stats_.queries += 1;
          index_stats_.candidates += buf.size();
          walk_row(
              ncache_.store(from, r, buf,
                            [this](NodeId j) { return index_.anchor(j); }),
              from, p, r, now, fn);
          return;
        }
      }
      ScratchPool::Lease lease = scratch_.acquire();
      std::vector<NodeId>& buf = *lease;
      index_.collect(p, r, buf);
      sort_ids(buf);
      index_stats_.queries += 1;
      index_stats_.candidates += buf.size();
      for (NodeId i : buf) {
        if (i == from) continue;
        Node& n = nodes_[static_cast<std::size_t>(i)];
        if (!n.alive) continue;
        if (within_range(p, n.motion.position_at(now), r)) fn(i);
      }
      return;
    }
    for (NodeId i = 0; static_cast<std::size_t>(i) < nodes_.size(); ++i) {
      if (i == from || !alive(i)) continue;
      if (within_range(p, position(i), r)) fn(i);
    }
  }

  /// reachable_from into a caller-owned buffer (cleared first).
  void reachable_from(NodeId from, std::vector<NodeId>& out,
                      double range_override = 0);

  /// Allocating convenience form of the above.
  [[nodiscard]] std::vector<NodeId> reachable_from(NodeId from,
                                                   double range_override = 0);

  /// All node ids of one kind.
  [[nodiscard]] std::vector<NodeId> all_of(NodeKind kind) const;

  /// The alive actuator physically closest to `id` (or -1 if none).  Ties
  /// go to the lowest id, exactly like the linear scan.
  [[nodiscard]] NodeId closest_actuator(NodeId id);

  /// Toggles the spatial index (on by default).  Off restores the O(n)
  /// linear scans; results are bit-identical either way.
  void set_spatial_index_enabled(bool enabled);
  [[nodiscard]] bool spatial_index_enabled() const noexcept {
    return index_enabled_;
  }

  /// Toggles the neighbor-row cache riding the spatial index (on by
  /// default; moot while the index is off).  Results are bit-identical
  /// either way -- this is the perf escape hatch, like the index toggle.
  void set_neighbor_cache_enabled(bool enabled) noexcept {
    cache_enabled_ = enabled;
  }
  [[nodiscard]] bool neighbor_cache_enabled() const noexcept {
    return cache_enabled_;
  }

  /// Cache health counters, exported as world.neighbor_cache.*
  /// observability.
  [[nodiscard]] const NeighborCache::Stats& neighbor_cache_stats()
      const noexcept {
    return ncache_.stats();
  }

  /// Leases a reusable NodeId buffer for callers that need to materialise
  /// a neighbour set without allocating (e.g. broadcast delivery).
  [[nodiscard]] ScratchPool::Lease lease_scratch() {
    return scratch_.acquire();
  }

  /// Index health counters, exported as world.grid.* observability.
  struct IndexStats {
    std::uint64_t queries = 0;     ///< indexed range queries served
    std::uint64_t candidates = 0;  ///< ids surviving the grid prefilter
    std::uint64_t rebins = 0;      ///< mobility-driven cell moves
    std::uint64_t rebuilds = 0;    ///< full index (re)builds
  };
  [[nodiscard]] const IndexStats& index_stats() const noexcept {
    return index_stats_;
  }

  /// Registers a callback invoked with the node count immediately and then
  /// after every add_* call; returns a token for remove_size_listener.
  /// Lets per-node side tables (Channel's medium state) size themselves
  /// once at attach time instead of checking on every hot-path call.
  int add_size_listener(std::function<void(std::size_t)> fn);
  void remove_size_listener(int token);

 private:
  /// Sorts a candidate buffer into ascending NodeId order.  Candidates
  /// are *unique* (each node is binned in exactly one cell), so instead
  /// of a comparison sort the ids are marked in a bitmap and swept out in
  /// word order -- O(k + n/64) with no data-dependent branches, several
  /// times cheaper than sorting a radio neighbourhood.  Tiny buffers
  /// skip the word sweep; insertion sort wins there.
  void sort_ids(std::vector<NodeId>& buf) {
    if (buf.size() <= 8) {
      for (std::size_t k = 1; k < buf.size(); ++k) {
        const NodeId v = buf[k];
        std::size_t j = k;
        for (; j > 0 && buf[j - 1] > v; --j) buf[j] = buf[j - 1];
        buf[j] = v;
      }
      return;
    }
    const std::size_t words = nodes_.size() / 64 + 1;
    if (mark_.size() < words) mark_.resize(words, 0);
    for (const NodeId i : buf)
      mark_[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1} << (i & 63);
    std::size_t k = 0;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t m = mark_[w];
      if (m == 0) continue;
      mark_[w] = 0;  // clear as we sweep: marks never outlive the call
      const NodeId base = static_cast<NodeId>(w << 6);
      do {
        buf[k++] = base + std::countr_zero(m);
        m &= m - 1;
      } while (m != 0);
    }
    assert(k == buf.size());
  }

  struct Node {
    NodeKind kind;
    double range;
    bool alive = true;
    Waypoint motion;
  };

  /// Exact filter pass shared by the cached fast path: ascending-id
  /// candidates settled by the anchor shortcut where the slack bound is
  /// decisive and re-checked against live positions in the remaining
  /// annulus, so survivors match the uncached scan bit for bit.
  /// Candidates are read back through
  /// (pool, index) rather than a raw pointer because `fn` may re-enter
  /// visit_reachable (flood handlers do) and the nested miss may append
  /// to the same pool, relocating its storage -- indices survive that.
  template <typename Fn>
  void walk_row(NeighborCache::Row row, NodeId from, Point p, double r,
                Time now, Fn&& fn) {
    if (row.anchors != nullptr) {
      // Anchor shortcut: within the epoch every candidate's live
      // position stays within slack of its stored anchor, so the cheap
      // anchor distance settles all but a thin annulus of candidates
      // without evaluating their waypoint positions.  The epsilon keeps
      // floating-point edge cases on the exact-check path; it only
      // narrows the shortcut bands, never changes results.
      const double s = index_.slack() + 1e-6;
      const double reject = (r + s) * (r + s);
      const double accept = r > s ? (r - s) * (r - s) : -1.0;
      for (std::uint32_t k = 0; k < row.len; ++k) {
        const double d2 = distance_sq(p, (*row.anchors)[row.begin + k]);
        if (d2 > reject) continue;  // out of range even after drift
        const NodeId i = (*row.pool)[row.begin + k];
        if (i == from) continue;
        Node& n = nodes_[static_cast<std::size_t>(i)];
        if (!n.alive) continue;
        if (d2 < accept) {  // in range even after drift
          fn(i);
          continue;
        }
        if (within_range(p, n.motion.position_at(now), r)) fn(i);
      }
      return;
    }
    // Range-class overflow rows carry no anchors: exact-check everything.
    for (std::uint32_t k = 0; k < row.len; ++k) {
      const NodeId i = (*row.pool)[row.begin + k];
      if (i == from) continue;
      Node& n = nodes_[static_cast<std::size_t>(i)];
      if (!n.alive) continue;
      if (within_range(p, n.motion.position_at(now), r)) fn(i);
    }
  }

  NodeId add_node(Node node);
  /// Revalidates (or lazily rebuilds) the index for the current time;
  /// false when no index can exist (no nodes / zero ranges).
  bool ensure_index();
  void rebuild_index(Time now);
  /// (Re)bins one node at its exact position with a fresh drift deadline.
  void bin_node(NodeId id, Time now);

  Rect area_;
  Simulator* sim_;
  Tracer* tracer_ = nullptr;
  PhaseProfiler* phases_ = nullptr;
  std::vector<Node> nodes_;

  bool index_enabled_ = true;
  bool index_dirty_ = true;
  bool index_usable_ = false;
  bool cache_enabled_ = true;
  SpatialIndex index_;
  SpatialIndex actuator_index_;  ///< static, never revalidated
  NeighborCache ncache_;
  ScratchPool scratch_;
  std::vector<std::uint64_t> mark_;  ///< sort_ids scratch bitmap
  IndexStats index_stats_;

  std::vector<std::pair<int, std::function<void(std::size_t)>>>
      size_listeners_;
  int next_listener_token_ = 0;
};

}  // namespace refer::sim
