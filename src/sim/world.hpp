// The physical deployment: node kinds, positions (via mobility), liveness
// and range queries.
#pragma once

#include <cstddef>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "sim/mobility.hpp"
#include "sim/simulator.hpp"

namespace refer::sim {
class Tracer;  // sim/trace.hpp
}

namespace refer::sim {

/// Physical node index; dense, assigned by World::add_*.
using NodeId = int;

enum class NodeKind { kSensor, kActuator };

/// Deployment area + node population.  Owns per-node mobility state and
/// liveness flags; all geometric queries evaluate positions at the current
/// simulator time.
class World {
 public:
  World(Rect area, Simulator& sim) : area_(area), sim_(&sim) {}

  /// Adds a static actuator (paper: actuators are resource-rich and
  /// stationary; transmission range 250 m in the evaluation).
  NodeId add_actuator(Point pos, double range);

  /// Adds a mobile sensor (range 100 m in the evaluation) with
  /// random-waypoint speeds uniform in [min_speed, max_speed].
  NodeId add_sensor(Point pos, double range, double min_speed,
                    double max_speed, Rng rng);

  /// Adds a stationary sensor (ablation: static networks).
  NodeId add_static_sensor(Point pos, double range);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] NodeKind kind(NodeId id) const;
  [[nodiscard]] bool is_actuator(NodeId id) const {
    return kind(id) == NodeKind::kActuator;
  }
  [[nodiscard]] double range(NodeId id) const;
  [[nodiscard]] const Rect& area() const noexcept { return area_; }

  /// Position at the current simulation time.
  [[nodiscard]] Point position(NodeId id);

  /// Liveness: faulty/broken-down nodes neither transmit nor receive.
  [[nodiscard]] bool alive(NodeId id) const;
  void set_alive(NodeId id, bool alive);

  /// Attaches a tracer: liveness flips emit kNodeDown / kNodeUp events.
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  /// True iff `from` can reach `to` right now: both alive and the distance
  /// is within the *sender's* transmission range.
  [[nodiscard]] bool can_reach(NodeId from, NodeId to);

  /// All alive nodes within `from`'s transmission range (excluding
  /// itself).  O(n) scan; fine for the evaluation scales (<= ~1000).
  /// `range_override` > 0 models transmit power control (used by the
  /// embedding protocol's path queries); 0 uses the node's own range.
  [[nodiscard]] std::vector<NodeId> reachable_from(NodeId from,
                                                   double range_override = 0);

  /// All node ids of one kind.
  [[nodiscard]] std::vector<NodeId> all_of(NodeKind kind) const;

  /// The alive actuator physically closest to `id` (or -1 if none).
  [[nodiscard]] NodeId closest_actuator(NodeId id);

 private:
  struct Node {
    NodeKind kind;
    double range;
    bool alive = true;
    Waypoint motion;
  };

  Rect area_;
  Simulator* sim_;
  Tracer* tracer_ = nullptr;
  std::vector<Node> nodes_;
};

}  // namespace refer::sim
