// Uniform-grid spatial index over node positions.
//
// Replaces the O(n) World scans (range queries, CSMA medium occupancy,
// nearest-actuator lookup) with cell-local candidate generation.  The
// cell side is a caller policy (World uses a fraction of the maximum
// transmission range; see World::rebuild_index) -- queries visit every
// cell intersecting their radius, so cell size affects only speed,
// never results.
//
// Mobility without per-tick updates: each entry is binned at its exact
// analytic position and carries a *validity deadline* derived from the
// node's current random-waypoint leg -- the time by which the node could
// have drifted more than `slack` metres from where it was binned
// (min(leg end, bin time + slack / leg speed)).  Deadlines are quantized
// into time buckets and kept in a min-heap; revalidate(now) re-bins
// exactly the entries whose bucket has passed.  Static nodes get an
// infinite deadline and are never re-binned.  Queries expand their
// radius by `slack`, so a candidate set built from positions that are at
// most `slack` metres stale is still a superset of the true in-range
// set; the caller's exact range check (on live positions) makes results
// *bit-identical* to a linear scan.
//
// Bucket quantization detail: a re-bin scheduled during revalidation is
// always pushed at least one bucket into the future (otherwise a leg
// ending inside the current bucket would re-queue itself forever).  That
// can delay a re-bin past its deadline by at most one bucket width W, in
// which case the entry drifts at most W * v_max extra metres; choosing
// W = slack / v_max keeps the total drift within `slack` (the index only
// needs validity at revalidate() times -- nothing queries it between).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "common/geometry.hpp"
#include "sim/simulator.hpp"

namespace refer::sim {

/// Physical node index (same meaning as World's NodeId).
using NodeId = int;

class SpatialIndex {
 public:
  [[nodiscard]] bool built() const noexcept { return !cells_.empty(); }

  /// Drops everything; built() becomes false.
  void clear();

  /// (Re)initialises the grid: `bounds` is the deployment area, `cell`
  /// the cell side, `slack` the staleness budget in metres, `max_speed`
  /// the fastest any node can move (sizes the deadline buckets) and `n`
  /// the node-id universe.  Call update() for every node afterwards.
  void start_build(Rect bounds, double cell, double slack, double max_speed,
                   std::size_t n);

  /// Bins (or re-bins) `id` at its exact position `p`, valid until
  /// `valid_until` (+inf = static, never revisited).  `now` anchors the
  /// deadline bucket.
  void update(NodeId id, Point p, Time valid_until, Time now);

  /// Re-bins every entry whose deadline bucket has passed by `now`.
  /// `rebin(id)` must call update(id, fresh position, fresh deadline).
  template <typename RebinFn>
  void revalidate(Time now, RebinFn&& rebin) {
    const std::int64_t current = bucket_of(now);
    while (!due_.empty() && due_.top().bucket <= current) {
      const Due due = due_.top();
      due_.pop();
      if (due.deadline != slots_[static_cast<std::size_t>(due.id)].valid_until)
        continue;  // superseded entry
      rebin(due.id);
    }
  }

  /// Appends to `out` every id binned within `radius + slack` of
  /// `center` (by binned position; the slack expansion makes this a
  /// guaranteed superset of the true in-range set).  Unordered.
  void collect(Point center, double radius, std::vector<NodeId>& out) const;

  /// Visits every id binned in a cell of the Chebyshev ring `k` around
  /// the cell containing `p` (clipped to the grid).  Ring 0 is the cell
  /// itself.  Any binned node lies in some ring <= max_rings().
  template <typename Fn>
  void visit_ring(Point p, int k, Fn&& fn) const {
    const int cx = cell_x(p.x);
    const int cy = cell_y(p.y);
    const auto visit_cell = [&](int x, int y) {
      if (x < 0 || x >= nx_ || y < 0 || y >= ny_) return;
      for (const Entry& e : cells_[cell_index(x, y)].entries) fn(e.id);
    };
    if (k == 0) {
      visit_cell(cx, cy);
      return;
    }
    for (int x = cx - k; x <= cx + k; ++x) {
      visit_cell(x, cy - k);
      visit_cell(x, cy + k);
    }
    for (int y = cy - k + 1; y <= cy + k - 1; ++y) {
      visit_cell(cx - k, y);
      visit_cell(cx + k, y);
    }
  }

  /// Largest ring index that can contain a cell.
  [[nodiscard]] int max_rings() const noexcept {
    return nx_ > ny_ ? nx_ : ny_;
  }

  /// The binned (anchor) position of `id` -- where update() last placed
  /// it.  Until the node's next re-bin its true position stays within
  /// slack() of this anchor (the deadline contract above), which is what
  /// lets the neighbor cache prefilter candidates without evaluating
  /// their live positions.  Only valid for ids currently binned.
  [[nodiscard]] Point anchor(NodeId id) const noexcept {
    const Slot& s = slots_[static_cast<std::size_t>(id)];
    return cells_[static_cast<std::size_t>(s.cell)]
        .entries[static_cast<std::size_t>(s.pos)]
        .p;
  }

  [[nodiscard]] double cell_size() const noexcept { return cell_; }
  [[nodiscard]] double slack() const noexcept { return slack_; }
  [[nodiscard]] const Rect& bounds() const noexcept { return bounds_; }

 private:
  /// One binned node: position first (the prefilter reads it for every
  /// entry, the id only for survivors).
  struct Entry {
    Point p;
    NodeId id;
  };
  /// Per-cell storage: one contiguous entry array, so a query streams a
  /// single buffer per visited cell instead of chasing node state.
  struct Cell {
    std::vector<Entry> entries;
  };
  /// Per-node bookkeeping: which cell the node sits in, where inside its
  /// vectors, and until when the binning is trusted.
  struct Slot {
    int cell = -1;
    int pos = -1;
    Time valid_until = 0;
  };
  struct Due {
    std::int64_t bucket;
    Time deadline;
    NodeId id;
  };
  struct Later {
    bool operator()(const Due& a, const Due& b) const noexcept {
      if (a.bucket != b.bucket) return a.bucket > b.bucket;
      return a.id > b.id;
    }
  };

  [[nodiscard]] int cell_x(double x) const noexcept;
  [[nodiscard]] int cell_y(double y) const noexcept;
  [[nodiscard]] std::size_t cell_index(int cx, int cy) const noexcept {
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(cx);
  }
  [[nodiscard]] std::int64_t bucket_of(Time t) const noexcept;

  Rect bounds_{};
  double cell_ = 0;
  double inv_cell_ = 0;
  double slack_ = 0;
  double bucket_width_ = std::numeric_limits<double>::infinity();
  int nx_ = 0;
  int ny_ = 0;
  std::vector<Cell> cells_;
  std::vector<Slot> slots_;
  std::priority_queue<Due, std::vector<Due>, Later> due_;
};

}  // namespace refer::sim
