// Random-waypoint mobility (paper SIV: "each sensor randomly selects a
// destination point and moves to that point with a speed randomly selected
// from [0, v_max] m/s").
//
// Positions are computed analytically from the current segment, so the
// model costs nothing while a node is not queried.
#pragma once

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace refer::sim {

/// Per-node random-waypoint state.
class Waypoint {
 public:
  /// A static node (actuators): never moves.
  Waypoint(Point fixed_position);

  /// A mobile node roaming `area` with speeds uniform in
  /// [min_speed, max_speed] m/s.  Speeds below kMinMoveSpeed are treated
  /// as a pause of kPauseDuration at the current waypoint, matching the
  /// paper's inclusive [0, v] speed range without producing a stuck node.
  Waypoint(Point start, Rect area, double min_speed, double max_speed,
           Rng rng);

  /// Position at time t (t must not decrease between calls).
  [[nodiscard]] Point position_at(Time t);

  [[nodiscard]] bool is_mobile() const noexcept { return mobile_; }

  /// The speed of the current segment (0 when pausing or static).
  [[nodiscard]] double current_speed() const noexcept { return speed_; }

  /// End time of the current segment (+inf for static nodes).  Together
  /// with current_speed() this bounds how far the node can drift from a
  /// sampled position -- the spatial index derives its re-bin deadlines
  /// from exactly this analytic leg, so static nodes are never re-binned.
  [[nodiscard]] Time segment_end() const noexcept { return arrive_; }

  /// Upper bound on any segment's speed over the node's lifetime (0 for
  /// static nodes): the waypoint draw is uniform in [min, max].
  [[nodiscard]] double max_speed() const noexcept {
    return mobile_ ? max_speed_ : 0.0;
  }

  static constexpr double kMinMoveSpeed = 0.01;   // m/s
  static constexpr double kPauseDuration = 10.0;  // s

 private:
  void next_segment(Time t);

  bool mobile_ = false;
  Rect area_{};
  double min_speed_ = 0;
  double max_speed_ = 0;
  Rng rng_{0};

  Point from_{};
  Point to_{};
  double speed_ = 0;
  Time depart_ = 0;
  Time arrive_ = 0;
};

}  // namespace refer::sim
