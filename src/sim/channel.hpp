// Radio channel + MAC model.
//
// Unit-disk propagation with CSMA-style local medium sharing: a frame
// occupies the air around its sender, so every node in the sender's
// range defers (its own next transmission starts later).  This is what
// makes broadcast storms expensive in *time* as well as energy -- a
// repair flood saturates its area and queues the data packets behind
// it, the effect the paper's throughput/delay figures hinge on.  Each
// frame costs MAC overhead + payload/bandwidth + random contention
// jitter, and unicast delivery requires the receiver to be alive and
// within the sender's range *at delivery time* -- mobility therefore
// breaks links, and the sender learns about it through the missing MAC
// ACK (done(false) after ack_timeout), which triggers fault-tolerant
// fail-over in the protocols.
//
// Energy: every frame transmission charges the sender TX energy; every
// successful reception charges the receiver RX energy (broadcast charges
// every in-range receiver), per the paper's per-packet model.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/phase_profiler.hpp"
#include "common/rng.hpp"
#include "common/stats_registry.hpp"
#include "sim/energy.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace refer::sim {

class TelemetryRecorder;  // sim/telemetry.hpp

/// Medium-access model (ablation knob; kCsma is the evaluated default).
enum class MacMode {
  kCsma,     ///< frames defer the sender's whole neighbourhood (802.11-ish)
  kNullMac,  ///< per-sender serialisation only, infinite spatial reuse
};

struct ChannelConfig {
  double bandwidth_bps = 2e6;        ///< IEEE 802.11 DSSS basic rate
  double mac_overhead_s = 0.6e-3;    ///< DIFS + preamble + ACK exchange
  double max_jitter_s = 1.2e-3;      ///< contention backoff jitter
  double ack_timeout_s = 5e-3;       ///< extra delay before reporting loss
  double loss_probability = 0.0;     ///< random per-frame loss (fault inj.)
  MacMode mac = MacMode::kCsma;
};

/// Channel statistics for tests and the harness.
struct ChannelStats {
  std::uint64_t unicasts_sent = 0;
  std::uint64_t unicasts_delivered = 0;
  std::uint64_t unicasts_failed = 0;
  std::uint64_t broadcasts_sent = 0;
  std::uint64_t broadcast_receptions = 0;
  double total_airtime_s = 0;  ///< summed frame airtime across all senders
};

/// The shared medium.  All protocol communication goes through here so
/// that delay and energy are accounted uniformly.
class Channel {
 public:
  /// Called when a unicast completes: delivered=true on success, false
  /// when the link was broken (out of range / dead node / random loss).
  using UnicastDone = std::function<void(bool delivered)>;
  /// Called once per node that received a broadcast frame.
  using ReceiveFn = std::function<void(NodeId receiver)>;

  Channel(Simulator& sim, World& world, EnergyTracker& energy, Rng rng,
          ChannelConfig config = {});
  ~Channel();

  // The ctor registers a World size listener capturing `this` (it keeps the
  // per-node medium state sized ahead of use); moving or copying would leave
  // that callback dangling.
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  Channel(Channel&&) = delete;
  Channel& operator=(Channel&&) = delete;

  /// Sends `bytes` from `from` to `to`.  `done` fires at delivery time on
  /// success, or after the ACK timeout on failure.  A dead sender fails
  /// immediately.
  void unicast(NodeId from, NodeId to, std::size_t bytes, EnergyBucket bucket,
               UnicastDone done);

  /// One-hop broadcast to every alive node within range at delivery time.
  /// No ACKs: the sender gets no failure feedback (matches 802.11
  /// broadcast).  `on_receive` fires once per receiver.
  /// `range_override` > 0 transmits at reduced power (power control);
  /// 0 uses the sender's full range.
  void broadcast(NodeId from, std::size_t bytes, EnergyBucket bucket,
                 ReceiveFn on_receive, double range_override = 0);

  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }

  /// Per-frame airtime for a payload (without queueing).
  [[nodiscard]] double frame_time(std::size_t bytes) const noexcept;

  /// Cumulative airtime a node has spent transmitting (seconds); the
  /// congestion observable: a relay near 1 s/s of airtime is saturated.
  [[nodiscard]] double node_airtime_s(NodeId node) const;

  /// The `top` busiest transmitters as (node, airtime) pairs, descending.
  [[nodiscard]] std::vector<std::pair<NodeId, double>> busiest_nodes(
      std::size_t top) const;

  /// Attaches a tracer; every frame event is emitted through it.  Pass
  /// nullptr to detach.
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attaches a stats registry: per-frame MAC queue waits (time between a
  /// send request and its TX slot, µs) stream into histogram
  /// "channel.queue_wait_us".  Pass nullptr to detach.  One branch per
  /// frame when detached; sampling never perturbs simulation state.
  void set_stats(StatsRegistry* registry);

  /// Attaches the run's flight recorder: every frame's queue wait also
  /// streams into the per-bucket telemetry series.  Pass nullptr to
  /// detach; same one-branch / never-perturbs contract as set_stats.
  void set_telemetry(TelemetryRecorder* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  /// Attaches the wall-clock phase profiler: the CSMA neighbourhood
  /// defer in reserve_tx_slot charges Phase::kMediumScan.
  void set_phase_profiler(PhaseProfiler* phases) noexcept {
    phases_ = phases;
  }

 private:
  /// Earliest time `node` can start transmitting (its neighbourhood's
  /// medium must be free); reserves the slot for the node *and* defers
  /// every node in range (CSMA).
  Time reserve_tx_slot(NodeId node, double duration);

  Simulator* sim_;
  World* world_;
  EnergyTracker* energy_;
  Rng rng_;
  ChannelConfig config_;
  ChannelStats stats_;
  std::vector<Time> busy_until_;  ///< sized by the World listener, not lazily
  std::vector<double> airtime_;
  int size_listener_ = -1;
  Tracer* tracer_ = nullptr;
  Histogram* queue_wait_us_ = nullptr;  // owned by the attached registry
  TelemetryRecorder* telemetry_ = nullptr;
  PhaseProfiler* phases_ = nullptr;
};

}  // namespace refer::sim
