// Per-node energy accounting (paper SIV: 2 J/packet transmit,
// 0.75 J/packet receive [37]).
//
// Energy is tracked in the buckets the paper's figures separate:
// construction (Fig. 10), and communication = data forwarding + topology
// maintenance (Figs. 5, 9, 11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace refer::sim {

/// Which figure-level account a transmission belongs to.
enum class EnergyBucket {
  kConstruction,  ///< overlay/topology construction messages
  kData,          ///< application data forwarding
  kMaintenance,   ///< topology maintenance (probes, repairs, path updates)
};
inline constexpr int kEnergyBucketCount = 3;

/// Energy model constants and per-node accumulators.
class EnergyTracker {
 public:
  struct Config {
    double tx_joules_per_packet = 2.0;
    double rx_joules_per_packet = 0.75;
  };

  EnergyTracker() = default;
  explicit EnergyTracker(Config config) : config_(config) {}

  /// Registers nodes [0, n).
  void resize(std::size_t n);

  void charge_tx(std::size_t node, EnergyBucket bucket);
  void charge_rx(std::size_t node, EnergyBucket bucket);

  /// Battery level bookkeeping: nodes start with `initial` joules; charge_*
  /// drains the battery.  Sensors with drained batteries are detected by
  /// the maintenance protocol (paper SIII-B4).
  void set_initial_battery(double initial);
  [[nodiscard]] double battery(std::size_t node) const;

  /// Total joules spent in one bucket, across all nodes.
  [[nodiscard]] double total(EnergyBucket bucket) const;
  /// Communication energy as the paper defines it: data + maintenance.
  [[nodiscard]] double communication_total() const;
  /// Construction energy (Fig. 10).
  [[nodiscard]] double construction_total() const;
  /// Everything.
  [[nodiscard]] double grand_total() const;

  /// Per-node spend across all buckets.
  [[nodiscard]] double node_total(std::size_t node) const;

  /// Number of charge_tx / charge_rx calls so far.  The invariant engine
  /// (src/verify) re-derives the bucket drain from these counts -- every
  /// joule must be explained by tx_packets * tx_j + rx_packets * rx_j,
  /// exactly (both sides are multiples of 0.25 J, so no rounding).
  [[nodiscard]] std::uint64_t tx_packets() const noexcept {
    return tx_packets_;
  }
  [[nodiscard]] std::uint64_t rx_packets() const noexcept {
    return rx_packets_;
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  void charge(std::size_t node, EnergyBucket bucket, double joules);

  Config config_{};
  double initial_battery_ = 1e9;
  std::vector<double> spent_;                       // per node
  double bucket_totals_[kEnergyBucketCount] = {0, 0, 0};
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
};

}  // namespace refer::sim
