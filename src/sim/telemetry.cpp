#include "sim/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/channel.hpp"
#include "sim/energy.hpp"

namespace refer::sim {

std::vector<double> TimeSeries::qos_timeline_kbps(
    std::size_t packet_bytes) const {
  // The exact v3 arithmetic (harness record_timeline): count * bits /
  // 1000 / bucket_s -- the back-compat regression test pins identity.
  std::vector<double> out;
  out.reserve(qos_delivered.size());
  const double bits_per_pkt = static_cast<double>(packet_bytes) * 8.0;
  for (const std::uint64_t count : qos_delivered) {
    out.push_back(static_cast<double>(count) * bits_per_pkt / 1000.0 /
                  bucket_s);
  }
  return out;
}

void TelemetryRecorder::start(Simulator& sim, const Channel* channel,
                              const EnergyTracker* energy,
                              std::function<void(GaugeSnapshot&)> gauges,
                              double measure_from, double window_s,
                              double bucket_s, std::size_t n_nodes,
                              PhaseProfiler* phases) {
  assert(bucket_s > 0 && window_s > 0);
  sim_ = &sim;
  channel_ = channel;
  energy_ = energy;
  gauges_ = std::move(gauges);
  phases_ = phases;
  bucket_s_ = bucket_s;
  start_s_ = measure_from;
  window_s_ = window_s;
  n_buckets_ = static_cast<std::size_t>(std::ceil(window_s / bucket_s));
  if (n_buckets_ == 0) n_buckets_ = 1;

  const std::size_t n = n_buckets_;
  series_.bucket_s = bucket_s;
  series_.start_s = measure_from;
  series_.window_s = window_s;
  series_.top_k = kTopK;
  series_.sent.assign(n, 0);
  series_.delivered.assign(n, 0);
  series_.qos_delivered.assign(n, 0);
  series_.failovers.assign(n, 0);
  series_.delay_p50_ms.assign(n, 0.0);
  series_.delay_p95_ms.assign(n, 0.0);
  series_.queue_wait_mean_us.assign(n, 0.0);
  series_.queue_wait_p95_us.assign(n, 0.0);
  series_.channel_busy_fraction.assign(n, 0.0);
  series_.energy_rate_w.assign(n, 0.0);
  series_.event_queue_depth.assign(n, 0);
  series_.route_cache_hit_rate.assign(n, 0.0);
  series_.app_loops_started.assign(n, 0);
  series_.app_loops_ok.assign(n, 0);
  series_.app_loop_mean_ms.assign(n, 0.0);
  series_.top_airtime_node.assign(n * kTopK, -1);
  series_.top_airtime_rate.assign(n * kTopK, 0.0);
  series_.top_energy_node.assign(n * kTopK, -1);
  series_.top_energy_rate_w.assign(n * kTopK, 0.0);
  if (phases_ && phases_->enabled()) {
    series_.phase_wall_us.assign(n * static_cast<std::size_t>(kPhaseCount),
                                 0.0);
  }
  queue_wait_sum_us_.assign(n, 0.0);
  queue_waits_.assign(n, 0);
  app_latency_sum_ms_.assign(n, 0.0);
  app_done_here_.assign(n, 0);
  prev_airtime_s_.assign(n_nodes, 0.0);
  prev_energy_j_.assign(n_nodes, 0.0);

  // Baseline the cumulative gauges at the window start, then one tick
  // per bucket close.  Ticks read state without mutating it; they are
  // scheduled up front, so the steady-state path never allocates.
  sim_->schedule_tagged(start_s_, "telemetry.tick", [this] {
    if (gauges_) gauges_(prev_gauges_);
    if (channel_) {
      for (std::size_t i = 0; i < prev_airtime_s_.size(); ++i) {
        prev_airtime_s_[i] =
            channel_->node_airtime_s(static_cast<NodeId>(i));
      }
    }
    if (energy_) {
      for (std::size_t i = 0; i < prev_energy_j_.size(); ++i) {
        prev_energy_j_[i] = energy_->node_total(i);
      }
    }
    if (phases_) {
      for (int p = 0; p < kPhaseCount; ++p) {
        prev_phase_ns_[static_cast<std::size_t>(p)] =
            phases_->total_ns(static_cast<Phase>(p));
      }
    }
  });
  for (std::size_t b = 0; b < n_buckets_; ++b) {
    const double close =
        start_s_ +
        std::min(static_cast<double>(b + 1) * bucket_s_, window_s_);
    sim_->schedule_tagged(close, "telemetry.tick",
                          [this, b] { gauge_tick(b); });
  }
}

std::size_t TelemetryRecorder::bucket_for_rel(double rel) const noexcept {
  if (rel < 0 || rel > window_s_) return npos;
  const auto b = static_cast<std::size_t>(rel / bucket_s_);
  // rel == window_s (a delivery exactly at the measurement end) and any
  // floating-point spill past the last edge land in the last bucket.
  return b >= n_buckets_ ? n_buckets_ - 1 : b;
}

void TelemetryRecorder::on_send(double t) {
  if (!active()) return;
  const std::size_t b = bucket_for_rel(t - start_s_);
  if (b == npos) {
    if (t - start_s_ > window_s_) ++series_.late_samples;
    return;
  }
  ++series_.sent[b];
}

void TelemetryRecorder::flush_delay_cursor(std::size_t up_to) {
  PercentileCursor& c = delay_cursor_;
  if (c.touched && c.open < n_buckets_) {
    series_.delay_p50_ms[c.open] = c.scratch.quantile(0.50);
    series_.delay_p95_ms[c.open] = c.scratch.quantile(0.95);
    c.scratch.reset();
    c.touched = false;
  }
  c.open = up_to;
}

void TelemetryRecorder::flush_queue_wait_cursor(std::size_t up_to) {
  PercentileCursor& c = queue_wait_cursor_;
  if (c.touched && c.open < n_buckets_) {
    series_.queue_wait_p95_us[c.open] = c.scratch.quantile(0.95);
    c.scratch.reset();
    c.touched = false;
  }
  c.open = up_to;
}

void TelemetryRecorder::on_delivery(double t, double delay_ms, bool qos_ok,
                                    int failovers) {
  if (!active()) return;
  const std::size_t b = bucket_for_rel(t - start_s_);
  if (b == npos) {
    if (t - start_s_ > window_s_) ++series_.late_samples;
    return;
  }
  ++series_.delivered[b];
  if (qos_ok) ++series_.qos_delivered[b];
  series_.failovers[b] += static_cast<std::uint64_t>(std::max(0, failovers));
  // Deliveries arrive in sim-time order, so a sample for a later bucket
  // closes the open one (percentiles flush once per bucket, not per
  // sample).
  assert(b >= delay_cursor_.open);
  if (b != delay_cursor_.open) flush_delay_cursor(b);
  delay_cursor_.scratch.record(delay_ms);
  delay_cursor_.touched = true;
}

void TelemetryRecorder::on_queue_wait(double t, double us) {
  if (!active()) return;
  const std::size_t b = bucket_for_rel(t - start_s_);
  if (b == npos) {
    if (t - start_s_ > window_s_) ++series_.late_samples;
    return;
  }
  queue_wait_sum_us_[b] += us;
  ++queue_waits_[b];
  assert(b >= queue_wait_cursor_.open);
  if (b != queue_wait_cursor_.open) flush_queue_wait_cursor(b);
  queue_wait_cursor_.scratch.record(us);
  queue_wait_cursor_.touched = true;
}

void TelemetryRecorder::on_app_loop_start(double t) {
  if (!active()) return;
  const std::size_t b = bucket_for_rel(t - start_s_);
  if (b == npos) return;
  ++series_.app_loops_started[b];
}

void TelemetryRecorder::on_app_loop_done(double sense_t, bool within_deadline,
                                         double latency_ms) {
  if (!active()) return;
  // Bucketed by sense time: completions of loops sensed in bucket b
  // count toward b even when they finish later, so a fault window's
  // loop failures dip exactly the buckets that overlap the fault.
  // Sense times across loops are NOT monotone at completion, hence
  // plain sum/count arrays instead of a percentile cursor.
  const std::size_t b = bucket_for_rel(sense_t - start_s_);
  if (b == npos) return;
  if (within_deadline) ++series_.app_loops_ok[b];
  app_latency_sum_ms_[b] += latency_ms;
  ++app_done_here_[b];
}

void TelemetryRecorder::gauge_tick(std::size_t bucket) {
  const double span =
      std::min(window_s_ - static_cast<double>(bucket) * bucket_s_,
               bucket_s_);
  GaugeSnapshot cur;
  if (gauges_) gauges_(cur);
  series_.channel_busy_fraction[bucket] =
      (cur.channel_airtime_s - prev_gauges_.channel_airtime_s) / span;
  series_.energy_rate_w[bucket] =
      (cur.energy_j - prev_gauges_.energy_j) / span;
  const std::uint64_t dh = cur.route_cache_hits - prev_gauges_.route_cache_hits;
  const std::uint64_t dm =
      cur.route_cache_misses - prev_gauges_.route_cache_misses;
  series_.route_cache_hit_rate[bucket] =
      (dh + dm) ? static_cast<double>(dh) / static_cast<double>(dh + dm)
                : 0.0;
  series_.event_queue_depth[bucket] = sim_->pending();
  prev_gauges_ = cur;

  // Top-K scans: one pass over the per-node tables, small insertion
  // sort into the K slots.  No allocation.
  const std::size_t base = bucket * static_cast<std::size_t>(kTopK);
  auto top_insert = [](std::int32_t* nodes, double* rates, std::int32_t node,
                       double rate) {
    for (int k = 0; k < kTopK; ++k) {
      if (rate > rates[k]) {
        for (int j = kTopK - 1; j > k; --j) {
          rates[j] = rates[j - 1];
          nodes[j] = nodes[j - 1];
        }
        rates[k] = rate;
        nodes[k] = node;
        return;
      }
    }
  };
  if (channel_) {
    for (std::size_t i = 0; i < prev_airtime_s_.size(); ++i) {
      const double cur_air = channel_->node_airtime_s(static_cast<NodeId>(i));
      const double rate = (cur_air - prev_airtime_s_[i]) / span;
      prev_airtime_s_[i] = cur_air;
      if (rate > 0) {
        top_insert(&series_.top_airtime_node[base],
                   &series_.top_airtime_rate[base],
                   static_cast<std::int32_t>(i), rate);
      }
    }
  }
  if (energy_) {
    for (std::size_t i = 0; i < prev_energy_j_.size(); ++i) {
      const double cur_j = energy_->node_total(i);
      const double rate = (cur_j - prev_energy_j_[i]) / span;
      prev_energy_j_[i] = cur_j;
      if (rate > 0) {
        top_insert(&series_.top_energy_node[base],
                   &series_.top_energy_rate_w[base],
                   static_cast<std::int32_t>(i), rate);
      }
    }
  }
  if (!series_.phase_wall_us.empty() && phases_) {
    for (int p = 0; p < kPhaseCount; ++p) {
      const auto idx = static_cast<std::size_t>(p);
      const std::uint64_t ns = phases_->total_ns(static_cast<Phase>(p));
      series_.phase_wall_us[bucket * static_cast<std::size_t>(kPhaseCount) +
                            idx] =
          static_cast<double>(ns - prev_phase_ns_[idx]) / 1000.0;
      prev_phase_ns_[idx] = ns;
    }
  }
}

void TelemetryRecorder::finalize() {
  if (!active()) return;
  // Queue-wait means from the out-of-band sums; percentile cursors
  // flush their open bucket.
  flush_delay_cursor(n_buckets_);
  flush_queue_wait_cursor(n_buckets_);
  for (std::size_t b = 0; b < n_buckets_; ++b) {
    if (queue_waits_[b]) {
      series_.queue_wait_mean_us[b] =
          queue_wait_sum_us_[b] / static_cast<double>(queue_waits_[b]);
    }
    if (app_done_here_[b]) {
      series_.app_loop_mean_ms[b] =
          app_latency_sum_ms_[b] / static_cast<double>(app_done_here_[b]);
    }
  }
}

}  // namespace refer::sim
