#include "sim/mobility.hpp"

#include <cassert>
#include <limits>

namespace refer::sim {

Waypoint::Waypoint(Point fixed_position)
    : from_(fixed_position),
      to_(fixed_position),
      arrive_(std::numeric_limits<double>::infinity()) {}

Waypoint::Waypoint(Point start, Rect area, double min_speed, double max_speed,
                   Rng rng)
    : mobile_(true),
      area_(area),
      min_speed_(min_speed),
      max_speed_(max_speed),
      rng_(rng),
      from_(start),
      to_(start) {
  next_segment(0.0);
}

Point Waypoint::position_at(Time t) {
  if (!mobile_) return from_;
  while (t >= arrive_) next_segment(arrive_);
  if (speed_ <= 0) return from_;  // pausing
  const double frac = (t - depart_) / (arrive_ - depart_);
  return from_ + (to_ - from_) * frac;
}

void Waypoint::next_segment(Time t) {
  // Only called at segment boundaries (t == arrive_) or at construction,
  // so the node is at the end of the previous segment.
  from_ = to_;
  depart_ = t;
  const double speed = rng_.uniform(min_speed_, max_speed_);
  if (speed < kMinMoveSpeed) {
    // Pause in place, as a node that drew (close to) zero speed.
    speed_ = 0;
    to_ = from_;
    arrive_ = t + kPauseDuration;
    return;
  }
  speed_ = speed;
  to_ = Point{rng_.uniform(area_.lo.x, area_.hi.x),
              rng_.uniform(area_.lo.y, area_.hi.y)};
  const double dist = distance(from_, to_);
  arrive_ = t + (dist > 0 ? dist / speed : kPauseDuration);
}

}  // namespace refer::sim
