#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace refer::sim {

namespace {

/// std::*_heap comparator: "less" orders the (at, seq)-minimum to the
/// front of the max-heap.
struct Later {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return runs_before(b, a);
  }
};

constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
constexpr std::size_t kBucketReserve = 4;
constexpr double kMinWidth = 1e-9;

}  // namespace

void LegacyHeap::push(Event&& ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Event LegacyHeap::pop() {
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

CalendarQueue::CalendarQueue() { rebuild(kMinBuckets, 1.0); }

void CalendarQueue::push(Event&& ev) {
  const std::size_t b = bucket_of(ev.at);
  // A freshly pushed event can only displace the cached minimum, never
  // move it: pushes append, pops are what invalidate positions.
  if (min_valid_ &&
      runs_before(ev, buckets_[min_bucket_][min_index_])) {
    min_bucket_ = b;
    min_index_ = buckets_[b].size();
  }
  buckets_[b].push_back(std::move(ev));
  ++size_;
  if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    resize(buckets_.size() * 2);
  }
}

Event CalendarQueue::pop() {
  assert(size_ > 0);
  if (!min_valid_) find_min();
  std::vector<Event>& bucket = buckets_[min_bucket_];
  Event ev = std::move(bucket[min_index_]);
  if (min_index_ + 1 != bucket.size()) {
    bucket[min_index_] = std::move(bucket.back());
  }
  bucket.pop_back();
  --size_;
  floor_ = ev.at;
  min_valid_ = false;
  if (size_ < buckets_.size() / 2 && buckets_.size() > kMinBuckets) {
    resize(buckets_.size() / 2);
  }
  return ev;
}

double CalendarQueue::next_time() {
  assert(size_ > 0);
  if (!min_valid_) find_min();
  return buckets_[min_bucket_][min_index_].at;
}

void CalendarQueue::find_min() {
  assert(size_ > 0);
  const std::size_t n = buckets_.size();
  // Year scan: walk one window of buckets starting at the dequeue floor.
  // A bucket's minimum always belongs to the earliest epoch present in
  // it, so if that minimum falls inside the bucket's slice of the
  // current window it is the global minimum among all events at or
  // after the floor.
  const double base = std::floor(floor_ * inv_width_);
  const std::size_t start = bucket_of(floor_);
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t bi = (start + step) & mask_;
    const std::vector<Event>& bucket = buckets_[bi];
    if (bucket.empty()) continue;
    std::size_t best = 0;
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      if (runs_before(bucket[i], bucket[best])) best = i;
    }
    const double bucket_top =
        (base + static_cast<double>(step) + 1.0) * width_;
    if (bucket[best].at < bucket_top) {
      min_bucket_ = bi;
      min_index_ = best;
      min_valid_ = true;
      return;
    }
  }
  // Sparse window: every event lives beyond the current year.  Direct
  // search for the global minimum and jump the floor there, so the next
  // year scan starts at the right epoch.
  bool found = false;
  for (std::size_t bi = 0; bi < n; ++bi) {
    const std::vector<Event>& bucket = buckets_[bi];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (!found ||
          runs_before(bucket[i], buckets_[min_bucket_][min_index_])) {
        min_bucket_ = bi;
        min_index_ = i;
        found = true;
      }
    }
  }
  assert(found);
  min_valid_ = true;
  floor_ = buckets_[min_bucket_][min_index_].at;
}

void CalendarQueue::rebuild(std::size_t n_buckets, double width) {
  std::vector<Event> all;
  all.reserve(size_);
  for (std::vector<Event>& bucket : buckets_) {
    for (Event& ev : bucket) all.push_back(std::move(ev));
    bucket.clear();
  }
  buckets_.resize(n_buckets);
  // Pre-size every bucket so steady-state rotation never first-touches a
  // cold vector: with the resize policy holding avg occupancy <= 2, a
  // four-event reservation makes post-rebuild pushes allocation-free
  // (the zero-allocation kernel tests pin this).
  for (std::vector<Event>& bucket : buckets_) {
    if (bucket.capacity() < kBucketReserve) bucket.reserve(kBucketReserve);
  }
  mask_ = n_buckets - 1;
  width_ = width;
  inv_width_ = 1.0 / width;
  for (Event& ev : all) {
    buckets_[bucket_of(ev.at)].push_back(std::move(ev));
  }
  min_valid_ = false;
  ++rebuilds_;
}

void CalendarQueue::resize(std::size_t n_buckets) {
  // Re-derive the bucket width so a window bucket holds O(1) events:
  // three average inter-event gaps, from the live population's span.
  double lo = 0, hi = 0;
  bool first = true;
  for (const std::vector<Event>& bucket : buckets_) {
    for (const Event& ev : bucket) {
      if (first) {
        lo = hi = ev.at;
        first = false;
      } else {
        lo = std::min(lo, ev.at);
        hi = std::max(hi, ev.at);
      }
    }
  }
  double width = 1.0;
  if (size_ > 1 && hi > lo) {
    width = std::max(3.0 * (hi - lo) / static_cast<double>(size_),
                     kMinWidth);
  }
  rebuild(n_buckets, width);
}

}  // namespace refer::sim
