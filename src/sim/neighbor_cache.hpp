// Epoch-validated neighbor-row cache over the spatial grid.
//
// Every CSMA medium scan (Channel::reserve_tx_slot), broadcast receiver
// materialisation and routing reachable query funnels through
// World::visit_reachable, which -- with only the grid -- walks the cells
// intersecting the query radius, gathers candidates and sorts them into
// ascending NodeId order *per query*.  Under load the same node queries
// the same radius thousands of times between mobility re-bins, so the
// cell walk + sort is pure repetition.  This cache remembers the sorted
// candidate row per (node, range class) and turns repeat queries into a
// linear walk of a flat array.
//
// Layout: one Table per distinct query radius ("range class" -- sensor
// range, actuator range, and any range_override such as flooding's
// query_tx_range).  Each table is CSR-shaped: per-node (begin, len)
// offsets into one shared append-only pool of NodeIds, rows stored in
// ascending id order.  Rows for different nodes share the pool, so a
// table's steady-state footprint is O(sum of row lengths) and rebuilding
// a row after an invalidation reuses the pool's capacity -- no
// steady-state allocations (pinned by a counting-operator-new test).
//
// Correctness rides the SpatialIndex validity deadlines.  The index
// guarantees every binned position is at most `slack` metres stale at
// revalidate() times; a re-bin is exactly the moment that guarantee was
// about to expire for some node.  The cache therefore keys validity on a
// single global epoch: any re-bin (or full rebuild) bumps it, and a row
// stamped with an older epoch is a miss.  Within one epoch the querying
// node and any true neighbour have each drifted at most `slack` from the
// positions the row was built against, so a row built from
// collect(p, r + 2*slack) -- collect() itself adds a third slack for
// binned-position staleness -- remains a *superset* of the true in-range
// set for every query it serves.  The caller's exact per-candidate check
// (alive + within_range on live positions, ascending id order) then
// yields results bit-identical to the uncached scan.  Liveness flips
// need no invalidation at all: dead nodes stay binned and are filtered
// by the exact pass, exactly as on the uncached path.
//
// The superset would make cached walks *slower* than uncached queries if
// every candidate still needed its live position evaluated: the row is
// ~(1 + 2*slack/r)^2 wider in area than an uncached candidate set, and
// the per-candidate waypoint interpolation dominates walk cost.  So each
// row also stores every candidate's binned anchor.  Within the epoch a
// candidate's live position stays within `slack` of its anchor, giving
// the walk a two-sided shortcut on the cheap anchor distance d:
//   d > r + slack  =>  certainly out of range, skip;
//   d < r - slack  =>  certainly in range, accept;
// only the thin annulus in between needs the exact live-position check.
// Both bands carry a small epsilon so floating-point edge cases fall
// through to the exact check rather than trusting the bound to the ulp.
//
// Row storage is read back through (pool, index) pairs rather than raw
// pointers: a query handler may re-enter visit_reachable (flooding does),
// and the nested miss may append to the same pool, relocating its heap
// buffer.  Indices survive that; pointers would dangle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/spatial_index.hpp"  // NodeId

namespace refer::sim {

class NeighborCache {
 public:
  /// Distinct query radii cached simultaneously.  Workloads use two or
  /// three (sensor range, actuator range, flooding's query_tx_range);
  /// radii beyond the cap are served uncached rather than evicting.
  static constexpr std::size_t kMaxRangeClasses = 8;

  /// A view of one cached row.  `pool` is the owning table's id pool (or
  /// the caller's own buffer when the range class overflowed the cap);
  /// elements are pool[begin] .. pool[begin + len - 1], ascending ids.
  /// `anchors` runs parallel to `pool` with each candidate's binned
  /// position, or is null on range-class overflow (the caller then skips
  /// the anchor prefilter and exact-checks every candidate).
  struct Row {
    const std::vector<NodeId>* pool = nullptr;
    const std::vector<Point>* anchors = nullptr;
    std::uint32_t begin = 0;
    std::uint32_t len = 0;
  };

  /// Counters exported as world.neighbor_cache.* observability.
  struct Stats {
    std::uint64_t hits = 0;           ///< queries served from a cached row
    std::uint64_t rebuilds = 0;       ///< rows (re)built from the grid
    std::uint64_t invalidations = 0;  ///< epoch bumps (re-bins + rebuilds)
    std::uint64_t skipped_fills = 0;  ///< misses served uncached (heuristic)
  };

  /// New node universe (full index rebuild / node added).  Drops every
  /// table; range classes are rediscovered on first use.
  void reset(std::size_t n);

  /// Kills every cached row (O(1): bumps the epoch; rows die lazily on
  /// lookup, pools are recycled on the first store of the new epoch).
  /// Called per spatial-index re-bin -- the moment a binned position's
  /// slack guarantee expired.
  void invalidate() noexcept {
    ++epoch_;
    ++stats_.invalidations;
  }

  /// True when `id` has a current-epoch row for range class `range`;
  /// fills `out` with a view of it.
  [[nodiscard]] bool lookup(NodeId id, double range, Row& out) noexcept {
    for (Table& t : tables_) {
      if (t.range == range) {
        const auto slot = static_cast<std::size_t>(id);
        if (t.stamp[slot] != epoch_) return false;
        out.pool = &t.pool;
        out.anchors = &t.apool;
        out.begin = t.begin[slot];
        out.len = t.len[slot];
        if (t.row_hits[slot] < 255) ++t.row_hits[slot];
        ++stats_.hits;
        return true;
      }
    }
    return false;
  }

  /// Refill gate: hits the last build must have collected for its next
  /// rebuild to be worth paying for eagerly.  A build costs roughly two
  /// plain grid scans (the collect radius is widened by two slack
  /// budgets, and the sorted ids plus their anchors are copied into the
  /// pools) while a hit saves most of one scan, so one hit per build --
  /// exactly what a broadcast produces, its CSMA medium scan filling the
  /// row and its receiver materialisation consuming it -- never pays the
  /// build back.  Two hits break even; beyond that the cache wins.
  static constexpr std::uint8_t kRefillHitThreshold = 2;

  /// Cheap staleness heuristic, consulted on a lookup miss before paying
  /// for a rebuild.  Rows whose previous build amortised (>= threshold
  /// hits before the epoch killed it) refill eagerly.  Cold rows -- the
  /// one-broadcast-per-node-per-epoch shape behind the
  /// BM_BroadcastReceivers_Cache n=4000 regression -- are served straight
  /// from the grid instead: returns false and charges skipped_fills.  At
  /// most two misses per row per epoch are skipped; a third miss in one
  /// epoch is proof of real reuse, so filling resumes (and the hits that
  /// build then collects decide the next epoch eagerly).  Purely a
  /// performance decision -- the uncached scan is exact, so results are
  /// bit-identical either way.
  [[nodiscard]] bool should_fill(NodeId id, double range) noexcept {
    for (Table& t : tables_) {
      if (t.range != range) continue;
      const auto slot = static_cast<std::size_t>(id);
      if (t.stamp[slot] == 0) return true;  // never built: no history
      if (t.row_hits[slot] >= kRefillHitThreshold) return true;
      if (t.skip_epoch[slot] != epoch_) {
        t.skip_epoch[slot] = epoch_;
        t.skips[slot] = 1;
      } else if (t.skips[slot] >= 2) {
        return true;  // third miss this epoch: reuse is real again
      } else {
        ++t.skips[slot];
      }
      ++stats_.skipped_fills;
      return false;
    }
    return true;  // new range class: no history to judge, build the row
  }

  /// Records `ids` (ascending, unique) as `id`'s row for range class
  /// `range` and returns a view of the stored copy.  `anchor_of(nid)`
  /// must return the candidate's binned anchor position (the prefilter
  /// contract above); World passes SpatialIndex::anchor.  When the
  /// range-class cap is hit the row is not stored and the view aliases
  /// `ids` itself with null `anchors` -- the caller's buffer must outlive
  /// the returned Row either way.
  template <typename AnchorFn>
  Row store(NodeId id, double range, const std::vector<NodeId>& ids,
            AnchorFn&& anchor_of) {
    ++stats_.rebuilds;
    Row row;
    row.len = static_cast<std::uint32_t>(ids.size());
    Table* t = table_for(range);
    if (!t) {
      // Range-class overflow: serve this query from the caller's buffer.
      row.pool = &ids;
      return row;
    }
    if (t->pool_epoch != epoch_) {
      // First row of a new epoch: every old row is dead, recycle the
      // pools (capacity is kept, so steady-state rebuilds allocate
      // nothing).
      t->pool.clear();
      t->apool.clear();
      t->pool_epoch = epoch_;
    }
    row.begin = static_cast<std::uint32_t>(t->pool.size());
    t->pool.insert(t->pool.end(), ids.begin(), ids.end());
    for (const NodeId nid : ids) t->apool.push_back(anchor_of(nid));
    const auto slot = static_cast<std::size_t>(id);
    t->begin[slot] = row.begin;
    t->len[slot] = row.len;
    t->stamp[slot] = epoch_;
    t->row_hits[slot] = 0;  // should_fill judges this build by its hits
    row.pool = &t->pool;
    row.anchors = &t->apool;
    return row;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Table {
    double range = 0;
    std::uint64_t pool_epoch = 0;      ///< epoch the pool was last recycled for
    std::vector<std::uint32_t> begin;  ///< per-node row offset into pool
    std::vector<std::uint32_t> len;    ///< per-node row length
    std::vector<std::uint64_t> stamp;  ///< per-node build epoch (0 = never)
    std::vector<std::uint8_t> row_hits;  ///< hits on the node's last build
    std::vector<std::uint64_t> skip_epoch;  ///< epoch of the last skipped fill
    std::vector<std::uint8_t> skips;   ///< fills skipped within skip_epoch
    std::vector<NodeId> pool;          ///< shared row storage, append-only
    std::vector<Point> apool;          ///< candidate anchors, parallel to pool
  };

  Table* table_for(double range);

  // reserve()d to kMaxRangeClasses in reset(): Row::pool points into a
  // Table, so tables_ must never relocate while rows are live.
  std::vector<Table> tables_;
  std::uint64_t epoch_ = 1;  ///< starts above the stamp default of 0
  std::size_t n_ = 0;
  Stats stats_;
};

}  // namespace refer::sim
