// Flight recorder: allocation-free per-bucket time-series telemetry.
//
// A TelemetryRecorder rides one run's event kernel and turns the
// end-of-run aggregates into *time-resolved* series: the measurement
// window [measure_from, measure_from + window_s] is tiled into buckets
// of Scenario::timeline_bucket_s seconds, and every bucket records
//
//   - workload: packets sent / delivered / QoS-delivered, delivery delay
//     p50/p95 within the bucket, fail-over count;
//   - medium: MAC queue-wait mean/p95 (us) and the channel busy fraction
//     (summed frame airtime per bucket second);
//   - hot spots: the top-K transmitters by airtime rate and the top-K
//     nodes by energy drain rate within the bucket;
//   - kernel: event-queue depth sampled at the bucket boundary;
//   - system: route-cache hit rate (REFER), energy drain rate;
//   - app tier: control loops started / completed-in-deadline, latency
//     mean -- bucketed by *sense* time so fault dips align with their
//     cause;
//   - wall clock: per-phase wall-time deltas (common/phase_profiler.hpp)
//     when phase profiling is on.
//
// Allocation contract (the PR-5 counting-operator-new bar): start()
// preallocates every buffer; the record hooks and the bucket-boundary
// gauge ticks write into flat arrays and allocate NOTHING in steady
// state -- telemetry_test pins this with the global new hook.
//
// Determinism contract: gauge ticks are ordinary kernel events (they
// shift event sequence numbers, so sim.events_executed / peak depth
// differ between timeline-on and timeline-off runs, exactly like the
// profile flag), but they read simulation state without mutating it and
// draw no randomness.  Every deterministic series is bit-identical
// serial vs. parallel and across the calendar/legacy queue engines;
// only the phase_wall series (wall clock) is exempt.
//
// Bucket-edge semantics: bucket i covers [i*b, (i+1)*b) relative to
// measure_from, except the LAST bucket which closes at window_s
// inclusive -- a delivery landing exactly at the measurement end belongs
// to the last bucket (previously it fell off the ceil(window/b) edge).
// Samples after window_s (the drain period) are dropped from the series
// but counted in late_samples so nothing disappears silently.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/phase_profiler.hpp"
#include "common/stats_registry.hpp"
#include "sim/simulator.hpp"

namespace refer::sim {

class Channel;        // sim/channel.hpp
class EnergyTracker;  // sim/energy.hpp

/// One run's complete per-bucket series; RunMetrics::timeseries and the
/// "timeseries" section of the schema-v4 results JSON.  All per-bucket
/// vectors share the same length (buckets()); the top_* vectors are
/// flattened [bucket * top_k + k] with node -1 in unused slots, and
/// phase_wall_us is flattened [bucket * kPhaseCount + phase] (empty
/// unless phase profiling was on).
struct TimeSeries {
  double bucket_s = 0;  ///< 0 = no telemetry was recorded
  double start_s = 0;   ///< absolute sim time of bucket 0's left edge
  double window_s = 0;  ///< measured window length (Scenario::measure_s)
  int top_k = 0;

  std::vector<std::uint64_t> sent;
  std::vector<std::uint64_t> delivered;
  std::vector<std::uint64_t> qos_delivered;
  std::vector<std::uint64_t> failovers;
  std::vector<double> delay_p50_ms;
  std::vector<double> delay_p95_ms;
  std::vector<double> queue_wait_mean_us;
  std::vector<double> queue_wait_p95_us;
  std::vector<double> channel_busy_fraction;
  std::vector<double> energy_rate_w;  ///< joules drained per second
  std::vector<std::uint64_t> event_queue_depth;
  std::vector<double> route_cache_hit_rate;  ///< 0 when no lookups
  std::vector<std::uint64_t> app_loops_started;
  std::vector<std::uint64_t> app_loops_ok;  ///< completed within deadline
  std::vector<double> app_loop_mean_ms;     ///< over loops completed here

  std::vector<std::int32_t> top_airtime_node;
  std::vector<double> top_airtime_rate;  ///< airtime seconds per second
  std::vector<std::int32_t> top_energy_node;
  std::vector<double> top_energy_rate_w;

  std::vector<double> phase_wall_us;  ///< [bucket * kPhaseCount + phase]

  /// Samples whose time fell after window_s (delivered during the drain
  /// period); excluded from every bucket.
  std::uint64_t late_samples = 0;

  [[nodiscard]] std::size_t buckets() const noexcept { return sent.size(); }

  /// The legacy v3 qos_timeline_kbps vector, re-derived bit-identically:
  /// qos_delivered[b] * packet_bytes * 8 / 1000 / bucket_s.
  [[nodiscard]] std::vector<double> qos_timeline_kbps(
      std::size_t packet_bytes) const;
};

/// Cumulative gauge values the harness-side source fills at every bucket
/// boundary; the recorder stores per-bucket deltas/rates.
struct GaugeSnapshot {
  double channel_airtime_s = 0;  ///< ChannelStats::total_airtime_s
  double energy_j = 0;           ///< EnergyTracker::grand_total()
  std::uint64_t route_cache_hits = 0;
  std::uint64_t route_cache_misses = 0;
};

class TelemetryRecorder {
 public:
  /// Hot-spot slots per bucket (top transmitters / top energy drains).
  static constexpr int kTopK = 3;

  /// Preallocates all series storage and schedules one gauge tick per
  /// bucket boundary on `sim`.  `channel` / `energy` provide the
  /// per-node airtime and battery-drain scans (either may be nullptr --
  /// the corresponding top-K series stays at node -1); `gauges` is
  /// invoked at each boundary to fill cumulative totals (set once here;
  /// the call itself must not allocate).  `n_nodes` sizes the per-node
  /// previous-value tables.  `phases`, when non-null and enabled,
  /// contributes the per-bucket wall-clock attribution series.
  void start(Simulator& sim, const Channel* channel,
             const EnergyTracker* energy,
             std::function<void(GaugeSnapshot&)> gauges, double measure_from,
             double window_s, double bucket_s, std::size_t n_nodes,
             PhaseProfiler* phases);

  [[nodiscard]] bool active() const noexcept { return bucket_s_ > 0; }

  // ---- hot-path record hooks (allocation-free) ----------------------

  /// A workload packet left its source at `t`.
  void on_send(double t);
  /// A workload packet was delivered at `t` (monotone across calls).
  void on_delivery(double t, double delay_ms, bool qos_ok, int failovers);
  /// A frame waited `us` for its TX slot, requested at `t` (monotone).
  void on_queue_wait(double t, double us);
  /// A control loop was sensed at `t`.
  void on_app_loop_start(double t);
  /// A control loop sensed at `sense_t` completed; bucketed by sense
  /// time (NOT completion time) so dips align with their cause.
  void on_app_loop_done(double sense_t, bool within_deadline,
                        double latency_ms);

  /// Flushes the open percentile cursors and zero-fills untouched
  /// buckets; call once after the run drained, before reading series().
  void finalize();

  [[nodiscard]] const TimeSeries& series() const noexcept { return series_; }

  /// Bucket index for a time offset `rel` = t - start_s, or npos when
  /// the sample falls outside [0, window_s].  Exposed for the
  /// bucket-edge tests: rel == window_s maps to the LAST bucket.
  [[nodiscard]] std::size_t bucket_for_rel(double rel) const noexcept;
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

 private:
  /// Per-stream cursor over a monotone sample time series: percentiles
  /// of the open bucket stream into a scratch histogram that is flushed
  /// (and reset) whenever a later bucket opens.
  struct PercentileCursor {
    Histogram scratch;
    std::size_t open = 0;     ///< bucket the scratch currently covers
    bool touched = false;     ///< any sample since the last flush
  };

  void gauge_tick(std::size_t bucket);
  void flush_delay_cursor(std::size_t up_to);       // [open, up_to)
  void flush_queue_wait_cursor(std::size_t up_to);  // [open, up_to)

  TimeSeries series_;
  Simulator* sim_ = nullptr;
  const Channel* channel_ = nullptr;
  const EnergyTracker* energy_ = nullptr;
  std::function<void(GaugeSnapshot&)> gauges_;
  PhaseProfiler* phases_ = nullptr;

  double bucket_s_ = 0;
  double start_s_ = 0;
  double window_s_ = 0;
  std::size_t n_buckets_ = 0;

  PercentileCursor delay_cursor_;
  PercentileCursor queue_wait_cursor_;
  std::vector<double> queue_wait_sum_us_;  ///< per bucket
  std::vector<std::uint64_t> queue_waits_;
  std::vector<double> app_latency_sum_ms_;
  std::vector<std::uint64_t> app_done_here_;  ///< completions per bucket

  // Previous cumulative values for per-bucket deltas.
  GaugeSnapshot prev_gauges_;
  std::array<std::uint64_t, kPhaseCount> prev_phase_ns_{};
  std::vector<double> prev_airtime_s_;  ///< per node
  std::vector<double> prev_energy_j_;   ///< per node
};

}  // namespace refer::sim
