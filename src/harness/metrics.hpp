// Metrics of one simulation run, matching the paper's three evaluation
// quantities (SIV): QoS-guaranteed throughput, average delay of
// QoS-guaranteed data, and energy consumed in communication /
// topology construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats_registry.hpp"
#include "sim/telemetry.hpp"

namespace refer::harness {

struct RunMetrics {
  // Workload accounting.
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t qos_delivered = 0;  ///< delivered within the QoS deadline

  /// "Throughput": QoS-guaranteed data received by actuators, kbit/s
  /// (paper Figs. 4, 7).
  double qos_throughput_kbps = 0;
  /// Mean delay of QoS-guaranteed packets, ms (paper Figs. 6, 8).
  double avg_delay_ms = 0;
  /// Delay distribution of *all delivered* packets, ms: the real-time
  /// tail the QoS-only mean hides.
  double delay_p50_ms = 0;
  double delay_p95_ms = 0;
  double delay_p99_ms = 0;
  /// Fraction of sent packets delivered at all.
  double delivery_ratio = 0;

  // Energy (J), cumulative over the run (paper Figs. 5, 9, 10, 11).
  double comm_energy_j = 0;          ///< data + maintenance
  double construction_energy_j = 0;  ///< topology construction
  double total_energy_j = 0;

  // Fairness of the load distribution (Scenario::routing_policy
  // comparison surface; schema v5).  Airtime fairness spans every node
  // of the deployment (zeros included -- an idle node is unfairness);
  // arc-load fairness spans the Kautz arcs the REFER router actually
  // forwarded on, and stays 0 for systems without a Kautz overlay.
  double airtime_gini = 0;
  double airtime_max_min = 0;  ///< max/min over nodes with airtime > 0
  double arc_load_gini = 0;
  double arc_load_max_min = 0;
  /// Successful forwards per Kautz arc, indexed
  /// label.to_index(d) * d + out-digit rank (kautz/regular.hpp explains
  /// the arc space).  Empty for non-REFER systems; serialized only when
  /// non-empty.
  std::vector<std::uint64_t> arc_forwards;

  /// QoS throughput per Scenario::timeline_bucket_s bucket (empty when
  /// the scenario did not request a timeline).  Derived from
  /// timeseries.qos_delivered with the exact legacy (schema v3)
  /// arithmetic.
  std::vector<double> qos_timeline_kbps;

  /// The run's full flight-recorder series (sim/telemetry.hpp);
  /// bucket_s == 0 when the scenario did not request a timeline.
  /// Serialized as the "timeseries" section of the schema-v4 results
  /// JSON.
  sim::TimeSeries timeseries;

  // Closed-loop application layer (Scenario::app_enabled; all zeros
  // when the app tier is off).  A loop: event sensed -> report reaches
  // a live actuator -> actuation command back at the sensor.
  std::uint64_t app_loops_started = 0;  ///< sensed in the measure window
  std::uint64_t app_loops_completed = 0;  ///< command delivered (even late)
  std::uint64_t app_loops_within_deadline = 0;
  /// Loop latency percentiles (ms) over completed counted loops.
  double app_loop_p50_ms = 0;
  double app_loop_p95_ms = 0;
  double app_loop_p99_ms = 0;
  /// app_loops_within_deadline / app_loops_started.
  double app_loop_completion_ratio = 0;
  /// 1 - broken actuator-seconds / (n_actuators * measure_s), an exact
  /// integral of the app fault schedule over the measurement window.
  double app_actuator_availability = 0;
  /// Believed-down -> re-registered spans observed, and their mean
  /// length (keepalive-lapse detection to the recovery handshake).
  std::uint64_t app_recoveries = 0;
  double app_mean_recovery_s = 0;

  /// Observability snapshot: every counter and histogram the run's
  /// StatsRegistry collected (router stats, drop reasons, channel queue
  /// waits, kernel profile, peak queue depth), sorted by name.  Exported
  /// as the "observability" section of the results JSON (schema v2).
  std::vector<StatsRegistry::Entry> observability;

  bool build_ok = false;
};

}  // namespace refer::harness
