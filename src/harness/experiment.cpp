#include "harness/experiment.hpp"

#include "common/stats.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <iterator>
#include <memory>

#include "app/control_loop.hpp"
#include "baselines/datree.hpp"
#include "baselines/ddear.hpp"
#include "baselines/kautz_overlay.hpp"
#include "common/logging.hpp"
#include "net/flooding.hpp"
#include "refer/system.hpp"
#include "runner/thread_pool.hpp"
#include "sim/channel.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace refer::harness {

const char* to_string(SystemKind kind) noexcept {
  switch (kind) {
    case SystemKind::kRefer: return "REFER";
    case SystemKind::kDaTree: return "DaTree";
    case SystemKind::kDDear: return "D-DEAR";
    case SystemKind::kKautzOverlay: return "Kautz-overlay";
  }
  return "?";
}

namespace {

using baselines::Delivery;
using baselines::WsanSystem;
using sim::NodeId;

/// Adapts the REFER facade to the common WsanSystem interface.
class ReferAdapter final : public WsanSystem {
 public:
  ReferAdapter(sim::Simulator& sim, sim::World& world, sim::Channel& channel,
               sim::EnergyTracker& energy, Rng rng,
               sim::Tracer* tracer = nullptr,
               core::ReferConfig config = {})
      : system_(sim, world, channel, energy, rng, config) {
    if (tracer) system_.set_tracer(tracer);
  }

  void build(std::function<void(bool)> done) override {
    system_.build(std::move(done));
  }

  void send_event(NodeId src, std::size_t bytes,
                  std::function<void(const Delivery&)> done) override {
    system_.send_to_actuator(
        src, bytes, [done = std::move(done)](const core::DeliveryReport& r) {
          Delivery d;
          d.delivered = r.delivered;
          d.delay_s = r.delay_s;
          d.physical_hops = r.physical_hops;
          d.kautz_hops = r.kautz_hops;
          d.failovers = r.failovers;
          d.actuator = r.final_node;
          d.packet_id = r.packet_id;
          done(d);
        });
  }

  [[nodiscard]] const char* name() const override { return "REFER"; }

  [[nodiscard]] core::ReferSystem* refer_system() noexcept override {
    return &system_;
  }

  void export_stats(StatsRegistry& registry) const override {
    const core::ReferRouter::Stats& s = system_.router().stats();
    registry.counter("router.packets_sent").set(s.packets_sent);
    registry.counter("router.packets_delivered").set(s.packets_delivered);
    registry.counter("router.packets_dropped").set(s.packets_dropped);
    registry.counter("router.failovers").set(s.failovers);
    registry.counter("router.route_gen_floods").set(s.route_gen_floods);
    registry.counter("router.relays_used").set(s.relays_used);
    registry.counter("router.can_hops").set(s.can_hops);
    // Regular-policy walk derivations: only exported when the policy
    // actually ran, so greedy observability snapshots stay byte-stable.
    if (s.regular_walks > 0) {
      registry.counter("router.regular_walks").set(s.regular_walks);
    }
    const kautz::RouteCache& rc = system_.router().route_cache();
    registry.counter("router.route_cache_hits").set(rc.hits());
    registry.counter("router.route_cache_misses").set(rc.misses());
    for (std::size_t i = 0; i < s.drops_by_reason.size(); ++i) {
      if (s.drops_by_reason[i] == 0) continue;
      registry
          .counter(std::string("router.drop.") +
                   sim::to_string(static_cast<sim::DropReason>(i)))
          .set(s.drops_by_reason[i]);
    }
  }

 private:
  core::ReferSystem system_;
};

/// One fully wired deployment.
struct Deployment {
  explicit Deployment(const Scenario& sc)
      : scenario(sc),
        rng(sc.seed),
        world({{0, 0}, {sc.area_side_m, sc.area_side_m}}, sim),
        channel(sim, world, energy, Rng(sc.seed ^ 0xC0FFEE),
                sim::ChannelConfig{
                    .loss_probability = sc.loss_probability,
                    .mac = sc.csma ? sim::MacMode::kCsma
                                   : sim::MacMode::kNullMac}),
        flooder(sim, world, channel) {
    if (sc.legacy_event_queue) {
      sim.set_engine(sim::QueueEngine::kLegacyHeap);
    }
    world.set_spatial_index_enabled(sc.spatial_index);
    world.set_neighbor_cache_enabled(sc.neighbor_cache);
    place_actuators();
    place_sensors();
    energy.resize(world.size());
    energy.set_initial_battery(sc.initial_battery_j);
    channel.set_stats(&stats);
    if (sc.profile) sim.set_profiler(&stats);
    // Wall-clock phase attribution: always wired (a disabled profiler is
    // one branch per scope), enabled only on request -- the numbers are
    // nondeterministic and stay out of the bit-identity contracts.
    phases.set_enabled(sc.phase_profile);
    sim.set_phase_profiler(&phases);
    world.set_phase_profiler(&phases);
    channel.set_phase_profiler(&phases);
    flooder.set_phase_profiler(&phases);
    if (!sc.trace_path.empty()) {
      trace_writer = std::make_unique<sim::JsonlTraceWriter>(sc.trace_path);
      tracer.set_sink(std::ref(*trace_writer));
    }
    if (!sc.trace_path.empty() || sc.observer) {
      // An observer without a trace file still sees every record through
      // the tracer tap it attaches in on_run_start.
      channel.set_tracer(&tracer);
      world.set_tracer(&tracer);
    }
  }

  void place_actuators() {
    const double side = scenario.area_side_m;
    if (scenario.n_actuators == 5) {
      // The paper's quincunx: 4 inner-square corners + centre = 4 cells.
      for (const Point p :
           {Point{0.25 * side, 0.25 * side}, Point{0.75 * side, 0.25 * side},
            Point{0.25 * side, 0.75 * side}, Point{0.75 * side, 0.75 * side},
            Point{0.50 * side, 0.50 * side}}) {
        actuators.push_back(
            world.add_actuator(p, scenario.actuator_range_m));
      }
      return;
    }
    // General count: a zig-zag strip across the middle band; consecutive
    // and skip-one actuators stay within actuator range, and the strip
    // triangulation is always 3-colourable.
    const int n = scenario.n_actuators;
    const double dx =
        std::min(scenario.actuator_range_m * 0.45,
                 0.8 * side / std::max(1, n - 1));
    const double x0 = (side - dx * (n - 1)) / 2;
    for (int i = 0; i < n; ++i) {
      const double y = (i % 2 ? 0.62 : 0.38) * side;
      actuators.push_back(world.add_actuator({x0 + dx * i, y},
                                             scenario.actuator_range_m));
    }
  }

  void place_sensors() {
    const Rect area{{0, 0}, {scenario.area_side_m, scenario.area_side_m}};
    for (int i = 0; i < scenario.n_sensors; ++i) {
      // I.i.d. around a uniformly chosen actuator (paper SIV): uniform in
      // a disc of radius sensor_spread_m, clamped to the area.
      const Point anchor = world.position(
          actuators[rng.below(actuators.size())]);
      const double angle = rng.uniform(0, 2 * 3.14159265358979323846);
      const double radius =
          scenario.sensor_spread_m * std::sqrt(rng.uniform());
      const Point p = clamp(
          {anchor.x + radius * std::cos(angle),
           anchor.y + radius * std::sin(angle)},
          area);
      if (scenario.mobile) {
        sensors.push_back(world.add_sensor(p, scenario.sensor_range_m,
                                           scenario.min_speed_mps,
                                           scenario.max_speed_mps,
                                           rng.split()));
      } else {
        sensors.push_back(
            world.add_static_sensor(p, scenario.sensor_range_m));
      }
    }
  }

  std::unique_ptr<WsanSystem> make_system(SystemKind kind) {
    switch (kind) {
      case SystemKind::kRefer: {
        core::ReferConfig config;
        config.router.planted_bug = scenario.planted_bug;
        config.router.policy = scenario.routing_policy == RoutingPolicy::kRegular
                                   ? core::RoutingPolicy::kRegular
                                   : core::RoutingPolicy::kGreedy;
        auto adapter = std::make_unique<ReferAdapter>(
            sim, world, channel, energy, Rng(scenario.seed ^ 0x5EED), &tracer,
            config);
        adapter->refer_system()->router().set_phase_profiler(&phases);
        return adapter;
      }
      case SystemKind::kDaTree:
        return std::make_unique<baselines::DaTree>(sim, world, channel,
                                                   flooder);
      case SystemKind::kDDear:
        return std::make_unique<baselines::DDear>(sim, world, channel,
                                                  flooder, energy);
      case SystemKind::kKautzOverlay:
        return std::make_unique<baselines::KautzOverlay>(
            sim, world, channel, flooder, Rng(scenario.seed ^ 0x0E1A));
    }
    return nullptr;
  }

  Scenario scenario;
  Rng rng;
  sim::Tracer tracer;
  StatsRegistry stats;
  PhaseProfiler phases;
  std::unique_ptr<sim::JsonlTraceWriter> trace_writer;
  sim::Simulator sim;
  sim::World world;
  sim::EnergyTracker energy;
  sim::Channel channel;
  net::Flooder flooder;
  std::vector<NodeId> actuators;
  std::vector<NodeId> sensors;
};

/// Workload + fault-injection driver around one system instance.
class Driver {
 public:
  Driver(Deployment& dep, WsanSystem& system)
      : dep_(&dep),
        system_(&system),
        delay_ms_(&dep.stats.histogram("delivery.delay_ms")),
        kautz_hops_(&dep.stats.histogram("delivery.kautz_hops")),
        physical_hops_(&dep.stats.histogram("delivery.physical_hops")),
        failovers_(&dep.stats.histogram("delivery.failovers")) {}

  RunMetrics run() {
    RunMetrics metrics;
    bool built = false, ok = false;
    system_->build([&](bool r) {
      built = true;
      ok = r;
    });
    // Give construction up to 300 simulated seconds.
    for (int i = 0; i < 60 && !built; ++i) {
      dep_->sim.run_until(dep_->sim.now() + 5.0);
    }
    metrics.build_ok = built && ok;
    if (!metrics.build_ok) return metrics;

    const Scenario& sc = dep_->scenario;
    t0_ = dep_->sim.now();
    measure_from_ = t0_ + sc.warmup_s;
    measure_to_ = measure_from_ + sc.measure_s;
    if (sc.timeline_bucket_s > 0) {
      // The flight recorder: preallocates every series buffer and
      // schedules one gauge tick per bucket boundary.  The gauge source
      // closes over the deployment; it is installed once here and never
      // allocates when invoked.
      telemetry_.start(
          dep_->sim, &dep_->channel, &dep_->energy,
          [this](sim::GaugeSnapshot& g) {
            g.channel_airtime_s = dep_->channel.stats().total_airtime_s;
            g.energy_j = dep_->energy.grand_total();
            if (core::ReferSystem* rs = system_->refer_system()) {
              const kautz::RouteCache& rc = rs->router().route_cache();
              g.route_cache_hits = rc.hits();
              g.route_cache_misses = rc.misses();
            }
          },
          measure_from_, sc.measure_s, sc.timeline_bucket_s,
          dep_->world.size(), &dep_->phases);
      dep_->channel.set_telemetry(&telemetry_);
    }

    dep_->sim.schedule_at(measure_from_, [this] {
      comm_at_start_ = dep_->energy.communication_total();
    });
    schedule_round(t0_);
    if (sc.faulty_nodes > 0) schedule_faults(t0_ + sc.fault_period_s);
    // The closed-loop app tier rides alongside the base workload; its
    // uplinks go through the same send_event path but are counted in the
    // app_* metrics, not the one-way QoS counters.
    std::unique_ptr<app::ControlLoopEngine> app_engine;
    if (sc.app_enabled) {
      app_engine = std::make_unique<app::ControlLoopEngine>(
          sc, dep_->sim, dep_->world, dep_->channel, dep_->tracer, *system_,
          dep_->actuators, dep_->sensors, dep_->stats);
      if (telemetry_.active()) app_engine->set_telemetry(&telemetry_);
      app_engine->start(t0_, measure_from_, measure_to_);
    }

    dep_->sim.run_until(measure_to_ + 2.0);  // drain in-flight packets

    metrics.packets_sent = sent_;
    metrics.packets_delivered = delivered_;
    metrics.qos_delivered = qos_delivered_;
    metrics.qos_throughput_kbps =
        static_cast<double>(qos_delivered_) *
        static_cast<double>(sc.packet_bytes) * 8.0 / 1000.0 / sc.measure_s;
    metrics.avg_delay_ms =
        qos_delivered_ ? delay_sum_s_ / static_cast<double>(qos_delivered_) *
                             1000.0
                       : 0.0;
    metrics.delay_p50_ms = percentile(all_delays_ms_, 50);
    metrics.delay_p95_ms = percentile(all_delays_ms_, 95);
    metrics.delay_p99_ms = percentile(all_delays_ms_, 99);
    if (telemetry_.active()) {
      telemetry_.finalize();
      dep_->channel.set_telemetry(nullptr);  // recorder dies with the Driver
      metrics.timeseries = telemetry_.series();
      metrics.qos_timeline_kbps =
          metrics.timeseries.qos_timeline_kbps(sc.packet_bytes);
    }
    metrics.delivery_ratio =
        sent_ ? static_cast<double>(delivered_) / static_cast<double>(sent_)
              : 0.0;
    if (app_engine) {
      const app::AppMetrics am = app_engine->finalize();
      metrics.app_loops_started = am.loops_started;
      metrics.app_loops_completed = am.loops_completed;
      metrics.app_loops_within_deadline = am.loops_within_deadline;
      metrics.app_loop_p50_ms = am.loop_p50_ms;
      metrics.app_loop_p95_ms = am.loop_p95_ms;
      metrics.app_loop_p99_ms = am.loop_p99_ms;
      metrics.app_loop_completion_ratio = am.loop_completion_ratio;
      metrics.app_actuator_availability = am.actuator_availability;
      metrics.app_recoveries = am.recoveries;
      metrics.app_mean_recovery_s = am.mean_recovery_s;
      app_engine->export_stats(dep_->stats);
    }
    metrics.comm_energy_j = dep_->energy.communication_total() - comm_at_start_;
    metrics.construction_energy_j = dep_->energy.construction_total();
    metrics.total_energy_j =
        metrics.comm_energy_j + metrics.construction_energy_j;

    // Observability snapshot: kernel, channel and system counters join
    // the streamed histograms collected during the run.
    StatsRegistry& st = dep_->stats;
    st.counter("sim.events_executed").set(dep_->sim.events_executed());
    st.counter("sim.peak_queue_depth").set(dep_->sim.peak_pending());
    // Closure-storage health: pooled_closures must stay 0 for every
    // workload in the repo (the capture audit), and the counters are
    // engine-independent -- the determinism tests compare them verbatim
    // between the calendar queue and the legacy heap.
    const sim::ClosurePool::Stats& cls = dep_->sim.closure_stats();
    st.counter("sim.closure.inline").set(cls.inline_closures);
    st.counter("sim.closure.pooled").set(cls.pooled_closures);
    st.counter("sim.closure.pool_blocks").set(cls.blocks_allocated);
    const sim::ChannelStats& cs = dep_->channel.stats();
    st.counter("channel.unicasts_sent").set(cs.unicasts_sent);
    st.counter("channel.unicasts_delivered").set(cs.unicasts_delivered);
    st.counter("channel.unicasts_failed").set(cs.unicasts_failed);
    st.counter("channel.broadcasts_sent").set(cs.broadcasts_sent);
    // Spatial-index and neighbor-cache health (zeros when disabled).
    // world.grid.* and world.neighbor_cache.* are the only observability
    // entries that may differ between runs of the same scenario with
    // different index/cache toggles -- everything else is bit-identical.
    const sim::World::IndexStats& gs = dep_->world.index_stats();
    st.counter("world.grid.queries").set(gs.queries);
    st.counter("world.grid.candidates").set(gs.candidates);
    st.counter("world.grid.rebins").set(gs.rebins);
    st.counter("world.grid.rebuilds").set(gs.rebuilds);
    const sim::NeighborCache::Stats& ns = dep_->world.neighbor_cache_stats();
    st.counter("world.neighbor_cache.hits").set(ns.hits);
    st.counter("world.neighbor_cache.rebuilds").set(ns.rebuilds);
    st.counter("world.neighbor_cache.invalidations").set(ns.invalidations);
    st.counter("world.neighbor_cache.skipped_fills").set(ns.skipped_fills);
    for (const auto& [node, airtime] : dep_->channel.busiest_nodes(5)) {
      st.counter("node." + std::to_string(node) + ".airtime_us")
          .set(static_cast<std::uint64_t>(airtime * 1e6));
    }
    system_->export_stats(st);
    metrics.observability = st.snapshot();

    // Load-fairness series (schema v5): airtime spread over every node
    // of the deployment (zeros included -- an idle node is the flip
    // side of a hot one), and -- REFER only -- the per-arc forward
    // histogram the routing-policy comparison is about.
    std::vector<double> airtime(dep_->world.size());
    for (std::size_t n = 0; n < airtime.size(); ++n) {
      airtime[n] = dep_->channel.node_airtime_s(static_cast<NodeId>(n));
    }
    metrics.airtime_gini = gini_coefficient(airtime);
    metrics.airtime_max_min = max_min_ratio(airtime);
    if (core::ReferSystem* rs = system_->refer_system()) {
      const std::vector<std::uint64_t>& arcs = rs->router().arc_forwards();
      if (!arcs.empty()) {
        std::vector<double> load(arcs.begin(), arcs.end());
        metrics.arc_load_gini = gini_coefficient(load);
        metrics.arc_load_max_min = max_min_ratio(load);
        metrics.arc_forwards = arcs;
      }
    }
    return metrics;
  }

 private:
  void schedule_round(double at) {
    if (at >= measure_to_) return;
    dep_->sim.schedule_at(at, [this, at] {
      const Scenario& sc = dep_->scenario;
      // Pick this round's random sources among the alive sensors.
      std::vector<NodeId> alive;
      for (NodeId s : dep_->sensors) {
        if (dep_->world.alive(s)) alive.push_back(s);
      }
      if (!alive.empty()) {
        const int k = std::min<int>(sc.sources_per_round,
                                    static_cast<int>(alive.size()));
        for (std::size_t idx :
             workload_rng_.sample_indices(alive.size(),
                                          static_cast<std::size_t>(k))) {
          start_source(alive[idx], at);
        }
      }
      schedule_round(at + sc.round_period_s);
    });
  }

  void start_source(NodeId src, double round_start) {
    const Scenario& sc = dep_->scenario;
    const double gap = 1.0 / sc.packets_per_second;
    const int count = static_cast<int>(sc.round_period_s / gap);
    for (int j = 0; j < count; ++j) {
      const double at = round_start + j * gap;
      if (at >= measure_to_) break;
      dep_->sim.schedule_at(at, [this, src, at] {
        const bool counted = at >= measure_from_ && at < measure_to_;
        if (counted) {
          ++sent_;
          if (telemetry_.active()) telemetry_.on_send(at);
        }
        system_->send_event(src, dep_->scenario.packet_bytes,
                            [this, counted](const Delivery& d) {
                              if (!counted || !d.delivered) return;
                              ++delivered_;
                              all_delays_ms_.push_back(d.delay_s * 1000.0);
                              delay_ms_->record(d.delay_s * 1000.0);
                              kautz_hops_->record(d.kautz_hops);
                              physical_hops_->record(d.physical_hops);
                              failovers_->record(d.failovers);
                              const bool qos_ok =
                                  d.delay_s <= dep_->scenario.qos_deadline_s;
                              if (telemetry_.active()) {
                                telemetry_.on_delivery(dep_->sim.now(),
                                                       d.delay_s * 1000.0,
                                                       qos_ok, d.failovers);
                              }
                              if (qos_ok) {
                                ++qos_delivered_;
                                delay_sum_s_ += d.delay_s;
                              } else if (dep_->tracer.enabled()) {
                                sim::TraceRecord rec;
                                rec.t = dep_->sim.now();
                                rec.event = sim::TraceEvent::kQosDeadlineMiss;
                                rec.from = d.actuator;
                                rec.packet = d.packet_id;
                                rec.hop_index = d.kautz_hops;
                                dep_->tracer.emit(rec);
                              }
                            });
      });
    }
  }

  void schedule_faults(double at) {
    if (at >= measure_to_) return;
    dep_->sim.schedule_at(at, [this, at] {
      for (NodeId n : faulty_) dep_->world.set_alive(n, true);
      faulty_.clear();
      const int k = std::min<int>(dep_->scenario.faulty_nodes,
                                  static_cast<int>(dep_->sensors.size()));
      for (std::size_t idx : fault_rng_.sample_indices(
               dep_->sensors.size(), static_cast<std::size_t>(k))) {
        const NodeId n = dep_->sensors[idx];
        dep_->world.set_alive(n, false);
        faulty_.push_back(n);
      }
      schedule_faults(at + dep_->scenario.fault_period_s);
    });
  }

  Deployment* dep_;
  WsanSystem* system_;
  // Per-delivery streaming histograms (owned by the deployment registry).
  Histogram* delay_ms_;
  Histogram* kautz_hops_;
  Histogram* physical_hops_;
  Histogram* failovers_;
  Rng workload_rng_{0xBADC0DE};
  Rng fault_rng_{0xFA171};
  std::vector<NodeId> faulty_;
  double t0_ = 0, measure_from_ = 0, measure_to_ = 0;
  double comm_at_start_ = 0;
  std::uint64_t sent_ = 0, delivered_ = 0, qos_delivered_ = 0;
  double delay_sum_s_ = 0;
  std::vector<double> all_delays_ms_;
  sim::TelemetryRecorder telemetry_;
};

}  // namespace

RunMetrics run_once(SystemKind kind, const Scenario& scenario) {
  Deployment dep(scenario);
  auto system = dep.make_system(kind);
  Driver driver(dep, *system);
  if (!scenario.observer) return driver.run();
  RunContext ctx;
  ctx.kind = kind;
  ctx.scenario = &dep.scenario;
  ctx.sim = &dep.sim;
  ctx.world = &dep.world;
  ctx.channel = &dep.channel;
  ctx.energy = &dep.energy;
  ctx.tracer = &dep.tracer;
  ctx.trace_writer = dep.trace_writer.get();
  ctx.stats = &dep.stats;
  ctx.refer_system = system->refer_system();
  ctx.actuators = &dep.actuators;
  ctx.sensors = &dep.sensors;
  scenario.observer->on_run_start(ctx);
  const RunMetrics metrics = driver.run();
  scenario.observer->on_run_end(ctx, metrics);
  return metrics;
}

namespace {

/// One decomposed (system, x, seed) job: the scenario it runs with plus
/// the aggregation group it reports into.
struct JobSpec {
  std::size_t group = 0;
  JobRecord record;
  Scenario scenario;
};

/// Executes every spec's run_once — serially in order for jobs <= 1,
/// otherwise on a fixed-size thread pool.  run_once is deterministic and
/// touches no global state (src/common/rng.hpp), so the execution order
/// cannot affect any metric; only wall_ms varies between schedules.
void execute_jobs(std::vector<JobSpec>& specs, int jobs) {
  auto run_job = [](JobSpec& spec) {
    const auto t0 = std::chrono::steady_clock::now();
    spec.record.metrics = run_once(spec.record.system, spec.scenario);
    spec.record.wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  };
  if (jobs <= 1 || specs.size() <= 1) {
    for (JobSpec& spec : specs) run_job(spec);
    return;
  }
  runner::ThreadPool pool(runner::resolve_jobs(jobs));
  std::vector<std::future<void>> futures;
  futures.reserve(specs.size());
  for (JobSpec& spec : specs) {
    futures.push_back(pool.submit([&run_job, &spec] { run_job(spec); }));
  }
  for (std::future<void>& f : futures) f.get();
}

/// Aggregates the executed specs group by group, visiting them in spec
/// order -- the same Summary::add order as the serial code path, which
/// keeps floating-point results bit-identical for any job count.
std::vector<AggregateMetrics> aggregate_jobs(const std::vector<JobSpec>& specs,
                                             std::size_t n_groups,
                                             const JobSink& sink) {
  std::vector<AggregateMetrics> groups(n_groups);
  for (const JobSpec& spec : specs) {
    if (sink) sink(spec.record);
    const RunMetrics& m = spec.record.metrics;
    if (!m.build_ok) {
      log_warn("%s: build failed for seed %llu", to_string(spec.record.system),
               static_cast<unsigned long long>(spec.record.seed));
      continue;
    }
    AggregateMetrics& agg = groups[spec.group];
    agg.qos_throughput_kbps.add(m.qos_throughput_kbps);
    agg.avg_delay_ms.add(m.avg_delay_ms);
    agg.delay_p95_ms.add(m.delay_p95_ms);
    agg.delivery_ratio.add(m.delivery_ratio);
    agg.comm_energy_j.add(m.comm_energy_j);
    agg.construction_energy_j.add(m.construction_energy_j);
    agg.total_energy_j.add(m.total_energy_j);
    if (spec.scenario.app_enabled) {
      agg.app_loop_completion_ratio.add(m.app_loop_completion_ratio);
      agg.app_loop_p95_ms.add(m.app_loop_p95_ms);
      agg.app_actuator_availability.add(m.app_actuator_availability);
      agg.app_mean_recovery_s.add(m.app_mean_recovery_s);
    }
    agg.airtime_gini.add(m.airtime_gini);
    agg.airtime_max_min.add(m.airtime_max_min);
    if (!m.arc_forwards.empty()) {
      agg.arc_load_gini.add(m.arc_load_gini);
      agg.arc_load_max_min.add(m.arc_load_max_min);
    }
  }
  return groups;
}

/// Appends the `repetitions` seed jobs of one (x, system) group.
void append_group(std::vector<JobSpec>& specs, std::size_t group, double x,
                  SystemKind kind, const Scenario& scenario,
                  int repetitions) {
  const std::uint64_t base_seed = scenario.seed;
  for (int i = 0; i < repetitions; ++i) {
    JobSpec spec;
    spec.group = group;
    spec.record.x = x;
    spec.record.system = kind;
    spec.record.rep = i;
    spec.record.seed = base_seed + static_cast<std::uint64_t>(i) * 7919;
    spec.record.policy = scenario.routing_policy;
    spec.scenario = scenario;
    spec.scenario.seed = spec.record.seed;
    if (!scenario.trace_dir.empty()) {
      // One trace file per decomposed job; the name is a pure function
      // of (system, x, rep), so serial and parallel executions produce
      // byte-identical file sets.
      char xbuf[32];
      std::snprintf(xbuf, sizeof xbuf, "%g", x);
      spec.scenario.trace_path = scenario.trace_dir + "/" + to_string(kind) +
                                 "_x" + xbuf + "_rep" + std::to_string(i) +
                                 ".jsonl";
    }
    specs.push_back(std::move(spec));
  }
}

}  // namespace

AggregateMetrics run_repeated(SystemKind kind, Scenario scenario,
                              int repetitions, int jobs,
                              const JobSink& sink, double x) {
  std::vector<JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(std::max(0, repetitions)));
  append_group(specs, 0, x, kind, scenario, repetitions);
  execute_jobs(specs, jobs);
  return aggregate_jobs(specs, 1, sink)[0];
}

std::vector<SweepPoint> sweep(
    Scenario base, const std::vector<double>& xs,
    const std::function<void(Scenario&, double)>& configure,
    int repetitions, int jobs, const JobSink& sink) {
  constexpr std::size_t kSystems = std::size(kAllSystems);
  std::vector<JobSpec> specs;
  specs.reserve(xs.size() * kSystems *
                static_cast<std::size_t>(std::max(0, repetitions)));
  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    Scenario scenario = base;
    configure(scenario, xs[xi]);
    for (std::size_t si = 0; si < kSystems; ++si) {
      append_group(specs, xi * kSystems + si, xs[xi], kAllSystems[si],
                   scenario, repetitions);
    }
  }
  execute_jobs(specs, jobs);
  const std::vector<AggregateMetrics> groups =
      aggregate_jobs(specs, xs.size() * kSystems, sink);
  std::vector<SweepPoint> points;
  points.reserve(xs.size());
  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    SweepPoint point;
    point.x = xs[xi];
    point.by_system.assign(groups.begin() + static_cast<std::ptrdiff_t>(
                                                xi * kSystems),
                           groups.begin() + static_cast<std::ptrdiff_t>(
                                                (xi + 1) * kSystems));
    points.push_back(std::move(point));
  }
  return points;
}

void print_series_table(
    const std::string& title, const std::string& x_label,
    const std::string& y_label, const std::vector<SweepPoint>& points,
    const std::function<Summary(const AggregateMetrics&)>& select) {
  std::printf("\n%s\n", title.c_str());
  std::printf("y = %s; cells are mean +- 95%% CI\n", y_label.c_str());
  std::printf("%-14s", x_label.c_str());
  for (SystemKind kind : kAllSystems) {
    std::printf("%-22s", to_string(kind));
  }
  std::printf("\n");
  for (const auto& point : points) {
    std::printf("%-14.2f", point.x);
    for (const auto& agg : point.by_system) {
      std::printf("%-22s", select(agg).to_string(1).c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

bool write_series_csv(const std::string& path, const std::string& x_label,
                      const std::vector<SweepPoint>& points,
                      const std::function<Summary(
                          const AggregateMetrics&)>& select) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "%s", x_label.c_str());
  for (SystemKind kind : kAllSystems) {
    std::fprintf(f, ",%s_mean,%s_ci95", to_string(kind), to_string(kind));
  }
  std::fprintf(f, "\n");
  for (const auto& point : points) {
    std::fprintf(f, "%g", point.x);
    for (const auto& agg : point.by_system) {
      const Summary s = select(agg);
      std::fprintf(f, ",%g,%g", s.mean(), s.ci95_half_width());
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return true;
}

}  // namespace refer::harness
