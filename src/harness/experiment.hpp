// The experiment driver: builds a deployment from a Scenario, runs one of
// the four systems under the paper's workload + fault model, and collects
// RunMetrics.  Sweeps aggregate several seeds into 95% CIs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "harness/metrics.hpp"
#include "harness/scenario.hpp"

namespace refer::harness {

/// The four evaluated systems (paper SIV).
enum class SystemKind { kRefer, kDaTree, kDDear, kKautzOverlay };

[[nodiscard]] const char* to_string(SystemKind kind) noexcept;
inline constexpr SystemKind kAllSystems[] = {
    SystemKind::kRefer, SystemKind::kDaTree, SystemKind::kDDear,
    SystemKind::kKautzOverlay};

/// Runs one system once under the scenario (seed comes from the
/// scenario).  Deterministic: same scenario -> same metrics.
[[nodiscard]] RunMetrics run_once(SystemKind kind, const Scenario& scenario);

/// Aggregated metrics of several seeds.
struct AggregateMetrics {
  Summary qos_throughput_kbps;
  Summary avg_delay_ms;
  Summary delay_p95_ms;
  Summary delivery_ratio;
  Summary comm_energy_j;
  Summary construction_energy_j;
  Summary total_energy_j;
};

/// One decomposed unit of an experiment: a single run_once call.  The
/// parallel executor (src/runner) hands these to a results sink in
/// deterministic order so JSON exports are reproducible run-to-run.
struct JobRecord {
  double x = 0;  ///< sweep x value (0 for run_repeated)
  SystemKind system = SystemKind::kRefer;
  int rep = 0;            ///< repetition index within the (x, system) group
  std::uint64_t seed = 0; ///< the scenario seed the job actually ran with
  double wall_ms = 0;     ///< wall-clock cost of this job
  RunMetrics metrics;
};

/// Invoked once per job, in deterministic (x, system, rep) order,
/// regardless of how many worker threads executed the jobs.
using JobSink = std::function<void(const JobRecord&)>;

/// Runs `repetitions` seeds (scenario.seed + i) and aggregates.
///
/// `jobs` > 1 executes the repetitions on a runner::ThreadPool; results
/// are aggregated in the same order as the serial path, so the returned
/// AggregateMetrics is bit-identical for any job count (run_once is
/// deterministic and uses no global random state).
[[nodiscard]] AggregateMetrics run_repeated(SystemKind kind,
                                            Scenario scenario,
                                            int repetitions, int jobs = 1,
                                            const JobSink& sink = {});

/// One point of a figure: x value plus per-system aggregates.
struct SweepPoint {
  double x = 0;
  std::vector<AggregateMetrics> by_system;  // indexed like kAllSystems
};

/// Sweeps a scenario parameter: `configure(scenario, x)` mutates the base
/// scenario for each x value; every system runs `repetitions` seeds.
///
/// `jobs` > 1 decomposes the sweep into independent (system, x, seed)
/// jobs on a runner::ThreadPool.  Aggregation order matches the serial
/// path exactly (bit-identical results for any job count).  `configure`
/// is only called on the submitting thread and must be a pure function
/// of (scenario, x).
[[nodiscard]] std::vector<SweepPoint> sweep(
    Scenario base, const std::vector<double>& xs,
    const std::function<void(Scenario&, double)>& configure,
    int repetitions, int jobs = 1, const JobSink& sink = {});

/// Renders a paper-style series table: one row per x value, one column
/// per system, cells "mean +- ci".
void print_series_table(const std::string& title, const std::string& x_label,
                        const std::string& y_label,
                        const std::vector<SweepPoint>& points,
                        const std::function<Summary(
                            const AggregateMetrics&)>& select);

/// Writes the same series as CSV (x, then mean/ci per system) for
/// plotting; returns false when the file cannot be opened.
bool write_series_csv(const std::string& path, const std::string& x_label,
                      const std::vector<SweepPoint>& points,
                      const std::function<Summary(
                          const AggregateMetrics&)>& select);

}  // namespace refer::harness
