// The experiment driver: builds a deployment from a Scenario, runs one of
// the four systems under the paper's workload + fault model, and collects
// RunMetrics.  Sweeps aggregate several seeds into 95% CIs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "harness/metrics.hpp"
#include "harness/scenario.hpp"
#include "sim/spatial_index.hpp"  // sim::NodeId

namespace refer::sim {
class Simulator;
class World;
class Channel;
class EnergyTracker;
class Tracer;
class JsonlTraceWriter;
}  // namespace refer::sim

namespace refer::core {
class ReferSystem;
}  // namespace refer::core

namespace refer {
class StatsRegistry;  // common/stats_registry.hpp
}  // namespace refer

namespace refer::harness {

/// The four evaluated systems (paper SIV).
enum class SystemKind { kRefer, kDaTree, kDDear, kKautzOverlay };

[[nodiscard]] const char* to_string(SystemKind kind) noexcept;
inline constexpr SystemKind kAllSystems[] = {
    SystemKind::kRefer, SystemKind::kDaTree, SystemKind::kDDear,
    SystemKind::kKautzOverlay};

/// Read-only view into a live deployment, handed to a RunObserver.  All
/// pointers outlive the observer callbacks but NOT the run_once call
/// that produced them.  `refer_system` is null for non-REFER systems.
struct RunContext {
  SystemKind kind = SystemKind::kRefer;
  const Scenario* scenario = nullptr;
  sim::Simulator* sim = nullptr;
  sim::World* world = nullptr;
  sim::Channel* channel = nullptr;
  sim::EnergyTracker* energy = nullptr;
  sim::Tracer* tracer = nullptr;
  /// The run's JSONL writer when Scenario::trace_path is set (flush it
  /// before reading the file back mid-run); null otherwise.
  sim::JsonlTraceWriter* trace_writer = nullptr;
  StatsRegistry* stats = nullptr;
  core::ReferSystem* refer_system = nullptr;
  const std::vector<sim::NodeId>* actuators = nullptr;
  const std::vector<sim::NodeId>* sensors = nullptr;
};

/// Single-run hook around run_once (Scenario::observer).  on_run_start
/// fires after the deployment is wired but before construction begins
/// (attach tracer taps here); on_run_end fires after the metrics are
/// collected, while the whole deployment is still alive.  Observers are
/// single-run-local, like the Tracer: one instance per concurrent job.
class RunObserver {
 public:
  virtual ~RunObserver() = default;
  virtual void on_run_start(const RunContext& ctx) { (void)ctx; }
  virtual void on_run_end(const RunContext& ctx, const RunMetrics& metrics) {
    (void)ctx;
    (void)metrics;
  }
};

/// Runs one system once under the scenario (seed comes from the
/// scenario).  Deterministic: same scenario -> same metrics.
[[nodiscard]] RunMetrics run_once(SystemKind kind, const Scenario& scenario);

/// Aggregated metrics of several seeds.
struct AggregateMetrics {
  Summary qos_throughput_kbps;
  Summary avg_delay_ms;
  Summary delay_p95_ms;
  Summary delivery_ratio;
  Summary comm_energy_j;
  Summary construction_energy_j;
  Summary total_energy_j;
  // Closed-loop app tier; only fed for Scenario::app_enabled jobs (n=0
  // otherwise, so plain figure benches stay unchanged).
  Summary app_loop_completion_ratio;
  Summary app_loop_p95_ms;
  Summary app_actuator_availability;
  Summary app_mean_recovery_s;
  // Load-fairness series (schema v5; RunMetrics::airtime_gini etc.).
  // Arc-load entries are only fed by jobs that recorded Kautz arcs
  // (REFER), so baseline aggregates stay n=0 there.
  Summary airtime_gini;
  Summary airtime_max_min;
  Summary arc_load_gini;
  Summary arc_load_max_min;
};

/// One decomposed unit of an experiment: a single run_once call.  The
/// parallel executor (src/runner) hands these to a results sink in
/// deterministic order so JSON exports are reproducible run-to-run.
struct JobRecord {
  double x = 0;  ///< sweep x value (or run_repeated's explicit x, else 0)
  SystemKind system = SystemKind::kRefer;
  int rep = 0;            ///< repetition index within the (x, system) group
  std::uint64_t seed = 0; ///< the scenario seed the job actually ran with
  /// The routing policy the job's scenario ran with; serialized into the
  /// jobs_run record only when non-default, so two-policy documents stay
  /// self-describing while greedy-only ones are byte-stable.
  RoutingPolicy policy = RoutingPolicy::kGreedy;
  double wall_ms = 0;     ///< wall-clock cost of this job
  RunMetrics metrics;
};

/// Invoked once per job, in deterministic (x, system, rep) order,
/// regardless of how many worker threads executed the jobs.
using JobSink = std::function<void(const JobRecord&)>;

/// Runs `repetitions` seeds (scenario.seed + i) and aggregates.
///
/// `jobs` > 1 executes the repetitions on a runner::ThreadPool; results
/// are aggregated in the same order as the serial path, so the returned
/// AggregateMetrics is bit-identical for any job count (run_once is
/// deterministic and uses no global random state).
/// `x` only labels the emitted JobRecords (e.g. the offered-load value
/// of a single-system comparison point); it does not affect the runs.
[[nodiscard]] AggregateMetrics run_repeated(SystemKind kind,
                                            Scenario scenario,
                                            int repetitions, int jobs = 1,
                                            const JobSink& sink = {},
                                            double x = 0);

/// One point of a figure: x value plus per-system aggregates.
struct SweepPoint {
  double x = 0;
  std::vector<AggregateMetrics> by_system;  // indexed like kAllSystems
};

/// Sweeps a scenario parameter: `configure(scenario, x)` mutates the base
/// scenario for each x value; every system runs `repetitions` seeds.
///
/// `jobs` > 1 decomposes the sweep into independent (system, x, seed)
/// jobs on a runner::ThreadPool.  Aggregation order matches the serial
/// path exactly (bit-identical results for any job count).  `configure`
/// is only called on the submitting thread and must be a pure function
/// of (scenario, x).
[[nodiscard]] std::vector<SweepPoint> sweep(
    Scenario base, const std::vector<double>& xs,
    const std::function<void(Scenario&, double)>& configure,
    int repetitions, int jobs = 1, const JobSink& sink = {});

/// Renders a paper-style series table: one row per x value, one column
/// per system, cells "mean +- ci".
void print_series_table(const std::string& title, const std::string& x_label,
                        const std::string& y_label,
                        const std::vector<SweepPoint>& points,
                        const std::function<Summary(
                            const AggregateMetrics&)>& select);

/// Writes the same series as CSV (x, then mean/ci per system) for
/// plotting; returns false when the file cannot be opened.
bool write_series_csv(const std::string& path, const std::string& x_label,
                      const std::vector<SweepPoint>& points,
                      const std::function<Summary(
                          const AggregateMetrics&)>& select);

}  // namespace refer::harness
