// Evaluation scenario description (paper SIV defaults).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace refer::harness {

class RunObserver;  // harness/experiment.hpp

/// Intra-cell routing protocol of the REFER system under test.
///   kGreedy  -- paper SIII-C greedy shortest path over the Theorem 3.8
///               disjoint-route family (the default; every pre-existing
///               figure uses it).
///   kRegular -- Faber-Streib regular all-to-all routing
///               (kautz/regular.hpp): fixed concatenation walks with
///               near-equal per-arc load, Theorem 3.8 routes demoted to
///               fail-over.
/// Baseline systems ignore the policy (they have no Kautz overlay).
enum class RoutingPolicy { kGreedy, kRegular };

[[nodiscard]] constexpr const char* to_string(RoutingPolicy p) noexcept {
  return p == RoutingPolicy::kRegular ? "regular" : "greedy";
}

/// Parses "greedy" / "regular"; false on anything else (`out` untouched).
[[nodiscard]] inline bool parse_routing_policy(const std::string& text,
                                               RoutingPolicy& out) noexcept {
  if (text == "greedy") {
    out = RoutingPolicy::kGreedy;
    return true;
  }
  if (text == "regular") {
    out = RoutingPolicy::kRegular;
    return true;
  }
  return false;
}

/// All knobs of one simulated deployment + workload.  Defaults reproduce
/// the paper's setup scaled for wall-clock speed: 500 m x 500 m, 5
/// actuators (quincunx -> 4 K(2,3) cells), 200 i.i.d. sensors, ranges
/// 100 m / 250 m, random-waypoint speeds U[0,3] m/s, 5 random sources per
/// 10 s round, QoS deadline 0.6 s, TX/RX energy 2 / 0.75 J per packet.
///
/// The paper streams 1 Mbps per source for 1000 s; we default to the
/// same *relative* channel load (~40% of the 2 Mbit/s medium per source)
/// with fewer, larger packets, and a shorter measurement window, so the
/// full 8-figure sweep runs in minutes -- shapes, not absolute numbers,
/// are the reproduction target (DESIGN.md).  Raise measure_s to 900 for
/// the paper-scale duration.
struct Scenario {
  // Deployment.
  double area_side_m = 500;
  int n_actuators = 5;  ///< 5 = the paper's quincunx; >5 = zig-zag strip
  int n_sensors = 200;
  /// Sensors are i.i.d. *around the actuators* (paper SIV): each sensor
  /// lands uniformly in a disc of this radius around a random actuator.
  double sensor_spread_m = 220;
  double sensor_range_m = 100;
  double actuator_range_m = 250;
  double initial_battery_j = 1e9;

  // Mobility (random waypoint).
  bool mobile = true;
  double min_speed_mps = 0.0;
  double max_speed_mps = 3.0;

  // Workload: every round, `sources_per_round` random sensors each send
  // `packets_per_second` packets until the next round.
  int sources_per_round = 5;
  double round_period_s = 10;
  /// 10 pkt/s x 20 kbit = 200 kbit/s per source: enough load that repair
  /// storms and retransmissions cost real airtime under the CSMA medium,
  /// while the base traffic is still comfortably carried -- the regime
  /// where the paper's protocol-level differences dominate.
  double packets_per_second = 10;
  std::size_t packet_bytes = 2500;

  // Timing.
  double warmup_s = 20;
  double measure_s = 100;
  double qos_deadline_s = 0.6;

  // Fault injection: every fault_period_s the previous faulty set is
  // restored and `faulty_nodes` random sensors break down (paper SIV-B).
  int faulty_nodes = 0;
  double fault_period_s = 10;

  /// Link flaps: probability that any individual frame is lost on the
  /// air (sim::ChannelConfig::loss_probability).  0 = perfect links; the
  /// scenario fuzzer (src/verify) uses this to stress Theorem-3.8
  /// fail-over under random loss.
  double loss_probability = 0;

  /// TESTING ONLY -- 0 in production.  Non-zero plants a known bug in the
  /// system under test so the fuzzer / invariant engine can prove it
  /// catches real divergences (src/verify):
  ///   1 = REFER fail-over records a wrong Theorem 3.8 nominal length.
  ///   2 = the app layer emits a spurious actuator-recovery handshake
  ///       (kAppActuatorUp with no believed-down span).
  /// Serialized into results / repro.json so replays reproduce the bug.
  int planted_bug = 0;

  // Closed-loop application layer (src/app): sense -> decide -> actuate
  // on top of whichever routing stack runs.  Off by default so every
  // pre-existing figure reproduces unchanged.
  bool app_enabled = false;
  /// Mean inter-arrival of sensed physical events (Poisson over the
  /// area); each event starts up to a few control loops.
  double app_event_period_s = 10;
  /// A loop completes when the actuation command is back at the sensor
  /// within this budget of the sensing instant.
  double app_loop_deadline_s = 1.0;
  /// Actuator keepalive ping period (supervision tier).
  double app_keepalive_period_s = 5;
  /// Consecutive lapsed keepalives before an actuator is believed down
  /// and its sensors fail over.
  int app_keepalive_miss_limit = 2;
  /// Poisson app-tier actuator breaks: mean rate per actuator (Hz).
  /// 0 = no random breaks.  Breaks hit the actuation process only; the
  /// node keeps routing.
  double app_break_rate_hz = 0;
  /// Downtime of one random break (seconds).
  double app_repair_s = 15;
  /// Scripted fault windows "idx@start+duration;..." with times in
  /// seconds relative to the workload start (app::parse_fault_schedule);
  /// composes with app_break_rate_hz.  Flat string so repro.json stays
  /// nesting-free.
  std::string app_fault_schedule;

  std::uint64_t seed = 1;

  /// Medium-access ablation: true = CSMA local medium sharing (default,
  /// the evaluated model); false = per-sender-only serialisation.
  bool csma = true;

  /// Spatial grid index for the world's geometric queries (default on).
  /// Results are bit-identical either way (proven by test); false restores
  /// the O(n) linear scans for perf comparison.
  bool spatial_index = true;

  /// Neighbor-row cache riding the spatial index (default on; moot when
  /// spatial_index is off): repeat reachable queries -- the CSMA medium
  /// scan, broadcast receiver materialisation, routing next-hop scans --
  /// reuse the grid's sorted candidate rows until a mobility re-bin
  /// expires them.  Results are bit-identical either way (proven by
  /// test); false (--no-neighbor-cache) is the perf escape hatch.
  bool neighbor_cache = true;

  /// Intra-cell routing protocol of the REFER system (see RoutingPolicy
  /// above).  Greedy is the default so every pre-existing greedy figure
  /// reproduces bit-identically; baselines ignore it.  Serialized into
  /// results + repro JSON (schema v5 / repro v4) and fuzzed like
  /// neighbor_cache.
  RoutingPolicy routing_policy = RoutingPolicy::kGreedy;

  /// Event-queue ablation: false (default) runs the simulator on the
  /// calendar queue, true restores the original binary heap
  /// (--legacy-event-queue).  Results are bit-identical either way
  /// (proven by test, like spatial_index); only wall-clock differs.
  bool legacy_event_queue = false;

  /// When > 0, the run carries a flight recorder (sim::TelemetryRecorder):
  /// RunMetrics::timeseries holds per-bucket series (throughput, delay
  /// percentiles, queue waits, busy fraction, hot nodes, app-loop QoS,
  /// ...) for buckets of this many seconds across the measurement
  /// window, and RunMetrics::qos_timeline_kbps (the legacy within-run
  /// decay curve) is re-derived from it bit-identically.
  double timeline_bucket_s = 0;

  /// When true (and timeline_bucket_s > 0), the wall-clock phase
  /// profiler (common/phase_profiler.hpp) is enabled and the timeseries
  /// gains per-bucket wall-time attribution (kernel dispatch, medium
  /// scan, routing decide, flooding, spatial query).  Off by default:
  /// wall-clock data is nondeterministic, so it is excluded from the
  /// bit-identity contracts the determinism tests and CI compare.
  bool phase_profile = false;

  /// When non-empty, every radio frame event of the run is written to
  /// this file as JSON lines (sim::JsonlTraceWriter).
  std::string trace_path;

  /// When non-empty, run_repeated / sweep derive a per-job trace_path
  /// `<trace_dir>/<system>_x<x>_rep<rep>.jsonl` for every decomposed
  /// (system, x, seed) job.  The directory must exist.
  std::string trace_dir;

  /// When true, the simulator kernel profiler is attached: per-event-tag
  /// wall-time histograms ("sim.event_us.<tag>") land in the run's
  /// observability snapshot.  Costs two clock reads per event; off by
  /// default so benchmark numbers stay undisturbed.
  bool profile = false;

  /// Optional single-run hook (NOT serialized): run_once invokes the
  /// observer around the simulation with full access to the deployment
  /// internals.  The invariant engine (src/verify) attaches here.  The
  /// observer is used only on the thread executing this scenario's
  /// run_once, so parallel jobs must each carry their own instance.
  RunObserver* observer = nullptr;
};

}  // namespace refer::harness
