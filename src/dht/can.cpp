#include "dht/can.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace refer::dht {

namespace {
constexpr Rect kUnitSquare{{0, 0}, {1, 1}};
constexpr double kEps = 1e-12;
}  // namespace

bool Can::join(MemberId member, Point point) {
  if (zones_.contains(member)) return false;
  if (!kUnitSquare.contains(point)) return false;
  if (zones_.empty()) {
    zones_[member] = {kUnitSquare};
    points_[member] = point;
    return true;
  }
  const auto owner = owner_of(point);
  assert(owner.has_value());
  const Point q = points_.at(*owner);
  if (std::abs(q.x - point.x) < kEps && std::abs(q.y - point.y) < kEps) {
    return false;  // cannot split between coincident points
  }
  auto& rects = zones_.at(*owner);
  // Find the owner's rectangle containing the point and split it between
  // the owner's own point q and the joiner's point, along the axis where
  // they differ most.  Splitting *between* the two points (rather than at
  // the blind midpoint of the rectangle) guarantees every member's zone
  // always contains its own join point -- the invariant REFER's
  // inter-cell routing relies on (the owner of a cell's coordinate is
  // that cell).
  for (auto& r : rects) {
    if (!r.contains(point)) continue;
    if (!r.contains(q)) {
      // The owner's point lives in another of its rectangles (after a
      // takeover); a plain longer-axis midpoint split is safe here.
      Rect keep = r, give = r;
      if (r.width() >= r.height()) {
        const double mid = (r.lo.x + r.hi.x) / 2;
        (point.x < mid ? give.hi.x : give.lo.x) = mid;
        (point.x < mid ? keep.lo.x : keep.hi.x) = mid;
      } else {
        const double mid = (r.lo.y + r.hi.y) / 2;
        (point.y < mid ? give.hi.y : give.lo.y) = mid;
        (point.y < mid ? keep.lo.y : keep.hi.y) = mid;
      }
      r = keep;
      zones_[member] = {give};
      points_[member] = point;
      return true;
    }
    Rect keep = r, give = r;
    if (std::abs(point.x - q.x) >= std::abs(point.y - q.y)) {
      const double mid = (point.x + q.x) / 2;
      if (point.x < q.x) {
        give.hi.x = mid;
        keep.lo.x = mid;
      } else {
        give.lo.x = mid;
        keep.hi.x = mid;
      }
    } else {
      const double mid = (point.y + q.y) / 2;
      if (point.y < q.y) {
        give.hi.y = mid;
        keep.lo.y = mid;
      } else {
        give.lo.y = mid;
        keep.hi.y = mid;
      }
    }
    r = keep;
    zones_[member] = {give};
    points_[member] = point;
    return true;
  }
  return false;
}

bool Can::leave(MemberId member) {
  const auto it = zones_.find(member);
  if (it == zones_.end() || zones_.size() == 1) return false;
  // Takeover: the adjoining member with the smallest total area inherits
  // the leaver's rectangles.
  MemberId heir = -1;
  double heir_area = std::numeric_limits<double>::infinity();
  for (MemberId n : neighbors(member)) {
    const double a = area_of(n);
    if (a < heir_area) {
      heir_area = a;
      heir = n;
    }
  }
  assert(heir >= 0);
  auto& heir_rects = zones_.at(heir);
  for (const Rect& r : it->second) heir_rects.push_back(r);
  zones_.erase(it);
  points_.erase(member);
  return true;
}

std::optional<Point> Can::point_of(MemberId member) const {
  const auto it = points_.find(member);
  if (it == points_.end()) return std::nullopt;
  return it->second;
}

std::optional<MemberId> Can::owner_of(Point p) const {
  for (const auto& [m, rects] : zones_) {
    for (const Rect& r : rects) {
      if (r.contains(p)) return m;
    }
  }
  return std::nullopt;
}

std::vector<Rect> Can::zones_of(MemberId member) const {
  const auto it = zones_.find(member);
  return it == zones_.end() ? std::vector<Rect>{} : it->second;
}

double Can::area_of(MemberId member) const {
  double area = 0;
  for (const Rect& r : zones_of(member)) area += r.width() * r.height();
  return area;
}

bool Can::adjoining(const Rect& a, const Rect& b) noexcept {
  // Share a boundary segment of positive length: touching along one axis,
  // overlapping with positive measure along the other.
  const bool touch_x = std::abs(a.hi.x - b.lo.x) < kEps ||
                       std::abs(b.hi.x - a.lo.x) < kEps;
  const bool touch_y = std::abs(a.hi.y - b.lo.y) < kEps ||
                       std::abs(b.hi.y - a.lo.y) < kEps;
  const double overlap_x =
      std::min(a.hi.x, b.hi.x) - std::max(a.lo.x, b.lo.x);
  const double overlap_y =
      std::min(a.hi.y, b.hi.y) - std::max(a.lo.y, b.lo.y);
  return (touch_x && overlap_y > kEps) || (touch_y && overlap_x > kEps);
}

std::vector<MemberId> Can::neighbors(MemberId member) const {
  std::vector<MemberId> out;
  const auto mine = zones_of(member);
  for (const auto& [other, rects] : zones_) {
    if (other == member) continue;
    bool adj = false;
    for (const Rect& a : mine) {
      for (const Rect& b : rects) {
        if (adjoining(a, b)) {
          adj = true;
          break;
        }
      }
      if (adj) break;
    }
    if (adj) out.push_back(other);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double Can::rect_distance(const Rect& z, Point p) noexcept {
  const double dx = std::max({z.lo.x - p.x, 0.0, p.x - z.hi.x});
  const double dy = std::max({z.lo.y - p.y, 0.0, p.y - z.hi.y});
  return std::hypot(dx, dy);
}

double Can::distance_to(MemberId member, Point p) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Rect& r : zones_of(member)) {
    best = std::min(best, rect_distance(r, p));
  }
  return best;
}

std::optional<MemberId> Can::next_hop(MemberId member, Point target) const {
  const double own = distance_to(member, target);
  if (own <= kEps) return std::nullopt;  // member owns the target point
  MemberId best = -1;
  double best_d = own;
  for (MemberId n : neighbors(member)) {
    const double d = distance_to(n, target);
    if (d < best_d) {
      best_d = d;
      best = n;
    }
  }
  if (best < 0) return std::nullopt;
  return best;
}

std::vector<MemberId> Can::route(MemberId from, Point target) const {
  std::vector<MemberId> path{from};
  // Bound iterations by the member count: greedy strictly decreases the
  // distance, so it can never revisit a member.
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    const auto next = next_hop(path.back(), target);
    if (!next) break;
    path.push_back(*next);
  }
  return path;
}

std::vector<MemberId> Can::members() const {
  std::vector<MemberId> out;
  out.reserve(zones_.size());
  for (const auto& [m, _] : zones_) out.push_back(m);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace refer::dht
