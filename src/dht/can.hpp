// CAN: a Content-Addressable Network over the unit square [16]
// (paper SIII-B3: REFER's upper tier connecting the actuators of all
// cells; each actuator owns a zone, keeps the owners of adjoining zones as
// neighbours, and greedily forwards towards the destination coordinates).
//
// This is the overlay *logic* (zones, neighbour sets, greedy next hop);
// the physical transmission of each overlay hop is done by the caller
// (REFER inter-cell routing) through the Channel, so delay and energy are
// charged where they belong.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/geometry.hpp"

namespace refer::dht {

/// Identifier of a CAN member (REFER: the actuator's physical NodeId).
using MemberId = int;

/// A CAN overlay instance.  A member may own several rectangles after a
/// takeover (CAN's leave protocol), hence zones_of returns a list.
class Can {
 public:
  /// Creates an empty overlay covering the unit square.
  Can() = default;

  /// Adds a member owning the part of the zone that contains `point`,
  /// splitting between the zone owner's own join point and `point` along
  /// the axis where they differ most, so every member's zone always
  /// contains its own join point (the invariant greedy inter-cell routing
  /// relies on).  The first member owns the whole space.  Returns false
  /// if `point` is outside the unit square, coincides with the owner's
  /// point, or the member already joined.
  bool join(MemberId member, Point point);

  /// The join point of a member.
  [[nodiscard]] std::optional<Point> point_of(MemberId member) const;

  /// Removes a member; its rectangles are taken over by the adjoining
  /// member with the smallest total area (CAN takeover).  Returns false
  /// if the member is unknown or is the last member.
  bool leave(MemberId member);

  [[nodiscard]] std::size_t size() const noexcept { return zones_.size(); }
  [[nodiscard]] bool contains(MemberId member) const {
    return zones_.contains(member);
  }

  /// The member whose zone contains the point.
  [[nodiscard]] std::optional<MemberId> owner_of(Point p) const;

  /// The zone rectangles of a member (usually one).
  [[nodiscard]] std::vector<Rect> zones_of(MemberId member) const;

  /// Total area owned by a member.
  [[nodiscard]] double area_of(MemberId member) const;

  /// Members whose zones adjoin `member`'s zone (share a boundary segment
  /// of positive length).  This is the CAN neighbour set.
  [[nodiscard]] std::vector<MemberId> neighbors(MemberId member) const;

  /// Greedy CAN routing step: the neighbour whose zone is closest to
  /// `target`, provided it improves on `member`'s own distance.  Returns
  /// nullopt when `member` owns the target point (delivery) or no
  /// neighbour improves (cannot happen on a full tessellation).
  [[nodiscard]] std::optional<MemberId> next_hop(MemberId member,
                                                 Point target) const;

  /// Full overlay route (member sequence, starting with `from`) to the
  /// owner of `target`.  Provided for tests and routing-table dumps; the
  /// protocol steps hop by hop with next_hop().
  [[nodiscard]] std::vector<MemberId> route(MemberId from, Point target) const;

  /// All members.
  [[nodiscard]] std::vector<MemberId> members() const;

  /// Distance from `member`'s zone to a point (0 when inside).
  [[nodiscard]] double distance_to(MemberId member, Point p) const;

 private:
  [[nodiscard]] static double rect_distance(const Rect& z, Point p) noexcept;
  [[nodiscard]] static bool adjoining(const Rect& a, const Rect& b) noexcept;

  std::unordered_map<MemberId, std::vector<Rect>> zones_;
  std::unordered_map<MemberId, Point> points_;
};

}  // namespace refer::dht
