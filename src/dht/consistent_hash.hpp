// Consistent hashing (paper SIII-B1: "each actuator A has a value H(A)
// which is the consistent hash value of its IP address" [33]).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/geometry.hpp"

namespace refer::dht {

/// 64-bit stable hash of an arbitrary key (FNV-1a with avalanche finish);
/// the same key always maps to the same value across runs and platforms.
[[nodiscard]] std::uint64_t consistent_hash(std::string_view key) noexcept;

/// Convenience: hash of a numeric node identity (e.g. "IP address").
[[nodiscard]] std::uint64_t consistent_hash(std::uint64_t key) noexcept;

/// Maps a hash to [0, 1).
[[nodiscard]] double to_unit(std::uint64_t h) noexcept;

/// Maps a key to a point in the CAN unit square (independent coordinates
/// from the two hash halves).
[[nodiscard]] Point to_unit_point(std::uint64_t h) noexcept;

}  // namespace refer::dht
