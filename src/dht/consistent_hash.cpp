#include "dht/consistent_hash.hpp"

namespace refer::dht {

namespace {
constexpr std::uint64_t avalanche(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t consistent_hash(std::string_view key) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return avalanche(h);
}

std::uint64_t consistent_hash(std::uint64_t key) noexcept {
  return avalanche(key + 0x9e3779b97f4a7c15ULL);
}

double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Point to_unit_point(std::uint64_t h) noexcept {
  const auto lo = static_cast<std::uint32_t>(h);
  const auto hi = static_cast<std::uint32_t>(h >> 32);
  return {static_cast<double>(hi) / 4294967296.0,
          static_cast<double>(lo) / 4294967296.0};
}

}  // namespace refer::dht
