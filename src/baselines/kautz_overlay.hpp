// Kautz-overlay [20] (paper SII, SIV): the same Kautz cells as REFER but
// built at the *application layer* -- Kautz IDs are assigned by hashing,
// with no relation to physical position, so two neighbouring overlay
// nodes are usually several radio hops apart.
//
// Construction: the cell partition (as REFER), then every overlay arc's
// multi-hop physical path is discovered by flooding -- by far the most
// expensive construction of the four systems (paper Fig. 10).
//
// Data: REFER's fault-tolerant routing protocol on the overlay (the
// paper evaluates it with exactly this protocol for fairness); every
// overlay hop walks a cached multi-hop path.  When a physical hop
// breaks, the current holder re-floods to re-establish the path to the
// overlay neighbour and the message continues (no source
// retransmission), but the consecutive multi-hop paths make both delay
// and repair energy high.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>

#include "baselines/wsan_system.hpp"
#include "common/rng.hpp"
#include "kautz/routing.hpp"
#include "net/flooding.hpp"
#include "refer/cell.hpp"
#include "sim/channel.hpp"

namespace refer::baselines {

using core::Cell;
using core::Cid;
using kautz::Label;

struct KautzOverlayConfig {
  int d = 2;
  int repair_ttl = 16;            ///< random arcs span most of the field
  double repair_deadline_s = 1.0;
  int hop_budget = 24;            ///< overlay hops per message
  int path_repairs_per_arc = 1;   ///< repair attempts before fail-over
  std::size_t control_bytes = 48;
};

class KautzOverlay final : public WsanSystem {
 public:
  KautzOverlay(sim::Simulator& sim, sim::World& world, sim::Channel& channel,
               net::Flooder& flooder, Rng rng, KautzOverlayConfig config = {});

  void build(std::function<void(bool)> done) override;
  void send_event(NodeId src, std::size_t bytes,
                  std::function<void(const Delivery&)> done) override;
  [[nodiscard]] const char* name() const override { return "Kautz-overlay"; }

  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] const Cell& cell(Cid cid) const {
    return cells_.at(static_cast<std::size_t>(cid));
  }
  /// The overlay binding of a sensor, if any.
  [[nodiscard]] std::optional<std::pair<Cid, Label>> binding_of(
      NodeId node) const;

  struct Stats {
    std::uint64_t path_repairs = 0;
    std::uint64_t failovers = 0;
    std::uint64_t drops = 0;
    std::uint64_t delivered = 0;
    std::uint64_t arc_paths_built = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    std::size_t bytes;
    double sent_at;
    int physical_hops = 0;
    int overlay_hops_left;
    std::function<void(const Delivery&)> done;
  };
  using PendingPtr = std::shared_ptr<Pending>;

  bool partition_cells();
  void assign_random_labels();
  /// Eagerly discovers the physical path of every overlay arc.
  void discover_arcs(std::vector<std::pair<NodeId, NodeId>> arcs,
                     std::size_t index, std::function<void(bool)> done);

  void enter_overlay(NodeId at, int budget, PendingPtr msg);
  void overlay_step(Cid cid, Label label, NodeId node, PendingPtr msg);
  void try_successors(Cid cid, Label label, NodeId node,
                      std::vector<kautz::Route> routes, std::size_t choice,
                      PendingPtr msg);
  /// Walks the cached path node -> to; repairs once on breakage.
  void walk_arc(NodeId from, NodeId to, std::size_t hop, int repairs_left,
                PendingPtr msg, std::function<void(bool)> done);
  void finish(NodeId actuator, PendingPtr msg);
  void drop(PendingPtr msg);

  sim::Simulator* sim_;
  sim::World* world_;
  sim::Channel* channel_;
  net::Flooder* flooder_;
  Rng rng_;
  KautzOverlayConfig config_;
  Stats stats_;
  std::vector<Cell> cells_;
  std::unordered_map<NodeId, std::pair<Cid, Label>> bindings_;
  std::map<std::pair<NodeId, NodeId>, std::vector<NodeId>> arc_paths_;
};

}  // namespace refer::baselines
