#include "baselines/ddear.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_set>

namespace refer::baselines {

using sim::EnergyBucket;

DDear::DDear(sim::Simulator& sim, sim::World& world, sim::Channel& channel,
             net::Flooder& flooder, sim::EnergyTracker& energy,
             DDearConfig config)
    : sim_(&sim),
      world_(&world),
      channel_(&channel),
      flooder_(&flooder),
      energy_(&energy),
      config_(config) {}

std::vector<NodeId> DDear::khop_neighborhood(NodeId node, int hops) {
  std::unordered_set<NodeId> seen{node};
  std::vector<NodeId> frontier{node}, out;
  for (int h = 0; h < hops; ++h) {
    std::vector<NodeId> next;
    for (NodeId at : frontier) {
      world_->visit_reachable(at, [&](NodeId n) {
        if (world_->is_actuator(n)) return;
        if (seen.insert(n).second) {
          next.push_back(n);
          out.push_back(n);
        }
      });
    }
    frontier = std::move(next);
  }
  return out;
}

void DDear::build(std::function<void(bool)> done) {
  // Hello exchange: every sensor broadcasts twice (its id+energy, then its
  // 1-hop table) so all sensors learn their 2-hop neighbourhood.
  for (NodeId s : world_->all_of(sim::NodeKind::kSensor)) {
    if (!world_->alive(s)) continue;
    channel_->broadcast(s, config_.control_bytes, EnergyBucket::kConstruction,
                        nullptr);
    channel_->broadcast(s, config_.control_bytes, EnergyBucket::kConstruction,
                        nullptr);
  }
  sim_->schedule_in(0.5, [this, done = std::move(done)]() mutable {
    elect_heads_and_paths(std::move(done));
  });
}

void DDear::elect_heads_and_paths(std::function<void(bool)> done) {
  // A sensor with more energy than everyone in its 2-hop neighbourhood is
  // a cluster head (ties break towards the higher node id).
  const auto sensors = world_->all_of(sim::NodeKind::kSensor);
  std::vector<NodeId> heads;
  auto score = [this](NodeId n) {
    return std::pair(energy_->battery(static_cast<std::size_t>(n)), n);
  };
  for (NodeId s : sensors) {
    if (!world_->alive(s)) continue;
    bool best = true;
    for (NodeId n : khop_neighborhood(s, config_.cluster_radius_hops)) {
      if (!world_->alive(n)) continue;
      if (score(n) > score(s)) {
        best = false;
        break;
      }
    }
    if (best) heads.push_back(s);
  }
  // Members attach to the physically closest head in their 2-hop
  // neighbourhood (or become their own head when none is visible).
  for (NodeId s : sensors) {
    if (!world_->alive(s)) continue;
    NodeId my_head = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (NodeId n : khop_neighborhood(s, config_.cluster_radius_hops)) {
      if (std::find(heads.begin(), heads.end(), n) == heads.end()) continue;
      const double d =
          distance_sq(world_->position(s), world_->position(n));
      if (d < best_d) {
        best_d = d;
        my_head = n;
      }
    }
    if (std::find(heads.begin(), heads.end(), s) != heads.end()) my_head = s;
    if (my_head < 0) {
      heads.push_back(s);  // isolated: self-cluster
      my_head = s;
    }
    head_of_[s] = my_head;
  }
  discover_head_path(0, std::move(heads), std::move(done));
}

void DDear::discover_head_path(std::size_t head_index,
                               std::vector<NodeId> heads,
                               std::function<void(bool)> done) {
  if (head_index >= heads.size()) {
    done(true);
    return;
  }
  const NodeId head = heads[head_index];
  const NodeId actuator = world_->closest_actuator(head);
  if (actuator < 0) {
    done(false);
    return;
  }
  flooder_->discover(
      head, actuator, config_.repair_ttl, EnergyBucket::kConstruction,
      [this, head, head_index, heads = std::move(heads),
       done = std::move(done)](std::optional<std::vector<NodeId>> path) mutable {
        if (path) head_paths_[head] = *path;
        else head_paths_[head] = {};  // repaired lazily on first use
        discover_head_path(head_index + 1, std::move(heads), std::move(done));
      },
      config_.control_bytes, config_.repair_deadline_s);
}

bool DDear::is_head(NodeId sensor) const { return head_paths_.contains(sensor); }

NodeId DDear::head_of(NodeId sensor) const {
  const auto it = head_of_.find(sensor);
  return it == head_of_.end() ? -1 : it->second;
}

void DDear::send_event(NodeId src, std::size_t bytes,
                       std::function<void(const Delivery&)> done) {
  auto msg = std::make_shared<Pending>();
  msg->src = src;
  msg->bytes = bytes;
  msg->sent_at = sim_->now();
  msg->retries_left = config_.max_retransmissions;
  msg->done = std::move(done);
  route_from_member(src, msg);
}

void DDear::route_from_member(NodeId src, PendingPtr msg) {
  if (world_->is_actuator(src)) {
    finish(src, msg);
    return;
  }
  const NodeId head = head_of(src);
  if (head < 0) {
    reattach_member(src, msg);
    return;
  }
  if (head == src) {
    send_via_head(head, msg);
    return;
  }
  // Member -> head: direct, or via one relay within the cluster radius.
  channel_->unicast(src, head, msg->bytes, EnergyBucket::kData,
                    [this, src, head, msg](bool ok) {
                      if (ok) {
                        ++msg->hops;
                        send_via_head(head, msg);
                        return;
                      }
                      // Try a relay towards the head.
                      NodeId relay = -1;
                      double best = std::numeric_limits<double>::infinity();
                      world_->visit_reachable(src, [&](NodeId r) {
                        if (!world_->can_reach(r, head)) return;
                        const double d = distance_sq(world_->position(r),
                                                     world_->position(head));
                        if (d < best) {
                          best = d;
                          relay = r;
                        }
                      });
                      if (relay < 0) {
                        reattach_member(src, msg);
                        return;
                      }
                      channel_->unicast(
                          src, relay, msg->bytes, EnergyBucket::kData,
                          [this, src, relay, head, msg](bool ok1) {
                            if (!ok1) {
                              reattach_member(src, msg);
                              return;
                            }
                            ++msg->hops;
                            channel_->unicast(
                                relay, head, msg->bytes, EnergyBucket::kData,
                                [this, src, head, msg](bool ok2) {
                                  if (!ok2) {
                                    reattach_member(src, msg);
                                    return;
                                  }
                                  ++msg->hops;
                                  send_via_head(head, msg);
                                });
                          });
                    });
}

void DDear::send_via_head(NodeId head, PendingPtr msg) {
  if (world_->is_actuator(head)) {
    finish(head, msg);
    return;
  }
  const auto it = head_paths_.find(head);
  if (it == head_paths_.end() || it->second.size() < 2) {
    repair_head_path(head, msg);
    return;
  }
  walk_head_path(head, 0, msg);
}

void DDear::walk_head_path(NodeId head, std::size_t hop_index,
                           PendingPtr msg) {
  const auto& path = head_paths_[head];
  if (hop_index + 1 >= path.size()) {
    finish(path.back(), msg);
    return;
  }
  channel_->unicast(path[hop_index], path[hop_index + 1], msg->bytes,
                    EnergyBucket::kData,
                    [this, head, hop_index, msg](bool ok) {
                      if (!ok) {
                        repair_head_path(head, msg);
                        return;
                      }
                      ++msg->hops;
                      walk_head_path(head, hop_index + 1, msg);
                    });
}

void DDear::repair_head_path(NodeId head, PendingPtr msg) {
  if (msg->retries_left-- <= 0) {
    drop(msg);
    return;
  }
  ++stats_.repairs;
  const NodeId actuator = world_->closest_actuator(head);
  if (actuator < 0 || !world_->alive(head)) {
    drop(msg);
    return;
  }
  flooder_->discover(
      head, actuator, config_.repair_ttl, EnergyBucket::kMaintenance,
      [this, head, msg](std::optional<std::vector<NodeId>> path) {
        if (!path) {
          drop(msg);
          return;
        }
        head_paths_[head] = *path;
        ++stats_.retransmissions;
        walk_head_path(head, 0, msg);  // retransmit from the head
      },
      config_.control_bytes, config_.repair_deadline_s);
}

void DDear::reattach_member(NodeId member, PendingPtr msg) {
  if (msg->retries_left-- <= 0) {
    drop(msg);
    return;
  }
  ++stats_.reattachments;
  // The member announces itself (one broadcast) and adopts the closest
  // reachable head; without one it becomes a self-head.
  channel_->broadcast(member, config_.control_bytes,
                      EnergyBucket::kMaintenance, nullptr);
  NodeId new_head = -1;
  double best = std::numeric_limits<double>::infinity();
  for (NodeId n : khop_neighborhood(member, config_.cluster_radius_hops)) {
    if (!is_head(n) || !world_->alive(n)) continue;
    const double d = distance_sq(world_->position(member),
                                 world_->position(n));
    if (d < best) {
      best = d;
      new_head = n;
    }
  }
  if (new_head < 0) {
    new_head = member;
    head_paths_.try_emplace(member);  // becomes a head, path found lazily
  }
  head_of_[member] = new_head;
  // Source retransmission after the re-attachment settles; the message
  // keeps its original timestamp and retry budget.
  ++stats_.retransmissions;
  sim_->schedule_in(0.01, [this, member, msg] { route_from_member(member, msg); });
}

void DDear::finish(NodeId actuator, PendingPtr msg) {
  ++stats_.delivered;
  Delivery d;
  d.delivered = true;
  d.delay_s = sim_->now() - msg->sent_at;
  d.physical_hops = msg->hops;
  d.actuator = actuator;
  if (msg->done) msg->done(d);
}

void DDear::drop(PendingPtr msg) {
  ++stats_.drops;
  Delivery d;
  d.delivered = false;
  d.delay_s = sim_->now() - msg->sent_at;
  d.physical_hops = msg->hops;
  if (msg->done) msg->done(d);
}

}  // namespace refer::baselines
