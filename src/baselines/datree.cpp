#include "baselines/datree.hpp"

#include <memory>

namespace refer::baselines {

using sim::EnergyBucket;

DaTree::DaTree(sim::Simulator& sim, sim::World& world, sim::Channel& channel,
               net::Flooder& flooder, DaTreeConfig config)
    : sim_(&sim),
      world_(&world),
      channel_(&channel),
      flooder_(&flooder),
      config_(config) {}

void DaTree::build(std::function<void(bool)> done) {
  // Each actuator floods one beacon; the first forwarder a sensor hears
  // *and can reach back* (link symmetry: the data flows child -> parent)
  // becomes its parent.  Across floods the first tree that claimed a node
  // keeps it.
  for (NodeId a : world_->all_of(sim::NodeKind::kActuator)) {
    flooder_->announce(a, config_.beacon_ttl, EnergyBucket::kConstruction,
                       [this](NodeId node, int /*hops*/, NodeId parent) {
                         // One tree per sensor: nodes already claimed by an
                         // earlier beacon neither re-attach nor forward the
                         // new tree's beacon.
                         if (parent_.contains(node)) return false;
                         if (!world_->can_reach(node, parent)) return false;
                         parent_.emplace(node, parent);
                         return true;
                       },
                       config_.control_bytes);
  }
  // Beacons need a moment of simulated time to spread.
  sim_->schedule_in(1.0, [done = std::move(done)] { done(true); });
}

NodeId DaTree::parent_of(NodeId sensor) const {
  const auto it = parent_.find(sensor);
  return it == parent_.end() ? -1 : it->second;
}

NodeId DaTree::root_of(NodeId sensor) const {
  NodeId at = sensor;
  for (std::size_t guard = 0; guard < parent_.size() + 2; ++guard) {
    if (world_->is_actuator(at)) return at;
    const NodeId p = parent_of(at);
    if (p < 0) return -1;
    at = p;
  }
  return -1;
}

void DaTree::send_event(NodeId src, std::size_t bytes,
                        std::function<void(const Delivery&)> done) {
  auto msg = std::make_shared<Pending>();
  msg->src = src;
  msg->bytes = bytes;
  msg->sent_at = sim_->now();
  msg->retries_left = config_.max_retransmissions;
  msg->done = std::move(done);
  forward(src, msg);
}

void DaTree::forward(NodeId at, PendingPtr msg) {
  if (world_->is_actuator(at)) {
    finish(at, msg);
    return;
  }
  const NodeId parent = parent_of(at);
  if (parent < 0) {
    repair_and_retransmit(at, msg);
    return;
  }
  channel_->unicast(at, parent, msg->bytes, EnergyBucket::kData,
                    [this, at, parent, msg](bool ok) {
                      if (!ok) {
                        repair_and_retransmit(at, msg);
                        return;
                      }
                      ++msg->hops;
                      forward(parent, msg);
                    });
}

void DaTree::repair_and_retransmit(NodeId broken_node, PendingPtr msg) {
  // The node that lost its parent broadcasts towards its root to attach
  // to a new parent (paper SIV); afterwards the *source* retransmits.
  if (msg->retries_left-- <= 0) {
    drop(msg);
    return;
  }
  ++stats_.repairs;
  NodeId root = root_of(broken_node);
  if (root < 0) root = world_->closest_actuator(broken_node);
  if (root < 0) {
    drop(msg);
    return;
  }
  flooder_->discover(
      broken_node, root, config_.repair_ttl, EnergyBucket::kMaintenance,
      [this, broken_node, msg](std::optional<std::vector<NodeId>> path) {
        if (path && path->size() >= 2) {
          // New parent = next hop towards the root.
          parent_[broken_node] = (*path)[1];
        } else {
          parent_.erase(broken_node);
        }
        ++stats_.retransmissions;
        forward(msg->src, msg);  // source retransmission
      },
      config_.control_bytes, config_.repair_deadline_s);
}

void DaTree::finish(NodeId actuator, PendingPtr msg) {
  ++stats_.delivered;
  Delivery d;
  d.delivered = true;
  d.delay_s = sim_->now() - msg->sent_at;
  d.physical_hops = msg->hops;
  d.actuator = actuator;
  if (msg->done) msg->done(d);
}

void DaTree::drop(PendingPtr msg) {
  ++stats_.drops;
  Delivery d;
  d.delivered = false;
  d.delay_s = sim_->now() - msg->sent_at;
  d.physical_hops = msg->hops;
  if (msg->done) msg->done(d);
}

}  // namespace refer::baselines
