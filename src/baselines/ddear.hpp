// D-DEAR [8] (paper SII, SIV): distributed energy-aware clustering with a
// mesh of cluster heads.
//
// Construction: every sensor exchanges hello messages with its 2-hop
// neighbourhood and the highest-energy node becomes cluster head; members
// attach to the closest head.  Each head discovers a multi-hop path to
// its closest actuator by flooding.
//
// Data: member -> head (1-2 hops) -> head's cached multi-hop path ->
// actuator.  When a path hop fails, the *head* re-floods to rebuild the
// path and retransmits from itself -- only heads maintain long paths,
// which is why D-DEAR degrades more gracefully than DaTree (paper
// Figs. 4-7) but still pays broadcast repairs.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/wsan_system.hpp"
#include "net/flooding.hpp"
#include "sim/channel.hpp"
#include "sim/energy.hpp"

namespace refer::baselines {

struct DDearConfig {
  int cluster_radius_hops = 2;
  int repair_ttl = 8;
  double repair_deadline_s = 0.5;
  int max_retransmissions = 3;
  std::size_t control_bytes = 48;
};

class DDear final : public WsanSystem {
 public:
  DDear(sim::Simulator& sim, sim::World& world, sim::Channel& channel,
        net::Flooder& flooder, sim::EnergyTracker& energy,
        DDearConfig config = {});

  void build(std::function<void(bool)> done) override;
  void send_event(NodeId src, std::size_t bytes,
                  std::function<void(const Delivery&)> done) override;
  [[nodiscard]] const char* name() const override { return "D-DEAR"; }

  [[nodiscard]] bool is_head(NodeId sensor) const;
  [[nodiscard]] NodeId head_of(NodeId sensor) const;
  [[nodiscard]] std::size_t head_count() const { return head_paths_.size(); }

  struct Stats {
    std::uint64_t repairs = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t reattachments = 0;
    std::uint64_t drops = 0;
    std::uint64_t delivered = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    NodeId src;
    std::size_t bytes;
    double sent_at;
    int hops = 0;
    int retries_left;
    std::function<void(const Delivery&)> done;
  };
  using PendingPtr = std::shared_ptr<Pending>;

  /// Nodes within `hops` forwarding hops of `node` right now.
  [[nodiscard]] std::vector<NodeId> khop_neighborhood(NodeId node, int hops);
  void elect_heads_and_paths(std::function<void(bool)> done);
  void discover_head_path(std::size_t head_index,
                          std::vector<NodeId> heads,
                          std::function<void(bool)> done);
  void route_from_member(NodeId src, PendingPtr msg);
  void send_via_head(NodeId head, PendingPtr msg);
  void walk_head_path(NodeId head, std::size_t hop_index, PendingPtr msg);
  void repair_head_path(NodeId head, PendingPtr msg);
  void reattach_member(NodeId member, PendingPtr msg);
  void finish(NodeId actuator, PendingPtr msg);
  void drop(PendingPtr msg);

  sim::Simulator* sim_;
  sim::World* world_;
  sim::Channel* channel_;
  net::Flooder* flooder_;
  sim::EnergyTracker* energy_;
  DDearConfig config_;
  Stats stats_;
  std::unordered_map<NodeId, NodeId> head_of_;            // member -> head
  std::unordered_map<NodeId, std::vector<NodeId>> head_paths_;  // head -> path to actuator
};

}  // namespace refer::baselines
