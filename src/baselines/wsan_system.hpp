// Common interface of the evaluated WSAN systems (paper SIV): REFER and
// the three baselines all expose topology construction plus the
// evaluation workload "sensor reports an event to a nearby actuator".
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/stats_registry.hpp"
#include "sim/world.hpp"

namespace refer::core {
class ReferSystem;
}  // namespace refer::core

namespace refer::baselines {

using sim::NodeId;

/// Outcome of one event report.
struct Delivery {
  bool delivered = false;
  double delay_s = 0;      ///< send -> actuator arrival (simulated seconds)
  int physical_hops = 0;   ///< frames on the air for the payload
  int kautz_hops = 0;      ///< overlay hops (0 for non-overlay baselines)
  int failovers = 0;       ///< alternate-route switches en route
  NodeId actuator = -1;    ///< receiving actuator
  std::int64_t packet_id = -1;  ///< trace id; -1 when the system has none
};

/// A WSAN under evaluation.
class WsanSystem {
 public:
  virtual ~WsanSystem() = default;

  /// Constructs the system's topology (trees / clusters / overlay);
  /// energy is charged to the construction bucket.  `done(ok)` fires when
  /// construction finished.
  virtual void build(std::function<void(bool ok)> done) = 0;

  /// Reports an event sensed at `src` towards a nearby actuator.
  virtual void send_event(NodeId src, std::size_t bytes,
                          std::function<void(const Delivery&)> done) = 0;

  /// Display name for tables.
  [[nodiscard]] virtual const char* name() const = 0;

  /// Exports system-internal counters (routing stats, drop reasons) into
  /// `registry` at end of run.  Default: nothing to export.
  virtual void export_stats(StatsRegistry& registry) const {
    (void)registry;
  }

  /// The REFER facade behind this system, when it has one (the invariant
  /// engine validates its topology at run end); null for the baselines.
  [[nodiscard]] virtual core::ReferSystem* refer_system() noexcept {
    return nullptr;
  }
};

}  // namespace refer::baselines
