// DaTree [2] (paper SII, SIV): per-actuator data-dissemination trees.
//
// Construction: every actuator floods one beacon; a sensor's parent is
// the node it first heard the beacon from, so each sensor joins exactly
// one actuator tree.  This is the cheapest construction of all systems
// (paper Fig. 10).
//
// Data: a sensor forwards up the parent chain to its tree root.  When a
// parent link fails (mobility / faulty node), the sensor broadcasts
// towards the root to re-establish a new parent, and the message is
// retransmitted *from the source* (paper SII: "a source node retransmits
// a message upon a routing failure") -- the repair storm plus
// retransmission is what costs DaTree throughput and energy under churn.
#pragma once

#include <memory>
#include <unordered_map>

#include "baselines/wsan_system.hpp"
#include "net/flooding.hpp"
#include "sim/channel.hpp"

namespace refer::baselines {

struct DaTreeConfig {
  int beacon_ttl = 12;          ///< tree depth bound for construction
  int repair_ttl = 8;           ///< flood TTL for re-parenting
  double repair_deadline_s = 0.5;
  int max_retransmissions = 3;  ///< source retries per message
  std::size_t control_bytes = 48;
};

class DaTree final : public WsanSystem {
 public:
  DaTree(sim::Simulator& sim, sim::World& world, sim::Channel& channel,
         net::Flooder& flooder, DaTreeConfig config = {});

  void build(std::function<void(bool)> done) override;
  void send_event(NodeId src, std::size_t bytes,
                  std::function<void(const Delivery&)> done) override;
  [[nodiscard]] const char* name() const override { return "DaTree"; }

  /// The current parent of a sensor (tests); -1 when detached.
  [[nodiscard]] NodeId parent_of(NodeId sensor) const;
  /// The tree root (actuator) a sensor ultimately reports to.
  [[nodiscard]] NodeId root_of(NodeId sensor) const;

  struct Stats {
    std::uint64_t repairs = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t drops = 0;
    std::uint64_t delivered = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    NodeId src;
    std::size_t bytes;
    double sent_at;
    int hops = 0;
    int retries_left;
    std::function<void(const Delivery&)> done;
  };
  using PendingPtr = std::shared_ptr<Pending>;

  void forward(NodeId at, PendingPtr msg);
  void repair_and_retransmit(NodeId broken_node, PendingPtr msg);
  void finish(NodeId actuator, PendingPtr msg);
  void drop(PendingPtr msg);

  sim::Simulator* sim_;
  sim::World* world_;
  sim::Channel* channel_;
  net::Flooder* flooder_;
  DaTreeConfig config_;
  Stats stats_;
  std::unordered_map<NodeId, NodeId> parent_;
};

}  // namespace refer::baselines
