#include "baselines/kautz_overlay.hpp"

#include <algorithm>
#include <limits>

#include "kautz/graph.hpp"
#include "refer/delaunay.hpp"

namespace refer::baselines {

using sim::EnergyBucket;

KautzOverlay::KautzOverlay(sim::Simulator& sim, sim::World& world,
                           sim::Channel& channel, net::Flooder& flooder,
                           Rng rng, KautzOverlayConfig config)
    : sim_(&sim),
      world_(&world),
      channel_(&channel),
      flooder_(&flooder),
      rng_(rng),
      config_(config) {}

bool KautzOverlay::partition_cells() {
  const auto actuators = world_->all_of(sim::NodeKind::kActuator);
  if (actuators.size() < 3) return false;
  std::vector<Point> positions;
  double min_range = world_->range(actuators.front());
  for (NodeId a : actuators) {
    positions.push_back(world_->position(a));
    min_range = std::min(min_range, world_->range(a));
  }
  const auto triangles = core::filter_by_edge_length(
      core::delaunay(positions), positions, min_range);
  if (triangles.empty()) return false;
  const auto corner_labels = core::actuator_labels();
  for (const auto& t : triangles) {
    const Cid cid = static_cast<Cid>(cells_.size());
    cells_.emplace_back(cid,
                        centroid({positions[static_cast<size_t>(t[0])],
                                  positions[static_cast<size_t>(t[1])],
                                  positions[static_cast<size_t>(t[2])]}));
    // Application-layer corner assignment: actuators take the three
    // corner labels in index order (hash order; no geometry involved).
    for (std::size_t i = 0; i < 3; ++i) {
      cells_.back().bind(corner_labels[i],
                         actuators[static_cast<std::size_t>(t[i])]);
    }
  }
  return true;
}

void KautzOverlay::assign_random_labels() {
  // Hash-style ID assignment: every non-corner label of every cell goes
  // to a uniformly random unassigned sensor, wherever it happens to be.
  const kautz::Graph graph(config_.d, 3);
  std::vector<NodeId> pool;
  for (NodeId s : world_->all_of(sim::NodeKind::kSensor)) {
    if (world_->alive(s)) pool.push_back(s);
  }
  rng_.shuffle(pool);
  std::size_t next = 0;
  const auto corner_labels = core::actuator_labels();
  for (Cell& cell : cells_) {
    for (const Label& label : graph.nodes()) {
      if (std::find(corner_labels.begin(), corner_labels.end(), label) !=
          corner_labels.end()) {
        continue;
      }
      if (next >= pool.size()) return;  // not enough sensors: partial cell
      const NodeId node = pool[next++];
      cell.bind(label, node);
      bindings_[node] = {cell.cid(), label};
    }
  }
}

void KautzOverlay::build(std::function<void(bool)> done) {
  // Actuator hello round (as in REFER's phase 1).
  for (NodeId a : world_->all_of(sim::NodeKind::kActuator)) {
    channel_->broadcast(a, config_.control_bytes, EnergyBucket::kConstruction,
                        nullptr);
  }
  if (!partition_cells()) {
    sim_->schedule_in(0.01, [done = std::move(done)] { done(false); });
    return;
  }
  assign_random_labels();
  // Every overlay arc needs a physical multi-hop path, discovered by
  // broadcasting (the dominant construction cost, paper Fig. 10).
  const kautz::Graph graph(config_.d, 3);
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (const Cell& cell : cells_) {
    for (const Label& u : cell.labels()) {
      const auto nu = cell.node_of(u);
      for (const Label& v : graph.out_neighbors(u)) {
        const auto nv = cell.node_of(v);
        if (!nu || !nv || *nu == *nv) continue;
        arcs.emplace_back(*nu, *nv);
      }
    }
  }
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  discover_arcs(std::move(arcs), 0, std::move(done));
}

void KautzOverlay::discover_arcs(std::vector<std::pair<NodeId, NodeId>> arcs,
                                 std::size_t index,
                                 std::function<void(bool)> done) {
  if (index >= arcs.size()) {
    done(true);
    return;
  }
  const auto [from, to] = arcs[index];
  flooder_->discover(
      from, to, config_.repair_ttl, EnergyBucket::kConstruction,
      [this, arcs = std::move(arcs), index, done = std::move(done)](
          std::optional<std::vector<NodeId>> path) mutable {
        if (path) {
          arc_paths_[arcs[index]] = *path;
          ++stats_.arc_paths_built;
        }
        discover_arcs(std::move(arcs), index + 1, std::move(done));
      },
      config_.control_bytes, config_.repair_deadline_s);
}

std::optional<std::pair<Cid, Label>> KautzOverlay::binding_of(
    NodeId node) const {
  const auto it = bindings_.find(node);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

void KautzOverlay::send_event(NodeId src, std::size_t bytes,
                              std::function<void(const Delivery&)> done) {
  auto msg = std::make_shared<Pending>();
  msg->bytes = bytes;
  msg->sent_at = sim_->now();
  msg->overlay_hops_left = config_.hop_budget;
  msg->done = std::move(done);

  if (world_->is_actuator(src)) {
    finish(src, msg);
    return;
  }
  const auto binding = binding_of(src);
  if (binding) {
    overlay_step(binding->first, binding->second, src, msg);
    return;
  }
  // A sensor outside the overlay walks its reading greedily towards the
  // nearest actuator until an overlay member picks it up (same entry rule
  // as REFER, for a fair comparison).
  enter_overlay(src, 4, msg);
}

void KautzOverlay::enter_overlay(NodeId at, int budget, PendingPtr msg) {
  if (budget <= 0) {
    drop(msg);
    return;
  }
  NodeId member = -1, closer = -1;
  double best_member = std::numeric_limits<double>::infinity();
  const NodeId actuator = world_->closest_actuator(at);
  if (actuator < 0) {
    drop(msg);
    return;
  }
  const Point goal = world_->position(actuator);
  double best_progress = distance_sq(world_->position(at), goal);
  world_->visit_reachable(at, [&](NodeId n) {
    if (bindings_.contains(n) || world_->is_actuator(n)) {
      const double d = distance_sq(world_->position(at), world_->position(n));
      if (d < best_member) {
        best_member = d;
        member = n;
      }
    }
    const double d_goal = distance_sq(world_->position(n), goal);
    if (d_goal < best_progress) {
      best_progress = d_goal;
      closer = n;
    }
  });
  const NodeId next = member >= 0 ? member : closer;
  if (next < 0) {
    drop(msg);
    return;
  }
  channel_->unicast(at, next, msg->bytes, EnergyBucket::kData,
                    [this, next, budget, msg](bool ok) {
                      if (!ok) {
                        drop(msg);
                        return;
                      }
                      ++msg->physical_hops;
                      if (world_->is_actuator(next)) {
                        finish(next, msg);
                        return;
                      }
                      if (const auto b = binding_of(next)) {
                        overlay_step(b->first, b->second, next, msg);
                        return;
                      }
                      enter_overlay(next, budget - 1, msg);
                    });
}

void KautzOverlay::overlay_step(Cid cid, Label label, NodeId node,
                                PendingPtr msg) {
  if (world_->is_actuator(node)) {
    finish(node, msg);
    return;
  }
  if (msg->overlay_hops_left-- <= 0) {
    drop(msg);
    return;
  }
  // Destination: the cell's corner label closest in Kautz distance.
  Label target;
  int best = std::numeric_limits<int>::max();
  for (const Label& c : core::actuator_labels()) {
    const int d = kautz::kautz_distance(label, c);
    if (d < best) {
      best = d;
      target = c;
    }
  }
  try_successors(cid, label, node,
                 kautz::disjoint_routes(config_.d, label, target), 0, msg);
}

void KautzOverlay::try_successors(Cid cid, Label label, NodeId node,
                                  std::vector<kautz::Route> routes,
                                  std::size_t choice, PendingPtr msg) {
  if (choice >= routes.size()) {
    drop(msg);
    return;
  }
  if (choice > 0) ++stats_.failovers;
  const Cell& cell = cells_[static_cast<std::size_t>(cid)];
  const auto succ_node = cell.node_of(routes[choice].successor);
  if (!succ_node || !world_->alive(*succ_node)) {
    try_successors(cid, label, node, std::move(routes), choice + 1,
                   std::move(msg));
    return;
  }
  const Label succ_label = routes[choice].successor;
  walk_arc(node, *succ_node, 0, config_.path_repairs_per_arc, msg,
           [this, cid, label, node, routes = std::move(routes), choice,
            succ_label, succ_node = *succ_node, msg](bool ok) mutable {
             if (!ok) {
               try_successors(cid, label, node, std::move(routes), choice + 1,
                              std::move(msg));
               return;
             }
             overlay_step(cid, succ_label, succ_node, std::move(msg));
           });
}

void KautzOverlay::walk_arc(NodeId from, NodeId to, std::size_t hop,
                            int repairs_left, PendingPtr msg,
                            std::function<void(bool)> done) {
  auto it = arc_paths_.find({from, to});
  if (it == arc_paths_.end() || it->second.size() < 2) {
    if (repairs_left <= 0) {
      done(false);
      return;
    }
    ++stats_.path_repairs;
    flooder_->discover(
        from, to, config_.repair_ttl, EnergyBucket::kMaintenance,
        [this, from, to, repairs_left, msg, done = std::move(done)](
            std::optional<std::vector<NodeId>> path) mutable {
          if (!path) {
            done(false);
            return;
          }
          arc_paths_[{from, to}] = *path;
          walk_arc(from, to, 0, repairs_left - 1, msg, std::move(done));
        },
        config_.control_bytes, config_.repair_deadline_s);
    return;
  }
  const auto& path = it->second;
  if (hop + 1 >= path.size()) {
    done(true);
    return;
  }
  channel_->unicast(
      path[hop], path[hop + 1], msg->bytes, EnergyBucket::kData,
      [this, from, to, hop, repairs_left, msg,
       done = std::move(done)](bool ok) mutable {
        if (ok) {
          ++msg->physical_hops;
          walk_arc(from, to, hop + 1, repairs_left, msg, std::move(done));
          return;
        }
        // The physical path broke: the current holder re-floods to the
        // overlay neighbour and the message continues from here.
        if (repairs_left <= 0) {
          done(false);
          return;
        }
        ++stats_.path_repairs;
        const auto& broken = arc_paths_[{from, to}];
        const NodeId holder = broken[hop];
        flooder_->discover(
            holder, to, config_.repair_ttl, EnergyBucket::kMaintenance,
            [this, from, to, holder, repairs_left, msg,
             done = std::move(done)](
                std::optional<std::vector<NodeId>> fresh) mutable {
              if (!fresh) {
                done(false);
                return;
              }
              // Splice: keep the walked prefix, continue on the fresh
              // suffix from the holder.
              auto& stored = arc_paths_[{from, to}];
              const auto pos =
                  std::find(stored.begin(), stored.end(), holder);
              std::vector<NodeId> spliced(stored.begin(), pos);
              spliced.insert(spliced.end(), fresh->begin(), fresh->end());
              stored = std::move(spliced);
              const auto hop_at = static_cast<std::size_t>(
                  std::find(stored.begin(), stored.end(), holder) -
                  stored.begin());
              walk_arc(from, to, hop_at, repairs_left - 1, msg,
                       std::move(done));
            },
            config_.control_bytes, config_.repair_deadline_s);
      });
}

void KautzOverlay::finish(NodeId actuator, PendingPtr msg) {
  ++stats_.delivered;
  Delivery d;
  d.delivered = true;
  d.delay_s = sim_->now() - msg->sent_at;
  d.physical_hops = msg->physical_hops;
  d.actuator = actuator;
  if (msg->done) msg->done(d);
}

void KautzOverlay::drop(PendingPtr msg) {
  ++stats_.drops;
  Delivery d;
  d.delivered = false;
  d.delay_s = sim_->now() - msg->sent_at;
  d.physical_hops = msg->physical_hops;
  if (msg->done) msg->done(d);
}

}  // namespace refer::baselines
