#include "runner/parallel_executor.hpp"

#include <chrono>

#include "runner/thread_pool.hpp"

namespace refer::runner {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

ParallelExecutor::ParallelExecutor(int jobs) : jobs_(resolve_jobs(jobs)) {}

std::vector<harness::SweepPoint> ParallelExecutor::sweep(
    harness::Scenario base, const std::vector<double>& xs,
    const std::function<void(harness::Scenario&, double)>& configure,
    int repetitions) {
  const auto t0 = Clock::now();
  auto points = harness::sweep(
      std::move(base), xs, configure, repetitions, jobs_,
      [this](const harness::JobRecord& r) { records_.push_back(r); });
  wall_s_ += seconds_since(t0);
  return points;
}

harness::AggregateMetrics ParallelExecutor::run_repeated(
    harness::SystemKind kind, harness::Scenario scenario, int repetitions) {
  const auto t0 = Clock::now();
  auto agg = harness::run_repeated(
      kind, std::move(scenario), repetitions, jobs_,
      [this](const harness::JobRecord& r) { records_.push_back(r); });
  wall_s_ += seconds_since(t0);
  return agg;
}

harness::RunMetrics ParallelExecutor::run_once(
    harness::SystemKind kind, const harness::Scenario& scenario) {
  const auto t0 = Clock::now();
  harness::JobRecord record;
  record.system = kind;
  record.seed = scenario.seed;
  record.metrics = harness::run_once(kind, scenario);
  record.wall_ms = seconds_since(t0) * 1000.0;
  wall_s_ += seconds_since(t0);
  records_.push_back(record);
  return record.metrics;
}

}  // namespace refer::runner
