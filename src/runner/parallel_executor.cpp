#include "runner/parallel_executor.hpp"

#include <chrono>
#include <future>

#include "runner/thread_pool.hpp"

namespace refer::runner {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

ParallelExecutor::ParallelExecutor(int jobs) : jobs_(resolve_jobs(jobs)) {}

std::vector<harness::SweepPoint> ParallelExecutor::sweep(
    harness::Scenario base, const std::vector<double>& xs,
    const std::function<void(harness::Scenario&, double)>& configure,
    int repetitions) {
  const auto t0 = Clock::now();
  auto points = harness::sweep(
      std::move(base), xs, configure, repetitions, jobs_,
      [this](const harness::JobRecord& r) { records_.push_back(r); });
  wall_s_ += seconds_since(t0);
  return points;
}

harness::AggregateMetrics ParallelExecutor::run_repeated(
    harness::SystemKind kind, harness::Scenario scenario, int repetitions,
    double x) {
  const auto t0 = Clock::now();
  auto agg = harness::run_repeated(
      kind, std::move(scenario), repetitions, jobs_,
      [this](const harness::JobRecord& r) { records_.push_back(r); }, x);
  wall_s_ += seconds_since(t0);
  return agg;
}

std::vector<harness::RunMetrics> ParallelExecutor::run_batch(
    const std::vector<BatchJob>& batch) {
  const auto t0 = Clock::now();
  std::vector<harness::JobRecord> out(batch.size());
  auto run_job = [&](std::size_t i) {
    const auto job_t0 = Clock::now();
    harness::JobRecord& r = out[i];
    r.system = batch[i].system;
    r.rep = static_cast<int>(i);
    r.seed = batch[i].scenario.seed;
    r.metrics = harness::run_once(batch[i].system, batch[i].scenario);
    r.wall_ms = seconds_since(job_t0) * 1000.0;
  };
  if (jobs_ <= 1 || batch.size() <= 1) {
    for (std::size_t i = 0; i < batch.size(); ++i) run_job(i);
  } else {
    ThreadPool pool(jobs_);
    std::vector<std::future<void>> futures;
    futures.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      futures.push_back(pool.submit([&run_job, i] { run_job(i); }));
    }
    for (std::future<void>& f : futures) f.get();
  }
  std::vector<harness::RunMetrics> metrics;
  metrics.reserve(out.size());
  for (harness::JobRecord& r : out) {
    metrics.push_back(r.metrics);
    records_.push_back(std::move(r));
  }
  wall_s_ += seconds_since(t0);
  return metrics;
}

harness::RunMetrics ParallelExecutor::run_once(
    harness::SystemKind kind, const harness::Scenario& scenario) {
  const auto t0 = Clock::now();
  harness::JobRecord record;
  record.system = kind;
  record.seed = scenario.seed;
  record.metrics = harness::run_once(kind, scenario);
  record.wall_ms = seconds_since(t0) * 1000.0;
  wall_s_ += seconds_since(t0);
  records_.push_back(record);
  return record.metrics;
}

}  // namespace refer::runner
