// Minimal streaming JSON writer for the structured results layer.
//
// No external dependency: the runner only ever *emits* JSON, so a small
// push-style writer (objects, arrays, scalars, correct escaping,
// locale-independent numbers) is all that is needed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace refer::runner {

/// Push-style writer producing compact, valid JSON.  Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("schema_version"); w.value(1);
///   w.key("jobs"); w.begin_array(); w.value(4); w.end_array();
///   w.end_object();
///   std::string doc = w.str();
///
/// Commas are inserted automatically; nesting is tracked so a malformed
/// sequence of calls fails loudly in debug builds via the state checks.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Writes an object key; must be followed by exactly one value.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double d);
  void value(std::int64_t i);
  void value(std::uint64_t u);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void null();

  /// Convenience: key + scalar value in one call.
  template <typename T>
  void kv(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] bool complete() const noexcept {
    return stack_.empty() && !out_.empty();
  }

  /// Escapes `s` as a JSON string literal including the quotes.
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  void prepare_value();

  enum class Frame : std::uint8_t { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_item_;  // parallel to stack_
  bool after_key_ = false;
};

}  // namespace refer::runner
