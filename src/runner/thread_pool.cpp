#include "runner/thread_pool.hpp"

#include <algorithm>

namespace refer::runner {

int resolve_jobs(int requested) noexcept {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain before exiting so queued work still completes on shutdown.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into the future
  }
}

}  // namespace refer::runner
