// Structured results layer: one versioned JSON document per benchmark
// run, so BENCH_*.json perf trajectories are first-class instead of
// scraped ASCII tables.
//
// Schema (version 5; v4 + the routing-policy comparison surface: the
// scenario gains "routing_policy" ("greedy" / "regular"), every metrics
// block gains the fairness series "airtime_gini" / "airtime_max_min" /
// "arc_load_gini" / "arc_load_max_min" plus an "arc_forwards" count
// array on jobs that recorded Kautz arcs (REFER), and aggregate blocks
// gain the matching Summary keys.  v4 documents still parse: every
// addition is a new optional key.
//
// Schema (version 4; v3 + the flight recorder: a "timeseries" object
// per job metrics block when the scenario requested a timeline
// (timeline_bucket_s > 0) -- parallel per-bucket arrays for workload,
// delay percentiles, queue waits, channel busy fraction, energy rate,
// hot nodes, route-cache hit rate, app-loop QoS, plus "phase_total_us"
// / per-bucket "phase_us" wall-clock attribution when phase_profile
// was on -- and the phase_profile scenario flag.  v3 documents (no
// timeseries, no phase_profile) still parse: every addition is a new
// optional key):
//   {
//     "schema_version": 4,
//     "tool": "referbench",
//     "benchmark": "fig04",
//     "title": "...",
//     "git": "<git describe at configure time>",
//     "jobs": 4, "repetitions": 3, "wall_s": 12.3,
//     "scenario": { <every harness::Scenario field, incl. trace_dir
//                    and profile> },
//     "systems": ["REFER", "DaTree", "D-DEAR", "Kautz-overlay"],
//     "jobs_run": [ {"x":.., "system":"REFER", "rep":0, "seed":1,
//                    "wall_ms":.., "metrics": { <every RunMetrics
//                    field, incl. delay_p50/p95/p99_ms>,
//                    "timeseries": {"bucket_s":.., "start_s":..,
//                      "window_s":.., "top_k":3, "late_samples":..,
//                      "sent":[..], "delivered":[..],
//                      "qos_delivered":[..], "qos_kbps":[..],
//                      "delivery_ratio":[..], "failovers":[..],
//                      "delay_p50_ms":[..], "delay_p95_ms":[..],
//                      "queue_wait_mean_us":[..],
//                      "queue_wait_p95_us":[..],
//                      "channel_busy_fraction":[..],
//                      "energy_rate_w":[..], "event_queue_depth":[..],
//                      "route_cache_hit_rate":[..],
//                      "app_loops_started":[..], "app_loops_ok":[..],
//                      "app_loop_mean_ms":[..],
//                      "top_airtime": [[{"node":..,"rate":..},..],..],
//                      "top_energy": [[{"node":..,"rate_w":..},..],..],
//                      "phase_us": {"medium_scan":[..], ...},
//                      "phase_total_us": {"medium_scan":.., ...}},
//                    "observability": [
//                      {"name":"router.failovers","kind":"counter",
//                       "count":17},
//                      {"name":"delivery.delay_ms","kind":"histogram",
//                       "n":..,"sum":..,"min":..,"max":..,
//                       "p50":..,"p95":..,"p99":..}, ... ] }}, ... ],
//     "series": [ {"x_label":"...", "points": [ {"x":..,
//                  "by_system": [ {"system":"REFER",
//                    "qos_throughput_kbps": {"n":..,"mean":..,
//                      "ci95":..,"min":..,"max":..}, ... } ] } ] } ]
//   }
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace refer::runner {

inline constexpr int kResultsSchemaVersion = 5;

/// `git describe --always --dirty` captured when the build was
/// configured ("unknown" outside a git checkout).
[[nodiscard]] const char* git_describe() noexcept;

class ResultsWriter {
 public:
  ResultsWriter();

  void set_tool(std::string tool) { tool_ = std::move(tool); }
  void set_benchmark(std::string name, std::string title = {}) {
    benchmark_ = std::move(name);
    title_ = std::move(title);
  }
  void set_jobs(int jobs) { jobs_ = jobs; }
  void set_repetitions(int repetitions) { repetitions_ = repetitions; }
  void set_wall_s(double wall_s) { wall_s_ = wall_s; }
  void set_scenario(const harness::Scenario& scenario) {
    scenario_ = scenario;
    has_scenario_ = true;
  }

  /// Appends per-run_once job records (deterministic order preserved).
  void add_records(const std::vector<harness::JobRecord>& records);

  /// Appends one aggregated sweep series.
  void add_series(const std::string& x_label,
                  const std::vector<harness::SweepPoint>& points);

  /// Renders the full document (always valid JSON, even when empty).
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; false when the file cannot be opened.
  bool write(const std::string& path) const;

 private:
  struct Series {
    std::string x_label;
    std::vector<harness::SweepPoint> points;
  };

  std::string tool_ = "referbench";
  std::string benchmark_;
  std::string title_;
  int jobs_ = 1;
  int repetitions_ = 0;
  double wall_s_ = 0;
  bool has_scenario_ = false;
  harness::Scenario scenario_;
  std::vector<harness::JobRecord> records_;
  std::vector<Series> series_;
};

}  // namespace refer::runner
