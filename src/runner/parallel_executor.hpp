// The experiment execution engine: decomposes sweeps / repeated runs
// into independent (system, x, seed) jobs on a fixed-size ThreadPool and
// reaggregates into the harness's SweepPoint / AggregateMetrics shapes,
// bit-identical to the serial path (run_once is deterministic and uses
// no global random state).
//
// On top of the harness entry points it accumulates a JobRecord per
// run_once call -- seed, wall time, full RunMetrics -- in deterministic
// order, which is what the ResultsWriter exports as JSON.
#pragma once

#include <functional>
#include <vector>

#include "harness/experiment.hpp"

namespace refer::runner {

class ParallelExecutor {
 public:
  /// `jobs` <= 0 means one worker per hardware thread; 1 = serial.
  explicit ParallelExecutor(int jobs = 1);

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Parallel counterpart of harness::sweep: identical results for any
  /// job count, plus a JobRecord per run appended to records().
  [[nodiscard]] std::vector<harness::SweepPoint> sweep(
      harness::Scenario base, const std::vector<double>& xs,
      const std::function<void(harness::Scenario&, double)>& configure,
      int repetitions);

  /// Parallel counterpart of harness::run_repeated.  `x` only labels
  /// the emitted JobRecords (harness::run_repeated's x).
  [[nodiscard]] harness::AggregateMetrics run_repeated(
      harness::SystemKind kind, harness::Scenario scenario, int repetitions,
      double x = 0);

  /// Single run with record-keeping (timeline / one-off views).
  [[nodiscard]] harness::RunMetrics run_once(
      harness::SystemKind kind, const harness::Scenario& scenario);

  /// One heterogeneous unit of run_batch: any (system, scenario) pair.
  struct BatchJob {
    harness::SystemKind system = harness::SystemKind::kRefer;
    harness::Scenario scenario;
  };

  /// Executes every job -- on the thread pool for jobs() > 1 -- and
  /// returns the metrics in input order; one JobRecord per job is
  /// appended to records() in the same order regardless of schedule.
  /// Used by the scenario fuzzer (src/verify), whose cases vary every
  /// scenario knob and so do not fit the homogeneous sweep shapes.  A
  /// job's Scenario::observer runs on the worker executing that job:
  /// each job must carry its own observer instance.
  [[nodiscard]] std::vector<harness::RunMetrics> run_batch(
      const std::vector<BatchJob>& batch);

  /// Every job executed so far, in deterministic (x, system, rep) order
  /// per call, calls appended in invocation order.
  [[nodiscard]] const std::vector<harness::JobRecord>& records()
      const noexcept {
    return records_;
  }

  /// Wall-clock seconds spent inside sweep()/run_repeated() calls.
  [[nodiscard]] double wall_s() const noexcept { return wall_s_; }

  void clear() noexcept {
    records_.clear();
    wall_s_ = 0;
  }

 private:
  int jobs_;
  std::vector<harness::JobRecord> records_;
  double wall_s_ = 0;
};

}  // namespace refer::runner
