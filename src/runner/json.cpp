#include "runner/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace refer::runner {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::prepare_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    assert(stack_.back() == Frame::kArray && "object member needs a key");
    if (has_item_.back()) out_.push_back(',');
    has_item_.back() = true;
  }
}

void JsonWriter::begin_object() {
  prepare_value();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  has_item_.push_back(false);
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  stack_.pop_back();
  has_item_.pop_back();
  out_.push_back('}');
}

void JsonWriter::begin_array() {
  prepare_value();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  has_item_.push_back(false);
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Frame::kArray);
  stack_.pop_back();
  has_item_.pop_back();
  out_.push_back(']');
}

void JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back() == Frame::kObject && !after_key_);
  if (has_item_.back()) out_.push_back(',');
  has_item_.back() = true;
  out_ += escape(name);
  out_.push_back(':');
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  prepare_value();
  out_ += escape(s);
}

void JsonWriter::value(bool b) {
  prepare_value();
  out_ += b ? "true" : "false";
}

void JsonWriter::value(double d) {
  prepare_value();
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the convention
    out_ += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips doubles; the decimal point is '.' under the "C"
  // locale the binaries run with (none of them call setlocale).
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
}

void JsonWriter::value(std::int64_t i) {
  prepare_value();
  out_ += std::to_string(i);
}

void JsonWriter::value(std::uint64_t u) {
  prepare_value();
  out_ += std::to_string(u);
}

void JsonWriter::null() {
  prepare_value();
  out_ += "null";
}

}  // namespace refer::runner
