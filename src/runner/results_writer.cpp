#include "runner/results_writer.hpp"

#include <cstdio>

#include "common/stats.hpp"
#include "runner/json.hpp"

#ifndef REFER_GIT_DESCRIBE
#define REFER_GIT_DESCRIBE "unknown"
#endif

namespace refer::runner {

namespace {

void write_summary(JsonWriter& w, const Summary& s) {
  w.begin_object();
  w.kv("n", s.count());
  w.kv("mean", s.mean());
  w.kv("ci95", s.ci95_half_width());
  w.kv("min", s.min());
  w.kv("max", s.max());
  w.end_object();
}

void write_aggregate(JsonWriter& w, harness::SystemKind kind,
                     const harness::AggregateMetrics& agg) {
  w.begin_object();
  w.kv("system", harness::to_string(kind));
  w.key("qos_throughput_kbps");
  write_summary(w, agg.qos_throughput_kbps);
  w.key("avg_delay_ms");
  write_summary(w, agg.avg_delay_ms);
  w.key("delay_p95_ms");
  write_summary(w, agg.delay_p95_ms);
  w.key("delivery_ratio");
  write_summary(w, agg.delivery_ratio);
  w.key("comm_energy_j");
  write_summary(w, agg.comm_energy_j);
  w.key("construction_energy_j");
  write_summary(w, agg.construction_energy_j);
  w.key("total_energy_j");
  write_summary(w, agg.total_energy_j);
  w.key("app_loop_completion_ratio");
  write_summary(w, agg.app_loop_completion_ratio);
  w.key("app_loop_p95_ms");
  write_summary(w, agg.app_loop_p95_ms);
  w.key("app_actuator_availability");
  write_summary(w, agg.app_actuator_availability);
  w.key("app_mean_recovery_s");
  write_summary(w, agg.app_mean_recovery_s);
  w.key("airtime_gini");
  write_summary(w, agg.airtime_gini);
  w.key("airtime_max_min");
  write_summary(w, agg.airtime_max_min);
  w.key("arc_load_gini");
  write_summary(w, agg.arc_load_gini);
  w.key("arc_load_max_min");
  write_summary(w, agg.arc_load_max_min);
  w.end_object();
}

template <typename T>
void write_number_array(JsonWriter& w, const char* name,
                        const std::vector<T>& values) {
  w.key(name);
  w.begin_array();
  for (const T v : values) w.value(v);
  w.end_array();
}

/// The flight-recorder series as parallel per-bucket arrays, plus the
/// two derived curves every consumer wants (qos_kbps re-derives the
/// legacy v3 qos_timeline_kbps values bit-identically; delivery_ratio
/// is per-bucket delivered/sent).  The wall-clock phase keys exist only
/// when the run had phase profiling on -- they are nondeterministic and
/// stay out of the bit-identity comparisons.
void write_timeseries(JsonWriter& w, const harness::RunMetrics& m) {
  const sim::TimeSeries& ts = m.timeseries;
  w.begin_object();
  w.kv("bucket_s", ts.bucket_s);
  w.kv("start_s", ts.start_s);
  w.kv("window_s", ts.window_s);
  w.kv("top_k", ts.top_k);
  w.kv("late_samples", ts.late_samples);
  write_number_array(w, "sent", ts.sent);
  write_number_array(w, "delivered", ts.delivered);
  write_number_array(w, "qos_delivered", ts.qos_delivered);
  write_number_array(w, "qos_kbps", m.qos_timeline_kbps);
  w.key("delivery_ratio");
  w.begin_array();
  for (std::size_t b = 0; b < ts.buckets(); ++b) {
    w.value(ts.sent[b] ? static_cast<double>(ts.delivered[b]) /
                             static_cast<double>(ts.sent[b])
                       : 0.0);
  }
  w.end_array();
  write_number_array(w, "failovers", ts.failovers);
  write_number_array(w, "delay_p50_ms", ts.delay_p50_ms);
  write_number_array(w, "delay_p95_ms", ts.delay_p95_ms);
  write_number_array(w, "queue_wait_mean_us", ts.queue_wait_mean_us);
  write_number_array(w, "queue_wait_p95_us", ts.queue_wait_p95_us);
  write_number_array(w, "channel_busy_fraction", ts.channel_busy_fraction);
  write_number_array(w, "energy_rate_w", ts.energy_rate_w);
  write_number_array(w, "event_queue_depth", ts.event_queue_depth);
  write_number_array(w, "route_cache_hit_rate", ts.route_cache_hit_rate);
  write_number_array(w, "app_loops_started", ts.app_loops_started);
  write_number_array(w, "app_loops_ok", ts.app_loops_ok);
  write_number_array(w, "app_loop_mean_ms", ts.app_loop_mean_ms);
  const auto top_k = static_cast<std::size_t>(ts.top_k);
  w.key("top_airtime");
  w.begin_array();
  for (std::size_t b = 0; b < ts.buckets(); ++b) {
    w.begin_array();
    for (std::size_t k = 0; k < top_k; ++k) {
      const std::size_t i = b * top_k + k;
      if (ts.top_airtime_node[i] < 0) break;  // unused tail slots
      w.begin_object();
      w.kv("node", ts.top_airtime_node[i]);
      w.kv("rate", ts.top_airtime_rate[i]);
      w.end_object();
    }
    w.end_array();
  }
  w.end_array();
  w.key("top_energy");
  w.begin_array();
  for (std::size_t b = 0; b < ts.buckets(); ++b) {
    w.begin_array();
    for (std::size_t k = 0; k < top_k; ++k) {
      const std::size_t i = b * top_k + k;
      if (ts.top_energy_node[i] < 0) break;
      w.begin_object();
      w.kv("node", ts.top_energy_node[i]);
      w.kv("rate_w", ts.top_energy_rate_w[i]);
      w.end_object();
    }
    w.end_array();
  }
  w.end_array();
  if (!ts.phase_wall_us.empty()) {
    w.key("phase_us");
    w.begin_object();
    for (int p = 0; p < kPhaseCount; ++p) {
      w.key(to_string(static_cast<Phase>(p)));
      w.begin_array();
      for (std::size_t b = 0; b < ts.buckets(); ++b) {
        w.value(ts.phase_wall_us[b * static_cast<std::size_t>(kPhaseCount) +
                                 static_cast<std::size_t>(p)]);
      }
      w.end_array();
    }
    w.end_object();
    w.key("phase_total_us");
    w.begin_object();
    for (int p = 0; p < kPhaseCount; ++p) {
      double total = 0;
      for (std::size_t b = 0; b < ts.buckets(); ++b) {
        total += ts.phase_wall_us[b * static_cast<std::size_t>(kPhaseCount) +
                                  static_cast<std::size_t>(p)];
      }
      w.kv(to_string(static_cast<Phase>(p)), total);
    }
    w.end_object();
  }
  w.end_object();
}

void write_metrics(JsonWriter& w, const harness::RunMetrics& m) {
  w.begin_object();
  w.kv("build_ok", m.build_ok);
  w.kv("packets_sent", m.packets_sent);
  w.kv("packets_delivered", m.packets_delivered);
  w.kv("qos_delivered", m.qos_delivered);
  w.kv("qos_throughput_kbps", m.qos_throughput_kbps);
  w.kv("avg_delay_ms", m.avg_delay_ms);
  w.kv("delay_p50_ms", m.delay_p50_ms);
  w.kv("delay_p95_ms", m.delay_p95_ms);
  w.kv("delay_p99_ms", m.delay_p99_ms);
  w.kv("delivery_ratio", m.delivery_ratio);
  w.kv("comm_energy_j", m.comm_energy_j);
  w.kv("construction_energy_j", m.construction_energy_j);
  w.kv("total_energy_j", m.total_energy_j);
  w.kv("app_loops_started", m.app_loops_started);
  w.kv("app_loops_completed", m.app_loops_completed);
  w.kv("app_loops_within_deadline", m.app_loops_within_deadline);
  w.kv("app_loop_p50_ms", m.app_loop_p50_ms);
  w.kv("app_loop_p95_ms", m.app_loop_p95_ms);
  w.kv("app_loop_p99_ms", m.app_loop_p99_ms);
  w.kv("app_loop_completion_ratio", m.app_loop_completion_ratio);
  w.kv("app_actuator_availability", m.app_actuator_availability);
  w.kv("app_recoveries", m.app_recoveries);
  w.kv("app_mean_recovery_s", m.app_mean_recovery_s);
  w.kv("airtime_gini", m.airtime_gini);
  w.kv("airtime_max_min", m.airtime_max_min);
  w.kv("arc_load_gini", m.arc_load_gini);
  w.kv("arc_load_max_min", m.arc_load_max_min);
  if (!m.arc_forwards.empty()) {
    write_number_array(w, "arc_forwards", m.arc_forwards);
  }
  if (!m.qos_timeline_kbps.empty()) {
    w.key("qos_timeline_kbps");
    w.begin_array();
    for (const double v : m.qos_timeline_kbps) w.value(v);
    w.end_array();
  }
  if (m.timeseries.bucket_s > 0) {
    w.key("timeseries");
    write_timeseries(w, m);
  }
  w.key("observability");
  w.begin_array();
  for (const StatsRegistry::Entry& e : m.observability) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("kind", e.is_histogram ? "histogram" : "counter");
    if (e.is_histogram) {
      w.kv("n", e.count);
      w.kv("sum", e.sum);
      w.kv("min", e.min);
      w.kv("max", e.max);
      w.kv("p50", e.p50);
      w.kv("p95", e.p95);
      w.kv("p99", e.p99);
    } else {
      w.kv("count", e.count);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_scenario(JsonWriter& w, const harness::Scenario& sc) {
  w.begin_object();
  w.kv("area_side_m", sc.area_side_m);
  w.kv("n_actuators", sc.n_actuators);
  w.kv("n_sensors", sc.n_sensors);
  w.kv("sensor_spread_m", sc.sensor_spread_m);
  w.kv("sensor_range_m", sc.sensor_range_m);
  w.kv("actuator_range_m", sc.actuator_range_m);
  w.kv("initial_battery_j", sc.initial_battery_j);
  w.kv("mobile", sc.mobile);
  w.kv("min_speed_mps", sc.min_speed_mps);
  w.kv("max_speed_mps", sc.max_speed_mps);
  w.kv("sources_per_round", sc.sources_per_round);
  w.kv("round_period_s", sc.round_period_s);
  w.kv("packets_per_second", sc.packets_per_second);
  w.kv("packet_bytes", sc.packet_bytes);
  w.kv("warmup_s", sc.warmup_s);
  w.kv("measure_s", sc.measure_s);
  w.kv("qos_deadline_s", sc.qos_deadline_s);
  w.kv("faulty_nodes", sc.faulty_nodes);
  w.kv("fault_period_s", sc.fault_period_s);
  w.kv("loss_probability", sc.loss_probability);
  w.kv("planted_bug", sc.planted_bug);
  w.kv("app_enabled", sc.app_enabled);
  w.kv("app_event_period_s", sc.app_event_period_s);
  w.kv("app_loop_deadline_s", sc.app_loop_deadline_s);
  w.kv("app_keepalive_period_s", sc.app_keepalive_period_s);
  w.kv("app_keepalive_miss_limit", sc.app_keepalive_miss_limit);
  w.kv("app_break_rate_hz", sc.app_break_rate_hz);
  w.kv("app_repair_s", sc.app_repair_s);
  w.kv("app_fault_schedule", sc.app_fault_schedule);
  w.kv("seed", sc.seed);
  w.kv("csma", sc.csma);
  w.kv("spatial_index", sc.spatial_index);
  w.kv("neighbor_cache", sc.neighbor_cache);
  w.kv("routing_policy", harness::to_string(sc.routing_policy));
  w.kv("legacy_event_queue", sc.legacy_event_queue);
  w.kv("timeline_bucket_s", sc.timeline_bucket_s);
  w.kv("phase_profile", sc.phase_profile);
  w.kv("trace_dir", sc.trace_dir);
  w.kv("profile", sc.profile);
  w.end_object();
}

}  // namespace

const char* git_describe() noexcept { return REFER_GIT_DESCRIBE; }

ResultsWriter::ResultsWriter() = default;

void ResultsWriter::add_records(
    const std::vector<harness::JobRecord>& records) {
  records_.insert(records_.end(), records.begin(), records.end());
}

void ResultsWriter::add_series(
    const std::string& x_label,
    const std::vector<harness::SweepPoint>& points) {
  series_.push_back({x_label, points});
}

std::string ResultsWriter::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema_version", kResultsSchemaVersion);
  w.kv("tool", tool_);
  w.kv("benchmark", benchmark_);
  w.kv("title", title_);
  w.kv("git", git_describe());
  w.kv("jobs", jobs_);
  w.kv("repetitions", repetitions_);
  w.kv("wall_s", wall_s_);
  if (has_scenario_) {
    w.key("scenario");
    write_scenario(w, scenario_);
  }
  w.key("systems");
  w.begin_array();
  for (const harness::SystemKind kind : harness::kAllSystems) {
    w.value(harness::to_string(kind));
  }
  w.end_array();
  w.key("jobs_run");
  w.begin_array();
  for (const harness::JobRecord& r : records_) {
    w.begin_object();
    w.kv("x", r.x);
    w.kv("system", harness::to_string(r.system));
    w.kv("rep", r.rep);
    w.kv("seed", r.seed);
    if (r.policy != harness::RoutingPolicy::kGreedy) {
      w.kv("routing_policy", harness::to_string(r.policy));
    }
    w.kv("wall_ms", r.wall_ms);
    w.key("metrics");
    write_metrics(w, r.metrics);
    w.end_object();
  }
  w.end_array();
  w.key("series");
  w.begin_array();
  for (const Series& series : series_) {
    w.begin_object();
    w.kv("x_label", series.x_label);
    w.key("points");
    w.begin_array();
    for (const harness::SweepPoint& point : series.points) {
      w.begin_object();
      w.kv("x", point.x);
      w.key("by_system");
      w.begin_array();
      for (std::size_t i = 0; i < point.by_system.size(); ++i) {
        write_aggregate(w, harness::kAllSystems[i], point.by_system[i]);
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool ResultsWriter::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string doc = to_json();
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace refer::runner
