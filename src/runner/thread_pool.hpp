// Fixed-size worker pool with a futures-based submit().
//
// Deliberately work-stealing-free: one shared FIFO queue behind one
// mutex.  Experiment jobs are seconds long, so queue contention is
// irrelevant, and a plain FIFO keeps the execution order easy to reason
// about when debugging a parallel sweep.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace refer::runner {

/// Returns the pool size to use for a requested job count: values < 1
/// mean "one job per hardware thread".
[[nodiscard]] int resolve_jobs(int requested) noexcept;

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains the queue: every task submitted before destruction runs to
  /// completion (their futures all become ready), then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.  An exception
  /// thrown by `fn` is captured in the future and rethrown by get().
  /// Throws std::runtime_error when the pool is shutting down.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Tasks accepted so far (for tests / progress reporting).
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace refer::runner
