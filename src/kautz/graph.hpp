// The Kautz digraph K(d, k) (paper Definition 1, SIII-A).
//
// K(d, k) has n = (d+1) d^{k-1} nodes and (d+1) d^k arcs, diameter k, and is
// d-connected with minimum degree -- the optimum of the graph connection
// problem (paper Lemma 3.1 / Proposition 3.1).  Between any two distinct
// nodes there are d internally disjoint paths.
#pragma once

#include <cstdint>
#include <vector>

#include "kautz/label.hpp"

namespace refer::kautz {

/// Immutable description of K(d, k); stateless apart from (d, k), so cheap
/// to copy.  All Label arguments must satisfy contains().
class Graph {
 public:
  /// Requires d >= 1 and 1 <= k <= Label::kMaxLength.
  Graph(int d, int k);

  [[nodiscard]] int degree() const noexcept { return d_; }
  [[nodiscard]] int diameter() const noexcept { return k_; }
  [[nodiscard]] int alphabet() const noexcept { return d_ + 1; }

  /// (d+1) d^{k-1}.
  [[nodiscard]] std::uint64_t node_count() const noexcept;
  /// (d+1) d^k == node_count() * d.
  [[nodiscard]] std::uint64_t edge_count() const noexcept;

  /// True iff the label is a node of this graph.
  [[nodiscard]] bool contains(const Label& l) const noexcept;

  /// All nodes in dense-index order.  O(n); intended for tests, embedding
  /// and verification, not per-packet work.
  [[nodiscard]] std::vector<Label> nodes() const;

  /// The d out-neighbours u_2...u_k a, a != u_k, in increasing digit order.
  [[nodiscard]] std::vector<Label> out_neighbors(const Label& u) const;

  /// The d in-neighbours b u_1...u_{k-1}, b != u_1, in increasing digit
  /// order.
  [[nodiscard]] std::vector<Label> in_neighbors(const Label& u) const;

  /// True iff (u, v) is an arc of the digraph.
  [[nodiscard]] bool has_arc(const Label& u, const Label& v) const noexcept;

  /// A Hamiltonian cycle of K(d, k) as a node sequence (first node repeated
  /// at the end).  Exists for every Kautz graph (paper SIII-A); computed by
  /// Hierholzer's algorithm on K(d, k-1), whose Eulerian circuits are
  /// exactly the Hamiltonian cycles of K(d, k).  For k == 1 the cycle
  /// 0 -> 1 -> ... -> d -> 0 over the complete digraph is returned.
  [[nodiscard]] std::vector<Label> hamiltonian_cycle() const;

 private:
  int d_;
  int k_;
};

}  // namespace refer::kautz
