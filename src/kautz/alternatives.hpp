// Alternative overlay topologies for the paper's SIII-A comparison.
//
// Proposition 3.1 rests on two citations: the Kautz graph K(d,k) has more
// nodes than the de Bruijn graph B(d,k) at the same degree/diameter
// ((d+1)d^{k-1} vs d^k), and a far smaller diameter than the hypercube at
// the same node count (k = log_d n vs n-dimensional cube's n).  These
// classes make the claim checkable: each exposes the same enumeration /
// neighbourhood / distance interface as kautz::Graph, and the tests and
// bench/ablation_topology verify the trade-off numerically.
#pragma once

#include <cstdint>
#include <vector>

#include "kautz/label.hpp"

namespace refer::kautz {

/// The de Bruijn digraph B(d, k): labels are length-k strings over d
/// letters (adjacent repeats allowed), arcs u_1...u_k -> u_2...u_k a.
/// Degree d (counting the self-loop-ish shift), diameter k, d^k nodes.
class DeBruijnGraph {
 public:
  DeBruijnGraph(int d, int k);

  [[nodiscard]] int degree() const noexcept { return d_; }
  [[nodiscard]] int diameter() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t node_count() const noexcept;

  [[nodiscard]] bool contains(const Label& l) const noexcept;
  [[nodiscard]] std::vector<Label> nodes() const;
  [[nodiscard]] std::vector<Label> out_neighbors(const Label& u) const;

  /// Shift-register shortest-path distance (suffix/prefix overlap),
  /// analogous to the Kautz distance.
  [[nodiscard]] static int distance(const Label& u, const Label& v) noexcept;

 private:
  int d_;
  int k_;
};

/// The binary hypercube H(n): 2^n nodes, degree n, diameter n.
class HypercubeGraph {
 public:
  explicit HypercubeGraph(int n);

  [[nodiscard]] int degree() const noexcept { return n_; }
  [[nodiscard]] int diameter() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t node_count() const noexcept {
    return 1ULL << n_;
  }

  [[nodiscard]] std::vector<std::uint64_t> neighbors(
      std::uint64_t node) const;

  /// Hamming distance.
  [[nodiscard]] static int distance(std::uint64_t a,
                                    std::uint64_t b) noexcept;

 private:
  int n_;
};

/// One row of the SIII-A trade-off comparison.
struct TopologyTradeoff {
  const char* family;
  std::uint64_t nodes;
  int degree;
  int diameter;
};

/// For a target overlay size, the smallest configuration of each family
/// holding at least `min_nodes` nodes with degree <= max_degree (Kautz /
/// de Bruijn sweep k; hypercube is fixed by size).
[[nodiscard]] std::vector<TopologyTradeoff> compare_topologies(
    std::uint64_t min_nodes, int degree);

}  // namespace refer::kautz
