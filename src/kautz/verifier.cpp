#include "kautz/verifier.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace refer::kautz {

std::unordered_map<Label, int, LabelHash> bfs_distances(const Graph& graph,
                                                        const Label& source) {
  std::unordered_map<Label, int, LabelHash> dist;
  dist[source] = 0;
  std::deque<Label> frontier{source};
  while (!frontier.empty()) {
    const Label u = frontier.front();
    frontier.pop_front();
    const int du = dist[u];
    for (const Label& w : graph.out_neighbors(u)) {
      if (dist.emplace(w, du + 1).second) frontier.push_back(w);
    }
  }
  return dist;
}

int bfs_distance(const Graph& graph, const Label& u, const Label& v) {
  if (u == v) return 0;
  std::unordered_map<Label, int, LabelHash> dist;
  dist[u] = 0;
  std::deque<Label> frontier{u};
  while (!frontier.empty()) {
    const Label x = frontier.front();
    frontier.pop_front();
    for (const Label& w : graph.out_neighbors(x)) {
      if (w == v) return dist[x] + 1;
      if (dist.emplace(w, dist[x] + 1).second) frontier.push_back(w);
    }
  }
  return -1;  // unreachable (never happens in a Kautz graph)
}

bool all_paths_valid(const Graph& graph, const Label& u, const Label& v,
                     const std::vector<std::vector<Label>>& paths) {
  for (const auto& path : paths) {
    if (path.size() < 2 || path.front() != u || path.back() != v) return false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!graph.has_arc(path[i], path[i + 1])) return false;
    }
  }
  return true;
}

bool internally_disjoint(const std::vector<std::vector<Label>>& paths) {
  std::unordered_set<Label, LabelHash> seen;
  for (const auto& path : paths) {
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (!seen.insert(path[i]).second) return false;
    }
  }
  // Also reject a node appearing twice within one path (a cycle).
  for (const auto& path : paths) {
    std::unordered_set<Label, LabelHash> nodes;
    for (const auto& n : path) {
      if (!nodes.insert(n).second) return false;
    }
  }
  return true;
}

bool cross_disjoint(const std::vector<std::vector<Label>>& paths) {
  std::vector<std::unordered_set<Label, LabelHash>> internal;
  internal.reserve(paths.size());
  for (const auto& path : paths) {
    std::unordered_set<Label, LabelHash> nodes;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) nodes.insert(path[i]);
    internal.push_back(std::move(nodes));
  }
  for (std::size_t a = 0; a < internal.size(); ++a) {
    for (std::size_t b = a + 1; b < internal.size(); ++b) {
      for (const auto& n : internal[a]) {
        if (internal[b].contains(n)) return false;
      }
    }
  }
  return true;
}

bool all_simple(const std::vector<std::vector<Label>>& paths) {
  for (const auto& path : paths) {
    std::unordered_set<Label, LabelHash> nodes;
    for (const auto& n : path) {
      if (!nodes.insert(n).second) return false;
    }
  }
  return true;
}

namespace {
/// One BFS from u to v avoiding `banned` internal nodes; returns the path
/// (empty when none) and accumulates visit counts.
std::vector<Label> bfs_avoiding(const Graph& graph, const Label& u,
                                const Label& v,
                                const std::unordered_set<Label, LabelHash>& banned,
                                std::size_t* visited) {
  std::unordered_map<Label, Label, LabelHash> parent;
  std::unordered_set<Label, LabelHash> seen{u};
  std::deque<Label> frontier{u};
  while (!frontier.empty()) {
    const Label x = frontier.front();
    frontier.pop_front();
    if (visited) ++*visited;
    for (const Label& w : graph.out_neighbors(x)) {
      if (w != v && banned.contains(w)) continue;
      if (!seen.insert(w).second) continue;
      parent.emplace(w, x);
      if (w == v) {
        std::vector<Label> path{v};
        for (Label cur = v; cur != u;) {
          cur = parent.at(cur);
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(w);
    }
  }
  return {};
}
}  // namespace

std::vector<std::vector<Label>> route_generation_disjoint_paths(
    const Graph& graph, const Label& u, const Label& v) {
  std::vector<std::vector<Label>> paths;
  std::unordered_set<Label, LabelHash> banned;
  for (int i = 0; i < graph.degree(); ++i) {
    auto path = bfs_avoiding(graph, u, v, banned, nullptr);
    if (path.empty()) break;
    for (std::size_t j = 1; j + 1 < path.size(); ++j) banned.insert(path[j]);
    paths.push_back(std::move(path));
  }
  return paths;
}

RouteGenCost route_generation_cost(const Graph& graph, const Label& u,
                                   const Label& v) {
  RouteGenCost cost;
  std::unordered_set<Label, LabelHash> banned;
  for (int i = 0; i < graph.degree(); ++i) {
    auto path = bfs_avoiding(graph, u, v, banned, &cost.nodes_visited);
    if (path.empty()) break;
    for (std::size_t j = 1; j + 1 < path.size(); ++j) banned.insert(path[j]);
    ++cost.paths_found;
  }
  return cost;
}

}  // namespace refer::kautz
