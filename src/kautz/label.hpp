// Kautz labels (paper Definition 1).
//
// A node of the Kautz graph K(d, k) is a string u_1 u_2 ... u_k over the
// alphabet {0, 1, ..., d} (d+1 letters) with no two consecutive letters
// equal.  An arc leads from u_1...u_k to u_2...u_k a for every letter
// a != u_k, so each node has exactly d out-neighbours and d in-neighbours.
//
// Label stores the digit string with inline storage (no allocation) because
// routing decisions in the simulator manipulate labels on every hop.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace refer::kautz {

/// One letter of the Kautz alphabet.
using Digit = std::uint8_t;

/// A Kautz digit string of length <= kMaxLength.
///
/// Label itself only enforces the "no equal adjacent digits" rule via
/// valid(); whether the digits fit a particular alphabet (d+1 letters) is
/// checked by Graph::contains.
class Label {
 public:
  static constexpr int kMaxLength = 16;

  /// Empty label (length 0).
  constexpr Label() = default;

  /// Builds from explicit digits, e.g. Label{1,2,3,0}.
  Label(std::initializer_list<int> digits);

  /// Parses a string of digit characters '0'-'9'; returns nullopt on any
  /// non-digit character or if the string is longer than kMaxLength.
  [[nodiscard]] static std::optional<Label> parse(std::string_view s);

  [[nodiscard]] constexpr int length() const noexcept { return len_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return len_ == 0; }

  /// Digit access, 0-based (paper indices are 1-based: u_{i+1} == (*this)[i]).
  [[nodiscard]] constexpr Digit operator[](int i) const noexcept {
    return digits_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] constexpr Digit first() const noexcept { return digits_[0]; }
  [[nodiscard]] constexpr Digit last() const noexcept {
    return digits_[static_cast<std::size_t>(len_ - 1)];
  }

  /// True iff no two consecutive digits are equal (Kautz validity).
  [[nodiscard]] bool valid() const noexcept;

  /// True iff valid() and every digit is < alphabet (= d+1 for K(d,k)).
  [[nodiscard]] bool valid_for_alphabet(int alphabet) const noexcept;

  /// The out-neighbour u_2...u_k a (left shift, append a).  Precondition:
  /// non-empty.  The result is a valid Kautz label iff a != last().
  [[nodiscard]] Label shift_append(Digit a) const noexcept;

  /// The in-neighbour b u_1...u_{k-1} (right shift, prepend b).
  [[nodiscard]] Label shift_prepend(Digit b) const noexcept;

  /// Left rotation by one (kid_l in paper SIII-B2): u_2...u_k u_1.
  /// Note: for labels where u_1 == u_k the result is not a valid Kautz
  /// label; in K(d,3) actuator KIDs (012, 120, 201) it always is.
  [[nodiscard]] Label rotate_left() const noexcept;

  /// Replaces digit i.
  [[nodiscard]] Label with_digit(int i, Digit v) const noexcept;

  /// Suffix of the given length (<= length()).
  [[nodiscard]] Label suffix(int n) const noexcept;
  /// Prefix of the given length (<= length()).
  [[nodiscard]] Label prefix(int n) const noexcept;

  /// Appends a digit (length grows by one).  Precondition: room available.
  [[nodiscard]] Label append(Digit a) const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Label& a, const Label& b) noexcept {
    if (a.len_ != b.len_) return false;
    for (int i = 0; i < a.len_; ++i) {
      if (a.digits_[static_cast<std::size_t>(i)] !=
          b.digits_[static_cast<std::size_t>(i)])
        return false;
    }
    return true;
  }
  friend constexpr auto operator<=>(const Label& a, const Label& b) noexcept {
    for (int i = 0; i < a.len_ && i < b.len_; ++i) {
      const auto c = a.digits_[static_cast<std::size_t>(i)] <=>
                     b.digits_[static_cast<std::size_t>(i)];
      if (c != std::strong_ordering::equal) return c;
    }
    return a.len_ <=> b.len_;
  }

  /// Stable 64-bit hash (FNV-1a over digits and length).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  /// Dense index of this label among all valid labels of K(d, k), in
  /// lexicographic-free enumeration order: index = c_1 * d^{k-1} + sum of
  /// rank(u_i | u_{i-1}) * d^{k-i}.  Inverse of from_index.
  [[nodiscard]] std::uint64_t to_index(int d) const noexcept;

  /// Label of K(d, k) with the given dense index in [0, (d+1)d^{k-1}).
  [[nodiscard]] static Label from_index(std::uint64_t index, int d, int k);

 private:
  std::array<Digit, kMaxLength> digits_{};
  int len_ = 0;
};

/// Hash functor for unordered containers.
struct LabelHash {
  std::size_t operator()(const Label& l) const noexcept {
    return static_cast<std::size_t>(l.hash());
  }
};

/// L(U, V): length of the longest suffix of U that is a prefix of V (paper
/// SIII-B).  For equal labels returns the full length.  Both labels must
/// have equal length.
[[nodiscard]] int overlap(const Label& u, const Label& v) noexcept;

/// Kautz shortest-path distance k - L(U, V); 0 iff u == v.
[[nodiscard]] int kautz_distance(const Label& u, const Label& v) noexcept;

}  // namespace refer::kautz
