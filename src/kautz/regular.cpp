#include "kautz/regular.hpp"

#include <cassert>
#include <stdexcept>

namespace refer::kautz {

Digit regular_separator(int d, const Label& u, const Label& v) noexcept {
  assert(d >= 1 && u.length() == v.length() && !u.empty());
  const int index =
      (static_cast<int>(u.first()) + static_cast<int>(v.last())) % d;
  // The index-th smallest letter of {0..d} \ {u_k}: letters below u_k
  // keep their value, letters at or above it are shifted up by one.
  const int forbidden = static_cast<int>(u.last());
  const int letter = index < forbidden ? index : index + 1;
  return static_cast<Digit>(letter);
}

RegularRoute regular_route(int d, const Label& u, const Label& v) {
  assert(u.length() == v.length());
  RegularRoute route;
  if (u == v) return route;
  int at = 0;
  if (u.last() == v.first()) {
    route.has_separator = true;
    route.digits[static_cast<std::size_t>(at++)] = regular_separator(d, u, v);
  }
  for (int i = 0; i < v.length(); ++i) {
    route.digits[static_cast<std::size_t>(at++)] = v[i];
  }
  route.length = at;
  return route;
}

Label regular_successor(int d, const Label& u, const Label& v) {
  const RegularRoute route = regular_route(d, u, v);
  if (route.length == 0) {
    throw std::logic_error("regular_successor: u == v has no successor");
  }
  return u.shift_append(route.digits[0]);
}

std::vector<Label> regular_path(int d, const Label& u, const Label& v) {
  const RegularRoute route = regular_route(d, u, v);
  std::vector<Label> path;
  path.reserve(static_cast<std::size_t>(route.length) + 1);
  path.push_back(u);
  Label at = u;
  for (int i = 0; i < route.length && at != v; ++i) {
    at = at.shift_append(route.digits[static_cast<std::size_t>(i)]);
    path.push_back(at);
  }
  if (at != v) {
    throw std::logic_error("regular_path: route did not reach destination");
  }
  return path;
}

}  // namespace refer::kautz
