#include "kautz/graph.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace refer::kautz {

Graph::Graph(int d, int k) : d_(d), k_(k) {
  if (d < 1) throw std::invalid_argument("Kautz graph requires d >= 1");
  if (k < 1 || k > Label::kMaxLength) {
    throw std::invalid_argument("Kautz graph requires 1 <= k <= 16");
  }
}

std::uint64_t Graph::node_count() const noexcept {
  std::uint64_t n = static_cast<std::uint64_t>(d_) + 1;
  for (int i = 1; i < k_; ++i) n *= static_cast<std::uint64_t>(d_);
  return n;
}

std::uint64_t Graph::edge_count() const noexcept {
  return node_count() * static_cast<std::uint64_t>(d_);
}

bool Graph::contains(const Label& l) const noexcept {
  return l.length() == k_ && l.valid_for_alphabet(alphabet());
}

std::vector<Label> Graph::nodes() const {
  const std::uint64_t n = node_count();
  std::vector<Label> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(Label::from_index(i, d_, k_));
  }
  return out;
}

std::vector<Label> Graph::out_neighbors(const Label& u) const {
  assert(contains(u));
  std::vector<Label> out;
  out.reserve(static_cast<std::size_t>(d_));
  for (Digit a = 0; a < alphabet(); ++a) {
    if (a == u.last()) continue;
    out.push_back(u.shift_append(a));
  }
  return out;
}

std::vector<Label> Graph::in_neighbors(const Label& u) const {
  assert(contains(u));
  std::vector<Label> out;
  out.reserve(static_cast<std::size_t>(d_));
  for (Digit b = 0; b < alphabet(); ++b) {
    if (b == u.first()) continue;
    out.push_back(u.shift_prepend(b));
  }
  return out;
}

bool Graph::has_arc(const Label& u, const Label& v) const noexcept {
  if (!contains(u) || !contains(v)) return false;
  for (int i = 0; i + 1 < k_; ++i) {
    if (u[i + 1] != v[i]) return false;
  }
  // The appended letter must differ from u_k.  For k >= 2 this is implied
  // by v's own validity (v_{k-1} == u_k != v_k); for k == 1 (complete
  // digraph, no self-loops) it must be checked explicitly.
  return k_ > 1 || u.last() != v.last();
}

std::vector<Label> Graph::hamiltonian_cycle() const {
  if (k_ == 1) {
    std::vector<Label> cycle;
    for (Digit a = 0; a < alphabet(); ++a) cycle.push_back(Label{}.append(a));
    cycle.push_back(cycle.front());
    return cycle;
  }
  // Hamiltonian cycles of K(d, k) correspond to Eulerian circuits of
  // K(d, k-1): every node of K(d, k) is an arc of K(d, k-1).
  const Graph base(d_, k_ - 1);
  // Per-node cursor over out-letters; Hierholzer, iterative.
  std::unordered_map<Label, Digit, LabelHash> cursor;
  auto next_letter = [&](const Label& node) -> std::optional<Digit> {
    Digit& c = cursor[node];  // value-initialised to 0 on first touch
    while (c < alphabet()) {
      const Digit a = c++;
      if (a != node.last()) return a;
    }
    return std::nullopt;
  };

  std::vector<Label> stack;          // nodes of K(d, k-1)
  std::vector<Label> circuit_nodes;  // Eulerian circuit, reversed
  stack.push_back(Label::from_index(0, d_, k_ - 1));
  while (!stack.empty()) {
    const Label node = stack.back();
    if (auto a = next_letter(node)) {
      stack.push_back(node.shift_append(*a));
    } else {
      circuit_nodes.push_back(node);
      stack.pop_back();
    }
  }
  // circuit_nodes (reversed) is a closed walk using every arc once; turn
  // consecutive node pairs into K(d, k) labels.
  std::vector<Label> cycle;
  cycle.reserve(circuit_nodes.size());
  for (std::size_t i = circuit_nodes.size(); i-- > 1;) {
    const Label& from = circuit_nodes[i];
    const Label& to = circuit_nodes[i - 1];
    cycle.push_back(from.append(to.last()));
  }
  cycle.push_back(cycle.front());
  return cycle;
}

}  // namespace refer::kautz
