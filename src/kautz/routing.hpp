// ID-only Kautz routing (paper SIII-C1): the greedy shortest protocol,
// in/out-digits (Definition 3), conflict nodes (Definition 4, Propositions
// 3.3-3.7) and the d-disjoint-path table of Theorem 3.8.
//
// The central result reproduced here: given only its own label U and the
// destination label V, a node can enumerate the successors of all d
// internally-disjoint U-V paths together with their (nominal) lengths --
// no route-discovery flood and no per-destination state.  Theorem 3.8:
//
//   successor                       length   condition
//   u_2...u_k u_{k-l}  (conflict)   k + 2    u_{k-l} != v_{l+1}
//   u_2...u_k v_{l+1}  (shortest)   k - l    always
//   u_2...u_k v_1                   k        u_k != v_1
//   u_2...u_k a_i      (other)      k + 1    a_i not in {v_1, v_{l+1}, u_{k-l}}
//
// where l = L(U, V).  The conflict successor must *not* route greedily on
// its first hop: Proposition 3.7 redirects it to u_3...u_k u_{k-l} v_{l+1}
// so that its path does not intersect the shortest path.
//
// Edge cases beyond the paper's statement (handled here, exercised in
// tests): when l = 0, v_{l+1} == v_1 and the shortest class absorbs the v_1
// class; when u_{k-l} equals u_k, v_1 or v_{l+1}, the conflict class is
// empty.  Classification priority is shortest > v1 > conflict > other.
#pragma once

#include <optional>
#include <vector>

#include "kautz/label.hpp"

namespace refer::kautz {

/// Which row of Theorem 3.8 a route belongs to.
enum class PathClass {
  kShortest,  ///< out-digit v_{l+1}; length k - l
  kV1,        ///< out-digit v_1;     length k
  kConflict,  ///< out-digit u_{k-l}; length k + 2 (with Prop. 3.7 redirect)
  kOther,     ///< any other out-digit; length k + 1
};

[[nodiscard]] const char* to_string(PathClass c) noexcept;

/// One of the d disjoint U-V routes as seen from U.
struct Route {
  Label successor;      ///< U's next hop on this path
  PathClass path_class = PathClass::kOther;
  int nominal_length = 0;  ///< Theorem 3.8 length (upper bound on actual)
  /// For the conflict route only: the mandatory second hop
  /// u_3...u_k u_{k-l} v_{l+1} (Proposition 3.7).  Greedy routing resumes
  /// after it.
  std::optional<Label> forced_second_hop;
};

/// Greedy shortest protocol: U's next hop towards V, i.e.
/// u_2...u_k v_{l+1}.  Precondition: u != v, equal lengths.
[[nodiscard]] Label greedy_successor(const Label& u, const Label& v) noexcept;

/// In-digit of the path through U's successor with out-digit `alpha`
/// (Proposition 3.3): u_{k-l} for the shortest path, u_k when alpha == v_1,
/// alpha otherwise.
[[nodiscard]] Digit in_digit(const Label& u, const Label& v,
                             Digit alpha) noexcept;

/// The conflict out-digit u_{k-l} if a conflict route exists for this pair
/// (Definition 4 extended with the validity conditions above), else nullopt.
[[nodiscard]] std::optional<Digit> conflict_digit(const Label& u,
                                                  const Label& v) noexcept;

/// All d disjoint U-V routes, sorted by nominal length ascending (ties in
/// successor digit order).  Precondition: u != v, both in K(d, *).
/// This is the routing table a REFER node derives per packet, in O(d + k).
[[nodiscard]] std::vector<Route> disjoint_routes(int d, const Label& u,
                                                 const Label& v);

/// Materialises the full node sequence of a route as the *protocol*
/// executes it: U, successor, (forced second hop,) then greedy hops until
/// V.  Lengths are <= nominal (greedy can shortcut through coincidental
/// label overlaps).  `max_hops` guards against routing bugs; throws
/// std::logic_error if exceeded.
[[nodiscard]] std::vector<Label> materialize_path(const Label& u,
                                                  const Label& v,
                                                  const Route& route,
                                                  int max_hops = 64);

/// The *canonical* path of Theorem 3.8: the deterministic construction the
/// theorem's in-digit argument describes.  The shortest route follows the
/// greedy protocol; every non-shortest route appends, after its successor
/// (and forced redirect digit, for conflict routes), the digits
/// v_1 v_2 ... v_k in order.  Canonical paths realise the nominal length
/// exactly and are the object of the disjointness guarantee.
[[nodiscard]] std::vector<Label> canonical_path(const Label& u,
                                                const Label& v,
                                                const Route& route);

/// The complete shortest path U -> ... -> V under the greedy protocol.
[[nodiscard]] std::vector<Label> shortest_path(const Label& u, const Label& v);

}  // namespace refer::kautz
