// Regular all-to-all routing on Kautz graphs (Faber & Streib,
// "All-to-all Routing on Kautz Graphs: Regular Routing Beats Shortest
// Paths").
//
// Greedy shortest-path routing (routing.hpp) concentrates all-to-all
// traffic on a skewed subset of arcs: the out-digit it appends is
// v_{l+1}, so arcs whose appended digit continues a popular destination
// prefix carry far more source-destination pairs than others.  Regular
// routing gives up shortness for *structure*: every route is the fixed
// concatenation walk that appends the destination's digits
// v_1 v_2 ... v_k in order,
//
//   u_1...u_k -> u_2...u_k v_1 -> ... -> v_1...v_k,
//
// so after step i the walk sits on the window u_{i+1}...u_k v_1...v_i.
// Counting pairs that cross a fixed arc at step i: the source's free
// digits u_1...u_i contribute d^{i-1} choices and the destination's
// free digits v_{i+1}...v_k contribute d^{k-i}, giving d^{k-1} pairs
// per arc per step -- *independent of the arc*.  Summed over the k
// steps the no-separator family loads every arc of K(d,k) exactly
// equally; that rotation symmetry is what "regular" buys and shortest
// paths cannot.
//
// When u_k == v_1 the direct concatenation is not an arc walk (appending
// v_1 would repeat the last digit), so one separator digit s != u_k is
// inserted first (length k + 1).  The separator is a pure function of
// the two labels -- s = the ((u_1 + v_k) mod d)-th smallest letter of
// {0..d} \ {u_k} -- chosen to scatter the extra load across all d
// candidate arcs instead of biasing one, and re-derivable offline so
// trace_report --strict can audit every regular hop without run state.
//
// Length bound: every regular route takes at most k + 1 hops (k when
// u_k != v_1).  The walk is truncated at the first arrival at v: labels
// with a long u/v overlap reach v before the full window slides past,
// and forwarding a packet already standing at its destination would be
// absurd in a real network.  Truncation only ever *removes* load, so
// the near-uniform bound survives it (pinned by the arc-load
// conformance tests).
#pragma once

#include <array>
#include <vector>

#include "kautz/label.hpp"

namespace refer::kautz {

/// The out-digit program of one regular route: the packet appends
/// digits[0], digits[1], ... in order until it stands on the
/// destination label.  length == 0 means u == v (already delivered).
struct RegularRoute {
  std::array<Digit, Label::kMaxLength + 1> digits{};
  int length = 0;           ///< hops in the untruncated program (k or k+1)
  bool has_separator = false;  ///< true iff digits[0] is the separator
};

/// The separator digit inserted when u_k == v_1: the
/// ((u_1 + v_k) mod d)-th smallest letter of {0..d} \ {u_k}.  Pure
/// function of the labels (no run state), so an offline auditor can
/// re-derive it.  Precondition: equal lengths, d >= 1.
[[nodiscard]] Digit regular_separator(int d, const Label& u,
                                      const Label& v) noexcept;

/// The full out-digit program of the regular U -> V route.
/// Precondition: u and v are valid equal-length labels of K(d, *).
[[nodiscard]] RegularRoute regular_route(int d, const Label& u,
                                         const Label& v);

/// First hop of the regular route (the label after appending
/// digits[0]).  Precondition: u != v.
[[nodiscard]] Label regular_successor(int d, const Label& u, const Label& v);

/// Materialises the node sequence U, ..., V of the regular route,
/// truncated at the first arrival at V.  size() - 1 <= k + 1 hops.
[[nodiscard]] std::vector<Label> regular_path(int d, const Label& u,
                                              const Label& v);

/// Per-degree convenience wrapper (mirrors how a REFER node holds d
/// fixed for the lifetime of its cell).
class RegularRouter {
 public:
  explicit RegularRouter(int d) noexcept : d_(d) {}

  [[nodiscard]] int degree() const noexcept { return d_; }
  [[nodiscard]] RegularRoute route(const Label& u, const Label& v) const {
    return regular_route(d_, u, v);
  }
  [[nodiscard]] Label successor(const Label& u, const Label& v) const {
    return regular_successor(d_, u, v);
  }
  [[nodiscard]] std::vector<Label> path(const Label& u, const Label& v) const {
    return regular_path(d_, u, v);
  }

 private:
  int d_;
};

}  // namespace refer::kautz
