#include "kautz/alternatives.hpp"

#include <cassert>
#include <stdexcept>

namespace refer::kautz {

DeBruijnGraph::DeBruijnGraph(int d, int k) : d_(d), k_(k) {
  if (d < 1) throw std::invalid_argument("de Bruijn requires d >= 1");
  if (k < 1 || k > Label::kMaxLength) {
    throw std::invalid_argument("de Bruijn requires 1 <= k <= 16");
  }
}

std::uint64_t DeBruijnGraph::node_count() const noexcept {
  std::uint64_t n = 1;
  for (int i = 0; i < k_; ++i) n *= static_cast<std::uint64_t>(d_);
  return n;
}

bool DeBruijnGraph::contains(const Label& l) const noexcept {
  if (l.length() != k_) return false;
  for (int i = 0; i < k_; ++i) {
    if (l[i] >= d_) return false;
  }
  return true;
}

std::vector<Label> DeBruijnGraph::nodes() const {
  std::vector<Label> out;
  out.reserve(node_count());
  // Count in base d.
  Label cur;
  for (int i = 0; i < k_; ++i) cur = cur.append(0);
  for (std::uint64_t n = node_count(), i = 0; i < n; ++i) {
    out.push_back(cur);
    for (int pos = k_ - 1; pos >= 0; --pos) {
      const Digit v = cur[pos];
      if (v + 1 < d_) {
        cur = cur.with_digit(pos, static_cast<Digit>(v + 1));
        break;
      }
      cur = cur.with_digit(pos, 0);
    }
  }
  return out;
}

std::vector<Label> DeBruijnGraph::out_neighbors(const Label& u) const {
  assert(contains(u));
  std::vector<Label> out;
  out.reserve(static_cast<std::size_t>(d_));
  for (Digit a = 0; a < d_; ++a) out.push_back(u.shift_append(a));
  return out;
}

int DeBruijnGraph::distance(const Label& u, const Label& v) noexcept {
  if (u == v) return 0;
  return u.length() - overlap(u, v);
}

HypercubeGraph::HypercubeGraph(int n) : n_(n) {
  if (n < 1 || n > 62) throw std::invalid_argument("hypercube needs 1<=n<=62");
}

std::vector<std::uint64_t> HypercubeGraph::neighbors(
    std::uint64_t node) const {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n_));
  for (int b = 0; b < n_; ++b) out.push_back(node ^ (1ULL << b));
  return out;
}

int HypercubeGraph::distance(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<int>(__builtin_popcountll(a ^ b));
}

std::vector<TopologyTradeoff> compare_topologies(std::uint64_t min_nodes,
                                                 int degree) {
  std::vector<TopologyTradeoff> rows;
  // Kautz K(degree, k): smallest k with enough nodes.
  {
    std::uint64_t n = static_cast<std::uint64_t>(degree) + 1;
    int k = 1;
    while (n < min_nodes && k < Label::kMaxLength) {
      n *= static_cast<std::uint64_t>(degree);
      ++k;
    }
    rows.push_back({"Kautz K(d,k)", n, degree, k});
  }
  // de Bruijn B(degree, k).
  {
    std::uint64_t n = static_cast<std::uint64_t>(degree);
    int k = 1;
    while (n < min_nodes && k < Label::kMaxLength) {
      n *= static_cast<std::uint64_t>(degree);
      ++k;
    }
    rows.push_back({"de Bruijn B(d,k)", n, degree, k});
  }
  // Hypercube H(m): smallest m with 2^m >= min_nodes; degree == diameter
  // == m regardless of the requested degree budget.
  {
    int m = 1;
    while ((1ULL << m) < min_nodes && m < 62) ++m;
    rows.push_back({"Hypercube H(m)", 1ULL << m, m, m});
  }
  return rows;
}

}  // namespace refer::kautz
