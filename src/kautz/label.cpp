#include "kautz/label.hpp"

#include <cassert>

namespace refer::kautz {

Label::Label(std::initializer_list<int> digits) {
  assert(digits.size() <= static_cast<std::size_t>(kMaxLength));
  for (int v : digits) {
    assert(v >= 0 && v <= 255);
    digits_[static_cast<std::size_t>(len_++)] = static_cast<Digit>(v);
  }
}

std::optional<Label> Label::parse(std::string_view s) {
  if (s.size() > static_cast<std::size_t>(kMaxLength)) return std::nullopt;
  Label l;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    l.digits_[static_cast<std::size_t>(l.len_++)] = static_cast<Digit>(c - '0');
  }
  return l;
}

bool Label::valid() const noexcept {
  for (int i = 0; i + 1 < len_; ++i) {
    if (digits_[static_cast<std::size_t>(i)] ==
        digits_[static_cast<std::size_t>(i + 1)])
      return false;
  }
  return true;
}

bool Label::valid_for_alphabet(int alphabet) const noexcept {
  if (!valid()) return false;
  for (int i = 0; i < len_; ++i) {
    if (digits_[static_cast<std::size_t>(i)] >= alphabet) return false;
  }
  return true;
}

Label Label::shift_append(Digit a) const noexcept {
  assert(len_ > 0);
  Label out;
  out.len_ = len_;
  for (int i = 0; i + 1 < len_; ++i) {
    out.digits_[static_cast<std::size_t>(i)] =
        digits_[static_cast<std::size_t>(i + 1)];
  }
  out.digits_[static_cast<std::size_t>(len_ - 1)] = a;
  return out;
}

Label Label::shift_prepend(Digit b) const noexcept {
  assert(len_ > 0);
  Label out;
  out.len_ = len_;
  out.digits_[0] = b;
  for (int i = 0; i + 1 < len_; ++i) {
    out.digits_[static_cast<std::size_t>(i + 1)] =
        digits_[static_cast<std::size_t>(i)];
  }
  return out;
}

Label Label::rotate_left() const noexcept {
  assert(len_ > 0);
  return shift_append(first());
}

Label Label::with_digit(int i, Digit v) const noexcept {
  assert(i >= 0 && i < len_);
  Label out = *this;
  out.digits_[static_cast<std::size_t>(i)] = v;
  return out;
}

Label Label::suffix(int n) const noexcept {
  assert(n >= 0 && n <= len_);
  Label out;
  out.len_ = n;
  for (int i = 0; i < n; ++i) {
    out.digits_[static_cast<std::size_t>(i)] =
        digits_[static_cast<std::size_t>(len_ - n + i)];
  }
  return out;
}

Label Label::prefix(int n) const noexcept {
  assert(n >= 0 && n <= len_);
  Label out;
  out.len_ = n;
  for (int i = 0; i < n; ++i) {
    out.digits_[static_cast<std::size_t>(i)] =
        digits_[static_cast<std::size_t>(i)];
  }
  return out;
}

Label Label::append(Digit a) const noexcept {
  assert(len_ < kMaxLength);
  Label out = *this;
  out.digits_[static_cast<std::size_t>(out.len_++)] = a;
  return out;
}

std::string Label::to_string() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(len_));
  for (int i = 0; i < len_; ++i) {
    s += static_cast<char>('0' + digits_[static_cast<std::size_t>(i)]);
  }
  return s;
}

std::uint64_t Label::hash() const noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;  // FNV prime
  };
  mix(static_cast<std::uint8_t>(len_));
  for (int i = 0; i < len_; ++i) mix(digits_[static_cast<std::size_t>(i)]);
  return h;
}

std::uint64_t Label::to_index(int d) const noexcept {
  assert(len_ > 0);
  // First digit: d+1 choices.  Each subsequent digit: d choices (any letter
  // except its predecessor); rank = digit, minus one if digit > predecessor.
  std::uint64_t idx = digits_[0];
  for (int i = 1; i < len_; ++i) {
    const Digit cur = digits_[static_cast<std::size_t>(i)];
    const Digit prev = digits_[static_cast<std::size_t>(i - 1)];
    const std::uint64_t rank = cur - (cur > prev ? 1u : 0u);
    idx = idx * static_cast<std::uint64_t>(d) + rank;
  }
  return idx;
}

Label Label::from_index(std::uint64_t index, int d, int k) {
  assert(k > 0 && k <= kMaxLength);
  // Decode in reverse: the last k-1 positions are base-d ranks, the leading
  // position is base-(d+1).
  std::array<std::uint64_t, kMaxLength> ranks{};
  for (int i = k - 1; i >= 1; --i) {
    ranks[static_cast<std::size_t>(i)] = index % static_cast<std::uint64_t>(d);
    index /= static_cast<std::uint64_t>(d);
  }
  Label out;
  out.len_ = k;
  out.digits_[0] = static_cast<Digit>(index);
  for (int i = 1; i < k; ++i) {
    const Digit prev = out.digits_[static_cast<std::size_t>(i - 1)];
    auto digit = static_cast<Digit>(ranks[static_cast<std::size_t>(i)]);
    if (digit >= prev) ++digit;  // skip the predecessor letter
    out.digits_[static_cast<std::size_t>(i)] = digit;
  }
  return out;
}

int overlap(const Label& u, const Label& v) noexcept {
  assert(u.length() == v.length());
  const int k = u.length();
  for (int l = k; l >= 1; --l) {
    bool match = true;
    for (int i = 0; i < l; ++i) {
      if (u[k - l + i] != v[i]) {
        match = false;
        break;
      }
    }
    if (match) return l;
  }
  return 0;
}

int kautz_distance(const Label& u, const Label& v) noexcept {
  if (u == v) return 0;
  return u.length() - overlap(u, v);
}

}  // namespace refer::kautz
