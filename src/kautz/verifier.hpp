// Ground-truth verification utilities for the Kautz routing theory.
//
// These are deliberately naive (BFS / exhaustive) implementations used by
// the test-suite and by the micro-benchmarks as the "route generation
// algorithm" baseline that the paper's related work (BAKE / DFTR [18, 21])
// relies on and that Theorem 3.8 renders unnecessary.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kautz/graph.hpp"
#include "kautz/routing.hpp"

namespace refer::kautz {

/// BFS distances from `source` to every node of the graph.
[[nodiscard]] std::unordered_map<Label, int, LabelHash> bfs_distances(
    const Graph& graph, const Label& source);

/// BFS shortest-path length from u to v.
[[nodiscard]] int bfs_distance(const Graph& graph, const Label& u,
                               const Label& v);

/// True iff every path is a valid walk in the graph (consecutive labels are
/// arcs) from u to v.
[[nodiscard]] bool all_paths_valid(const Graph& graph, const Label& u,
                                   const Label& v,
                                   const std::vector<std::vector<Label>>& paths);

/// True iff the paths are internally disjoint: no two paths share a node
/// other than the common endpoints u and v, and no path revisits a node.
[[nodiscard]] bool internally_disjoint(
    const std::vector<std::vector<Label>>& paths);

/// Weaker check: no two *different* paths share an internal node (a path
/// may still revisit its own nodes).  This is the property the completed
/// Theorem 3.8 construction satisfies universally; full simplicity can
/// fail for degenerate periodic destination labels when k > 3 (never for
/// k == 3, REFER's deployment configuration).  Verified exhaustively in
/// tests/kautz_property_test.cpp.
[[nodiscard]] bool cross_disjoint(const std::vector<std::vector<Label>>& paths);

/// True iff no path revisits one of its own nodes.
[[nodiscard]] bool all_simple(const std::vector<std::vector<Label>>& paths);

/// The DFTR-style route generation algorithm [21]: BFS tree expansion from
/// u that discovers d internally-disjoint u-v paths by exploring the graph
/// (message-expensive in a real network; used as the baseline in
/// bench/micro_routing_bench).  Returns up to d disjoint paths found via
/// repeated BFS with node removal.
[[nodiscard]] std::vector<std::vector<Label>> route_generation_disjoint_paths(
    const Graph& graph, const Label& u, const Label& v);

/// Number of nodes "visited" by route_generation_disjoint_paths; models the
/// message cost of the tree-building protocol the paper says REFER avoids.
struct RouteGenCost {
  std::size_t nodes_visited = 0;
  std::size_t paths_found = 0;
};
[[nodiscard]] RouteGenCost route_generation_cost(const Graph& graph,
                                                 const Label& u,
                                                 const Label& v);

}  // namespace refer::kautz
