// Bounded memo cache for Theorem 3.8 route tables.
//
// disjoint_routes(d, u, v) is a pure function of its arguments, and real
// traffic repeats (source, destination) pairs heavily -- a flow pays the
// derivation on every hop of every packet.  This cache keeps the table
// per (d, u, v) in a fixed-size direct-mapped array: bounded memory, no
// allocation or eviction bookkeeping on the hot path, and a stale slot is
// simply recomputed (correctness never depends on a hit).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "kautz/routing.hpp"

namespace refer::kautz {

class RouteCache {
 public:
  /// `capacity` is rounded up to a power of two (direct-mapped slots).
  explicit RouteCache(std::size_t capacity = 512);

  /// Fills `out` with disjoint_routes(d, u, v), serving repeats from the
  /// cache.  Identical output (same order) to calling disjoint_routes
  /// directly.
  void lookup(int d, const Label& u, const Label& v, std::vector<Route>& out);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  /// Theorem 3.8 yields exactly d routes; degrees at or above this bypass
  /// the cache (the paper's evaluations use d <= 4).
  static constexpr std::size_t kMaxRoutes = 10;

  struct Entry {
    Label u;
    Label v;
    int d = -1;  ///< -1 = empty slot
    std::uint8_t count = 0;
    std::array<Route, kMaxRoutes> routes;
  };

  std::vector<Entry> entries_;
  std::size_t mask_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace refer::kautz
