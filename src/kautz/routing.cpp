#include "kautz/routing.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace refer::kautz {

const char* to_string(PathClass c) noexcept {
  switch (c) {
    case PathClass::kShortest: return "shortest";
    case PathClass::kV1: return "v1";
    case PathClass::kConflict: return "conflict";
    case PathClass::kOther: return "other";
  }
  return "?";
}

Label greedy_successor(const Label& u, const Label& v) noexcept {
  assert(u != v);
  const int l = overlap(u, v);
  // Next needed digit of V is v_{l+1} (0-based v[l]).  l < k because u != v.
  return u.shift_append(v[l]);
}

Digit in_digit(const Label& u, const Label& v, Digit alpha) noexcept {
  const int k = u.length();
  const int l = overlap(u, v);
  if (alpha == v[l]) return u[k - l - 1];  // shortest path: u_{k-l}
  if (alpha == v.first()) return u.last();  // alpha == v_1: in-digit u_k
  return alpha;
}

std::optional<Digit> conflict_digit(const Label& u, const Label& v) noexcept {
  const int k = u.length();
  const int l = overlap(u, v);
  const Digit c = u[k - l - 1];  // u_{k-l}, 1-based
  const Digit v_next = v[l];     // v_{l+1}
  // Theorem 3.8 row (1) requires u_{k-l} != v_{l+1}; additionally the
  // out-digit must be a legal arc (c != u_k) and must not already be
  // claimed by the v_1 class (c != v_1).
  if (c == v_next || c == u.last() || c == v.first()) return std::nullopt;
  return c;
}

std::vector<Route> disjoint_routes(int d, const Label& u, const Label& v) {
  assert(u != v);
  assert(u.length() == v.length());
  const int k = u.length();
  const int l = overlap(u, v);
  const Digit v1 = v.first();
  const Digit v_next = v[l];                       // v_{l+1}
  const Digit u_conf = u[k - l - 1];               // u_{k-l}
  const std::optional<Digit> c = conflict_digit(u, v);
  // The shortest path's in-digit is u_{k-l}; any other path whose natural
  // in-digit (Prop. 3.3) equals it must be redirected onto the one in-digit
  // left free, at the cost of path length k+2:
  //  (a) the paper's conflict node alpha == u_{k-l}: free in-digit is
  //      v_{l+1} (Prop. 3.7), except when v_{l+1} == v_1 -- not a legal
  //      in-digit -- where the free in-digit is u_k instead;
  //  (b) the v1-class node alpha == v_1 when u_{k-l} == u_k: its natural
  //      in-digit u_k collides with the shortest path's; the free in-digit
  //      is v_{l+1}.
  // Cases (a) and (b) are mutually exclusive.  Both go beyond the theorem
  // as printed, which implicitly assumes v_1, v_{l+1}, u_{k-l}, u_k
  // pairwise "generic"; see tests/kautz_theorem_test.cpp.
  const bool v1_collides = (u_conf == u.last()) && v1 != u.last() &&
                           v1 != v_next;  // case (b) applies to the v1 node

  std::vector<Route> routes;
  routes.reserve(static_cast<std::size_t>(d));
  for (Digit a = 0; a < d + 1; ++a) {
    if (a == u.last()) continue;  // not a legal out-digit
    Route r;
    r.successor = u.shift_append(a);
    if (a == v_next) {
      r.path_class = PathClass::kShortest;
      r.nominal_length = k - l;
    } else if (a == v1 && !v1_collides) {
      r.path_class = PathClass::kV1;
      r.nominal_length = k;
    } else if (a == v1 && v1_collides) {
      r.path_class = PathClass::kConflict;
      r.nominal_length = k + 2;
      r.forced_second_hop = r.successor.shift_append(v_next);  // case (b)
    } else if (c && a == *c) {
      r.path_class = PathClass::kConflict;
      r.nominal_length = k + 2;
      // Proposition 3.7: forced next hop u_3...u_k u_{k-l} v_{l+1}; in the
      // v_{l+1} == v_1 sub-case the free in-digit is u_k instead.
      const Digit gamma = (v_next == v1) ? u.last() : v_next;
      r.forced_second_hop = r.successor.shift_append(gamma);
    } else {
      r.path_class = PathClass::kOther;
      r.nominal_length = k + 1;
    }
    routes.push_back(r);
  }
  std::sort(routes.begin(), routes.end(), [](const Route& x, const Route& y) {
    if (x.nominal_length != y.nominal_length) {
      return x.nominal_length < y.nominal_length;
    }
    return x.successor < y.successor;
  });
  return routes;
}

std::vector<Label> materialize_path(const Label& u, const Label& v,
                                    const Route& route, int max_hops) {
  std::vector<Label> path{u, route.successor};
  if (path.back() == v) return path;
  if (route.forced_second_hop) {
    path.push_back(*route.forced_second_hop);
    if (path.back() == v) return path;
  }
  while (path.back() != v) {
    if (static_cast<int>(path.size()) > max_hops) {
      throw std::logic_error("materialize_path: exceeded max_hops");
    }
    path.push_back(greedy_successor(path.back(), v));
  }
  return path;
}

std::vector<Label> canonical_path(const Label& u, const Label& v,
                                  const Route& route) {
  if (route.path_class == PathClass::kShortest) return shortest_path(u, v);
  std::vector<Label> path{u, route.successor};
  if (route.forced_second_hop) path.push_back(*route.forced_second_hop);
  // Append v_1 ... v_k in order, except that the v1-class successor already
  // carries v_1 as its last digit and resumes from v_2.
  const int start = route.path_class == PathClass::kV1 ? 1 : 0;
  for (int i = start; i < v.length(); ++i) {
    path.push_back(path.back().shift_append(v[i]));
  }
  return path;
}

std::vector<Label> shortest_path(const Label& u, const Label& v) {
  std::vector<Label> path{u};
  while (path.back() != v) {
    path.push_back(greedy_successor(path.back(), v));
  }
  return path;
}

}  // namespace refer::kautz
