#include "kautz/route_cache.hpp"

#include <bit>

namespace refer::kautz {

RouteCache::RouteCache(std::size_t capacity) {
  const std::size_t slots = std::bit_ceil(capacity < 2 ? 2 : capacity);
  entries_.resize(slots);
  mask_ = slots - 1;
}

void RouteCache::lookup(int d, const Label& u, const Label& v,
                        std::vector<Route>& out) {
  if (static_cast<std::size_t>(d) >= kMaxRoutes) {
    out = disjoint_routes(d, u, v);
    return;
  }
  // Mix the two label hashes and the degree; the shifts decorrelate
  // (u, v) from (v, u).
  const std::uint64_t h =
      u.hash() * 0x9e3779b97f4a7c15ULL + (v.hash() << 1) +
      static_cast<std::uint64_t>(d);
  Entry& e = entries_[static_cast<std::size_t>(h) & mask_];
  if (e.d == d && e.u == u && e.v == v) {
    ++hits_;
  } else {
    ++misses_;
    const std::vector<Route> routes = disjoint_routes(d, u, v);
    e.u = u;
    e.v = v;
    e.d = d;
    e.count = static_cast<std::uint8_t>(routes.size());
    for (std::size_t i = 0; i < routes.size(); ++i) e.routes[i] = routes[i];
  }
  out.assign(e.routes.begin(), e.routes.begin() + e.count);
}

}  // namespace refer::kautz
