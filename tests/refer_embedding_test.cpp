// Tests for the Kautz embedding protocol: cell partition, colouring,
// sensor assignment, roles, CAN membership, construction energy.
#include <gtest/gtest.h>

#include <set>

#include "kautz/graph.hpp"
#include "refer/delaunay.hpp"
#include "refer/embedding.hpp"
#include "refer_fixture.hpp"

namespace refer::core {
namespace {

using test::PaperScenario;

TEST(Delaunay, QuincunxGivesFourTriangles) {
  const std::vector<Point> pts{{125, 125}, {375, 125}, {125, 375},
                               {375, 375}, {250, 250}};
  const auto tris = delaunay(pts);
  ASSERT_EQ(tris.size(), 4u);
  // Every triangle uses the centre point (index 4).
  for (const auto& t : tris) {
    EXPECT_EQ(t[2], 4);
  }
}

TEST(Delaunay, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(delaunay({}).empty());
  EXPECT_TRUE(delaunay({{0, 0}, {1, 1}}).empty());
}

TEST(Delaunay, SquareGivesTwoTriangles) {
  const std::vector<Point> pts{{0, 0}, {100, 0}, {0, 100}, {100, 100}};
  EXPECT_EQ(delaunay(pts).size(), 2u);
}

TEST(Delaunay, FilterDropsLongEdges) {
  const std::vector<Point> pts{{0, 0}, {100, 0}, {0, 100}, {100, 100}};
  auto tris = delaunay(pts);
  EXPECT_EQ(filter_by_edge_length(tris, pts, 150).size(), 2u);
  EXPECT_TRUE(filter_by_edge_length(tris, pts, 120).empty());  // diagonal 141
}

TEST(ThreeColor, WheelIsColorable) {
  // W4: centre 4 adjacent to cycle 0-1-2-3.
  std::vector<std::vector<int>> adj{
      {1, 3, 4}, {0, 2, 4}, {1, 3, 4}, {2, 0, 4}, {0, 1, 2, 3}};
  const auto colors = EmbeddingProtocol::three_color(adj);
  ASSERT_EQ(colors.size(), 5u);
  for (std::size_t v = 0; v < adj.size(); ++v) {
    for (int w : adj[v]) {
      EXPECT_NE(colors[v], colors[static_cast<std::size_t>(w)]);
    }
  }
}

TEST(ThreeColor, K4IsNotColorable) {
  std::vector<std::vector<int>> adj{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}};
  EXPECT_TRUE(EmbeddingProtocol::three_color(adj).empty());
}

TEST(ThreeColor, EmptyGraph) {
  EXPECT_TRUE(EmbeddingProtocol::three_color({}).empty() ||
              EmbeddingProtocol::three_color({}).size() == 0);
}

TEST(CellTemplates, K23ScheduleMatchesPaper) {
  const auto schedule = k23_query_schedule();
  ASSERT_EQ(schedule.size(), 4u);
  // (5,201) -> (5,010) -> (5,101) -> (5,012)
  EXPECT_EQ(schedule[0].from, (Label{2, 0, 1}));
  EXPECT_EQ(schedule[0].to, (Label{0, 1, 2}));
  EXPECT_EQ(schedule[0].assigns[0], (Label{0, 1, 0}));
  EXPECT_EQ(schedule[0].assigns[1], (Label{1, 0, 1}));
  // S_i = 121 -> 210 -> 102 -> S_j = 020.
  EXPECT_EQ(schedule[3].from, (Label{1, 2, 1}));
  EXPECT_EQ(schedule[3].to, (Label{0, 2, 0}));
  // All 12 K(2,3) labels are covered: 3 actuators + 8 path + 1 fill-in.
  std::set<Label> labels;
  for (const auto& l : actuator_labels()) labels.insert(l);
  for (const auto& q : schedule) {
    labels.insert(q.assigns[0]);
    labels.insert(q.assigns[1]);
  }
  labels.insert(k23_fill_in().label);
  EXPECT_EQ(labels.size(), 12u);
  // And they are exactly the nodes of K(2,3).
  const kautz::Graph g(2, 3);
  for (const auto& l : labels) EXPECT_TRUE(g.contains(l));
}

TEST(CellTemplates, ScheduleEdgesAreKautzPaths) {
  // Each query template's from -> a1 -> a2 -> to must be a K(2,3) walk.
  const kautz::Graph g(2, 3);
  for (const auto& q : k23_query_schedule()) {
    EXPECT_TRUE(g.has_arc(q.from, q.assigns[0]));
    EXPECT_TRUE(g.has_arc(q.assigns[0], q.assigns[1]));
    EXPECT_TRUE(g.has_arc(q.assigns[1], q.to));
  }
  const auto fill = k23_fill_in();
  // 102 -> 021 -> 210: the fill-in label connects its two anchors.
  EXPECT_TRUE(g.has_arc(fill.neighbor_b, fill.label));
  EXPECT_TRUE(g.has_arc(fill.label, fill.neighbor_a));
}

TEST(Cell, BindUnbindRoundTrip) {
  Cell cell(3, {100, 100});
  cell.bind(Label{0, 1, 2}, 7);
  EXPECT_EQ(cell.node_of(Label{0, 1, 2}), std::optional<NodeId>(7));
  EXPECT_EQ(cell.label_of(7), std::optional<Label>(Label{0, 1, 2}));
  cell.bind(Label{0, 1, 2}, 9);  // rebind replaces
  EXPECT_EQ(cell.node_of(Label{0, 1, 2}), std::optional<NodeId>(9));
  EXPECT_FALSE(cell.label_of(7).has_value());
  cell.unbind(Label{0, 1, 2});
  EXPECT_EQ(cell.size(), 0u);
}

class EmbeddingTest : public PaperScenario {};

TEST_F(EmbeddingTest, PaperScenarioEmbedsFourCompleteCells) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer());
  const auto& topo = system->topology();
  ASSERT_EQ(topo.cell_count(), 4u);
  for (Cid cid = 0; cid < 4; ++cid) {
    EXPECT_TRUE(topo.cell(cid).complete(2))
        << "cell " << cid << " has " << topo.cell(cid).size() << " labels";
  }
}

TEST_F(EmbeddingTest, SensorAssignmentsAreABijection) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer());
  const auto& topo = system->topology();
  std::set<NodeId> assigned;
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    for (NodeId n : topo.cell(cid).nodes()) {
      if (world.is_actuator(n)) continue;
      EXPECT_TRUE(assigned.insert(n).second)
          << "sensor " << n << " serves two labels/cells";
      const auto binding = topo.sensor_binding(n);
      ASSERT_TRUE(binding.has_value());
      EXPECT_EQ(binding->cid, cid);
      EXPECT_EQ(topo.cell(cid).node_of(binding->kid), std::optional(n));
    }
  }
  EXPECT_EQ(assigned.size(), 4u * 9u);  // 9 sensors per K(2,3) cell
}

TEST_F(EmbeddingTest, ActuatorsKeepOneKidAcrossCells) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer());
  const auto& topo = system->topology();
  for (NodeId a : actuators) {
    const auto label = topo.actuator_label(a);
    ASSERT_TRUE(label.has_value());
    for (Cid cid : topo.actuator_cells(a)) {
      EXPECT_EQ(topo.cell(cid).label_of(a), label);
    }
  }
  // The centre actuator serves all 4 cells.
  EXPECT_EQ(topo.actuator_cells(actuators[4]).size(), 4u);
}

TEST_F(EmbeddingTest, CornersOfEveryCellHaveDistinctKids) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer());
  const auto& topo = system->topology();
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    const auto corners = topo.cell(cid).corner_actuators();
    std::set<NodeId> nodes;
    for (const auto& c : corners) {
      ASSERT_TRUE(c.has_value());
      nodes.insert(*c);
    }
    EXPECT_EQ(nodes.size(), 3u);
  }
}

TEST_F(EmbeddingTest, RolesPartitionTheSensors) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer());
  const auto& topo = system->topology();
  int active = 0, wait = 0, sleep = 0;
  for (NodeId s : sensors) {
    switch (topo.role(s)) {
      case Role::kActive: ++active; break;
      case Role::kWait: ++wait; break;
      case Role::kSleep: ++sleep; break;
      case Role::kActuator: FAIL() << "sensor with actuator role"; break;
    }
  }
  EXPECT_EQ(active, 36);
  EXPECT_EQ(active + wait + sleep, 200);
  EXPECT_GT(wait, 0) << "dense deployment must have candidates";
}

TEST_F(EmbeddingTest, CellsJoinTheCan) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer());
  const auto& topo = system->topology();
  EXPECT_EQ(topo.can().size(), 4u);
  for (Cid cid = 0; cid < 4; ++cid) {
    EXPECT_TRUE(topo.can().contains(cid));
  }
}

TEST_F(EmbeddingTest, ConstructionEnergyOnlyInConstructionBucket) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer(core::ReferConfig{.run_maintenance = false}));
  EXPECT_GT(energy.construction_total(), 0.0);
  EXPECT_DOUBLE_EQ(energy.total(sim::EnergyBucket::kData), 0.0);
}

TEST_F(EmbeddingTest, StatsReflectTheProtocolSchedule) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer(core::ReferConfig{.run_maintenance = false}));
  const auto& stats = system->embedding_stats();
  // 4 cells x 4 path queries each.
  EXPECT_EQ(stats.path_queries, 16);
  EXPECT_EQ(stats.cells_embedded, 4);
  EXPECT_GT(stats.actuator_broadcasts, 0);
  EXPECT_GT(stats.notification_unicasts, 0);
  // The dense default scenario should need few (often zero) fallbacks and
  // no degraded assignments.
  EXPECT_LE(stats.fallback_assignments, 6);
  EXPECT_EQ(stats.degraded_assignments, 0);
}

TEST_F(EmbeddingTest, FailsWithTooFewActuators) {
  actuators.push_back(world.add_actuator({100, 100}, kActuatorRange));
  actuators.push_back(world.add_actuator({200, 100}, kActuatorRange));
  add_static_sensors(50);
  EXPECT_FALSE(build_refer());
}

TEST_F(EmbeddingTest, MostKautzArcsArePhysicallyShort) {
  // Topology consistency (SIII-B): Kautz-adjacent nodes should usually be
  // within direct range; the rest are reachable through the 1-relay
  // detour.
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer());
  const auto& topo = system->topology();
  const kautz::Graph g(2, 3);
  int arcs = 0, direct = 0;
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    const Cell& cell = topo.cell(cid);
    for (const Label& u : cell.labels()) {
      for (const Label& v : g.out_neighbors(u)) {
        const auto nu = cell.node_of(u), nv = cell.node_of(v);
        if (!nu || !nv) continue;
        ++arcs;
        if (world.can_reach(*nu, *nv) || world.can_reach(*nv, *nu)) ++direct;
      }
    }
  }
  EXPECT_EQ(arcs, 4 * 24);
  EXPECT_GT(direct * 10, arcs * 5) << direct << "/" << arcs
                                   << " arcs directly connected";
}

}  // namespace
}  // namespace refer::core
