// The neighbor cache's one non-negotiable contract: cached reachable
// queries return *exactly* what the uncached grid scan (and the linear
// scan) returns -- same ids, same order -- on mobile worlds, across row
// reuse, node kills and range overrides.  Plus the epoch/counter
// semantics, the zero-steady-state-allocation pin on the cached scan
// path, and the end-to-end determinism proof (a full scenario run with
// the cache on vs. off produces identical RunMetrics).
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "harness/experiment.hpp"
#include "sim/neighbor_cache.hpp"
#include "sim/simulator.hpp"
#include "sim/world.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// Counting hooks for the zero-allocation assertion.  Only counts; all
// storage still comes from the default heap.
void* operator new(std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace refer {
namespace {

using sim::NodeId;

template <typename Body>
std::uint64_t allocations_during(Body&& body) {
  const std::uint64_t before = g_heap_allocs.load();
  body();
  return g_heap_allocs.load() - before;
}

/// Randomized world mirroring the spatial-index property fixture: random
/// area, static actuators, mixed mobile/static sensors, a few dead nodes.
struct RandomWorld {
  RandomWorld(std::uint64_t seed, sim::Simulator& sim) : rng(seed) {
    const double side = rng.uniform(300, 1500);
    world = std::make_unique<sim::World>(Rect{{0, 0}, {side, side}}, sim);
    const int n_act = 2 + static_cast<int>(rng.below(5));
    for (int i = 0; i < n_act; ++i) {
      world->add_actuator({rng.uniform(0, side), rng.uniform(0, side)},
                          rng.uniform(150, 300));
    }
    // Two discrete sensor range classes per world -- deployments ship a
    // handful of radio profiles, not a continuum, and the cache's
    // one-table-per-range-class layout leans on that.  Continuous
    // one-off ranges still appear via range_override in the queries.
    const double range_class[2] = {rng.uniform(60, 140),
                                   rng.uniform(60, 140)};
    const int n_sensors = 30 + static_cast<int>(rng.below(120));
    for (int i = 0; i < n_sensors; ++i) {
      const Point p{rng.uniform(0, side), rng.uniform(0, side)};
      const double range = range_class[rng.below(2)];
      if (rng.chance(0.7)) {
        world->add_sensor(p, range, 0, rng.uniform(0.5, 8), rng.split());
      } else {
        world->add_static_sensor(p, range);
      }
    }
    for (int i = 0; i < 3; ++i) {
      world->set_alive(static_cast<NodeId>(rng.below(world->size())), false);
    }
  }

  Rng rng;
  std::unique_ptr<sim::World> world;
};

TEST(NeighborCacheProperty, CachedMatchesUncachedOnRandomMobileWorlds) {
  std::uint64_t total_hits = 0;
  int samples = 0;
  for (std::uint64_t seed = 1; samples < 120; ++seed) {
    sim::Simulator sim;
    RandomWorld rw(seed * 2654435761u + 23, sim);
    sim::World& world = *rw.world;
    double t = 0;
    for (int step = 0; step < 3; ++step, ++samples) {
      // Mostly small advances, so rows built on one query survive into
      // the next ones (the reuse the contract is really about); the
      // occasional large jump forces re-bins and row rebuilds.
      t += rw.rng.chance(0.3) ? rw.rng.uniform(0, 40) : rw.rng.uniform(0, 1);
      sim.run_until(t);
      if (rw.rng.chance(0.25)) {
        // Liveness churn mid-stream: kills (and revivals) must be
        // reflected by cached rows without any invalidation.
        const auto victim = static_cast<NodeId>(rw.rng.below(world.size()));
        world.set_alive(victim, !world.alive(victim));
      }
      for (int q = 0; q < 8; ++q) {
        // Repeat each node a few times so later queries hit cached rows.
        const auto from = static_cast<NodeId>(
            rw.rng.below(world.size() / 2 + 1));
        const double range_override =
            rw.rng.chance(0.3) ? rw.rng.uniform(30, 400) : 0;

        world.set_neighbor_cache_enabled(true);
        const std::vector<NodeId> cached =
            world.reachable_from(from, range_override);
        // Same (from, range) again within the same epoch: a guaranteed
        // row hit, and it must reproduce the just-built row exactly.
        ASSERT_EQ(cached, world.reachable_from(from, range_override))
            << "seed=" << seed << " t=" << t << " from=" << from
            << " override=" << range_override;

        // The cache toggle leaves rows (and the index) untouched, so
        // hits accumulate across iterations.
        world.set_neighbor_cache_enabled(false);
        const std::vector<NodeId> uncached =
            world.reachable_from(from, range_override);
        world.set_neighbor_cache_enabled(true);

        ASSERT_EQ(cached, uncached)
            << "seed=" << seed << " t=" << t << " from=" << from
            << " override=" << range_override;

        if (rw.rng.chance(0.3)) {
          // The linear cross-check costs more than the others: turning
          // the index back on forces a rebuild, so every cached row is
          // rebuilt afterwards.  Sampling it keeps real row *reuse* in
          // the mix -- the property this test is really about.
          world.set_spatial_index_enabled(false);
          const std::vector<NodeId> linear =
              world.reachable_from(from, range_override);
          world.set_spatial_index_enabled(true);
          ASSERT_EQ(cached, linear)
              << "seed=" << seed << " t=" << t << " from=" << from
              << " override=" << range_override;
        }
      }
    }
    total_hits += world.neighbor_cache_stats().hits;
  }
  // The property is vacuous if every query missed; the repeat-queries
  // above guarantee plenty of row reuse.
  EXPECT_GT(total_hits, 100u);
}

TEST(NeighborCacheProperty, KillsNeedNoInvalidationToStayExact) {
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {600, 600}}, sim);
  Rng rng(41);
  world.add_actuator({300, 300}, 250);
  for (int i = 0; i < 80; ++i) {
    world.add_sensor({rng.uniform(0, 600), rng.uniform(0, 600)}, 100, 0, 3,
                     rng.split());
  }
  sim.run_until(2);
  const std::vector<NodeId> before = world.reachable_from(1);
  ASSERT_FALSE(before.empty());
  const NodeId victim = before.front();
  const std::uint64_t inv_before =
      world.neighbor_cache_stats().invalidations;

  // Killing a neighbor must drop it from the *cached* row immediately --
  // dead nodes stay binned and are filtered by the exact pass, so no
  // epoch bump is needed or expected.
  world.set_alive(victim, false);
  const std::vector<NodeId> after = world.reachable_from(1);
  EXPECT_EQ(world.neighbor_cache_stats().invalidations, inv_before);
  EXPECT_EQ(after.size(), before.size() - 1);
  for (const NodeId id : after) EXPECT_NE(id, victim);

  world.set_alive(victim, true);
  EXPECT_EQ(world.reachable_from(1), before);
}

TEST(NeighborCacheCounters, HitsRebuildsAndInvalidationsTrackEpochs) {
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {500, 500}}, sim);
  // Static world: after the initial build, nothing ever re-bins.
  for (int i = 0; i < 40; ++i) {
    world.add_static_sensor({12.5 * i, 250.0}, 120);
  }
  (void)world.reachable_from(0);  // forces the index build + first row
  const auto& stats = world.neighbor_cache_stats();
  EXPECT_EQ(stats.invalidations, 1u);  // the build's own epoch bump
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_EQ(stats.hits, 0u);

  (void)world.reachable_from(0);  // same node, same range class: a hit
  (void)world.reachable_from(0);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.rebuilds, 1u);

  (void)world.reachable_from(7);  // new node: its row is built once
  (void)world.reachable_from(7);
  EXPECT_EQ(stats.rebuilds, 2u);
  EXPECT_EQ(stats.hits, 3u);

  // A distinct range class gets its own row even for a seen node.
  (void)world.reachable_from(0, /*range_override=*/200);
  EXPECT_EQ(stats.rebuilds, 3u);
  EXPECT_EQ(stats.invalidations, 1u);  // still no re-bins

  // Adding a node dirties the index: full rebuild, fresh epoch, every
  // row is rebuilt on next use and the new node shows up.
  const NodeId late = world.add_static_sensor({0.0, 255.0}, 120);
  const std::vector<NodeId> row0 = world.reachable_from(0);
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.rebuilds, 4u);
  EXPECT_NE(std::find(row0.begin(), row0.end(), late), row0.end());
}

TEST(NeighborCacheCounters, MobilityRebinsInvalidate) {
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {400, 400}}, sim);
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    world.add_sensor({rng.uniform(0, 400), rng.uniform(0, 400)}, 100, 1, 3,
                     rng.split());
  }
  (void)world.reachable_from(0);
  (void)world.reachable_from(0);  // two hits: this row earns its keep
  (void)world.reachable_from(0);
  const std::uint64_t inv0 = world.neighbor_cache_stats().invalidations;
  // Far past every slack deadline (slack/speed <= 5 m / 1 mps): the next
  // query's revalidate re-bins movers and must expire cached rows.  The
  // row collected kRefillHitThreshold hits before the re-bin, so the
  // staleness heuristic rebuilds it rather than skipping the fill.
  sim.run_until(30);
  (void)world.reachable_from(0);
  EXPECT_GT(world.neighbor_cache_stats().invalidations, inv0);
  EXPECT_GE(world.neighbor_cache_stats().rebuilds, 2u);
  EXPECT_EQ(world.neighbor_cache_stats().skipped_fills, 0u);
}

TEST(NeighborCacheCounters, ColdRowsSkipFillsUntilReuseReturns) {
  // Cache-level pin on the staleness heuristic: a row whose previous
  // build collected fewer than kRefillHitThreshold hits has its fills
  // skipped -- at most two per epoch; a third miss in one epoch, or a
  // build that reaches the threshold, resumes eager filling.
  sim::NeighborCache cache;
  cache.reset(4);
  const std::vector<NodeId> ids = {1, 2, 3};
  const auto anchor_of = [](NodeId id) {
    return Point{static_cast<double>(id), 0.0};
  };
  sim::NeighborCache::Row view;

  EXPECT_TRUE(cache.should_fill(0, 100.0));  // no history: build
  (void)cache.store(0, 100.0, ids, anchor_of);
  ASSERT_TRUE(cache.lookup(0, 100.0, view));  // one hit: below threshold
  cache.invalidate();

  // The broadcast shape -- one fill, one hit, epoch over -- never pays
  // the build back, so the next epoch's misses are served uncached...
  EXPECT_FALSE(cache.should_fill(0, 100.0));
  EXPECT_FALSE(cache.should_fill(0, 100.0));
  EXPECT_EQ(cache.stats().skipped_fills, 2u);
  // ...until a third miss in the same epoch proves real reuse.
  EXPECT_TRUE(cache.should_fill(0, 100.0));
  (void)cache.store(0, 100.0, ids, anchor_of);
  ASSERT_TRUE(cache.lookup(0, 100.0, view));
  ASSERT_TRUE(cache.lookup(0, 100.0, view));  // threshold hits: amortised
  cache.invalidate();
  EXPECT_TRUE(cache.should_fill(0, 100.0));  // hot rows refill eagerly
  EXPECT_TRUE(cache.should_fill(1, 100.0));  // never-built slot: build
  EXPECT_EQ(cache.stats().skipped_fills, 2u);
}

TEST(NeighborCacheProperty, SkippedFillsStayExact) {
  // The broadcast shape that motivated the heuristic: every node queries
  // once per epoch, so no row is ever reused and -- after the first
  // epoch -- every fill is skipped.  Skipped queries run the plain grid
  // scan and must stay bit-identical to the cache-off path.
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {600, 600}}, sim);
  Rng rng(23);
  for (int i = 0; i < 60; ++i) {
    world.add_sensor({rng.uniform(0, 600), rng.uniform(0, 600)}, 120, 1, 3,
                     rng.split());
  }
  double t = 0;
  for (int epoch = 0; epoch < 4; ++epoch) {
    sim.run_until(t += 30);  // past every slack deadline: forces a re-bin
    for (NodeId from = 0; static_cast<std::size_t>(from) < world.size();
         ++from) {
      const std::vector<NodeId> cached = world.reachable_from(from);
      world.set_neighbor_cache_enabled(false);
      const std::vector<NodeId> uncached = world.reachable_from(from);
      world.set_neighbor_cache_enabled(true);
      ASSERT_EQ(cached, uncached) << "epoch=" << epoch << " from=" << from;
    }
  }
  EXPECT_GT(world.neighbor_cache_stats().skipped_fills, 0u);
}

TEST(NeighborCacheSteadyState, HitPathDoesNotAllocate) {
  // End-to-end pin on the cached scan path through World: once rows are
  // warm, every repeat query within an epoch -- the shape the CSMA
  // medium scan produces thousands of times per re-bin -- must be a pure
  // array walk.  Time is held still during the measurement: advancing it
  // belongs to the *grid's* re-bin machinery (cell vectors can hit new
  // high-water marks as nodes cluster), which is outside this contract.
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {500, 500}}, sim);
  Rng rng(19);
  world.add_actuator({250, 250}, 250);
  for (int i = 0; i < 120; ++i) {
    world.add_sensor({rng.uniform(0, 500), rng.uniform(0, 500)}, 100, 0.5, 3,
                     rng.split());
  }
  std::vector<NodeId> out;
  const auto n = static_cast<NodeId>(world.size());
  double t = 0;
  // Warm across epochs so scratch buffers, the sort bitmap, row pools
  // and `out` reach their high-water capacities.
  for (int step = 0; step < 100; ++step) {
    sim.run_until(t += 0.5);
    for (NodeId from = 0; from < n; ++from) {
      world.reachable_from(from, out);
      world.reachable_from(from, out, /*range_override=*/180);
    }
  }
  const std::uint64_t hits_before = world.neighbor_cache_stats().hits;

  const std::uint64_t allocs = allocations_during([&] {
    for (int rep = 0; rep < 50; ++rep) {
      for (NodeId from = 0; from < n; ++from) {
        world.reachable_from(from, out);
        world.reachable_from(from, out, /*range_override=*/180);
      }
    }
  });
  EXPECT_EQ(allocs, 0u)
      << "cached medium scans must not touch the heap at steady state";
  // Each (from, range) pair may spend its first measurement queries on a
  // miss -- worst case two skipped fills plus the fill itself (the
  // staleness heuristic's cold-row path) -- before settling into hits.
  EXPECT_GE(world.neighbor_cache_stats().hits,
            hits_before + 50u * 2u * static_cast<std::uint64_t>(n) - 6u * n);
}

TEST(NeighborCacheSteadyState, RowRebuildsRecyclePoolsWithoutAllocating) {
  // Cache-level pin on the miss path: after an invalidation, re-storing
  // a full epoch's worth of rows must reuse the pool and per-node
  // arrays' capacity -- the allocation cost of a rebuild is paid once,
  // at warmup, never per epoch.
  constexpr std::size_t kNodes = 200;
  sim::NeighborCache cache;
  cache.reset(kNodes);
  std::vector<NodeId> row;
  row.reserve(64);
  const auto fill_row = [&](NodeId id) {
    row.clear();
    for (NodeId j = 0; j < 48; ++j) {
      row.push_back((id + j) % static_cast<NodeId>(kNodes));
    }
  };
  const auto anchor_of = [](NodeId id) {
    return Point{static_cast<double>(id), 0.0};
  };
  // Warmup epoch: tables created, pools and offset arrays sized.
  for (NodeId id = 0; id < static_cast<NodeId>(kNodes); ++id) {
    fill_row(id);
    (void)cache.store(id, 100.0, row, anchor_of);
    (void)cache.store(id, 250.0, row, anchor_of);
  }

  const std::uint64_t allocs = allocations_during([&] {
    sim::NeighborCache::Row view;
    for (int epoch = 0; epoch < 20; ++epoch) {
      cache.invalidate();
      for (NodeId id = 0; id < static_cast<NodeId>(kNodes); ++id) {
        ASSERT_FALSE(cache.lookup(id, 100.0, view));  // epoch killed it
        fill_row(id);
        (void)cache.store(id, 100.0, row, anchor_of);
        (void)cache.store(id, 250.0, row, anchor_of);
        ASSERT_TRUE(cache.lookup(id, 100.0, view));
        ASSERT_EQ(view.len, 48u);
      }
    }
  });
  EXPECT_EQ(allocs, 0u)
      << "epoch turnover must recycle pools, not reallocate them";
}

/// Strips the world.grid.* and world.neighbor_cache.* health counters --
/// the only observability entries allowed to differ between runs with
/// different index/cache toggles.
std::vector<StatsRegistry::Entry> without_toggle_counters(
    std::vector<StatsRegistry::Entry> entries) {
  std::erase_if(entries, [](const StatsRegistry::Entry& e) {
    return e.name.rfind("world.grid.", 0) == 0 ||
           e.name.rfind("world.neighbor_cache.", 0) == 0;
  });
  return entries;
}

void expect_identical_runs(const harness::RunMetrics& on,
                           const harness::RunMetrics& off) {
  ASSERT_TRUE(on.build_ok);
  ASSERT_TRUE(off.build_ok);
  EXPECT_EQ(on.packets_sent, off.packets_sent);
  EXPECT_EQ(on.packets_delivered, off.packets_delivered);
  EXPECT_EQ(on.qos_delivered, off.qos_delivered);
  EXPECT_EQ(on.qos_throughput_kbps, off.qos_throughput_kbps);
  EXPECT_EQ(on.avg_delay_ms, off.avg_delay_ms);
  EXPECT_EQ(on.delay_p50_ms, off.delay_p50_ms);
  EXPECT_EQ(on.delay_p95_ms, off.delay_p95_ms);
  EXPECT_EQ(on.delay_p99_ms, off.delay_p99_ms);
  EXPECT_EQ(on.delivery_ratio, off.delivery_ratio);
  EXPECT_EQ(on.comm_energy_j, off.comm_energy_j);
  EXPECT_EQ(on.construction_energy_j, off.construction_energy_j);
  EXPECT_EQ(on.total_energy_j, off.total_energy_j);
  EXPECT_EQ(on.qos_timeline_kbps, off.qos_timeline_kbps);

  const auto obs_on = without_toggle_counters(on.observability);
  const auto obs_off = without_toggle_counters(off.observability);
  ASSERT_EQ(obs_on.size(), obs_off.size());
  for (std::size_t i = 0; i < obs_on.size(); ++i) {
    EXPECT_EQ(obs_on[i].name, obs_off[i].name);
    EXPECT_EQ(obs_on[i].count, obs_off[i].count) << obs_on[i].name;
    EXPECT_EQ(obs_on[i].sum, obs_off[i].sum) << obs_on[i].name;
    EXPECT_EQ(obs_on[i].p50, obs_off[i].p50) << obs_on[i].name;
    EXPECT_EQ(obs_on[i].p99, obs_off[i].p99) << obs_on[i].name;
  }
}

TEST(NeighborCacheDeterminism, Fig04ScenarioIdenticalWithCacheOnAndOff) {
  harness::Scenario sc;
  sc.n_sensors = 120;
  sc.warmup_s = 5;
  sc.measure_s = 25;
  sc.faulty_nodes = 5;  // liveness churn on top of mobility
  sc.seed = 9;

  for (const harness::SystemKind kind :
       {harness::SystemKind::kRefer, harness::SystemKind::kKautzOverlay}) {
    sc.neighbor_cache = true;
    const harness::RunMetrics on = harness::run_once(kind, sc);
    sc.neighbor_cache = false;
    const harness::RunMetrics off = harness::run_once(kind, sc);
    expect_identical_runs(on, off);
  }
}

TEST(NeighborCacheDeterminism, HoldsOnTheLegacyEventQueueToo) {
  harness::Scenario sc;
  sc.n_sensors = 100;
  sc.warmup_s = 5;
  sc.measure_s = 20;
  sc.faulty_nodes = 4;
  sc.seed = 17;
  sc.legacy_event_queue = true;

  sc.neighbor_cache = true;
  const harness::RunMetrics on =
      harness::run_once(harness::SystemKind::kRefer, sc);
  sc.neighbor_cache = false;
  const harness::RunMetrics off =
      harness::run_once(harness::SystemKind::kRefer, sc);
  expect_identical_runs(on, off);
}

TEST(NeighborCacheDeterminism, HoldsUnderTheRegularRoutingPolicy) {
  // The regular-routing walks route different packets over different
  // arcs than greedy, changing which neighbourhoods get queried -- the
  // cache (and its staleness heuristic) must stay invisible there too,
  // on both event queues.
  harness::Scenario sc;
  sc.n_sensors = 110;
  sc.warmup_s = 5;
  sc.measure_s = 20;
  sc.faulty_nodes = 4;
  sc.seed = 29;
  sc.routing_policy = harness::RoutingPolicy::kRegular;

  for (const bool legacy_queue : {false, true}) {
    sc.legacy_event_queue = legacy_queue;
    sc.neighbor_cache = true;
    const harness::RunMetrics on =
        harness::run_once(harness::SystemKind::kRefer, sc);
    sc.neighbor_cache = false;
    const harness::RunMetrics off =
        harness::run_once(harness::SystemKind::kRefer, sc);
    expect_identical_runs(on, off);
  }
}

}  // namespace
}  // namespace refer
