// Event-engine tests: the allocation-free scheduling core
// (sim/event_closure.hpp, sim/event_queue.hpp) and the calendar-vs-heap
// equivalence contract.
//
// Three layers:
//   - Capture audit: replicas of every lambda shape the codebase
//     schedules, pinned (at compile time) under EventClosure's inline
//     buffer.  Growing a capture past 64 bytes fails here first, not as
//     a silent perf cliff in the pool.
//   - Kernel semantics: FIFO order for equal timestamps, inclusive
//     run_until, and zero steady-state heap allocations -- counted by a
//     global operator new hook -- on both queue engines.
//   - Engine equivalence: both engines realise the identical (time, seq)
//     total order, so a scripted kernel workload and a full fig04-style
//     run (metrics, observability, trace bytes) must match field for
//     field with --legacy-event-queue on and off.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats_registry.hpp"
#include "harness/experiment.hpp"
#include "sim/event_closure.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// Counting hooks for the zero-allocation assertions.  Only counts; all
// storage still comes from the default heap.
void* operator new(std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace refer {
namespace {

using sim::EventClosure;
using sim::QueueEngine;
using sim::Simulator;

template <typename Body>
std::uint64_t allocations_during(Body&& body) {
  const std::uint64_t before = g_heap_allocs.load();
  body();
  return g_heap_allocs.load() - before;
}

// ---------------------------------------------------------------------
// Capture audit: one replica per scheduled-lambda shape in the codebase.
// The originals live in channel.cpp, net/flooding.cpp, refer/system.cpp,
// refer/embedding.cpp, harness/experiment.cpp, baselines/ and dht/.
// ---------------------------------------------------------------------

TEST(CaptureAudit, EveryScheduledCaptureShapeStaysInline) {
  void* self = nullptr;
  int from = 1, to = 2, bucket = 0;
  bool lost = false;
  std::function<void()> done;          // 32 bytes on libstdc++
  std::shared_ptr<int> state;          // 16 bytes
  double at = 0;

  // Channel::unicast delivery -- the largest capture in the repo.
  auto unicast = [self, from, to, bucket, lost, done] {
    (void)self; (void)from; (void)to; (void)bucket; (void)lost; (void)done;
  };
  static_assert(EventClosure::fits_inline<decltype(unicast)>());
  EXPECT_LE(sizeof(unicast), EventClosure::kInlineSize);

  // Channel::broadcast fan-out (per-receiver delivery).
  auto broadcast = [self, from, to, bucket, done] {
    (void)self; (void)from; (void)to; (void)bucket; (void)done;
  };
  static_assert(EventClosure::fits_inline<decltype(broadcast)>());

  // flooding.cpp round closures: shared round state + completion.
  auto flood = [state, done] { (void)state; (void)done; };
  static_assert(EventClosure::fits_inline<decltype(flood)>());

  // refer/system.cpp maintenance: this + flag + completion.
  auto maintenance = [self, lost, done] { (void)self; (void)lost; (void)done; };
  static_assert(EventClosure::fits_inline<decltype(maintenance)>());

  // ddear baseline: this + member id + shared message.
  auto ddear = [self, from, state] { (void)self; (void)from; (void)state; };
  static_assert(EventClosure::fits_inline<decltype(ddear)>());

  // harness/experiment.cpp traffic ticks: this (+ source, + time).
  auto tick = [self, from, at] { (void)self; (void)from; (void)at; };
  static_assert(EventClosure::fits_inline<decltype(tick)>());

  // The compatibility path: a whole std::function passed to schedule_at
  // is itself just one more 32-byte inline capture.
  static_assert(EventClosure::fits_inline<std::function<void()>>());
}

// ---------------------------------------------------------------------
// Closure storage and pool behaviour.
// ---------------------------------------------------------------------

struct BigCapture {
  unsigned char blob[96];  // > kInlineSize -> pooled (128-byte class)
  std::uint64_t* sink;
  void operator()() const { *sink += blob[0]; }
};
static_assert(!EventClosure::fits_inline<BigCapture>());

TEST(EventClosure, InlineAndPooledStorageInvokeAndCount) {
  sim::ClosurePool pool;
  std::uint64_t hits = 0;

  EventClosure small(pool, [&hits] { ++hits; });
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(hits, 1u);

  BigCapture big{};
  big.blob[0] = 1;
  big.sink = &hits;
  EventClosure pooled(pool, big);
  EXPECT_FALSE(pooled.is_inline());
  pooled();
  EXPECT_EQ(hits, 2u);

  // Move keeps the closure callable and the source disengaged.
  EventClosure moved(std::move(pooled));
  EXPECT_FALSE(static_cast<bool>(pooled));
  moved();
  EXPECT_EQ(hits, 3u);

  EXPECT_EQ(pool.stats().inline_closures, 1u);
  EXPECT_EQ(pool.stats().pooled_closures, 1u);
  EXPECT_EQ(pool.stats().blocks_allocated, 1u);
}

TEST(EventClosure, PoolRecyclesBlocksOfTheSameClass) {
  sim::ClosurePool pool;
  std::uint64_t sink = 0;
  BigCapture big{};
  big.sink = &sink;

  { EventClosure c(pool, big); c(); }  // allocates the first 128 B block
  EXPECT_EQ(pool.stats().blocks_allocated, 1u);
  EXPECT_EQ(pool.stats().blocks_recycled, 0u);

  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 64; ++i) {
      EventClosure c(pool, big);
      c();
    }
  });
  EXPECT_EQ(allocs, 0u) << "recycled blocks must not touch the heap";
  EXPECT_EQ(pool.stats().blocks_allocated, 1u);
  EXPECT_EQ(pool.stats().blocks_recycled, 64u);
  EXPECT_EQ(pool.stats().pooled_closures, 65u);
}

// ---------------------------------------------------------------------
// Kernel semantics, pinned on both engines.
// ---------------------------------------------------------------------

class EventEngineTest : public ::testing::TestWithParam<QueueEngine> {};

INSTANTIATE_TEST_SUITE_P(BothEngines, EventEngineTest,
                         ::testing::Values(QueueEngine::kCalendar,
                                           QueueEngine::kLegacyHeap),
                         [](const auto& info) {
                           return info.param == QueueEngine::kCalendar
                                      ? "Calendar"
                                      : "LegacyHeap";
                         });

TEST_P(EventEngineTest, EqualTimestampsRunInSchedulingOrder) {
  Simulator simulator(GetParam());
  std::vector<int> order;
  // Two equal-time cohorts, scheduled interleaved with other times, so
  // the seq tiebreak is exercised within and across pushes.
  for (int i = 0; i < 16; ++i) simulator.schedule_at(2.0, [&order, i] { order.push_back(i); });
  simulator.schedule_at(1.0, [&order] { order.push_back(100); });
  for (int i = 16; i < 32; ++i) simulator.schedule_at(2.0, [&order, i] { order.push_back(i); });
  simulator.run_all();

  ASSERT_EQ(order.size(), 33u);
  EXPECT_EQ(order.front(), 100);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i) + 1], i);
}

TEST_P(EventEngineTest, RunUntilIsInclusiveOfTheBoundary) {
  Simulator simulator(GetParam());
  std::vector<int> ran;
  simulator.schedule_at(5.0, [&ran] { ran.push_back(0); });  // exactly at `until`
  simulator.schedule_at(5.0 + 1e-9, [&ran] { ran.push_back(1); });
  simulator.run_until(5.0);
  EXPECT_EQ(ran, std::vector<int>{0});
  EXPECT_EQ(simulator.now(), 5.0);
  EXPECT_EQ(simulator.pending(), 1u);
  simulator.run_all();
  EXPECT_EQ(ran.size(), 2u);
}

TEST_P(EventEngineTest, StepExecutesExactlyOneEvent) {
  Simulator simulator(GetParam());
  int runs = 0;
  simulator.schedule_at(1.0, [&runs] { ++runs; });
  simulator.schedule_at(2.0, [&runs] { ++runs; });
  EXPECT_TRUE(simulator.step());
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(simulator.step());
  EXPECT_FALSE(simulator.step());
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(simulator.events_executed(), 2u);
}

/// 56-byte self-rescheduling timer, the steady-state kernel workload.
struct HoldTimer {
  Simulator* simulator;
  Rng rng;
  double mean;
  std::uint64_t pad = 0;

  void operator()() {
    simulator->schedule_in(rng.exponential(mean), HoldTimer(*this));
  }
};
static_assert(EventClosure::fits_inline<HoldTimer>());

TEST_P(EventEngineTest, SteadyStateSchedulingIsAllocationFree) {
  Simulator simulator(GetParam());
  Rng seeder(11);
  for (int i = 0; i < 256; ++i) {
    simulator.schedule_in(seeder.uniform(0, 2.0),
                          HoldTimer{&simulator, seeder.split(), 1.0});
  }
  // Warm up: queue resizes, bucket/heap capacities and pool classes reach
  // their steady state.  Long enough for every calendar bucket's
  // occupancy high-water mark to be hit before the measured window.
  for (int i = 0; i < 100000; ++i) simulator.step();

  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 5000; ++i) simulator.step();
  });
  EXPECT_EQ(allocs, 0u)
      << "schedule_tagged + step must not allocate at steady state";
  EXPECT_EQ(simulator.closure_stats().pooled_closures, 0u)
      << "the hold timer capture must stay inline";
}

TEST_P(EventEngineTest, OversizedCapturesAreAllocationFreeOnceWarm) {
  Simulator simulator(GetParam());
  std::uint64_t sink = 0;
  BigCapture big{};
  big.sink = &sink;
  // Warm one block per in-flight closure (here: one).
  simulator.schedule_in(0.5, big);
  simulator.run_until(1.0);
  ASSERT_EQ(simulator.closure_stats().blocks_allocated, 1u);

  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 100; ++i) {
      simulator.schedule_in(0.5, big);
      simulator.step();
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(simulator.closure_stats().blocks_allocated, 1u);
  EXPECT_EQ(simulator.closure_stats().blocks_recycled, 100u);
  EXPECT_EQ(sink, 0u);  // blob[0] stays zero; the sink proves invocation
}

TEST_P(EventEngineTest, ProfilerHistogramHitPathDoesNotAllocate) {
  Simulator simulator(GetParam());
  StatsRegistry registry;
  simulator.set_profiler(&registry);
  // First tagged event creates "sim.event_us.hot" (allocates once).
  simulator.schedule_in_tagged(0.1, "hot", [] {});
  simulator.schedule_in(0.2, [] {});  // warms "sim.event_us.other" too
  simulator.run_all();

  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 1000; ++i) {
      simulator.schedule_in_tagged(0.1, "hot", [] {});
      simulator.step();
    }
  });
  EXPECT_EQ(allocs, 0u) << "tag cache hit + Histogram::record must be free";
  EXPECT_EQ(registry.histogram("sim.event_us.hot").count(), 1001u);
}

// ---------------------------------------------------------------------
// Engine equivalence.
// ---------------------------------------------------------------------

/// Runs a deterministic scripted workload -- steady-state timers, an
/// equal-time burst, far-horizon timers -- and returns the execution
/// order plus kernel counters.
struct ScriptResult {
  std::vector<int> order;
  std::uint64_t executed = 0;
  std::size_t pending = 0;
  std::size_t peak = 0;
  std::vector<std::pair<std::string, std::uint64_t>> profile_counts;
};

ScriptResult run_script(QueueEngine engine) {
  Simulator simulator(engine);
  StatsRegistry registry;
  simulator.set_profiler(&registry);
  ScriptResult result;
  Rng rng(29);
  int next_id = 0;

  struct Chain {
    Simulator* simulator;
    std::vector<int>* order;
    Rng rng;
    int* next_id;
    int hops;
    void operator()() {
      order->push_back((*next_id)++);
      if (hops > 0) {
        Chain next(*this);
        next.hops = hops - 1;
        next.rng = rng.split();
        simulator->schedule_in_tagged(rng.exponential(0.7), "chain",
                                      std::move(next));
      }
    }
  };
  static_assert(EventClosure::fits_inline<Chain>());

  for (int i = 0; i < 40; ++i) {
    simulator.schedule_in_tagged(
        rng.uniform(0, 3.0), "chain",
        Chain{&simulator, &result.order, rng.split(), &next_id, 50});
  }
  // Equal-time burst (one broadcast neighbourhood).
  for (int i = 0; i < 64; ++i) {
    simulator.schedule_tagged(7.25, "burst",
                              [&result, &next_id] {
                                result.order.push_back((next_id)++ * -1);
                              });
  }
  // Far horizons: left pending at the cut-off, so `pending` is nonzero.
  for (int i = 0; i < 8; ++i) {
    simulator.schedule_at(1e4 + i, [] {});
  }

  simulator.run_until(200.0);
  result.executed = simulator.events_executed();
  result.pending = simulator.pending();
  result.peak = simulator.peak_pending();
  for (const StatsRegistry::Entry& e : registry.snapshot()) {
    if (e.is_histogram) result.profile_counts.emplace_back(e.name, e.count);
  }
  return result;
}

TEST(EngineEquivalence, ScriptedWorkloadMatchesAcrossEngines) {
  const ScriptResult calendar = run_script(QueueEngine::kCalendar);
  const ScriptResult heap = run_script(QueueEngine::kLegacyHeap);

  EXPECT_EQ(calendar.order, heap.order);
  EXPECT_EQ(calendar.executed, heap.executed);
  EXPECT_EQ(calendar.pending, heap.pending);
  EXPECT_EQ(calendar.peak, heap.peak);
  // Profiler histogram *counts* must match (sums are wall-clock times and
  // legitimately differ between engines).
  EXPECT_EQ(calendar.profile_counts, heap.profile_counts);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(EngineEquivalence, Fig04ScenarioIdenticalWithLegacyQueueOnAndOff) {
  harness::Scenario sc;
  sc.n_sensors = 100;
  sc.warmup_s = 5;
  sc.measure_s = 20;
  sc.faulty_nodes = 5;
  sc.seed = 13;

  for (const harness::SystemKind kind :
       {harness::SystemKind::kRefer, harness::SystemKind::kKautzOverlay}) {
    const std::string base = ::testing::TempDir() + "event_engine_" +
                             harness::to_string(kind);
    sc.legacy_event_queue = false;
    sc.trace_path = base + "_calendar.jsonl";
    const harness::RunMetrics on = harness::run_once(kind, sc);
    sc.legacy_event_queue = true;
    sc.trace_path = base + "_legacy.jsonl";
    const harness::RunMetrics off = harness::run_once(kind, sc);

    ASSERT_TRUE(on.build_ok);
    ASSERT_TRUE(off.build_ok);
    EXPECT_EQ(on.packets_sent, off.packets_sent);
    EXPECT_EQ(on.packets_delivered, off.packets_delivered);
    EXPECT_EQ(on.qos_delivered, off.qos_delivered);
    EXPECT_EQ(on.qos_throughput_kbps, off.qos_throughput_kbps);
    EXPECT_EQ(on.avg_delay_ms, off.avg_delay_ms);
    EXPECT_EQ(on.delay_p50_ms, off.delay_p50_ms);
    EXPECT_EQ(on.delay_p95_ms, off.delay_p95_ms);
    EXPECT_EQ(on.delay_p99_ms, off.delay_p99_ms);
    EXPECT_EQ(on.delivery_ratio, off.delivery_ratio);
    EXPECT_EQ(on.comm_energy_j, off.comm_energy_j);
    EXPECT_EQ(on.construction_energy_j, off.construction_energy_j);
    EXPECT_EQ(on.total_energy_j, off.total_energy_j);
    EXPECT_EQ(on.qos_timeline_kbps, off.qos_timeline_kbps);

    // Observability is engine-independent in full: sim.closure.* counts
    // the same captures either way, and calendar-only health counters are
    // deliberately not exported.
    ASSERT_EQ(on.observability.size(), off.observability.size());
    for (std::size_t i = 0; i < on.observability.size(); ++i) {
      EXPECT_EQ(on.observability[i].name, off.observability[i].name);
      EXPECT_EQ(on.observability[i].count, off.observability[i].count)
          << on.observability[i].name;
      EXPECT_EQ(on.observability[i].sum, off.observability[i].sum)
          << on.observability[i].name;
    }

    // The traces must be byte-identical, not merely equivalent.
    const std::string calendar_bytes = slurp(base + "_calendar.jsonl");
    const std::string legacy_bytes = slurp(base + "_legacy.jsonl");
    ASSERT_FALSE(calendar_bytes.empty());
    EXPECT_EQ(calendar_bytes, legacy_bytes);
    std::remove((base + "_calendar.jsonl").c_str());
    std::remove((base + "_legacy.jsonl").c_str());
  }
  sc.trace_path.clear();
}

// ---------------------------------------------------------------------
// Buffered trace sink.
// ---------------------------------------------------------------------

TEST(JsonlTraceBuffering, RecordsBatchUntilFlushMakesThemVisible) {
  const std::string path = ::testing::TempDir() + "buffered_trace.jsonl";
  sim::JsonlTraceWriter writer(path);
  sim::TraceRecord record;
  record.t = 1.5;
  record.event = sim::TraceEvent::kPacketSent;
  record.from = 3;
  record.to = 4;
  record.packet = 7;
  record.at_label = "01\"2";  // exercises escaping through the batch path
  for (int i = 0; i < 10; ++i) writer(record);

  // Under kBatchBytes nothing reaches the file until a flush.
  EXPECT_EQ(slurp(path), "");
  writer.flush();
  const std::string bytes = slurp(path);
  EXPECT_EQ(writer.records_written(), 10u);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(bytes.begin(), bytes.end(), '\n')),
            10u);
  EXPECT_NE(bytes.find("\"at\":\"01\\\"2\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace refer
