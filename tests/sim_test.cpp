// Unit tests for the discrete-event substrate: simulator, mobility,
// energy, world, channel.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats_registry.hpp"
#include "sim/channel.hpp"
#include "sim/energy.hpp"
#include "sim/mobility.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace refer::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    sim.schedule_in(1.0, [&] { ++fired; });
  });
  sim.run_until(1.5);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
  sim.run_until(2.5);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, PendingCount) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.schedule_at(6.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.run_until(5.5);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Waypoint, StaticNodeNeverMoves) {
  Waypoint w(Point{10, 20});
  EXPECT_EQ(w.position_at(0), (Point{10, 20}));
  EXPECT_EQ(w.position_at(1e6), (Point{10, 20}));
  EXPECT_FALSE(w.is_mobile());
}

TEST(Waypoint, MobileNodeStaysInArea) {
  const Rect area{{0, 0}, {500, 500}};
  Waypoint w(Point{250, 250}, area, 0.0, 3.0, Rng(7));
  for (double t = 0; t < 5000; t += 13.7) {
    const Point p = w.position_at(t);
    EXPECT_TRUE(area.contains(p)) << "t=" << t;
  }
}

TEST(Waypoint, MobileNodeActuallyMoves) {
  const Rect area{{0, 0}, {500, 500}};
  Waypoint w(Point{250, 250}, area, 1.0, 3.0, Rng(11));
  const Point p0 = w.position_at(0);
  const Point p1 = w.position_at(60);
  EXPECT_GT(distance(p0, p1), 0.0);
}

TEST(Waypoint, SpeedBoundIsRespected) {
  const Rect area{{0, 0}, {500, 500}};
  Waypoint w(Point{250, 250}, area, 0.0, 3.0, Rng(13));
  Point prev = w.position_at(0);
  for (double t = 1; t < 2000; t += 1.0) {
    const Point cur = w.position_at(t);
    EXPECT_LE(distance(prev, cur), 3.0 + 1e-9);
    prev = cur;
  }
}

TEST(Waypoint, SameSeedSameTrajectory) {
  const Rect area{{0, 0}, {500, 500}};
  Waypoint a(Point{250, 250}, area, 0.5, 3.0, Rng(99));
  Waypoint b(Point{250, 250}, area, 0.5, 3.0, Rng(99));
  for (double t = 0; t < 500; t += 7.3) {
    EXPECT_EQ(a.position_at(t), b.position_at(t)) << "t=" << t;
  }
}

TEST(Waypoint, ZeroSpeedRangePauses) {
  const Rect area{{0, 0}, {500, 500}};
  // max speed below the move threshold: node pauses forever in place.
  Waypoint w(Point{100, 100}, area, 0.0, 0.005, Rng(17));
  EXPECT_EQ(w.position_at(500.0), (Point{100, 100}));
}

TEST(Energy, ChargesMatchPaperConstants) {
  EnergyTracker e;
  e.resize(3);
  e.charge_tx(0, EnergyBucket::kData);
  e.charge_rx(1, EnergyBucket::kData);
  EXPECT_DOUBLE_EQ(e.total(EnergyBucket::kData), 2.75);
  EXPECT_DOUBLE_EQ(e.node_total(0), 2.0);
  EXPECT_DOUBLE_EQ(e.node_total(1), 0.75);
  EXPECT_DOUBLE_EQ(e.node_total(2), 0.0);
}

TEST(Energy, BucketsAreSeparated) {
  EnergyTracker e;
  e.resize(1);
  e.charge_tx(0, EnergyBucket::kConstruction);
  e.charge_tx(0, EnergyBucket::kData);
  e.charge_tx(0, EnergyBucket::kMaintenance);
  EXPECT_DOUBLE_EQ(e.construction_total(), 2.0);
  EXPECT_DOUBLE_EQ(e.communication_total(), 4.0);  // data + maintenance
  EXPECT_DOUBLE_EQ(e.grand_total(), 6.0);
}

TEST(Energy, BatteryDrains) {
  EnergyTracker e;
  e.resize(1);
  e.set_initial_battery(5.0);
  EXPECT_DOUBLE_EQ(e.battery(0), 5.0);
  e.charge_tx(0, EnergyBucket::kData);
  EXPECT_DOUBLE_EQ(e.battery(0), 3.0);
  e.charge_tx(0, EnergyBucket::kData);
  e.charge_tx(0, EnergyBucket::kData);
  EXPECT_DOUBLE_EQ(e.battery(0), 0.0);  // clamped
}

class WorldTest : public ::testing::Test {
 protected:
  Simulator sim;
  World world{Rect{{0, 0}, {500, 500}}, sim};
};

TEST_F(WorldTest, KindsAndRanges) {
  const NodeId a = world.add_actuator({100, 100}, 250);
  const NodeId s = world.add_sensor({150, 100}, 100, 0, 3, Rng(3));
  EXPECT_TRUE(world.is_actuator(a));
  EXPECT_FALSE(world.is_actuator(s));
  EXPECT_DOUBLE_EQ(world.range(a), 250);
  EXPECT_DOUBLE_EQ(world.range(s), 100);
  EXPECT_EQ(world.size(), 2u);
}

TEST_F(WorldTest, AsymmetricReachability) {
  // Actuator range 250 covers the sensor at distance 200, but the sensor
  // range 100 does not cover the actuator.
  const NodeId a = world.add_actuator({0, 0}, 250);
  const NodeId s = world.add_static_sensor({200, 0}, 100);
  EXPECT_TRUE(world.can_reach(a, s));
  EXPECT_FALSE(world.can_reach(s, a));
}

TEST_F(WorldTest, DeadNodesAreUnreachable) {
  const NodeId a = world.add_actuator({0, 0}, 250);
  const NodeId s = world.add_static_sensor({50, 0}, 100);
  EXPECT_TRUE(world.can_reach(a, s));
  world.set_alive(s, false);
  EXPECT_FALSE(world.can_reach(a, s));
  EXPECT_FALSE(world.can_reach(s, a));
  world.set_alive(s, true);
  EXPECT_TRUE(world.can_reach(a, s));
}

TEST_F(WorldTest, ReachableFromExcludesSelfAndFar) {
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId near = world.add_static_sensor({60, 0}, 100);
  world.add_static_sensor({300, 0}, 100);  // far
  const auto reach = world.reachable_from(a);
  ASSERT_EQ(reach.size(), 1u);
  EXPECT_EQ(reach[0], near);
}

TEST_F(WorldTest, ClosestActuator) {
  const NodeId a1 = world.add_actuator({0, 0}, 250);
  const NodeId a2 = world.add_actuator({400, 400}, 250);
  const NodeId s = world.add_static_sensor({100, 100}, 100);
  EXPECT_EQ(world.closest_actuator(s), a1);
  world.set_alive(a1, false);
  EXPECT_EQ(world.closest_actuator(s), a2);
}

TEST_F(WorldTest, AllOfFiltersByKind) {
  world.add_actuator({0, 0}, 250);
  world.add_static_sensor({1, 1}, 100);
  world.add_actuator({2, 2}, 250);
  EXPECT_EQ(world.all_of(NodeKind::kActuator).size(), 2u);
  EXPECT_EQ(world.all_of(NodeKind::kSensor).size(), 1u);
}

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() {
    energy.resize(16);
  }
  Simulator sim;
  World world{Rect{{0, 0}, {500, 500}}, sim};
  EnergyTracker energy;
  Channel channel{sim, world, energy, Rng(5)};
};

TEST_F(ChannelTest, UnicastDeliversInRange) {
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  bool delivered = false;
  channel.unicast(a, b, 500, EnergyBucket::kData,
                  [&](bool ok) { delivered = ok; });
  sim.run_all();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(channel.stats().unicasts_delivered, 1u);
  EXPECT_DOUBLE_EQ(energy.node_total(static_cast<std::size_t>(a)), 2.0);
  EXPECT_DOUBLE_EQ(energy.node_total(static_cast<std::size_t>(b)), 0.75);
}

TEST_F(ChannelTest, UnicastFailsOutOfRange) {
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({200, 0}, 100);
  bool called = false, delivered = true;
  channel.unicast(a, b, 500, EnergyBucket::kData, [&](bool ok) {
    called = true;
    delivered = ok;
  });
  sim.run_all();
  EXPECT_TRUE(called);
  EXPECT_FALSE(delivered);
  // TX energy is still spent; no RX energy.
  EXPECT_DOUBLE_EQ(energy.node_total(static_cast<std::size_t>(a)), 2.0);
  EXPECT_DOUBLE_EQ(energy.node_total(static_cast<std::size_t>(b)), 0.0);
}

TEST_F(ChannelTest, UnicastToDeadNodeFails) {
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  world.set_alive(b, false);
  bool delivered = true;
  channel.unicast(a, b, 500, EnergyBucket::kData,
                  [&](bool ok) { delivered = ok; });
  sim.run_all();
  EXPECT_FALSE(delivered);
}

TEST_F(ChannelTest, DeadSenderFailsWithoutEnergy) {
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  world.set_alive(a, false);
  bool delivered = true;
  channel.unicast(a, b, 500, EnergyBucket::kData,
                  [&](bool ok) { delivered = ok; });
  sim.run_all();
  EXPECT_FALSE(delivered);
  EXPECT_DOUBLE_EQ(energy.grand_total(), 0.0);
}

TEST_F(ChannelTest, DeadSenderEmitsUnicastFailedTrace) {
  // Regression: the dead-sender path used to schedule done(false) without
  // emitting kUnicastFailed, so trace_report's hop chains saw a queued
  // send with no outcome.
  Tracer tracer;
  CountingTraceSink counter;
  tracer.set_sink(std::ref(counter));
  channel.set_tracer(&tracer);
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  world.set_alive(a, false);
  channel.unicast(a, b, 500, EnergyBucket::kData, nullptr);
  sim.run_all();
  EXPECT_EQ(counter.count(TraceEvent::kUnicastQueued), 1u);
  EXPECT_EQ(counter.count(TraceEvent::kUnicastFailed), 1u);
  EXPECT_EQ(counter.count(TraceEvent::kUnicastDelivered), 0u);
}

TEST(ChannelTopK, BusiestNodesSelectsTopKWithDeterministicTies) {
  // Jitter off: every 500-byte frame costs exactly the same airtime, so
  // send counts fully determine the ranking and equal counts pin the
  // tie-break (lower id first) that keeps partial selection stable.
  Simulator sim;
  World world{Rect{{0, 0}, {500, 500}}, sim};
  EnergyTracker energy;
  energy.resize(16);
  Channel channel{sim, world, energy, Rng(5),
                  ChannelConfig{.max_jitter_s = 0}};
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  const NodeId c = world.add_static_sensor({100, 0}, 100);
  const NodeId d = world.add_static_sensor({150, 0}, 100);
  const auto send_n = [&](NodeId from, NodeId to, int n) {
    for (int i = 0; i < n; ++i) {
      channel.unicast(from, to, 500, EnergyBucket::kData, nullptr);
      sim.run_all();
    }
  };
  send_n(a, b, 2);
  send_n(b, a, 5);
  send_n(c, b, 2);  // exact tie with a -> a wins on id
  send_n(d, c, 1);

  const auto top2 = channel.busiest_nodes(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].first, b);
  EXPECT_EQ(top2[1].first, a);

  // Asking for more than exist returns everyone, still fully ordered.
  const auto all = channel.busiest_nodes(10);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].first, b);
  EXPECT_EQ(all[1].first, a);
  EXPECT_EQ(all[2].first, c);
  EXPECT_EQ(all[3].first, d);
  EXPECT_DOUBLE_EQ(all[1].second, all[2].second);
}

TEST_F(ChannelTest, FailureTakesLongerThanSuccess) {
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  const NodeId c = world.add_static_sensor({400, 0}, 100);
  Time ok_at = -1, fail_at = -1;
  channel.unicast(a, b, 500, EnergyBucket::kData,
                  [&](bool) { ok_at = sim.now(); });
  sim.run_all();
  channel.unicast(a, c, 500, EnergyBucket::kData,
                  [&](bool) { fail_at = sim.now(); });
  sim.run_all();
  ASSERT_GE(ok_at, 0.0);
  ASSERT_GE(fail_at, 0.0);
  EXPECT_GT(fail_at - ok_at, 0.004);  // ~ack timeout
}

TEST_F(ChannelTest, TransmissionsSerializeAtTheSender) {
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  std::vector<Time> arrivals;
  for (int i = 0; i < 5; ++i) {
    channel.unicast(a, b, 1000, EnergyBucket::kData,
                    [&](bool ok) { if (ok) arrivals.push_back(sim.now()); });
  }
  sim.run_all();
  ASSERT_EQ(arrivals.size(), 5u);
  const double ft = channel.frame_time(1000);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i] - arrivals[i - 1], ft - 1e-12)
        << "frames must not overlap at the sender";
  }
}

TEST_F(ChannelTest, BroadcastReachesAllInRange) {
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  world.add_static_sensor({50, 0}, 100);
  world.add_static_sensor({0, 70}, 100);
  world.add_static_sensor({300, 0}, 100);  // out of range
  std::vector<NodeId> got;
  channel.broadcast(a, 100, EnergyBucket::kMaintenance,
                    [&](NodeId r) { got.push_back(r); });
  sim.run_all();
  EXPECT_EQ(got.size(), 2u);
  // 1 TX + 2 RX.
  EXPECT_DOUBLE_EQ(energy.grand_total(), 2.0 + 2 * 0.75);
  EXPECT_EQ(channel.stats().broadcast_receptions, 2u);
}

TEST_F(ChannelTest, LossProbabilityDropsFrames) {
  ChannelConfig cfg;
  cfg.loss_probability = 1.0;
  Channel lossy{sim, world, energy, Rng(9), cfg};
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  bool delivered = true;
  lossy.unicast(a, b, 500, EnergyBucket::kData,
                [&](bool ok) { delivered = ok; });
  sim.run_all();
  EXPECT_FALSE(delivered);
}

TEST_F(ChannelTest, FrameTimeScalesWithBytes) {
  EXPECT_GT(channel.frame_time(2000), channel.frame_time(100));
  // 1000 bytes at 2 Mbps = 4 ms + overhead.
  EXPECT_NEAR(channel.frame_time(1000), 0.004 + 0.0006, 1e-9);
}

TEST_F(ChannelTest, CsmaNeighborsDefer) {
  // Two senders within carrier-sense range of each other must serialise,
  // even when transmitting to different receivers.
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  const NodeId ra = world.add_static_sensor({0, 60}, 100);
  const NodeId rb = world.add_static_sensor({50, 60}, 100);
  std::vector<Time> arrivals;
  channel.unicast(a, ra, 2000, EnergyBucket::kData,
                  [&](bool ok) { if (ok) arrivals.push_back(sim.now()); });
  channel.unicast(b, rb, 2000, EnergyBucket::kData,
                  [&](bool ok) { if (ok) arrivals.push_back(sim.now()); });
  sim.run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  const double ft = channel.frame_time(2000);
  EXPECT_GE(std::abs(arrivals[1] - arrivals[0]), ft - 1e-9)
      << "frames of in-range senders must not overlap";
}

TEST_F(ChannelTest, SpatialReuseAllowsParallelTransmissions) {
  // Senders far outside each other's range transmit concurrently.
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId ra = world.add_static_sensor({50, 0}, 100);
  const NodeId b = world.add_static_sensor({400, 400}, 100);
  const NodeId rb = world.add_static_sensor({450, 400}, 100);
  std::vector<Time> arrivals;
  channel.unicast(a, ra, 2000, EnergyBucket::kData,
                  [&](bool ok) { if (ok) arrivals.push_back(sim.now()); });
  channel.unicast(b, rb, 2000, EnergyBucket::kData,
                  [&](bool ok) { if (ok) arrivals.push_back(sim.now()); });
  sim.run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  const double ft = channel.frame_time(2000);
  EXPECT_LT(std::abs(arrivals[1] - arrivals[0]), ft)
      << "distant senders reuse the medium";
}

TEST_F(ChannelTest, BroadcastStormSaturatesAnArea) {
  // Ten co-located broadcasters: the last frame lands roughly ten frame
  // times after the first -- this airtime cost is what makes repair
  // storms expensive for the baselines.
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) {
    nodes.push_back(world.add_static_sensor({10.0 * i, 0}, 100));
  }
  Time last = 0;
  int receptions = 0;
  for (NodeId n : nodes) {
    channel.broadcast(n, 1000, EnergyBucket::kMaintenance, [&](NodeId) {
      ++receptions;
      last = std::max(last, sim.now());
    });
  }
  sim.run_all();
  EXPECT_GT(receptions, 0);
  EXPECT_GE(last, 9 * channel.frame_time(1000));
}

TEST_F(ChannelTest, MobilityBreaksLinkMidFlight) {
  // Sensor b moves away; a long queue of frames from a eventually fails.
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_sensor({99, 0}, 100, 2.9, 3.0, Rng(21));
  int ok = 0, fail = 0;
  // Spread sends over 100 s: b will wander out of range at some point.
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(i * 1.0, [&] {
      channel.unicast(a, b, 500, EnergyBucket::kData,
                      [&](bool d) { d ? ++ok : ++fail; });
    });
  }
  sim.run_all();
  EXPECT_GT(ok + fail, 0);
  EXPECT_GT(fail, 0) << "a mobile receiver must break some links";
}

TEST_F(ChannelTest, TracerSeesEveryFrameEvent) {
  Tracer tracer;
  CountingTraceSink counter;
  tracer.set_sink(std::ref(counter));
  channel.set_tracer(&tracer);
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  const NodeId far = world.add_static_sensor({400, 0}, 100);
  channel.unicast(a, b, 500, EnergyBucket::kData, nullptr);
  channel.unicast(a, far, 500, EnergyBucket::kData, nullptr);
  channel.broadcast(b, 100, EnergyBucket::kMaintenance, nullptr);
  sim.run_all();
  EXPECT_EQ(counter.count(TraceEvent::kUnicastQueued), 2u);
  EXPECT_EQ(counter.count(TraceEvent::kUnicastDelivered), 1u);
  EXPECT_EQ(counter.count(TraceEvent::kUnicastFailed), 1u);
  EXPECT_EQ(counter.count(TraceEvent::kBroadcast), 1u);
}

TEST_F(ChannelTest, TracerDetachStopsEmission) {
  Tracer tracer;
  CountingTraceSink counter;
  tracer.set_sink(std::ref(counter));
  channel.set_tracer(&tracer);
  tracer.clear_sink();
  const NodeId a = world.add_static_sensor({0, 0}, 100);
  const NodeId b = world.add_static_sensor({50, 0}, 100);
  channel.unicast(a, b, 500, EnergyBucket::kData, nullptr);
  sim.run_all();
  EXPECT_EQ(counter.count(TraceEvent::kUnicastQueued), 0u);
}

TEST_F(ChannelTest, JsonlTraceWriterProducesParsableLines) {
  const std::string path = ::testing::TempDir() + "trace_test.jsonl";
  {
    Tracer tracer;
    JsonlTraceWriter writer(path);
    tracer.set_sink(std::ref(writer));
    channel.set_tracer(&tracer);
    const NodeId a = world.add_static_sensor({0, 0}, 100);
    const NodeId b = world.add_static_sensor({50, 0}, 100);
    channel.unicast(a, b, 500, EnergyBucket::kData, nullptr);
    sim.run_all();
    EXPECT_EQ(writer.records_written(), 2u);  // queued + delivered
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  int lines = 0;
  while (std::fgets(line, sizeof line, f)) {
    ++lines;
    EXPECT_EQ(line[0], '{');
    EXPECT_NE(std::string(line).find("\"event\":"), std::string::npos);
  }
  std::fclose(f);
  EXPECT_EQ(lines, 2);
}

TEST_F(WorldTest, LivenessFlipsEmitTraceEvents) {
  Tracer tracer;
  CountingTraceSink counter;
  tracer.set_sink(std::ref(counter));
  world.set_tracer(&tracer);
  const NodeId s = world.add_static_sensor({0, 0}, 100);
  world.set_alive(s, false);
  world.set_alive(s, false);  // no flip: no event
  world.set_alive(s, true);
  EXPECT_EQ(counter.count(TraceEvent::kNodeDown), 1u);
  EXPECT_EQ(counter.count(TraceEvent::kNodeUp), 1u);
}

TEST(TraceEventNames, AreStable) {
  // The JSONL schema is a contract with tools/trace_report: renaming an
  // event string silently breaks the offline analyzer.
  EXPECT_STREQ(to_string(TraceEvent::kUnicastQueued), "unicast_queued");
  EXPECT_STREQ(to_string(TraceEvent::kBroadcast), "broadcast");
  EXPECT_STREQ(to_string(TraceEvent::kNodeDown), "node_down");
  EXPECT_STREQ(to_string(TraceEvent::kPacketSent), "packet_sent");
  EXPECT_STREQ(to_string(TraceEvent::kHopForward), "hop_forward");
  EXPECT_STREQ(to_string(TraceEvent::kFailover), "failover");
  EXPECT_STREQ(to_string(TraceEvent::kPacketDropped), "packet_dropped");
  EXPECT_STREQ(to_string(TraceEvent::kPacketDelivered), "packet_delivered");
  EXPECT_STREQ(to_string(TraceEvent::kQosDeadlineMiss), "qos_deadline_miss");
  EXPECT_STREQ(to_string(TraceEvent::kTraceHeader), "trace_header");
  EXPECT_STREQ(to_string(DropReason::kTtlExpired), "ttl_expired");
  EXPECT_STREQ(to_string(DropReason::kAllSuccessorsFailed),
               "all_successors_failed");
}

TEST(CountingTraceSink, CountsEveryEventKindIncludingTheLast) {
  // Regression for the hardcoded counts_[6]: the sink's array is sized
  // from the kTraceEventCount sentinel, so the newest event kind (the
  // one just before the sentinel) must count without corruption.
  CountingTraceSink sink;
  for (int i = 0; i < static_cast<int>(TraceEvent::kTraceEventCount); ++i) {
    TraceRecord rec;
    rec.event = static_cast<TraceEvent>(i);
    sink(rec);
  }
  for (int i = 0; i < static_cast<int>(TraceEvent::kTraceEventCount); ++i) {
    EXPECT_EQ(sink.count(static_cast<TraceEvent>(i)), 1u);
  }
}

TEST(JsonEscape, HandlesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(json_escape(std::string("x\x01y")), "x\\u0001y");
}

TEST(JsonlTraceWriter, ThrowsWhenPathCannotBeOpened) {
  EXPECT_THROW(JsonlTraceWriter("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

TEST(JsonlTraceWriter, RoutingRecordsCarryPacketContext) {
  const std::string path = ::testing::TempDir() + "routing_trace.jsonl";
  {
    JsonlTraceWriter writer(path);
    TraceRecord hop;
    hop.t = 1.5;
    hop.event = TraceEvent::kHopForward;
    hop.from = 3;
    hop.to = 7;
    hop.packet = 42;
    hop.hop_index = 2;
    hop.at_label = "012";
    hop.dst_label = "120";
    hop.next_label = "120";
    writer(hop);
    TraceRecord drop;
    drop.event = TraceEvent::kPacketDropped;
    drop.packet = 43;
    drop.reason = DropReason::kTtlExpired;
    writer(drop);
    // A frame-level record must NOT grow routing keys.
    TraceRecord frame;
    frame.event = TraceEvent::kUnicastQueued;
    writer(frame);
    TraceRecord header;
    header.event = TraceEvent::kTraceHeader;
    header.degree = 2;
    writer(header);
    EXPECT_EQ(writer.records_written(), 4u);
  }
  std::ifstream in(path);
  std::string hop_line, drop_line, frame_line, header_line;
  ASSERT_TRUE(std::getline(in, hop_line));
  ASSERT_TRUE(std::getline(in, drop_line));
  ASSERT_TRUE(std::getline(in, frame_line));
  ASSERT_TRUE(std::getline(in, header_line));
  EXPECT_NE(hop_line.find("\"event\":\"hop_forward\""), std::string::npos);
  EXPECT_NE(hop_line.find("\"packet\":42"), std::string::npos);
  EXPECT_NE(hop_line.find("\"hop\":2"), std::string::npos);
  EXPECT_NE(hop_line.find("\"at\":\"012\""), std::string::npos);
  EXPECT_NE(hop_line.find("\"dst\":\"120\""), std::string::npos);
  EXPECT_NE(hop_line.find("\"next\":\"120\""), std::string::npos);
  EXPECT_NE(drop_line.find("\"reason\":\"ttl_expired\""), std::string::npos);
  EXPECT_EQ(frame_line.find("\"packet\""), std::string::npos);
  EXPECT_EQ(frame_line.find("\"at\""), std::string::npos);
  EXPECT_EQ(frame_line.find("\"degree\""), std::string::npos);
  EXPECT_NE(header_line.find("\"event\":\"trace_header\""),
            std::string::npos);
  EXPECT_NE(header_line.find("\"degree\":2"), std::string::npos);
}

TEST(SimulatorObservability, TracksPeakQueueDepth) {
  Simulator sim;
  EXPECT_EQ(sim.peak_pending(), 0u);
  for (int i = 0; i < 5; ++i) sim.schedule_at(1.0 + i, [] {});
  EXPECT_EQ(sim.peak_pending(), 5u);
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.peak_pending(), 5u);  // high-water mark survives draining
}

TEST(SimulatorObservability, ProfilerRecordsPerTagHistograms) {
  Simulator sim;
  StatsRegistry registry;
  sim.set_profiler(&registry);
  sim.schedule_tagged(1.0, "tick", [] {});
  sim.schedule_tagged(2.0, "tick", [] {});
  sim.schedule_at(3.0, [] {});  // untagged -> "other"
  sim.run_all();
  EXPECT_EQ(registry.histogram("sim.event_us.tick").count(), 2u);
  EXPECT_EQ(registry.histogram("sim.event_us.other").count(), 1u);
}

}  // namespace
}  // namespace refer::sim
