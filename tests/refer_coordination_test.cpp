// Tests for the actuator coordination DHT (put/get/claim over the CAN).
#include <gtest/gtest.h>

#include "refer/coordination.hpp"
#include "refer_fixture.hpp"

namespace refer::core {
namespace {

using test::PaperScenario;

class CoordinationTest : public PaperScenario {
 protected:
  void build() {
    add_quincunx_actuators();
    add_static_sensors(200);
    ASSERT_TRUE(build_refer(ReferConfig{.run_maintenance = false}));
    service = std::make_unique<CoordinationService>(sim, world, channel,
                                                    system->topology());
  }

  std::unique_ptr<CoordinationService> service;
};

TEST_F(CoordinationTest, PutThenGetRoundTrips) {
  build();
  bool put_ok = false;
  service->put(actuators[0], "zone-7/status", "sprinkling", [&](bool ok) {
    put_ok = ok;
  });
  sim.run_until(sim.now() + 2.0);
  ASSERT_TRUE(put_ok);

  // Read it back from a *different* actuator.
  std::optional<std::string> got;
  bool called = false;
  service->get(actuators[3], "zone-7/status", [&](auto value) {
    got = value;
    called = true;
  });
  sim.run_until(sim.now() + 2.0);
  ASSERT_TRUE(called);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "sprinkling");
}

TEST_F(CoordinationTest, GetOfMissingKeyIsEmpty) {
  build();
  std::optional<std::string> got = std::string("sentinel");
  service->get(actuators[1], "never/written", [&](auto value) { got = value; });
  sim.run_until(sim.now() + 2.0);
  EXPECT_FALSE(got.has_value());
}

TEST_F(CoordinationTest, PutOverwrites) {
  build();
  service->put(actuators[0], "k", "v1", nullptr);
  sim.run_until(sim.now() + 1.0);
  service->put(actuators[1], "k", "v2", nullptr);
  sim.run_until(sim.now() + 1.0);
  std::optional<std::string> got;
  service->get(actuators[2], "k", [&](auto value) { got = value; });
  sim.run_until(sim.now() + 2.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "v2");
}

TEST_F(CoordinationTest, ClaimFirstWriterWins) {
  build();
  // Two sprinklers race to claim the same fire event.
  bool a_won = false, b_won = false;
  std::string a_sees, b_sees;
  service->claim(actuators[0], "fire-42/handler", "sprinkler-A",
                 [&](bool won, std::string v) {
                   a_won = won;
                   a_sees = std::move(v);
                 });
  sim.run_until(sim.now() + 1.5);
  service->claim(actuators[3], "fire-42/handler", "sprinkler-B",
                 [&](bool won, std::string v) {
                   b_won = won;
                   b_sees = std::move(v);
                 });
  sim.run_until(sim.now() + 1.5);
  EXPECT_TRUE(a_won);
  EXPECT_FALSE(b_won);
  EXPECT_EQ(a_sees, "sprinkler-A");
  EXPECT_EQ(b_sees, "sprinkler-A") << "loser learns the winner";
}

TEST_F(CoordinationTest, KeysSpreadAcrossOwners) {
  build();
  std::set<sim::NodeId> owners;
  for (int i = 0; i < 40; ++i) {
    const sim::NodeId o = service->owner_of("key-" + std::to_string(i));
    ASSERT_GE(o, 0);
    EXPECT_TRUE(world.is_actuator(o));
    owners.insert(o);
  }
  EXPECT_GE(owners.size(), 2u) << "hashing must not map everything to one cell";
}

TEST_F(CoordinationTest, RequestsChargeDataEnergy) {
  build();
  const double before = energy.total(sim::EnergyBucket::kData);
  // Find a key NOT owned by actuators[0]'s cells so at least one hop is
  // paid.
  std::string key;
  for (int i = 0; i < 64; ++i) {
    key = "remote-" + std::to_string(i);
    if (service->owner_of(key) != actuators[0]) break;
  }
  bool ok = false;
  service->put(actuators[0], key, "x", [&](bool r) { ok = r; });
  sim.run_until(sim.now() + 2.0);
  ASSERT_TRUE(ok);
  EXPECT_GT(energy.total(sim::EnergyBucket::kData), before);
  EXPECT_GT(service->stats().hops, 0u);
}

TEST_F(CoordinationTest, FailsCleanlyWhenOwnerActuatorIsDead) {
  build();
  // Find a key owned by a different actuator than the requester, then
  // kill the owner: the request must fail (callback with no value), not
  // hang or crash.
  std::string key;
  sim::NodeId owner = -1;
  for (int i = 0; i < 64; ++i) {
    key = "doomed-" + std::to_string(i);
    owner = service->owner_of(key);
    if (owner >= 0 && owner != actuators[0]) break;
  }
  ASSERT_GE(owner, 0);
  ASSERT_NE(owner, actuators[0]);
  world.set_alive(owner, false);
  bool called = false, ok = true;
  service->put(actuators[0], key, "x", [&](bool r) {
    called = true;
    ok = r;
  });
  sim.run_until(sim.now() + 3.0);
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_GT(service->stats().failures, 0u);
  world.set_alive(owner, true);
}

TEST_F(CoordinationTest, StatsCountOperations) {
  build();
  service->put(actuators[0], "a", "1", nullptr);
  service->get(actuators[0], "a", nullptr);
  service->claim(actuators[0], "b", "2", nullptr);
  sim.run_until(sim.now() + 2.0);
  EXPECT_EQ(service->stats().puts, 1u);
  EXPECT_EQ(service->stats().gets, 1u);
  EXPECT_EQ(service->stats().claims, 1u);
}

}  // namespace
}  // namespace refer::core
