// Unit tests for the DHT module: consistent hashing and the CAN overlay.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "dht/can.hpp"
#include "dht/consistent_hash.hpp"

namespace refer::dht {
namespace {

TEST(ConsistentHash, StableAndSpread) {
  EXPECT_EQ(consistent_hash("actuator-1"), consistent_hash("actuator-1"));
  EXPECT_NE(consistent_hash("actuator-1"), consistent_hash("actuator-2"));
  EXPECT_NE(consistent_hash(std::uint64_t{1}), consistent_hash(std::uint64_t{2}));
}

TEST(ConsistentHash, UnitMappingInRange) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = to_unit(consistent_hash(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const Point p = to_unit_point(consistent_hash(i));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

TEST(ConsistentHash, RoughlyUniform) {
  int buckets[10] = {};
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ++buckets[static_cast<int>(to_unit(consistent_hash(i)) * 10)];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 700);
    EXPECT_LT(b, 1300);
  }
}

TEST(Can, FirstMemberOwnsEverything) {
  Can can;
  EXPECT_TRUE(can.join(0, {0.3, 0.3}));
  EXPECT_EQ(can.size(), 1u);
  EXPECT_DOUBLE_EQ(can.area_of(0), 1.0);
  EXPECT_EQ(can.owner_of({0.9, 0.9}), std::optional<MemberId>(0));
}

TEST(Can, RejectsDuplicateAndOutOfRange) {
  Can can;
  EXPECT_TRUE(can.join(0, {0.5, 0.5}));
  EXPECT_FALSE(can.join(0, {0.1, 0.1}));
  EXPECT_FALSE(can.join(1, {1.5, 0.5}));
}

TEST(Can, JoinSplitsZones) {
  Can can;
  can.join(0, {0.25, 0.5});
  can.join(1, {0.75, 0.5});  // splits along x: 1 takes right half
  EXPECT_DOUBLE_EQ(can.area_of(0), 0.5);
  EXPECT_DOUBLE_EQ(can.area_of(1), 0.5);
  EXPECT_EQ(can.owner_of({0.1, 0.5}), std::optional<MemberId>(0));
  EXPECT_EQ(can.owner_of({0.9, 0.5}), std::optional<MemberId>(1));
}

TEST(Can, TessellationInvariant) {
  // After any number of joins the zones partition the unit square: every
  // point has exactly one owner and the areas sum to 1.
  Can can;
  Rng rng(5);
  for (MemberId m = 0; m < 32; ++m) {
    ASSERT_TRUE(can.join(m, {rng.uniform(), rng.uniform()}));
  }
  double total = 0;
  for (MemberId m : can.members()) total += can.area_of(m);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.uniform(), rng.uniform()};
    EXPECT_TRUE(can.owner_of(p).has_value());
  }
}

TEST(Can, NeighborsAreSymmetric) {
  Can can;
  Rng rng(7);
  for (MemberId m = 0; m < 16; ++m) {
    can.join(m, {rng.uniform(), rng.uniform()});
  }
  for (MemberId m : can.members()) {
    for (MemberId n : can.neighbors(m)) {
      const auto back = can.neighbors(n);
      EXPECT_NE(std::find(back.begin(), back.end(), m), back.end())
          << n << " does not list " << m;
    }
  }
}

TEST(Can, DiagonalZonesAreNotNeighbors) {
  Can can;
  can.join(0, {0.25, 0.25});
  can.join(1, {0.75, 0.25});  // right half
  can.join(2, {0.25, 0.75});  // 0 splits vertically
  can.join(3, {0.75, 0.75});  // 1 splits vertically
  // 0 = lower-left, 1 = lower-right, 2 = upper-left, 3 = upper-right.
  const auto n0 = can.neighbors(0);
  EXPECT_EQ(n0, (std::vector<MemberId>{1, 2}));  // 3 only touches corner
}

TEST(Can, GreedyRoutingReachesOwner) {
  Can can;
  Rng rng(11);
  for (MemberId m = 0; m < 24; ++m) {
    can.join(m, {rng.uniform(), rng.uniform()});
  }
  for (int i = 0; i < 200; ++i) {
    const Point target{rng.uniform(), rng.uniform()};
    const auto owner = can.owner_of(target);
    ASSERT_TRUE(owner.has_value());
    const MemberId start =
        can.members()[rng.below(can.size())];
    const auto path = can.route(start, target);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), start);
    EXPECT_EQ(path.back(), *owner) << "greedy must deliver";
    // No revisits (greedy strictly improves).
    std::set<MemberId> unique(path.begin(), path.end());
    EXPECT_EQ(unique.size(), path.size());
  }
}

TEST(Can, NextHopIsNulloptAtOwner) {
  Can can;
  can.join(0, {0.25, 0.5});
  can.join(1, {0.75, 0.5});
  EXPECT_EQ(can.next_hop(0, {0.1, 0.5}), std::nullopt);
  EXPECT_EQ(can.next_hop(0, {0.9, 0.5}), std::optional<MemberId>(1));
}

TEST(Can, LeaveHandsZoneToSmallestNeighbor) {
  Can can;
  can.join(0, {0.25, 0.5});
  can.join(1, {0.75, 0.5});
  can.join(2, {0.9, 0.75});  // splits 1's zone
  const double before = can.area_of(2);
  EXPECT_TRUE(can.leave(1));
  EXPECT_FALSE(can.contains(1));
  // 1's area went somewhere; total still 1.
  double total = 0;
  for (MemberId m : can.members()) total += can.area_of(m);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(can.area_of(2) + can.area_of(0), before);
  // Routing still works.
  const auto owner = can.owner_of({0.75, 0.25});
  EXPECT_TRUE(owner.has_value());
}

TEST(Can, LastMemberCannotLeave) {
  Can can;
  can.join(0, {0.5, 0.5});
  EXPECT_FALSE(can.leave(0));
  EXPECT_FALSE(can.leave(42));
}

TEST(Can, RoutingSurvivesChurn) {
  Can can;
  Rng rng(13);
  for (MemberId m = 0; m < 20; ++m) {
    can.join(m, {rng.uniform(), rng.uniform()});
  }
  for (MemberId m = 0; m < 8; ++m) can.leave(m);
  for (int i = 0; i < 100; ++i) {
    const Point target{rng.uniform(), rng.uniform()};
    const auto owner = can.owner_of(target);
    ASSERT_TRUE(owner.has_value());
    const auto path = can.route(can.members().front(), target);
    EXPECT_EQ(path.back(), *owner);
  }
}

TEST(Can, EveryMemberOwnsItsJoinPoint) {
  // The invariant REFER's inter-cell routing needs: routing towards a
  // cell's coordinate must terminate at that cell.  A blind midpoint
  // split can steal an earlier member's point (this is a real CAN
  // subtlety); the between-points split rules it out.
  Can can;
  Rng rng(17);
  std::vector<Point> pts;
  for (MemberId m = 0; m < 64; ++m) {
    const Point p{rng.uniform(), rng.uniform()};
    ASSERT_TRUE(can.join(m, p));
    pts.push_back(p);
  }
  for (MemberId m = 0; m < 64; ++m) {
    EXPECT_EQ(can.owner_of(pts[static_cast<std::size_t>(m)]),
              std::optional<MemberId>(m))
        << "member " << m << " lost its join point";
    EXPECT_EQ(can.point_of(m), std::optional<Point>(pts[static_cast<std::size_t>(m)]));
  }
}

TEST(Can, QuincunxCellPattern) {
  // The regression that motivated the invariant: the paper scenario's 4
  // cells joining at their normalised centroids.
  Can can;
  ASSERT_TRUE(can.join(0, {0.500, 0.333}));
  ASSERT_TRUE(can.join(1, {0.333, 0.500}));
  ASSERT_TRUE(can.join(2, {0.667, 0.500}));
  ASSERT_TRUE(can.join(3, {0.500, 0.667}));
  EXPECT_EQ(can.owner_of({0.500, 0.333}), std::optional<MemberId>(0));
  EXPECT_EQ(can.owner_of({0.333, 0.500}), std::optional<MemberId>(1));
  EXPECT_EQ(can.owner_of({0.667, 0.500}), std::optional<MemberId>(2));
  EXPECT_EQ(can.owner_of({0.500, 0.667}), std::optional<MemberId>(3));
}

TEST(Can, RejectsCoincidentJoinPoints) {
  Can can;
  ASSERT_TRUE(can.join(0, {0.5, 0.5}));
  EXPECT_FALSE(can.join(1, {0.5, 0.5}));
}

class CanScale : public ::testing::TestWithParam<int> {};

TEST_P(CanScale, InvariantsHoldAtEveryPopulation) {
  const int n = GetParam();
  Can can;
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 1);
  for (MemberId m = 0; m < n; ++m) {
    ASSERT_TRUE(can.join(m, {rng.uniform(), rng.uniform()}));
  }
  // Tessellation: areas sum to 1, every sampled point owned.
  double total = 0;
  for (MemberId m : can.members()) total += can.area_of(m);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(can.owner_of({rng.uniform(), rng.uniform()}).has_value());
  }
  // Neighbour symmetry + non-empty neighbour sets (n > 1).
  for (MemberId m : can.members()) {
    const auto neigh = can.neighbors(m);
    if (n > 1) EXPECT_FALSE(neigh.empty()) << "member " << m;
    for (MemberId o : neigh) {
      const auto back = can.neighbors(o);
      EXPECT_NE(std::find(back.begin(), back.end(), m), back.end());
    }
  }
  // Greedy routing delivers from every member to random targets.
  for (int i = 0; i < 50; ++i) {
    const Point target{rng.uniform(), rng.uniform()};
    const MemberId start = can.members()[rng.below(can.size())];
    const auto path = can.route(start, target);
    EXPECT_EQ(path.back(), *can.owner_of(target));
    EXPECT_LE(path.size(), static_cast<std::size_t>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Pop, CanScale,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64, 128));

}  // namespace
}  // namespace refer::dht
