// Exhaustive router-matrix tests: every label pair of every cell, and a
// single-fault sweep over every sensor label -- the system-level
// counterpart of the exhaustive graph-theory tests.
#include <gtest/gtest.h>

#include <cmath>

#include "kautz/graph.hpp"
#include "kautz/routing.hpp"
#include "refer_fixture.hpp"

namespace refer::core {
namespace {

class MatrixTest : public test::PaperScenario {
 protected:
  void build() {
    add_quincunx_actuators();
    add_static_sensors(200);
    ASSERT_TRUE(build_refer(ReferConfig{.run_maintenance = false}));
  }

  DeliveryReport send_full(sim::NodeId src, FullId dst) {
    DeliveryReport report;
    bool called = false;
    system->send_to(src, dst, 500, [&](const DeliveryReport& r) {
      report = r;
      called = true;
    });
    sim.run_until(sim.now() + 4.0);
    EXPECT_TRUE(called);
    return report;
  }
};

TEST_F(MatrixTest, AllIntraCellPairsDeliverWithinDiameterBudget) {
  build();
  const auto& topo = system->topology();
  int delivered = 0, total = 0;
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    const Cell& cell = topo.cell(cid);
    const auto labels = cell.labels();
    for (const auto& src_label : labels) {
      const auto src = cell.node_of(src_label);
      if (world.is_actuator(*src)) continue;
      for (const auto& dst_label : labels) {
        if (src_label == dst_label) continue;
        ++total;
        const auto report = send_full(*src, FullId{cid, dst_label});
        delivered += report.delivered;
        if (report.delivered) {
          EXPECT_EQ(report.final_node, *cell.node_of(dst_label));
        }
      }
    }
  }
  // Static, healthy network: the whole matrix must deliver.
  EXPECT_EQ(delivered, total) << delivered << "/" << total;
}

TEST_F(MatrixTest, SingleFaultNeverPartitionsACell) {
  // Kill each sensor label of cell 0 in turn; every pair among the
  // *remaining* labels must still deliver (d = 2 disjoint paths tolerate
  // any single failure, SIII-C).
  build();
  auto& topo = system->topology();
  const Cell& cell = topo.cell(0);
  const auto labels = cell.labels();
  for (const auto& victim_label : labels) {
    const auto victim = cell.node_of(victim_label);
    if (world.is_actuator(*victim)) continue;
    world.set_alive(*victim, false);
    int delivered = 0, total = 0;
    for (const auto& src_label : labels) {
      if (src_label == victim_label) continue;
      const auto src = cell.node_of(src_label);
      if (world.is_actuator(*src)) continue;
      for (const auto& dst_label : labels) {
        if (dst_label == src_label || dst_label == victim_label) continue;
        ++total;
        delivered += send_full(*src, FullId{0, dst_label}).delivered;
      }
    }
    EXPECT_EQ(delivered, total)
        << "victim " << victim_label.to_string() << ": " << delivered << "/"
        << total;
    world.set_alive(*victim, true);
  }
}

TEST_F(MatrixTest, ChannelAirtimeConcentratesOnRelays) {
  build();
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    system->send_to_actuator(system->random_active_sensor(rng), 2500,
                             nullptr);
    sim.run_until(sim.now() + 0.3);
  }
  const auto busiest = channel.busiest_nodes(5);
  ASSERT_FALSE(busiest.empty());
  // The busiest transmitters must be overlay members (actives/actuators),
  // not sleepers.
  for (const auto& [node, airtime] : busiest) {
    EXPECT_GT(airtime, 0.0);
    const Role r = system->topology().role(node);
    EXPECT_TRUE(r == Role::kActive || r == Role::kActuator)
        << "node " << node << " role " << to_string(r);
  }
  EXPECT_GT(channel.stats().total_airtime_s, 0.0);
}

TEST_F(MatrixTest, RealizedPathsMatchTheoryOnHealthyCell) {
  // On a healthy static cell the router must take exactly the greedy
  // shortest Kautz path: kautz_hops == k - L(src, dst).
  build();
  const auto& topo = system->topology();
  const Cell& cell = topo.cell(1);
  for (const auto& src_label : cell.labels()) {
    const auto src = cell.node_of(src_label);
    if (world.is_actuator(*src)) continue;
    for (const auto& dst_label : cell.labels()) {
      if (dst_label == src_label) continue;
      const auto report = send_full(*src, FullId{1, dst_label});
      ASSERT_TRUE(report.delivered);
      EXPECT_EQ(report.kautz_hops,
                kautz::kautz_distance(src_label, dst_label))
          << src_label.to_string() << " -> " << dst_label.to_string();
    }
  }
}

TEST(MatrixScale, LargeStripDeploymentWorksEndToEnd) {
  // 8 actuators in a zig-zag strip, 500 sensors: more cells, more CAN
  // hops, bigger floods -- the system must still build and deliver.
  sim::Simulator simulator;
  sim::World world({{0, 0}, {900, 500}}, simulator);
  sim::EnergyTracker energy;
  sim::Channel channel(simulator, world, energy, Rng(3));
  for (int i = 0; i < 8; ++i) {
    world.add_actuator({130.0 + 90.0 * i, i % 2 ? 310.0 : 190.0}, 250);
  }
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const Point anchor = world.position(static_cast<int>(rng.below(8)));
    const double ang = rng.uniform(0, 6.28318530717958648);
    const double rad = 200 * std::sqrt(rng.uniform());
    world.add_static_sensor(
        clamp({anchor.x + rad * std::cos(ang), anchor.y + rad * std::sin(ang)},
              {{0, 0}, {900, 500}}),
        100);
  }
  energy.resize(world.size());
  energy.set_initial_battery(1e9);
  ReferSystem system(simulator, world, channel, energy, Rng(7));
  bool ok = false;
  system.build([&](bool r) { ok = r; });
  simulator.run_until(60);
  ASSERT_TRUE(ok);
  EXPECT_GE(system.topology().cell_count(), 5u);
  Rng pick(9);
  int delivered = 0;
  for (int i = 0; i < 30; ++i) {
    const sim::NodeId src = system.random_active_sensor(pick);
    system.send_to_actuator(src, 1000, [&](const DeliveryReport& r) {
      delivered += r.delivered;
    });
    simulator.run_until(simulator.now() + 1.0);
  }
  EXPECT_GE(delivered, 27);
}

}  // namespace
}  // namespace refer::core
