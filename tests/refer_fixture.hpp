// Shared test fixture: the paper's default deployment (SIV) -- a
// 500 m x 500 m area, 5 actuators in a quincunx forming 4 triangle cells,
// and uniformly scattered sensors.  Static sensors by default so tests
// are geometry-stable; mobility tests opt in.
#pragma once

#include <gtest/gtest.h>

#include "refer/system.hpp"
#include "sim/channel.hpp"
#include "sim/energy.hpp"
#include "sim/simulator.hpp"
#include "sim/world.hpp"

namespace refer::test {

class PaperScenario : public ::testing::Test {
 protected:
  static constexpr double kArea = 500.0;
  static constexpr double kSensorRange = 100.0;
  static constexpr double kActuatorRange = 250.0;

  PaperScenario() {
    energy.resize(512);
    energy.set_initial_battery(100000.0);
  }

  /// Actuators at the quincunx positions: four corners of the inner square
  /// plus the centre -> Delaunay gives exactly 4 triangles (cells).
  void add_quincunx_actuators() {
    for (const Point p : {Point{125, 125}, Point{375, 125}, Point{125, 375},
                          Point{375, 375}, Point{250, 250}}) {
      actuators.push_back(world.add_actuator(p, kActuatorRange));
    }
  }

  void add_static_sensors(int n, std::uint64_t seed = 42) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      sensors.push_back(world.add_static_sensor(
          {rng.uniform(0, kArea), rng.uniform(0, kArea)}, kSensorRange));
    }
  }

  void add_mobile_sensors(int n, double max_speed, std::uint64_t seed = 42) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      sensors.push_back(world.add_sensor(
          {rng.uniform(0, kArea), rng.uniform(0, kArea)}, kSensorRange, 0.0,
          max_speed, rng.split()));
    }
  }

  /// Builds the REFER overlay and runs the simulator until it finishes.
  /// Returns the embedding result.
  bool build_refer(core::ReferConfig config = {}) {
    system = std::make_unique<core::ReferSystem>(sim, world, channel, energy,
                                                  Rng(7), config);
    bool ok = false, called = false;
    system->build([&](bool result) {
      ok = result;
      called = true;
    });
    sim.run_until(sim.now() + 30.0);
    EXPECT_TRUE(called) << "embedding must complete within 30 s";
    return ok;
  }

  sim::Simulator sim;
  sim::World world{{{0, 0}, {kArea, kArea}}, sim};
  sim::EnergyTracker energy;
  sim::Channel channel{sim, world, energy, Rng(3)};
  std::vector<sim::NodeId> actuators;
  std::vector<sim::NodeId> sensors;
  std::unique_ptr<core::ReferSystem> system;
};

}  // namespace refer::test
