// Flight-recorder tests (sim/telemetry.hpp): bucket-edge semantics, the
// zero-steady-state-allocation contract (counted by a global operator
// new hook, the PR-5 bar), determinism contracts (serial vs parallel,
// calendar vs legacy queue, telemetry on vs off), and the schema v3 ->
// v4 golden regression: qos_timeline_kbps re-derived from the v4
// timeseries must reproduce the seed repo's v3 values bit for bit.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "runner/parallel_executor.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// Counting hooks for the zero-allocation assertions.  Only counts; all
// storage still comes from the default heap.
void* operator new(std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace refer {
namespace {

using sim::GaugeSnapshot;
using sim::Simulator;
using sim::TelemetryRecorder;
using sim::TimeSeries;

template <typename Body>
std::uint64_t allocations_during(Body&& body) {
  const std::uint64_t before = g_heap_allocs.load();
  body();
  return g_heap_allocs.load() - before;
}

// ---------------------------------------------------------------------
// Bucket-edge semantics.  The legacy record_timeline dropped a delivery
// landing exactly at the measurement end (rel == window_s indexed one
// past the ceil(window/bucket) edge); the recorder pins it to the last
// bucket, and pushes anything later into late_samples.
// ---------------------------------------------------------------------

TEST(TelemetryBuckets, EdgeMapping) {
  Simulator sim;
  TelemetryRecorder rec;
  rec.start(sim, nullptr, nullptr, {}, /*measure_from=*/100.0,
            /*window_s=*/30.0, /*bucket_s=*/10.0, /*n_nodes=*/4, nullptr);
  ASSERT_TRUE(rec.active());
  EXPECT_EQ(rec.bucket_for_rel(-0.001), TelemetryRecorder::npos);
  EXPECT_EQ(rec.bucket_for_rel(0.0), 0u);
  EXPECT_EQ(rec.bucket_for_rel(9.999), 0u);
  EXPECT_EQ(rec.bucket_for_rel(10.0), 1u);
  EXPECT_EQ(rec.bucket_for_rel(29.999), 2u);
  // The regression: exactly at the window end -> LAST bucket, not gone.
  EXPECT_EQ(rec.bucket_for_rel(30.0), 2u);
  EXPECT_EQ(rec.bucket_for_rel(30.001), TelemetryRecorder::npos);
}

TEST(TelemetryBuckets, RaggedLastBucketStillClosesInclusive) {
  // window 25 / bucket 10 -> 3 buckets; the last covers [20, 25].
  Simulator sim;
  TelemetryRecorder rec;
  rec.start(sim, nullptr, nullptr, {}, 0.0, 25.0, 10.0, 4, nullptr);
  EXPECT_EQ(rec.bucket_for_rel(19.999), 1u);
  EXPECT_EQ(rec.bucket_for_rel(20.0), 2u);
  EXPECT_EQ(rec.bucket_for_rel(25.0), 2u);
  EXPECT_EQ(rec.bucket_for_rel(25.0001), TelemetryRecorder::npos);
}

TEST(TelemetryBuckets, DeliveryAtWindowEndCountsLaterOnesLate) {
  Simulator sim;
  TelemetryRecorder rec;
  rec.start(sim, nullptr, nullptr, {}, 100.0, 30.0, 10.0, 4, nullptr);
  rec.on_delivery(100.0, 5.0, true, 0);   // first bucket
  rec.on_delivery(130.0, 5.0, true, 0);   // exactly at the end: last bucket
  rec.on_delivery(130.5, 5.0, true, 0);   // drain period: late
  rec.on_send(131.0);                     // late as well
  rec.finalize();
  const TimeSeries& ts = rec.series();
  ASSERT_EQ(ts.buckets(), 3u);
  EXPECT_EQ(ts.delivered[0], 1u);
  EXPECT_EQ(ts.delivered[1], 0u);
  EXPECT_EQ(ts.delivered[2], 1u);
  EXPECT_EQ(ts.late_samples, 2u);
  EXPECT_GT(ts.delay_p50_ms[2], 0.0);  // cursor flushed the last bucket
}

// ---------------------------------------------------------------------
// Allocation contract: after start() preallocates, the hot-path hooks,
// the scheduled gauge ticks, and finalize() allocate NOTHING.
// ---------------------------------------------------------------------

TEST(TelemetryAllocation, SteadyStateIsAllocationFree) {
  Simulator sim;
  TelemetryRecorder rec;
  rec.start(
      sim, nullptr, nullptr, [](GaugeSnapshot&) {}, 0.0, 30.0, 5.0, 8,
      nullptr);
  sim.run_until(0.0);  // baseline tick
  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 2000; ++i) {
      const double t = 30.0 * (i + 1) / 2000.0;
      rec.on_send(t);
      rec.on_delivery(t, 12.5 + i % 7, (i % 5) != 0, i % 3);
      rec.on_queue_wait(t, 80.0 + i % 11);
      rec.on_app_loop_start(t);
      rec.on_app_loop_done(t, (i % 4) != 0, 33.0);
    }
    sim.run_until(30.0);  // all six gauge ticks
    rec.finalize();
  });
  EXPECT_EQ(allocs, 0u) << "telemetry steady state must not allocate";
  const TimeSeries& ts = rec.series();
  ASSERT_EQ(ts.buckets(), 6u);
  EXPECT_EQ(std::accumulate(ts.sent.begin(), ts.sent.end(), std::uint64_t{0}),
            2000u);
  for (std::size_t b = 0; b < ts.buckets(); ++b) {
    EXPECT_GT(ts.delay_p50_ms[b], 0.0) << "bucket " << b;
    EXPECT_GT(ts.queue_wait_mean_us[b], 0.0) << "bucket " << b;
  }
}

// ---------------------------------------------------------------------
// Determinism contracts over full harness runs.
// ---------------------------------------------------------------------

harness::Scenario timeline_scenario() {
  harness::Scenario sc;
  sc.warmup_s = 5;
  sc.measure_s = 30;
  sc.packets_per_second = 4;
  sc.mobile = false;
  sc.seed = 11;
  sc.timeline_bucket_s = 5;
  return sc;
}

void expect_timeseries_eq(const TimeSeries& a, const TimeSeries& b) {
  EXPECT_EQ(a.bucket_s, b.bucket_s);
  EXPECT_EQ(a.start_s, b.start_s);
  EXPECT_EQ(a.window_s, b.window_s);
  EXPECT_EQ(a.top_k, b.top_k);
  EXPECT_EQ(a.late_samples, b.late_samples);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.qos_delivered, b.qos_delivered);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.delay_p50_ms, b.delay_p50_ms);
  EXPECT_EQ(a.delay_p95_ms, b.delay_p95_ms);
  EXPECT_EQ(a.queue_wait_mean_us, b.queue_wait_mean_us);
  EXPECT_EQ(a.queue_wait_p95_us, b.queue_wait_p95_us);
  EXPECT_EQ(a.channel_busy_fraction, b.channel_busy_fraction);
  EXPECT_EQ(a.energy_rate_w, b.energy_rate_w);
  EXPECT_EQ(a.event_queue_depth, b.event_queue_depth);
  EXPECT_EQ(a.route_cache_hit_rate, b.route_cache_hit_rate);
  EXPECT_EQ(a.app_loops_started, b.app_loops_started);
  EXPECT_EQ(a.app_loops_ok, b.app_loops_ok);
  EXPECT_EQ(a.app_loop_mean_ms, b.app_loop_mean_ms);
  EXPECT_EQ(a.top_airtime_node, b.top_airtime_node);
  EXPECT_EQ(a.top_airtime_rate, b.top_airtime_rate);
  EXPECT_EQ(a.top_energy_node, b.top_energy_node);
  EXPECT_EQ(a.top_energy_rate_w, b.top_energy_rate_w);
  // phase_wall_us is wall clock -- deliberately NOT compared.
}

TEST(TelemetryDeterminism, SerialVsParallelBitIdentical) {
  runner::ParallelExecutor serial(1);
  runner::ParallelExecutor parallel(4);
  (void)serial.run_repeated(harness::SystemKind::kRefer, timeline_scenario(),
                            3);
  (void)parallel.run_repeated(harness::SystemKind::kRefer,
                              timeline_scenario(), 3);
  ASSERT_EQ(serial.records().size(), 3u);
  ASSERT_EQ(parallel.records().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    expect_timeseries_eq(serial.records()[i].metrics.timeseries,
                         parallel.records()[i].metrics.timeseries);
  }
}

TEST(TelemetryDeterminism, CalendarVsLegacyQueueBitIdentical) {
  harness::Scenario sc = timeline_scenario();
  const harness::RunMetrics calendar =
      harness::run_once(harness::SystemKind::kRefer, sc);
  sc.legacy_event_queue = true;
  const harness::RunMetrics legacy =
      harness::run_once(harness::SystemKind::kRefer, sc);
  ASSERT_TRUE(calendar.build_ok);
  ASSERT_TRUE(legacy.build_ok);
  expect_timeseries_eq(calendar.timeseries, legacy.timeseries);
  EXPECT_EQ(calendar.qos_timeline_kbps, legacy.qos_timeline_kbps);
}

TEST(TelemetryDeterminism, RecorderDoesNotPerturbDeliveryMetrics) {
  // Gauge ticks are read-only kernel events: they shift event sequence
  // numbers (like the profile flag) but draw no randomness and mutate
  // nothing, so every delivery-side metric is identical with the
  // flight recorder on and off.
  harness::Scenario on = timeline_scenario();
  harness::Scenario off = timeline_scenario();
  off.timeline_bucket_s = 0;
  const harness::RunMetrics a = harness::run_once(harness::SystemKind::kRefer, on);
  const harness::RunMetrics b = harness::run_once(harness::SystemKind::kRefer, off);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.qos_delivered, b.qos_delivered);
  EXPECT_EQ(a.qos_throughput_kbps, b.qos_throughput_kbps);
  EXPECT_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_TRUE(b.timeseries.sent.empty());
}

TEST(TelemetryDeterminism, PhaseProfileDoesNotPerturbSeries) {
  harness::Scenario plain = timeline_scenario();
  harness::Scenario profiled = timeline_scenario();
  profiled.phase_profile = true;
  const harness::RunMetrics a =
      harness::run_once(harness::SystemKind::kRefer, plain);
  const harness::RunMetrics b =
      harness::run_once(harness::SystemKind::kRefer, profiled);
  expect_timeseries_eq(a.timeseries, b.timeseries);
  EXPECT_TRUE(a.timeseries.phase_wall_us.empty());
  EXPECT_EQ(b.timeseries.phase_wall_us.size(),
            b.timeseries.buckets() *
                static_cast<std::size_t>(refer::kPhaseCount));
}

// ---------------------------------------------------------------------
// Series consistency against the aggregate metrics.
// ---------------------------------------------------------------------

TEST(TelemetrySeries, SumsMatchAggregates) {
  harness::Scenario sc = timeline_scenario();
  sc.app_enabled = true;
  const harness::RunMetrics m =
      harness::run_once(harness::SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  const TimeSeries& ts = m.timeseries;
  ASSERT_EQ(ts.buckets(), 6u);
  const auto sum = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  EXPECT_EQ(sum(ts.sent), m.packets_sent);
  // Deliveries landing in the drain period are late_samples, not lost.
  EXPECT_LE(sum(ts.delivered), m.packets_delivered);
  EXPECT_LE(sum(ts.qos_delivered), m.qos_delivered);
  EXPECT_EQ(sum(ts.app_loops_started), m.app_loops_started);
  EXPECT_LE(sum(ts.app_loops_ok), m.app_loops_started);
  // The gauges moved: some bucket burned energy and carried frames.
  double energy = 0, busy = 0;
  for (std::size_t b = 0; b < ts.buckets(); ++b) {
    energy += ts.energy_rate_w[b];
    busy += ts.channel_busy_fraction[b];
    EXPECT_GE(ts.channel_busy_fraction[b], 0.0);
    EXPECT_LE(ts.channel_busy_fraction[b], 1.0);
  }
  EXPECT_GT(energy, 0.0);
  EXPECT_GT(busy, 0.0);
  // Top transmitter slots filled, rates sorted descending within bucket.
  EXPECT_GE(ts.top_airtime_node[0], 0);
  for (std::size_t b = 0; b < ts.buckets(); ++b) {
    const std::size_t base = b * static_cast<std::size_t>(ts.top_k);
    for (int k = 1; k < ts.top_k; ++k) {
      EXPECT_GE(ts.top_airtime_rate[base + static_cast<std::size_t>(k) - 1],
                ts.top_airtime_rate[base + static_cast<std::size_t>(k)]);
    }
  }
}

// ---------------------------------------------------------------------
// Schema v3 -> v4 golden regression.  The exact qos_timeline_kbps
// vectors below were captured from the seed repo (pre-refactor
// harness::record_timeline) at this scenario; the v4 recorder must
// reproduce them bit for bit through TimeSeries::qos_timeline_kbps.
// ---------------------------------------------------------------------

TEST(TelemetryGolden, LegacyQosTimelineReproducedBitForBit) {
  const struct {
    harness::SystemKind kind;
    std::vector<double> kbps;
  } golden[] = {
      {harness::SystemKind::kRefer, {1000, 1000, 986, 1014, 1000, 1000}},
      {harness::SystemKind::kDaTree, {393, 89, 34, 1, 36, 39}},
      {harness::SystemKind::kDDear, {1000, 1000, 1000, 894, 1000, 1000}},
      {harness::SystemKind::kKautzOverlay, {13, 9, 0, 0, 0, 0}},
  };
  for (const auto& g : golden) {
    SCOPED_TRACE(harness::to_string(g.kind));
    harness::Scenario sc;
    sc.mobile = true;
    sc.max_speed_mps = 4.0;
    sc.measure_s = 120.0;
    sc.timeline_bucket_s = 20.0;
    sc.seed = 5;
    const harness::RunMetrics m = harness::run_once(g.kind, sc);
    ASSERT_TRUE(m.build_ok);
    EXPECT_EQ(m.qos_timeline_kbps, g.kbps);
    // The legacy vector is re-derived from the v4 series, not tracked
    // separately -- identity is structural, but pin it anyway.
    EXPECT_EQ(m.qos_timeline_kbps,
              m.timeseries.qos_timeline_kbps(sc.packet_bytes));
  }
}

}  // namespace
}  // namespace refer
