// Tests for the execution engine: ThreadPool semantics, parallel/serial
// sweep equivalence (bit-for-bit), the JSON writer, structured results
// export, and thread-safe logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "runner/json.hpp"
#include "runner/parallel_executor.hpp"
#include "runner/results_writer.hpp"
#include "runner/thread_pool.hpp"

namespace refer::runner {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  auto a = pool.submit([] { return 21 * 2; });
  auto b = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, OrderingIndependence) {
  // 200 tasks writing disjoint slots: the result cannot depend on which
  // worker ran which task or in what order.
  constexpr int kTasks = 200;
  std::vector<int> slots(kTasks, -1);
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.submit([&slots, i] { slots[static_cast<std::size_t>(i)] = i * i; }));
    }
    for (auto& f : futures) f.get();
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(slots[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_THROW(
      {
        try {
          f.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "job failed");
          throw;
        }
      },
      std::runtime_error);
  // The worker survives the throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  constexpr int kTasks = 32;
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);  // single worker => most tasks still queued ...
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      }));
    }
  }  // ... when the destructor runs: it must finish them, not drop them
  EXPECT_EQ(completed.load(), kTasks);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_GE(resolve_jobs(0), 1);   // "all cores"
  EXPECT_GE(resolve_jobs(-1), 1);
}

TEST(Json, WritesNestedDocumentWithEscapes) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "line\n\"quoted\"");
  w.kv("pi", 0.5);
  w.kv("n", std::uint64_t{18446744073709551615ULL});
  w.kv("neg", std::int64_t{-3});
  w.kv("flag", true);
  w.key("xs");
  w.begin_array();
  w.value(1);
  w.value(2.5);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(),
            "{\"name\":\"line\\n\\\"quoted\\\"\",\"pi\":0.5,"
            "\"n\":18446744073709551615,\"neg\":-3,\"flag\":true,"
            "\"xs\":[1,2.5,null]}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

// ---------------------------------------------------------------------
// Parallel / serial equivalence.

harness::Scenario small_scenario() {
  harness::Scenario sc;
  sc.n_sensors = 120;
  sc.warmup_s = 4;
  sc.measure_s = 12;
  sc.packets_per_second = 4;
  sc.sources_per_round = 3;
  sc.mobile = true;
  sc.max_speed_mps = 2.0;
  sc.seed = 11;
  return sc;
}

void expect_summary_eq(const Summary& a, const Summary& b,
                       const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;           // exact, not near:
  EXPECT_EQ(a.ci95_half_width(), b.ci95_half_width()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;             // aggregation order is
  EXPECT_EQ(a.max(), b.max()) << what;             // identical, so floats
  EXPECT_EQ(a.sum(), b.sum()) << what;             // must match bit-for-bit
}

void expect_aggregate_eq(const harness::AggregateMetrics& a,
                         const harness::AggregateMetrics& b) {
  expect_summary_eq(a.qos_throughput_kbps, b.qos_throughput_kbps, "qos");
  expect_summary_eq(a.avg_delay_ms, b.avg_delay_ms, "delay");
  expect_summary_eq(a.delay_p95_ms, b.delay_p95_ms, "p95");
  expect_summary_eq(a.delivery_ratio, b.delivery_ratio, "delivery");
  expect_summary_eq(a.comm_energy_j, b.comm_energy_j, "comm");
  expect_summary_eq(a.construction_energy_j, b.construction_energy_j,
                    "construction");
  expect_summary_eq(a.total_energy_j, b.total_energy_j, "total");
}

TEST(ParallelExecutor, SweepMatchesSerialFieldForField) {
  const std::vector<double> xs{0, 4};
  const auto configure = [](harness::Scenario& sc, double x) {
    sc.faulty_nodes = static_cast<int>(x);
  };
  ParallelExecutor serial(1);
  ParallelExecutor parallel(4);
  const auto p1 = serial.sweep(small_scenario(), xs, configure, 2);
  const auto p4 = parallel.sweep(small_scenario(), xs, configure, 2);

  ASSERT_EQ(p1.size(), p4.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].x, p4[i].x);
    ASSERT_EQ(p1[i].by_system.size(), p4[i].by_system.size());
    for (std::size_t s = 0; s < p1[i].by_system.size(); ++s) {
      expect_aggregate_eq(p1[i].by_system[s], p4[i].by_system[s]);
    }
  }

  // Job records arrive in deterministic (x, system, rep) order with the
  // run_repeated seed schedule, independent of worker interleaving.
  ASSERT_EQ(serial.records().size(), parallel.records().size());
  ASSERT_EQ(serial.records().size(),
            xs.size() * std::size(harness::kAllSystems) * 2);
  for (std::size_t i = 0; i < serial.records().size(); ++i) {
    const auto& a = serial.records()[i];
    const auto& b = parallel.records()[i];
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.system, b.system);
    EXPECT_EQ(a.rep, b.rep);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.seed, small_scenario().seed +
                          static_cast<std::uint64_t>(a.rep) * 7919);
    EXPECT_EQ(a.metrics.packets_sent, b.metrics.packets_sent);
    EXPECT_EQ(a.metrics.qos_throughput_kbps, b.metrics.qos_throughput_kbps);
    EXPECT_EQ(a.metrics.total_energy_j, b.metrics.total_energy_j);
  }
}

TEST(ParallelExecutor, RunRepeatedMatchesSerial) {
  ParallelExecutor serial(1);
  ParallelExecutor parallel(3);
  const auto a = serial.run_repeated(harness::SystemKind::kRefer,
                                     small_scenario(), 3);
  const auto b = parallel.run_repeated(harness::SystemKind::kRefer,
                                       small_scenario(), 3);
  expect_aggregate_eq(a, b);
  EXPECT_EQ(serial.records().size(), 3u);
  EXPECT_EQ(parallel.records().size(), 3u);
}

TEST(ParallelExecutor, TracedRunsAreBitIdenticalSerialVsParallel) {
  // The satellite guarantee of the observability layer: attaching traces
  // must not perturb the simulation.  Serial and parallel traced runs of
  // the same scenario must agree on every aggregate AND produce
  // byte-identical per-job trace files (each job owns its tracer and its
  // file name is a pure function of (system, x, rep)).
  namespace fs = std::filesystem;
  const fs::path base = fs::path(::testing::TempDir()) / "traced_runs";
  const fs::path dir_serial = base / "serial";
  const fs::path dir_parallel = base / "parallel";
  fs::create_directories(dir_serial);
  fs::create_directories(dir_parallel);

  harness::Scenario sc = small_scenario();
  sc.measure_s = 8;
  harness::Scenario sc_serial = sc;
  sc_serial.trace_dir = dir_serial.string();
  harness::Scenario sc_parallel = sc;
  sc_parallel.trace_dir = dir_parallel.string();

  ParallelExecutor serial(1);
  ParallelExecutor parallel(3);
  const auto a =
      serial.run_repeated(harness::SystemKind::kRefer, sc_serial, 2);
  const auto b =
      parallel.run_repeated(harness::SystemKind::kRefer, sc_parallel, 2);
  expect_aggregate_eq(a, b);

  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << p;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  for (int rep = 0; rep < 2; ++rep) {
    const std::string name = "REFER_x0_rep" + std::to_string(rep) + ".jsonl";
    const std::string serial_trace = slurp(dir_serial / name);
    const std::string parallel_trace = slurp(dir_parallel / name);
    EXPECT_FALSE(serial_trace.empty());
    EXPECT_EQ(serial_trace, parallel_trace)
        << name << " differs between serial and parallel execution";
  }
  fs::remove_all(base);
}

TEST(ParallelExecutor, RegularPolicyRunsAreBitIdenticalSerialVsParallel) {
  // The regular-routing walk state lives on the packet, so worker
  // interleaving must not perturb it: serial and parallel runs of a
  // regular-policy scenario agree on every aggregate and produce
  // byte-identical traces (which carry the policy in their header).
  namespace fs = std::filesystem;
  const fs::path base = fs::path(::testing::TempDir()) / "regular_runs";
  const fs::path dir_serial = base / "serial";
  const fs::path dir_parallel = base / "parallel";
  fs::create_directories(dir_serial);
  fs::create_directories(dir_parallel);

  harness::Scenario sc = small_scenario();
  sc.routing_policy = harness::RoutingPolicy::kRegular;
  sc.faulty_nodes = 4;  // Theorem 3.8 fail-overs interleave with walks
  harness::Scenario sc_serial = sc;
  sc_serial.trace_dir = dir_serial.string();
  harness::Scenario sc_parallel = sc;
  sc_parallel.trace_dir = dir_parallel.string();

  ParallelExecutor serial(1);
  ParallelExecutor parallel(3);
  const auto a =
      serial.run_repeated(harness::SystemKind::kRefer, sc_serial, 2);
  const auto b =
      parallel.run_repeated(harness::SystemKind::kRefer, sc_parallel, 2);
  expect_aggregate_eq(a, b);

  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << p;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  for (int rep = 0; rep < 2; ++rep) {
    const std::string name = "REFER_x0_rep" + std::to_string(rep) + ".jsonl";
    const std::string serial_trace = slurp(dir_serial / name);
    const std::string parallel_trace = slurp(dir_parallel / name);
    EXPECT_FALSE(serial_trace.empty());
    EXPECT_NE(serial_trace.find("\"policy\":\"regular\""), std::string::npos)
        << "trace header must carry the non-default policy";
    EXPECT_EQ(serial_trace, parallel_trace)
        << name << " differs between serial and parallel execution";
  }
  fs::remove_all(base);
}

TEST(ParallelExecutor, RunOnceRecords) {
  ParallelExecutor ex(1);
  harness::Scenario sc = small_scenario();
  sc.measure_s = 8;
  const auto m = ex.run_once(harness::SystemKind::kDaTree, sc);
  ASSERT_EQ(ex.records().size(), 1u);
  EXPECT_EQ(ex.records()[0].seed, sc.seed);
  EXPECT_EQ(ex.records()[0].metrics.packets_sent, m.packets_sent);
  EXPECT_GT(ex.records()[0].wall_ms, 0.0);
}

TEST(ResultsWriter, EmitsSchemaValidDocument) {
  ParallelExecutor ex(2);
  const std::vector<double> xs{0};
  harness::Scenario sc = small_scenario();
  sc.measure_s = 8;
  const auto points =
      ex.sweep(sc, xs, [](harness::Scenario&, double) {}, 1);

  ResultsWriter writer;
  writer.set_benchmark("unit_test", "unit test run");
  writer.set_jobs(ex.jobs());
  writer.set_repetitions(1);
  writer.set_scenario(sc);
  writer.set_wall_s(ex.wall_s());
  writer.add_records(ex.records());
  writer.add_series("x", points);

  const std::string doc = writer.to_json();
  EXPECT_NE(doc.find("\"schema_version\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"app_enabled\":"), std::string::npos);
  EXPECT_NE(doc.find("\"app_loop_completion_ratio\""), std::string::npos);
  EXPECT_NE(doc.find("\"observability\":["), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"router.packets_sent\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"delivery.delay_ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"tool\":\"referbench\""), std::string::npos);
  EXPECT_NE(doc.find("\"benchmark\":\"unit_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"git\":"), std::string::npos);
  EXPECT_NE(doc.find("\"jobs_run\":["), std::string::npos);
  EXPECT_NE(doc.find("\"delay_p99_ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"delay_p95_ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"scenario\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"series\":["), std::string::npos);
  EXPECT_NE(doc.find("\"system\":\"REFER\""), std::string::npos);
  EXPECT_NE(doc.find("\"wall_ms\":"), std::string::npos);
  // Structural sanity: balanced braces/brackets (no strings in the doc
  // contain them, metric names are plain identifiers).
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));

  const std::string path = ::testing::TempDir() + "runner_results_test.json";
  ASSERT_TRUE(writer.write(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Logging, ConcurrentLinesDoNotInterleave) {
  constexpr int kThreads = 8;
  constexpr int kLines = 25;
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kThreads; ++t) {
      futures.push_back(pool.submit([t] {
        for (int i = 0; i < kLines; ++i) {
          log_info("thread %d line %d end", t, i);
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  const std::string captured = ::testing::internal::GetCapturedStderr();
  set_log_level(before);

  int complete_lines = 0;
  std::istringstream stream(captured);
  std::string line;
  while (std::getline(stream, line)) {
    EXPECT_EQ(line.rfind("[INFO ] thread ", 0), 0u) << line;
    EXPECT_EQ(line.substr(line.size() - 4), " end") << line;
    ++complete_lines;
  }
  EXPECT_EQ(complete_lines, kThreads * kLines);
}

}  // namespace
}  // namespace refer::runner
