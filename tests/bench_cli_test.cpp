// Tests for the strict referbench flag parser (bench/bench_common.hpp):
// every accepted flag round-trips into BenchOptions, and any typo --
// unknown flag, missing value, non-numeric value -- exits with code 2
// instead of silently running a different experiment.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hpp"

namespace refer::bench {
namespace {

/// parse_options mutates nothing but reads argv[1..argc-1]; build a
/// mutable argv the way main() would hand it over.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "referbench");
    pointers_.reserve(storage_.size());
    for (std::string& s : storage_) pointers_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(pointers_.size()); }
  [[nodiscard]] char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(ParseOptions, Defaults) {
  Argv a({});
  const BenchOptions opt = parse_options(a.argc(), a.argv());
  EXPECT_EQ(opt.reps, 3);
  EXPECT_EQ(opt.jobs, 1);
  EXPECT_TRUE(opt.csv_prefix.empty());
  EXPECT_TRUE(opt.json_path.empty());
  EXPECT_EQ(opt.base.measure_s, 60);
  EXPECT_EQ(opt.base.packets_per_second, 10);
  EXPECT_EQ(opt.base.seed, 1u);
}

TEST(ParseOptions, ParsesEveryFlag) {
  Argv a({"--reps", "5", "--measure", "30", "--pps", "8", "--bytes", "1000",
          "--seed", "7", "--jobs", "4", "--csv", "out/prefix", "--json",
          "results.json"});
  const BenchOptions opt = parse_options(a.argc(), a.argv());
  EXPECT_EQ(opt.reps, 5);
  EXPECT_EQ(opt.base.measure_s, 30);
  EXPECT_EQ(opt.base.packets_per_second, 8);
  EXPECT_EQ(opt.base.packet_bytes, 1000u);
  EXPECT_EQ(opt.base.seed, 7u);
  EXPECT_EQ(opt.jobs, 4);
  EXPECT_EQ(opt.csv_prefix, "out/prefix");
  EXPECT_EQ(opt.json_path, "results.json");
}

TEST(ParseOptions, QuickAndFullPresets) {
  Argv quick({"--quick"});
  const BenchOptions q = parse_options(quick.argc(), quick.argv());
  EXPECT_EQ(q.reps, 1);
  EXPECT_EQ(q.base.measure_s, 45);

  Argv full({"--full"});
  const BenchOptions f = parse_options(full.argc(), full.argv());
  EXPECT_EQ(f.reps, 5);
  EXPECT_EQ(f.base.measure_s, 200);

  // Later flags win over presets, like any argv order would suggest.
  Argv mixed({"--quick", "--reps", "2"});
  const BenchOptions m = parse_options(mixed.argc(), mixed.argv());
  EXPECT_EQ(m.reps, 2);
  EXPECT_EQ(m.base.measure_s, 45);
}

TEST(ParseOptionsDeathTest, UnknownFlagExits2) {
  Argv a({"--repz", "3"});
  EXPECT_EXIT(parse_options(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "unknown flag: --repz");
}

TEST(ParseOptionsDeathTest, MissingValueExits2) {
  Argv a({"--reps"});
  EXPECT_EXIT(parse_options(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "--reps requires a value");
}

TEST(ParseOptionsDeathTest, MissingStringValueExits2) {
  Argv a({"--json"});
  EXPECT_EXIT(parse_options(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "--json requires a value");
}

TEST(ParseOptionsDeathTest, NonNumericValueExits2) {
  Argv a({"--jobs", "many"});
  EXPECT_EXIT(parse_options(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "--jobs: not a number: 'many'");
}

TEST(ParseOptionsDeathTest, TrailingGarbageInNumberExits2) {
  Argv a({"--measure", "60s"});
  EXPECT_EXIT(parse_options(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "not a number: '60s'");
}

}  // namespace
}  // namespace refer::bench
