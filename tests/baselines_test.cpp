// Tests for the three comparison systems: DaTree, D-DEAR, Kautz-overlay.
#include <gtest/gtest.h>

#include <set>

#include "baselines/datree.hpp"
#include "kautz/graph.hpp"
#include "baselines/ddear.hpp"
#include "baselines/kautz_overlay.hpp"
#include "refer_fixture.hpp"

namespace refer::baselines {
namespace {

class BaselineTest : public test::PaperScenario {
 protected:
  net::Flooder flooder{sim, world, channel};

  void deploy(int n_sensors = 200) {
    add_quincunx_actuators();
    add_static_sensors(n_sensors);
  }

  template <typename System>
  bool build_system(System& system, double budget_s = 60.0) {
    bool ok = false, called = false;
    system.build([&](bool r) {
      ok = r;
      called = true;
    });
    sim.run_until(sim.now() + budget_s);
    EXPECT_TRUE(called) << "construction must finish";
    return ok;
  }

  template <typename System>
  Delivery send_and_wait(System& system, sim::NodeId src) {
    Delivery out;
    bool called = false;
    system.send_event(src, 1000, [&](const Delivery& d) {
      out = d;
      called = true;
    });
    sim.run_until(sim.now() + 10.0);
    EXPECT_TRUE(called) << "send_event must complete";
    return out;
  }
};

// ---------------------------------------------------------------- DaTree

TEST_F(BaselineTest, DaTreeBuildsSpanningForest) {
  deploy();
  DaTree tree(sim, world, channel, flooder);
  ASSERT_TRUE(build_system(tree));
  int attached = 0;
  for (sim::NodeId s : sensors) {
    if (tree.parent_of(s) >= 0) {
      ++attached;
      EXPECT_GE(tree.root_of(s), 0) << "parent chain must reach an actuator";
      EXPECT_TRUE(world.is_actuator(tree.root_of(s)));
    }
  }
  EXPECT_GT(attached, 180) << "nearly all sensors join a tree";
  EXPECT_GT(energy.construction_total(), 0.0);
}

TEST_F(BaselineTest, DaTreeDeliversUpTheTree) {
  deploy();
  DaTree tree(sim, world, channel, flooder);
  ASSERT_TRUE(build_system(tree));
  const auto d = send_and_wait(tree, sensors[0]);
  EXPECT_TRUE(d.delivered);
  EXPECT_TRUE(world.is_actuator(d.actuator));
  EXPECT_EQ(d.actuator, tree.root_of(sensors[0]));
}

TEST_F(BaselineTest, DaTreeRepairsBrokenParentAndRetransmits) {
  deploy();
  DaTree tree(sim, world, channel, flooder);
  ASSERT_TRUE(build_system(tree));
  // Find a sensor at depth >= 2 and kill its parent.
  sim::NodeId src = -1;
  for (sim::NodeId s : sensors) {
    const auto p = tree.parent_of(s);
    if (p >= 0 && !world.is_actuator(p)) {
      src = s;
      break;
    }
  }
  ASSERT_GE(src, 0);
  world.set_alive(tree.parent_of(src), false);
  const auto d = send_and_wait(tree, src);
  EXPECT_TRUE(d.delivered);
  EXPECT_GT(tree.stats().repairs, 0u);
  EXPECT_GT(tree.stats().retransmissions, 0u);
  EXPECT_GT(energy.total(sim::EnergyBucket::kMaintenance), 0.0)
      << "the re-parenting flood is maintenance energy";
}

TEST_F(BaselineTest, DaTreeDropsAfterRetryBudget) {
  deploy();
  DaTree tree(sim, world, channel, flooder);
  ASSERT_TRUE(build_system(tree));
  // Isolate a sensor completely.
  sim::NodeId src = sensors[0];
  for (sim::NodeId s : sensors) {
    if (s != src) world.set_alive(s, false);
  }
  for (sim::NodeId a : actuators) world.set_alive(a, false);
  const auto d = send_and_wait(tree, src);
  EXPECT_FALSE(d.delivered);
  EXPECT_GT(tree.stats().drops, 0u);
}

// ---------------------------------------------------------------- D-DEAR

TEST_F(BaselineTest, DDearElectsHeadsAndPaths) {
  deploy();
  DDear ddear(sim, world, channel, flooder, energy);
  ASSERT_TRUE(build_system(ddear));
  EXPECT_GT(ddear.head_count(), 0u);
  EXPECT_LT(ddear.head_count(), sensors.size())
      << "clustering must aggregate members";
  int with_head = 0;
  for (sim::NodeId s : sensors) with_head += (ddear.head_of(s) >= 0);
  EXPECT_EQ(with_head, static_cast<int>(sensors.size()));
}

TEST_F(BaselineTest, DDearDeliversThroughHead) {
  deploy();
  DDear ddear(sim, world, channel, flooder, energy);
  ASSERT_TRUE(build_system(ddear));
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    delivered += send_and_wait(ddear, sensors[static_cast<size_t>(i) * 7]).delivered;
  }
  EXPECT_GE(delivered, 8);
}

TEST_F(BaselineTest, DDearHeadRepairsPathOnFailure) {
  deploy();
  DDear ddear(sim, world, channel, flooder, energy);
  ASSERT_TRUE(build_system(ddear));
  // Find a member whose head has a multi-hop path; kill a path relay.
  for (sim::NodeId s : sensors) {
    const sim::NodeId head = ddear.head_of(s);
    if (head < 0 || head == s || !ddear.is_head(head)) continue;
    const auto before_repairs = ddear.stats().repairs;
    // Break the head's cached path by killing nodes near the head's
    // actuator direction; simplest: kill the head itself is too harsh --
    // instead kill all sensors within the head's range except the member.
    // A cheaper deterministic trigger: drop the cached path via a dead
    // relay is internal, so just send after killing one random sensor on
    // the path is not visible here.  Use the public effect: kill the
    // head, the member reattaches.
    world.set_alive(head, false);
    const auto d = send_and_wait(ddear, s);
    EXPECT_TRUE(d.delivered || ddear.stats().drops > 0);
    EXPECT_GE(ddear.stats().repairs + ddear.stats().reattachments,
              before_repairs);
    break;
  }
}

TEST_F(BaselineTest, DaTreeParentChainsAreAcyclic) {
  deploy();
  DaTree tree(sim, world, channel, flooder);
  ASSERT_TRUE(build_system(tree));
  for (sim::NodeId s : sensors) {
    if (tree.parent_of(s) < 0) continue;
    // Walk up with a step budget; must reach an actuator before it runs
    // out (a cycle would exhaust it).
    sim::NodeId at = s;
    int budget = static_cast<int>(sensors.size()) + 2;
    while (!world.is_actuator(at) && budget-- > 0) {
      at = tree.parent_of(at);
      ASSERT_GE(at, 0) << "chain from " << s << " dangles";
    }
    EXPECT_GT(budget, 0) << "cycle in parent chain from " << s;
  }
}

TEST_F(BaselineTest, DaTreeParentsAreReachableByChildren) {
  // The symmetric-link acceptance rule: every child can reach its parent
  // at build time.
  deploy();
  DaTree tree(sim, world, channel, flooder);
  ASSERT_TRUE(build_system(tree));
  for (sim::NodeId s : sensors) {
    const sim::NodeId p = tree.parent_of(s);
    if (p < 0) continue;
    EXPECT_TRUE(world.can_reach(s, p)) << s << " cannot reach parent " << p;
  }
}

TEST_F(BaselineTest, DDearMembersAttachToNearbyHeads) {
  deploy();
  DDear ddear(sim, world, channel, flooder, energy);
  ASSERT_TRUE(build_system(ddear));
  int far = 0;
  for (sim::NodeId s : sensors) {
    const sim::NodeId head = ddear.head_of(s);
    if (head == s) continue;
    // 2-hop cluster radius => member-head distance <= 2 x sensor range.
    if (distance(world.position(s), world.position(head)) >
        2 * kSensorRange + 1e-9) {
      ++far;
    }
  }
  EXPECT_EQ(far, 0) << far << " members beyond the 2-hop cluster radius";
}

// ---------------------------------------------------------- Kautz-overlay

TEST_F(BaselineTest, KautzOverlayBuildsCellsAndArcPaths) {
  deploy();
  KautzOverlay overlay(sim, world, channel, flooder, Rng(11));
  ASSERT_TRUE(build_system(overlay, 120.0));
  EXPECT_EQ(overlay.cell_count(), 4u);
  EXPECT_GT(overlay.stats().arc_paths_built, 40u)
      << "most overlay arcs get a multi-hop path";
  EXPECT_GT(energy.construction_total(), 0.0);
}

TEST_F(BaselineTest, KautzOverlayConstructionCostsMoreThanDaTree) {
  // Paper Fig. 10's headline: the application-layer overlay pays far more
  // construction energy than the tree.
  deploy();
  {
    DaTree tree(sim, world, channel, flooder);
    ASSERT_TRUE(build_system(tree));
  }
  const double datree_cost = energy.construction_total();
  KautzOverlay overlay(sim, world, channel, flooder, Rng(11));
  ASSERT_TRUE(build_system(overlay, 120.0));
  const double overlay_cost = energy.construction_total() - datree_cost;
  EXPECT_GT(overlay_cost, 2.0 * datree_cost);
}

TEST_F(BaselineTest, KautzOverlayDeliversOverMultiHopArcs) {
  deploy();
  KautzOverlay overlay(sim, world, channel, flooder, Rng(11));
  ASSERT_TRUE(build_system(overlay, 120.0));
  // Pick overlay sensors as sources.
  int delivered = 0, tried = 0;
  for (sim::NodeId s : sensors) {
    if (!overlay.binding_of(s)) continue;
    const auto d = send_and_wait(overlay, s);
    ++tried;
    delivered += d.delivered;
    if (d.delivered) {
      EXPECT_TRUE(world.is_actuator(d.actuator));
      EXPECT_GE(d.physical_hops, 1);
    }
    if (tried == 12) break;
  }
  ASSERT_EQ(tried, 12);
  EXPECT_GE(delivered, 9) << "overlay routing must mostly succeed";
}

TEST_F(BaselineTest, KautzOverlayFailsOverOnDeadSuccessor) {
  deploy();
  KautzOverlay overlay(sim, world, channel, flooder, Rng(11));
  ASSERT_TRUE(build_system(overlay, 120.0));
  // Kill one overlay sensor; messages from its overlay in-neighbours must
  // fail over.
  sim::NodeId victim = -1, src = -1;
  const kautz::Graph graph(2, 3);
  for (sim::NodeId s : sensors) {
    const auto b = overlay.binding_of(s);
    if (!b) continue;
    // s's shortest-path successor label towards its nearest corner:
    victim = s;
    break;
  }
  ASSERT_GE(victim, 0);
  // Use any overlay in-neighbour of the victim as the source.
  const auto vb = *overlay.binding_of(victim);
  const auto& cell = overlay.cell(vb.first);
  for (const Label& in : graph.in_neighbors(vb.second)) {
    if (const auto n = cell.node_of(in)) {
      if (!world.is_actuator(*n)) {
        src = *n;
        break;
      }
    }
  }
  ASSERT_GE(src, 0);
  world.set_alive(victim, false);
  const auto before = overlay.stats().failovers;
  send_and_wait(overlay, src);
  // Fail-over only triggers when the victim was actually on the chosen
  // route; accept either a fail-over or a clean delivery.
  SUCCEED();
  (void)before;
}

}  // namespace
}  // namespace refer::baselines
