// Tests for the sensing substrate: events, detection, coverage -- and the
// WSAN-level property the paper's awake/sleep scheme promises: the awake
// subset (active + wait sensors) keeps the cells' sensing coverage.
#include <gtest/gtest.h>

#include "sensing/event_field.hpp"
#include "refer_fixture.hpp"

namespace refer::sensing {
namespace {

TEST(EventField, ScriptedEventsActivateOnSchedule) {
  EventField field;
  const int id = field.add_event({100, 100}, 5.0, 10.0);
  EXPECT_EQ(id, 0);
  EXPECT_TRUE(field.active_at(4.9).empty());
  ASSERT_EQ(field.active_at(5.0).size(), 1u);
  ASSERT_EQ(field.active_at(14.9).size(), 1u);
  EXPECT_TRUE(field.active_at(15.0).empty());
}

TEST(EventField, MultipleOverlappingEvents) {
  EventField field;
  field.add_event({0, 0}, 0.0, 10.0);
  field.add_event({10, 10}, 5.0, 10.0);
  EXPECT_EQ(field.active_at(2.0).size(), 1u);
  EXPECT_EQ(field.active_at(7.0).size(), 2u);
  EXPECT_EQ(field.active_at(12.0).size(), 1u);
}

TEST(EventField, PoissonGenerationRespectsHorizonAndArea) {
  EventField field;
  Rng rng(5);
  const Rect area{{0, 0}, {500, 500}};
  field.generate_poisson(area, /*mean=*/5.0, /*horizon=*/200.0,
                         /*duration=*/3.0, rng);
  EXPECT_GT(field.events().size(), 20u);
  EXPECT_LT(field.events().size(), 80u);
  for (const Event& e : field.events()) {
    EXPECT_TRUE(area.contains(e.position));
    EXPECT_LT(e.start_s, 200.0);
    EXPECT_DOUBLE_EQ(e.duration_s, 3.0);
  }
}

TEST(DetectionModel, CertainInsideImpossibleOutside) {
  const DetectionModel model;
  const Event e{0, {0, 0}, 0, 1, 1.0};
  EXPECT_DOUBLE_EQ(model.probability({10, 0}, e), 1.0);
  EXPECT_DOUBLE_EQ(model.probability({29.9, 0}, e), 1.0);
  EXPECT_DOUBLE_EQ(model.probability({80, 0}, e), 0.0);
  EXPECT_DOUBLE_EQ(model.probability({200, 0}, e), 0.0);
}

TEST(DetectionModel, ProbabilityDecaysMonotonically) {
  const DetectionModel model;
  const Event e{0, {0, 0}, 0, 1, 1.0};
  double prev = 1.0;
  for (double d = 30; d < 80; d += 5) {
    const double p = model.probability({d, 0}, e);
    EXPECT_LE(p, prev + 1e-12) << "at d=" << d;
    EXPECT_GE(p, 0.0);
    prev = p;
  }
}

TEST(DetectionModel, IntensityScalesTheDiscs) {
  const DetectionModel model;
  const Event strong{0, {0, 0}, 0, 1, 2.0};
  EXPECT_DOUBLE_EQ(model.probability({50, 0}, strong), 1.0);  // 50 < 2*30
  EXPECT_DOUBLE_EQ(model.probability({170, 0}, strong), 0.0);
}

TEST(DetectionModel, SamplingMatchesProbability) {
  const DetectionModel model;
  const Event e{0, {0, 0}, 0, 1, 1.0};
  Rng rng(11);
  const Point sensor{45, 0};
  const double p = model.probability(sensor, e);
  ASSERT_GT(p, 0.0);
  ASSERT_LT(p, 1.0);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += model.detects(rng, sensor, e);
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02);
}

TEST(Coverage, FullAndEmpty) {
  Rng rng(3);
  const Rect region{{0, 0}, {100, 100}};
  EXPECT_DOUBLE_EQ(coverage_fraction(region, {}, 50, rng), 0.0);
  // One watcher in the middle with a huge radius covers everything.
  EXPECT_DOUBLE_EQ(coverage_fraction(region, {{50, 50}}, 200, rng), 1.0);
}

TEST(Coverage, PartialIsBetweenBounds) {
  Rng rng(7);
  const Rect region{{0, 0}, {100, 100}};
  const double f = coverage_fraction(region, {{50, 50}}, 30, rng, 5000);
  // pi*30^2 / 100^2 ~ 0.283.
  EXPECT_NEAR(f, 0.283, 0.03);
}

class AwakeCoverageTest : public test::PaperScenario {};

TEST_F(AwakeCoverageTest, AwakeSensorsKeepCellCoverageInRefer) {
  // The paper's premise for the awake/sleep scheme (SIII-B4): putting
  // non-candidate sensors to sleep must not lose sensing coverage of the
  // cell region, because active + wait nodes blanket it.
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer(core::ReferConfig{.run_maintenance = false}));
  const auto& topo = system->topology();
  std::vector<Point> awake;
  for (sim::NodeId s : sensors) {
    const auto role = topo.role(s);
    if (role == core::Role::kActive || role == core::Role::kWait) {
      awake.push_back(world.position(s));
    }
  }
  Rng rng(13);
  // The cell region is the inner square spanned by the actuators.
  const Rect cells{{125, 125}, {375, 375}};
  const double f = coverage_fraction(cells, awake, 60, rng, 4000);
  EXPECT_GT(f, 0.95) << "awake subset must keep sensing coverage";
}

}  // namespace
}  // namespace refer::sensing
