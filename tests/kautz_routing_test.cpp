// Unit tests for the greedy shortest protocol, in/out-digit analysis
// (Propositions 3.3-3.7) and disjoint_routes (Theorem 3.8) on the paper's
// own worked examples.
#include <gtest/gtest.h>

#include <algorithm>

#include "kautz/routing.hpp"

namespace refer::kautz {
namespace {

Label L(const char* s) { return *Label::parse(s); }

const Route& route_via(const std::vector<Route>& routes, const Label& succ) {
  for (const auto& r : routes) {
    if (r.successor == succ) return r;
  }
  ADD_FAILURE() << "no route via " << succ.to_string();
  static Route dummy;
  return dummy;
}

TEST(GreedyProtocol, PaperShortestPathExample) {
  // SIII-C1: 12345 -> 23450 -> 34501.
  EXPECT_EQ(greedy_successor(L("12345"), L("34501")), L("23450"));
  EXPECT_EQ(greedy_successor(L("23450"), L("34501")), L("34501"));
  const auto path = shortest_path(L("12345"), L("34501"));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], L("23450"));
}

TEST(GreedyProtocol, ShortestLengthIsKMinusL) {
  const Label u = L("0123"), v = L("2301");
  EXPECT_EQ(shortest_path(u, v).size(), 3u);  // k - l = 4 - 2 = 2 hops
}

TEST(InDigit, Proposition33Example) {
  // Fig 2(a): U = 0123, V = 2301, l = 2.
  const Label u = L("0123"), v = L("2301");
  // Shortest path via 1230 (alpha = v_{l+1} = 0): in-digit u_{k-l} = u_2 = 1.
  EXPECT_EQ(in_digit(u, v, 0), 1);
  // alpha = v_1 = 2 (node 1232): in-digit u_k = 3.
  EXPECT_EQ(in_digit(u, v, 2), 3);
  // alpha = 1 (node 1231): in-digit alpha = 1.
  EXPECT_EQ(in_digit(u, v, 1), 1);
  // alpha = 4 (node 1234): in-digit alpha = 4.
  EXPECT_EQ(in_digit(u, v, 4), 4);
}

TEST(ConflictDigit, ExistsExactlyWhenPaperConditionHolds) {
  // Fig 2(a): u_{k-l} = 1 != v_{l+1} = 0 -> conflict digit 1.
  EXPECT_EQ(conflict_digit(L("0123"), L("2301")), std::optional<Digit>(1));
  // Fig 2(b): U = 0123, V1 = 2311... the paper uses a pair with
  // u_{k-l} == v_{l+1}; construct one: V = 2310 has l = 2? suffix "23" ==
  // prefix "23", v_{l+1} = v_3 = 1 == u_{k-l} = u_2 = 1 -> no conflict node.
  EXPECT_EQ(conflict_digit(L("0123"), L("2310")), std::nullopt);
}

TEST(ConflictDigit, AbsentWhenEqualToUk) {
  // l = 0 cases: u_{k-l} = u_k is not a legal out-digit.
  const Label u = L("012"), v = L("101");
  ASSERT_EQ(overlap(u, v), 0);
  EXPECT_EQ(conflict_digit(u, v), std::nullopt);
}

TEST(DisjointRoutes, PaperTheorem38ExampleK44) {
  // SIII-C2 worked example: U = 0123 sends to V = 2301 in K(4,4).
  // Successors and lengths: (1230, shortest, k-l=2), (1232, k=4),
  // (1234, k+1=5), (1231, conflict, k+2=6).
  const auto routes = disjoint_routes(4, L("0123"), L("2301"));
  ASSERT_EQ(routes.size(), 4u);

  const Route& shortest = route_via(routes, L("1230"));
  EXPECT_EQ(shortest.path_class, PathClass::kShortest);
  EXPECT_EQ(shortest.nominal_length, 2);

  const Route& second = route_via(routes, L("1232"));
  EXPECT_EQ(second.path_class, PathClass::kV1);
  EXPECT_EQ(second.nominal_length, 4);

  const Route& third = route_via(routes, L("1234"));
  EXPECT_EQ(third.path_class, PathClass::kOther);
  EXPECT_EQ(third.nominal_length, 5);

  const Route& conflict = route_via(routes, L("1231"));
  EXPECT_EQ(conflict.path_class, PathClass::kConflict);
  EXPECT_EQ(conflict.nominal_length, 6);
  // Proposition 3.7 example: node 1231 must forward to 2310.
  ASSERT_TRUE(conflict.forced_second_hop.has_value());
  EXPECT_EQ(*conflict.forced_second_hop, L("2310"));
}

TEST(DisjointRoutes, SortedByNominalLength) {
  const auto routes = disjoint_routes(4, L("0123"), L("2301"));
  ASSERT_EQ(routes.size(), 4u);
  EXPECT_TRUE(std::is_sorted(routes.begin(), routes.end(),
                             [](const Route& a, const Route& b) {
                               return a.nominal_length < b.nominal_length;
                             }));
  EXPECT_EQ(routes.front().path_class, PathClass::kShortest);
}

TEST(DisjointRoutes, IntraCellExampleFromFigure1) {
  // SIII-C: in K(2,3), node 102 re-routes to 201 around failed node 020
  // with 021 as the next hop.
  const auto routes = disjoint_routes(2, L("102"), L("201"));
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0].successor, L("020"));  // shortest: l=1, length 2
  EXPECT_EQ(routes[0].nominal_length, 2);
  EXPECT_EQ(routes[1].successor, L("021"));  // alternative
}

TEST(DisjointRoutes, WhenLIsZeroShortestAbsorbsV1Class) {
  // l = 0: v_{l+1} == v_1, so exactly one shortest route of length k and
  // d-1 "other" routes of length k+1; no v1 or conflict class.
  const Label u = L("010"), v = L("121");
  ASSERT_EQ(overlap(u, v), 0);
  const auto routes = disjoint_routes(2, u, v);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0].path_class, PathClass::kShortest);
  EXPECT_EQ(routes[0].nominal_length, 3);
  EXPECT_EQ(routes[1].path_class, PathClass::kOther);
  EXPECT_EQ(routes[1].nominal_length, 4);
}

TEST(DisjointRoutes, SuccessorsAreExactlyTheDOutNeighbors) {
  const Label u = L("0123"), v = L("2301");
  const auto routes = disjoint_routes(4, u, v);
  ASSERT_EQ(routes.size(), 4u);
  for (const auto& r : routes) {
    EXPECT_TRUE(r.successor.valid_for_alphabet(5));
    // successor must be an out-neighbour: suffix match + new last digit.
    EXPECT_EQ(r.successor.prefix(3), u.suffix(3));
    EXPECT_NE(r.successor.last(), u.last());
  }
}

TEST(MaterializePath, ShortestMatchesNominal) {
  const Label u = L("0123"), v = L("2301");
  const auto routes = disjoint_routes(4, u, v);
  for (const auto& r : routes) {
    const auto path = materialize_path(u, v, r);
    EXPECT_EQ(path.front(), u);
    EXPECT_EQ(path.back(), v);
    EXPECT_LE(static_cast<int>(path.size()) - 1, r.nominal_length)
        << "via " << r.successor.to_string();
    if (r.path_class == PathClass::kShortest) {
      EXPECT_EQ(static_cast<int>(path.size()) - 1, r.nominal_length);
    }
  }
}

TEST(MaterializePath, PaperFourPathsAreInternallyDisjoint) {
  const Label u = L("0123"), v = L("2301");
  const auto routes = disjoint_routes(4, u, v);
  std::vector<std::vector<Label>> paths;
  for (const auto& r : routes) paths.push_back(materialize_path(u, v, r));
  // Check pairwise internal disjointness by brute force.
  for (std::size_t a = 0; a < paths.size(); ++a) {
    for (std::size_t b = a + 1; b < paths.size(); ++b) {
      for (std::size_t i = 1; i + 1 < paths[a].size(); ++i) {
        for (std::size_t j = 1; j + 1 < paths[b].size(); ++j) {
          EXPECT_NE(paths[a][i], paths[b][j])
              << "paths via " << routes[a].successor.to_string() << " and "
              << routes[b].successor.to_string() << " intersect at "
              << paths[a][i].to_string();
        }
      }
    }
  }
}

TEST(MaterializePath, ThrowsOnHopBudgetExceeded) {
  const Label u = L("0123"), v = L("2301");
  const auto routes = disjoint_routes(4, u, v);
  EXPECT_THROW(materialize_path(u, v, routes.back(), 1), std::logic_error);
}

TEST(PathClassNames, AreStable) {
  EXPECT_STREQ(to_string(PathClass::kShortest), "shortest");
  EXPECT_STREQ(to_string(PathClass::kV1), "v1");
  EXPECT_STREQ(to_string(PathClass::kConflict), "conflict");
  EXPECT_STREQ(to_string(PathClass::kOther), "other");
}

}  // namespace
}  // namespace refer::kautz
