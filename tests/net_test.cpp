// Unit tests for the net module: flooding discovery, path collection,
// announcements, BFS oracle, path forwarding.
#include <gtest/gtest.h>

#include "net/flooding.hpp"

namespace refer::net {
namespace {

using sim::EnergyBucket;
using sim::NodeId;

class NetTest : public ::testing::Test {
 protected:
  NetTest() { energy.resize(64); }

  /// A chain of sensors spaced 80 m apart (range 100 m): only adjacent
  /// nodes hear each other.
  std::vector<NodeId> make_chain(int n) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) {
      ids.push_back(
          world.add_static_sensor({80.0 * i, 0}, 100));
    }
    return ids;
  }

  sim::Simulator sim;
  sim::World world{{{0, 0}, {2000, 2000}}, sim};
  sim::EnergyTracker energy;
  sim::Channel channel{sim, world, energy, Rng(1)};
  Flooder flooder{sim, world, channel};
};

TEST_F(NetTest, DiscoverFindsChainPath) {
  const auto ids = make_chain(4);
  std::optional<std::vector<NodeId>> found;
  bool called = false;
  flooder.discover(ids[0], ids[3], 5, EnergyBucket::kMaintenance,
                   [&](auto path) {
                     called = true;
                     found = path;
                   });
  sim.run_all();
  ASSERT_TRUE(called);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, (std::vector<NodeId>{ids[0], ids[1], ids[2], ids[3]}));
}

TEST_F(NetTest, DiscoverRespectsTtl) {
  const auto ids = make_chain(5);
  std::optional<std::vector<NodeId>> found = std::vector<NodeId>{};
  flooder.discover(ids[0], ids[4], 2,  // needs 4 hops, TTL 2
                   EnergyBucket::kMaintenance,
                   [&](auto path) { found = path; });
  sim.run_all();
  EXPECT_FALSE(found.has_value());
}

TEST_F(NetTest, DiscoverTimesOutWhenPartitioned) {
  const auto a = world.add_static_sensor({0, 0}, 100);
  const auto b = world.add_static_sensor({1000, 1000}, 100);
  bool called = false;
  std::optional<std::vector<NodeId>> found = std::vector<NodeId>{};
  flooder.discover(a, b, 8, EnergyBucket::kMaintenance, [&](auto path) {
    called = true;
    found = path;
  });
  sim.run_all();
  EXPECT_TRUE(called);
  EXPECT_FALSE(found.has_value());
}

TEST_F(NetTest, DiscoveryChargesFloodEnergy) {
  make_chain(4);
  flooder.discover(0, 3, 5, EnergyBucket::kMaintenance, [](auto) {});
  sim.run_all();
  // At least: 3 forwarding broadcasts + reply unicasts.
  EXPECT_GT(energy.total(EnergyBucket::kMaintenance), 6.0);
  EXPECT_DOUBLE_EQ(energy.total(EnergyBucket::kData), 0.0);
}

TEST_F(NetTest, CollectPathsFindsMultipleRoutes) {
  // Diamond: s - {a, b} - t, two node-disjoint 2-hop paths.
  const auto s = world.add_static_sensor({0, 0}, 100);
  const auto a = world.add_static_sensor({70, 50}, 100);
  const auto b = world.add_static_sensor({70, -50}, 100);
  const auto t = world.add_static_sensor({140, 0}, 100);
  std::vector<std::vector<NodeId>> paths;
  flooder.collect_paths(s, t, 2, EnergyBucket::kConstruction,
                        [&](auto p) { paths = p; });
  sim.run_all();
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.front(), s);
    EXPECT_EQ(p.back(), t);
    EXPECT_TRUE(p[1] == a || p[1] == b);
  }
  EXPECT_NE(paths[0][1], paths[1][1]);
}

TEST_F(NetTest, CollectPathsRespectsTtl) {
  const auto ids = make_chain(5);
  std::vector<std::vector<NodeId>> paths;
  flooder.collect_paths(ids[0], ids[4], 2, EnergyBucket::kConstruction,
                        [&](auto p) { paths = p; });
  sim.run_all();
  EXPECT_TRUE(paths.empty());
  // TTL=2 means up to 2 intermediate forwarders: target 3 hops away IS
  // reachable.
  std::vector<std::vector<NodeId>> paths3;
  flooder.collect_paths(ids[0], ids[3], 2, EnergyBucket::kConstruction,
                        [&](auto p) { paths3 = p; });
  sim.run_all();
  ASSERT_EQ(paths3.size(), 1u);
  EXPECT_EQ(paths3[0].size(), 4u);
}

TEST_F(NetTest, AnnounceReachesAllWithinTtlWithParents) {
  const auto ids = make_chain(6);
  std::unordered_map<NodeId, std::pair<int, NodeId>> seen;
  flooder.announce(ids[0], 3, EnergyBucket::kConstruction,
                   [&](NodeId n, int hops, NodeId parent) {
                     seen[n] = {hops, parent};
                     return true;
                   });
  sim.run_all();
  ASSERT_EQ(seen.size(), 3u);  // nodes 1..3
  EXPECT_EQ(seen[ids[1]], (std::pair{1, ids[0]}));
  EXPECT_EQ(seen[ids[2]], (std::pair{2, ids[1]}));
  EXPECT_EQ(seen[ids[3]], (std::pair{3, ids[2]}));
  EXPECT_FALSE(seen.contains(ids[4]));
}

TEST_F(NetTest, DiscoverRejectsAsymmetricLinks) {
  // An actuator's 250 m first hop must not appear in a discovered route:
  // the reply (and later data) could never travel back over it.  The
  // symmetric route goes through the 80 m chain instead.
  const auto act = world.add_actuator({0, 0}, 250);
  const auto s1 = world.add_static_sensor({80, 0}, 100);
  const auto s2 = world.add_static_sensor({160, 0}, 100);
  const auto target = world.add_static_sensor({240, 0}, 100);
  std::optional<std::vector<NodeId>> found;
  flooder.discover(act, target, 6, EnergyBucket::kMaintenance,
                   [&](auto path) { found = path; });
  sim.run_all();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, (std::vector<NodeId>{act, s1, s2, target}))
      << "route must use hops every receiver can reach back";
}

TEST_F(NetTest, BroadcastRangeOverrideLimitsReceivers) {
  const auto a = world.add_actuator({0, 0}, 250);
  world.add_static_sensor({60, 0}, 100);
  world.add_static_sensor({180, 0}, 100);  // inside 250, outside 100
  int received = 0;
  channel.broadcast(a, 64, EnergyBucket::kConstruction,
                    [&](NodeId) { ++received; }, /*range_override=*/100);
  sim.run_all();
  EXPECT_EQ(received, 1) << "power control must shrink the footprint";
}

TEST_F(NetTest, BfsPathMatchesChain) {
  const auto ids = make_chain(4);
  const auto path = bfs_path(world, ids[0], ids[3]);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{ids[0], ids[1], ids[2], ids[3]}));
}

TEST_F(NetTest, BfsPathHonoursExclusions) {
  const auto s = world.add_static_sensor({0, 0}, 100);
  const auto a = world.add_static_sensor({70, 50}, 100);
  const auto b = world.add_static_sensor({70, -50}, 100);
  const auto t = world.add_static_sensor({140, 0}, 100);
  std::unordered_set<NodeId> exclude{a};
  const auto path = bfs_path(world, s, t, &exclude);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{s, b, t}));
  exclude.insert(b);
  EXPECT_FALSE(bfs_path(world, s, t, &exclude).has_value());
}

TEST_F(NetTest, BfsPathNoRoute) {
  const auto a = world.add_static_sensor({0, 0}, 100);
  const auto b = world.add_static_sensor({500, 500}, 100);
  EXPECT_FALSE(bfs_path(world, a, b).has_value());
}

TEST_F(NetTest, SendAlongPathDeliversAndCharges) {
  const auto ids = make_chain(4);
  std::size_t hops = 0;
  bool ok = false;
  send_along_path(channel, {ids[0], ids[1], ids[2], ids[3]}, 1000,
                  EnergyBucket::kData, [&](std::size_t h, bool s) {
                    hops = h;
                    ok = s;
                  });
  sim.run_all();
  EXPECT_TRUE(ok);
  EXPECT_EQ(hops, 3u);
  // 3 tx + 3 rx.
  EXPECT_DOUBLE_EQ(energy.total(EnergyBucket::kData), 3 * 2.0 + 3 * 0.75);
}

TEST_F(NetTest, SendAlongPathReportsFailingHop) {
  const auto ids = make_chain(4);
  world.set_alive(ids[2], false);
  std::size_t hops = 99;
  bool ok = true;
  send_along_path(channel, {ids[0], ids[1], ids[2], ids[3]}, 1000,
                  EnergyBucket::kData, [&](std::size_t h, bool s) {
                    hops = h;
                    ok = s;
                  });
  sim.run_all();
  EXPECT_FALSE(ok);
  EXPECT_EQ(hops, 1u);  // failed at hop ids[1] -> ids[2]
}

TEST_F(NetTest, SendAlongTrivialPathSucceedsImmediately) {
  bool ok = false;
  send_along_path(channel, {0}, 100, EnergyBucket::kData,
                  [&](std::size_t, bool s) { ok = s; });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace refer::net
