// Unit tests for kautz::Graph: counts (Lemma 3.1), neighbourhoods,
// Hamiltonian cycle (precondition of the embedding, paper SIII-A).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "kautz/graph.hpp"
#include "kautz/verifier.hpp"

namespace refer::kautz {
namespace {

TEST(Graph, RejectsInvalidParameters) {
  EXPECT_THROW(Graph(0, 3), std::invalid_argument);
  EXPECT_THROW(Graph(2, 0), std::invalid_argument);
  EXPECT_THROW(Graph(2, 17), std::invalid_argument);
}

TEST(Graph, NodeAndEdgeCounts) {
  // Lemma 3.1: N = (d+1) d^{k-1}, E = (d+1) d^k = N * d.
  EXPECT_EQ(Graph(2, 3).node_count(), 12u);
  EXPECT_EQ(Graph(2, 3).edge_count(), 24u);
  EXPECT_EQ(Graph(4, 4).node_count(), 320u);
  EXPECT_EQ(Graph(4, 4).edge_count(), 1280u);
  EXPECT_EQ(Graph(1, 5).node_count(), 2u);
  EXPECT_EQ(Graph(3, 2).node_count(), 12u);
}

TEST(Graph, EulerDegreeSumOptimality) {
  // |E| == N * delta_min, the equality of Lemma 3.1 proving minimum
  // connectivity.
  for (int d = 1; d <= 4; ++d) {
    for (int k = 2; k <= 4; ++k) {
      const Graph g(d, k);
      EXPECT_EQ(g.edge_count(), g.node_count() * static_cast<unsigned>(d));
    }
  }
}

TEST(Graph, NodesEnumerationMatchesCountAndValidity) {
  const Graph g(3, 3);
  const auto nodes = g.nodes();
  EXPECT_EQ(nodes.size(), g.node_count());
  std::set<Label> unique(nodes.begin(), nodes.end());
  EXPECT_EQ(unique.size(), nodes.size());
  for (const auto& n : nodes) EXPECT_TRUE(g.contains(n));
}

TEST(Graph, ContainsChecksLengthAlphabetAndRepeats) {
  const Graph g(2, 3);
  EXPECT_TRUE(g.contains(Label{0, 1, 2}));
  EXPECT_FALSE(g.contains(Label{0, 1}));        // wrong length
  EXPECT_FALSE(g.contains(Label{0, 1, 3}));     // digit 3 not in {0,1,2}
  EXPECT_FALSE(g.contains(Label{0, 1, 1}));     // repeat
}

TEST(Graph, OutNeighborsAreTheDLegalShifts) {
  const Graph g(2, 3);
  const auto out = g.out_neighbors(Label{0, 1, 2});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Label{1, 2, 0}));
  EXPECT_EQ(out[1], (Label{1, 2, 1}));
  for (const auto& n : out) EXPECT_TRUE(g.contains(n));
}

TEST(Graph, InNeighborsAreTheDLegalPrepends) {
  const Graph g(2, 3);
  const auto in = g.in_neighbors(Label{0, 1, 2});
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(in[0], (Label{1, 0, 1}));
  EXPECT_EQ(in[1], (Label{2, 0, 1}));
}

TEST(Graph, InOutNeighborsAreConsistent) {
  const Graph g(3, 3);
  for (const auto& u : g.nodes()) {
    for (const auto& v : g.out_neighbors(u)) {
      EXPECT_TRUE(g.has_arc(u, v));
      const auto in = g.in_neighbors(v);
      EXPECT_NE(std::find(in.begin(), in.end(), u), in.end());
    }
  }
}

TEST(Graph, HasArcRejectsNonArcs) {
  const Graph g(2, 3);
  EXPECT_TRUE(g.has_arc(Label{0, 1, 2}, Label{1, 2, 0}));
  EXPECT_FALSE(g.has_arc(Label{0, 1, 2}, Label{2, 0, 1}));
  EXPECT_FALSE(g.has_arc(Label{0, 1, 2}, Label{0, 1, 2}));
}

TEST(Graph, DiameterMatchesK) {
  // max over all pairs of BFS distance == k.
  for (int d = 2; d <= 3; ++d) {
    for (int k = 2; k <= 3; ++k) {
      const Graph g(d, k);
      int max_dist = 0;
      for (const auto& u : g.nodes()) {
        const auto dist = bfs_distances(g, u);
        EXPECT_EQ(dist.size(), g.node_count()) << "strongly connected";
        for (const auto& [v, dv] : dist) max_dist = std::max(max_dist, dv);
      }
      EXPECT_EQ(max_dist, k);
    }
  }
}

class HamiltonianCycleTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HamiltonianCycleTest, VisitsEveryNodeExactlyOnce) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  const auto cycle = g.hamiltonian_cycle();
  ASSERT_EQ(cycle.size(), g.node_count() + 1);
  EXPECT_EQ(cycle.front(), cycle.back());
  std::unordered_set<Label, LabelHash> seen;
  for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
    EXPECT_TRUE(g.contains(cycle[i])) << cycle[i].to_string();
    EXPECT_TRUE(seen.insert(cycle[i]).second) << "revisited " << cycle[i].to_string();
    EXPECT_TRUE(g.has_arc(cycle[i], cycle[i + 1]))
        << cycle[i].to_string() << " -> " << cycle[i + 1].to_string();
  }
  EXPECT_EQ(seen.size(), g.node_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HamiltonianCycleTest,
    ::testing::Values(std::pair{1, 2}, std::pair{2, 1}, std::pair{2, 2},
                      std::pair{2, 3}, std::pair{2, 4}, std::pair{3, 2},
                      std::pair{3, 3}, std::pair{4, 3}, std::pair{4, 4},
                      std::pair{2, 8}));

}  // namespace
}  // namespace refer::kautz
