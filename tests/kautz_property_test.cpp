// Property-based sweeps over Kautz graphs: invariants of labels, graphs
// and Theorem 3.8 routing that must hold for every (d, k) in the sweep and
// every node pair (exhaustive for small graphs, sampled for larger ones).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "common/rng.hpp"
#include "kautz/graph.hpp"
#include "kautz/route_cache.hpp"
#include "kautz/routing.hpp"
#include "kautz/verifier.hpp"

namespace refer::kautz {
namespace {

struct DK {
  int d;
  int k;
};

class KautzProperty : public ::testing::TestWithParam<DK> {
 protected:
  /// Up to `limit` ordered pairs (u, v), exhaustive when the graph is small
  /// enough, uniformly sampled otherwise.
  static std::vector<std::pair<Label, Label>> pairs(const Graph& g,
                                                    std::size_t limit) {
    const auto nodes = g.nodes();
    std::vector<std::pair<Label, Label>> out;
    if (nodes.size() * nodes.size() <= limit) {
      for (const auto& u : nodes) {
        for (const auto& v : nodes) {
          if (u != v) out.emplace_back(u, v);
        }
      }
      return out;
    }
    Rng rng(0xC0FFEE ^ (static_cast<std::uint64_t>(g.degree()) << 8 |
                        static_cast<std::uint64_t>(g.diameter())));
    while (out.size() < limit) {
      const auto& u = nodes[rng.below(nodes.size())];
      const auto& v = nodes[rng.below(nodes.size())];
      if (u != v) out.emplace_back(u, v);
    }
    return out;
  }
};

TEST_P(KautzProperty, IndexBijection) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  std::unordered_set<Label, LabelHash> seen;
  for (std::uint64_t i = 0; i < g.node_count(); ++i) {
    const Label l = Label::from_index(i, d, k);
    EXPECT_TRUE(g.contains(l));
    EXPECT_EQ(l.to_index(d), i);
    EXPECT_TRUE(seen.insert(l).second);
  }
}

TEST_P(KautzProperty, ArcShiftRelation) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& [u, v] : pairs(g, 4000)) {
    EXPECT_EQ(g.has_arc(u, v), kautz_distance(u, v) == 1)
        << u.to_string() << " -> " << v.to_string();
  }
}

TEST_P(KautzProperty, GreedyPathLengthEqualsKautzDistance) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& [u, v] : pairs(g, 3000)) {
    const auto path = shortest_path(u, v);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, kautz_distance(u, v));
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_arc(path[i], path[i + 1]));
    }
  }
}

TEST_P(KautzProperty, NominalLengthsMatchTheoremRows) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& [u, v] : pairs(g, 3000)) {
    const int l = overlap(u, v);
    int shortest = 0, v1 = 0, conflict = 0, other = 0;
    for (const auto& r : disjoint_routes(d, u, v)) {
      switch (r.path_class) {
        case PathClass::kShortest:
          ++shortest;
          EXPECT_EQ(r.nominal_length, k - l);
          break;
        case PathClass::kV1:
          ++v1;
          EXPECT_EQ(r.nominal_length, k);
          break;
        case PathClass::kConflict:
          ++conflict;
          EXPECT_EQ(r.nominal_length, k + 2);
          EXPECT_TRUE(r.forced_second_hop.has_value());
          break;
        case PathClass::kOther:
          ++other;
          EXPECT_EQ(r.nominal_length, k + 1);
          EXPECT_FALSE(r.forced_second_hop.has_value());
          break;
      }
    }
    EXPECT_EQ(shortest, 1);
    EXPECT_LE(v1, 1);
    EXPECT_LE(conflict, 1);
    EXPECT_EQ(shortest + v1 + conflict + other, d);
    // v1 class exists iff v_1 is a legal out-digit (!= u_k) not already
    // claimed by the shortest class (v_1 != v_{l+1}) and not degraded to a
    // redirected conflict route (u_{k-l} == u_k collision, case (b) in
    // routing.cpp).
    const bool v1_exists = u.last() != v.first() && v.first() != v[l] &&
                           u[k - l - 1] != u.last();
    EXPECT_EQ(v1, v1_exists ? 1 : 0)
        << u.to_string() << " -> " << v.to_string();
  }
}

TEST_P(KautzProperty, CanonicalPathsArePairwiseDisjoint) {
  // Theorem 3.8's guarantee, verified in its sharpest universally-true
  // form: the d canonical paths realise their nominal lengths exactly, are
  // valid walks, and are pairwise cross-disjoint (no node shared between
  // two different paths).  Full per-path simplicity additionally holds for
  // k == 3 (REFER's deployment configuration) and can only fail on
  // degenerate periodic destination labels for larger k; the failure rate
  // is bounded below 2% of pairs.
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  std::size_t non_simple = 0, total = 0;
  for (const auto& [u, v] : pairs(g, 2000)) {
    const auto routes = disjoint_routes(d, u, v);
    std::vector<std::vector<Label>> paths;
    for (const auto& r : routes) {
      paths.push_back(canonical_path(u, v, r));
      EXPECT_EQ(static_cast<int>(paths.back().size()) - 1, r.nominal_length)
          << u.to_string() << " -> " << v.to_string() << " via "
          << r.successor.to_string();
    }
    EXPECT_TRUE(all_paths_valid(g, u, v, paths))
        << u.to_string() << " -> " << v.to_string();
    EXPECT_TRUE(cross_disjoint(paths))
        << u.to_string() << " -> " << v.to_string();
    ++total;
    if (!all_simple(paths)) {
      ++non_simple;
      EXPECT_NE(k, 3) << "self-repeat must not happen for k == 3: "
                      << u.to_string() << " -> " << v.to_string();
    }
  }
  EXPECT_LE(non_simple * 50, total)  // < 2%
      << non_simple << " of " << total;
}

TEST_P(KautzProperty, ProtocolPathsStayWithinNominalLength) {
  // The protocol (greedy with one forced redirect hop) can shortcut below
  // the canonical length but never exceeds it, and always arrives.
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& [u, v] : pairs(g, 2000)) {
    for (const auto& r : disjoint_routes(d, u, v)) {
      const auto path = materialize_path(u, v, r, 4 * k + 8);
      EXPECT_EQ(path.back(), v);
      EXPECT_LE(static_cast<int>(path.size()) - 1, r.nominal_length);
    }
  }
}

TEST_P(KautzProperty, TheoremMatchesRouteGenerationCount) {
  // The expensive route-generation algorithm finds d disjoint paths; the
  // ID-only table must offer the same number of successors.
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& [u, v] : pairs(g, 64)) {
    const auto generated = route_generation_disjoint_paths(g, u, v);
    EXPECT_EQ(generated.size(), static_cast<std::size_t>(d));
    EXPECT_EQ(disjoint_routes(d, u, v).size(), static_cast<std::size_t>(d));
  }
}

TEST_P(KautzProperty, ImaseWorstCaseBoundHolds) {
  // Imase et al. [27]: between any two nodes of a Kautz graph there are d
  // disjoint paths of length at most k + 2.  Theorem 3.8's nominal
  // lengths respect the bound everywhere.
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& [u, v] : pairs(g, 3000)) {
    for (const auto& r : disjoint_routes(d, u, v)) {
      EXPECT_LE(r.nominal_length, k + 2);
      EXPECT_GE(r.nominal_length, 1);
    }
  }
}

TEST_P(KautzProperty, ArcReversalDuality) {
  // v is an out-neighbour of u iff u is an in-neighbour of v.
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& [u, v] : pairs(g, 1500)) {
    const auto out = g.out_neighbors(u);
    const bool u_to_v =
        std::find(out.begin(), out.end(), v) != out.end();
    const auto in = g.in_neighbors(v);
    const bool v_from_u =
        std::find(in.begin(), in.end(), u) != in.end();
    EXPECT_EQ(u_to_v, v_from_u)
        << u.to_string() << " -> " << v.to_string();
  }
}

TEST_P(KautzProperty, TheoremPathsMatchRouteGenerationLengthBound) {
  // The ID-only construction is never asymptotically worse than the
  // explicit route-generation algorithm: its longest path is at most two
  // hops longer than the baseline's longest (both respect k + 2).
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& [u, v] : pairs(g, 48)) {
    const auto generated = route_generation_disjoint_paths(g, u, v);
    int gen_longest = 0;
    for (const auto& p : generated) {
      gen_longest = std::max(gen_longest, static_cast<int>(p.size()) - 1);
    }
    int ours_longest = 0;
    for (const auto& r : disjoint_routes(d, u, v)) {
      ours_longest = std::max(ours_longest, r.nominal_length);
    }
    EXPECT_LE(ours_longest, k + 2);
    EXPECT_LE(gen_longest, k + 2);
  }
}

TEST_P(KautzProperty, HamiltonianCycleExists) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  const auto cycle = g.hamiltonian_cycle();
  EXPECT_EQ(cycle.size(), g.node_count() + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KautzProperty,
    ::testing::Values(DK{2, 2}, DK{2, 3}, DK{2, 4}, DK{2, 5}, DK{3, 2},
                      DK{3, 3}, DK{3, 4}, DK{4, 2}, DK{4, 3}, DK{4, 4},
                      DK{5, 3}),
    [](const auto& info) {
      return "d" + std::to_string(info.param.d) + "k" +
             std::to_string(info.param.k);
    });

// ------------------------------------------------------------ route cache

void expect_same_routes(const std::vector<Route>& got,
                        const std::vector<Route>& expected, int d,
                        const Label& u, const Label& v) {
  ASSERT_EQ(got.size(), expected.size())
      << "d=" << d << " " << u.to_string() << "->" << v.to_string();
  for (std::size_t r = 0; r < got.size(); ++r) {
    EXPECT_EQ(got[r].successor, expected[r].successor);
    EXPECT_EQ(got[r].path_class, expected[r].path_class);
    EXPECT_EQ(got[r].nominal_length, expected[r].nominal_length);
    EXPECT_EQ(got[r].forced_second_hop, expected[r].forced_second_hop);
  }
}

TEST(RouteCacheProperty, RandomStreamMatchesUncachedUnderHeavyCollisions) {
  // 2 slots, thousands of random (src, dst) pairs across mixed degrees:
  // nearly every lookup collides into an occupied slot, so the test
  // exercises the overwrite/recompute path as hard as the hit path.
  // Correctness must never depend on what the slot currently holds.
  RouteCache tiny(2);
  std::vector<Route> out;
  Rng rng(0x5EEDCACE);
  const DK dks[] = {{2, 3}, {3, 3}, {4, 3}, {5, 3}};
  std::uint64_t counts[std::size(dks)];
  for (std::size_t i = 0; i < std::size(dks); ++i) {
    counts[i] = Graph(dks[i].d, dks[i].k).node_count();
  }
  for (int i = 0; i < 3000; ++i) {
    const std::size_t which = rng.below(std::size(dks));
    const auto [d, k] = dks[which];
    const std::uint64_t n = counts[which];
    const Label u = Label::from_index(rng.below(n), d, k);
    Label v = Label::from_index(rng.below(n), d, k);
    if (v == u) v = Label::from_index((v.to_index(d) + 1) % n, d, k);
    tiny.lookup(d, u, v, out);
    expect_same_routes(out, disjoint_routes(d, u, v), d, u, v);
  }
  // With 2 slots and 4 degrees the stream must both hit and collide.
  EXPECT_GT(tiny.hits(), 0u);
  EXPECT_GT(tiny.misses(), tiny.hits());
  EXPECT_EQ(tiny.hits() + tiny.misses(), 3000u);
}

TEST(RouteCacheProperty, RepeatedPairHitsEvenInTinyCache) {
  RouteCache tiny(2);
  std::vector<Route> out;
  const Label u = Label::from_index(0, 2, 3);
  const Label v = Label::from_index(7, 2, 3);
  tiny.lookup(2, u, v, out);
  const std::uint64_t misses = tiny.misses();
  for (int i = 0; i < 10; ++i) tiny.lookup(2, u, v, out);
  EXPECT_EQ(tiny.hits(), 10u);
  EXPECT_EQ(tiny.misses(), misses);
}

TEST(RouteCacheProperty, DegreeTenAndAboveBypassesTheCache) {
  // Theorem 3.8 yields d routes; the per-slot array holds 10, so d >= 10
  // must go straight to disjoint_routes -- correct results, no counter
  // movement, no slot pollution.
  RouteCache cache(64);
  std::vector<Route> out;
  Rng rng(0xB1FA55);
  const int d = 10, k = 2;
  const std::uint64_t n = 1100;  // d^k * (d + 1) nodes in K(10, 2)
  for (int i = 0; i < 50; ++i) {
    const Label u = Label::from_index(rng.below(n), d, k);
    Label v = Label::from_index(rng.below(n), d, k);
    if (v == u) v = Label::from_index((v.to_index(d) + 1) % n, d, k);
    cache.lookup(d, u, v, out);
    expect_same_routes(out, disjoint_routes(d, u, v), d, u, v);
    EXPECT_EQ(out.size(), 10u);
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // The bypass left the cached degrees untouched.
  const Label u = Label::from_index(1, 2, 3);
  const Label v = Label::from_index(5, 2, 3);
  cache.lookup(2, u, v, out);
  expect_same_routes(out, disjoint_routes(2, u, v), 2, u, v);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace refer::kautz
