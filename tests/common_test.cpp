// Unit tests for src/common: rng, geometry, stats, strings, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "common/geometry.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stats_registry.hpp"
#include "common/strings.hpp"

namespace refer {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DefaultConstructionIsAFixedSeedNeverWallClock) {
  // Deflake guard: a default-constructed Rng is the golden-ratio constant,
  // so forgetting an explicit seed can never introduce run-to-run
  // nondeterminism.  (No code in this repo may seed from time or
  // std::random_device; this pins the fallback.)
  Rng defaulted;
  Rng explicit_seed(0x9e3779b97f4a7c15ULL);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(defaulted(), explicit_seed());
  Rng again;
  Rng once_more;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(again(), once_more());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(19);
  auto s = rng.sample_indices(50, 20);
  std::set<std::size_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 20u);
  for (auto i : set) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleAllIsPermutation) {
  Rng rng(23);
  auto s = rng.sample_indices(10, 10);
  std::set<std::size_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child());
  EXPECT_LT(same, 5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto copy = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(copy.begin(), copy.end());
  EXPECT_EQ(a, b);
}

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
}

TEST(Geometry, WithinRangeInclusiveBoundary) {
  EXPECT_TRUE(within_range({0, 0}, {3, 4}, 5.0));
  EXPECT_FALSE(within_range({0, 0}, {3, 4}, 4.999));
}

TEST(Geometry, RectContains) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_TRUE(r.contains({0, 10}));
  EXPECT_FALSE(r.contains({10.01, 5}));
  EXPECT_DOUBLE_EQ(r.width(), 10.0);
  EXPECT_EQ(r.center(), (Point{5, 5}));
}

TEST(Geometry, ClampIntoRect) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_EQ(clamp({-5, 20}, r), (Point{0, 10}));
  EXPECT_EQ(clamp({3, 4}, r), (Point{3, 4}));
}

TEST(Geometry, Centroid) {
  EXPECT_EQ(centroid({{0, 0}, {2, 0}, {1, 3}}), (Point{1, 1}));
}

TEST(Geometry, HamiltonianRangeBoundMatchesPaperConstant) {
  // Paper Prop 3.2: r >= 0.8 b (the exact constant is sqrt(2/pi) ~ 0.7979).
  EXPECT_NEAR(hamiltonian_min_range(1.0), 0.7979, 1e-3);
  EXPECT_NEAR(hamiltonian_min_range(100.0) / 100.0, std::sqrt(2.0 / M_PI),
              1e-12);
}

TEST(Geometry, HamiltonianBoundsAreInverses) {
  const double r = 100.0;
  EXPECT_NEAR(hamiltonian_min_range(hamiltonian_max_cell_side(r)), r, 1e-9);
}

TEST(Stats, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(Stats, MeanAndVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, Ci95MatchesHandComputation) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  // sd = sqrt(2.5), t(4) = 2.776, hw = 2.776 * sd / sqrt(5)
  EXPECT_NEAR(s.ci95_half_width(), 2.776 * std::sqrt(2.5) / std::sqrt(5.0),
              1e-9);
}

TEST(Stats, MergeEqualsSequential) {
  Rng rng(3);
  Summary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 10);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, TCriticalTable) {
  EXPECT_DOUBLE_EQ(t_critical_95(1), 12.706);
  EXPECT_DOUBLE_EQ(t_critical_95(9), 2.262);
  EXPECT_DOUBLE_EQ(t_critical_95(1000), 1.96);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.5);
}

TEST(Stats, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.add(1);
  a.add(3);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Stats, MeanOf) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(Strings, AllDigitsBelow) {
  EXPECT_TRUE(all_digits_below("0120", 3));
  EXPECT_FALSE(all_digits_below("0130", 3));
  EXPECT_FALSE(all_digits_below("01a0", 3));
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_debug("suppressed %d", 1);  // must not crash, must be filtered
  set_log_level(prev);
}

TEST(Stats, GiniCoefficientClosedForms) {
  // Perfect evenness and the all-mass-on-one extreme ((n-1)/n).
  EXPECT_DOUBLE_EQ(gini_coefficient({1, 1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({0, 0, 0, 1}), 0.75);
  // Hand-computed: sorted {1,2,3,4}, G = 2*(1+4+9+16)/(4*10) - 5/4.
  EXPECT_DOUBLE_EQ(gini_coefficient({4, 2, 1, 3}), 0.25);
  // Zeros count as unfairness: half the nodes idle, half equal.
  EXPECT_DOUBLE_EQ(gini_coefficient({0, 0, 2, 2}), 0.5);
  // Degenerate samples define 0, not NaN.
  EXPECT_DOUBLE_EQ(gini_coefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({5}), 0.0);
}

TEST(Stats, MaxMinRatioIgnoresIdleEntries) {
  EXPECT_DOUBLE_EQ(max_min_ratio({2, 4}), 2.0);
  // Idle (zero) elements carry no load to compare.
  EXPECT_DOUBLE_EQ(max_min_ratio({0, 3, 6}), 2.0);
  EXPECT_DOUBLE_EQ(max_min_ratio({5}), 1.0);
  EXPECT_DOUBLE_EQ(max_min_ratio({7, 7, 7}), 1.0);
  EXPECT_DOUBLE_EQ(max_min_ratio({}), 0.0);
  EXPECT_DOUBLE_EQ(max_min_ratio({0, 0}), 0.0);
}

TEST(StatsRegistry, CountersAccumulateAndSnapshotSorted) {
  StatsRegistry registry;
  registry.counter("b.second").add(2);
  registry.counter("a.first").add();
  registry.counter("b.second").add(3);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_FALSE(snap[0].is_histogram);
  EXPECT_EQ(snap[0].count, 1u);
  EXPECT_EQ(snap[1].name, "b.second");
  EXPECT_EQ(snap[1].count, 5u);
}

TEST(StatsRegistry, ReferencesStayStableAcrossInsertions) {
  StatsRegistry registry;
  Counter& c = registry.counter("hot.path");
  Histogram& h = registry.histogram("hot.hist");
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i)).add(1);
    registry.histogram("hfiller." + std::to_string(i)).record(1.0);
  }
  c.add(7);
  h.record(1.0);
  EXPECT_EQ(registry.counter("hot.path").value(), 7u);
  EXPECT_EQ(registry.histogram("hot.hist").count(), 1u);
}

TEST(Histogram, ExactMomentsAndApproximateQuantiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Geometric buckets: 4 per octave => ~19% relative resolution.
  EXPECT_NEAR(h.quantile(0.5), 50.0, 50.0 * 0.25);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 99.0 * 0.25);
  // Quantiles clamp to the exact extremes.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 100.0);
}

TEST(Histogram, EmptyAndEdgeSamples) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  // Zero / negative / huge samples clamp into edge buckets, never UB.
  h.record(0.0);
  h.record(-5.0);
  h.record(1e300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
}

TEST(StatsRegistry, HistogramSnapshotCarriesQuantiles) {
  StatsRegistry registry;
  Histogram& h = registry.histogram("delay");
  for (int i = 0; i < 1000; ++i) h.record(10.0);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_TRUE(snap[0].is_histogram);
  EXPECT_EQ(snap[0].count, 1000u);
  EXPECT_DOUBLE_EQ(snap[0].sum, 10000.0);
  EXPECT_NEAR(snap[0].p50, 10.0, 10.0 * 0.2);
  EXPECT_NEAR(snap[0].p99, 10.0, 10.0 * 0.2);
}

}  // namespace
}  // namespace refer
