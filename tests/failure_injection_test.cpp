// Failure-injection suite: random frame loss, node churn, combined
// stressors, and long-run soak with invariant auditing.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analysis/trace_report.hpp"
#include "harness/experiment.hpp"
#include "refer/validate.hpp"
#include "refer_fixture.hpp"
#include "sim/trace.hpp"

namespace refer {
namespace {

using kautz::Label;

// ---------------------------------------------------------- frame loss

class LossyChannelTest
    : public test::PaperScenario,
      public ::testing::WithParamInterface<double> {};

TEST_P(LossyChannelTest, ReferSurvivesRandomFrameLoss) {
  const double loss = GetParam();
  sim::ChannelConfig cfg;
  cfg.loss_probability = loss;
  sim::Channel lossy{sim, world, energy, Rng(3), cfg};
  add_quincunx_actuators();
  add_static_sensors(200);
  core::ReferSystem refer_sys(sim, world, lossy, energy, Rng(7));
  // Count routing events so the suite asserts the *mechanism* (fail-over
  // switches in the trace), not just the delivery outcome.
  sim::Tracer tracer;
  sim::CountingTraceSink sink;
  tracer.set_sink(std::ref(sink));
  lossy.set_tracer(&tracer);
  refer_sys.set_tracer(&tracer);
  bool ok = false;
  refer_sys.build([&](bool r) { ok = r; });
  sim.run_until(sim.now() + 30.0);
  ASSERT_TRUE(ok) << "embedding must survive " << loss * 100 << "% loss";

  Rng pick(5);
  int delivered = 0;
  const int total = 30;
  for (int i = 0; i < total; ++i) {
    const sim::NodeId src = refer_sys.random_active_sensor(pick);
    bool got = false;
    refer_sys.send_to_actuator(src, 1000,
                               [&](const core::DeliveryReport& r) {
                                 got = r.delivered;
                               });
    sim.run_until(sim.now() + 2.0);
    delivered += got;
  }
  // Fail-over retries across the d disjoint successors absorb most loss.
  const double floor = loss <= 0.02 ? 0.9 : (loss <= 0.05 ? 0.8 : 0.55);
  EXPECT_GE(delivered, static_cast<int>(total * floor))
      << delivered << "/" << total << " at loss " << loss;
  EXPECT_EQ(sink.count(sim::TraceEvent::kPacketSent),
            static_cast<std::uint64_t>(total));
  EXPECT_EQ(sink.count(sim::TraceEvent::kPacketDelivered),
            static_cast<std::uint64_t>(delivered));
  // Survival at >= 5% frame loss is only credible if the router actually
  // switched successors.  (No zero-fail-over claim at loss 0: a busy
  // relay can time out an ACK and legitimately fail over.)
  if (loss >= 0.05) {
    EXPECT_GT(sink.count(sim::TraceEvent::kFailover), 0u)
        << "deliveries survived " << loss * 100
        << "% loss without a single fail-over event";
  }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, LossyChannelTest,
                         ::testing::Values(0.0, 0.01, 0.02, 0.05, 0.10),
                         [](const auto& info) {
                           return "loss" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

// ----------------------------------------------------------- node churn

TEST(FailureInjection, ReferOutlivesHeavyChurn) {
  harness::Scenario sc;
  sc.warmup_s = 10;
  sc.measure_s = 60;
  sc.faulty_nodes = 30;       // 15% of the sensors down at any time
  sc.fault_period_s = 5;      // re-rolled twice per round
  sc.seed = 13;
  sc.trace_path = ::testing::TempDir() + "churn_trace.jsonl";
  const auto m = harness::run_once(harness::SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  EXPECT_GT(m.delivery_ratio, 0.7) << "heavy churn";
  EXPECT_GT(m.qos_delivered, 0u);

  // Surviving churn must show up as fail-over events in the trace, and
  // every one of them must pass the offline Theorem 3.8 audit.
  const analysis::TraceReport report =
      analysis::analyze_trace_file(sc.trace_path);
  EXPECT_GT(report.lines, 0u);
  EXPECT_GT(report.failovers, 0u)
      << "heavy churn produced no trace-level fail-over events";
  EXPECT_GT(report.failovers_checked, 0u);
  EXPECT_EQ(report.failover_mismatches, 0u);
  EXPECT_EQ(report.violations(), 0u);
  std::remove(sc.trace_path.c_str());
}

TEST(FailureInjection, BaselinesDegradeMoreThanReferUnderChurn) {
  harness::Scenario sc;
  sc.warmup_s = 10;
  sc.measure_s = 60;
  sc.faulty_nodes = 20;
  sc.fault_period_s = 5;
  sc.seed = 13;
  const auto refer_m = harness::run_once(harness::SystemKind::kRefer, sc);
  const auto datree_m = harness::run_once(harness::SystemKind::kDaTree, sc);
  ASSERT_TRUE(refer_m.build_ok);
  ASSERT_TRUE(datree_m.build_ok);
  EXPECT_GE(refer_m.qos_delivered, datree_m.qos_delivered);
}

// --------------------------------------------------------------- soak

class SoakTest : public test::PaperScenario {};

TEST_F(SoakTest, OverlayInvariantsHoldThroughLongMobileRun) {
  add_quincunx_actuators();
  add_mobile_sensors(200, 3.0);
  ASSERT_TRUE(build_refer());  // maintenance on

  Rng pick(3), fault(7);
  std::vector<sim::NodeId> down;
  int delivered = 0, sent = 0;
  // 10 simulated minutes of traffic + churn.
  for (int round = 0; round < 60; ++round) {
    // Rotate a faulty set of 6 sensors.
    for (sim::NodeId n : down) world.set_alive(n, true);
    down.clear();
    for (std::size_t idx : fault.sample_indices(sensors.size(), 6)) {
      world.set_alive(sensors[idx], false);
      down.push_back(sensors[idx]);
    }
    for (int i = 0; i < 3; ++i) {
      const sim::NodeId src = system->random_active_sensor(pick);
      if (src < 0 || !world.alive(src)) continue;
      ++sent;
      system->send_to_actuator(src, 1000,
                               [&](const core::DeliveryReport& r) {
                                 delivered += r.delivered;
                               });
    }
    sim.run_until(sim.now() + 10.0);
  }
  for (sim::NodeId n : down) world.set_alive(n, true);
  system->maintenance().sweep();
  system->maintenance().sweep();

  EXPECT_GT(sent, 100);
  EXPECT_GT(delivered * 10, sent * 7)
      << delivered << "/" << sent << " delivered over the soak";
  // The overlay must still satisfy every structural invariant.
  const auto violations =
      core::validate_topology(system->topology(), world);
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations, e.g. "
                                  << (violations.empty() ? ""
                                                         : violations.front());
  EXPECT_GT(system->maintenance().stats().replacements, 0u);
}

TEST_F(SoakTest, ValidatorCatchesPlantedCorruption) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer(core::ReferConfig{.run_maintenance = false}));
  auto& topo = system->topology();
  EXPECT_TRUE(core::validate_topology(topo, world).empty());

  // Plant: bind a sensor label to an actuator.
  topo.cell(0).bind(Label{0, 1, 0}, actuators[0]);
  const auto violations = core::validate_topology(topo, world);
  EXPECT_FALSE(violations.empty());
}

TEST_F(SoakTest, ValidatorFlagsDeadHolder) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ASSERT_TRUE(build_refer(core::ReferConfig{.run_maintenance = false}));
  const auto node = system->topology().cell(0).node_of(Label{1, 0, 1});
  ASSERT_TRUE(node.has_value());
  world.set_alive(*node, false);
  const auto violations = core::validate_topology(system->topology(), world);
  EXPECT_FALSE(violations.empty());
  // Maintenance repairs it; the audit passes again.
  system->maintenance().sweep();
  EXPECT_TRUE(core::validate_topology(system->topology(), world).empty());
}

}  // namespace
}  // namespace refer
