// Unit tests for kautz::Label (paper Definition 1 string mechanics).
#include <gtest/gtest.h>

#include <set>

#include "kautz/label.hpp"

namespace refer::kautz {
namespace {

TEST(Label, DefaultIsEmpty) {
  Label l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.length(), 0);
}

TEST(Label, InitializerListAndAccess) {
  const Label l{1, 2, 0};
  EXPECT_EQ(l.length(), 3);
  EXPECT_EQ(l[0], 1);
  EXPECT_EQ(l[1], 2);
  EXPECT_EQ(l[2], 0);
  EXPECT_EQ(l.first(), 1);
  EXPECT_EQ(l.last(), 0);
}

TEST(Label, ParseRoundTrip) {
  const auto l = Label::parse("0123");
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(l->to_string(), "0123");
  EXPECT_EQ(*l, (Label{0, 1, 2, 3}));
}

TEST(Label, ParseRejectsNonDigits) {
  EXPECT_FALSE(Label::parse("01a3").has_value());
  EXPECT_FALSE(Label::parse("0123456789012345678").has_value());
}

TEST(Label, ValidityRejectsAdjacentRepeats) {
  EXPECT_TRUE((Label{0, 1, 0}).valid());
  EXPECT_FALSE((Label{0, 0, 1}).valid());
  EXPECT_FALSE((Label{0, 1, 1}).valid());
  EXPECT_TRUE(Label{}.valid());
}

TEST(Label, ValidForAlphabet) {
  EXPECT_TRUE((Label{0, 1, 2}).valid_for_alphabet(3));
  EXPECT_FALSE((Label{0, 1, 3}).valid_for_alphabet(3));  // digit out of range
  EXPECT_FALSE((Label{0, 0, 1}).valid_for_alphabet(3));  // repeat
}

TEST(Label, ShiftAppendIsKautzArc) {
  const Label u{0, 1, 2, 3};
  EXPECT_EQ(u.shift_append(0), (Label{1, 2, 3, 0}));
  EXPECT_EQ(u.shift_append(4), (Label{1, 2, 3, 4}));
}

TEST(Label, ShiftPrependIsReverseArc) {
  const Label u{0, 1, 2, 3};
  EXPECT_EQ(u.shift_prepend(2), (Label{2, 0, 1, 2}));
}

TEST(Label, RotateLeft) {
  EXPECT_EQ((Label{0, 1, 2}).rotate_left(), (Label{1, 2, 0}));
  EXPECT_EQ((Label{2, 0, 1}).rotate_left(), (Label{0, 1, 2}));
}

TEST(Label, WithDigit) {
  EXPECT_EQ((Label{0, 1, 2}).with_digit(1, 3), (Label{0, 3, 2}));
}

TEST(Label, PrefixSuffix) {
  const Label l{0, 1, 2, 3};
  EXPECT_EQ(l.prefix(2), (Label{0, 1}));
  EXPECT_EQ(l.suffix(2), (Label{2, 3}));
  EXPECT_EQ(l.prefix(0), Label{});
  EXPECT_EQ(l.suffix(4), l);
}

TEST(Label, AppendGrows) {
  EXPECT_EQ(Label{}.append(2).append(0), (Label{2, 0}));
}

TEST(Label, ComparisonIsLexicographic) {
  EXPECT_LT((Label{0, 1, 2}), (Label{0, 2, 1}));
  EXPECT_LT((Label{0, 1}), (Label{0, 1, 0}));  // shorter prefix first
  EXPECT_EQ((Label{1, 2}), (Label{1, 2}));
}

TEST(Label, HashDistinguishesLengthAndContent) {
  EXPECT_NE((Label{0, 1}).hash(), (Label{0, 1, 0}).hash());
  EXPECT_NE((Label{0, 1}).hash(), (Label{1, 0}).hash());
  EXPECT_EQ((Label{0, 1}).hash(), (Label{0, 1}).hash());
}

TEST(Label, IndexRoundTripK23) {
  // K(2,3): 12 nodes.
  std::set<std::uint64_t> indices;
  const int d = 2, k = 3;
  for (std::uint64_t i = 0; i < 12; ++i) {
    const Label l = Label::from_index(i, d, k);
    EXPECT_TRUE(l.valid_for_alphabet(d + 1)) << l.to_string();
    EXPECT_EQ(l.to_index(d), i);
    indices.insert(l.to_index(d));
  }
  EXPECT_EQ(indices.size(), 12u);
}

TEST(Label, IndexRoundTripK44) {
  const int d = 4, k = 4;
  const std::uint64_t n = 5 * 4 * 4 * 4;  // (d+1) d^{k-1} = 320
  std::set<Label> labels;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Label l = Label::from_index(i, d, k);
    EXPECT_TRUE(l.valid_for_alphabet(d + 1));
    EXPECT_EQ(l.to_index(d), i);
    labels.insert(l);
  }
  EXPECT_EQ(labels.size(), n);
}

TEST(Overlap, PaperExamples) {
  // SIII-B: distance(120, 201) = 3 - L = 1, so L(120, 201) = 2.
  EXPECT_EQ(overlap(Label{1, 2, 0}, Label{2, 0, 1}), 2);
  EXPECT_EQ(kautz_distance(Label{1, 2, 0}, Label{2, 0, 1}), 1);
  // Fig 2(a): U = 0123, V = 2301 share "23": l = 2.
  EXPECT_EQ(overlap(Label{0, 1, 2, 3}, Label{2, 3, 0, 1}), 2);
  EXPECT_EQ(kautz_distance(Label{0, 1, 2, 3}, Label{2, 3, 0, 1}), 2);
}

TEST(Overlap, IdenticalLabels) {
  const Label l{0, 1, 2};
  EXPECT_EQ(overlap(l, l), 3);
  EXPECT_EQ(kautz_distance(l, l), 0);
}

TEST(Overlap, NoSharedAffix) {
  EXPECT_EQ(overlap(Label{0, 1, 0}, Label{1, 2, 1}), 0);  // u_k=0 != v_1=1
  EXPECT_EQ(overlap(Label{0, 1, 2}, Label{0, 1, 2}), 3);
  EXPECT_EQ(overlap(Label{0, 1, 2}, Label{1, 0, 1}), 0);
}

TEST(Overlap, SingleDigitMatch) {
  EXPECT_EQ(overlap(Label{0, 1, 2}, Label{2, 0, 2}), 1);
}

}  // namespace
}  // namespace refer::kautz
