// The closed-loop application layer (src/app): fault-schedule algebra,
// the keepalive state machine, and -- end to end through the harness --
// a scripted break/repair whose recovery time and availability are
// pinned to exact values, bit-identical serial/parallel aggregation,
// byte-identical traces, the planted spurious-handshake bug being
// caught, and trace_report understanding the app_* event taxonomy.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/trace_report.hpp"
#include "app/actuator_supervisor.hpp"
#include "app/control_loop.hpp"
#include "app/fault_schedule.hpp"
#include "common/rng.hpp"
#include "harness/experiment.hpp"
#include "verify/fuzzer.hpp"
#include "verify/invariants.hpp"

namespace refer::app {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// --------------------------------------------------------- fault schedule

TEST(FaultSchedule, ParsesAndFormatsRoundTrip) {
  std::vector<FaultWindow> windows;
  ASSERT_TRUE(parse_fault_schedule("0@30+12;2@5.5+0.25", windows));
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].actuator_index, 0);
  EXPECT_EQ(windows[0].start_rel_s, 30.0);
  EXPECT_EQ(windows[0].duration_s, 12.0);
  EXPECT_EQ(windows[0].end_rel_s(), 42.0);
  EXPECT_EQ(windows[1].actuator_index, 2);
  EXPECT_EQ(windows[1].start_rel_s, 5.5);
  EXPECT_EQ(windows[1].duration_s, 0.25);

  const std::string text = format_fault_schedule(windows);
  std::vector<FaultWindow> again;
  ASSERT_TRUE(parse_fault_schedule(text, again));
  EXPECT_EQ(format_fault_schedule(again), text);
}

TEST(FaultSchedule, EmptyStringMeansNoWindows) {
  std::vector<FaultWindow> windows;
  EXPECT_TRUE(parse_fault_schedule("", windows));
  EXPECT_TRUE(windows.empty());
  EXPECT_EQ(format_fault_schedule({}), "");
}

TEST(FaultSchedule, RejectsMalformedEntries) {
  for (const char* bad : {"0@30", "0+12", "@30+12", "0@30+12;;", "x@1+1",
                          "0@-1+5", "-1@3+5", "0@3+0", "0@3+-2", "0@3+5junk"}) {
    std::vector<FaultWindow> windows{{7, 7, 7}};
    EXPECT_FALSE(parse_fault_schedule(bad, windows)) << bad;
    // Failure leaves the output untouched.
    ASSERT_EQ(windows.size(), 1u) << bad;
    EXPECT_EQ(windows[0].actuator_index, 7) << bad;
  }
}

TEST(FaultSchedule, MergeCoalescesOverlapsPerActuator) {
  std::vector<FaultWindow> merged = merge_windows({
      {1, 10, 5},   // [10, 15) on actuator 1
      {0, 12, 4},   // [12, 16) on actuator 0 -- different actuator
      {1, 14, 6},   // overlaps the first -> [10, 20)
      {1, 20, 2},   // touches -> [10, 22)
      {1, 30, 1},   // disjoint
  });
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].actuator_index, 0);
  EXPECT_EQ(merged[1].actuator_index, 1);
  EXPECT_EQ(merged[1].start_rel_s, 10.0);
  EXPECT_EQ(merged[1].end_rel_s(), 22.0);
  EXPECT_EQ(merged[2].start_rel_s, 30.0);
}

TEST(FaultSchedule, BrokenTimeIntegratesExactly) {
  const std::vector<FaultWindow> windows =
      merge_windows({{0, 30, 12}, {1, 115, 20}});
  // Window [30, 42) sits fully inside [20, 120); [115, 135) is clipped.
  EXPECT_EQ(broken_time_in(windows, 20, 120), 12.0 + 5.0);
  EXPECT_EQ(broken_time_in(windows, 0, 20), 0.0);
  EXPECT_EQ(broken_time_in(windows, 35, 40), 5.0);
}

TEST(FaultSchedule, PoissonWindowsAreDeterministicAndWellFormed) {
  Rng a(42), b(42);
  const auto wa = poisson_fault_windows(5, 0.05, 10, 200, a);
  const auto wb = poisson_fault_windows(5, 0.05, 10, 200, b);
  EXPECT_EQ(format_fault_schedule(wa), format_fault_schedule(wb));
  EXPECT_FALSE(wa.empty()) << "0.05 Hz over 5x200 s should break something";
  int prev_actuator = 0;
  for (const FaultWindow& w : wa) {
    EXPECT_GE(w.actuator_index, prev_actuator) << "index order";
    prev_actuator = w.actuator_index;
    EXPECT_GE(w.start_rel_s, 0.0);
    EXPECT_LT(w.start_rel_s, 200.0);
    EXPECT_EQ(w.duration_s, 10.0);
  }
  Rng c(43);
  const auto wc = poisson_fault_windows(5, 0.05, 10, 200, c);
  EXPECT_NE(format_fault_schedule(wa), format_fault_schedule(wc));
}

// ----------------------------------------------------- supervisor machine

TEST(ActuatorSupervisor, WalksBreakAndRepairExactly) {
  // Fault [30, 42), keepalive every 5 s, miss limit 2: ticks 6/7/8 lapse,
  // down crossing at tick 7, clean tick 9 recovers -> 2 ticks = 10 s.
  ActuatorSupervisor sup(0, sim::NodeId{3}, {{0, 30, 12}});
  using Tick = ActuatorSupervisor::Tick;
  EXPECT_FALSE(sup.broken_at(29.999));
  EXPECT_TRUE(sup.broken_at(30.0));
  EXPECT_TRUE(sup.broken_at(41.999));
  EXPECT_FALSE(sup.broken_at(42.0));

  for (int tick = 0; tick <= 5; ++tick) {
    EXPECT_EQ(sup.on_keepalive(tick, tick * 5.0, 2), Tick::kAlive);
  }
  EXPECT_EQ(sup.on_keepalive(6, 30.0, 2), Tick::kMiss);
  EXPECT_EQ(sup.misses(), 1);
  EXPECT_FALSE(sup.believed_down());
  EXPECT_EQ(sup.on_keepalive(7, 35.0, 2), Tick::kWentDown);
  EXPECT_TRUE(sup.believed_down());
  EXPECT_EQ(sup.on_keepalive(8, 40.0, 2), Tick::kStillDown);
  EXPECT_EQ(sup.on_keepalive(9, 45.0, 2), Tick::kRecovered);
  EXPECT_FALSE(sup.believed_down());
  EXPECT_EQ(sup.last_recovery_ticks(), 2);
  EXPECT_EQ(sup.on_keepalive(10, 50.0, 2), Tick::kAlive);
}

// ------------------------------------------------- end-to-end pinned run

harness::Scenario scripted_break_scenario() {
  harness::Scenario sc;  // defaults: 5 actuators, warmup 20, measure 100
  sc.seed = 7;
  sc.app_enabled = true;
  sc.app_fault_schedule = "0@30+12";
  sc.app_keepalive_period_s = 5;
  sc.app_keepalive_miss_limit = 2;
  sc.app_break_rate_hz = 0;  // the scripted window is the only fault
  return sc;
}

TEST(ControlLoopEndToEnd, ScriptedBreakPinsRecoveryAndAvailability) {
  const harness::Scenario sc = scripted_break_scenario();
  const harness::RunMetrics m =
      harness::run_once(harness::SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);

  // The believed-down span is tick arithmetic (down at tick 7, clean at
  // tick 9, 5 s period), so the recovery time is EXACTLY 10 s; the
  // availability is the exact schedule integral 1 - 12/(5 * 100).
  EXPECT_EQ(m.app_recoveries, 1u);
  EXPECT_EQ(m.app_mean_recovery_s, 10.0);
  EXPECT_EQ(m.app_actuator_availability, 1.0 - 12.0 / 500.0);

  // The loop pipeline actually ran and its counters nest correctly.
  EXPECT_GT(m.app_loops_started, 0u);
  EXPECT_GE(m.app_loops_started, m.app_loops_completed);
  EXPECT_GE(m.app_loops_completed, m.app_loops_within_deadline);
  EXPECT_GT(m.app_loops_within_deadline, 0u);
  EXPECT_GE(m.app_loop_completion_ratio, 0.0);
  EXPECT_LE(m.app_loop_completion_ratio, 1.0);
  EXPECT_GT(m.app_loop_p95_ms, 0.0);
  EXPECT_GE(m.app_loop_p99_ms, m.app_loop_p95_ms);
  EXPECT_GE(m.app_loop_p95_ms, m.app_loop_p50_ms);
}

TEST(ControlLoopEndToEnd, AllFourSystemsCarryTheLoopTraffic) {
  for (const harness::SystemKind kind : harness::kAllSystems) {
    harness::Scenario sc = scripted_break_scenario();
    sc.measure_s = 60;
    const harness::RunMetrics m = harness::run_once(kind, sc);
    ASSERT_TRUE(m.build_ok) << harness::to_string(kind);
    EXPECT_GT(m.app_loops_started, 0u) << harness::to_string(kind);
    // The fault schedule is app-tier state, identical for every stack.
    EXPECT_EQ(m.app_actuator_availability, 1.0 - 12.0 / 300.0)
        << harness::to_string(kind);
    EXPECT_EQ(m.app_recoveries, 1u) << harness::to_string(kind);
  }
}

TEST(ControlLoopEndToEnd, DisabledAppLayerLeavesMetricsZero) {
  harness::Scenario sc = scripted_break_scenario();
  sc.app_enabled = false;
  sc.measure_s = 40;
  const harness::RunMetrics m =
      harness::run_once(harness::SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  EXPECT_EQ(m.app_loops_started, 0u);
  EXPECT_EQ(m.app_recoveries, 0u);
  EXPECT_EQ(m.app_actuator_availability, 0.0);
}

// ------------------------------------------------------------ determinism

void expect_summary_identical(const Summary& a, const Summary& b,
                              const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;  // exact: identical fold order
  EXPECT_EQ(a.ci95_half_width(), b.ci95_half_width()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

TEST(ControlLoopDeterminism, SerialAndParallelAggregatesAreBitIdentical) {
  harness::Scenario sc = scripted_break_scenario();
  sc.measure_s = 40;
  sc.app_break_rate_hz = 0.01;  // Poisson breaks on top of the script
  const harness::AggregateMetrics serial =
      harness::run_repeated(harness::SystemKind::kRefer, sc, 4, 1);
  const harness::AggregateMetrics parallel =
      harness::run_repeated(harness::SystemKind::kRefer, sc, 4, 4);
  EXPECT_EQ(serial.app_loop_completion_ratio.count(), 4u);
  expect_summary_identical(serial.app_loop_completion_ratio,
                           parallel.app_loop_completion_ratio,
                           "app_loop_completion_ratio");
  expect_summary_identical(serial.app_loop_p95_ms, parallel.app_loop_p95_ms,
                           "app_loop_p95_ms");
  expect_summary_identical(serial.app_actuator_availability,
                           parallel.app_actuator_availability,
                           "app_actuator_availability");
  expect_summary_identical(serial.app_mean_recovery_s,
                           parallel.app_mean_recovery_s,
                           "app_mean_recovery_s");
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ControlLoopDeterminism, TracesAreByteIdenticalAcrossRuns) {
  harness::Scenario sc = scripted_break_scenario();
  sc.measure_s = 40;
  sc.trace_path = temp_path("app_trace_a.jsonl");
  (void)harness::run_once(harness::SystemKind::kRefer, sc);
  const std::string a = slurp(sc.trace_path);
  std::remove(sc.trace_path.c_str());
  sc.trace_path = temp_path("app_trace_b.jsonl");
  (void)harness::run_once(harness::SystemKind::kRefer, sc);
  const std::string b = slurp(sc.trace_path);
  std::remove(sc.trace_path.c_str());
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(a == b) << "app-layer runs must replay bit-identically";
  EXPECT_NE(a.find("app_register"), std::string::npos);
  EXPECT_NE(a.find("app_actuator_down"), std::string::npos);
  EXPECT_NE(a.find("app_actuator_up"), std::string::npos);
}

// ------------------------------------------------ checker + trace_report

TEST(AppInvariants, CleanScriptedRunRaisesNothing) {
  const std::vector<verify::Violation> violations = verify::run_case(
      harness::SystemKind::kRefer, scripted_break_scenario(),
      temp_path("app_clean.jsonl"));
  EXPECT_TRUE(violations.empty())
      << violations.front().check << ": " << violations.front().detail;
  std::remove(temp_path("app_clean.jsonl").c_str());
}

TEST(AppInvariants, PlantedSpuriousHandshakeIsCaught) {
  harness::Scenario sc = scripted_break_scenario();
  sc.planted_bug = 2;  // spurious app_actuator_up without a down
  const std::vector<verify::Violation> violations = verify::run_case(
      harness::SystemKind::kRefer, sc, temp_path("app_plant.jsonl"));
  bool up_without_down = false;
  for (const verify::Violation& v : violations) {
    up_without_down |= v.check == "app.up_without_down";
  }
  EXPECT_TRUE(up_without_down)
      << "the spurious handshake escaped the checker ("
      << violations.size() << " violation(s) raised)";
  std::remove(temp_path("app_plant.jsonl").c_str());
}

TEST(AppTraceReport, KnowsTheAppEventTaxonomy) {
  harness::Scenario sc = scripted_break_scenario();
  sc.measure_s = 60;
  sc.trace_path = temp_path("app_report.jsonl");
  const harness::RunMetrics m =
      harness::run_once(harness::SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  const analysis::TraceReport report =
      analysis::analyze_trace_file(sc.trace_path, {});
  std::remove(sc.trace_path.c_str());
  EXPECT_EQ(report.parse_errors, 0u);
  EXPECT_EQ(report.schema_errors, 0u)
      << "app_* records must satisfy the trace schema";
  EXPECT_GT(report.events_by_type.count("app_register"), 0u);
  EXPECT_GT(report.events_by_type.at("app_register"), 0u);
  EXPECT_GT(report.events_by_type.count("app_actuate"), 0u);
  // Loop misses surface in the drop breakdown without being mistaken
  // for routing drops.
  const auto miss = report.events_by_type.find("app_loop_miss");
  if (miss != report.events_by_type.end()) {
    EXPECT_EQ(report.drops_by_reason.at("app_loop_miss"), miss->second);
  }
}

}  // namespace
}  // namespace refer::app
