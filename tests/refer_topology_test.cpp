// Unit tests for the Topology bookkeeping layer and its id types.
#include <gtest/gtest.h>

#include "refer/topology.hpp"

namespace refer::core {
namespace {

TEST(FullId, ToStringFormat) {
  EXPECT_EQ((FullId{5, Label{2, 0, 1}}).to_string(), "(5,201)");
  EXPECT_EQ((FullId{}).to_string(), "(-1,)");
}

TEST(FullId, Equality) {
  EXPECT_EQ((FullId{1, Label{0, 1, 2}}), (FullId{1, Label{0, 1, 2}}));
  EXPECT_FALSE((FullId{1, Label{0, 1, 2}}) == (FullId{2, Label{0, 1, 2}}));
  EXPECT_FALSE((FullId{1, Label{0, 1, 2}}) == (FullId{1, Label{2, 1, 0}}));
}

TEST(RoleNames, AreStable) {
  EXPECT_STREQ(to_string(Role::kActuator), "actuator");
  EXPECT_STREQ(to_string(Role::kActive), "active");
  EXPECT_STREQ(to_string(Role::kWait), "wait");
  EXPECT_STREQ(to_string(Role::kSleep), "sleep");
}

TEST(Topology, CellsGetDenseCids) {
  Topology topo;
  EXPECT_EQ(topo.add_cell({10, 10}), 0);
  EXPECT_EQ(topo.add_cell({20, 20}), 1);
  EXPECT_EQ(topo.cell_count(), 2u);
  EXPECT_EQ(topo.cell(1).center(), (Point{20, 20}));
}

TEST(Topology, DefaultRoleIsSleep) {
  Topology topo;
  EXPECT_EQ(topo.role(42), Role::kSleep);
  topo.set_role(42, Role::kWait);
  EXPECT_EQ(topo.role(42), Role::kWait);
}

TEST(Topology, SensorBindingRoundTrip) {
  Topology topo;
  EXPECT_FALSE(topo.sensor_binding(7).has_value());
  topo.set_sensor_binding(7, FullId{0, Label{0, 1, 0}});
  ASSERT_TRUE(topo.sensor_binding(7).has_value());
  EXPECT_EQ(topo.sensor_binding(7)->kid, (Label{0, 1, 0}));
  topo.clear_sensor_binding(7);
  EXPECT_FALSE(topo.sensor_binding(7).has_value());
}

TEST(Topology, ActuatorCellsAccumulate) {
  Topology topo;
  EXPECT_TRUE(topo.actuator_cells(3).empty());
  topo.add_actuator_cell(3, 0);
  topo.add_actuator_cell(3, 2);
  EXPECT_EQ(topo.actuator_cells(3), (std::vector<Cid>{0, 2}));
  EXPECT_FALSE(topo.actuator_label(3).has_value());
  topo.set_actuator_label(3, Label{1, 2, 0});
  EXPECT_EQ(topo.actuator_label(3), std::optional<Label>(Label{1, 2, 0}));
}

TEST(Topology, CanPointNormalisesIntoUnitSquare) {
  const Rect area{{0, 0}, {500, 500}};
  const Point p = Topology::can_point({250, 125}, area);
  EXPECT_DOUBLE_EQ(p.x, 0.5);
  EXPECT_DOUBLE_EQ(p.y, 0.25);
  // Clamped strictly inside for CAN membership.
  const Point edge = Topology::can_point({500, 500}, area);
  EXPECT_LT(edge.x, 1.0);
  EXPECT_LT(edge.y, 1.0);
  const Point outside = Topology::can_point({-10, 600}, area);
  EXPECT_GE(outside.x, 0.0);
  EXPECT_LT(outside.y, 1.0);
}

TEST(Topology, DegreeAndDiameterDefaults) {
  Topology topo;
  EXPECT_EQ(topo.degree(), 2);
  EXPECT_EQ(topo.diameter(), 3);
  topo.set_degree(3);
  topo.set_diameter(4);
  EXPECT_EQ(topo.degree(), 3);
  EXPECT_EQ(topo.diameter(), 4);
}

TEST(Topology, ActiveSensorsListsOnlyActives) {
  Topology topo;
  topo.set_role(1, Role::kActive);
  topo.set_role(2, Role::kWait);
  topo.set_role(3, Role::kActive);
  topo.set_role(4, Role::kActuator);
  auto active = topo.active_sensors();
  std::sort(active.begin(), active.end());
  EXPECT_EQ(active, (std::vector<NodeId>{1, 3}));
}

}  // namespace
}  // namespace refer::core
