// Tests for the general-K(d,k) oracle embedding and the full stack on
// non-default Kautz parameters (paper SV future work).
#include <gtest/gtest.h>

#include <set>

#include "kautz/graph.hpp"
#include "refer/validate.hpp"
#include "refer_fixture.hpp"

namespace refer::core {
namespace {

using test::PaperScenario;

class OracleTest : public PaperScenario {
 protected:
  bool build_oracle(int d, int k, int sensors_n = 200) {
    add_quincunx_actuators();
    add_static_sensors(sensors_n);
    ReferConfig config;
    config.use_oracle_embedding = true;
    config.oracle.d = d;
    config.oracle.k = k;
    config.run_maintenance = false;
    return build_refer(config);
  }
};

TEST_F(OracleTest, EmbedsK23) {
  ASSERT_TRUE(build_oracle(2, 3));
  const auto& topo = system->topology();
  EXPECT_EQ(topo.cell_count(), 4u);
  EXPECT_EQ(topo.degree(), 2);
  EXPECT_EQ(topo.diameter(), 3);
  for (Cid cid = 0; cid < 4; ++cid) {
    EXPECT_TRUE(topo.cell(cid).complete(2, 3));
    EXPECT_EQ(topo.cell(cid).corner_labels().size(), 3u);
  }
}

TEST_F(OracleTest, EmbedsK24) {
  // K(2,4): 24 nodes per cell -> 21 sensor labels x 4 cells = 84 sensors.
  ASSERT_TRUE(build_oracle(2, 4));
  const auto& topo = system->topology();
  EXPECT_EQ(topo.diameter(), 4);
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    EXPECT_TRUE(topo.cell(cid).complete(2, 4)) << "cell " << cid;
  }
  EXPECT_EQ(topo.active_sensors().size(), topo.cell_count() * (24 - 3));
}

TEST_F(OracleTest, EmbedsK33WithEnoughSensors) {
  // K(3,3): 36 nodes per cell -> 33 x 4 = 132 sensors.
  ASSERT_TRUE(build_oracle(3, 3, 250));
  const auto& topo = system->topology();
  EXPECT_EQ(topo.degree(), 3);
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    EXPECT_TRUE(topo.cell(cid).complete(3, 3));
  }
}

TEST_F(OracleTest, FailsWhenTooFewSensors) {
  // K(4,3): 80 nodes per cell -> 77 x 4 = 308 sensors needed, only 100.
  EXPECT_FALSE(build_oracle(4, 3, 100));
}

TEST_F(OracleTest, PartialCellsRouteWithDegradedRedundancy) {
  // Sparse mode: 100 sensors for a K(4,3) deployment that needs 308.
  // Cells stay partial; the router skips unbound successors, so traffic
  // still flows, just with fewer disjoint alternatives.
  add_quincunx_actuators();
  add_static_sensors(100);
  ReferConfig config;
  config.use_oracle_embedding = true;
  config.oracle.d = 4;
  config.oracle.k = 3;
  config.oracle.allow_partial = true;
  config.run_maintenance = false;
  ASSERT_TRUE(build_refer(config));
  const auto& topo = system->topology();
  // At least one cell must be partial.
  bool any_partial = false;
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    if (!topo.cell(cid).complete(4, 3)) any_partial = true;
  }
  EXPECT_TRUE(any_partial);
  // The invariant audit passes with completeness waived.
  const auto violations = validate_topology(
      topo, world, ValidationOptions{.require_complete_cells = false});
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
  // Traffic still flows.
  Rng rng(5);
  int delivered = 0;
  const int total = 20;
  for (int i = 0; i < total; ++i) {
    const sim::NodeId src = system->random_active_sensor(rng);
    bool ok = false;
    system->send_to_actuator(src, 1000,
                             [&](const DeliveryReport& r) { ok = r.delivered; });
    sim.run_until(sim.now() + 3.0);
    delivered += ok;
  }
  // With 2/3 of the overlay labels unbound this is a severely degraded
  // regime; the point is graceful degradation (no crash, no hang, a
  // majority still delivered), not full service.
  EXPECT_GE(delivered, total / 2)
      << delivered << "/" << total << " on partial cells";
}

TEST_F(OracleTest, BindingsAreABijection) {
  ASSERT_TRUE(build_oracle(2, 4));
  const auto& topo = system->topology();
  std::set<sim::NodeId> seen;
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    for (sim::NodeId n : topo.cell(cid).nodes()) {
      if (world.is_actuator(n)) continue;
      EXPECT_TRUE(seen.insert(n).second) << "sensor " << n << " double-bound";
    }
  }
}

TEST_F(OracleTest, HamiltonianNeighborsArePhysicallyClose) {
  // The whole point of the ring layout: cycle-consecutive labels must be
  // near each other, so most ring arcs are directly connected.
  ASSERT_TRUE(build_oracle(2, 3));
  const auto& topo = system->topology();
  const kautz::Graph g(2, 3);
  const auto cycle = g.hamiltonian_cycle();
  int ring_arcs = 0, direct = 0;
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    const Cell& cell = topo.cell(cid);
    for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
      const auto a = cell.node_of(cycle[i]);
      const auto b = cell.node_of(cycle[i + 1]);
      if (!a || !b) continue;
      ++ring_arcs;
      direct += (world.can_reach(*a, *b) || world.can_reach(*b, *a));
    }
  }
  EXPECT_GT(ring_arcs, 0);
  EXPECT_GT(direct * 10, ring_arcs * 6)
      << direct << "/" << ring_arcs << " ring arcs direct";
}

TEST_F(OracleTest, RoutingWorksOnK24Cells) {
  ASSERT_TRUE(build_oracle(2, 4));
  Rng rng(5);
  int delivered = 0;
  for (int i = 0; i < 15; ++i) {
    const sim::NodeId src = system->random_active_sensor(rng);
    ASSERT_GE(src, 0);
    bool called = false;
    DeliveryReport report;
    system->send_to_actuator(src, 1000, [&](const DeliveryReport& r) {
      called = true;
      report = r;
    });
    sim.run_until(sim.now() + 5.0);
    ASSERT_TRUE(called);
    delivered += report.delivered;
    if (report.delivered) {
      EXPECT_LE(report.kautz_hops, 4) << "K(2,4) diameter bound";
    }
  }
  EXPECT_GE(delivered, 12);
}

TEST_F(OracleTest, RoutingWorksOnK33Cells) {
  ASSERT_TRUE(build_oracle(3, 3, 250));
  Rng rng(5);
  int delivered = 0;
  for (int i = 0; i < 15; ++i) {
    const sim::NodeId src = system->random_active_sensor(rng);
    bool called = false;
    DeliveryReport report;
    system->send_to_actuator(src, 1000, [&](const DeliveryReport& r) {
      called = true;
      report = r;
    });
    sim.run_until(sim.now() + 5.0);
    ASSERT_TRUE(called);
    delivered += report.delivered;
  }
  EXPECT_GE(delivered, 12);
}

TEST_F(OracleTest, MaintenanceRepairsOracleCells) {
  add_quincunx_actuators();
  add_static_sensors(200);
  ReferConfig config;
  config.use_oracle_embedding = true;
  config.oracle.d = 2;
  config.oracle.k = 4;
  config.run_maintenance = false;
  ASSERT_TRUE(build_refer(config));
  auto& topo = system->topology();
  Cell& cell = topo.cell(0);
  // Kill a sensor-held label and sweep.
  sim::NodeId victim = -1;
  Label victim_label;
  for (const Label& l : cell.labels()) {
    const auto n = cell.node_of(l);
    if (n && !world.is_actuator(*n)) {
      victim = *n;
      victim_label = l;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  world.set_alive(victim, false);
  system->maintenance().sweep();
  const auto replacement = cell.node_of(victim_label);
  ASSERT_TRUE(replacement.has_value());
  EXPECT_NE(*replacement, victim);
  EXPECT_TRUE(world.alive(*replacement));
}

}  // namespace
}  // namespace refer::core
