// The spatial index's one non-negotiable contract: grid-indexed queries
// return *exactly* what the linear scan returns -- same ids, same order,
// same ties -- on mobile worlds at arbitrary times.  Plus the route-cache
// equivalence and the end-to-end determinism proof (a full scenario run
// with the index on vs. off produces identical RunMetrics).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/experiment.hpp"
#include "kautz/graph.hpp"
#include "kautz/route_cache.hpp"
#include "kautz/routing.hpp"
#include "sim/simulator.hpp"
#include "sim/spatial_index.hpp"
#include "sim/world.hpp"

namespace refer {
namespace {

using sim::NodeId;

/// Builds a randomized world: random area, a handful of static actuators,
/// a mix of mobile and static sensors with varying ranges.
struct RandomWorld {
  RandomWorld(std::uint64_t seed, sim::Simulator& sim) : rng(seed) {
    const double side = rng.uniform(300, 1500);
    world = std::make_unique<sim::World>(
        Rect{{0, 0}, {side, side}}, sim);
    const int n_act = 2 + static_cast<int>(rng.below(5));
    for (int i = 0; i < n_act; ++i) {
      world->add_actuator({rng.uniform(0, side), rng.uniform(0, side)},
                          rng.uniform(150, 300));
    }
    const int n_sensors = 30 + static_cast<int>(rng.below(120));
    for (int i = 0; i < n_sensors; ++i) {
      const Point p{rng.uniform(0, side), rng.uniform(0, side)};
      const double range = rng.uniform(60, 140);
      if (rng.chance(0.7)) {
        world->add_sensor(p, range, 0, rng.uniform(0.5, 8), rng.split());
      } else {
        world->add_static_sensor(p, range);
      }
    }
    // A few dead nodes exercise the liveness filter.
    for (int i = 0; i < 3; ++i) {
      world->set_alive(
          static_cast<NodeId>(rng.below(world->size())), false);
    }
  }

  Rng rng;
  std::unique_ptr<sim::World> world;
};

TEST(SpatialIndexProperty, GridMatchesLinearScanOnRandomMobileWorlds) {
  int samples = 0;
  for (std::uint64_t seed = 1; samples < 120; ++seed) {
    sim::Simulator sim;
    RandomWorld rw(seed * 2654435761u + 11, sim);
    sim::World& world = *rw.world;
    // Advance to a few monotonically increasing random times; query at
    // each with both paths and compare exactly.
    double t = 0;
    for (int step = 0; step < 3; ++step, ++samples) {
      t += rw.rng.uniform(0, 40);
      sim.run_until(t);
      for (int q = 0; q < 8; ++q) {
        const auto from = static_cast<NodeId>(rw.rng.below(world.size()));
        const double range_override =
            rw.rng.chance(0.3) ? rw.rng.uniform(30, 400) : 0;

        world.set_spatial_index_enabled(true);
        const std::vector<NodeId> grid =
            world.reachable_from(from, range_override);
        const NodeId grid_act = world.closest_actuator(from);

        world.set_spatial_index_enabled(false);
        const std::vector<NodeId> linear =
            world.reachable_from(from, range_override);
        const NodeId linear_act = world.closest_actuator(from);

        ASSERT_EQ(grid, linear)
            << "seed=" << seed << " t=" << t << " from=" << from
            << " override=" << range_override;
        ASSERT_EQ(grid_act, linear_act)
            << "seed=" << seed << " t=" << t << " from=" << from;
      }
    }
  }
}

TEST(SpatialIndexProperty, SurvivesLivenessFlipsAndLateNodeAdds) {
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {600, 600}}, sim);
  Rng rng(77);
  world.add_actuator({300, 300}, 250);
  for (int i = 0; i < 60; ++i) {
    world.add_sensor({rng.uniform(0, 600), rng.uniform(0, 600)}, 100, 0, 4,
                     rng.split());
  }
  sim.run_until(5);
  (void)world.reachable_from(0);  // force an index build
  // Nodes added after the build must show up in subsequent queries.
  const NodeId late = world.add_static_sensor({310, 310}, 100);
  world.set_alive(3, false);
  sim.run_until(9);
  for (NodeId from = 0; static_cast<std::size_t>(from) < world.size();
       ++from) {
    world.set_spatial_index_enabled(true);
    const auto grid = world.reachable_from(from);
    world.set_spatial_index_enabled(false);
    const auto linear = world.reachable_from(from);
    ASSERT_EQ(grid, linear) << "from=" << from;
  }
  world.set_spatial_index_enabled(true);
  EXPECT_EQ(world.closest_actuator(late), 0);
  EXPECT_GE(world.index_stats().rebuilds, 1u);
}

TEST(SpatialIndexEdgeCases, NodesExactlyOnCellBoundariesMatchLinearScan) {
  // With max range 100 on a 600 m side the grid cell is 25 m, so every
  // multiple of 25 sits exactly on a cell boundary; (600, 600) sits on
  // the outer area boundary and must clamp into the last cell, not read
  // past the grid.  Distances of exactly one range (100 m) also pin the
  // within_range boundary.
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {600, 600}}, sim);
  world.add_actuator({300, 300}, 100);
  for (double x = 0; x <= 600; x += 75) {
    for (double y = 0; y <= 600; y += 75) {
      world.add_static_sensor({x, y}, 100);
    }
  }
  for (NodeId from = 0; static_cast<std::size_t>(from) < world.size();
       ++from) {
    world.set_spatial_index_enabled(true);
    const auto grid = world.reachable_from(from);
    const NodeId grid_act = world.closest_actuator(from);
    world.set_spatial_index_enabled(false);
    const auto linear = world.reachable_from(from);
    const NodeId linear_act = world.closest_actuator(from);
    ASSERT_EQ(grid, linear) << "from=" << from;
    ASSERT_EQ(grid_act, linear_act) << "from=" << from;
    // Neighbours at exactly 100 m (one range) are in range: the grid on
    // a 75 m pitch guarantees none, but the axis-aligned 75 m and
    // diagonal ~106 m neighbours pin both sides of the boundary.
    EXPECT_FALSE(grid.empty()) << "from=" << from;
  }
}

TEST(SpatialIndexEdgeCases, ExactRangeDistanceIsInRangeOnBothPaths) {
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {400, 400}}, sim);
  const NodeId a = world.add_static_sensor({100, 100}, 100);
  const NodeId b = world.add_static_sensor({200, 100}, 100);  // d == range
  const NodeId c = world.add_static_sensor({201, 100}, 100);  // d > range
  world.set_spatial_index_enabled(true);
  EXPECT_EQ(world.reachable_from(a), (std::vector<NodeId>{b}));
  world.set_spatial_index_enabled(false);
  EXPECT_EQ(world.reachable_from(a), (std::vector<NodeId>{b}));
  EXPECT_TRUE(world.can_reach(a, b));
  EXPECT_FALSE(world.can_reach(a, c));
}

TEST(SpatialIndexEdgeCases, ZeroRangeWorldFallsBackToLinearScan) {
  // All ranges zero: no usable index can exist.  Queries must fall back
  // to the linear scan and return nothing -- except for co-located
  // nodes, which sit at distance exactly 0 <= range 0.
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {100, 100}}, sim);
  const NodeId a = world.add_static_sensor({10, 10}, 0);
  const NodeId b = world.add_static_sensor({10, 10}, 0);  // co-located
  world.add_static_sensor({20, 10}, 0);
  world.set_spatial_index_enabled(true);
  EXPECT_EQ(world.reachable_from(a), (std::vector<NodeId>{b}));
  EXPECT_EQ(world.closest_actuator(a), -1);
  EXPECT_EQ(world.index_stats().rebuilds, 0u)
      << "a zero-range world must not build a grid";
  // A positive override on the same world still works (and, with every
  // binned range zero, still goes through the linear path).
  EXPECT_EQ(world.reachable_from(a, 50.0).size(), 2u);
}

TEST(SpatialIndexEdgeCases, ZeroRangeNodeAmongRangedNodesSeesOnlyCoLocated) {
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {100, 100}}, sim);
  const NodeId mute = world.add_static_sensor({50, 50}, 0);
  const NodeId twin = world.add_static_sensor({50, 50}, 80);
  world.add_static_sensor({60, 50}, 80);
  for (const bool indexed : {true, false}) {
    world.set_spatial_index_enabled(indexed);
    // Range 0 reaches exactly the co-located node on either path.
    EXPECT_EQ(world.reachable_from(mute), (std::vector<NodeId>{twin}))
        << "indexed=" << indexed;
    // And the ranged nodes still see the zero-range node.
    EXPECT_EQ(world.reachable_from(twin).size(), 2u) << "indexed=" << indexed;
  }
}

TEST(SpatialIndexEdgeCases, SizeListenerSeesEveryLateAddUntilRemoved) {
  // Channel sizes its per-node medium tables through this listener; a
  // world that grows after registration must keep notifying, and a
  // removed listener must never fire again (dangling-capture UB
  // otherwise).
  sim::Simulator sim;
  sim::World world(Rect{{0, 0}, {100, 100}}, sim);
  world.add_static_sensor({10, 10}, 50);
  std::vector<std::size_t> sizes;
  const int token =
      world.add_size_listener([&](std::size_t n) { sizes.push_back(n); });
  ASSERT_EQ(sizes, (std::vector<std::size_t>{1}))
      << "registration reports the current size immediately";
  world.add_static_sensor({20, 10}, 50);
  world.add_actuator({30, 10}, 80);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 3}));
  world.remove_size_listener(token);
  world.add_static_sensor({40, 10}, 50);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 3}))
      << "removed listener fired on a late add";
  // Removing an unknown (or already-removed) token is a harmless no-op.
  world.remove_size_listener(token);
  world.remove_size_listener(9999);
}

#ifndef NDEBUG
TEST(SpatialIndexEdgeCases, UpdateOutsideTheNodeUniverseAsserts) {
  // start_build fixes the id universe; binning an id past it is a
  // contract violation that must assert (not silently corrupt slots_).
  // World can never trigger this (add_node marks the index dirty, so the
  // next query rebuilds with the new universe) -- this pins the guard
  // that keeps that true.
  sim::SpatialIndex index;
  index.start_build(Rect{{0, 0}, {100, 100}}, 10, 0, 0, 2);
  EXPECT_DEATH(index.update(5, {1, 1}, 0, 0), "slots_");
}
#endif

TEST(RouteCache, AgreesWithDisjointRoutesAndCountsHits) {
  kautz::RouteCache cache(64);
  std::vector<kautz::Route> out;
  for (const auto [d, k] : {std::pair{2, 3}, {3, 3}, {4, 4}}) {
    const kautz::Graph g(d, k);
    const auto n = g.node_count();
    for (std::uint64_t i = 0; i < 200; ++i) {
      const kautz::Label u =
          kautz::Label::from_index((i * 131) % n, d, k);
      kautz::Label v =
          kautz::Label::from_index((i * 7919 + 13) % n, d, k);
      if (v == u) v = kautz::Label::from_index((i * 7919 + 14) % n, d, k);
      cache.lookup(d, u, v, out);
      const auto expected = kautz::disjoint_routes(d, u, v);
      ASSERT_EQ(out.size(), expected.size());
      for (std::size_t r = 0; r < out.size(); ++r) {
        EXPECT_EQ(out[r].successor, expected[r].successor);
        EXPECT_EQ(out[r].path_class, expected[r].path_class);
        EXPECT_EQ(out[r].nominal_length, expected[r].nominal_length);
        EXPECT_EQ(out[r].forced_second_hop, expected[r].forced_second_hop);
      }
      // A repeat of the same pair must hit.
      const std::uint64_t hits_before = cache.hits();
      cache.lookup(d, u, v, out);
      EXPECT_EQ(cache.hits(), hits_before + 1);
    }
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

/// Strips the world.grid.* and world.neighbor_cache.* health counters --
/// the only observability entries allowed to differ between runs with
/// different index/cache toggles.
std::vector<StatsRegistry::Entry> without_grid_counters(
    std::vector<StatsRegistry::Entry> entries) {
  std::erase_if(entries, [](const StatsRegistry::Entry& e) {
    return e.name.rfind("world.grid.", 0) == 0 ||
           e.name.rfind("world.neighbor_cache.", 0) == 0;
  });
  return entries;
}

TEST(SpatialIndexDeterminism, Fig04ScenarioIdenticalWithIndexOnAndOff) {
  harness::Scenario sc;
  sc.n_sensors = 120;
  sc.warmup_s = 5;
  sc.measure_s = 25;
  sc.faulty_nodes = 5;  // liveness churn on top of mobility
  sc.seed = 9;

  for (const harness::SystemKind kind :
       {harness::SystemKind::kRefer, harness::SystemKind::kKautzOverlay}) {
    sc.spatial_index = true;
    const harness::RunMetrics on = harness::run_once(kind, sc);
    sc.spatial_index = false;
    const harness::RunMetrics off = harness::run_once(kind, sc);

    ASSERT_TRUE(on.build_ok);
    ASSERT_TRUE(off.build_ok);
    EXPECT_EQ(on.packets_sent, off.packets_sent);
    EXPECT_EQ(on.packets_delivered, off.packets_delivered);
    EXPECT_EQ(on.qos_delivered, off.qos_delivered);
    EXPECT_EQ(on.qos_throughput_kbps, off.qos_throughput_kbps);
    EXPECT_EQ(on.avg_delay_ms, off.avg_delay_ms);
    EXPECT_EQ(on.delay_p50_ms, off.delay_p50_ms);
    EXPECT_EQ(on.delay_p95_ms, off.delay_p95_ms);
    EXPECT_EQ(on.delay_p99_ms, off.delay_p99_ms);
    EXPECT_EQ(on.delivery_ratio, off.delivery_ratio);
    EXPECT_EQ(on.comm_energy_j, off.comm_energy_j);
    EXPECT_EQ(on.construction_energy_j, off.construction_energy_j);
    EXPECT_EQ(on.total_energy_j, off.total_energy_j);
    EXPECT_EQ(on.qos_timeline_kbps, off.qos_timeline_kbps);

    const auto obs_on = without_grid_counters(on.observability);
    const auto obs_off = without_grid_counters(off.observability);
    ASSERT_EQ(obs_on.size(), obs_off.size());
    for (std::size_t i = 0; i < obs_on.size(); ++i) {
      EXPECT_EQ(obs_on[i].name, obs_off[i].name);
      EXPECT_EQ(obs_on[i].count, obs_off[i].count) << obs_on[i].name;
      EXPECT_EQ(obs_on[i].sum, obs_off[i].sum) << obs_on[i].name;
      EXPECT_EQ(obs_on[i].p50, obs_off[i].p50) << obs_on[i].name;
      EXPECT_EQ(obs_on[i].p99, obs_off[i].p99) << obs_on[i].name;
    }
  }
}

}  // namespace
}  // namespace refer
