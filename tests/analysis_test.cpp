// Tests for the offline trace analyzer: the flat JSONL parser, the
// schema / chain / Theorem 3.8 audits on synthetic traces, and an
// end-to-end run over a real REFER trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "analysis/json_doc.hpp"
#include "analysis/jsonl.hpp"
#include "analysis/timeline_report.hpp"
#include "analysis/trace_report.hpp"
#include "harness/experiment.hpp"
#include "refer/system.hpp"
#include "runner/results_writer.hpp"
#include "sim/trace.hpp"

namespace refer::analysis {
namespace {

TEST(JsonlParser, ParsesFlatObjects) {
  const auto obj = parse_flat_object(
      R"({"t":1.25,"event":"hop_forward","from":-1,"ok":true,"x":null,)"
      R"("at":"a\"b\\c\n"})");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("t").kind, JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(obj->at("t").number, 1.25);
  EXPECT_EQ(obj->at("event").str, "hop_forward");
  EXPECT_DOUBLE_EQ(obj->at("from").number, -1.0);
  EXPECT_EQ(obj->at("ok").kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(obj->at("ok").boolean);
  EXPECT_EQ(obj->at("x").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(obj->at("at").str, "a\"b\\c\n");
}

TEST(JsonlParser, ParsesUnicodeEscapesAndEmptyObject) {
  const auto obj = parse_flat_object(R"({"s":"x\u0001y"})");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("s").str, std::string("x\x01y"));
  const auto empty = parse_flat_object("  { }  ");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(JsonlParser, RejectsNestedAndMalformed) {
  EXPECT_FALSE(parse_flat_object(R"({"a":{"b":1}})").has_value());
  EXPECT_FALSE(parse_flat_object(R"({"a":[1,2]})").has_value());
  EXPECT_FALSE(parse_flat_object(R"({"a":1)").has_value());
  EXPECT_FALSE(parse_flat_object(R"({"a" 1})").has_value());
  EXPECT_FALSE(parse_flat_object(R"({"a":1} trailing)").has_value());
  EXPECT_FALSE(parse_flat_object("not json").has_value());
  EXPECT_FALSE(parse_flat_object(R"({"a":tru})").has_value());
  EXPECT_FALSE(parse_flat_object(R"({"a":"unterminated)").has_value());
}

// --- Synthetic-trace audits.  K(2,3) facts used below: from at=012 to
// dst=201 (overlap l=1) Theorem 3.8 yields successors 120 (shortest,
// nominal 2) and 121 (conflict, nominal 5).

std::string base_packet(const char* rest) {
  return std::string(
             R"({"t":0.0,"event":"packet_sent","from":1,"to":-1,)"
             R"("bytes":100,"bucket":0,"packet":0,"hop":0})") +
         "\n" + rest;
}

TEST(TraceReport, AcceptsAValidTheorem38Failover) {
  std::istringstream in(base_packet(
      R"({"t":0.1,"event":"failover","from":1,"to":-1,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":0,"alt":1,"nominal_len":5,)"
      R"("at":"012","dst":"201","next":"121"})"
      "\n"));
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.degree, 2);
  EXPECT_EQ(r.failovers, 1u);
  EXPECT_EQ(r.failovers_checked, 1u);
  EXPECT_EQ(r.failover_mismatches, 0u);
  EXPECT_EQ(r.violations(), 0u);
}

TEST(TraceReport, DetectsForgedNominalLength) {
  std::istringstream in(base_packet(
      R"({"t":0.1,"event":"failover","from":1,"to":-1,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":0,"alt":1,"nominal_len":9,)"
      R"("at":"012","dst":"201","next":"121"})"
      "\n"));
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.failovers_checked, 1u);
  EXPECT_EQ(r.failover_mismatches, 1u);
  EXPECT_GT(r.violations(), 0u);
}

TEST(TraceReport, DetectsNonDisjointRouteSuccessor) {
  // 210 is not a successor of 012 at all.
  std::istringstream in(base_packet(
      R"({"t":0.1,"event":"failover","from":1,"to":-1,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":0,"alt":1,"nominal_len":2,)"
      R"("at":"012","dst":"201","next":"210"})"
      "\n"));
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.failover_mismatches, 1u);
}

TEST(TraceReport, DetectsPathLongerThanNominal) {
  // Valid fail-over to the shortest route (nominal 2), but the packet
  // then wanders for 4 hops before reaching dst: observed > nominal.
  std::istringstream in(base_packet(
      R"({"t":0.1,"event":"failover","from":1,"to":-1,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":0,"alt":1,"nominal_len":2,)"
      R"("at":"012","dst":"201","next":"120"})"
      "\n"
      R"({"t":0.2,"event":"hop_forward","from":1,"to":2,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":1,"at":"012","dst":"201","next":"120"})"
      "\n"
      R"({"t":0.3,"event":"hop_forward","from":2,"to":1,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":2,"at":"120","dst":"201","next":"201"})"
      "\n"));
  // First check the clean 2-hop completion passes...
  const TraceReport clean = analyze_trace(in);
  EXPECT_EQ(clean.failover_mismatches, 0u);
  EXPECT_EQ(clean.path_length_violations, 0u);

  std::istringstream wander(base_packet(
      R"({"t":0.1,"event":"failover","from":1,"to":-1,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":0,"alt":1,"nominal_len":2,)"
      R"("at":"012","dst":"201","next":"120"})"
      "\n"
      R"({"t":0.2,"event":"hop_forward","from":1,"to":2,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":1,"at":"012","dst":"201","next":"120"})"
      "\n"
      R"({"t":0.3,"event":"hop_forward","from":2,"to":1,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":2,"at":"120","dst":"201","next":"012"})"
      "\n"
      R"({"t":0.4,"event":"hop_forward","from":1,"to":2,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":3,"at":"012","dst":"201","next":"120"})"
      "\n"
      R"({"t":0.5,"event":"hop_forward","from":2,"to":3,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":4,"at":"120","dst":"201","next":"201"})"
      "\n"));
  const TraceReport r = analyze_trace(wander);
  EXPECT_EQ(r.failover_mismatches, 0u);
  EXPECT_EQ(r.path_length_violations, 1u);
}

TEST(TraceReport, HeaderDegreeBeatsLabelInference) {
  // Labels only exercise digits {0,1,2} (which would infer d=2), but
  // the header says the overlay is K(3, k): the header wins.
  std::istringstream in(
      R"({"t":0.0,"event":"trace_header","from":-1,"to":-1,"bytes":0,)"
      R"("bucket":0,"degree":3})"
      "\n" +
      base_packet(
          R"({"t":0.2,"event":"hop_forward","from":1,"to":2,"bytes":100,)"
          R"("bucket":0,"packet":0,"hop":1,"at":"012","dst":"201",)"
          R"("next":"120"})"
          "\n"));
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.schema_errors, 0u);
  EXPECT_EQ(r.header_degree, 3);
  EXPECT_EQ(r.degree, 3);

  // An explicit --degree still overrides the header.
  std::istringstream in2(
      R"({"t":0.0,"event":"trace_header","from":-1,"to":-1,"bytes":0,)"
      R"("bucket":0,"degree":3})"
      "\n");
  TraceReportOptions opts;
  opts.degree = 4;
  EXPECT_EQ(analyze_trace(in2, opts).degree, 4);
}

TEST(TraceReport, RejectsMalformedHeader) {
  // A header without a degree (or with an unusable one) is a schema
  // violation; the audit then falls back to label inference.
  std::istringstream in(
      R"({"t":0.0,"event":"trace_header","from":-1,"to":-1,"bytes":0,)"
      R"("bucket":0})"
      "\n"
      R"({"t":0.1,"event":"trace_header","from":-1,"to":-1,"bytes":0,)"
      R"("bucket":0,"degree":1})"
      "\n");
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.schema_errors, 2u);
  EXPECT_EQ(r.header_degree, 0);
}

// --- Regular-walk audit (audit 4).  K(2,3) facts used below, verified
// against kautz::regular_route: 012 -> 102 walks 012 121 210 102 (no
// separator); 012 -> 201 walks 012 121 212 120 201 (separator 1);
// 120 -> 201 walks 120 202 020 201.

std::string regular_header() {
  return R"({"t":0.0,"event":"trace_header","from":-1,"to":-1,"bytes":0,)"
         R"("bucket":0,"degree":2,"policy":"regular"})"
         "\n";
}

std::string hop(double t, const char* at, const char* dst, const char* next) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                R"({"t":%.1f,"event":"hop_forward","from":1,"to":2,)"
                R"("bytes":100,"bucket":0,"packet":0,"hop":1,"at":"%s",)"
                R"("dst":"%s","next":"%s"})"
                "\n",
                t, at, dst, next);
  return buf;
}

TEST(TraceReport, AcceptsAFaithfulRegularWalk) {
  std::istringstream in(regular_header() +
                        base_packet((hop(0.1, "012", "102", "121") +
                                     hop(0.2, "121", "102", "210") +
                                     hop(0.3, "210", "102", "102"))
                                        .c_str()));
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.header_policy, "regular");
  EXPECT_EQ(r.regular_checked, 3u);
  EXPECT_EQ(r.regular_mismatches, 0u);
  EXPECT_EQ(r.violations(), 0u);
}

TEST(TraceReport, FlagsAHopThatLeavesTheRegularProgram) {
  // 012 -> 120 is a real Kautz arc (the arc audit is happy), but the
  // regular program for dst 102 appends digit 1 first (012 -> 121), and
  // a fresh walk derived at 012 starts the same way: 120 is neither a
  // continuation nor a restart.
  std::istringstream in(regular_header() +
                        base_packet(hop(0.1, "012", "102", "120").c_str()));
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.regular_checked, 1u);
  EXPECT_EQ(r.regular_mismatches, 1u);
  EXPECT_GT(r.violations(), 0u);
}

TEST(TraceReport, FailoverDetourHopsAreExemptFromTheWalkAudit) {
  // A Theorem 3.8 fail-over to the shortest alternate (012 -> 120 for
  // dst 201, nominal 2) explains the off-program hop; the walk then
  // restarts at the detour node (120 -> 202 begins the fresh 120 -> 201
  // program) and only that hop is counted.
  std::istringstream in(
      regular_header() +
      base_packet(
          (std::string(
               R"({"t":0.1,"event":"failover","from":1,"to":-1,"bytes":100,)"
               R"("bucket":0,"packet":0,"hop":0,"alt":1,"nominal_len":2,)"
               R"("at":"012","dst":"201","next":"120"})"
               "\n") +
           hop(0.2, "012", "201", "120") + hop(0.3, "120", "201", "202"))
              .c_str()));
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.failover_mismatches, 0u);
  EXPECT_EQ(r.regular_checked, 1u);
  EXPECT_EQ(r.regular_mismatches, 0u);
  EXPECT_EQ(r.violations(), 0u);
}

TEST(TraceReport, GreedyTracesSkipTheRegularAudit) {
  // Same off-program hop as above, but no policy in the header: the
  // run was greedy, so the walk audit must not fire at all.
  std::istringstream in(
      R"({"t":0.0,"event":"trace_header","from":-1,"to":-1,"bytes":0,)"
      R"("bucket":0,"degree":2})"
      "\n" +
      base_packet(hop(0.1, "012", "102", "120").c_str()));
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.header_policy, "");
  EXPECT_EQ(r.regular_checked, 0u);
  EXPECT_EQ(r.regular_mismatches, 0u);
  EXPECT_EQ(r.violations(), 0u);
}

TEST(TraceReport, FlagsSchemaViolations) {
  std::istringstream in(
      // Routing event without a packet id.
      R"({"t":1,"event":"hop_forward","from":1,"to":2,"bytes":0,"bucket":0})"
      "\n"
      // Fail-over without an alt index.
      R"({"t":2,"event":"failover","from":1,"to":-1,"bytes":0,"bucket":0,)"
      R"("packet":7})"
      "\n"
      // Drop without a reason.
      R"({"t":3,"event":"packet_dropped","from":-1,"to":-1,"bytes":0,)"
      R"("bucket":0,"packet":7})"
      "\n"
      // Unknown event name.
      R"({"t":4,"event":"warp_drive","from":1,"to":2,"bytes":0,"bucket":0})"
      "\n"
      // Unparsable line.
      "{{{\n"
      // And one fine frame-level record.
      R"({"t":5,"event":"broadcast","from":3,"to":-1,"bytes":64,"bucket":1})"
      "\n"
      // QoS miss without a packet id (baseline systems): fine, counted.
      R"({"t":6,"event":"qos_deadline_miss","from":2,"to":-1,"bytes":0,)"
      R"("bucket":0})"
      "\n");
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.lines, 7u);
  EXPECT_EQ(r.parse_errors, 1u);
  EXPECT_EQ(r.schema_errors, 4u);
  EXPECT_EQ(r.qos_misses, 1u);
  EXPECT_GT(r.violations(), 0u);
}

TEST(TraceReport, DetectsChainBreaksAndInvalidArcs) {
  std::istringstream in(base_packet(
      R"({"t":0.2,"event":"hop_forward","from":1,"to":2,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":1})"
      "\n"
      // from=5 but the previous hop ended at node 2: chain break.
      R"({"t":0.3,"event":"hop_forward","from":5,"to":6,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":2})"
      "\n"
      // 012 -> 021 is not a Kautz arc (prefix must be the suffix).
      R"({"t":0.4,"event":"hop_forward","from":6,"to":7,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":3,"at":"012","dst":"201","next":"021"})"
      "\n"
      R"({"t":0.5,"event":"packet_delivered","from":7,"to":-1,"bytes":100,)"
      R"("bucket":0,"packet":0,"hop":3})"
      "\n"));
  const TraceReport r = analyze_trace(in);
  EXPECT_EQ(r.packets_delivered, 1u);
  EXPECT_EQ(r.chain_breaks, 1u);
  EXPECT_EQ(r.arc_violations, 1u);
}

TEST(TraceReport, MissingFileReportsViolation) {
  const TraceReport r =
      analyze_trace_file("/nonexistent-dir/nope.jsonl", {});
  EXPECT_EQ(r.lines, 0u);
  EXPECT_GT(r.violations(), 0u);
}

TEST(TraceReport, EndToEndReferTraceAuditsClean) {
  // Run a real REFER simulation with faults (to force fail-overs) and
  // audit its trace: every recorded Theorem 3.8 decision must re-derive
  // offline, hop chains must connect, and the schema must hold.
  harness::Scenario sc;
  sc.warmup_s = 5;
  sc.measure_s = 30;
  sc.packets_per_second = 4;
  sc.seed = 11;
  sc.faulty_nodes = 25;
  sc.trace_path = ::testing::TempDir() + "analysis_e2e.jsonl";
  const harness::RunMetrics m =
      harness::run_once(harness::SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);

  const TraceReport r = analyze_trace_file(sc.trace_path, {});
  EXPECT_GT(r.lines, 0u);
  EXPECT_EQ(r.parse_errors, 0u);
  EXPECT_EQ(r.schema_errors, 0u);
  EXPECT_EQ(r.header_degree, 2);  // build emitted a trace_header record
  EXPECT_EQ(r.degree, 2);         // the paper's K(2,3) cells
  // The trace also covers warmup traffic, so >= the windowed metrics.
  EXPECT_GE(r.packets_sent, m.packets_sent);
  EXPECT_GE(r.packets_delivered, m.packets_delivered);
  EXPECT_GT(r.packets_delivered, 0u);
  // Faults + mobility must have exercised the fail-over machinery, and
  // every audited decision must check out against kautz::disjoint_routes.
  EXPECT_GT(r.failovers, 0u);
  EXPECT_GT(r.failovers_checked, 0u);
  EXPECT_EQ(r.failover_mismatches, 0u);
  EXPECT_EQ(r.path_length_violations, 0u);
  EXPECT_EQ(r.chain_breaks, 0u);
  EXPECT_EQ(r.arc_violations, 0u);
  EXPECT_EQ(r.violations(), 0u);
  std::remove(sc.trace_path.c_str());
}

TEST(TraceReport, RouteGenerationFloodsKeepHopChainsConnected) {
  // Regression: in FailoverMode::kRouteGeneration a recovered packet
  // travels a flooded path; that segment must appear as a (label-less)
  // hop_forward record, or the chain-continuity audit flags every
  // flood-recovered delivery as a break.
  const std::string path = ::testing::TempDir() + "routegen_trace.jsonl";
  {
    sim::Simulator simulator;
    sim::World world({{0, 0}, {500, 500}}, simulator);
    sim::EnergyTracker energy;
    sim::Channel channel(simulator, world, energy, Rng(3));
    for (const Point p : {Point{125, 125}, Point{375, 125}, Point{125, 375},
                          Point{375, 375}, Point{250, 250}}) {
      world.add_actuator(p, 250);
    }
    Rng rng(42);
    std::vector<sim::NodeId> sensors;
    for (int i = 0; i < 200; ++i) {
      sensors.push_back(world.add_static_sensor(
          {rng.uniform(0, 500), rng.uniform(0, 500)}, 100));
    }
    energy.resize(world.size());
    energy.set_initial_battery(1e9);

    core::ReferConfig config;
    config.router.failover = core::FailoverMode::kRouteGeneration;
    core::ReferSystem system(simulator, world, channel, energy, Rng(7),
                             config);
    sim::Tracer tracer;
    sim::JsonlTraceWriter writer(path);
    tracer.set_sink(std::ref(writer));
    system.set_tracer(&tracer);
    bool ok = false;
    system.build([&](bool r) { ok = r; });
    simulator.run_until(30);
    ASSERT_TRUE(ok);

    // Cross-cell full addressing: a flood-recovered packet keeps
    // routing (corner ascent, CAN transit, descent) after the flooded
    // segment, which is exactly where a missing hop record shows up as
    // a chain break.  Kill a fresh batch of sensors each round so
    // relays lose their shortest successors and fall back to
    // flood-discovered routes.
    const auto dst_cid =
        static_cast<core::Cid>(system.topology().cell_count()) - 1;
    const core::FullId dst{dst_cid, kautz::Label{1, 0, 1}};
    Rng pick(11), fault(13);
    std::vector<sim::NodeId> down;
    for (int round = 0; round < 8; ++round) {
      for (sim::NodeId n : down) world.set_alive(n, true);
      down.clear();
      for (std::size_t idx : fault.sample_indices(sensors.size(), 20)) {
        world.set_alive(sensors[idx], false);
        down.push_back(sensors[idx]);
      }
      for (int i = 0; i < 20; ++i) {
        const sim::NodeId src = sensors[pick.below(sensors.size())];
        if (!world.alive(src)) continue;
        system.send_to(src, dst, 1000, nullptr);
        simulator.run_until(simulator.now() + 0.2);
      }
    }
    simulator.run_until(simulator.now() + 3);
    EXPECT_GT(system.router().stats().route_gen_floods, 0u);
  }

  const TraceReport r = analyze_trace_file(path, {});
  EXPECT_EQ(r.parse_errors, 0u);
  EXPECT_EQ(r.schema_errors, 0u);
  EXPECT_EQ(r.header_degree, 2);
  EXPECT_GT(r.packets_delivered, 0u);
  EXPECT_EQ(r.chain_breaks, 0u);
  EXPECT_EQ(r.arc_violations, 0u);
  EXPECT_EQ(r.violations(), 0u);
  std::remove(path.c_str());
}

// ------------------------------------------------- nested JSON parser

TEST(JsonDoc, ParsesNestedDocuments) {
  const auto doc = parse_json_doc(
      R"({"a":{"b":[1,2.5,-3e1]},"s":"hi","t":true,"z":null,"arr":[{"k":7}]})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonNode* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  const auto nums = a->member_numbers("b");
  ASSERT_EQ(nums.size(), 3u);
  EXPECT_DOUBLE_EQ(nums[0], 1.0);
  EXPECT_DOUBLE_EQ(nums[1], 2.5);
  EXPECT_DOUBLE_EQ(nums[2], -30.0);
  ASSERT_NE(doc->find("s")->string_or_null(), nullptr);
  EXPECT_EQ(*doc->find("s")->string_or_null(), "hi");
  EXPECT_TRUE(doc->find("t")->bool_or(false));
  EXPECT_EQ(doc->find("z")->kind, JsonNode::Kind::kNull);
  const JsonNode* arr = doc->find("arr");
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->items.size(), 1u);
  EXPECT_DOUBLE_EQ(arr->items[0].member_number("k", 0), 7.0);
}

TEST(JsonDoc, RejectsMalformed) {
  EXPECT_FALSE(parse_json_doc("{").has_value());
  EXPECT_FALSE(parse_json_doc(R"({"a":1} trailing)").has_value());
  EXPECT_FALSE(parse_json_doc(R"({"a":})").has_value());
  EXPECT_FALSE(parse_json_doc(R"([1,2,)").has_value());
  EXPECT_FALSE(parse_json_doc("").has_value());
  EXPECT_TRUE(parse_json_doc("  [1, 2]  ").has_value());
}

// ------------------------------------------------- timeline detectors

TEST(TimelineDetect, WarmupCountsLeadingSubMedianBuckets) {
  EXPECT_EQ(detect_warmup({10, 40, 100, 100, 100, 100, 100, 100}), 2u);
  EXPECT_EQ(detect_warmup({100, 100, 100, 100}), 0u);
  // At most half the series can be warmup.
  EXPECT_EQ(detect_warmup({1, 1, 1, 1, 100, 100, 100, 100, 100, 100}), 4u);
  // The cap: a series that is mostly "warmup" has no steady state.
  EXPECT_EQ(detect_warmup({1, 1, 1, 1, 1, 90, 100, 110, 100, 100}), 5u);
}

TEST(TimelineDetect, PlantedKneeLocalizedWithinOneBucket) {
  // Rising 50 kbps/bucket until bucket 6, then flat: the classic
  // saturation curve.  Queue wait jumps across the knee.
  const std::vector<double> y{300, 350, 400, 450, 500, 550,
                              600, 610, 605, 615, 608, 612};
  const std::vector<double> wait{10, 10, 11, 10, 12, 11,
                                 40, 90, 160, 220, 260, 300};
  const Knee knee = detect_knee(y, wait);
  ASSERT_TRUE(knee.found);
  EXPECT_NEAR(static_cast<double>(knee.bucket), 6.0, 1.0);
  EXPECT_GT(knee.slope_before, 25.0);
  EXPECT_LT(knee.slope_after, 0.25 * knee.slope_before);
  EXPECT_TRUE(knee.queue_wait_grows);
}

TEST(TimelineDetect, FlatAndNoisySeriesHaveNoKnee) {
  EXPECT_FALSE(
      detect_knee({500, 501, 499, 502, 500, 498, 501, 500}, {}).found);
  // Monotone rise with no plateau: no knee either.
  EXPECT_FALSE(
      detect_knee({100, 200, 300, 400, 500, 600, 700, 800}, {}).found);
  // Too short to split.
  EXPECT_FALSE(detect_knee({1, 2, 3}, {}).found);
}

TEST(TimelineDetect, DipsSkipMissingDataAndFindRuns) {
  // -1 marks buckets with no samples: they join neither dip nor median.
  const std::vector<double> y{1.0, 1.0, -1.0, 0.2, 0.1, 0.3, 1.0, 1.0};
  const auto dips = detect_dips(y, 0.7);
  ASSERT_EQ(dips.size(), 1u);
  EXPECT_EQ(dips[0].from, 3u);
  EXPECT_EQ(dips[0].to, 5u);
  EXPECT_EQ(dips[0].deepest, 4u);
  EXPECT_NEAR(dips[0].depth_frac, 0.1, 1e-9);
  EXPECT_TRUE(detect_dips({1, 1, 1, 1}, 0.7).empty());
}

// ------------------------------------------------- document loading

TEST(TimelineReport, LoadsLegacyV3Documents) {
  const std::string v3 = R"({
    "schema_version": 3,
    "benchmark": "fig04",
    "scenario": {"timeline_bucket_s": 20},
    "jobs_run": [
      {"system": "REFER", "seed": 5, "x": 1, "rep": 0,
       "metrics": {"qos_timeline_kbps": [1000, 1000, 986, 1014]}},
      {"system": "DaTree", "seed": 5, "x": 1, "rep": 0,
       "metrics": {"delivery_ratio": 0.5}}
    ]
  })";
  const auto doc = load_timeline_doc(v3);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->schema_version, 3);
  EXPECT_EQ(doc->benchmark, "fig04");
  // The second job carries no timeline and is skipped.
  ASSERT_EQ(doc->jobs.size(), 1u);
  const TimelineSeries& s = doc->jobs[0];
  EXPECT_FALSE(s.v4);
  EXPECT_EQ(s.system, "REFER");
  EXPECT_EQ(s.seed, "5");
  EXPECT_DOUBLE_EQ(s.bucket_s, 20.0);  // backfilled from the scenario
  ASSERT_EQ(s.qos_kbps.size(), 4u);
  EXPECT_DOUBLE_EQ(s.qos_kbps[2], 986.0);
}

TEST(TimelineReport, RejectsPreTimelineSchemas) {
  EXPECT_FALSE(load_timeline_doc(R"({"schema_version": 2})").has_value());
  EXPECT_FALSE(load_timeline_doc("not json").has_value());
  // v3 with no jobs at all is a valid, empty document.
  const auto empty = load_timeline_doc(R"({"schema_version": 3})");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->jobs.empty());
}

TEST(TimelineReport, StrictExitCodeFlipsOnAnomalies) {
  const std::string doc_text = R"({
    "schema_version": 3,
    "scenario": {"timeline_bucket_s": 5},
    "jobs_run": [
      {"system": "REFER", "seed": 1, "x": 0, "rep": 0,
       "metrics": {"qos_timeline_kbps":
           [500, 500, 500, 100, 90, 500, 500, 500]}}
    ]
  })";
  const auto doc = load_timeline_doc(doc_text);
  ASSERT_TRUE(doc.has_value());
  ReportOptions lax;
  const TimelineReport report = analyze_timelines(*doc, lax);
  ASSERT_EQ(report.findings.size(), 1u);
  ASSERT_FALSE(report.findings[0].qos_dips.empty());
  EXPECT_GE(report.anomaly_count, 1u);
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(print_timeline_report(sink, *doc, report, lax), 0);
  ReportOptions strict = lax;
  strict.strict = true;
  EXPECT_EQ(print_timeline_report(sink, *doc, report, strict), 1);
  std::fclose(sink);
}

// ------------------------------------------------- end-to-end dip run

TEST(TimelineReport, LocalizesScriptedActuatorFaultDip) {
  // The fig_app scripted break: actuator 0 is down for t0+30 .. t0+42
  // (relative to the workload start).  With warmup 0 the workload start
  // IS bucket 0's left edge, so the fault begins in bucket 30/5 = 6.
  harness::Scenario sc;
  sc.warmup_s = 0;
  sc.measure_s = 60;
  sc.timeline_bucket_s = 5;
  sc.app_enabled = true;
  sc.app_event_period_s = 1;
  sc.app_fault_schedule = "0@30+12";
  sc.seed = 7;
  const harness::RunMetrics m =
      harness::run_once(harness::SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  ASSERT_GT(m.app_loops_started, 50u);

  // Round-trip through the schema-v4 writer: this is the exact document
  // the timeline_report CLI reads.
  runner::ResultsWriter writer;
  writer.set_tool("analysis_test");
  writer.set_benchmark("fault_dip");
  writer.set_scenario(sc);
  harness::JobRecord rec;
  rec.system = harness::SystemKind::kRefer;
  rec.seed = sc.seed;
  rec.metrics = m;
  writer.add_records({rec});
  const auto doc = load_timeline_doc(writer.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->schema_version, 5);
  ASSERT_EQ(doc->jobs.size(), 1u);
  EXPECT_TRUE(doc->jobs[0].v4);

  // One broken actuator out of five fails only the loops nearest to it
  // (the rest fail over), so judge the completion ratio against a 0.9
  // threshold rather than the default deep-outage 0.7.
  ReportOptions opts;
  opts.dip_frac = 0.9;
  const TimelineReport report = analyze_timelines(*doc, opts);
  ASSERT_EQ(report.findings.size(), 1u);
  const SeriesFindings& f = report.findings[0];
  ASSERT_FALSE(f.app_dips.empty()) << "the fault window must dip";
  const std::size_t fault_start_bucket =
      static_cast<std::size_t>(30.0 / sc.timeline_bucket_s);
  const std::size_t fault_end_bucket =
      static_cast<std::size_t>((30.0 + 12.0) / sc.timeline_bucket_s);
  const Dip& dip = f.app_dips.front();
  // Localized to within one bucket of the scripted window on both ends
  // (the supervision tier fails the survivors over before the scripted
  // repair, so recovery may land one bucket early).
  EXPECT_NEAR(static_cast<double>(dip.from),
              static_cast<double>(fault_start_bucket), 1.0);
  EXPECT_NEAR(static_cast<double>(dip.to),
              static_cast<double>(fault_end_bucket), 1.0);
  EXPECT_LT(dip.depth_frac, 0.9);
  EXPECT_FALSE(f.anomalies.empty());
}

}  // namespace
}  // namespace refer::analysis
