// Tests for the experiment harness: determinism, metric plumbing, fault
// injection, sweeps.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/experiment.hpp"

namespace refer::harness {
namespace {

Scenario quick_scenario() {
  Scenario sc;
  sc.warmup_s = 5;
  sc.measure_s = 30;
  sc.packets_per_second = 4;
  sc.mobile = false;
  sc.seed = 11;
  return sc;
}

TEST(Harness, SystemNames) {
  EXPECT_STREQ(to_string(SystemKind::kRefer), "REFER");
  EXPECT_STREQ(to_string(SystemKind::kDaTree), "DaTree");
  EXPECT_STREQ(to_string(SystemKind::kDDear), "D-DEAR");
  EXPECT_STREQ(to_string(SystemKind::kKautzOverlay), "Kautz-overlay");
}

TEST(Harness, ReferRunsAndDelivers) {
  const RunMetrics m = run_once(SystemKind::kRefer, quick_scenario());
  ASSERT_TRUE(m.build_ok);
  EXPECT_GT(m.packets_sent, 100u);
  EXPECT_GT(m.delivery_ratio, 0.8);
  EXPECT_GT(m.qos_throughput_kbps, 0.0);
  EXPECT_GT(m.avg_delay_ms, 0.0);
  EXPECT_LT(m.avg_delay_ms, 600.0);
  EXPECT_GT(m.comm_energy_j, 0.0);
  EXPECT_GT(m.construction_energy_j, 0.0);
}

TEST(Harness, EverySystemBuildsAndCarriesTraffic) {
  for (SystemKind kind : kAllSystems) {
    const RunMetrics m = run_once(kind, quick_scenario());
    ASSERT_TRUE(m.build_ok) << to_string(kind);
    EXPECT_GT(m.delivery_ratio, 0.5) << to_string(kind);
  }
}

TEST(Harness, DeterministicForSameSeed) {
  for (SystemKind kind : kAllSystems) {
    const RunMetrics a = run_once(kind, quick_scenario());
    const RunMetrics b = run_once(kind, quick_scenario());
    EXPECT_EQ(a.packets_sent, b.packets_sent) << to_string(kind);
    EXPECT_EQ(a.qos_delivered, b.qos_delivered) << to_string(kind);
    EXPECT_DOUBLE_EQ(a.comm_energy_j, b.comm_energy_j) << to_string(kind);
    EXPECT_DOUBLE_EQ(a.avg_delay_ms, b.avg_delay_ms) << to_string(kind);
  }
}

TEST(Harness, SeedChangesOutcome) {
  Scenario sc = quick_scenario();
  const RunMetrics a = run_once(SystemKind::kDaTree, sc);
  sc.seed = 12345;
  const RunMetrics b = run_once(SystemKind::kDaTree, sc);
  EXPECT_NE(a.comm_energy_j, b.comm_energy_j);
}

TEST(Harness, FaultInjectionReducesDelivery) {
  Scenario sc = quick_scenario();
  const RunMetrics clean = run_once(SystemKind::kDaTree, sc);
  sc.faulty_nodes = 30;
  const RunMetrics faulty = run_once(SystemKind::kDaTree, sc);
  ASSERT_TRUE(faulty.build_ok);
  EXPECT_LT(faulty.delivery_ratio, clean.delivery_ratio + 0.01);
}

TEST(Harness, RunRepeatedAggregates) {
  Scenario sc = quick_scenario();
  sc.measure_s = 20;
  const AggregateMetrics agg = run_repeated(SystemKind::kRefer, sc, 3);
  EXPECT_EQ(agg.qos_throughput_kbps.count(), 3u);
  EXPECT_GT(agg.qos_throughput_kbps.mean(), 0.0);
  EXPECT_GE(agg.qos_throughput_kbps.ci95_half_width(), 0.0);
}

TEST(Harness, SweepProducesPointPerX) {
  Scenario sc = quick_scenario();
  sc.measure_s = 15;
  const auto points = sweep(
      sc, {0.0, 1.0},
      [](Scenario& s, double x) {
        s.mobile = x > 0;
        s.max_speed_mps = x;
      },
      1);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_EQ(p.by_system.size(), 4u);
  }
  // Table printing must not crash.
  print_series_table("test", "x", "kbps", points,
                     [](const AggregateMetrics& a) {
                       return a.qos_throughput_kbps;
                     });
}

TEST(Harness, CsvExportMatchesSeries) {
  Scenario sc = quick_scenario();
  sc.measure_s = 15;
  const auto points = sweep(
      sc, {0.0}, [](Scenario& s, double) { s.mobile = false; }, 1);
  const std::string path = ::testing::TempDir() + "series_test.csv";
  ASSERT_TRUE(write_series_csv(path, "x", points,
                               [](const AggregateMetrics& a) {
                                 return a.qos_throughput_kbps;
                               }));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[512], row[512];
  ASSERT_NE(std::fgets(header, sizeof header, f), nullptr);
  ASSERT_NE(std::fgets(row, sizeof row, f), nullptr);
  std::fclose(f);
  EXPECT_NE(std::string(header).find("REFER_mean"), std::string::npos);
  EXPECT_NE(std::string(header).find("Kautz-overlay_ci95"),
            std::string::npos);
  EXPECT_EQ(row[0], '0');  // x = 0
}

TEST(Harness, DelayPercentilesAreOrdered) {
  const RunMetrics m = run_once(SystemKind::kRefer, quick_scenario());
  ASSERT_TRUE(m.build_ok);
  EXPECT_GT(m.delay_p50_ms, 0.0);
  EXPECT_LE(m.delay_p50_ms, m.delay_p95_ms);
  EXPECT_LE(m.delay_p95_ms, m.delay_p99_ms);
}

TEST(Harness, TraceFileIsWrittenWhenRequested) {
  Scenario sc = quick_scenario();
  sc.measure_s = 10;
  sc.trace_path = ::testing::TempDir() + "harness_trace.jsonl";
  const RunMetrics m = run_once(SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  std::FILE* f = std::fopen(sc.trace_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  int lines = 0;
  while (std::fgets(line, sizeof line, f) && lines < 10) ++lines;
  std::fclose(f);
  EXPECT_GE(lines, 10) << "trace must contain frame events";
}

TEST(Harness, TimelineBucketsSumToTotal) {
  Scenario sc = quick_scenario();
  sc.measure_s = 30;
  sc.timeline_bucket_s = 10;
  const RunMetrics m = run_once(SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  ASSERT_EQ(m.qos_timeline_kbps.size(), 3u);
  double total_kbits = 0;
  for (const double kbps : m.qos_timeline_kbps) {
    total_kbits += kbps * sc.timeline_bucket_s;
  }
  const double expected_kbits =
      static_cast<double>(m.qos_delivered) *
      static_cast<double>(sc.packet_bytes) * 8.0 / 1000.0;
  EXPECT_NEAR(total_kbits, expected_kbits, expected_kbits * 0.02 + 1);
}

TEST(Harness, TimelineOffByDefault) {
  const RunMetrics m = run_once(SystemKind::kRefer, quick_scenario());
  EXPECT_TRUE(m.qos_timeline_kbps.empty());
}

TEST(Harness, ObservabilitySnapshotCoversRouterChannelAndKernel) {
  const RunMetrics m = run_once(SystemKind::kRefer, quick_scenario());
  ASSERT_TRUE(m.build_ok);
  ASSERT_FALSE(m.observability.empty());
  auto find = [&](const std::string& name) -> const StatsRegistry::Entry* {
    for (const StatsRegistry::Entry& e : m.observability) {
      if (e.name == name) return &e;
    }
    return nullptr;
  };
  const auto* sent = find("router.packets_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_FALSE(sent->is_histogram);
  // The router counts warmup traffic too; the metric only the window.
  EXPECT_GE(sent->count, m.packets_sent);
  const auto* delay = find("delivery.delay_ms");
  ASSERT_NE(delay, nullptr);
  EXPECT_TRUE(delay->is_histogram);
  EXPECT_EQ(delay->count, m.packets_delivered);
  EXPECT_GT(delay->p50, 0.0);
  ASSERT_NE(find("delivery.failovers"), nullptr);
  ASSERT_NE(find("channel.unicasts_sent"), nullptr);
  const auto* queue_wait = find("channel.queue_wait_us");
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_TRUE(queue_wait->is_histogram);
  EXPECT_GT(queue_wait->count, 0u);
  const auto* events = find("sim.events_executed");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->count, 0u);
  const auto* peak = find("sim.peak_queue_depth");
  ASSERT_NE(peak, nullptr);
  EXPECT_GT(peak->count, 0u);
  // Snapshot order is deterministic: sorted by name.
  for (std::size_t i = 1; i < m.observability.size(); ++i) {
    EXPECT_LT(m.observability[i - 1].name, m.observability[i].name);
  }
}

TEST(Harness, ProfileAttachesKernelHistograms) {
  Scenario sc = quick_scenario();
  sc.measure_s = 10;
  sc.profile = true;
  const RunMetrics m = run_once(SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  bool found = false;
  for (const StatsRegistry::Entry& e : m.observability) {
    if (e.name.rfind("sim.event_us.", 0) == 0) {
      found = true;
      EXPECT_TRUE(e.is_histogram);
      EXPECT_GT(e.count, 0u);
    }
  }
  EXPECT_TRUE(found) << "profile=true must produce kernel histograms";
}

TEST(Harness, ProfileOffProducesNoKernelHistograms) {
  const RunMetrics m = run_once(SystemKind::kRefer, quick_scenario());
  for (const StatsRegistry::Entry& e : m.observability) {
    EXPECT_NE(e.name.rfind("sim.event_us.", 0), 0u) << e.name;
  }
}

TEST(Harness, StripActuatorPlacementWorks) {
  Scenario sc = quick_scenario();
  sc.n_actuators = 6;
  sc.measure_s = 15;
  const RunMetrics m = run_once(SystemKind::kRefer, sc);
  EXPECT_TRUE(m.build_ok) << "zig-zag strip must embed";
}

}  // namespace
}  // namespace refer::harness
